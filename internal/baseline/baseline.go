// Package baseline implements the lock techniques the paper compares
// against (§3):
//
//   - TupleLevel: System R style locking of each single tuple of a complex
//     object individually — fine concurrency, "immense overhead caused by
//     the administration of locks and conflict tests" (§3.2.1);
//   - WholeObject: XSQL style locking of complex objects as a whole,
//     including existing common data — cheap, but "prohibits a high degree
//     of concurrency" (§3.2.1);
//   - TraditionalDAG: the straightforward application of the DAG protocol
//     to non-disjoint objects — to lock a node within shared data
//     exclusively, ALL parent nodes must be determined (an expensive
//     reverse scan) and locked (§3.2.2);
//   - NaiveDAG: the unsafe variant that treats references like ordinary
//     hierarchy edges and relies on implicit locks along one access path —
//     transactions arriving "from the side" do not see those locks, and the
//     database can be transformed into an inconsistent state (§3.2.2). It
//     exists to demonstrate the protocol-oriented problem in E4.
//
// All baselines share the resource namespace of the core protocol so that
// metrics (lock counts, conflicts, waits) are directly comparable.
package baseline

import (
	"context"
	"fmt"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
)

// Locker is the uniform interface the benchmark harness drives: lock the
// subtree at a path for reading or writing, then release at EOT.
type Locker interface {
	Name() string
	LockRead(txn lock.TxnID, p store.Path) error
	LockWrite(txn lock.TxnID, p store.Path) error
	ReleaseAll(txn lock.TxnID)
	Manager() *lock.Manager
}

// Core adapts the paper's protocol to the Locker interface.
type Core struct {
	Proto *core.Protocol
}

// Name implements Locker.
func (c Core) Name() string { return "colock" }

// LockRead implements Locker.
func (c Core) LockRead(txn lock.TxnID, p store.Path) error {
	return c.Proto.LockPath(txn, p, lock.S)
}

// LockWrite implements Locker.
func (c Core) LockWrite(txn lock.TxnID, p store.Path) error {
	return c.Proto.LockPath(txn, p, lock.X)
}

// ReleaseAll implements Locker.
func (c Core) ReleaseAll(txn lock.TxnID) { c.Proto.Release(txn) }

// Manager implements Locker.
func (c Core) Manager() *lock.Manager { return c.Proto.Manager() }

// hierarchy holds what every baseline needs: resource naming, the lock
// manager, and the store for reference scans.
type hierarchy struct {
	nm  *core.Namer
	mgr *lock.Manager
	st  *store.Store
}

// lockChain intention-locks the ancestors of a node root-to-leaf and then
// locks the node itself in the given mode. No propagation of any kind.
func (h *hierarchy) lockChain(txn lock.TxnID, n core.Node, mode lock.Mode) error {
	anc, err := h.nm.Ancestors(n)
	if err != nil {
		return err
	}
	intent := mode.IntentionFor()
	for _, a := range anc {
		res, err := h.nm.Resource(a)
		if err != nil {
			return err
		}
		if err := h.mgr.AcquireCtx(context.Background(), txn, res, intent); err != nil {
			return err
		}
	}
	res, err := h.nm.Resource(n)
	if err != nil {
		return err
	}
	return h.mgr.AcquireCtx(context.Background(), txn, res, mode)
}

// WholeObject is the XSQL-style baseline: any access to a part of a complex
// object locks the whole object — and, because common data belongs to the
// object from the application's point of view, the referenced complex
// objects as well, in the same mode.
type WholeObject struct {
	h hierarchy
}

// NewWholeObject builds the whole-object baseline.
func NewWholeObject(mgr *lock.Manager, st *store.Store, nm *core.Namer) *WholeObject {
	return &WholeObject{h: hierarchy{nm: nm, mgr: mgr, st: st}}
}

// Name implements Locker.
func (w *WholeObject) Name() string { return "xsql-whole-object" }

// Manager implements Locker.
func (w *WholeObject) Manager() *lock.Manager { return w.h.mgr }

// LockRead implements Locker.
func (w *WholeObject) LockRead(txn lock.TxnID, p store.Path) error {
	return w.lockWhole(txn, p, lock.S)
}

// LockWrite implements Locker.
func (w *WholeObject) LockWrite(txn lock.TxnID, p store.Path) error {
	return w.lockWhole(txn, p, lock.X)
}

// ReleaseAll implements Locker.
func (w *WholeObject) ReleaseAll(txn lock.TxnID) { w.h.mgr.ReleaseAll(txn) }

func (w *WholeObject) lockWhole(txn lock.TxnID, p store.Path, mode lock.Mode) error {
	if len(p) < 2 {
		return w.h.lockChain(txn, core.DataNode(p), mode)
	}
	return w.lockObjectRec(txn, p[:2], mode, map[string]bool{})
}

func (w *WholeObject) lockObjectRec(txn lock.TxnID, obj store.Path, mode lock.Mode, seen map[string]bool) error {
	key := obj.String()
	if seen[key] {
		return nil
	}
	seen[key] = true
	if err := w.h.lockChain(txn, core.DataNode(obj), mode); err != nil {
		return err
	}
	refs, err := w.h.st.Refs(obj)
	if err != nil {
		return err
	}
	for _, r := range refs {
		if err := w.lockObjectRec(txn, store.P(r.Target.Relation, r.Target.Key), mode, seen); err != nil {
			return err
		}
	}
	return nil
}

// TupleLevel is the System R-style baseline: every tuple (HeLU instance) of
// the accessed part of a complex object is locked individually, common data
// included. One lock per tuple is fine-grained but administratively heavy.
type TupleLevel struct {
	h hierarchy
}

// NewTupleLevel builds the tuple-level baseline.
func NewTupleLevel(mgr *lock.Manager, st *store.Store, nm *core.Namer) *TupleLevel {
	return &TupleLevel{h: hierarchy{nm: nm, mgr: mgr, st: st}}
}

// Name implements Locker.
func (t *TupleLevel) Name() string { return "systemr-tuple" }

// Manager implements Locker.
func (t *TupleLevel) Manager() *lock.Manager { return t.h.mgr }

// LockRead implements Locker.
func (t *TupleLevel) LockRead(txn lock.TxnID, p store.Path) error {
	return t.lockTuples(txn, p, lock.S)
}

// LockWrite implements Locker.
func (t *TupleLevel) LockWrite(txn lock.TxnID, p store.Path) error {
	return t.lockTuples(txn, p, lock.X)
}

// ReleaseAll implements Locker.
func (t *TupleLevel) ReleaseAll(txn lock.TxnID) { t.h.mgr.ReleaseAll(txn) }

func (t *TupleLevel) lockTuples(txn lock.TxnID, p store.Path, mode lock.Mode) error {
	if len(p) < 2 {
		// A relation-level request degenerates to locking every object's
		// tuples.
		for _, key := range t.h.st.Keys(p.Relation()) {
			if err := t.lockTuples(txn, store.P(p.Relation(), key), mode); err != nil {
				return err
			}
		}
		return nil
	}
	return t.lockTuplesRec(txn, p, mode, map[string]bool{})
}

func (t *TupleLevel) lockTuplesRec(txn lock.TxnID, p store.Path, mode lock.Mode, seen map[string]bool) error {
	if seen[p.String()] {
		return nil
	}
	seen[p.String()] = true

	tuples, refs, err := tuplesUnder(t.h.st, t.h.nm, p)
	if err != nil {
		return err
	}
	if len(tuples) == 0 {
		// The subtree contains no tuple node (e.g. a BLU): lock the node
		// itself, tuple-record style.
		tuples = []store.Path{p}
	}
	for _, tp := range tuples {
		if err := t.h.lockChain(txn, core.DataNode(tp), mode); err != nil {
			return err
		}
	}
	for _, r := range refs {
		if err := t.lockTuplesRec(txn, store.P(r.Target.Relation, r.Target.Key), mode, seen); err != nil {
			return err
		}
	}
	return nil
}

// tuplesUnder enumerates the HeLU (tuple) instance paths in the subtree at
// p, plus the references found there.
func tuplesUnder(st *store.Store, nm *core.Namer, p store.Path) ([]store.Path, []store.RefAt, error) {
	// Traverse a private copy: Lookup returns live structures that may be
	// mutated concurrently under other transactions' locks.
	v, err := st.LookupClone(p)
	if err != nil {
		return nil, nil, err
	}
	var tuples []store.Path
	var refs []store.RefAt
	var rec func(val store.Value, at store.Path)
	rec = func(val store.Value, at store.Path) {
		switch x := val.(type) {
		case store.Ref:
			refs = append(refs, store.RefAt{Path: at.Clone(), Target: x})
		case *store.Tuple:
			tuples = append(tuples, at.Clone())
			for _, n := range x.FieldNames() {
				rec(x.Get(n), at.Child(n))
			}
		case *store.Set:
			for _, id := range x.IDs() {
				rec(x.Get(id), at.Child(id))
			}
		case *store.List:
			for _, id := range x.IDs() {
				rec(x.Get(id), at.Child(id))
			}
		}
	}
	rec(v, p)
	return tuples, refs, nil
}

// TraditionalDAG applies the classic DAG protocol directly to non-disjoint
// objects. Within non-shared data it behaves like hierarchical locking
// without propagation; to lock a node of SHARED data exclusively it must
// first determine and IX-lock ALL parents — every referencing node — via a
// reverse scan of the database (§3.2.2).
type TraditionalDAG struct {
	h hierarchy
}

// NewTraditionalDAG builds the traditional-DAG baseline.
func NewTraditionalDAG(mgr *lock.Manager, st *store.Store, nm *core.Namer) *TraditionalDAG {
	return &TraditionalDAG{h: hierarchy{nm: nm, mgr: mgr, st: st}}
}

// Name implements Locker.
func (d *TraditionalDAG) Name() string { return "traditional-dag" }

// Manager implements Locker.
func (d *TraditionalDAG) Manager() *lock.Manager { return d.h.mgr }

// LockRead implements Locker: plain hierarchical S.
func (d *TraditionalDAG) LockRead(txn lock.TxnID, p store.Path) error {
	return d.h.lockChain(txn, core.DataNode(p), lock.S)
}

// LockWrite implements Locker: within non-shared data a plain hierarchical
// X; on a shared complex object the full all-parents discipline.
func (d *TraditionalDAG) LockWrite(txn lock.TxnID, p store.Path) error {
	if len(p) == 2 && d.isShared(p) {
		return d.LockSharedX(txn, p.Relation(), p.Key())
	}
	return d.h.lockChain(txn, core.DataNode(p), lock.X)
}

// isShared reports whether any reference in the database points at the
// object (this check itself costs a reverse scan, which is the point).
func (d *TraditionalDAG) isShared(p store.Path) bool {
	return len(d.h.st.BackRefs(p.Relation(), p.Key())) > 0
}

// LockSharedX locks a shared complex object exclusively under the
// traditional DAG rule: all parent nodes — every reference BLU and its
// ancestor chain — must be IX-locked before the X lock may be requested.
// The reverse scan that finds the parents is metered by the store.
func (d *TraditionalDAG) LockSharedX(txn lock.TxnID, relation, key string) error {
	backs := d.h.st.BackRefs(relation, key)
	for _, b := range backs {
		if err := d.h.lockChain(txn, core.DataNode(b.RefPath), lock.IX); err != nil {
			return err
		}
	}
	return d.h.lockChain(txn, core.DataNode(store.P(relation, key)), lock.X)
}

// ReleaseAll implements Locker.
func (d *TraditionalDAG) ReleaseAll(txn lock.TxnID) { d.h.mgr.ReleaseAll(txn) }

// NaiveDAG is the UNSAFE straw-man of §3.2.2: it treats a reference like an
// ordinary parent-child edge and records locks on shared data under
// path-dependent resource names ("within the first graph"). Two
// transactions reaching the same shared node via different references get
// different resource names, so their conflict is invisible. It exists only
// to demonstrate the protocol-oriented problem (experiment E4) — do not use
// it to protect data.
type NaiveDAG struct {
	h hierarchy
}

// NewNaiveDAG builds the unsafe demonstration baseline.
func NewNaiveDAG(mgr *lock.Manager, st *store.Store, nm *core.Namer) *NaiveDAG {
	return &NaiveDAG{h: hierarchy{nm: nm, mgr: mgr, st: st}}
}

// Name identifies the baseline.
func (n *NaiveDAG) Name() string { return "naive-dag-unsafe" }

// Manager exposes the lock manager.
func (n *NaiveDAG) Manager() *lock.Manager { return n.h.mgr }

// LockThrough locks the chain down to a reference BLU and claims the
// referenced data implicitly through it. The resource for the shared object
// is derived from the ACCESS PATH, which is exactly the bug: another path to
// the same object yields another resource.
func (n *NaiveDAG) LockThrough(txn lock.TxnID, refPath store.Path, mode lock.Mode) error {
	if err := n.h.lockChain(txn, core.DataNode(refPath), mode); err != nil {
		return err
	}
	// The "implicit" claim on the target, recorded under the path-dependent
	// name.
	res, err := n.h.nm.Resource(core.DataNode(refPath))
	if err != nil {
		return err
	}
	return n.h.mgr.AcquireCtx(context.Background(), txn, res+"/@target", mode)
}

// ReleaseAll drops the transaction's locks.
func (n *NaiveDAG) ReleaseAll(txn lock.TxnID) { n.h.mgr.ReleaseAll(txn) }

var (
	_ Locker = Core{}
	_ Locker = (*WholeObject)(nil)
	_ Locker = (*TupleLevel)(nil)
	_ Locker = (*TraditionalDAG)(nil)
)

// Describe returns a one-line description for harness output.
func Describe(l Locker) string {
	switch l.Name() {
	case "colock":
		return "the paper's protocol (granules within complex objects, entry-point propagation)"
	case "xsql-whole-object":
		return "XSQL: complex objects locked as a whole including common data"
	case "systemr-tuple":
		return "System R: every tuple locked individually"
	case "traditional-dag":
		return "traditional DAG: all-parents rule on shared data (reverse scans)"
	default:
		return fmt.Sprintf("baseline %q", l.Name())
	}
}
