package baseline

import (
	"testing"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
)

func setup(t *testing.T) (*store.Store, *core.Namer, *lock.Manager) {
	t.Helper()
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	return st, nm, lock.NewManager(lock.Options{})
}

func held(mgr *lock.Manager, txn lock.TxnID) map[string]lock.Mode {
	out := make(map[string]lock.Mode)
	for _, h := range mgr.HeldLocks(txn) {
		out[string(h.Resource)] = h.Mode
	}
	return out
}

// TestWholeObjectLocksEverything: accessing one robot locks the whole cell
// AND the whole effectors objects it references.
func TestWholeObjectLocksEverything(t *testing.T) {
	st, nm, mgr := setup(t)
	w := NewWholeObject(mgr, st, nm)
	if err := w.LockWrite(7, store.P("cells", "c1", "robots", "r1")); err != nil {
		t.Fatal(err)
	}
	got := held(mgr, 7)
	if got["db1/seg1/cells/c1"] != lock.X {
		t.Errorf("object not X-locked: %v", got)
	}
	// ALL effectors of the cell (not just r1's) are X-locked wholly.
	for _, e := range []string{"e1", "e2", "e3"} {
		if got["db1/seg2/effectors/"+e] != lock.X {
			t.Errorf("common data %s not locked: %v", e, got)
		}
	}
	// No finer granules below the object.
	if _, ok := got["db1/seg1/cells/c1/robots/r1"]; ok {
		t.Error("whole-object baseline took part locks")
	}
}

// TestWholeObjectSerializesDisjointParts: the granule-oriented problem —
// Q1-style reader of c_objects and Q2-style updater of robots conflict even
// though they touch disjoint parts.
func TestWholeObjectSerializesDisjointParts(t *testing.T) {
	st, nm, mgr := setup(t)
	w := NewWholeObject(mgr, st, nm)
	if err := w.LockRead(1, store.P("cells", "c1", "c_objects")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.LockWrite(2, store.P("cells", "c1", "robots", "r1")) }()
	select {
	case err := <-done:
		t.Fatalf("whole-object baseline allowed disjoint concurrency: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	w.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	w.ReleaseAll(2)
}

// TestCoreAllowsDisjointParts: the same two accesses run concurrently under
// the paper's protocol.
func TestCoreAllowsDisjointParts(t *testing.T) {
	st, nm, mgr := setup(t)
	proto := core.NewProtocol(mgr, st, nm, core.Options{})
	c := Core{Proto: proto}
	if c.Name() != "colock" {
		t.Error("name")
	}
	if err := c.LockRead(1, store.P("cells", "c1", "c_objects")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.LockWrite(2, store.P("cells", "c1", "robots", "r1")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("core protocol serialized disjoint parts")
	}
	c.ReleaseAll(1)
	c.ReleaseAll(2)
}

// TestTupleLevelLockCount: tuple-level locking of cell c1 produces one lock
// per tuple — root, c_object o1, robots r1 and r2, and the three referenced
// effectors — plus intention locks, far more than the single object lock of
// XSQL.
func TestTupleLevelLockCount(t *testing.T) {
	st, nm, mgr := setup(t)
	tl := NewTupleLevel(mgr, st, nm)
	if err := tl.LockRead(7, store.P("cells", "c1")); err != nil {
		t.Fatal(err)
	}
	got := held(mgr, 7)
	for _, r := range []string{
		"db1/seg1/cells/c1",
		"db1/seg1/cells/c1/c_objects/o1",
		"db1/seg1/cells/c1/robots/r1",
		"db1/seg1/cells/c1/robots/r2",
		"db1/seg2/effectors/e1",
		"db1/seg2/effectors/e2",
		"db1/seg2/effectors/e3",
	} {
		if got[r] != lock.S {
			t.Errorf("tuple %s not S-locked: %v", r, got)
		}
	}
	// 7 tuples + IS on db, seg1, cells, robots(no — robots is a list, the
	// chain passes through c1/robots for r1/r2), c_objects, seg2, effectors.
	if len(got) < 13 {
		t.Errorf("suspiciously few locks for tuple-level: %d: %v", len(got), got)
	}
}

func TestTupleLevelOnBLUSubtree(t *testing.T) {
	st, nm, mgr := setup(t)
	tl := NewTupleLevel(mgr, st, nm)
	// A subtree without tuples (an atomic BLU): the node itself is locked.
	if err := tl.LockWrite(7, store.P("cells", "c1", "robots", "r1", "trajectory")); err != nil {
		t.Fatal(err)
	}
	got := held(mgr, 7)
	if got["db1/seg1/cells/c1/robots/r1/trajectory"] != lock.X {
		t.Errorf("BLU not locked: %v", got)
	}
}

func TestTupleLevelRelationScan(t *testing.T) {
	st, nm, mgr := setup(t)
	tl := NewTupleLevel(mgr, st, nm)
	if err := tl.LockRead(7, store.P("effectors")); err != nil {
		t.Fatal(err)
	}
	got := held(mgr, 7)
	for _, e := range []string{"e1", "e2", "e3"} {
		if got["db1/seg2/effectors/"+e] != lock.S {
			t.Errorf("effector %s not locked", e)
		}
	}
}

// TestTraditionalDAGSharedXCost: X-locking shared effector e2 requires
// reverse-scanning the database and locking both referencing robots' chains.
func TestTraditionalDAGSharedXCost(t *testing.T) {
	st, nm, mgr := setup(t)
	d := NewTraditionalDAG(mgr, st, nm)
	st.ResetScanCount()
	if err := d.LockWrite(9, store.P("effectors", "e2")); err != nil {
		t.Fatal(err)
	}
	if st.ScanCount() == 0 {
		t.Error("no reverse scan performed")
	}
	got := held(mgr, 9)
	if got["db1/seg2/effectors/e2"] != lock.X {
		t.Errorf("target not X: %v", got)
	}
	// Both referencing ref-BLUs and their chains are IX-locked.
	if got["db1/seg1/cells/c1/robots/r1/effectors/e2"] != lock.IX ||
		got["db1/seg1/cells/c1/robots/r2/effectors/e2"] != lock.IX {
		t.Errorf("parents not IX-locked: %v", got)
	}
	if got["db1/seg1/cells/c1"] != lock.IX {
		t.Errorf("parent chain not locked: %v", got)
	}
}

// TestTraditionalDAGUnsharedXIsCheap: X on an unreferenced object needs no
// parent hunt beyond its own chain.
func TestTraditionalDAGUnsharedXIsCheap(t *testing.T) {
	st, nm, mgr := setup(t)
	d := NewTraditionalDAG(mgr, st, nm)
	if err := d.LockWrite(9, store.P("cells", "c1", "c_objects", "o1")); err != nil {
		t.Fatal(err)
	}
	got := held(mgr, 9)
	if got["db1/seg1/cells/c1/c_objects/o1"] != lock.X {
		t.Errorf("target not X: %v", got)
	}
	if len(got) != 6 { // db, seg1, cells, c1, c_objects, o1
		t.Errorf("lock count = %d: %v", len(got), got)
	}
	if err := d.LockRead(9, store.P("effectors", "e1")); err != nil {
		t.Fatal(err)
	}
}

// TestNaiveDAGMissesFromTheSideConflict demonstrates §3.2.2: two
// transactions claim the same shared effector through different paths and
// BOTH succeed — the conflict is invisible, unlike under the core protocol.
func TestNaiveDAGMissesFromTheSideConflict(t *testing.T) {
	st, nm, mgr := setup(t)
	n := NewNaiveDAG(mgr, st, nm)
	if n.Name() != "naive-dag-unsafe" {
		t.Error("name")
	}
	// T1 "X-locks" e2 via robot r1's reference.
	if err := n.LockThrough(1, store.P("cells", "c1", "robots", "r1", "effectors", "e2"), lock.X); err != nil {
		t.Fatal(err)
	}
	// T2 "X-locks" the same e2 via robot r2's reference — granted!
	if err := n.LockThrough(2, store.P("cells", "c1", "robots", "r2", "effectors", "e2"), lock.X); err != nil {
		t.Fatalf("naive DAG detected the conflict (it should not): %v", err)
	}
	if mgr.Stats().Waits != 0 {
		t.Error("unexpected wait")
	}
	// Oracle: both transactions now hold what they believe is exclusive
	// access to effectors/e2 — a synchronization violation.
	n.ReleaseAll(1)
	n.ReleaseAll(2)
}

func TestDescribe(t *testing.T) {
	st, nm, mgr := setup(t)
	ls := []Locker{
		Core{Proto: core.NewProtocol(mgr, st, nm, core.Options{})},
		NewWholeObject(mgr, st, nm),
		NewTupleLevel(mgr, st, nm),
		NewTraditionalDAG(mgr, st, nm),
	}
	seen := map[string]bool{}
	for _, l := range ls {
		d := Describe(l)
		if d == "" || seen[d] {
			t.Errorf("bad description for %s: %q", l.Name(), d)
		}
		seen[d] = true
		if l.Manager() != mgr {
			t.Errorf("%s: Manager() wrong", l.Name())
		}
	}
	if Describe(fakeLocker{}) == "" {
		t.Error("unknown locker description empty")
	}
}

type fakeLocker struct{}

func (fakeLocker) Name() string                          { return "fake" }
func (fakeLocker) LockRead(lock.TxnID, store.Path) error { return nil }
func (fakeLocker) LockWrite(lock.TxnID, store.Path) error {
	return nil
}
func (fakeLocker) ReleaseAll(lock.TxnID)  {}
func (fakeLocker) Manager() *lock.Manager { return nil }
