package baseline

import (
	"context"
	"testing"

	"colock/internal/lock"
	"colock/internal/store"
)

func TestReleaseAllPerBaseline(t *testing.T) {
	st, nm, mgr := setup(t)
	w := NewWholeObject(mgr, st, nm)
	if err := w.LockRead(1, store.P("cells", "c1")); err != nil {
		t.Fatal(err)
	}
	w.ReleaseAll(1)
	if mgr.LockCount() != 0 {
		t.Error("WholeObject.ReleaseAll leaked")
	}

	d := NewTraditionalDAG(mgr, st, nm)
	if err := d.LockWrite(2, store.P("effectors", "e2")); err != nil {
		t.Fatal(err)
	}
	d.ReleaseAll(2)
	if mgr.LockCount() != 0 {
		t.Error("TraditionalDAG.ReleaseAll leaked")
	}

	n := NewNaiveDAG(mgr, st, nm)
	if err := n.LockThrough(3, store.P("cells", "c1", "robots", "r1", "effectors", "e1"), lock.S); err != nil {
		t.Fatal(err)
	}
	if n.Manager() != mgr {
		t.Error("NaiveDAG.Manager wrong")
	}
	n.ReleaseAll(3)
	if mgr.LockCount() != 0 {
		t.Error("NaiveDAG.ReleaseAll leaked")
	}
}

func TestWholeObjectRelationLevelRequest(t *testing.T) {
	st, nm, mgr := setup(t)
	w := NewWholeObject(mgr, st, nm)
	// A relation-level path falls back to a plain chain lock.
	if err := w.LockRead(1, store.P("effectors")); err != nil {
		t.Fatal(err)
	}
	got := held(mgr, 1)
	if got["db1/seg2/effectors"] != lock.S {
		t.Errorf("relation not S-locked: %v", got)
	}
	w.ReleaseAll(1)
}

func TestWholeObjectSharedDiamondOnce(t *testing.T) {
	st, nm, mgr := setup(t)
	w := NewWholeObject(mgr, st, nm)
	// c1 references e2 twice; the whole-object closure must not loop or
	// double-count.
	before := mgr.Stats()
	if err := w.LockRead(1, store.P("cells", "c1")); err != nil {
		t.Fatal(err)
	}
	d := mgr.Stats().Sub(before)
	// cells chain (db,seg1,cells,c1) + 3 effectors chains (seg2, effectors,
	// e1,e2,e3) = 4 + 2 + 3 = 9 grants.
	if d.Grants != 9 {
		t.Errorf("grants = %d, want 9", d.Grants)
	}
}

func TestBaselineErrorPaths(t *testing.T) {
	st, nm, mgr := setup(t)
	w := NewWholeObject(mgr, st, nm)
	if err := w.LockRead(1, store.P("nope", "x")); err == nil {
		t.Error("unknown relation accepted by WholeObject")
	}
	tl := NewTupleLevel(mgr, st, nm)
	if err := tl.LockRead(1, store.P("cells", "zz")); err == nil {
		t.Error("unknown object accepted by TupleLevel")
	}
	d := NewTraditionalDAG(mgr, st, nm)
	if err := d.LockRead(1, store.P("nope", "x")); err == nil {
		t.Error("unknown relation accepted by TraditionalDAG")
	}
	n := NewNaiveDAG(mgr, st, nm)
	if err := n.LockThrough(1, store.P("nope", "x"), lock.X); err == nil {
		t.Error("unknown relation accepted by NaiveDAG")
	}
}

// TestTraditionalDAGFromTheSideIsCorrectButExpensive: unlike NaiveDAG, the
// traditional all-parents discipline IS correct — a from-the-side X conflicts
// with a reader's chain because both meet on the shared node itself.
func TestTraditionalDAGSharedConflictDetected(t *testing.T) {
	st, nm, mgr := setup(t)
	d := NewTraditionalDAG(mgr, st, nm)
	// Reader S-locks effector e2 directly.
	if err := d.LockRead(1, store.P("effectors", "e2")); err != nil {
		t.Fatal(err)
	}
	// Writer's all-parents X on e2 must block.
	if err := mgr.AcquireCtx(context.Background(), 2, "db1/seg2/effectors/e2", lock.X, lock.WithNoWait()); err == nil {
		t.Fatal("X on shared node granted despite reader")
	}
	d.ReleaseAll(1)
}
