package trace

import (
	"strings"
	"sync"
	"testing"

	"colock/internal/lock"
)

type captureSink struct {
	mu       sync.Mutex
	txns     []lock.TxnID
	outcomes []string
	spans    [][]Span
}

func (cs *captureSink) RecordSpans(txn lock.TxnID, outcome string, spans []Span) {
	cs.mu.Lock()
	cs.txns = append(cs.txns, txn)
	cs.outcomes = append(cs.outcomes, outcome)
	cs.spans = append(cs.spans, spans)
	cs.mu.Unlock()
}

func TestSpanTreeLifecycle(t *testing.T) {
	sink := &captureSink{}
	rec := NewRecorder(Options{Sinks: []SpanSink{sink}})

	if !rec.Sample() {
		t.Fatal("SampleShift 0 must trace every call")
	}
	root := rec.Start(7, "lock", "db1/seg1/cells/c1", lock.X)
	up := root.Child("upward", "db1/seg1/cells", lock.IX)
	up.End(nil)
	acq := root.Child("acquire", "db1/seg1/cells/c1", lock.X)
	acq.End(nil)
	root.End(nil)

	spans := rec.SpansOf(7)
	if len(spans) != 3 {
		t.Fatalf("SpansOf = %d spans, want 3", len(spans))
	}
	if spans[0].ID != 1 || spans[0].Parent != 0 || spans[0].Kind != "lock" {
		t.Errorf("root span = %+v", spans[0])
	}
	for _, sp := range spans[1:] {
		if sp.Parent != spans[0].ID {
			t.Errorf("child span %+v not under root", sp)
		}
		if sp.Open {
			t.Errorf("ended span still open: %+v", sp)
		}
	}
	if spans[1].Mode != "IX" || spans[1].Resource != "db1/seg1/cells" {
		t.Errorf("upward span = %+v", spans[1])
	}
	if spans[1].Unit != "relation" {
		t.Errorf("upward span unit = %q, want relation (depth classifier)", spans[1].Unit)
	}

	flushed := rec.FinishTxn(7, "commit")
	if len(flushed) != 3 {
		t.Fatalf("FinishTxn returned %d spans, want 3", len(flushed))
	}
	sink.mu.Lock()
	if len(sink.spans) != 1 || sink.txns[0] != 7 || sink.outcomes[0] != "commit" {
		t.Fatalf("sink saw txns=%v outcomes=%v", sink.txns, sink.outcomes)
	}
	sink.mu.Unlock()
	if got := rec.SpansOf(7); got != nil {
		t.Errorf("buffer not dropped after flush: %v", got)
	}
	// A second finish flushes nothing.
	if again := rec.FinishTxn(7, "abort"); again != nil {
		t.Errorf("second FinishTxn returned %v, want nil", again)
	}
}

func TestNilHandleAndNilRecorderAreInert(t *testing.T) {
	var rec *Recorder
	if rec.Sample() {
		t.Error("nil recorder sampled in")
	}
	h := rec.Start(1, "lock", "a", lock.S)
	if h != nil {
		t.Fatalf("nil recorder Start = %v, want nil", h)
	}
	h.Child("acquire", "a", lock.S).End(nil) // must not panic
	h.End(nil)
	if got := rec.FinishTxn(1, "commit"); got != nil {
		t.Errorf("nil recorder FinishTxn = %v", got)
	}
}

func TestSampling(t *testing.T) {
	rec := NewRecorder(Options{SampleShift: 2}) // 1 in 4
	n := 0
	for i := 0; i < 64; i++ {
		if rec.Sample() {
			n++
		}
	}
	if n != 16 {
		t.Errorf("sampled %d of 64 calls at shift 2, want 16", n)
	}
	if rec.SampledCalls() != 16 {
		t.Errorf("SampledCalls = %d, want 16", rec.SampledCalls())
	}
}

func TestFlightRecorderRingBounds(t *testing.T) {
	rec := NewRecorder(Options{RingSize: 4, Rings: 1})
	for i := 0; i < 20; i++ {
		rec.Start(1, "acquire", "a", lock.S).End(nil)
	}
	recent := rec.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(recent))
	}
	// Oldest-first: the survivors are the last 4 completions.
	for i := 1; i < len(recent); i++ {
		if recent[i].Start.Before(recent[i-1].Start) {
			t.Errorf("Recent not in start order: %v", recent)
		}
	}
	if got := rec.Recent(2); len(got) != 2 {
		t.Errorf("Recent(2) = %d spans, want 2", len(got))
	}
	if rec.SpanCount() != 20 {
		t.Errorf("SpanCount = %d, want 20", rec.SpanCount())
	}
}

func TestTreeRendering(t *testing.T) {
	rec := NewRecorder(Options{})
	root := rec.Start(3, "lock", "db1/seg1/cells/c1/robots/r1", lock.X)
	root.Child("upward", "db1", lock.IX).End(nil)
	down := root.Child("downward", "db1/seg1/arms/a1", lock.X)
	down.Child("acquire", "db1/seg1/arms/a1", lock.X).End(nil)
	down.End(nil)
	root.End(nil)

	out := Tree(rec.SpansOf(3))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("tree = %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "lock X db1/seg1/cells/c1/robots/r1") {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  upward IX db1 ") {
		t.Errorf("upward line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "    acquire X db1/seg1/arms/a1") {
		t.Errorf("nested acquire line = %q", lines[3])
	}
	if strings.Contains(out, "(open)") {
		t.Errorf("closed spans rendered open:\n%s", out)
	}
}

func TestAttachSinkAfterConstruction(t *testing.T) {
	rec := NewRecorder(Options{})
	sink := &captureSink{}
	rec.AttachSink(sink)
	rec.Start(9, "lock", "a", lock.S).End(nil)
	rec.FinishTxn(9, "abort")
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.spans) != 1 || sink.outcomes[0] != "abort" {
		t.Fatalf("late sink saw outcomes=%v", sink.outcomes)
	}
}
