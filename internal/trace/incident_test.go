package trace

import (
	"context"
	"errors"
	"flag"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"colock/internal/lock"
)

var externalIncident = flag.String("incidentfile", "",
	"path to an incident JSONL file to validate (used by `make trace-demo`)")

// TestExternalIncidentFileParses validates an incident dump produced outside
// the test process — the `make trace-demo` gate pipes a scripted colockshell
// session into a temp dir and hands the resulting file in here. Skipped when
// no -incidentfile is given.
func TestExternalIncidentFileParses(t *testing.T) {
	if *externalIncident == "" {
		t.Skip("no -incidentfile given")
	}
	inc, err := ParseIncidentFile(*externalIncident)
	if err != nil {
		t.Fatalf("incident file does not parse: %v", err)
	}
	if inc.Reason != "timeout" && inc.Reason != "victim" {
		t.Errorf("incident reason = %q, want timeout or victim", inc.Reason)
	}
	if len(inc.Spans) == 0 {
		t.Error("incident carries no victim span tree")
	}
	if inc.Queues == nil {
		t.Error("incident carries no queue snapshot")
	}
	if !strings.Contains(inc.DOT, "digraph") {
		t.Errorf("incident waits-for graph is not DOT:\n%s", inc.DOT)
	}
}

func TestManualIncidentRoundTrip(t *testing.T) {
	m := lock.NewManager(lock.Options{})
	rec := NewRecorder(Options{ShardOf: m.ShardOf})
	dir := t.TempDir()
	iw := NewIncidentWriter(dir, rec, m, IncidentOptions{})

	if err := m.AcquireCtx(context.Background(), 1, "db1/seg1/cells/c1", lock.X); err != nil {
		t.Fatal(err)
	}
	sp := rec.Start(1, "lock", "db1/seg1/cells/c1", lock.X)
	sp.Child("acquire", "db1/seg1/cells/c1", lock.X).End(nil)
	// Leave the root span open: an incident mid-operation must show it.

	path, err := iw.Trigger("manual", 1, "db1/seg1/cells/c1", "X")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("incident written to %s, want dir %s", path, dir)
	}

	inc, err := ParseIncidentFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Reason != "manual" || inc.Txn != 1 || inc.Resource != "db1/seg1/cells/c1" || inc.Mode != "X" {
		t.Errorf("incident header = %+v", inc)
	}
	if len(inc.Spans) != 2 {
		t.Fatalf("incident spans = %d, want 2", len(inc.Spans))
	}
	if !inc.Spans[0].Open {
		t.Errorf("root span not marked open: %+v", inc.Spans[0])
	}
	if inc.Spans[0].Shard != m.ShardOf("db1/seg1/cells/c1") {
		t.Errorf("span shard = %d, want %d", inc.Spans[0].Shard, m.ShardOf("db1/seg1/cells/c1"))
	}
	if len(inc.Queues) != 1 || inc.Queues[0].Resource != "db1/seg1/cells/c1" {
		t.Errorf("incident queues = %+v", inc.Queues)
	}
	if !strings.Contains(inc.DOT, "digraph waitsfor") {
		t.Errorf("incident DOT = %q", inc.DOT)
	}

	infos := iw.Incidents()
	if len(infos) != 1 || infos[0].Reason != "manual" || infos[0].Spans != 2 || infos[0].Path != path {
		t.Errorf("Incidents() = %+v", infos)
	}
}

func TestIncidentAutoOnTimeout(t *testing.T) {
	m := lock.NewManager(lock.Options{Policy: lock.PolicyNone})
	rec := NewRecorder(Options{ShardOf: m.ShardOf})
	iw := NewIncidentWriter(t.TempDir(), rec, m, IncidentOptions{})
	m.AttachSink(iw)

	if err := m.AcquireCtx(context.Background(), 1, "a", lock.X); err != nil {
		t.Fatal(err)
	}
	sp := rec.Start(2, "lock", "a", lock.X)
	err := m.AcquireCtx(context.Background(), 2, "a", lock.X, lock.WithTimeout(5*time.Millisecond))
	sp.End(err)
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}

	infos := iw.Incidents()
	if len(infos) != 1 {
		t.Fatalf("incidents = %+v, want 1", infos)
	}
	if infos[0].Reason != "timeout" || infos[0].Txn != 2 {
		t.Errorf("incident = %+v, want timeout for txn 2", infos[0])
	}
	inc, err := ParseIncidentFile(infos[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	// The dump is taken during event delivery, before the caller's End runs:
	// the victim's lock span is present and still open.
	if len(inc.Spans) != 1 || !inc.Spans[0].Open {
		t.Fatalf("incident spans = %+v, want one open span", inc.Spans)
	}
	// Txn 1 still holds X on a in the queue snapshot.
	if len(inc.Queues) != 1 || len(inc.Queues[0].Granted) != 1 || inc.Queues[0].Granted[0].Txn != 1 {
		t.Errorf("incident queues = %+v", inc.Queues)
	}
	m.ReleaseAll(1)
}

func TestIncidentAutoOnDeadlockVictim(t *testing.T) {
	m := lock.NewManager(lock.Options{})
	rec := NewRecorder(Options{ShardOf: m.ShardOf})
	iw := NewIncidentWriter(t.TempDir(), rec, m, IncidentOptions{})
	m.AttachSink(iw)

	if err := m.AcquireCtx(context.Background(), 1, "a", lock.X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "b", lock.X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 1, "b", lock.X) }()
	for i := 0; m.WaitingTxns() == 0; i++ {
		if i > 2000 {
			t.Fatal("txn 1 never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Txn 2 (younger) closes the cycle and is chosen as the victim.
	err := m.AcquireCtx(context.Background(), 2, "a", lock.X)
	if !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)

	infos := iw.Incidents()
	if len(infos) != 1 {
		t.Fatalf("incidents = %+v, want 1", infos)
	}
	if infos[0].Reason != "victim" || infos[0].Txn != 2 {
		t.Errorf("incident = %+v, want victim for txn 2", infos[0])
	}
	if _, err := ParseIncidentFile(infos[0].Path); err != nil {
		t.Fatal(err)
	}
}

func TestIncidentCap(t *testing.T) {
	m := lock.NewManager(lock.Options{})
	iw := NewIncidentWriter(t.TempDir(), nil, m, IncidentOptions{MaxIncidents: 2})
	for i := 0; i < 3; i++ {
		_, err := iw.Trigger("manual", lock.TxnID(i+1), "a", "X")
		if i < 2 && err != nil {
			t.Fatal(err)
		}
		if i == 2 && err == nil {
			t.Fatal("third incident exceeded cap but was written")
		}
	}
	if len(iw.Incidents()) != 2 || iw.Dropped() != 1 {
		t.Errorf("incidents=%d dropped=%d, want 2 and 1", len(iw.Incidents()), iw.Dropped())
	}
}

func TestParseIncidentRejectsMalformed(t *testing.T) {
	if _, err := ParseIncident(strings.NewReader("")); err == nil {
		t.Error("empty file parsed")
	}
	if _, err := ParseIncident(strings.NewReader(`{"type":"span","span":{"txn":1}}` + "\n")); err == nil {
		t.Error("file without header parsed")
	}
	if _, err := ParseIncident(strings.NewReader(`{"type":"bogus"}` + "\n")); err == nil {
		t.Error("unknown line type parsed")
	}
	if _, err := ParseIncident(strings.NewReader("not json\n")); err == nil {
		t.Error("non-JSON line parsed")
	}
}
