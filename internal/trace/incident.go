package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"colock/internal/lock"
)

// IncidentWriter is the flight recorder's dump trigger: attached to the lock
// manager as an event sink, it reacts to deadlock-victim and acquire-timeout
// events by writing a self-contained JSONL incident file — the victim's
// buffered span tree, the flight recorder's recent spans, the live queue
// snapshot, and the waits-for graph in DOT — so a post-mortem needs no live
// process. Record runs under the manager's sink contract (no latch held),
// which is what makes the SnapshotQueues/WaitsForDOT callbacks safe.
//
// Event sampling gates the trigger: a victim/timeout whose operation fell
// outside the manager's 1-in-2^EventSampleShift sample emits no event and
// therefore dumps no incident. Run incident-bearing managers unsampled
// (EventSampleShift 0), as colockshell does.
type IncidentWriter struct {
	dir    string
	rec    *Recorder
	mgr    *lock.Manager
	max    int
	offset func() uint64

	mu        sync.Mutex
	seq       int
	incidents []IncidentInfo
	dropped   int
}

// IncidentInfo is one written incident file's summary.
type IncidentInfo struct {
	Seq      int           `json:"seq"`
	Reason   string        `json:"reason"` // "victim", "timeout", "manual", ...
	Txn      lock.TxnID    `json:"txn"`
	Resource lock.Resource `json:"resource,omitempty"`
	Mode     string        `json:"mode,omitempty"`
	At       time.Time     `json:"at"`
	Spans    int           `json:"spans"` // victim span-tree lines in the file
	Path     string        `json:"path"`
	// JournalOffset is the durable journal's position (accepted records) at
	// dump time, when a journal was wired: `colockreplay -around <file>`
	// replays Seq ≤ JournalOffset to reconstruct the lead-up.
	JournalOffset uint64 `json:"journal_offset,omitempty"`
}

// IncidentOptions configures an IncidentWriter.
type IncidentOptions struct {
	// MaxIncidents caps the number of files written (default 64); further
	// triggers are counted as dropped instead of flooding the disk.
	MaxIncidents int
	// JournalOffset, when set, is sampled at dump time and recorded in the
	// incident header for offline correlation; wire it to the durable
	// journal writer's Offset method.
	JournalOffset func() uint64
}

// NewIncidentWriter builds a writer dumping into dir (created on demand).
// rec supplies the span buffers and flight recorder; mgr the queue snapshot
// and waits-for graph.
func NewIncidentWriter(dir string, rec *Recorder, mgr *lock.Manager, opts IncidentOptions) *IncidentWriter {
	max := opts.MaxIncidents
	if max <= 0 {
		max = 64
	}
	return &IncidentWriter{dir: dir, rec: rec, mgr: mgr, max: max, offset: opts.JournalOffset}
}

// Record is the lock.EventSink implementation: deadlock-victim and
// acquire-timeout events trigger an automatic dump.
func (iw *IncidentWriter) Record(e lock.Event) {
	if e.Kind != "victim" && e.Kind != "timeout" {
		return
	}
	_, _ = iw.Trigger(e.Kind, e.Txn, e.Resource, e.Mode.String())
}

// Incidents lists the written incidents, oldest first.
func (iw *IncidentWriter) Incidents() []IncidentInfo {
	iw.mu.Lock()
	defer iw.mu.Unlock()
	return append([]IncidentInfo(nil), iw.incidents...)
}

// Dropped returns the number of triggers suppressed by the MaxIncidents cap.
func (iw *IncidentWriter) Dropped() int {
	iw.mu.Lock()
	defer iw.mu.Unlock()
	return iw.dropped
}

// incidentLine is one JSONL line of an incident file. Exactly one of the
// payload fields is set, selected by Type.
type incidentLine struct {
	Type string `json:"type"` // "incident", "span", "recent", "queues", "waitsfor"

	// Type "incident" (the header, always the first line).
	Reason        string        `json:"reason,omitempty"`
	Txn           lock.TxnID    `json:"txn,omitempty"`
	Resource      lock.Resource `json:"resource,omitempty"`
	Mode          string        `json:"mode,omitempty"`
	At            *time.Time    `json:"at,omitempty"`
	JournalOffset uint64        `json:"journal_offset,omitempty"`

	// Types "span" (victim's buffered tree) and "recent" (flight recorder).
	Span *Span `json:"span,omitempty"`

	// Type "queues".
	Queues []lock.QueueInfo `json:"queues,omitempty"`

	// Type "waitsfor".
	DOT string `json:"dot,omitempty"`
}

// Trigger writes an incident dump now, regardless of event kind — the
// manual escape hatch behind colockshell's .incident command. It returns
// the written file's path.
func (iw *IncidentWriter) Trigger(reason string, txn lock.TxnID, res lock.Resource, mode string) (string, error) {
	iw.mu.Lock()
	if len(iw.incidents) >= iw.max {
		iw.dropped++
		iw.mu.Unlock()
		return "", fmt.Errorf("trace: incident cap %d reached", iw.max)
	}
	iw.seq++
	seq := iw.seq
	iw.mu.Unlock()

	now := time.Now()
	info := IncidentInfo{Seq: seq, Reason: reason, Txn: txn, Resource: res, Mode: mode, At: now}
	if iw.offset != nil {
		info.JournalOffset = iw.offset()
	}
	var spans []Span
	if iw.rec != nil {
		spans = iw.rec.SpansOf(txn)
	}
	info.Spans = len(spans)

	if err := os.MkdirAll(iw.dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(iw.dir, fmt.Sprintf("incident-%04d-%s-txn%d.jsonl", seq, reason, txn))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	writeLine := func(l incidentLine) {
		if err == nil {
			err = enc.Encode(l)
		}
	}
	writeLine(incidentLine{Type: "incident", Reason: reason, Txn: txn, Resource: res, Mode: mode, At: &now, JournalOffset: info.JournalOffset})
	for i := range spans {
		writeLine(incidentLine{Type: "span", Span: &spans[i]})
	}
	if iw.rec != nil {
		recent := iw.rec.Recent(0)
		for i := range recent {
			writeLine(incidentLine{Type: "recent", Span: &recent[i]})
		}
	}
	if iw.mgr != nil {
		writeLine(incidentLine{Type: "queues", Queues: iw.mgr.SnapshotQueues()})
		writeLine(incidentLine{Type: "waitsfor", DOT: iw.mgr.WaitsForDOT()})
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}

	info.Path = path
	iw.mu.Lock()
	iw.incidents = append(iw.incidents, info)
	iw.mu.Unlock()
	return path, nil
}

// Incident is a parsed incident file.
type Incident struct {
	Reason   string
	Txn      lock.TxnID
	Resource lock.Resource
	Mode     string
	At       time.Time
	// JournalOffset is the durable journal position at dump time (zero when
	// no journal was wired).
	JournalOffset uint64
	Spans         []Span // the victim's buffered span tree
	Recent        []Span // flight-recorder spans
	Queues        []lock.QueueInfo
	DOT           string
}

// ParseIncident reads an incident dump back, validating that every line is
// well-formed JSONL of a known type and that the header comes first.
func ParseIncident(r io.Reader) (*Incident, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	inc := &Incident{}
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		n++
		var l incidentLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("trace: incident line %d: %w", n, err)
		}
		switch l.Type {
		case "incident":
			if n != 1 {
				return nil, fmt.Errorf("trace: incident header on line %d, want line 1", n)
			}
			inc.Reason, inc.Txn, inc.Resource, inc.Mode = l.Reason, l.Txn, l.Resource, l.Mode
			inc.JournalOffset = l.JournalOffset
			if l.At != nil {
				inc.At = *l.At
			}
		case "span":
			if l.Span == nil {
				return nil, fmt.Errorf("trace: incident line %d: span line without span", n)
			}
			inc.Spans = append(inc.Spans, *l.Span)
		case "recent":
			if l.Span == nil {
				return nil, fmt.Errorf("trace: incident line %d: recent line without span", n)
			}
			inc.Recent = append(inc.Recent, *l.Span)
		case "queues":
			inc.Queues = l.Queues
		case "waitsfor":
			inc.DOT = l.DOT
		default:
			return nil, fmt.Errorf("trace: incident line %d: unknown type %q", n, l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("trace: empty incident file")
	}
	if inc.Reason == "" {
		return nil, fmt.Errorf("trace: incident file has no header line")
	}
	return inc, nil
}

// ParseIncidentFile is ParseIncident over a file path.
func ParseIncidentFile(path string) (*Incident, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseIncident(f)
}
