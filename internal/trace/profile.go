package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"colock/internal/lock"
)

// Profile folds blocked time into a contention profile keyed by
// (resource, mode, waiting txn → holding txn). It is a lock.EventSink:
// "wait" events carry the blocker set the manager computed under the shard
// latch (Event.Blockers), and the matching grant/timeout/cancel/victim
// event carries the blocked duration; the pair becomes one folded sample.
//
// The folded-stack text output (FoldedStacks) is the flame-graph interchange
// format — semicolon-separated frames, a space, and an integer value — so
// blocked time renders directly in flamegraph.pl, inferno, speedscope, or
// `pprof -flame` after a trivial conversion. Frames contain no spaces or
// semicolons by construction. The value unit is nanoseconds of blocked
// time; the full Dur is attributed to every blocker of the wait (a wait
// behind two holders cost the waiter that time against both).
type Profile struct {
	mu      sync.Mutex
	pending map[lock.TxnID]pendingWait
	cells   map[profileKey]*profileCell
	dropped uint64 // waits discarded by the pending-map cap
}

// maxPending bounds the pending-wait map against leak when sampling splits
// a wait from its terminal event (the wait traced, the grant not).
const maxPending = 8192

type pendingWait struct {
	res      lock.Resource
	mode     string
	blockers []lock.TxnID
}

type profileKey struct {
	res    lock.Resource
	mode   string
	waiter lock.TxnID
	holder lock.TxnID // 0 when the blocker set was unknown
}

type profileCell struct {
	ns    int64
	count uint64
}

// NewProfile builds an empty contention profile.
func NewProfile() *Profile {
	return &Profile{
		pending: make(map[lock.TxnID]pendingWait),
		cells:   make(map[profileKey]*profileCell),
	}
}

// Record is the lock.EventSink implementation.
func (p *Profile) Record(e lock.Event) {
	switch e.Kind {
	case "wait":
		p.mu.Lock()
		if len(p.pending) >= maxPending {
			p.dropped++
		} else {
			p.pending[e.Txn] = pendingWait{res: e.Resource, mode: e.Mode.String(), blockers: e.Blockers}
		}
		p.mu.Unlock()
	case "grant", "convert":
		p.mu.Lock()
		pw, ok := p.pending[e.Txn]
		delete(p.pending, e.Txn)
		if ok && e.Waited && e.Dur > 0 {
			p.foldLocked(pw, e)
		}
		p.mu.Unlock()
	case "timeout", "cancel", "victim":
		p.mu.Lock()
		pw, ok := p.pending[e.Txn]
		delete(p.pending, e.Txn)
		if !ok {
			// A wait-die victim dies without ever queueing; its victim
			// event carries the blockers directly.
			pw = pendingWait{res: e.Resource, mode: e.Mode.String(), blockers: e.Blockers}
		}
		if e.Dur > 0 {
			p.foldLocked(pw, e)
		}
		p.mu.Unlock()
	case "release-all":
		p.mu.Lock()
		delete(p.pending, e.Txn)
		p.mu.Unlock()
	}
}

// foldLocked adds one blocked-time sample. Caller holds p.mu.
func (p *Profile) foldLocked(pw pendingWait, e lock.Event) {
	holders := pw.blockers
	if len(holders) == 0 {
		holders = []lock.TxnID{0}
	}
	for _, h := range holders {
		k := profileKey{res: pw.res, mode: pw.mode, waiter: e.Txn, holder: h}
		c := p.cells[k]
		if c == nil {
			c = &profileCell{}
			p.cells[k] = c
		}
		c.ns += int64(e.Dur)
		c.count++
	}
}

// Entry is one contention-profile row.
type Entry struct {
	Resource  lock.Resource `json:"resource"`
	Mode      string        `json:"mode"`
	Waiter    lock.TxnID    `json:"waiter"`
	Holder    lock.TxnID    `json:"holder"` // 0 = unknown
	BlockedNS int64         `json:"blocked_ns"`
	Count     uint64        `json:"count"`
}

// Entries returns the profile rows sorted by blocked time, largest first.
func (p *Profile) Entries() []Entry {
	p.mu.Lock()
	out := make([]Entry, 0, len(p.cells))
	for k, c := range p.cells {
		out = append(out, Entry{Resource: k.res, Mode: k.mode, Waiter: k.waiter, Holder: k.holder, BlockedNS: c.ns, Count: c.count})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].BlockedNS != out[j].BlockedNS {
			return out[i].BlockedNS > out[j].BlockedNS
		}
		return foldedLine(out[i]) < foldedLine(out[j])
	})
	return out
}

// foldedLine renders one entry in folded-stack form:
//
//	txn:<waiter>;<mode>:<resource>;blocked-on:txn:<holder> <ns>
//
// Hierarchical resource names keep their slashes; frames never contain
// spaces or semicolons (resource names are path strings).
func foldedLine(e Entry) string {
	holder := fmt.Sprintf("blocked-on:txn:%d", e.Holder)
	if e.Holder == 0 {
		holder = "blocked-on:unknown"
	}
	return fmt.Sprintf("txn:%d;%s:%s;%s %d", e.Waiter, e.Mode, e.Resource, holder, e.BlockedNS)
}

// FoldedStacks renders the whole profile as folded-stack text, one sample
// line per (resource, mode, waiter, holder) cell, sorted lexicographically
// (the order flamegraph tooling expects is irrelevant, but a stable order
// makes the output diffable).
func (p *Profile) FoldedStacks() string {
	entries := p.Entries()
	lines := make([]string, len(entries))
	for i, e := range entries {
		lines[i] = foldedLine(e)
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// WriteFolded writes FoldedStacks to w.
func (p *Profile) WriteFolded(w io.Writer) error {
	_, err := io.WriteString(w, p.FoldedStacks())
	return err
}

// TotalBlocked returns the total folded blocked time in nanoseconds.
func (p *Profile) TotalBlocked() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ns int64
	for _, c := range p.cells {
		ns += c.ns
	}
	return ns
}

// Dropped returns the number of waits discarded by the pending-map cap.
func (p *Profile) Dropped() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Reset clears the profile (folded cells and pending waits). Named Reset,
// not ResetStats, so that lock.Manager.ResetStats — which resets every
// attached sink implementing ResetStats — does not silently erase a profile
// being accumulated across benchmark phases.
func (p *Profile) Reset() {
	p.mu.Lock()
	p.pending = make(map[lock.TxnID]pendingWait)
	p.cells = make(map[profileKey]*profileCell)
	p.mu.Unlock()
}
