// Package trace is the per-transaction tracing subsystem: span trees for
// protocol lock calls, an always-on flight recorder of recent spans, and
// blocked-time contention profiles.
//
// The aggregate telemetry in package obs answers "how slow are locks on
// average"; this package answers "what did THIS transaction go through".
// One user-level Lock call on a complex object fans out — the protocol
// intention-locks the ancestor chain (rules 1–5), propagates implicitly
// upward above entry points and downward into referenced inner units
// (§4.4.2) — and each of those implicit acquisitions becomes a child span
// under the call's root span, carrying resource, mode, lockable-unit kind,
// lock-table shard and wall-clock timing.
//
// Spans are buffered per transaction (transactions are single threads of
// execution, so the buffer append is uncontended; a leaf mutex guards it
// only against concurrent incident dumps) and flushed to attachable
// SpanSinks at commit/abort, mirroring the lock manager's sink-after-latch
// discipline: sinks run on the finishing goroutine with no latch held.
package trace

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/lock"
)

// Span is one node of a transaction's trace tree. The root span of a tree
// (Parent == 0) is a user-level protocol Lock/LockPath call; child spans are
// the protocol's rule applications: "upward" for an implicit intention lock
// on an ancestor, "downward" (or "downward-rule4prime" when authorization
// demoted X to S) for an implicit propagation into a dependent inner unit,
// and "acquire" for the lock-manager acquisition on the requested node
// itself.
type Span struct {
	Txn      lock.TxnID    `json:"txn"`
	ID       uint64        `json:"id"`               // per-transaction, 1-based
	Parent   uint64        `json:"parent,omitempty"` // 0 for root spans
	Kind     string        `json:"kind"`
	Resource lock.Resource `json:"resource"`
	Mode     string        `json:"mode"`
	Unit     string        `json:"unit,omitempty"` // lockable-unit kind
	Shard    int           `json:"shard"`
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur_ns"`
	Err      string        `json:"err,omitempty"`
	// Open marks a span still in flight — visible only in incident dumps
	// taken while the operation is blocked or unwinding.
	Open bool `json:"open,omitempty"`
}

// SpanSink consumes a finished transaction's span tree. Sinks are invoked by
// the goroutine finishing the transaction, with no lock-manager latch held,
// so a sink may call back into the manager or recorder.
type SpanSink interface {
	RecordSpans(txn lock.TxnID, outcome string, spans []Span)
}

// Options configures a Recorder.
type Options struct {
	// SampleShift samples tracing by user-level lock call: only one in
	// 2^SampleShift root spans is recorded (children ride on the root's
	// decision). 0 traces every call.
	SampleShift uint8
	// RingSize is the per-ring capacity of the flight recorder (completed
	// spans; default 256, negative disables the flight recorder).
	RingSize int
	// Rings is the number of flight-recorder rings (rounded up to a power
	// of two, default 16). Completed spans are routed by their lock-table
	// shard, so disjoint lock traffic lands on disjoint rings.
	Rings int
	// KindOf classifies a resource into a lockable-unit kind label for the
	// span's Unit field; nil uses a path-depth default mirroring
	// obs.DepthKindOf.
	KindOf func(lock.Resource) string
	// ShardOf maps a resource to its lock-table stripe (wire it to
	// lock.Manager.ShardOf); nil stamps shard 0.
	ShardOf func(lock.Resource) int
	// Sinks receive every finished transaction's spans; AttachSink adds
	// more after construction.
	Sinks []SpanSink
}

// depthKind is the default unit classifier (path depth, as in obs).
func depthKind(r lock.Resource) string {
	switch strings.Count(string(r), "/") {
	case 0:
		return "database"
	case 1:
		return "segment"
	case 2:
		return "relation"
	case 3:
		return "entry-point"
	}
	return "node"
}

// txnTrace is one transaction's span buffer. The owning transaction is a
// single thread of execution, so appends never contend; the mutex exists
// for concurrent readers (incident dumps, /trace/spans).
type txnTrace struct {
	mu    sync.Mutex
	next  uint64
	spans []Span
}

// txnBufShard is one stripe of the per-transaction buffer registry. n
// mirrors len(buf) so FinishTxn on an untraced transaction — the common
// case at high sample shifts — can bail out on one atomic load without
// taking the mutex.
type txnBufShard struct {
	mu  sync.Mutex
	n   atomic.Int64
	buf map[lock.TxnID]*txnTrace
}

// Recorder records span trees. All methods are safe for concurrent use.
type Recorder struct {
	kindOf  func(lock.Resource) string
	shardOf func(lock.Resource) int

	sampleMask uint64
	opSeq      atomic.Uint64

	shards []*txnBufShard
	mask   uint32

	rings    []*spanRing
	ringMask int

	sinks atomic.Pointer[[]SpanSink]

	spans   atomic.Uint64 // completed spans, for overhead accounting
	sampled atomic.Uint64 // root-span sampling decisions that traced
}

// NewRecorder builds a recorder.
func NewRecorder(opts Options) *Recorder {
	kindOf := opts.KindOf
	if kindOf == nil {
		kindOf = depthKind
	}
	shardOf := opts.ShardOf
	if shardOf == nil {
		shardOf = func(lock.Resource) int { return 0 }
	}
	const nShards = 64
	r := &Recorder{
		kindOf:     kindOf,
		shardOf:    shardOf,
		sampleMask: (uint64(1) << opts.SampleShift) - 1,
		shards:     make([]*txnBufShard, nShards),
		mask:       nShards - 1,
	}
	for i := range r.shards {
		r.shards[i] = &txnBufShard{buf: make(map[lock.TxnID]*txnTrace)}
	}
	if opts.RingSize >= 0 {
		size := opts.RingSize
		if size == 0 {
			size = 256
		}
		n := opts.Rings
		if n <= 0 {
			n = 16
		}
		p := 1
		for p < n {
			p <<= 1
		}
		r.rings = make([]*spanRing, p)
		for i := range r.rings {
			r.rings[i] = &spanRing{cap: size}
		}
		r.ringMask = p - 1
	}
	if len(opts.Sinks) > 0 {
		sinks := append([]SpanSink(nil), opts.Sinks...)
		r.sinks.Store(&sinks)
	}
	return r
}

// AttachSink adds a span consumer after construction.
func (r *Recorder) AttachSink(s SpanSink) {
	if s == nil {
		return
	}
	for {
		old := r.sinks.Load()
		var sinks []SpanSink
		if old != nil {
			sinks = append(sinks, *old...)
		}
		sinks = append(sinks, s)
		if r.sinks.CompareAndSwap(old, &sinks) {
			return
		}
	}
}

// Sample makes the per-call sampling decision: true when the next user-level
// lock call should be traced. Sampled-out calls pay one atomic add and never
// touch the clock or the buffer registry.
func (r *Recorder) Sample() bool {
	if r == nil {
		return false
	}
	if r.sampleMask != 0 && r.opSeq.Add(1)&r.sampleMask != 0 {
		return false
	}
	r.sampled.Add(1)
	return true
}

func (r *Recorder) bufFor(txn lock.TxnID) *txnTrace {
	s := r.shards[uint32(txn)&r.mask]
	s.mu.Lock()
	tt := s.buf[txn]
	if tt == nil {
		tt = &txnTrace{}
		s.buf[txn] = tt
		s.n.Add(1)
	}
	s.mu.Unlock()
	return tt
}

// SpanHandle identifies an in-flight span. A nil handle is inert: Child and
// End on it are no-ops, so call sites need no sampling guards.
type SpanHandle struct {
	rec *Recorder
	tt  *txnTrace
	txn lock.TxnID
	id  uint64
	idx int
}

// Start opens a root span for a user-level lock call. Callers decide
// sampling first (Sample); Start itself always records.
func (r *Recorder) Start(txn lock.TxnID, kind string, res lock.Resource, mode lock.Mode) *SpanHandle {
	if r == nil {
		return nil
	}
	return r.start(txn, 0, kind, res, mode)
}

// Child opens a span under h. Nil-safe.
func (h *SpanHandle) Child(kind string, res lock.Resource, mode lock.Mode) *SpanHandle {
	if h == nil {
		return nil
	}
	return h.rec.start(h.txn, h.id, kind, res, mode)
}

func (r *Recorder) start(txn lock.TxnID, parent uint64, kind string, res lock.Resource, mode lock.Mode) *SpanHandle {
	tt := r.bufFor(txn)
	sp := Span{
		Txn:      txn,
		Parent:   parent,
		Kind:     kind,
		Resource: res,
		Mode:     mode.String(),
		Unit:     r.kindOf(res),
		Shard:    r.shardOf(res),
		Start:    time.Now(),
		Open:     true,
	}
	tt.mu.Lock()
	tt.next++
	sp.ID = tt.next
	tt.spans = append(tt.spans, sp)
	idx := len(tt.spans) - 1
	tt.mu.Unlock()
	return &SpanHandle{rec: r, tt: tt, txn: txn, id: sp.ID, idx: idx}
}

// End closes the span, stamping its duration and error; the completed span
// is also pushed into the flight recorder. Nil-safe.
func (h *SpanHandle) End(err error) {
	if h == nil {
		return
	}
	h.tt.mu.Lock()
	sp := &h.tt.spans[h.idx]
	sp.Dur = time.Since(sp.Start)
	sp.Open = false
	if err != nil {
		sp.Err = err.Error()
	}
	done := *sp
	h.tt.mu.Unlock()
	h.rec.spans.Add(1)
	if h.rec.rings != nil {
		h.rec.rings[done.Shard&h.rec.ringMask].add(done)
	}
}

// SpansOf returns a copy of txn's buffered (not yet flushed) spans, in start
// order; spans still in flight have Open set.
func (r *Recorder) SpansOf(txn lock.TxnID) []Span {
	s := r.shards[uint32(txn)&r.mask]
	s.mu.Lock()
	tt := s.buf[txn]
	s.mu.Unlock()
	if tt == nil {
		return nil
	}
	tt.mu.Lock()
	out := append([]Span(nil), tt.spans...)
	tt.mu.Unlock()
	return out
}

// FinishTxn flushes txn's buffered spans to every attached sink and drops
// the buffer. outcome is "commit" or "abort". It returns the flushed spans
// (nil when the transaction recorded none).
func (r *Recorder) FinishTxn(txn lock.TxnID, outcome string) []Span {
	if r == nil {
		return nil
	}
	s := r.shards[uint32(txn)&r.mask]
	if s.n.Load() == 0 {
		// Nothing buffered anywhere in this stripe — the common case for
		// untraced transactions at high sample shifts.
		return nil
	}
	s.mu.Lock()
	tt := s.buf[txn]
	if tt != nil {
		delete(s.buf, txn)
		s.n.Add(-1)
	}
	s.mu.Unlock()
	if tt == nil {
		return nil
	}
	tt.mu.Lock()
	spans := tt.spans
	tt.spans = nil
	tt.mu.Unlock()
	if len(spans) == 0 {
		return nil
	}
	if p := r.sinks.Load(); p != nil {
		for _, sink := range *p {
			sink.RecordSpans(txn, outcome, spans)
		}
	}
	return spans
}

// Recent returns up to n of the most recently completed spans from the
// flight recorder (oldest first); n ≤ 0 returns everything retained.
func (r *Recorder) Recent(n int) []Span {
	var out []Span
	for _, g := range r.rings {
		out = g.snapshot(out)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// SpanCount returns the number of completed spans recorded so far.
func (r *Recorder) SpanCount() uint64 { return r.spans.Load() }

// SampledCalls returns the number of user-level calls that traced.
func (r *Recorder) SampledCalls() uint64 { return r.sampled.Load() }

// spanRing is one bounded flight-recorder buffer behind a leaf mutex.
type spanRing struct {
	mu    sync.Mutex
	buf   []Span
	start int
	cap   int
}

func (g *spanRing) add(sp Span) {
	g.mu.Lock()
	if len(g.buf) < g.cap {
		g.buf = append(g.buf, sp)
	} else {
		g.buf[g.start] = sp
		g.start = (g.start + 1) % g.cap
	}
	g.mu.Unlock()
}

func (g *spanRing) snapshot(dst []Span) []Span {
	g.mu.Lock()
	dst = append(dst, g.buf[g.start:]...)
	dst = append(dst, g.buf[:g.start]...)
	g.mu.Unlock()
	return dst
}

// Tree renders a span slice as an indented tree (children under parents, in
// ID order), one line per span — the .spans view of colockshell.
func Tree(spans []Span) string {
	children := make(map[uint64][]Span)
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for _, c := range children {
		sort.Slice(c, func(i, j int) bool { return c[i].ID < c[j].ID })
	}
	var b strings.Builder
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, sp := range children[parent] {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(sp.Kind)
			b.WriteString(" ")
			b.WriteString(sp.Mode)
			b.WriteString(" ")
			b.WriteString(string(sp.Resource))
			if sp.Unit != "" {
				b.WriteString(" [")
				b.WriteString(sp.Unit)
				b.WriteString("]")
			}
			if sp.Open {
				b.WriteString(" (open)")
			} else {
				b.WriteString(" (")
				b.WriteString(sp.Dur.String())
				b.WriteString(")")
			}
			if sp.Err != "" {
				b.WriteString(" err=")
				b.WriteString(sp.Err)
			}
			b.WriteString("\n")
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}
