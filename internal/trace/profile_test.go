package trace

import (
	"context"
	"strings"
	"testing"
	"time"

	"colock/internal/lock"
)

// The folded-stack output format is an interchange contract with flamegraph
// tooling (flamegraph.pl, inferno, speedscope): semicolon-separated frames,
// one space, integer value. This test pins it exactly.
func TestFoldedStackFormatPinned(t *testing.T) {
	p := NewProfile()
	p.Record(lock.Event{Kind: "wait", Txn: 2, Resource: "db1/seg1/cells/c1", Mode: lock.X, Blockers: []lock.TxnID{1}})
	p.Record(lock.Event{Kind: "grant", Txn: 2, Resource: "db1/seg1/cells/c1", Mode: lock.X, Waited: true, Dur: 1500 * time.Nanosecond})

	got := p.FoldedStacks()
	want := "txn:2;X:db1/seg1/cells/c1;blocked-on:txn:1 1500\n"
	if got != want {
		t.Fatalf("folded stacks =\n%q\nwant\n%q", got, want)
	}
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("line %q has no value separator", line)
		}
		stack := line[:i]
		if strings.ContainsAny(stack, " \t") {
			t.Errorf("frames contain whitespace: %q", stack)
		}
		if len(strings.Split(stack, ";")) != 3 {
			t.Errorf("line %q: want 3 frames", line)
		}
	}
}

func TestProfileAttributesToEveryBlocker(t *testing.T) {
	p := NewProfile()
	p.Record(lock.Event{Kind: "wait", Txn: 3, Resource: "a", Mode: lock.X, Blockers: []lock.TxnID{1, 2}})
	p.Record(lock.Event{Kind: "grant", Txn: 3, Resource: "a", Mode: lock.X, Waited: true, Dur: 100})

	entries := p.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %+v, want 2 (one per blocker)", entries)
	}
	for _, e := range entries {
		if e.Waiter != 3 || e.BlockedNS != 100 || e.Count != 1 {
			t.Errorf("entry = %+v", e)
		}
	}
	if p.TotalBlocked() != 200 {
		t.Errorf("TotalBlocked = %d, want 200", p.TotalBlocked())
	}
}

func TestProfileTimeoutAndUnknownHolder(t *testing.T) {
	p := NewProfile()
	// Timeout after a wait folds under the wait's blockers.
	p.Record(lock.Event{Kind: "wait", Txn: 5, Resource: "a", Mode: lock.S, Blockers: []lock.TxnID{4}})
	p.Record(lock.Event{Kind: "timeout", Txn: 5, Resource: "a", Mode: lock.S, Dur: 300})
	// A wait-die victim with no prior wait event carries its own blockers.
	p.Record(lock.Event{Kind: "victim", Txn: 9, Resource: "b", Mode: lock.X, Dur: 50, Blockers: []lock.TxnID{8}})
	// A terminal event with no known blockers folds under "unknown".
	p.Record(lock.Event{Kind: "wait", Txn: 6, Resource: "c", Mode: lock.X})
	p.Record(lock.Event{Kind: "cancel", Txn: 6, Resource: "c", Mode: lock.X, Dur: 70})

	got := p.FoldedStacks()
	for _, want := range []string{
		"txn:5;S:a;blocked-on:txn:4 300\n",
		"txn:9;X:b;blocked-on:txn:8 50\n",
		"txn:6;X:c;blocked-on:unknown 70\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("folded stacks missing %q:\n%s", want, got)
		}
	}
}

func TestProfileIgnoresFastPathGrants(t *testing.T) {
	p := NewProfile()
	// Fast-path grant: no wait, Waited false.
	p.Record(lock.Event{Kind: "grant", Txn: 1, Resource: "a", Mode: lock.S, Dur: 10})
	if got := p.FoldedStacks(); got != "" {
		t.Errorf("fast-path grant folded: %q", got)
	}
	// release-all clears any dangling pending wait.
	p.Record(lock.Event{Kind: "wait", Txn: 2, Resource: "a", Mode: lock.X, Blockers: []lock.TxnID{1}})
	p.Record(lock.Event{Kind: "release-all", Txn: 2})
	p.Record(lock.Event{Kind: "grant", Txn: 2, Resource: "a", Mode: lock.X, Waited: true, Dur: 500})
	if got := p.FoldedStacks(); got != "" {
		t.Errorf("grant after release-all folded stale wait: %q", got)
	}
}

func TestProfileEndToEndWithManager(t *testing.T) {
	p := NewProfile()
	m := lock.NewManager(lock.Options{Policy: lock.PolicyNone, Sinks: []lock.EventSink{p}})
	if err := m.AcquireCtx(context.Background(), 1, "a", lock.X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 2, "a", lock.X) }()
	for i := 0; m.WaitingTxns() == 0; i++ {
		if i > 2000 {
			t.Fatal("txn 2 never queued")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(2 * time.Millisecond)
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)

	got := p.FoldedStacks()
	if !strings.HasPrefix(got, "txn:2;X:a;blocked-on:txn:1 ") {
		t.Fatalf("folded stacks = %q, want txn 2 blocked on txn 1 over a", got)
	}
	entries := p.Entries()
	if len(entries) != 1 || entries[0].BlockedNS < int64(2*time.Millisecond) {
		t.Errorf("entries = %+v, want one with ≥2ms blocked", entries)
	}

	p.Reset()
	if p.FoldedStacks() != "" || p.TotalBlocked() != 0 {
		t.Error("Reset did not clear the profile")
	}
}
