package schema

// PaperSchema builds the catalog of the paper's running example (Figure 1):
//
//	Relation "cells" (segment seg1):
//	  T{ cell_id:   str   (key)
//	     c_objects: S(T{ obj_id:int, obj_name:str })
//	     robots:    L(T{ robot_id:str, trajectory:str, effectors:S(ref(effectors)) }) }
//
//	Relation "effectors" (segment seg2):
//	  T{ eff_id: str (key), tool: str }
//
// The relation "cells" models a manufacturing cell containing cell-objects
// that can be manufactured by robots; the robots list is ordered by
// robot_id. The effectors (tools) usable by robots live in the relation
// "effectors", a library of effectors: one effector may be shared by
// different robots, which makes "cells" objects non-disjoint.
//
// Both relations are stored in different segments of the same database
// ("db1"), as assumed for Figure 5.
func PaperSchema() *Catalog {
	c := NewCatalog("db1")
	cells := &Relation{
		Name:    "cells",
		Segment: "seg1",
		Key:     "cell_id",
		Type: Tuple(
			F("cell_id", Str()),
			F("c_objects", Set(Tuple(
				F("obj_id", Int()),
				F("obj_name", Str()),
			))),
			F("robots", List(Tuple(
				F("robot_id", Str()),
				F("trajectory", Str()),
				F("effectors", Set(Ref("effectors"))),
			))),
		),
	}
	effectors := &Relation{
		Name:    "effectors",
		Segment: "seg2",
		Key:     "eff_id",
		Type: Tuple(
			F("eff_id", Str()),
			F("tool", Str()),
		),
	}
	// Register effectors first so that references validate regardless of
	// registration order checks; Validate tolerates any order anyway.
	if err := c.AddRelation(effectors); err != nil {
		panic(err) // impossible: fresh catalog
	}
	if err := c.AddRelation(cells); err != nil {
		panic(err)
	}
	if err := c.Validate(); err != nil {
		panic(err) // the paper schema is valid by construction
	}
	return c
}
