package schema

// Statistics is the "structural and statistical information" (§5) the
// lock-request planner consumes when anticipating lock escalations: relation
// cardinalities and average fan-outs of the collection-valued attributes.
//
// Paths are dotted attribute paths rooted at a relation name, e.g.
// "cells" (cardinality of the relation), "cells.robots" (average length of
// the robots list per cell), "cells.robots.effectors" (average number of
// effector references per robot).
type Statistics struct {
	card map[string]float64
}

// NewStatistics returns an empty statistics store.
func NewStatistics() Statistics {
	return Statistics{card: make(map[string]float64)}
}

// SetCard records the (average) cardinality for a path.
func (s *Statistics) SetCard(path string, n float64) {
	if s.card == nil {
		s.card = make(map[string]float64)
	}
	s.card[path] = n
}

// Card returns the recorded cardinality for a path and whether one exists.
func (s *Statistics) Card(path string) (float64, bool) {
	n, ok := s.card[path]
	return n, ok
}

// CardOr returns the recorded cardinality or def when unknown.
func (s *Statistics) CardOr(path string, def float64) float64 {
	if n, ok := s.card[path]; ok {
		return n
	}
	return def
}

// Paths returns the number of recorded entries (for tests).
func (s *Statistics) Paths() int { return len(s.card) }
