// Package schema implements the data-definition side of an extended NF²
// (Non-First-Normal-Form) data model with a reference concept, the data
// model the paper (Herrmann et al., EDBT 1990, §1-§2) bases its lock
// technique on: attribute values may be atomic, table-valued (a set or a
// list — "homogeneously structured"), tuple-valued ("heterogeneously
// structured"), or references to common data in another relation.
//
// The package provides the type constructors, relation and catalog
// definitions, schema validation (including the paper's assumptions:
// references always target whole complex objects of a relation, and complex
// objects are non-recursive), and the concrete schema of the paper's
// Figure 1 (relations "cells" and "effectors").
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the structure of a Type.
type Kind uint8

const (
	// KindInvalid is the zero Kind.
	KindInvalid Kind = iota
	// KindStr is an atomic string attribute.
	KindStr
	// KindInt is an atomic integer attribute.
	KindInt
	// KindReal is an atomic floating-point attribute.
	KindReal
	// KindBool is an atomic boolean attribute.
	KindBool
	// KindSet is an unordered collection of elements of one type.
	KindSet
	// KindList is an ordered collection of elements of one type.
	KindList
	// KindTuple is a (complex) tuple with named, heterogeneous fields.
	KindTuple
	// KindRef is a reference to a complex object of another relation
	// ("common data", §2). References make complex objects non-disjoint.
	KindRef
)

// String returns the schema notation used in the paper's figures: str, int,
// real, bool, S (set), L (list), T (tuple), ref.
func (k Kind) String() string {
	switch k {
	case KindStr:
		return "str"
	case KindInt:
		return "int"
	case KindReal:
		return "real"
	case KindBool:
		return "bool"
	case KindSet:
		return "S"
	case KindList:
		return "L"
	case KindTuple:
		return "T"
	case KindRef:
		return "ref"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Atomic reports whether k is an atomic data type (leaf of a schema tree).
// References count as atomic: the paper treats them as leaves of the
// referencing object's structure ("ref" leaves in Figure 1).
func (k Kind) Atomic() bool {
	switch k {
	case KindStr, KindInt, KindReal, KindBool, KindRef:
		return true
	}
	return false
}

// Field is one named attribute of a tuple type.
type Field struct {
	Name string
	Type *Type
}

// Type is a node of a schema tree.
type Type struct {
	Kind   Kind
	Elem   *Type   // element type for Set and List
	Fields []Field // attributes for Tuple
	Target string  // referenced relation for Ref
}

// Convenience constructors mirroring the paper's notation.

// Str returns an atomic string type.
func Str() *Type { return &Type{Kind: KindStr} }

// Int returns an atomic integer type.
func Int() *Type { return &Type{Kind: KindInt} }

// Real returns an atomic floating-point type.
func Real() *Type { return &Type{Kind: KindReal} }

// Bool returns an atomic boolean type.
func Bool() *Type { return &Type{Kind: KindBool} }

// Set returns a set type with the given element type.
func Set(elem *Type) *Type { return &Type{Kind: KindSet, Elem: elem} }

// List returns a list type with the given element type.
func List(elem *Type) *Type { return &Type{Kind: KindList, Elem: elem} }

// Tuple returns a (complex) tuple type with the given fields.
func Tuple(fields ...Field) *Type { return &Type{Kind: KindTuple, Fields: fields} }

// Ref returns a reference type targeting the named relation's complex
// objects.
func Ref(target string) *Type { return &Type{Kind: KindRef, Target: target} }

// F builds a Field.
func F(name string, t *Type) Field { return Field{Name: name, Type: t} }

// Field returns the tuple field with the given name, or nil.
func (t *Type) Field(name string) *Type {
	if t == nil || t.Kind != KindTuple {
		return nil
	}
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type
		}
	}
	return nil
}

// String renders the type in a compact schema notation, e.g.
// T{cell_id:str, robots:L(T{robot_id:str})}.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KindSet, KindList:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Elem)
	case KindTuple:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.Name + ":" + f.Type.String()
		}
		return "T{" + strings.Join(parts, ", ") + "}"
	case KindRef:
		return "ref(" + t.Target + ")"
	default:
		return t.Kind.String()
	}
}

// Equal reports structural equality of two types.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind || t.Target != o.Target {
		return false
	}
	if (t.Elem == nil) != (o.Elem == nil) || (t.Elem != nil && !t.Elem.Equal(o.Elem)) {
		return false
	}
	if len(t.Fields) != len(o.Fields) {
		return false
	}
	for i := range t.Fields {
		if t.Fields[i].Name != o.Fields[i].Name || !t.Fields[i].Type.Equal(o.Fields[i].Type) {
			return false
		}
	}
	return true
}

// Relation describes one relation of complex objects.
type Relation struct {
	// Name is the relation name, unique within the catalog.
	Name string
	// Segment is the storage segment the relation lives in (a lockable unit
	// in the System R hierarchy).
	Segment string
	// Key names the top-level atomic attribute that identifies a complex
	// object (the paper marks these with the suffix "_id").
	Key string
	// Type is the tuple type of the relation's complex objects.
	Type *Type
}

// Catalog is the schema catalog of one database: its segments and relations,
// plus the statistics the lock-request planner feeds on.
type Catalog struct {
	// Database is the database name (root of every lock hierarchy).
	Database string

	segments  []string
	relations map[string]*Relation
	relOrder  []string
	recursive bool

	stats Statistics
}

// SetRecursive opts the catalog into recursive complex objects: relations
// whose reference graph contains cycles (bill-of-material structures). The
// paper restricts itself to non-recursive objects and names the recursive
// extension as future work (§5); this implementation supports them — the
// protocol's propagation and the unit analysis are cycle-safe — so Validate
// only rejects cycles when recursion was not requested.
func (c *Catalog) SetRecursive(on bool) { c.recursive = on }

// Recursive reports whether the catalog permits reference cycles.
func (c *Catalog) Recursive() bool { return c.recursive }

// NewCatalog returns an empty catalog for the named database.
func NewCatalog(database string) *Catalog {
	return &Catalog{
		Database:  database,
		relations: make(map[string]*Relation),
		stats:     NewStatistics(),
	}
}

// AddSegment registers a storage segment.
func (c *Catalog) AddSegment(name string) {
	for _, s := range c.segments {
		if s == name {
			return
		}
	}
	c.segments = append(c.segments, name)
}

// Segments returns the registered segments in registration order.
func (c *Catalog) Segments() []string {
	out := make([]string, len(c.segments))
	copy(out, c.segments)
	return out
}

// AddRelation registers a relation; its segment is registered implicitly.
func (c *Catalog) AddRelation(r *Relation) error {
	if r == nil || r.Name == "" {
		return fmt.Errorf("schema: relation must have a name")
	}
	if _, dup := c.relations[r.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %q", r.Name)
	}
	c.AddSegment(r.Segment)
	c.relations[r.Name] = r
	c.relOrder = append(c.relOrder, r.Name)
	return nil
}

// Relation returns the named relation, or nil.
func (c *Catalog) Relation(name string) *Relation { return c.relations[name] }

// Relations returns all relations in registration order.
func (c *Catalog) Relations() []*Relation {
	out := make([]*Relation, 0, len(c.relOrder))
	for _, n := range c.relOrder {
		out = append(out, c.relations[n])
	}
	return out
}

// Stats returns the catalog's mutable statistics store.
func (c *Catalog) Stats() *Statistics { return &c.stats }

// Validate checks the paper's structural assumptions:
//
//   - every relation type is a tuple with a declared atomic, non-ref key
//     attribute at the top level;
//   - field names inside each tuple are unique;
//   - every reference targets an existing relation (common data is always a
//     whole complex object of a relation, §2);
//   - the reference graph between relations is acyclic (complex objects are
//     non-recursive, the only class the paper treats in detail).
func (c *Catalog) Validate() error {
	for _, name := range c.relOrder {
		r := c.relations[name]
		if r.Type == nil || r.Type.Kind != KindTuple {
			return fmt.Errorf("schema: relation %q: type must be a tuple, got %v", name, r.Type)
		}
		kt := r.Type.Field(r.Key)
		if kt == nil {
			return fmt.Errorf("schema: relation %q: key attribute %q not found", name, r.Key)
		}
		if !kt.Kind.Atomic() || kt.Kind == KindRef {
			return fmt.Errorf("schema: relation %q: key attribute %q must be atomic non-ref, got %v", name, r.Key, kt.Kind)
		}
		if err := c.validateType(name, r.Type); err != nil {
			return err
		}
	}
	if c.recursive {
		return nil
	}
	return c.checkNonRecursive()
}

func (c *Catalog) validateType(rel string, t *Type) error {
	switch t.Kind {
	case KindStr, KindInt, KindReal, KindBool:
		return nil
	case KindRef:
		if _, ok := c.relations[t.Target]; !ok {
			return fmt.Errorf("schema: relation %q: reference to unknown relation %q", rel, t.Target)
		}
		return nil
	case KindSet, KindList:
		if t.Elem == nil {
			return fmt.Errorf("schema: relation %q: %v without element type", rel, t.Kind)
		}
		return c.validateType(rel, t.Elem)
	case KindTuple:
		seen := make(map[string]bool, len(t.Fields))
		for _, f := range t.Fields {
			if f.Name == "" {
				return fmt.Errorf("schema: relation %q: tuple field without name", rel)
			}
			if seen[f.Name] {
				return fmt.Errorf("schema: relation %q: duplicate field %q", rel, f.Name)
			}
			seen[f.Name] = true
			if f.Type == nil {
				return fmt.Errorf("schema: relation %q: field %q without type", rel, f.Name)
			}
			if err := c.validateType(rel, f.Type); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("schema: relation %q: invalid type kind %v", rel, t.Kind)
}

// refTargets returns the distinct relations referenced from within t.
func refTargets(t *Type, out map[string]bool) {
	if t == nil {
		return
	}
	switch t.Kind {
	case KindRef:
		out[t.Target] = true
	case KindSet, KindList:
		refTargets(t.Elem, out)
	case KindTuple:
		for _, f := range t.Fields {
			refTargets(f.Type, out)
		}
	}
}

// RefTargets returns the sorted names of relations referenced by r.
func (r *Relation) RefTargets() []string {
	m := make(map[string]bool)
	refTargets(r.Type, m)
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// checkNonRecursive detects cycles in the relation reference graph.
func (c *Catalog) checkNonRecursive() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		color[name] = grey
		path = append(path, name)
		for _, next := range c.relations[name].RefTargets() {
			switch color[next] {
			case grey:
				return fmt.Errorf("schema: recursive complex objects not supported: cycle %s -> %s",
					strings.Join(path, " -> "), next)
			case white:
				if err := visit(next, path); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	for _, name := range c.relOrder {
		if color[name] == white {
			if err := visit(name, nil); err != nil {
				return err
			}
		}
	}
	return nil
}
