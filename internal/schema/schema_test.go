package schema

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindStr: "str", KindInt: "int", KindReal: "real", KindBool: "bool",
		KindSet: "S", KindList: "L", KindTuple: "T", KindRef: "ref",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k.String(), s)
		}
	}
	if !strings.HasPrefix(Kind(77).String(), "Kind(") {
		t.Error("invalid kind string")
	}
}

func TestKindAtomic(t *testing.T) {
	atomic := map[Kind]bool{
		KindStr: true, KindInt: true, KindReal: true, KindBool: true, KindRef: true,
		KindSet: false, KindList: false, KindTuple: false, KindInvalid: false,
	}
	for k, want := range atomic {
		if k.Atomic() != want {
			t.Errorf("%v.Atomic() = %v, want %v", k, k.Atomic(), want)
		}
	}
}

func TestTypeString(t *testing.T) {
	ty := Tuple(F("a", Str()), F("b", List(Set(Ref("lib")))))
	got := ty.String()
	want := "T{a:str, b:L(S(ref(lib)))}"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	var nilT *Type
	if nilT.String() != "<nil>" {
		t.Error("nil type string")
	}
}

func TestTypeEqual(t *testing.T) {
	a := Tuple(F("x", Int()), F("y", Set(Str())))
	b := Tuple(F("x", Int()), F("y", Set(Str())))
	if !a.Equal(b) {
		t.Error("structurally equal types reported unequal")
	}
	c := Tuple(F("x", Int()), F("y", Set(Int())))
	if a.Equal(c) {
		t.Error("different element types reported equal")
	}
	d := Tuple(F("x", Int()))
	if a.Equal(d) {
		t.Error("different arity reported equal")
	}
	if a.Equal(nil) {
		t.Error("non-nil equal to nil")
	}
	if !Ref("r").Equal(Ref("r")) || Ref("r").Equal(Ref("q")) {
		t.Error("ref equality broken")
	}
}

func TestFieldLookup(t *testing.T) {
	ty := Tuple(F("a", Str()), F("b", Int()))
	if ty.Field("a") == nil || ty.Field("a").Kind != KindStr {
		t.Error("Field(a) wrong")
	}
	if ty.Field("zz") != nil {
		t.Error("Field(zz) should be nil")
	}
	if Str().Field("a") != nil {
		t.Error("Field on non-tuple should be nil")
	}
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog("db")
	r := &Relation{Name: "r", Segment: "s1", Key: "id", Type: Tuple(F("id", Str()))}
	if err := c.AddRelation(r); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRelation(&Relation{Name: "r"}); err == nil {
		t.Error("duplicate relation accepted")
	}
	if err := c.AddRelation(&Relation{}); err == nil {
		t.Error("unnamed relation accepted")
	}
	if c.Relation("r") != r {
		t.Error("Relation lookup failed")
	}
	if c.Relation("nope") != nil {
		t.Error("unknown relation non-nil")
	}
	if len(c.Relations()) != 1 {
		t.Error("Relations() wrong length")
	}
	c.AddSegment("s1") // duplicate registration is a no-op
	if got := c.Segments(); len(got) != 1 || got[0] != "s1" {
		t.Errorf("Segments = %v", got)
	}
}

func TestValidateRejectsBadKeys(t *testing.T) {
	cases := []struct {
		name string
		rel  *Relation
	}{
		{"non-tuple type", &Relation{Name: "r", Segment: "s", Key: "id", Type: Str()}},
		{"missing key attr", &Relation{Name: "r", Segment: "s", Key: "id", Type: Tuple(F("x", Str()))}},
		{"non-atomic key", &Relation{Name: "r", Segment: "s", Key: "id", Type: Tuple(F("id", Set(Str())))}},
	}
	for _, tc := range cases {
		c := NewCatalog("db")
		if err := c.AddRelation(tc.rel); err != nil {
			t.Fatalf("%s: add: %v", tc.name, err)
		}
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid schema", tc.name)
		}
	}
}

func TestValidateRejectsRefKey(t *testing.T) {
	c := NewCatalog("db")
	_ = c.AddRelation(&Relation{Name: "lib", Segment: "s", Key: "id", Type: Tuple(F("id", Str()))})
	_ = c.AddRelation(&Relation{Name: "r", Segment: "s", Key: "id", Type: Tuple(F("id", Ref("lib")))})
	if err := c.Validate(); err == nil {
		t.Error("ref key accepted")
	}
}

func TestValidateRejectsDanglingRef(t *testing.T) {
	c := NewCatalog("db")
	_ = c.AddRelation(&Relation{
		Name: "r", Segment: "s", Key: "id",
		Type: Tuple(F("id", Str()), F("parts", Set(Ref("nowhere")))),
	})
	if err := c.Validate(); err == nil {
		t.Error("dangling reference accepted")
	}
}

func TestValidateRejectsDuplicateFields(t *testing.T) {
	c := NewCatalog("db")
	_ = c.AddRelation(&Relation{
		Name: "r", Segment: "s", Key: "id",
		Type: Tuple(F("id", Str()), F("id", Int())),
	})
	if err := c.Validate(); err == nil {
		t.Error("duplicate field accepted")
	}
}

func TestValidateRejectsRecursion(t *testing.T) {
	// a -> b -> a is a recursive complex-object structure, out of the
	// paper's scope; must be rejected.
	c := NewCatalog("db")
	_ = c.AddRelation(&Relation{
		Name: "a", Segment: "s", Key: "id",
		Type: Tuple(F("id", Str()), F("sub", Set(Ref("b")))),
	})
	_ = c.AddRelation(&Relation{
		Name: "b", Segment: "s", Key: "id",
		Type: Tuple(F("id", Str()), F("sub", Set(Ref("a")))),
	})
	err := c.Validate()
	if err == nil {
		t.Fatal("recursive schema accepted")
	}
	if !strings.Contains(err.Error(), "recursive") {
		t.Errorf("error does not mention recursion: %v", err)
	}
}

func TestValidateAcceptsSharedDAG(t *testing.T) {
	// Non-disjoint but acyclic: two relations referencing the same library.
	c := NewCatalog("db")
	_ = c.AddRelation(&Relation{Name: "lib", Segment: "s", Key: "id", Type: Tuple(F("id", Str()))})
	_ = c.AddRelation(&Relation{
		Name: "a", Segment: "s", Key: "id",
		Type: Tuple(F("id", Str()), F("parts", Set(Ref("lib")))),
	})
	_ = c.AddRelation(&Relation{
		Name: "b", Segment: "s", Key: "id",
		Type: Tuple(F("id", Str()), F("parts", List(Ref("lib")))),
	})
	if err := c.Validate(); err != nil {
		t.Fatalf("valid DAG schema rejected: %v", err)
	}
}

func TestValidateNestedCommonData(t *testing.T) {
	// "Common data may again contain common data" (§2): lib1 -> lib2.
	c := NewCatalog("db")
	_ = c.AddRelation(&Relation{Name: "lib2", Segment: "s", Key: "id", Type: Tuple(F("id", Str()))})
	_ = c.AddRelation(&Relation{
		Name: "lib1", Segment: "s", Key: "id",
		Type: Tuple(F("id", Str()), F("sub", Set(Ref("lib2")))),
	})
	_ = c.AddRelation(&Relation{
		Name: "top", Segment: "s", Key: "id",
		Type: Tuple(F("id", Str()), F("parts", Set(Ref("lib1")))),
	})
	if err := c.Validate(); err != nil {
		t.Fatalf("nested common data rejected: %v", err)
	}
}

func TestRefTargets(t *testing.T) {
	r := &Relation{
		Name: "r", Segment: "s", Key: "id",
		Type: Tuple(
			F("id", Str()),
			F("a", Set(Ref("z"))),
			F("b", List(Tuple(F("c", Ref("y")), F("d", Ref("z"))))),
		),
	}
	got := r.RefTargets()
	if len(got) != 2 || got[0] != "y" || got[1] != "z" {
		t.Errorf("RefTargets = %v, want [y z]", got)
	}
}

func TestStatistics(t *testing.T) {
	s := NewStatistics()
	s.SetCard("cells", 100)
	s.SetCard("cells.robots", 5)
	if n, ok := s.Card("cells"); !ok || n != 100 {
		t.Errorf("Card(cells) = %v,%v", n, ok)
	}
	if _, ok := s.Card("nope"); ok {
		t.Error("unknown path reported present")
	}
	if s.CardOr("nope", 7) != 7 {
		t.Error("CardOr default broken")
	}
	if s.CardOr("cells", 7) != 100 {
		t.Error("CardOr recorded broken")
	}
	if s.Paths() != 2 {
		t.Errorf("Paths = %d", s.Paths())
	}
	var zero Statistics
	zero.SetCard("x", 1) // must not panic on zero value
	if zero.CardOr("x", 0) != 1 {
		t.Error("zero-value statistics broken")
	}
}

// TestPaperSchemaMatchesFigure1 pins the structure of Figure 1 exactly.
func TestPaperSchemaMatchesFigure1(t *testing.T) {
	c := PaperSchema()
	if c.Database != "db1" {
		t.Errorf("database = %q", c.Database)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("paper schema invalid: %v", err)
	}

	cells := c.Relation("cells")
	if cells == nil {
		t.Fatal("relation cells missing")
	}
	if cells.Segment != "seg1" || cells.Key != "cell_id" {
		t.Errorf("cells segment/key = %q/%q", cells.Segment, cells.Key)
	}
	wantCells := Tuple(
		F("cell_id", Str()),
		F("c_objects", Set(Tuple(F("obj_id", Int()), F("obj_name", Str())))),
		F("robots", List(Tuple(
			F("robot_id", Str()),
			F("trajectory", Str()),
			F("effectors", Set(Ref("effectors"))),
		))),
	)
	if !cells.Type.Equal(wantCells) {
		t.Errorf("cells type = %v\nwant %v", cells.Type, wantCells)
	}

	eff := c.Relation("effectors")
	if eff == nil {
		t.Fatal("relation effectors missing")
	}
	if eff.Segment != "seg2" || eff.Key != "eff_id" {
		t.Errorf("effectors segment/key = %q/%q", eff.Segment, eff.Key)
	}
	wantEff := Tuple(F("eff_id", Str()), F("tool", Str()))
	if !eff.Type.Equal(wantEff) {
		t.Errorf("effectors type = %v, want %v", eff.Type, wantEff)
	}

	if got := cells.RefTargets(); len(got) != 1 || got[0] != "effectors" {
		t.Errorf("cells references %v, want [effectors]", got)
	}
	if got := eff.RefTargets(); len(got) != 0 {
		t.Errorf("effectors references %v, want none", got)
	}
	if got := c.Segments(); len(got) != 2 {
		t.Errorf("segments = %v", got)
	}
}
