// Package metrics provides the small measurement and reporting toolkit the
// benchmark harness uses: aligned text tables (one per reproduced paper
// table/figure-claim) and throughput/overhead counters.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells beyond the header width are dropped, missing
// cells are padded empty.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Add(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Ratio formats a/b as "x.xx×", guarding against division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// Pct formats a fractional change (0.042 → "+4.2%") as a signed percentage.
func Pct(frac float64) string {
	return fmt.Sprintf("%+.1f%%", frac*100)
}

// PerSec formats an operation count over a duration as ops/s.
func PerSec(ops uint64, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f/s", float64(ops)/d.Seconds())
}
