package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("a-much-longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Results" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "===") {
		t.Errorf("underline = %q", lines[1])
	}
	if !strings.Contains(lines[2], "name") || !strings.Contains(lines[2], "value") {
		t.Errorf("header = %q", lines[2])
	}
	// Column alignment: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[2], "value")
	if !strings.HasPrefix(lines[4][idx:], "1") && !strings.Contains(lines[4], "1") {
		t.Errorf("row = %q", lines[4])
	}
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("x")
	if strings.HasPrefix(tb.String(), "\n=") {
		t.Error("empty title rendered underline")
	}
}

func TestTablePaddingAndTruncation(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("only-one")
	tb.Add("x", "y", "dropped")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Errorf("padding: %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 2 {
		t.Errorf("truncation: %v", tb.Rows[1])
	}
}

func TestAddf(t *testing.T) {
	tb := NewTable("t", "a", "b", "c", "d")
	tb.Addf("s", 1.5, 42, 1500*time.Microsecond)
	row := tb.Rows[0]
	if row[0] != "s" || row[1] != "1.50" || row[2] != "42" || row[3] != "1.5ms" {
		t.Errorf("row = %v", row)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 5) != "2.00x" {
		t.Errorf("Ratio = %s", Ratio(10, 5))
	}
	if Ratio(1, 0) != "∞" {
		t.Errorf("Ratio by zero = %s", Ratio(1, 0))
	}
}

func TestPerSec(t *testing.T) {
	if PerSec(100, time.Second) != "100/s" {
		t.Errorf("PerSec = %s", PerSec(100, time.Second))
	}
	if PerSec(100, 0) != "-" {
		t.Error("PerSec zero duration")
	}
}
