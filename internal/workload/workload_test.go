package workload

import (
	"fmt"
	"testing"
	"testing/quick"

	"colock/internal/core"
	"colock/internal/store"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{Seed: 1, Cells: 5, CObjectsPerCell: 3, RobotsPerCell: 2, EffectorsPerRobot: 2, Effectors: 4}
	st := Generate(cfg)
	if st.Count("cells") != 5 || st.Count("effectors") != 4 {
		t.Fatalf("counts: %d cells, %d effectors", st.Count("cells"), st.Count("effectors"))
	}
	robots, err := st.Lookup(store.P("cells", "c0", "robots"))
	if err != nil {
		t.Fatal(err)
	}
	if robots.(*store.List).Len() != 2 {
		t.Errorf("robots = %d", robots.(*store.List).Len())
	}
	objs, _ := st.Lookup(store.P("cells", "c0", "c_objects"))
	if objs.(*store.Set).Len() != 3 {
		t.Errorf("c_objects = %d", objs.(*store.Set).Len())
	}
	effs, _ := st.Lookup(store.P("cells", "c0", "robots", "r0", "effectors"))
	if effs.(*store.Set).Len() != 2 {
		t.Errorf("effectors per robot = %d", effs.(*store.Set).Len())
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Cells: 3, RobotsPerCell: 3, EffectorsPerRobot: 2, Effectors: 6}
	a := Generate(cfg)
	b := Generate(cfg)
	for _, key := range a.Keys("cells") {
		va := a.Get("cells", key)
		vb := b.Get("cells", key)
		if va.String() != vb.String() {
			t.Fatalf("cell %s differs between runs", key)
		}
	}
	c := Generate(Config{Seed: 43, Cells: 3, RobotsPerCell: 3, EffectorsPerRobot: 2, Effectors: 6})
	same := true
	for _, key := range a.Keys("cells") {
		if a.Get("cells", key).String() != c.Get("cells", key).String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestGenerateDefaults(t *testing.T) {
	st := Generate(Config{})
	if st.Count("cells") == 0 || st.Count("effectors") == 0 {
		t.Error("defaults produced empty database")
	}
}

// TestGenerateSharingDegree: with a small library, effectors really are
// shared between robots.
func TestGenerateSharingDegree(t *testing.T) {
	st := Generate(Config{Seed: 7, Cells: 10, RobotsPerCell: 4, EffectorsPerRobot: 2, Effectors: 4})
	shared := 0
	for _, e := range st.Keys("effectors") {
		if len(st.BackRefs("effectors", e)) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no effector is shared")
	}
}

func TestGenerateChainShape(t *testing.T) {
	cfg := ChainConfig{Seed: 1, Depth: 4, PerLevel: 5, Fanout: 2}
	st := GenerateChain(cfg)
	for i := 0; i < 4; i++ {
		if st.Count(LevelRelation(i)) != 5 {
			t.Errorf("level %d count = %d", i, st.Count(LevelRelation(i)))
		}
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if err := st.Catalog().Validate(); err != nil {
		t.Fatal(err)
	}
	// The bottom level has no subs attribute.
	if st.Catalog().Relation(LevelRelation(3)).Type.Field("subs") != nil {
		t.Error("bottom level has subs")
	}
	// Units computed over the chain reach full depth.
	nm := core.NewNamer(st.Catalog(), false)
	u, err := core.ComputeUnits(st, nm, store.P(LevelRelation(0), "n0_0"))
	if err != nil {
		t.Fatal(err)
	}
	maxDepth := 0
	for _, iu := range u.Inner {
		if iu.Depth > maxDepth {
			maxDepth = iu.Depth
		}
	}
	if maxDepth != 3 {
		t.Errorf("max inner-unit depth = %d, want 3", maxDepth)
	}
}

func TestGenerateChainDepthOne(t *testing.T) {
	st := GenerateChain(ChainConfig{Seed: 1, Depth: 1, PerLevel: 3})
	if st.Count(LevelRelation(0)) != 3 {
		t.Error("depth-1 chain wrong")
	}
}

func TestScriptsDeterministicAndValid(t *testing.T) {
	dbCfg := Config{Seed: 1, Cells: 4, CObjectsPerCell: 3, RobotsPerCell: 2, EffectorsPerRobot: 1, Effectors: 3}
	st := Generate(dbCfg)
	mix := MixConfig{Seed: 9, Txns: 8, OpsPerTxn: 5, WriteFraction: 0.5, SharedFraction: 0.3}
	a := Scripts(dbCfg, mix)
	b := Scripts(dbCfg, mix)
	if len(a) != 8 {
		t.Fatalf("scripts = %d", len(a))
	}
	for i := range a {
		if len(a[i]) != 5 {
			t.Fatalf("ops = %d", len(a[i]))
		}
		for j := range a[i] {
			if a[i][j].Write != b[i][j].Write || !a[i][j].Path.Equal(b[i][j].Path) {
				t.Fatal("scripts not deterministic")
			}
			// Every generated path must resolve in the database.
			if _, err := st.Lookup(a[i][j].Path); err != nil {
				t.Fatalf("script path %v invalid: %v", a[i][j].Path, err)
			}
		}
	}
}

func TestScriptsFractions(t *testing.T) {
	dbCfg := Config{Seed: 1}
	all := Scripts(dbCfg, MixConfig{Seed: 3, Txns: 50, OpsPerTxn: 10, WriteFraction: 1, SharedFraction: 1})
	for _, script := range all {
		for _, op := range script {
			if !op.Write {
				t.Fatal("WriteFraction=1 produced a read")
			}
			if op.Path.Relation() != "effectors" {
				t.Fatal("SharedFraction=1 produced a cell access")
			}
		}
	}
	none := Scripts(dbCfg, MixConfig{Seed: 3, Txns: 20, OpsPerTxn: 10, WriteFraction: 0, SharedFraction: 0})
	for _, script := range none {
		for _, op := range script {
			if op.Write || op.Path.Relation() != "cells" {
				t.Fatal("zero fractions violated")
			}
		}
	}
}

// TestGeneratePropertyIntegrity: random small configurations always produce
// consistent databases (property-based).
func TestGeneratePropertyIntegrity(t *testing.T) {
	f := func(seed int64, cells, robots, effs uint8) bool {
		cfg := Config{
			Seed:              seed,
			Cells:             int(cells%8) + 1,
			CObjectsPerCell:   2,
			RobotsPerCell:     int(robots%5) + 1,
			EffectorsPerRobot: 2,
			Effectors:         int(effs%10) + 1,
		}
		st := Generate(cfg)
		if err := st.CheckIntegrity(); err != nil {
			return false
		}
		return st.Count("cells") == cfg.Cells && st.Count("effectors") == cfg.Effectors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestChainPropertyIntegrity: random chain configurations are always
// consistent and acyclic.
func TestChainPropertyIntegrity(t *testing.T) {
	f := func(seed int64, depth, per, fan uint8) bool {
		cfg := ChainConfig{
			Seed:     seed,
			Depth:    int(depth%5) + 1,
			PerLevel: int(per%6) + 1,
			Fanout:   int(fan%3) + 1,
		}
		st := GenerateChain(cfg)
		if err := st.CheckIntegrity(); err != nil {
			return false
		}
		return st.Catalog().Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLevelRelationNames(t *testing.T) {
	for i := 0; i < 3; i++ {
		if LevelRelation(i) != fmt.Sprintf("level%d", i) {
			t.Error("LevelRelation")
		}
	}
}
