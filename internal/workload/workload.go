// Package workload generates deterministic synthetic databases and
// transaction scripts in the shape of the paper's engineering scenarios:
// manufacturing cells with robots that share a library of effectors, and
// deeper assembly→part→bolt chains for the depth sweeps. All generators are
// seeded and reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"colock/internal/schema"
	"colock/internal/store"
)

// Config parameterizes the cells/effectors-shaped database. The relation
// and attribute names match the paper schema so that queries written for
// Figure 1 run against generated databases unchanged.
type Config struct {
	Seed int64
	// Cells is the number of complex objects in the "cells" relation.
	Cells int
	// CObjectsPerCell is the fan-out of the c_objects set.
	CObjectsPerCell int
	// RobotsPerCell is the fan-out of the robots list.
	RobotsPerCell int
	// EffectorsPerRobot is the number of effector references per robot.
	EffectorsPerRobot int
	// Effectors is the size of the shared effectors library. The expected
	// sharing degree (referencing robots per effector) is
	// Cells·RobotsPerCell·EffectorsPerRobot / Effectors.
	Effectors int
	// DisjointOnly omits all effector references: every complex object is
	// disjoint (the E8 overhead scenario). The effectors library is still
	// created but never referenced.
	DisjointOnly bool
}

func (c Config) withDefaults() Config {
	if c.Cells <= 0 {
		c.Cells = 10
	}
	if c.CObjectsPerCell <= 0 {
		c.CObjectsPerCell = 10
	}
	if c.RobotsPerCell <= 0 {
		c.RobotsPerCell = 4
	}
	if c.EffectorsPerRobot <= 0 {
		c.EffectorsPerRobot = 2
	}
	if c.Effectors <= 0 {
		c.Effectors = 8
	}
	return c
}

// Generate builds a database per the config. It panics only on internal
// inconsistencies; all generated data is schema-valid by construction.
func Generate(cfg Config) *store.Store {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := store.New(schema.PaperSchema())

	for e := 0; e < cfg.Effectors; e++ {
		id := fmt.Sprintf("e%d", e)
		obj := store.NewTuple().
			Set("eff_id", store.Str(id)).
			Set("tool", store.Str(fmt.Sprintf("t%d", e)))
		mustInsert(st, "effectors", id, obj)
	}

	for c := 0; c < cfg.Cells; c++ {
		cid := fmt.Sprintf("c%d", c)
		objs := store.NewSet()
		for o := 0; o < cfg.CObjectsPerCell; o++ {
			oid := fmt.Sprintf("o%d", o)
			objs.Add(oid, store.NewTuple().
				Set("obj_id", store.Int(int64(o))).
				Set("obj_name", store.Str(fmt.Sprintf("on%d_%d", c, o))))
		}
		robots := store.NewList()
		for r := 0; r < cfg.RobotsPerCell; r++ {
			rid := fmt.Sprintf("r%d", r)
			effs := store.NewSet()
			for !cfg.DisjointOnly && len(effs.IDs()) < cfg.EffectorsPerRobot && len(effs.IDs()) < cfg.Effectors {
				eid := fmt.Sprintf("e%d", rng.Intn(cfg.Effectors))
				effs.Add(eid, store.Ref{Relation: "effectors", Key: eid})
			}
			robots.Append(rid, store.NewTuple().
				Set("robot_id", store.Str(rid)).
				Set("trajectory", store.Str(fmt.Sprintf("tr%d_%d", c, r))).
				Set("effectors", effs))
		}
		cell := store.NewTuple().
			Set("cell_id", store.Str(cid)).
			Set("c_objects", objs).
			Set("robots", robots)
		mustInsert(st, "cells", cid, cell)
	}
	if err := st.CheckIntegrity(); err != nil {
		panic(fmt.Sprintf("workload: generated database inconsistent: %v", err))
	}
	return st
}

func mustInsert(st *store.Store, rel, key string, obj *store.Tuple) {
	if err := st.Insert(rel, key, obj); err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
}

// ChainConfig parameterizes a depth-sweep database: a chain of relations
// level0 → level1 → … → level(depth-1), each object of level i referencing
// Fanout objects of level i+1 ("common data may again contain common data").
type ChainConfig struct {
	Seed int64
	// Depth is the number of relations in the chain (≥ 1).
	Depth int
	// PerLevel is the number of complex objects per relation.
	PerLevel int
	// Fanout is the number of references per object to the next level.
	Fanout int
}

func (c ChainConfig) withDefaults() ChainConfig {
	if c.Depth <= 0 {
		c.Depth = 3
	}
	if c.PerLevel <= 0 {
		c.PerLevel = 10
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	return c
}

// LevelRelation names the relation of chain level i.
func LevelRelation(i int) string { return fmt.Sprintf("level%d", i) }

// GenerateChain builds the chained-sharing database.
func GenerateChain(cfg ChainConfig) *store.Store {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	cat := schema.NewCatalog("db")
	// Register bottom-up so references validate naturally.
	for i := cfg.Depth - 1; i >= 0; i-- {
		fields := []schema.Field{
			schema.F("node_id", schema.Str()),
			schema.F("payload", schema.Str()),
		}
		if i < cfg.Depth-1 {
			fields = append(fields, schema.F("subs", schema.Set(schema.Ref(LevelRelation(i+1)))))
		}
		if err := cat.AddRelation(&schema.Relation{
			Name:    LevelRelation(i),
			Segment: fmt.Sprintf("seg%d", i),
			Key:     "node_id",
			Type:    schema.Tuple(fields...),
		}); err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
	}
	if err := cat.Validate(); err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}

	st := store.New(cat)
	for i := cfg.Depth - 1; i >= 0; i-- {
		rel := LevelRelation(i)
		for k := 0; k < cfg.PerLevel; k++ {
			id := fmt.Sprintf("n%d_%d", i, k)
			obj := store.NewTuple().
				Set("node_id", store.Str(id)).
				Set("payload", store.Str(fmt.Sprintf("p%d_%d", i, k)))
			if i < cfg.Depth-1 {
				subs := store.NewSet()
				for len(subs.IDs()) < cfg.Fanout && len(subs.IDs()) < cfg.PerLevel {
					sid := fmt.Sprintf("n%d_%d", i+1, rng.Intn(cfg.PerLevel))
					subs.Add(sid, store.Ref{Relation: LevelRelation(i + 1), Key: sid})
				}
				obj.Set("subs", subs)
			}
			mustInsert(st, rel, id, obj)
		}
	}
	if err := st.CheckIntegrity(); err != nil {
		panic(fmt.Sprintf("workload: chain database inconsistent: %v", err))
	}
	return st
}

// Op is one data access of a transaction script.
type Op struct {
	// Write selects X (update) vs S (read) access.
	Write bool
	// Path is the accessed node.
	Path store.Path
}

// MixConfig parameterizes a transaction-script mix over a generated
// cells/effectors database.
type MixConfig struct {
	Seed int64
	// Txns is the number of transaction scripts.
	Txns int
	// OpsPerTxn is the number of accesses per transaction.
	OpsPerTxn int
	// WriteFraction is the probability that an access is an update.
	WriteFraction float64
	// SharedFraction is the probability that an access targets the shared
	// effectors library directly instead of a part of a cell.
	SharedFraction float64
}

func (c MixConfig) withDefaults() MixConfig {
	if c.Txns <= 0 {
		c.Txns = 16
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 4
	}
	return c
}

// Scripts derives deterministic transaction scripts for a database built
// with the given Config.
func Scripts(dbCfg Config, mix MixConfig) [][]Op {
	dbCfg = dbCfg.withDefaults()
	mix = mix.withDefaults()
	rng := rand.New(rand.NewSource(mix.Seed))
	scripts := make([][]Op, mix.Txns)
	for t := range scripts {
		ops := make([]Op, mix.OpsPerTxn)
		for o := range ops {
			write := rng.Float64() < mix.WriteFraction
			if rng.Float64() < mix.SharedFraction {
				ops[o] = Op{Write: write, Path: store.P("effectors", fmt.Sprintf("e%d", rng.Intn(dbCfg.Effectors)))}
				continue
			}
			cell := fmt.Sprintf("c%d", rng.Intn(dbCfg.Cells))
			if rng.Intn(2) == 0 {
				ops[o] = Op{Write: write, Path: store.P(
					"cells", cell, "c_objects", fmt.Sprintf("o%d", rng.Intn(dbCfg.CObjectsPerCell)))}
			} else {
				ops[o] = Op{Write: write, Path: store.P(
					"cells", cell, "robots", fmt.Sprintf("r%d", rng.Intn(dbCfg.RobotsPerCell)))}
			}
		}
		scripts[t] = ops
	}
	return scripts
}
