package store

import (
	"testing"

	"colock/internal/schema"
)

func TestAtomicValues(t *testing.T) {
	cases := []struct {
		v    Value
		kind schema.Kind
		str  string
	}{
		{Str("hi"), schema.KindStr, `"hi"`},
		{Int(-4), schema.KindInt, "-4"},
		{Real(2.5), schema.KindReal, "2.5"},
		{Bool(true), schema.KindBool, "true"},
		{Ref{"effectors", "e1"}, schema.KindRef, "->effectors/e1"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v Kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String = %q, want %q", c.v.String(), c.str)
		}
		if c.v.Clone() != c.v {
			t.Errorf("atomic Clone not identical for %v", c.v)
		}
	}
}

func TestTupleOps(t *testing.T) {
	tp := NewTuple().Set("a", Int(1)).Set("b", Str("x"))
	if tp.Kind() != schema.KindTuple {
		t.Error("tuple kind")
	}
	if tp.Get("a") != Int(1) || tp.Get("zz") != nil {
		t.Error("tuple get")
	}
	names := tp.FieldNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("FieldNames = %v", names)
	}
	if got := tp.String(); got != `{a:1, b:"x"}` {
		t.Errorf("String = %q", got)
	}
	cl := tp.Clone().(*Tuple)
	cl.Set("a", Int(9))
	if tp.Get("a") != Int(1) {
		t.Error("Clone shares state")
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet().Add("b", Int(2)).Add("a", Int(1))
	if s.Kind() != schema.KindSet || s.Len() != 2 {
		t.Error("set basics")
	}
	if ids := s.IDs(); ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v, want sorted", ids)
	}
	if s.Get("a") != Int(1) || s.Get("zz") != nil {
		t.Error("set get")
	}
	if got := s.String(); got != "S{a=1, b=2}" {
		t.Errorf("String = %q", got)
	}
	if old := s.Remove("a"); old != Int(1) || s.Len() != 1 {
		t.Error("remove")
	}
	if s.Remove("zz") != nil {
		t.Error("remove absent")
	}
	cl := s.Clone().(*Set)
	cl.Add("c", Int(3))
	if s.Len() != 1 {
		t.Error("Clone shares state")
	}
}

func TestListOps(t *testing.T) {
	l := NewList().Append("r2", Str("b")).Append("r1", Str("a"))
	if l.Kind() != schema.KindList || l.Len() != 2 {
		t.Error("list basics")
	}
	if ids := l.IDs(); ids[0] != "r2" || ids[1] != "r1" {
		t.Errorf("IDs = %v, want insertion order", ids)
	}
	l.Append("r2", Str("b2")) // replace in place, order unchanged
	if l.Len() != 2 || l.Get("r2") != Str("b2") || l.IDs()[0] != "r2" {
		t.Error("in-place replace broken")
	}
	if got := l.String(); got != `L[r2="b2", r1="a"]` {
		t.Errorf("String = %q", got)
	}
	if old := l.Remove("r2"); old != Str("b2") || l.Len() != 1 {
		t.Error("remove")
	}
	if l.Remove("zz") != nil {
		t.Error("remove absent")
	}
	cl := l.Clone().(*List)
	cl.Append("x", Str("y"))
	if l.Len() != 1 {
		t.Error("Clone shares state")
	}
}

func TestCheckConformance(t *testing.T) {
	ty := schema.Tuple(
		schema.F("id", schema.Str()),
		schema.F("parts", schema.Set(schema.Ref("lib"))),
		schema.F("tags", schema.List(schema.Int())),
	)
	good := NewTuple().
		Set("id", Str("a")).
		Set("parts", NewSet().Add("p1", Ref{"lib", "p1"})).
		Set("tags", NewList().Append("0", Int(7)))
	if err := Check(good, ty); err != nil {
		t.Fatalf("valid value rejected: %v", err)
	}

	bad := []struct {
		name string
		v    Value
	}{
		{"missing field", NewTuple().Set("id", Str("a"))},
		{"wrong atomic kind", NewTuple().Set("id", Int(1)).
			Set("parts", NewSet()).Set("tags", NewList())},
		{"wrong ref target", NewTuple().Set("id", Str("a")).
			Set("parts", NewSet().Add("p1", Ref{"other", "p1"})).Set("tags", NewList())},
		{"non-set for set", NewTuple().Set("id", Str("a")).
			Set("parts", NewList()).Set("tags", NewList())},
		{"bad list elem", NewTuple().Set("id", Str("a")).
			Set("parts", NewSet()).Set("tags", NewList().Append("0", Str("x")))},
		{"extra field", NewTuple().Set("id", Str("a")).
			Set("parts", NewSet()).Set("tags", NewList()).Set("zz", Int(1))},
	}
	for _, c := range bad {
		if err := Check(c.v, ty); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := Check(nil, ty); err == nil {
		t.Error("nil value accepted")
	}
	if err := Check(Str("x"), nil); err == nil {
		t.Error("nil type accepted")
	}
}

func TestZeroValue(t *testing.T) {
	ty := schema.Tuple(
		schema.F("s", schema.Str()),
		schema.F("i", schema.Int()),
		schema.F("r", schema.Real()),
		schema.F("b", schema.Bool()),
		schema.F("set", schema.Set(schema.Int())),
		schema.F("lst", schema.List(schema.Str())),
	)
	v := ZeroValue(ty)
	if err := Check(v, ty); err != nil {
		t.Fatalf("zero value does not conform: %v", err)
	}
	tp := v.(*Tuple)
	if tp.Get("s") != Str("") || tp.Get("i") != Int(0) || tp.Get("r") != Real(0) || tp.Get("b") != Bool(false) {
		t.Error("zero atomics wrong")
	}
	if tp.Get("set").(*Set).Len() != 0 || tp.Get("lst").(*List).Len() != 0 {
		t.Error("zero collections not empty")
	}
	if rv := ZeroValue(schema.Ref("lib")); rv.(Ref).Relation != "lib" {
		t.Error("zero ref wrong")
	}
}

func TestPathOps(t *testing.T) {
	p := ParsePath("cells/c1/robots/r1")
	if p.String() != "cells/c1/robots/r1" {
		t.Errorf("String = %q", p.String())
	}
	if p.Relation() != "cells" || p.Key() != "c1" {
		t.Error("Relation/Key")
	}
	if ParsePath("") != nil {
		t.Error("empty parse")
	}
	c := p.Child("trajectory")
	if c.String() != "cells/c1/robots/r1/trajectory" || len(p) != 4 {
		t.Error("Child")
	}
	if !c.Parent().Equal(p) {
		t.Error("Parent")
	}
	if Path(nil).Parent() != nil || Path(nil).Relation() != "" || (Path{"x"}).Key() != "" {
		t.Error("edge accessors")
	}
	if !c.HasPrefix(p) || p.HasPrefix(c) || !p.HasPrefix(p) {
		t.Error("HasPrefix")
	}
	if !p.Clone().Equal(p) {
		t.Error("Clone/Equal")
	}
	if P("a", "b").Equal(P("a")) || P("a", "b").Equal(P("a", "c")) {
		t.Error("Equal false cases")
	}
	if err := (Path{}).Validate(); err == nil {
		t.Error("empty path validated")
	}
	if err := P("a", "").Validate(); err == nil {
		t.Error("empty segment validated")
	}
	if err := P("a/b").Validate(); err == nil {
		t.Error("slash segment validated")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
}
