package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"colock/internal/schema"
)

// Store is an in-memory database of complex objects, organized as
// database → segments → relations → complex objects, mirroring the System R
// lock hierarchy the paper extends. It is safe for concurrent use; isolation
// between transactions is the job of the lock protocol layered on top, not
// of the store.
type Store struct {
	cat *schema.Catalog

	mu   sync.RWMutex
	rels map[string]map[string]*Tuple // relation → key → root tuple

	// scans counts nodes visited by reverse-reference scans (BackRefs).
	// The traditional DAG protocol must pay this cost to X-lock shared
	// data (§3.2.2); the counter makes the cost measurable in E3.
	scans atomic.Uint64
}

// New returns an empty store over the given (validated) catalog.
func New(cat *schema.Catalog) *Store {
	s := &Store{cat: cat, rels: make(map[string]map[string]*Tuple)}
	for _, r := range cat.Relations() {
		s.rels[r.Name] = make(map[string]*Tuple)
	}
	return s
}

// Catalog returns the schema catalog the store was built over.
func (s *Store) Catalog() *schema.Catalog { return s.cat }

// Insert adds a complex object to a relation. The object is type-checked
// and its key attribute must match the given key.
func (s *Store) Insert(relation, key string, obj *Tuple) error {
	rel := s.cat.Relation(relation)
	if rel == nil {
		return fmt.Errorf("store: unknown relation %q", relation)
	}
	if err := Check(obj, rel.Type); err != nil {
		return fmt.Errorf("store: insert into %q: %w", relation, err)
	}
	kv := obj.Get(rel.Key)
	if got := atomicString(kv); got != key {
		return fmt.Errorf("store: insert into %q: key attribute %q = %v, want %q", relation, rel.Key, kv, key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rels[relation] == nil {
		// The relation was added to the catalog after the store was built
		// (DDL): create its object map lazily.
		s.rels[relation] = make(map[string]*Tuple)
	}
	if _, dup := s.rels[relation][key]; dup {
		return fmt.Errorf("store: duplicate object %q/%q", relation, key)
	}
	s.rels[relation][key] = obj
	return nil
}

// atomicString renders an atomic value as a plain key string.
func atomicString(v Value) string {
	switch x := v.(type) {
	case Str:
		return string(x)
	case Int:
		return Int(x).String()
	case Real:
		return Real(x).String()
	case Bool:
		return Bool(x).String()
	}
	return ""
}

// Delete removes a complex object and returns it (nil if absent).
func (s *Store) Delete(relation, key string) *Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj := s.rels[relation][key]
	delete(s.rels[relation], key)
	return obj
}

// Get returns the root tuple of a complex object, or nil.
func (s *Store) Get(relation, key string) *Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rels[relation][key]
}

// Keys returns the sorted keys of a relation.
func (s *Store) Keys(relation string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.rels[relation]))
	for k := range s.rels[relation] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of complex objects in a relation.
func (s *Store) Count(relation string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rels[relation])
}

// Resolve follows a reference to its target root tuple, or nil.
func (s *Store) Resolve(r Ref) *Tuple { return s.Get(r.Relation, r.Key) }

// Lookup navigates a path and returns the value it addresses. Paths of
// length 1 address a relation and return nil (relations are not Values);
// use Keys for them.
func (s *Store) Lookup(p Path) (Value, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p) < 2 {
		return nil, fmt.Errorf("store: path %q does not address a value", p)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lookupLocked(p)
}

func (s *Store) lookupLocked(p Path) (Value, error) {
	rel, ok := s.rels[p.Relation()]
	if !ok {
		return nil, fmt.Errorf("store: unknown relation %q", p.Relation())
	}
	obj, ok := rel[p.Key()]
	if !ok {
		return nil, fmt.Errorf("store: no object %q/%q", p.Relation(), p.Key())
	}
	var cur Value = obj
	for i := 2; i < len(p); i++ {
		seg := p[i]
		switch x := cur.(type) {
		case *Tuple:
			cur = x.Get(seg)
			if cur == nil {
				return nil, fmt.Errorf("store: path %q: no field %q", p, seg)
			}
		case *Set:
			cur = x.Get(seg)
			if cur == nil {
				return nil, fmt.Errorf("store: path %q: no element %q", p, seg)
			}
		case *List:
			cur = x.Get(seg)
			if cur == nil {
				return nil, fmt.Errorf("store: path %q: no element %q", p, seg)
			}
		default:
			return nil, fmt.Errorf("store: path %q: cannot descend into %v at %q", p, cur.Kind(), seg)
		}
	}
	return cur, nil
}

// SetAtomic replaces the atomic (or reference) value a path addresses and
// returns the previous value, for undo logging.
func (s *Store) SetAtomic(p Path, v Value) (Value, error) {
	if len(p) < 3 {
		return nil, fmt.Errorf("store: path %q too short for attribute update", p)
	}
	if !v.Kind().Atomic() {
		return nil, fmt.Errorf("store: SetAtomic with non-atomic %v", v.Kind())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.lookupLocked(p.Parent())
	if err != nil {
		return nil, err
	}
	last := p[len(p)-1]
	switch x := parent.(type) {
	case *Tuple:
		old := x.Get(last)
		if old == nil {
			return nil, fmt.Errorf("store: path %q: no field %q", p, last)
		}
		if old.Kind() != v.Kind() {
			return nil, fmt.Errorf("store: path %q: kind %v, want %v", p, v.Kind(), old.Kind())
		}
		x.Set(last, v)
		return old, nil
	case *Set:
		old := x.Get(last)
		if old == nil {
			return nil, fmt.Errorf("store: path %q: no element %q", p, last)
		}
		x.Add(last, v)
		return old, nil
	case *List:
		old := x.Get(last)
		if old == nil {
			return nil, fmt.Errorf("store: path %q: no element %q", p, last)
		}
		x.Append(last, v)
		return old, nil
	}
	return nil, fmt.Errorf("store: path %q: parent is %v", p, parent.Kind())
}

// AddElem inserts an element into the collection a path addresses; it fails
// if the ID already exists.
func (s *Store) AddElem(collection Path, id string, v Value) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cv, err := s.lookupLocked(collection)
	if err != nil {
		return err
	}
	switch x := cv.(type) {
	case *Set:
		if x.Get(id) != nil {
			return fmt.Errorf("store: %q: duplicate element %q", collection, id)
		}
		x.Add(id, v)
	case *List:
		if x.Get(id) != nil {
			return fmt.Errorf("store: %q: duplicate element %q", collection, id)
		}
		x.Append(id, v)
	default:
		return fmt.Errorf("store: %q is not a collection", collection)
	}
	return nil
}

// RemoveElem removes an element from the collection a path addresses and
// returns the removed value (nil if absent).
func (s *Store) RemoveElem(collection Path, id string) (Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cv, err := s.lookupLocked(collection)
	if err != nil {
		return nil, err
	}
	switch x := cv.(type) {
	case *Set:
		return x.Remove(id), nil
	case *List:
		return x.Remove(id), nil
	}
	return nil, fmt.Errorf("store: %q is not a collection", collection)
}

// BackRef describes one reference found by a reverse scan: the path of the
// Ref leaf that points at the target.
type BackRef struct {
	// RefPath addresses the reference element/attribute itself.
	RefPath Path
}

// BackRefs scans the whole database for references to relation/key and
// returns the paths of all referencing leaves. This is the expensive
// "find all parents" operation the traditional DAG protocol needs before it
// may X-lock shared data (§3.2.2: "It is a very time-consuming task to find
// out which robots are affected"); every node visited increments the scan
// counter.
func (s *Store) BackRefs(relation, key string) []BackRef {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []BackRef
	for _, rel := range s.cat.Relations() {
		objs := s.rels[rel.Name]
		keys := make([]string, 0, len(objs))
		for k := range objs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := P(rel.Name, k)
			s.scanValue(objs[k], p, relation, key, &out)
		}
	}
	return out
}

func (s *Store) scanValue(v Value, at Path, relation, key string, out *[]BackRef) {
	s.scans.Add(1)
	switch x := v.(type) {
	case Ref:
		if x.Relation == relation && x.Key == key {
			*out = append(*out, BackRef{RefPath: at})
		}
	case *Tuple:
		for _, n := range x.FieldNames() {
			s.scanValue(x.Get(n), at.Child(n), relation, key, out)
		}
	case *Set:
		for _, id := range x.IDs() {
			s.scanValue(x.Get(id), at.Child(id), relation, key, out)
		}
	case *List:
		for _, id := range x.IDs() {
			s.scanValue(x.Get(id), at.Child(id), relation, key, out)
		}
	}
}

// ScanCount returns the cumulative number of nodes visited by BackRefs.
func (s *Store) ScanCount() uint64 { return s.scans.Load() }

// ResetScanCount zeroes the reverse-scan counter.
func (s *Store) ResetScanCount() { s.scans.Store(0) }

// Refs returns the paths of all reference leaves inside the subtree rooted
// at p, together with their targets. The lock protocol uses this during
// implicit downward propagation: "this is done by a scan over all the
// existing references … the affected inner units have to be accessed anyway
// to read the data during query execution" (§4.4.2.1). The whole traversal
// runs under the store's read lock so it is safe against concurrent
// mutation of unrelated data.
func (s *Store) Refs(p Path) ([]RefAt, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(p) < 2 {
		return nil, fmt.Errorf("store: path %q does not address a value", p)
	}
	v, err := s.lookupLocked(p)
	if err != nil {
		return nil, err
	}
	var out []RefAt
	collectRefs(v, p, &out)
	return out, nil
}

// LookupClone navigates a path and returns a deep copy of the addressed
// value, taken under the store's read lock. Use it whenever the result is
// inspected outside the store (Lookup returns live structures).
func (s *Store) LookupClone(p Path) (Value, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(p) < 2 {
		return nil, fmt.Errorf("store: path %q does not address a value", p)
	}
	v, err := s.lookupLocked(p)
	if err != nil {
		return nil, err
	}
	return v.Clone(), nil
}

// CollectionIDs returns the element IDs of the collection a path addresses
// (sorted for sets, list order for lists), copied under the read lock.
func (s *Store) CollectionIDs(p Path) ([]string, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(p) < 2 {
		return nil, fmt.Errorf("store: path %q does not address a value", p)
	}
	v, err := s.lookupLocked(p)
	if err != nil {
		return nil, err
	}
	switch c := v.(type) {
	case *Set:
		return c.IDs(), nil
	case *List:
		return c.IDs(), nil
	}
	return nil, fmt.Errorf("store: %q is not a collection", p)
}

// RefAt is a reference leaf located at a path.
type RefAt struct {
	Path   Path
	Target Ref
}

func collectRefs(v Value, at Path, out *[]RefAt) {
	switch x := v.(type) {
	case Ref:
		*out = append(*out, RefAt{Path: at, Target: x})
	case *Tuple:
		for _, n := range x.FieldNames() {
			collectRefs(x.Get(n), at.Child(n), out)
		}
	case *Set:
		for _, id := range x.IDs() {
			collectRefs(x.Get(id), at.Child(id), out)
		}
	case *List:
		for _, id := range x.IDs() {
			collectRefs(x.Get(id), at.Child(id), out)
		}
	}
}

// CheckIntegrity verifies that every reference in the database resolves to
// an existing complex object.
func (s *Store) CheckIntegrity() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, rel := range s.cat.Relations() {
		for k, obj := range s.rels[rel.Name] {
			var refs []RefAt
			collectRefs(obj, P(rel.Name, k), &refs)
			for _, r := range refs {
				if tgt, ok := s.rels[r.Target.Relation]; !ok || tgt[r.Target.Key] == nil {
					return fmt.Errorf("store: dangling reference at %q to %s/%s", r.Path, r.Target.Relation, r.Target.Key)
				}
			}
		}
	}
	return nil
}
