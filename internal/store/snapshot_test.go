package store

import (
	"testing"
)

func TestDataSnapshotRoundTrip(t *testing.T) {
	s := PaperDatabase()
	data, err := s.EncodeData()
	if err != nil {
		t.Fatal(err)
	}

	// Mutate and shrink the original, then restore.
	if _, err := s.SetAtomic(ParsePath("effectors/e1/tool"), Str("mutated")); err != nil {
		t.Fatal(err)
	}
	s.Delete("effectors", "e3")
	if err := s.RestoreData(data); err != nil {
		t.Fatal(err)
	}

	v, err := s.Lookup(ParsePath("effectors/e1/tool"))
	if err != nil || v != Str("t1") {
		t.Errorf("restore lost e1 state: %v %v", v, err)
	}
	if s.Get("effectors", "e3") == nil {
		t.Error("restore lost e3")
	}
	if err := s.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	// The deep structure round-trips (list order, set IDs, refs).
	ids, err := s.CollectionIDs(ParsePath("cells/c1/robots"))
	if err != nil || len(ids) != 2 || ids[0] != "r1" {
		t.Errorf("robots order lost: %v %v", ids, err)
	}
	v, _ = s.Lookup(ParsePath("cells/c1/robots/r2/effectors/e3"))
	if v != (Ref{Relation: "effectors", Key: "e3"}) {
		t.Errorf("ref lost: %v", v)
	}
}

func TestDataSnapshotDeterministic(t *testing.T) {
	a, err := PaperDatabase().EncodeData()
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperDatabase().EncodeData()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("snapshots of identical stores differ")
	}
}

func TestRestoreDataErrors(t *testing.T) {
	s := PaperDatabase()
	before, _ := s.EncodeData()

	if err := s.RestoreData([]byte("garbage")); err == nil {
		t.Error("garbage restored")
	}

	// A snapshot from a different catalog fails type checks, and the store
	// must be left unchanged.
	other := New(s.Catalog())
	bad := NewTuple().Set("eff_id", Str("x")).Set("tool", Str("t"))
	if err := other.Insert("effectors", "x", bad); err != nil {
		t.Fatal(err)
	}
	// Dangle a reference by hand-crafting an inconsistent snapshot: a cell
	// referencing a missing effector.
	cell := NewTuple().
		Set("cell_id", Str("cx")).
		Set("c_objects", NewSet()).
		Set("robots", NewList().Append("r1", NewTuple().
			Set("robot_id", Str("r1")).
			Set("trajectory", Str("t")).
			Set("effectors", NewSet().Add("gone", Ref{Relation: "effectors", Key: "gone"}))))
	if err := other.Insert("cells", "cx", cell); err != nil {
		t.Fatal(err)
	}
	other.Delete("effectors", "x")
	dangling, err := other.EncodeData()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreData(dangling); err == nil {
		t.Error("dangling snapshot restored")
	}
	// Original content intact after the failed restore.
	after, _ := s.EncodeData()
	if string(before) != string(after) {
		t.Error("failed restore changed the store")
	}
}

func TestSnapshotAllValueKinds(t *testing.T) {
	// Round-trip every atomic kind through the wire format.
	for _, v := range []Value{Str("s"), Int(-7), Real(2.25), Bool(true),
		Ref{Relation: "r", Key: "k"}} {
		got, err := fromWire(toWire(v))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("round trip %v → %v", v, got)
		}
	}
	if _, err := fromWire(wireValue{Kind: 99}); err == nil {
		t.Error("unknown wire kind accepted")
	}
}
