package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// Data snapshots: a deep, self-contained serialization of every complex
// object in the store, used for backup and media recovery in the
// workstation–server simulation (the lock manager has its own snapshot for
// durable locks; this one covers the data).

// wireValue is the gob-friendly shape of a Value tree.
type wireValue struct {
	Kind   uint8 // 0 str, 1 int, 2 real, 3 bool, 4 ref, 5 tuple, 6 set, 7 list
	Str    string
	Int    int64
	Real   float64
	Bool   bool
	RefRel string
	RefKey string
	// Names and Children encode tuple fields (sorted by name), set elements
	// (sorted by ID) or list elements (list order).
	Names    []string
	Children []wireValue
}

const (
	wireStr = iota
	wireInt
	wireReal
	wireBool
	wireRef
	wireTuple
	wireSet
	wireList
)

func toWire(v Value) wireValue {
	switch x := v.(type) {
	case Str:
		return wireValue{Kind: wireStr, Str: string(x)}
	case Int:
		return wireValue{Kind: wireInt, Int: int64(x)}
	case Real:
		return wireValue{Kind: wireReal, Real: float64(x)}
	case Bool:
		return wireValue{Kind: wireBool, Bool: bool(x)}
	case Ref:
		return wireValue{Kind: wireRef, RefRel: x.Relation, RefKey: x.Key}
	case *Tuple:
		w := wireValue{Kind: wireTuple}
		for _, n := range x.FieldNames() {
			w.Names = append(w.Names, n)
			w.Children = append(w.Children, toWire(x.Get(n)))
		}
		return w
	case *Set:
		w := wireValue{Kind: wireSet}
		for _, id := range x.IDs() {
			w.Names = append(w.Names, id)
			w.Children = append(w.Children, toWire(x.Get(id)))
		}
		return w
	case *List:
		w := wireValue{Kind: wireList}
		for _, id := range x.IDs() {
			w.Names = append(w.Names, id)
			w.Children = append(w.Children, toWire(x.Get(id)))
		}
		return w
	}
	panic(fmt.Sprintf("store: cannot serialize %T", v))
}

func fromWire(w wireValue) (Value, error) {
	switch w.Kind {
	case wireStr:
		return Str(w.Str), nil
	case wireInt:
		return Int(w.Int), nil
	case wireReal:
		return Real(w.Real), nil
	case wireBool:
		return Bool(w.Bool), nil
	case wireRef:
		return Ref{Relation: w.RefRel, Key: w.RefKey}, nil
	case wireTuple:
		t := NewTuple()
		for i, n := range w.Names {
			c, err := fromWire(w.Children[i])
			if err != nil {
				return nil, err
			}
			t.Set(n, c)
		}
		return t, nil
	case wireSet:
		s := NewSet()
		for i, id := range w.Names {
			c, err := fromWire(w.Children[i])
			if err != nil {
				return nil, err
			}
			s.Add(id, c)
		}
		return s, nil
	case wireList:
		l := NewList()
		for i, id := range w.Names {
			c, err := fromWire(w.Children[i])
			if err != nil {
				return nil, err
			}
			l.Append(id, c)
		}
		return l, nil
	}
	return nil, fmt.Errorf("store: unknown wire kind %d", w.Kind)
}

// objectRecord is one serialized complex object.
type objectRecord struct {
	Relation string
	Key      string
	Value    wireValue
}

// EncodeData serializes every complex object of the store (deterministic
// order) for backup.
func (s *Store) EncodeData() ([]byte, error) {
	s.mu.RLock()
	var records []objectRecord
	for _, rel := range s.cat.Relations() {
		keys := make([]string, 0, len(s.rels[rel.Name]))
		for k := range s.rels[rel.Name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			records = append(records, objectRecord{
				Relation: rel.Name, Key: k, Value: toWire(s.rels[rel.Name][k]),
			})
		}
	}
	s.mu.RUnlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(records); err != nil {
		return nil, fmt.Errorf("store: encode data: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreData replaces the store's entire contents with a backup taken by
// EncodeData. Every restored object is type-checked against the catalog and
// the result is integrity-checked; on any error the store is left unchanged.
func (s *Store) RestoreData(data []byte) error {
	var records []objectRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&records); err != nil {
		return fmt.Errorf("store: decode data: %w", err)
	}
	// Build the new contents aside first.
	fresh := make(map[string]map[string]*Tuple, len(s.rels))
	for _, rel := range s.cat.Relations() {
		fresh[rel.Name] = make(map[string]*Tuple)
	}
	for _, rec := range records {
		rel := s.cat.Relation(rec.Relation)
		if rel == nil {
			return fmt.Errorf("store: restore: unknown relation %q", rec.Relation)
		}
		v, err := fromWire(rec.Value)
		if err != nil {
			return fmt.Errorf("store: restore %s/%s: %w", rec.Relation, rec.Key, err)
		}
		obj, ok := v.(*Tuple)
		if !ok {
			return fmt.Errorf("store: restore %s/%s: not a tuple", rec.Relation, rec.Key)
		}
		if err := Check(obj, rel.Type); err != nil {
			return fmt.Errorf("store: restore %s/%s: %w", rec.Relation, rec.Key, err)
		}
		if _, dup := fresh[rec.Relation][rec.Key]; dup {
			return fmt.Errorf("store: restore: duplicate %s/%s", rec.Relation, rec.Key)
		}
		fresh[rec.Relation][rec.Key] = obj
	}
	s.mu.Lock()
	old := s.rels
	s.rels = fresh
	s.mu.Unlock()
	if err := s.CheckIntegrity(); err != nil {
		s.mu.Lock()
		s.rels = old
		s.mu.Unlock()
		return fmt.Errorf("store: restore: %w", err)
	}
	return nil
}
