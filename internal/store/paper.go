package store

import (
	"fmt"

	"colock/internal/schema"
)

// PaperDatabase builds the example database of the paper's Figures 6 and 7
// over the Figure 1 schema:
//
//	cell c1
//	  c_objects: { c_object o1 (o1, on1) }
//	  robots:    [ robot r1 (r1, tr1, effectors {→e1, →e2}),
//	               robot r2 (r2, tr2, effectors {→e2, →e3}) ]
//	effectors library: e1 (t1), e2 (t2), e3 (t3)
//
// Effector e2 is shared by robots r1 and r2, which is exactly what makes Q2
// and Q3 of Figure 7 interesting: both queries touch e2.
func PaperDatabase() *Store {
	cat := schema.PaperSchema()
	s := New(cat)

	for _, e := range []struct{ id, tool string }{
		{"e1", "t1"}, {"e2", "t2"}, {"e3", "t3"},
	} {
		eff := NewTuple().Set("eff_id", Str(e.id)).Set("tool", Str(e.tool))
		mustInsert(s, "effectors", e.id, eff)
	}

	robot := func(id, traj string, effs ...string) *Tuple {
		set := NewSet()
		for _, e := range effs {
			set.Add(e, Ref{Relation: "effectors", Key: e})
		}
		return NewTuple().
			Set("robot_id", Str(id)).
			Set("trajectory", Str(traj)).
			Set("effectors", set)
	}

	c1 := NewTuple().
		Set("cell_id", Str("c1")).
		Set("c_objects", NewSet().Add("o1",
			NewTuple().Set("obj_id", Int(1)).Set("obj_name", Str("on1")))).
		Set("robots", NewList().
			Append("r1", robot("r1", "tr1", "e1", "e2")).
			Append("r2", robot("r2", "tr2", "e2", "e3")))
	mustInsert(s, "cells", "c1", c1)

	if err := s.CheckIntegrity(); err != nil {
		panic(err) // the paper database is consistent by construction
	}
	return s
}

func mustInsert(s *Store, rel, key string, obj *Tuple) {
	if err := s.Insert(rel, key, obj); err != nil {
		panic(fmt.Sprintf("store: paper database: %v", err))
	}
}
