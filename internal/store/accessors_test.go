package store

import (
	"sync"
	"testing"

	"colock/internal/schema"
)

func TestLookupClone(t *testing.T) {
	s := PaperDatabase()
	v, err := s.LookupClone(ParsePath("cells/c1/robots/r1"))
	if err != nil {
		t.Fatal(err)
	}
	v.(*Tuple).Set("trajectory", Str("mutated-clone"))
	orig, _ := s.Lookup(ParsePath("cells/c1/robots/r1/trajectory"))
	if orig != Str("tr1") {
		t.Error("LookupClone returned a live reference")
	}
	if _, err := s.LookupClone(ParsePath("cells/zz")); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := s.LookupClone(ParsePath("cells")); err == nil {
		t.Error("relation-only path accepted")
	}
	if _, err := s.LookupClone(Path{""}); err == nil {
		t.Error("invalid path accepted")
	}
}

func TestCollectionIDs(t *testing.T) {
	s := PaperDatabase()
	ids, err := s.CollectionIDs(ParsePath("cells/c1/robots"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "r1" || ids[1] != "r2" {
		t.Errorf("robots = %v (list order)", ids)
	}
	ids, err = s.CollectionIDs(ParsePath("cells/c1/robots/r1/effectors"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "e1" {
		t.Errorf("effectors = %v (sorted)", ids)
	}
	if _, err := s.CollectionIDs(ParsePath("cells/c1/cell_id")); err == nil {
		t.Error("atomic path accepted")
	}
	if _, err := s.CollectionIDs(ParsePath("cells/zz/robots")); err == nil {
		t.Error("bad object accepted")
	}
	if _, err := s.CollectionIDs(ParsePath("cells")); err == nil {
		t.Error("relation-only path accepted")
	}
	if _, err := s.CollectionIDs(Path{""}); err == nil {
		t.Error("invalid path accepted")
	}
}

func TestCatalogAccessor(t *testing.T) {
	s := PaperDatabase()
	if s.Catalog() == nil || s.Catalog().Database != "db1" {
		t.Error("Catalog accessor broken")
	}
}

func TestAtomicStringKinds(t *testing.T) {
	// Insert with non-string keys exercises atomicString for each kind.
	cat := schema.NewCatalog("db")
	_ = cat.AddRelation(&schema.Relation{
		Name: "ints", Segment: "s", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Int())),
	})
	_ = cat.AddRelation(&schema.Relation{
		Name: "reals", Segment: "s", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Real())),
	})
	_ = cat.AddRelation(&schema.Relation{
		Name: "bools", Segment: "s", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Bool())),
	})
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	s := New(cat)
	if err := s.Insert("ints", "42", NewTuple().Set("id", Int(42))); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("reals", "2.5", NewTuple().Set("id", Real(2.5))); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("bools", "true", NewTuple().Set("id", Bool(true))); err != nil {
		t.Fatal(err)
	}
	if s.Get("ints", "42") == nil || s.Get("reals", "2.5") == nil || s.Get("bools", "true") == nil {
		t.Error("non-string keys broken")
	}
}

// TestConcurrentReadWriteSafety: concurrent SetAtomic and traversing reads
// (Refs, LookupClone, CollectionIDs, BackRefs) must be memory-safe. Run with
// -race to exercise the locking discipline this guards.
func TestConcurrentReadWriteSafety(t *testing.T) {
	s := PaperDatabase()
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := Str("t")
			if i%2 == 0 {
				v = Str("u")
			}
			if _, err := s.SetAtomic(ParsePath("effectors/e2/tool"), v); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				if _, err := s.Refs(ParsePath("cells/c1")); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.LookupClone(ParsePath("effectors/e2")); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.CollectionIDs(ParsePath("cells/c1/robots")); err != nil {
					t.Error(err)
					return
				}
				_ = s.BackRefs("effectors", "e2")
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-writerDone
}
