package store

import (
	"fmt"
	"strings"
)

// Path addresses a node inside the database's complex-object hierarchy,
// rooted at a relation: the first segment is the relation name, the second a
// complex-object key, and the remaining segments alternate between attribute
// names and collection element IDs as the type structure dictates, e.g.
//
//	cells                                → the relation
//	cells/c1                             → complex object (root tuple)
//	cells/c1/robots                      → the robots list of c1
//	cells/c1/robots/r1                   → robot r1 (a list element)
//	cells/c1/robots/r1/trajectory        → an atomic attribute
//	cells/c1/robots/r1/effectors/e2      → a reference element
//
// Paths are the address vocabulary shared by the store, the lock-graph
// instantiation in package core, and the query executor.
type Path []string

// ParsePath splits a slash-separated path string.
func ParsePath(s string) Path {
	if s == "" {
		return nil
	}
	return Path(strings.Split(s, "/"))
}

// P builds a path from segments.
func P(segments ...string) Path { return Path(segments) }

// String renders the path slash-separated.
func (p Path) String() string { return strings.Join([]string(p), "/") }

// Relation returns the relation name (first segment), or "".
func (p Path) Relation() string {
	if len(p) == 0 {
		return ""
	}
	return p[0]
}

// Key returns the complex-object key (second segment), or "".
func (p Path) Key() string {
	if len(p) < 2 {
		return ""
	}
	return p[1]
}

// Child returns p extended by one segment.
func (p Path) Child(segment string) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = segment
	return out
}

// Parent returns the path without its last segment (nil for empty paths).
func (p Path) Parent() Path {
	if len(p) == 0 {
		return nil
	}
	return p[:len(p)-1]
}

// HasPrefix reports whether q is a prefix of p (every node is a prefix of
// itself).
func (p Path) HasPrefix(q Path) bool {
	if len(q) > len(p) {
		return false
	}
	for i := range q {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Equal reports segment-wise equality.
func (p Path) Equal(q Path) bool {
	return len(p) == len(q) && p.HasPrefix(q)
}

// Clone returns a copy of p.
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// Validate performs cheap structural checks.
func (p Path) Validate() error {
	if len(p) == 0 {
		return fmt.Errorf("store: empty path")
	}
	for i, s := range p {
		if s == "" {
			return fmt.Errorf("store: empty segment %d in path %q", i, p)
		}
		if strings.Contains(s, "/") {
			return fmt.Errorf("store: segment %q contains '/'", s)
		}
	}
	return nil
}
