// Package store implements an in-memory storage engine for extended-NF²
// complex objects: values (atomic, set, list, tuple, reference), a
// database/segment/relation store with key-addressed complex objects,
// hierarchical path navigation, type checking against a schema catalog,
// reference resolution and reverse-reference scans, and the concrete example
// database of the paper's Figure 6 (cell c1 and the effectors library).
package store

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"colock/internal/schema"
)

// Value is a data value of the extended NF² model.
type Value interface {
	// Kind returns the schema kind this value inhabits.
	Kind() schema.Kind
	// Clone returns a deep copy.
	Clone() Value
	// String renders the value for display.
	String() string
}

// Str is an atomic string value.
type Str string

// Kind implements Value.
func (Str) Kind() schema.Kind { return schema.KindStr }

// Clone implements Value.
func (v Str) Clone() Value { return v }

// String implements Value.
func (v Str) String() string { return strconv.Quote(string(v)) }

// Int is an atomic integer value.
type Int int64

// Kind implements Value.
func (Int) Kind() schema.Kind { return schema.KindInt }

// Clone implements Value.
func (v Int) Clone() Value { return v }

// String implements Value.
func (v Int) String() string { return strconv.FormatInt(int64(v), 10) }

// Real is an atomic floating-point value.
type Real float64

// Kind implements Value.
func (Real) Kind() schema.Kind { return schema.KindReal }

// Clone implements Value.
func (v Real) Clone() Value { return v }

// String implements Value.
func (v Real) String() string { return strconv.FormatFloat(float64(v), 'g', -1, 64) }

// Bool is an atomic boolean value.
type Bool bool

// Kind implements Value.
func (Bool) Kind() schema.Kind { return schema.KindBool }

// Clone implements Value.
func (v Bool) Clone() Value { return v }

// String implements Value.
func (v Bool) String() string { return strconv.FormatBool(bool(v)) }

// Ref is a reference to a complex object of another relation — the paper's
// "reference to common data". The implementation (key values vs. surrogates)
// is deliberately simple; the paper makes no assumption about it.
type Ref struct {
	Relation string
	Key      string
}

// Kind implements Value.
func (Ref) Kind() schema.Kind { return schema.KindRef }

// Clone implements Value.
func (v Ref) Clone() Value { return v }

// String implements Value.
func (v Ref) String() string { return "->" + v.Relation + "/" + v.Key }

// Tuple is a (complex) tuple value with named fields.
type Tuple struct {
	fields map[string]Value
}

// NewTuple returns an empty tuple value.
func NewTuple() *Tuple { return &Tuple{fields: make(map[string]Value)} }

// Kind implements Value.
func (*Tuple) Kind() schema.Kind { return schema.KindTuple }

// Set stores a field value, replacing any previous one, and returns the
// tuple for chaining.
func (t *Tuple) Set(name string, v Value) *Tuple {
	t.fields[name] = v
	return t
}

// Get returns the named field value, or nil.
func (t *Tuple) Get(name string) Value { return t.fields[name] }

// FieldNames returns the field names in sorted order.
func (t *Tuple) FieldNames() []string {
	out := make([]string, 0, len(t.fields))
	for n := range t.fields {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone implements Value.
func (t *Tuple) Clone() Value {
	c := NewTuple()
	for n, v := range t.fields {
		c.fields[n] = v.Clone()
	}
	return c
}

// String implements Value.
func (t *Tuple) String() string {
	parts := make([]string, 0, len(t.fields))
	for _, n := range t.FieldNames() {
		parts = append(parts, n+":"+t.fields[n].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Set is an unordered collection of identified elements. Element IDs give
// subobjects a stable identity, which the lock technique needs to name
// lockable units (e.g. "c_object o1"). For sets of references the
// conventional ID is the referenced key.
type Set struct {
	elems map[string]Value
}

// NewSet returns an empty set value.
func NewSet() *Set { return &Set{elems: make(map[string]Value)} }

// Kind implements Value.
func (*Set) Kind() schema.Kind { return schema.KindSet }

// Add inserts (or replaces) the element with the given ID and returns the
// set for chaining.
func (s *Set) Add(id string, v Value) *Set {
	s.elems[id] = v
	return s
}

// Remove deletes the element and returns its previous value (nil if absent).
func (s *Set) Remove(id string) Value {
	v := s.elems[id]
	delete(s.elems, id)
	return v
}

// Get returns the element with the given ID, or nil.
func (s *Set) Get(id string) Value { return s.elems[id] }

// Len returns the number of elements.
func (s *Set) Len() int { return len(s.elems) }

// IDs returns the element IDs in sorted order.
func (s *Set) IDs() []string {
	out := make([]string, 0, len(s.elems))
	for id := range s.elems {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Clone implements Value.
func (s *Set) Clone() Value {
	c := NewSet()
	for id, v := range s.elems {
		c.elems[id] = v.Clone()
	}
	return c
}

// String implements Value.
func (s *Set) String() string {
	parts := make([]string, 0, len(s.elems))
	for _, id := range s.IDs() {
		parts = append(parts, id+"="+s.elems[id].String())
	}
	return "S{" + strings.Join(parts, ", ") + "}"
}

// List is an ordered collection of identified elements (e.g. the robots of a
// cell, ordered by robot_id).
type List struct {
	ids   []string
	elems map[string]Value
}

// NewList returns an empty list value.
func NewList() *List { return &List{elems: make(map[string]Value)} }

// Kind implements Value.
func (*List) Kind() schema.Kind { return schema.KindList }

// Append adds an element at the end; appending an existing ID replaces the
// value in place. Returns the list for chaining.
func (l *List) Append(id string, v Value) *List {
	if _, ok := l.elems[id]; !ok {
		l.ids = append(l.ids, id)
	}
	l.elems[id] = v
	return l
}

// Remove deletes the element and returns its previous value (nil if absent).
func (l *List) Remove(id string) Value {
	v, ok := l.elems[id]
	if !ok {
		return nil
	}
	delete(l.elems, id)
	for i, x := range l.ids {
		if x == id {
			l.ids = append(l.ids[:i], l.ids[i+1:]...)
			break
		}
	}
	return v
}

// Get returns the element with the given ID, or nil.
func (l *List) Get(id string) Value { return l.elems[id] }

// Len returns the number of elements.
func (l *List) Len() int { return len(l.ids) }

// IDs returns the element IDs in list order.
func (l *List) IDs() []string {
	out := make([]string, len(l.ids))
	copy(out, l.ids)
	return out
}

// Clone implements Value.
func (l *List) Clone() Value {
	c := NewList()
	for _, id := range l.ids {
		c.Append(id, l.elems[id].Clone())
	}
	return c
}

// String implements Value.
func (l *List) String() string {
	parts := make([]string, 0, len(l.ids))
	for _, id := range l.ids {
		parts = append(parts, id+"="+l.elems[id].String())
	}
	return "L[" + strings.Join(parts, ", ") + "]"
}

// collection is the common interface of Set and List used by navigation.
type collection interface {
	Get(id string) Value
	IDs() []string
	Len() int
}

var (
	_ collection = (*Set)(nil)
	_ collection = (*List)(nil)
)

// Check validates that v conforms to type t.
func Check(v Value, t *schema.Type) error {
	if t == nil {
		return fmt.Errorf("store: nil type")
	}
	if v == nil {
		return fmt.Errorf("store: nil value for type %v", t)
	}
	switch t.Kind {
	case schema.KindStr, schema.KindInt, schema.KindReal, schema.KindBool:
		if v.Kind() != t.Kind {
			return fmt.Errorf("store: value kind %v, want %v", v.Kind(), t.Kind)
		}
		return nil
	case schema.KindRef:
		r, ok := v.(Ref)
		if !ok {
			return fmt.Errorf("store: value kind %v, want ref", v.Kind())
		}
		if r.Relation != t.Target {
			return fmt.Errorf("store: reference targets %q, want %q", r.Relation, t.Target)
		}
		return nil
	case schema.KindSet:
		s, ok := v.(*Set)
		if !ok {
			return fmt.Errorf("store: value kind %v, want set", v.Kind())
		}
		for _, id := range s.IDs() {
			if err := Check(s.Get(id), t.Elem); err != nil {
				return fmt.Errorf("element %q: %w", id, err)
			}
		}
		return nil
	case schema.KindList:
		l, ok := v.(*List)
		if !ok {
			return fmt.Errorf("store: value kind %v, want list", v.Kind())
		}
		for _, id := range l.IDs() {
			if err := Check(l.Get(id), t.Elem); err != nil {
				return fmt.Errorf("element %q: %w", id, err)
			}
		}
		return nil
	case schema.KindTuple:
		tp, ok := v.(*Tuple)
		if !ok {
			return fmt.Errorf("store: value kind %v, want tuple", v.Kind())
		}
		for _, f := range t.Fields {
			fv := tp.Get(f.Name)
			if fv == nil {
				return fmt.Errorf("store: missing field %q", f.Name)
			}
			if err := Check(fv, f.Type); err != nil {
				return fmt.Errorf("field %q: %w", f.Name, err)
			}
		}
		for _, n := range tp.FieldNames() {
			if t.Field(n) == nil {
				return fmt.Errorf("store: unexpected field %q", n)
			}
		}
		return nil
	}
	return fmt.Errorf("store: invalid type kind %v", t.Kind)
}

// ZeroValue constructs the empty value of a type (empty strings and
// collections, zero numbers). References have no meaningful zero and yield
// an empty Ref to the target relation.
func ZeroValue(t *schema.Type) Value {
	switch t.Kind {
	case schema.KindStr:
		return Str("")
	case schema.KindInt:
		return Int(0)
	case schema.KindReal:
		return Real(0)
	case schema.KindBool:
		return Bool(false)
	case schema.KindRef:
		return Ref{Relation: t.Target}
	case schema.KindSet:
		return NewSet()
	case schema.KindList:
		return NewList()
	case schema.KindTuple:
		tp := NewTuple()
		for _, f := range t.Fields {
			tp.Set(f.Name, ZeroValue(f.Type))
		}
		return tp
	}
	return nil
}
