package store

import (
	"strings"
	"testing"

	"colock/internal/schema"
)

func libCatalog(t *testing.T) *schema.Catalog {
	t.Helper()
	c := schema.NewCatalog("db")
	if err := c.AddRelation(&schema.Relation{
		Name: "lib", Segment: "s2", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Str()), schema.F("v", schema.Int())),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRelation(&schema.Relation{
		Name: "top", Segment: "s1", Key: "id",
		Type: schema.Tuple(
			schema.F("id", schema.Str()),
			schema.F("name", schema.Str()),
			schema.F("parts", schema.Set(schema.Ref("lib"))),
		),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func libObj(id, name string, parts ...string) *Tuple {
	set := NewSet()
	for _, p := range parts {
		set.Add(p, Ref{"lib", p})
	}
	return NewTuple().Set("id", Str(id)).Set("name", Str(name)).Set("parts", set)
}

func TestInsertGetDelete(t *testing.T) {
	s := New(libCatalog(t))
	if err := s.Insert("lib", "p1", NewTuple().Set("id", Str("p1")).Set("v", Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("top", "a", libObj("a", "first", "p1")); err != nil {
		t.Fatal(err)
	}
	if s.Get("top", "a") == nil || s.Get("top", "zz") != nil {
		t.Error("Get")
	}
	if s.Count("top") != 1 || s.Count("lib") != 1 {
		t.Error("Count")
	}
	if keys := s.Keys("top"); len(keys) != 1 || keys[0] != "a" {
		t.Errorf("Keys = %v", keys)
	}
	if obj := s.Delete("top", "a"); obj == nil {
		t.Error("Delete returned nil")
	}
	if s.Get("top", "a") != nil {
		t.Error("object survived Delete")
	}
	if s.Delete("top", "a") != nil {
		t.Error("double Delete non-nil")
	}
}

func TestInsertErrors(t *testing.T) {
	s := New(libCatalog(t))
	if err := s.Insert("nope", "x", NewTuple()); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := s.Insert("lib", "p1", NewTuple().Set("id", Str("p1"))); err == nil {
		t.Error("non-conforming object accepted")
	}
	// Key attribute must match the insert key.
	obj := NewTuple().Set("id", Str("other")).Set("v", Int(0))
	if err := s.Insert("lib", "p1", obj); err == nil {
		t.Error("key mismatch accepted")
	}
	good := NewTuple().Set("id", Str("p1")).Set("v", Int(0))
	if err := s.Insert("lib", "p1", good); err != nil {
		t.Fatal(err)
	}
	dup := NewTuple().Set("id", Str("p1")).Set("v", Int(9))
	if err := s.Insert("lib", "p1", dup); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestLookupPaths(t *testing.T) {
	s := PaperDatabase()
	cases := []struct {
		path string
		want string
	}{
		{"cells/c1/cell_id", `"c1"`},
		{"cells/c1/robots/r1/trajectory", `"tr1"`},
		{"cells/c1/robots/r1/effectors/e2", "->effectors/e2"},
		{"cells/c1/c_objects/o1/obj_id", "1"},
		{"effectors/e3/tool", `"t3"`},
	}
	for _, c := range cases {
		v, err := s.Lookup(ParsePath(c.path))
		if err != nil {
			t.Errorf("Lookup(%s): %v", c.path, err)
			continue
		}
		if v.String() != c.want {
			t.Errorf("Lookup(%s) = %s, want %s", c.path, v, c.want)
		}
	}

	bad := []string{
		"",                       // empty
		"cells",                  // relation only
		"nope/x",                 // unknown relation
		"cells/zz",               // unknown key
		"cells/c1/nope",          // unknown field
		"cells/c1/robots/zz",     // unknown element
		"cells/c1/cell_id/deep",  // descend into atomic
		"cells/c1/robots/r1/zzz", // unknown robot field
	}
	for _, p := range bad {
		if _, err := s.Lookup(ParsePath(p)); err == nil {
			t.Errorf("Lookup(%q) succeeded", p)
		}
	}
}

func TestSetAtomic(t *testing.T) {
	s := PaperDatabase()
	p := ParsePath("cells/c1/robots/r1/trajectory")
	old, err := s.SetAtomic(p, Str("tr1-new"))
	if err != nil {
		t.Fatal(err)
	}
	if old != Str("tr1") {
		t.Errorf("old = %v", old)
	}
	v, _ := s.Lookup(p)
	if v != Str("tr1-new") {
		t.Errorf("after update = %v", v)
	}
	// Undo using the returned old value.
	if _, err := s.SetAtomic(p, old); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Lookup(p)
	if v != Str("tr1") {
		t.Error("undo failed")
	}

	if _, err := s.SetAtomic(ParsePath("cells/c1"), Str("x")); err == nil {
		t.Error("short path accepted")
	}
	if _, err := s.SetAtomic(p, NewSet()); err == nil {
		t.Error("non-atomic value accepted")
	}
	if _, err := s.SetAtomic(p, Int(3)); err == nil {
		t.Error("kind change accepted")
	}
	if _, err := s.SetAtomic(ParsePath("cells/c1/robots/zz/trajectory"), Str("x")); err == nil {
		t.Error("bad parent accepted")
	}
	// Replacing a ref element inside a set (set parent).
	rp := ParsePath("cells/c1/robots/r1/effectors/e1")
	oldRef, err := s.SetAtomic(rp, Ref{"effectors", "e1"})
	if err != nil {
		t.Fatal(err)
	}
	if oldRef != (Ref{"effectors", "e1"}) {
		t.Errorf("old ref = %v", oldRef)
	}
}

func TestAddRemoveElem(t *testing.T) {
	s := PaperDatabase()
	coll := ParsePath("cells/c1/robots/r1/effectors")
	if err := s.AddElem(coll, "e3", Ref{"effectors", "e3"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddElem(coll, "e3", Ref{"effectors", "e3"}); err == nil {
		t.Error("duplicate element accepted")
	}
	v, err := s.RemoveElem(coll, "e3")
	if err != nil || v != (Ref{"effectors", "e3"}) {
		t.Errorf("RemoveElem = %v, %v", v, err)
	}
	if v, _ := s.RemoveElem(coll, "zz"); v != nil {
		t.Error("remove absent non-nil")
	}
	if err := s.AddElem(ParsePath("cells/c1/cell_id"), "x", Int(1)); err == nil {
		t.Error("AddElem on atomic accepted")
	}
	if _, err := s.RemoveElem(ParsePath("cells/c1/cell_id"), "x"); err == nil {
		t.Error("RemoveElem on atomic accepted")
	}
	// List collection.
	robots := ParsePath("cells/c1/robots")
	r3 := NewTuple().Set("robot_id", Str("r3")).Set("trajectory", Str("t")).Set("effectors", NewSet())
	if err := s.AddElem(robots, "r3", r3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveElem(robots, "r3"); err != nil {
		t.Fatal(err)
	}
}

func TestResolveAndIntegrity(t *testing.T) {
	s := PaperDatabase()
	if s.Resolve(Ref{"effectors", "e2"}) == nil {
		t.Error("Resolve failed")
	}
	if s.Resolve(Ref{"effectors", "zz"}) != nil {
		t.Error("Resolve of absent non-nil")
	}
	if err := s.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	s.Delete("effectors", "e2") // now r1 and r2 dangle
	err := s.CheckIntegrity()
	if err == nil {
		t.Fatal("dangling reference not detected")
	}
	if !strings.Contains(err.Error(), "e2") {
		t.Errorf("error does not name the target: %v", err)
	}
}

func TestBackRefs(t *testing.T) {
	s := PaperDatabase()
	s.ResetScanCount()
	refs := s.BackRefs("effectors", "e2")
	if len(refs) != 2 {
		t.Fatalf("e2 referenced %d times, want 2: %v", len(refs), refs)
	}
	paths := []string{refs[0].RefPath.String(), refs[1].RefPath.String()}
	want := map[string]bool{
		"cells/c1/robots/r1/effectors/e2": true,
		"cells/c1/robots/r2/effectors/e2": true,
	}
	for _, p := range paths {
		if !want[p] {
			t.Errorf("unexpected backref %q", p)
		}
	}
	if s.ScanCount() == 0 {
		t.Error("reverse scan cost not recorded")
	}
	if got := s.BackRefs("effectors", "e1"); len(got) != 1 {
		t.Errorf("e1 referenced %d times, want 1", len(got))
	}
	if got := s.BackRefs("effectors", "zz"); len(got) != 0 {
		t.Errorf("absent target referenced %d times", len(got))
	}
}

func TestRefs(t *testing.T) {
	s := PaperDatabase()
	refs, err := s.Refs(ParsePath("cells/c1/robots/r1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("r1 has %d refs, want 2", len(refs))
	}
	if refs[0].Target.Key != "e1" || refs[1].Target.Key != "e2" {
		t.Errorf("refs = %v", refs)
	}
	refs, err = s.Refs(ParsePath("cells/c1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 4 {
		t.Errorf("c1 has %d refs, want 4", len(refs))
	}
	// A subtree without refs.
	refs, err = s.Refs(ParsePath("cells/c1/c_objects"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 0 {
		t.Errorf("c_objects has refs: %v", refs)
	}
	if _, err := s.Refs(ParsePath("cells/zz")); err == nil {
		t.Error("Refs on bad path succeeded")
	}
}

func TestPaperDatabaseShape(t *testing.T) {
	s := PaperDatabase()
	if s.Count("cells") != 1 || s.Count("effectors") != 3 {
		t.Errorf("counts: cells=%d effectors=%d", s.Count("cells"), s.Count("effectors"))
	}
	robots, err := s.Lookup(ParsePath("cells/c1/robots"))
	if err != nil {
		t.Fatal(err)
	}
	l := robots.(*List)
	if ids := l.IDs(); len(ids) != 2 || ids[0] != "r1" || ids[1] != "r2" {
		t.Errorf("robots = %v (must be ordered r1, r2)", ids)
	}
	// r1 -> {e1, e2}, r2 -> {e2, e3} per Figures 6/7.
	effs1, _ := s.Lookup(ParsePath("cells/c1/robots/r1/effectors"))
	if ids := effs1.(*Set).IDs(); len(ids) != 2 || ids[0] != "e1" || ids[1] != "e2" {
		t.Errorf("r1 effectors = %v", ids)
	}
	effs2, _ := s.Lookup(ParsePath("cells/c1/robots/r2/effectors"))
	if ids := effs2.(*Set).IDs(); len(ids) != 2 || ids[0] != "e2" || ids[1] != "e3" {
		t.Errorf("r2 effectors = %v", ids)
	}
}
