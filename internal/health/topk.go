package health

import (
	"sort"
	"sync"

	"colock/internal/lock"
)

// TopEntry is one row of the hot-resource ranking.
type TopEntry struct {
	// Resource is the contended lock name.
	Resource lock.Resource
	// Mode is the requested mode that contended (the sketch keys on
	// resource+mode: an X-hot entry point and an S-hot one rank apart).
	Mode string
	// Count is the sketch's occurrence estimate. It never undercounts:
	// true ≤ Count ≤ true + MaxErr.
	Count uint64
	// MaxErr bounds the overestimation Count may carry from slot
	// inheritance (zero for keys tracked since their first occurrence).
	MaxErr uint64
}

// Sketch is a space-saving (Misra–Gries family) top-K summary over an
// unbounded key stream in bounded memory: at most cap keys are tracked; a
// new key arriving at capacity evicts the minimum-count key and inherits
// its count + 1, recording that count as its error bound. The classic
// guarantees follow: counts never undercount, any key with true frequency
// above the evicted minimum is present, and Count − MaxErr is a certain
// lower bound.
//
// Decay halves every count once per closed health window, turning the
// lifetime summary into an exponentially-weighted "hot NOW" ranking —
// a key must keep contending to keep its rank, and idle keys fall out
// entirely once their count halves to zero.
type Sketch struct {
	mu  sync.Mutex
	cap int
	m   map[string]*topSlot
}

type topSlot struct {
	res   lock.Resource
	mode  string
	count uint64
	err   uint64
}

// NewSketch builds a sketch tracking at most capacity keys (minimum 1).
func NewSketch(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	return &Sketch{cap: capacity, m: make(map[string]*topSlot, capacity)}
}

// Touch records one occurrence of resource r contended in mode m.
func (s *Sketch) Touch(r lock.Resource, m lock.Mode) {
	key := string(r) + "|" + m.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if sl, ok := s.m[key]; ok {
		sl.count++
		return
	}
	if len(s.m) < s.cap {
		s.m[key] = &topSlot{res: r, mode: m.String(), count: 1}
		return
	}
	// At capacity: the newcomer takes over the minimum slot, inheriting
	// min+1 with error bound min (it may have occurred up to min times
	// while untracked, never more — else it would have displaced earlier).
	var minKey string
	var min *topSlot
	for k, sl := range s.m {
		if min == nil || sl.count < min.count || (sl.count == min.count && k < minKey) {
			min, minKey = sl, k
		}
	}
	delete(s.m, minKey)
	s.m[key] = &topSlot{res: r, mode: m.String(), count: min.count + 1, err: min.count}
}

// Decay halves every tracked count (and error bound) and drops keys that
// reach zero; called once per closed window by Monitor.Advance.
func (s *Sketch) Decay() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, sl := range s.m {
		sl.count >>= 1
		sl.err >>= 1
		if sl.count == 0 {
			delete(s.m, k)
		}
	}
}

// TopK returns the n highest-count entries, descending by count with key
// order breaking ties (n <= 0 returns all tracked keys).
func (s *Sketch) TopK(n int) []TopEntry {
	s.mu.Lock()
	out := make([]TopEntry, 0, len(s.m))
	for _, sl := range s.m {
		out = append(out, TopEntry{Resource: sl.res, Mode: sl.mode, Count: sl.count, MaxErr: sl.err})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Resource != out[j].Resource {
			return out[i].Resource < out[j].Resource
		}
		return out[i].Mode < out[j].Mode
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Len returns the number of tracked keys.
func (s *Sketch) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Reset forgets everything.
func (s *Sketch) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string]*topSlot, s.cap)
}
