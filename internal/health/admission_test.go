package health

import (
	"testing"
	"time"

	"colock/internal/lock"
)

var degraded = lock.AdmissionConfig{MaxWaiters: 2, Mode: lock.AdmitDegrade}

func TestAutoAdmissionEngageAndRecoverNoPriorGate(t *testing.T) {
	mgr := lock.NewManager(lock.Options{})
	a := NewAutoAdmission(mgr, degraded)

	a.OnTransition(Transition{From: StateWarn, To: StateCritical})
	cfg, ok := mgr.AdmissionConfigured()
	if !ok || cfg.Mode != lock.AdmitDegrade || cfg.MaxWaiters != 2 {
		t.Fatalf("gate after critical = %+v ok=%v, want degraded installed", cfg, ok)
	}
	if !a.Engaged() {
		t.Fatal("policy not engaged")
	}

	a.OnTransition(Transition{From: StateCritical, To: StateOK})
	if _, ok := mgr.AdmissionConfigured(); ok {
		t.Fatal("gate still installed after recovery with no prior config")
	}
	if a.Engaged() {
		t.Fatal("policy still engaged after recovery")
	}
	if e, r := a.Stats(); e != 1 || r != 1 {
		t.Fatalf("stats = %d engages, %d recoveries, want 1,1", e, r)
	}
}

func TestAutoAdmissionRestoresPriorGate(t *testing.T) {
	mgr := lock.NewManager(lock.Options{})
	prior := lock.AdmissionConfig{MaxWaiters: 50, MaxDelay: time.Second, Mode: lock.AdmitShed}
	mgr.ConfigureAdmission(prior)
	a := NewAutoAdmission(mgr, degraded)

	a.OnTransition(Transition{From: StateWarn, To: StateCritical})
	if cfg, _ := mgr.AdmissionConfigured(); cfg.Mode != lock.AdmitDegrade {
		t.Fatalf("gate while critical = %+v, want degraded", cfg)
	}
	a.OnTransition(Transition{From: StateCritical, To: StateOK})
	cfg, ok := mgr.AdmissionConfigured()
	if !ok || cfg.MaxWaiters != 50 || cfg.Mode != lock.AdmitShed {
		t.Fatalf("gate after recovery = %+v ok=%v, want prior shed gate restored", cfg, ok)
	}
}

func TestAutoAdmissionWarnIsNoActionAndEngageOnce(t *testing.T) {
	mgr := lock.NewManager(lock.Options{})
	a := NewAutoAdmission(mgr, degraded)
	a.OnTransition(Transition{From: StateOK, To: StateWarn})
	if _, ok := mgr.AdmissionConfigured(); ok {
		t.Fatal("warn installed a gate")
	}
	a.OnTransition(Transition{From: StateWarn, To: StateCritical})
	a.OnTransition(Transition{From: StateCritical, To: StateCritical})
	if e, _ := a.Stats(); e != 1 {
		t.Fatalf("engages = %d, want 1 (idempotent while critical)", e)
	}
}

func TestAutoAdmissionDisableRollsBack(t *testing.T) {
	mgr := lock.NewManager(lock.Options{})
	mon := newTestMonitor(SLO{MaxAbortRate: 0.1, WarnAfter: 1, CritAfter: 1, RecoverAfter: 1})
	a := mon.EnableAutoAdmission(mgr, degraded)

	mon.Record(lock.Event{Kind: "victim", At: at(0), WaitDie: true, Resource: "r", Mode: lock.X})
	mon.Advance(at(1))
	if !a.Engaged() {
		t.Fatal("policy did not engage through the monitor's transition")
	}
	a.Disable()
	if _, ok := mgr.AdmissionConfigured(); ok {
		t.Fatal("Disable left the degraded gate installed")
	}
	// Disabled: further transitions are ignored.
	mon.Record(lock.Event{Kind: "victim", At: at(1), WaitDie: true, Resource: "r", Mode: lock.X})
	mon.Advance(at(2))
	if a.Engaged() {
		t.Fatal("disabled policy engaged")
	}
	// Re-enabled: the next critical transition engages again.
	a.Enable()
	mon.Advance(at(3)) // clean → ok
	mon.Record(lock.Event{Kind: "victim", At: at(3), WaitDie: true, Resource: "r", Mode: lock.X})
	mon.Advance(at(4))
	if !a.Engaged() {
		t.Fatal("re-enabled policy did not engage")
	}
}
