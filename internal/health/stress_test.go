package health

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/resilience"
	"colock/internal/store"
	"colock/internal/txn"
)

// TestStormSLOTransitionsWithAutoAdmission is the PR's acceptance pin: the
// PR 6 hot-key write storm (wait-die, seeded chaos injector, RunWithRetry)
// with the health monitor attached drives the SLO state machine
// ok → warn → critical, the auto-admission policy installs the degraded
// gate on critical, and draining the storm recovers to ok and removes it.
//
// Determinism does not come from fixing the storm's schedule — it comes
// from the monitor's manual clock: each storm phase runs until the LIVE
// window provably satisfies (or cannot satisfy) the breach predicate, and
// only then is the window closed with Advance. The seeded chaos injector
// adds deterministic extra churn on top of the real wait-die deaths.
func TestStormSLOTransitionsWithAutoAdmission(t *testing.T) {
	start := time.Now()
	const win = time.Hour // manual clock: real time never crosses a boundary

	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{Policy: lock.PolicyWaitDie})
	p := core.NewProtocol(mgr, st, nm, core.Options{})
	tm := txn.NewManager(p, st)

	mon := NewMonitor(Options{
		Window: win, Retain: 16, TopK: 8, Start: start,
		// The abort-rate denominator counts every grant, intention locks
		// included (~6 per committed transaction here), so per-grant abort
		// rates run well below per-transaction intuition: 0.01 ≈ one death
		// per ~16 commits.
		SLO:         SLO{MaxAbortRate: 0.01, WarnAfter: 1, CritAfter: 2, RecoverAfter: 2},
		WaiterDepth: mgr.WaitingTxns,
	})
	mgr.AttachSink(mon)
	p.OnFastPathHit(mon.RecordFastPathHit)

	var tmu sync.Mutex
	var transitions []Transition
	mon.OnTransition(func(tr Transition) {
		tmu.Lock()
		transitions = append(transitions, tr)
		tmu.Unlock()
	})
	degraded := lock.AdmissionConfig{MaxWaiters: 2, MaxDelay: time.Millisecond, Mode: lock.AdmitDegrade}
	auto := mon.EnableAutoAdmission(mgr, degraded)

	chaos := resilience.NewChaos(resilience.ChaosConfig{
		Seed: 42, VictimRate: 0.10, TimeoutRate: 0.05, DelayRate: 0.05,
		Delay: 100 * time.Microsecond,
	})
	mgr.SetInjector(chaos)
	defer mgr.SetInjector(nil)

	// One short path per transaction keeps the grant-count dilution of the
	// per-grant abort rate low and stable: adding a second (read) path
	// halves the steady-state rate and parks it right at the poll
	// threshold on slow machines.
	hot := store.P("cells", "c1", "robots", "r1", "trajectory")

	aborts := func(ws WindowStats) uint64 {
		return ws.Counts[RateVictims] + ws.Counts[RateWaitDie] + ws.Counts[RateTimeouts]
	}

	// stormPhase hammers the hot key with every worker until the live
	// window's abort rate is provably past the threshold (with margin for
	// in-flight stragglers), then drains the workers.
	stormPhase := func(label string) {
		var stop, failed bool
		var mu sync.Mutex
		stopped := func() bool { mu.Lock(); defer mu.Unlock(); return stop }
		var wg sync.WaitGroup
		workers := 8
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stopped() {
					err := tm.RunWithRetry(context.Background(), func(tx *txn.Txn) error {
						if err := tx.LockPath(nil, hot, lock.X); err != nil {
							return err
						}
						runtime.Gosched()
						return nil
					},
						txn.WithMaxAttempts(0),
						txn.WithBackoff(resilience.CappedExponential{
							Base: 20 * time.Microsecond, Cap: 500 * time.Microsecond,
						}),
						txn.WithRetryObserver(mon))
					if err != nil {
						mu.Lock()
						failed = true
						mu.Unlock()
						return
					}
				}
			}()
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			// 3× the SLO threshold leaves margin for the handful of
			// straggler grants the draining workers still deliver.
			cur := mon.Current()
			if a := aborts(cur); a >= 500 && cur.AbortRate() >= 0.03 {
				break
			}
			if time.Now().After(deadline) {
				mu.Lock()
				stop = true
				mu.Unlock()
				wg.Wait()
				t.Fatalf("%s: storm never breached: current window %+v", label, mon.Current())
			}
			time.Sleep(time.Millisecond)
		}
		mu.Lock()
		stop = true
		mu.Unlock()
		wg.Wait()
		if failed {
			t.Fatalf("%s: a RunWithRetry worker gave up (unbounded retries must converge)", label)
		}
	}

	// Phase 1: one breaching window → warn.
	stormPhase("phase 1")
	if got := mon.Advance(start.Add(1 * win)); got != StateWarn {
		t.Fatalf("after phase 1: state %v, want warn (window: %+v)", got, mon.Windows(1))
	}
	if auto.Engaged() {
		t.Fatal("auto-admission engaged on warn")
	}

	// Phase 2: a second consecutive breaching window → critical; the
	// policy installs the degraded gate.
	stormPhase("phase 2")
	if got := mon.Advance(start.Add(2 * win)); got != StateCritical {
		t.Fatalf("after phase 2: state %v, want critical", got)
	}
	if !auto.Engaged() {
		t.Fatal("auto-admission did not engage on critical")
	}
	if cfg, ok := mgr.AdmissionConfigured(); !ok || cfg.Mode != lock.AdmitDegrade || cfg.MaxWaiters != degraded.MaxWaiters {
		t.Fatalf("gate while critical = %+v ok=%v, want the degraded config", cfg, ok)
	}

	// Quiesce: two empty windows → ok; the gate is rolled back.
	if got := mon.Advance(start.Add(3 * win)); got != StateCritical {
		t.Fatalf("one clean window eased critical to %v (hysteresis broken)", got)
	}
	if got := mon.Advance(start.Add(4 * win)); got != StateOK {
		t.Fatalf("after quiesce: state %v, want ok", got)
	}
	if auto.Engaged() {
		t.Fatal("auto-admission still engaged after recovery")
	}
	if _, ok := mgr.AdmissionConfigured(); ok {
		t.Fatal("degraded gate not removed after recovery")
	}

	// The exact burn-and-recover sequence, in order.
	tmu.Lock()
	defer tmu.Unlock()
	if len(transitions) != 3 {
		t.Fatalf("got %d transitions, want 3: %+v", len(transitions), transitions)
	}
	wantSeq := []struct{ from, to State }{
		{StateOK, StateWarn}, {StateWarn, StateCritical}, {StateCritical, StateOK},
	}
	for i, w := range wantSeq {
		if transitions[i].From != w.from || transitions[i].To != w.to {
			t.Fatalf("transition %d = %v→%v, want %v→%v", i, transitions[i].From, transitions[i].To, w.from, w.to)
		}
	}

	// The storm's hot key leads the contention sketch, X-mode keyed.
	top := mon.TopK(3)
	if len(top) == 0 {
		t.Fatal("empty top-K after a storm")
	}
	if !strings.Contains(string(top[0].Resource), "trajectory") || top[0].Mode != "X" {
		t.Fatalf("top contended key = %s/%s, want the trajectory leaf in X", top[0].Resource, top[0].Mode)
	}

	// Both breaching windows carry real windowed series data: aborts,
	// grants, and retry counts.
	wins := mon.Windows(0)
	if len(wins) != 4 {
		t.Fatalf("retained %d windows, want 4", len(wins))
	}
	for _, e := range []int{0, 1} {
		ws := wins[e]
		if aborts(ws) < 500 || ws.Counts[RateAcquires] == 0 || ws.Counts[RateRetries] == 0 {
			t.Fatalf("storm window %d too empty: %+v", e, ws)
		}
	}
}
