package health

import (
	"testing"

	"colock/internal/lock"
)

func touchN(s *Sketch, r lock.Resource, m lock.Mode, n int) {
	for i := 0; i < n; i++ {
		s.Touch(r, m)
	}
}

func TestSketchExactWhileUnderCapacity(t *testing.T) {
	s := NewSketch(4)
	touchN(s, "a", lock.X, 5)
	touchN(s, "b", lock.S, 3)
	touchN(s, "a", lock.S, 1)

	top := s.TopK(0)
	if len(top) != 3 {
		t.Fatalf("tracked %d keys, want 3", len(top))
	}
	if top[0].Resource != "a" || top[0].Mode != "X" || top[0].Count != 5 || top[0].MaxErr != 0 {
		t.Fatalf("top[0] = %+v, want a/X count=5 err=0", top[0])
	}
	if top[1].Resource != "b" || top[1].Count != 3 {
		t.Fatalf("top[1] = %+v, want b/S count=3", top[1])
	}
}

func TestSketchEvictionInheritsMinWithErrorBound(t *testing.T) {
	s := NewSketch(2)
	touchN(s, "hot", lock.X, 10)
	touchN(s, "warm", lock.X, 3)
	s.Touch("new", lock.X) // at capacity: evicts warm (min=3)

	top := s.TopK(0)
	if len(top) != 2 {
		t.Fatalf("tracked %d keys, want 2", len(top))
	}
	if top[0].Resource != "hot" || top[0].Count != 10 {
		t.Fatalf("top[0] = %+v, want hot count=10", top[0])
	}
	// The newcomer inherited min+1 = 4 with error bound 3: its true count
	// (1) satisfies Count-MaxErr ≤ true ≤ Count.
	if top[1].Resource != "new" || top[1].Count != 4 || top[1].MaxErr != 3 {
		t.Fatalf("top[1] = %+v, want new count=4 err=3", top[1])
	}
	if lo := top[1].Count - top[1].MaxErr; lo > 1 {
		t.Fatalf("lower bound %d exceeds true count 1", lo)
	}
}

func TestSketchNeverUndercounts(t *testing.T) {
	// Overflow a tiny sketch with a skewed stream; every surviving key's
	// estimate must be ≥ its true frequency, and the heaviest key must
	// still rank first.
	s := NewSketch(3)
	true_ := map[lock.Resource]uint64{}
	stream := []lock.Resource{"a", "b", "a", "c", "a", "d", "a", "e", "b", "a", "f", "a"}
	for _, r := range stream {
		s.Touch(r, lock.X)
		true_[r]++
	}
	top := s.TopK(0)
	if top[0].Resource != "a" {
		t.Fatalf("heaviest key = %q, want a (top: %+v)", top[0].Resource, top)
	}
	for _, e := range top {
		if e.Count < true_[e.Resource] {
			t.Fatalf("%q undercounted: estimate %d < true %d", e.Resource, e.Count, true_[e.Resource])
		}
	}
}

func TestSketchDecayHalvesAndDrops(t *testing.T) {
	s := NewSketch(4)
	touchN(s, "hot", lock.X, 8)
	touchN(s, "cool", lock.X, 1)
	s.Decay()
	top := s.TopK(0)
	if len(top) != 1 || top[0].Resource != "hot" || top[0].Count != 4 {
		t.Fatalf("after decay: %+v, want only hot count=4 (cool dropped)", top)
	}
	s.Decay()
	s.Decay()
	if got := s.TopK(0)[0].Count; got != 1 {
		t.Fatalf("hot after 3 decays = %d, want 1", got)
	}
	s.Decay()
	if s.Len() != 0 {
		t.Fatalf("sketch should be empty after final decay, has %d keys", s.Len())
	}
}

func TestSketchModeSeparatesKeys(t *testing.T) {
	s := NewSketch(4)
	touchN(s, "ep", lock.X, 2)
	touchN(s, "ep", lock.S, 5)
	top := s.TopK(0)
	if len(top) != 2 {
		t.Fatalf("tracked %d keys, want 2 (same resource, two modes)", len(top))
	}
	if top[0].Mode != "S" || top[0].Count != 5 || top[1].Mode != "X" || top[1].Count != 2 {
		t.Fatalf("unexpected ranking: %+v", top)
	}
}

func TestSketchTopKTruncatesAndReset(t *testing.T) {
	s := NewSketch(8)
	for _, r := range []lock.Resource{"a", "b", "c", "d"} {
		s.Touch(r, lock.X)
	}
	if got := len(s.TopK(2)); got != 2 {
		t.Fatalf("TopK(2) returned %d entries", got)
	}
	s.Reset()
	if s.Len() != 0 || len(s.TopK(0)) != 0 {
		t.Fatalf("reset sketch not empty")
	}
}
