package health

import (
	"fmt"
	"time"
)

// State is the SLO verdict.
type State int

const (
	// StateOK: recent windows are within every threshold.
	StateOK State = iota
	// StateWarn: thresholds have been breached for WarnAfter consecutive
	// windows but the burn has not yet reached CritAfter.
	StateWarn
	// StateCritical: CritAfter consecutive windows breached; if an
	// auto-admission policy is attached, the manager is degrading load.
	StateCritical
)

// String names the state as it appears in reports and metrics.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	case StateCritical:
		return "critical"
	}
	return "state?"
}

// SLO declares the health thresholds and the burn-rate pacing of the
// ok → warn → critical state machine. A threshold left at zero is not
// evaluated; an entirely zero SLO disables grading.
type SLO struct {
	// MaxAbortRate is the per-window aborted fraction (victims + wait-die
	// + timeouts over attempts) above which the window breaches.
	MaxAbortRate float64
	// MaxWaitP99 is the per-window p99 wait latency above which the
	// window breaches.
	MaxWaitP99 time.Duration
	// MaxWaiterDepth is the blocked-transaction count (sampled at
	// Advance) above which the window breaches.
	MaxWaiterDepth int

	// WarnAfter consecutive breaching windows move ok → warn (default 1).
	WarnAfter int
	// CritAfter consecutive breaching windows move to critical
	// (default 3).
	CritAfter int
	// RecoverAfter consecutive clean windows move any state back to ok
	// (default 2). There is no critical → warn easing: hysteresis means a
	// critical verdict stands until the system is demonstrably clean.
	RecoverAfter int
}

func (c SLO) withDefaults() SLO {
	if c.WarnAfter <= 0 {
		c.WarnAfter = 1
	}
	if c.CritAfter <= 0 {
		c.CritAfter = 3
	}
	if c.CritAfter < c.WarnAfter {
		c.CritAfter = c.WarnAfter
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 2
	}
	return c
}

// enabled reports whether any threshold is set.
func (c SLO) enabled() bool {
	return c.MaxAbortRate > 0 || c.MaxWaitP99 > 0 || c.MaxWaiterDepth > 0
}

// breach grades one closed window (depth is the waiter count sampled at the
// same Advance) and explains the first violated threshold.
func (c SLO) breach(ws WindowStats, depth int) (bool, string) {
	if !c.enabled() {
		return false, ""
	}
	if c.MaxAbortRate > 0 {
		if ar := ws.AbortRate(); ar > c.MaxAbortRate {
			return true, fmt.Sprintf("abort rate %.3f > %.3f", ar, c.MaxAbortRate)
		}
	}
	if c.MaxWaitP99 > 0 && ws.WaitP99 > c.MaxWaitP99 {
		return true, fmt.Sprintf("wait p99 %s > %s", ws.WaitP99, c.MaxWaitP99)
	}
	if c.MaxWaiterDepth > 0 && depth > c.MaxWaiterDepth {
		return true, fmt.Sprintf("waiter depth %d > %d", depth, c.MaxWaiterDepth)
	}
	return false, ""
}

// Transition is one SLO state change, delivered to OnTransition listeners.
type Transition struct {
	// From and To are the states around the change.
	From, To State
	// Reason explains the threshold that burned (empty on recovery).
	Reason string
	// Window is the closed window whose grading caused the change.
	Window WindowStats
	// WaiterDepth is the blocked-transaction count sampled at the
	// triggering Advance.
	WaiterDepth int
}

// sloMachine is the burn-rate state machine: a breaching window extends the
// breach streak (warn at WarnAfter, critical at CritAfter), a clean window
// extends the clean streak (back to ok at RecoverAfter). Either kind of
// window zeroes the opposite streak, which is the hysteresis: one clean
// window inside a burn neither recovers nor resets progress toward
// critical more than it must, and a critical verdict never eases to warn —
// it holds until RecoverAfter consecutive clean windows.
type sloMachine struct {
	cfg          SLO
	state        State
	breachStreak int
	cleanStreak  int
	lastReason   string
}

func (sm *sloMachine) reset() {
	sm.state = StateOK
	sm.breachStreak, sm.cleanStreak = 0, 0
	sm.lastReason = ""
}

// observe grades one closed window and reports a transition if the state
// changed.
func (sm *sloMachine) observe(ws WindowStats, depth int) (Transition, bool) {
	burned, reason := sm.cfg.breach(ws, depth)
	old := sm.state
	if burned {
		sm.breachStreak++
		sm.cleanStreak = 0
		sm.lastReason = reason
		switch {
		case sm.breachStreak >= sm.cfg.CritAfter:
			sm.state = StateCritical
		case sm.breachStreak >= sm.cfg.WarnAfter && sm.state == StateOK:
			sm.state = StateWarn
		}
	} else {
		sm.cleanStreak++
		sm.breachStreak = 0
		if sm.cleanStreak >= sm.cfg.RecoverAfter {
			sm.state = StateOK
			sm.lastReason = ""
		}
	}
	if sm.state == old {
		return Transition{}, false
	}
	return Transition{From: old, To: sm.state, Reason: reason, Window: ws}, true
}
