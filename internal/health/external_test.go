package health

import (
	"encoding/json"
	"flag"
	"os"
	"strings"
	"testing"
)

// healthFile gates TestExternalHealthFile: the Makefile healthmon-smoke
// target runs a scripted colockshell session that storms a hot key and
// dumps /health's document with `.health dump`, then invokes this test to
// validate the dump.
var healthFile = flag.String("healthfile", "", "path to a .health JSON dump to validate")

func TestExternalHealthFile(t *testing.T) {
	if *healthFile == "" {
		t.Skip("no -healthfile flag; this test validates healthmon-smoke output")
	}
	data, err := os.ReadFile(*healthFile)
	if err != nil {
		t.Fatalf("read %s: %v", *healthFile, err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("health dump does not parse: %v", err)
	}
	switch rep.State {
	case "ok", "warn", "critical":
	default:
		t.Fatalf("verdict state %q is not ok/warn/critical", rep.State)
	}
	if rep.WindowMs <= 0 {
		t.Fatalf("window_ms = %v, want > 0", rep.WindowMs)
	}
	for r := Rate(0); r < nRates; r++ {
		if _, ok := rep.Current.Counts[r.String()]; !ok {
			t.Fatalf("current window missing rate %q", r)
		}
	}
	if len(rep.TopK) == 0 {
		t.Fatal("top-K empty after the scripted storm")
	}
	// The smoke session's storm X-locks cells/c1; the sketch must have
	// caught it.
	found := false
	for _, e := range rep.TopK {
		if strings.Contains(e.Resource, "cells/c1") && e.Count > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("hot key cells/c1 not in top-K: %+v", rep.TopK)
	}
}
