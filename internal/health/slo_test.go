package health

import (
	"strings"
	"testing"
	"time"
)

func breachingWindow() WindowStats {
	// 5 grants, 5 wait-die deaths → abort rate 0.5.
	ws := WindowStats{}
	ws.Counts[RateAcquires] = 5
	ws.Counts[RateWaitDie] = 5
	return ws
}

func cleanWindow() WindowStats {
	ws := WindowStats{}
	ws.Counts[RateAcquires] = 10
	return ws
}

func TestSLODefaults(t *testing.T) {
	c := SLO{MaxAbortRate: 0.1}.withDefaults()
	if c.WarnAfter != 1 || c.CritAfter != 3 || c.RecoverAfter != 2 {
		t.Fatalf("defaults = %+v, want WarnAfter=1 CritAfter=3 RecoverAfter=2", c)
	}
	// CritAfter never below WarnAfter.
	c = SLO{MaxAbortRate: 0.1, WarnAfter: 5, CritAfter: 2}.withDefaults()
	if c.CritAfter != 5 {
		t.Fatalf("CritAfter = %d, want clamped to WarnAfter=5", c.CritAfter)
	}
}

func TestSLOBreachReasons(t *testing.T) {
	c := SLO{MaxAbortRate: 0.25, MaxWaitP99: 10 * time.Millisecond, MaxWaiterDepth: 4}
	if ok, why := c.breach(breachingWindow(), 0); !ok || !strings.Contains(why, "abort rate") {
		t.Fatalf("abort-rate breach = %v %q", ok, why)
	}
	slow := cleanWindow()
	slow.WaitP99 = 50 * time.Millisecond
	if ok, why := c.breach(slow, 0); !ok || !strings.Contains(why, "wait p99") {
		t.Fatalf("p99 breach = %v %q", ok, why)
	}
	if ok, why := c.breach(cleanWindow(), 9); !ok || !strings.Contains(why, "waiter depth") {
		t.Fatalf("depth breach = %v %q", ok, why)
	}
	if ok, _ := c.breach(cleanWindow(), 0); ok {
		t.Fatal("clean window graded as breach")
	}
}

func TestSLOZeroThresholdsDisabled(t *testing.T) {
	sm := sloMachine{cfg: SLO{}.withDefaults()}
	for i := 0; i < 10; i++ {
		if _, changed := sm.observe(breachingWindow(), 100); changed {
			t.Fatal("disabled SLO produced a transition")
		}
	}
	if sm.state != StateOK {
		t.Fatalf("disabled SLO state = %v, want ok", sm.state)
	}
}

func TestSLOStateMachineBurnAndRecover(t *testing.T) {
	sm := sloMachine{cfg: SLO{MaxAbortRate: 0.25, WarnAfter: 1, CritAfter: 3, RecoverAfter: 2}}

	// First breaching window: ok → warn.
	tr, changed := sm.observe(breachingWindow(), 0)
	if !changed || tr.From != StateOK || tr.To != StateWarn {
		t.Fatalf("window 1: changed=%v %v→%v, want ok→warn", changed, tr.From, tr.To)
	}
	// Second: still warn, no transition.
	if _, changed := sm.observe(breachingWindow(), 0); changed {
		t.Fatal("window 2: unexpected transition")
	}
	// Third consecutive breach: warn → critical.
	tr, changed = sm.observe(breachingWindow(), 0)
	if !changed || tr.From != StateWarn || tr.To != StateCritical {
		t.Fatalf("window 3: changed=%v %v→%v, want warn→critical", changed, tr.From, tr.To)
	}
	// One clean window: hysteresis holds critical.
	if _, changed := sm.observe(cleanWindow(), 0); changed {
		t.Fatal("window 4: critical eased after a single clean window")
	}
	// Second consecutive clean window: critical → ok (never via warn).
	tr, changed = sm.observe(cleanWindow(), 0)
	if !changed || tr.From != StateCritical || tr.To != StateOK {
		t.Fatalf("window 5: changed=%v %v→%v, want critical→ok", changed, tr.From, tr.To)
	}
	if sm.lastReason != "" {
		t.Fatalf("reason not cleared on recovery: %q", sm.lastReason)
	}
}

func TestSLOCleanWindowResetsBurnProgress(t *testing.T) {
	sm := sloMachine{cfg: SLO{MaxAbortRate: 0.25, WarnAfter: 1, CritAfter: 2, RecoverAfter: 3}}
	sm.observe(breachingWindow(), 0) // warn, streak 1
	sm.observe(cleanWindow(), 0)     // clean streak 1 < RecoverAfter: stays warn
	if sm.state != StateWarn {
		t.Fatalf("state = %v, want warn held by hysteresis", sm.state)
	}
	// The clean window reset the breach streak: the next breach is streak
	// 1 again, not 2, so critical is NOT reached.
	sm.observe(breachingWindow(), 0)
	if sm.state != StateWarn {
		t.Fatalf("state = %v, want warn (burn progress was reset)", sm.state)
	}
	sm.observe(breachingWindow(), 0)
	if sm.state != StateCritical {
		t.Fatalf("state = %v, want critical after 2 consecutive breaches", sm.state)
	}
}

func TestStateStrings(t *testing.T) {
	if StateOK.String() != "ok" || StateWarn.String() != "warn" || StateCritical.String() != "critical" {
		t.Fatalf("state names: %v %v %v", StateOK, StateWarn, StateCritical)
	}
	for r := Rate(0); r < nRates; r++ {
		if r.String() == "rate?" {
			t.Fatalf("rate %d unnamed", r)
		}
	}
}
