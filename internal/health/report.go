package health

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// WindowView is the JSON shape of one window.
type WindowView struct {
	Epoch     int64             `json:"epoch"`
	Start     time.Time         `json:"start"`
	Counts    map[string]uint64 `json:"counts"`
	AbortRate float64           `json:"abort_rate"`
	WaitCount uint64            `json:"wait_count"`
	WaitP50Ms float64           `json:"wait_p50_ms"`
	WaitP95Ms float64           `json:"wait_p95_ms"`
	WaitP99Ms float64           `json:"wait_p99_ms"`
	WaitMaxMs float64           `json:"wait_max_ms"`
}

func viewOf(ws WindowStats) WindowView {
	v := WindowView{
		Epoch:     ws.Epoch,
		Start:     ws.Start,
		Counts:    make(map[string]uint64, int(nRates)),
		AbortRate: ws.AbortRate(),
		WaitCount: ws.WaitCount,
		WaitP50Ms: ms(ws.WaitP50),
		WaitP95Ms: ms(ws.WaitP95),
		WaitP99Ms: ms(ws.WaitP99),
		WaitMaxMs: ms(ws.WaitMax),
	}
	for r := Rate(0); r < nRates; r++ {
		v.Counts[r.String()] = ws.Counts[r]
	}
	return v
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// TopKView is the JSON shape of one hot-resource row.
type TopKView struct {
	Resource string `json:"resource"`
	Mode     string `json:"mode"`
	Count    uint64 `json:"count"`
	MaxErr   uint64 `json:"max_err"`
}

// SLOView is the JSON shape of the configured thresholds.
type SLOView struct {
	MaxAbortRate   float64 `json:"max_abort_rate"`
	MaxWaitP99Ms   float64 `json:"max_wait_p99_ms"`
	MaxWaiterDepth int     `json:"max_waiter_depth"`
	WarnAfter      int     `json:"warn_after"`
	CritAfter      int     `json:"crit_after"`
	RecoverAfter   int     `json:"recover_after"`
}

// GrantPathView is the JSON shape of the manager's grant-path counters:
// how often the O(1) summaries answered the grant decision, and how much
// deadlock-walk work the deferral window elided.
type GrantPathView struct {
	SummaryFastChecks  uint64 `json:"summary_fast_checks"`
	DeferredDetections uint64 `json:"deferred_detections"`
	DetectorRuns       uint64 `json:"detector_runs"`
	// WalksElided = DeferredDetections − DetectorRuns: blocked requests
	// whose wait resolved inside the deferral window, costing no graph walk.
	WalksElided uint64 `json:"walks_elided"`
}

// Report is the full health verdict served on /health and printed by the
// colockshell .health command: state + streaks, the retained window series
// (oldest first), the still-open window, and the top-K hot resources.
type Report struct {
	State        string         `json:"state"`
	Reason       string         `json:"reason,omitempty"`
	BreachStreak int            `json:"breach_streak"`
	CleanStreak  int            `json:"clean_streak"`
	WaiterDepth  int            `json:"waiter_depth"`
	Epoch        int64          `json:"epoch"`
	WindowMs     float64        `json:"window_ms"`
	SLO          SLOView        `json:"slo"`
	GrantPath    *GrantPathView `json:"grant_path,omitempty"`
	Windows      []WindowView   `json:"windows"`
	Current      WindowView     `json:"current"`
	TopK         []TopKView     `json:"topk"`
}

// Report assembles the verdict with up to n retained windows and top-K rows
// (n <= 0 means all retained windows and 10 rows). It does not advance the
// clock; call Advance first if the report should grade up to now.
func (m *Monitor) Report(n int) Report {
	topn := n
	if topn <= 0 {
		topn = 10
	}
	m.mu.Lock()
	rep := Report{
		State:        m.slo.state.String(),
		Reason:       m.slo.lastReason,
		BreachStreak: m.slo.breachStreak,
		CleanStreak:  m.slo.cleanStreak,
		WaiterDepth:  m.lastDepth,
		Epoch:        m.cur.Load(),
		WindowMs:     ms(m.winDur),
		SLO: SLOView{
			MaxAbortRate:   m.slo.cfg.MaxAbortRate,
			MaxWaitP99Ms:   ms(m.slo.cfg.MaxWaitP99),
			MaxWaiterDepth: m.slo.cfg.MaxWaiterDepth,
			WarnAfter:      m.slo.cfg.WarnAfter,
			CritAfter:      m.slo.cfg.CritAfter,
			RecoverAfter:   m.slo.cfg.RecoverAfter,
		},
	}
	wins := append([]WindowStats(nil), m.closed...)
	m.mu.Unlock()
	if m.grantPath != nil {
		st := m.grantPath()
		gp := &GrantPathView{
			SummaryFastChecks:  st.SummaryFastChecks,
			DeferredDetections: st.DeferredDetections,
			DetectorRuns:       st.DetectorRuns,
		}
		if st.DeferredDetections > st.DetectorRuns {
			gp.WalksElided = st.DeferredDetections - st.DetectorRuns
		}
		rep.GrantPath = gp
	}
	if n > 0 && len(wins) > n {
		wins = wins[len(wins)-n:]
	}
	rep.Windows = make([]WindowView, 0, len(wins))
	for _, ws := range wins {
		rep.Windows = append(rep.Windows, viewOf(ws))
	}
	rep.Current = viewOf(m.Current())
	for _, e := range m.TopK(topn) {
		rep.TopK = append(rep.TopK, TopKView{
			Resource: string(e.Resource), Mode: e.Mode, Count: e.Count, MaxErr: e.MaxErr,
		})
	}
	return rep
}

// WriteJSON writes the Report (all retained windows) as indented JSON.
func (m *Monitor) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Report(0))
}

// Handler returns the /health endpoint: each request advances the window
// clock to now (polling IS the clock — see Advance) and serves the full
// Report as JSON.
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.Advance(time.Now())
		w.Header().Set("Content-Type", "application/json")
		if err := m.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// WriteMetrics appends the health gauges in Prometheus text format; wire it
// into obs.Handler's extra writers next to the collector and manager
// metrics. Gauges cover the verdict, the streaks, the last CLOSED window's
// rates (stable between polls, unlike the partial current window), and the
// top-10 hot resources.
func (m *Monitor) WriteMetrics(w io.Writer) {
	m.mu.Lock()
	state := m.slo.state
	breach, clean := m.slo.breachStreak, m.slo.cleanStreak
	depth := m.lastDepth
	var last WindowStats
	haveLast := len(m.closed) > 0
	if haveLast {
		last = m.closed[len(m.closed)-1]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP colock_health_state Current SLO verdict (0=ok, 1=warn, 2=critical).\n")
	fmt.Fprintf(w, "# TYPE colock_health_state gauge\n")
	fmt.Fprintf(w, "colock_health_state %d\n", int(state))
	fmt.Fprintf(w, "# HELP colock_health_breach_streak Consecutive SLO-breaching windows.\n")
	fmt.Fprintf(w, "# TYPE colock_health_breach_streak gauge\n")
	fmt.Fprintf(w, "colock_health_breach_streak %d\n", breach)
	fmt.Fprintf(w, "# HELP colock_health_clean_streak Consecutive clean windows.\n")
	fmt.Fprintf(w, "# TYPE colock_health_clean_streak gauge\n")
	fmt.Fprintf(w, "colock_health_clean_streak %d\n", clean)
	fmt.Fprintf(w, "# HELP colock_health_waiter_depth Blocked transactions at the last window close.\n")
	fmt.Fprintf(w, "# TYPE colock_health_waiter_depth gauge\n")
	fmt.Fprintf(w, "colock_health_waiter_depth %d\n", depth)

	fmt.Fprintf(w, "# HELP colock_health_window_events Event counts of the last closed health window.\n")
	fmt.Fprintf(w, "# TYPE colock_health_window_events gauge\n")
	for r := Rate(0); r < nRates; r++ {
		var c uint64
		if haveLast {
			c = last.Counts[r]
		}
		fmt.Fprintf(w, "colock_health_window_events{rate=%q} %d\n", r.String(), c)
	}
	fmt.Fprintf(w, "# HELP colock_health_window_abort_rate Aborted fraction of the last closed window.\n")
	fmt.Fprintf(w, "# TYPE colock_health_window_abort_rate gauge\n")
	fmt.Fprintf(w, "colock_health_window_abort_rate %g\n", last.AbortRate())
	fmt.Fprintf(w, "# HELP colock_health_window_wait_p99_seconds p99 wait latency of the last closed window.\n")
	fmt.Fprintf(w, "# TYPE colock_health_window_wait_p99_seconds gauge\n")
	fmt.Fprintf(w, "colock_health_window_wait_p99_seconds %g\n", last.WaitP99.Seconds())

	fmt.Fprintf(w, "# HELP colock_health_hot_count Decayed contention count of the top-10 hot resources.\n")
	fmt.Fprintf(w, "# TYPE colock_health_hot_count gauge\n")
	for _, e := range m.TopK(10) {
		fmt.Fprintf(w, "colock_health_hot_count{resource=\"%s\",mode=\"%s\"} %d\n",
			labelEscape(string(e.Resource)), e.Mode, e.Count)
	}
}

// labelEscape keeps resource names inside Prometheus label-value grammar.
func labelEscape(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer("\\", "\\\\", "\"", "\\\"", "\n", "\\n")
	return r.Replace(s)
}
