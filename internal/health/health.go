// Package health is the lock manager's self-observation layer: a windowed
// time-series of lock-event rates, a top-K hot-resource sketch, and an SLO
// engine that grades each closed window against declarative thresholds and
// runs an ok → warn → critical state machine with hysteresis.
//
// Where package obs answers "how slow are locks on average, ever" and
// package trace answers "what did this transaction go through", this package
// answers "is the lock manager healthy RIGHT NOW, and trending which way" —
// the SLA response-time/abort-rate view of OLTP health under contention. The
// verdict can optionally drive the manager's admission gate (auto-degrade on
// critical, auto-recover on ok), closing the loop the paper's protocol
// leaves open: the lock manager reacting to its own measured contention.
//
// Clock discipline: nothing here calls time.Now on the event path. The
// Monitor is a lock.EventSink fed by the manager's (sampled) tracer, and
// every event already carries the timestamp the tracer stamped; windows are
// rotated only by an explicit Advance(now) from an observation point — the
// /health HTTP handler, the colockshell .health command, a test. Between
// Advance calls, recording costs a few atomic adds.
package health

import (
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/lock"
	"colock/internal/obs"
)

// Rate indexes the per-window event-rate counters.
type Rate int

const (
	// RateAcquires counts granted requests (grants + conversions,
	// fast-path and queued alike).
	RateAcquires Rate = iota
	// RateFastPath counts protocol grant-cache hits (requests served
	// without a lock-manager round-trip; see RecordFastPathHit).
	RateFastPath
	// RateBlocks counts requests that queued (wait events).
	RateBlocks
	// RateVictims counts detected deadlock victims.
	RateVictims
	// RateWaitDie counts wait-die prevention deaths.
	RateWaitDie
	// RateTimeouts counts requests withdrawn by acquire deadlines.
	RateTimeouts
	// RateSheds counts acquires refused by degrade-mode admission control.
	RateSheds
	// RateRetries counts transaction restarts observed via the retry
	// layer (see the Retry method / resilience.Observer).
	RateRetries

	nRates
)

var rateNames = [nRates]string{
	"acquires", "fast_path_hits", "blocks", "victims", "wait_die",
	"timeouts", "sheds", "retries",
}

// String names the rate as it appears in reports and metrics.
func (r Rate) String() string {
	if r >= 0 && int(r) < len(rateNames) {
		return rateNames[r]
	}
	return "rate?"
}

// liveSlots is the ring of live accumulation windows. Events are routed by
// their own timestamp, so a slightly stale Advance never mis-attributes
// traffic — as long as Advance runs at least once per liveSlots−1 windows.
const liveSlots = 4

// window is one live accumulation bucket: lock-free counters plus a wait
// histogram (reusing the obs HDR layout, so windowed quantiles cost one
// fixed-size array).
type window struct {
	counts [nRates]atomic.Uint64
	wait   obs.Histogram
}

func (w *window) reset() {
	for i := range w.counts {
		w.counts[i].Store(0)
	}
	w.wait.Reset()
}

// WindowStats is one closed window of the time series.
type WindowStats struct {
	// Epoch is the window's ordinal since the monitor's start.
	Epoch int64
	// Start is the window's nominal start time.
	Start time.Time
	// Counts holds the per-Rate event counts of the window.
	Counts [nRates]uint64
	// Wait-latency distribution of the window (blocked acquisitions and
	// withdrawn requests).
	WaitCount                          uint64
	WaitP50, WaitP95, WaitP99, WaitMax time.Duration
}

// AbortRate is the window's aborted fraction: deaths (victims + wait-die +
// timeouts) over attempts (grants + deaths). Zero when the window saw no
// traffic.
func (ws WindowStats) AbortRate() float64 {
	aborts := ws.Counts[RateVictims] + ws.Counts[RateWaitDie] + ws.Counts[RateTimeouts]
	attempts := ws.Counts[RateAcquires] + aborts
	if attempts == 0 {
		return 0
	}
	return float64(aborts) / float64(attempts)
}

// Options configures a Monitor.
type Options struct {
	// Window is the time-series bucket width (default 1s).
	Window time.Duration
	// Retain is how many closed windows the series keeps (default 60).
	Retain int
	// TopK is the hot-resource sketch capacity (default 32 tracked keys).
	TopK int
	// SLO sets the health thresholds and state-machine pacing. A zero
	// value disables grading: the state stays ok.
	SLO SLO
	// WaiterDepth, when set, is sampled once per Advance and graded
	// against SLO.MaxWaiterDepth; wire it to lock.Manager.WaitingTxns.
	WaiterDepth func() int
	// GrantPath, when set, is sampled at report time to expose the
	// manager's grant-path counters (summary fast checks, deferred
	// detections, detector runs) in the health report; wire it to
	// lock.Manager.Stats.
	GrantPath func() lock.Stats
	// Start anchors the window clock (default time.Now at construction —
	// construction is not a hot path).
	Start time.Time
}

// Monitor is the health monitor. It implements lock.EventSink (attach with
// Manager.AttachSink), the shape of resilience.Observer (wire with
// txn.WithRetryObserver), and ResetStats for the manager's reset cascade.
// All methods are safe for concurrent use.
type Monitor struct {
	winDur      time.Duration
	retain      int
	start       time.Time
	waiterDepth func() int
	grantPath   func() lock.Stats

	cur   atomic.Int64
	slots [liveSlots]window

	sketch *Sketch

	mu        sync.Mutex
	closed    []WindowStats // newest last, capped at retain
	slo       sloMachine
	lastDepth int

	listeners atomic.Pointer[[]func(Transition)]
}

// NewMonitor builds a monitor.
func NewMonitor(opts Options) *Monitor {
	if opts.Window <= 0 {
		opts.Window = time.Second
	}
	if opts.Retain <= 0 {
		opts.Retain = 60
	}
	if opts.TopK <= 0 {
		opts.TopK = 32
	}
	if opts.Start.IsZero() {
		opts.Start = time.Now()
	}
	return &Monitor{
		winDur:      opts.Window,
		retain:      opts.Retain,
		start:       opts.Start,
		waiterDepth: opts.WaiterDepth,
		grantPath:   opts.GrantPath,
		sketch:      NewSketch(opts.TopK),
		slo:         sloMachine{cfg: opts.SLO.withDefaults()},
	}
}

// WindowDur returns the configured bucket width.
func (m *Monitor) WindowDur() time.Duration { return m.winDur }

// epochOf maps a timestamp to its window ordinal, clamped into the live
// slot range around the current epoch so late or early deliveries never
// touch a slot another epoch owns.
func (m *Monitor) epochOf(at time.Time) int64 {
	cur := m.cur.Load()
	if at.IsZero() {
		return cur
	}
	e := int64(at.Sub(m.start) / m.winDur)
	if e < cur {
		return cur
	}
	if e > cur+liveSlots-1 {
		return cur + liveSlots - 1
	}
	return e
}

func (m *Monitor) slotAt(at time.Time) *window {
	return &m.slots[uint64(m.epochOf(at))%liveSlots]
}

// Record consumes one lock event (the lock.EventSink implementation). It
// runs on the operation's goroutine outside all manager latches, uses the
// event's own timestamp to pick a window, and never reads the clock.
func (m *Monitor) Record(e lock.Event) {
	w := m.slotAt(e.At)
	switch e.Kind {
	case "grant", "convert":
		w.counts[RateAcquires].Add(1)
		if e.Waited && e.Dur > 0 {
			w.wait.Record(e.Dur)
		}
	case "wait":
		w.counts[RateBlocks].Add(1)
		m.sketch.Touch(e.Resource, e.Mode)
	case "victim":
		if e.WaitDie {
			w.counts[RateWaitDie].Add(1)
		} else {
			w.counts[RateVictims].Add(1)
		}
		if e.Dur > 0 {
			w.wait.Record(e.Dur)
		}
		m.sketch.Touch(e.Resource, e.Mode)
	case "timeout":
		w.counts[RateTimeouts].Add(1)
		if e.Dur > 0 {
			w.wait.Record(e.Dur)
		}
		m.sketch.Touch(e.Resource, e.Mode)
	case "shed":
		w.counts[RateSheds].Add(1)
		m.sketch.Touch(e.Resource, e.Mode)
	}
}

// RecordFastPathHit counts one protocol grant-cache hit in the current
// window; wire it to core.Protocol.OnFastPathHit. Cache hits never reach
// the lock manager, so they carry no timestamp — they land in the window
// that is open right now.
func (m *Monitor) RecordFastPathHit() {
	m.slots[uint64(m.cur.Load())%liveSlots].counts[RateFastPath].Add(1)
}

// Retry records one transaction restart (the resilience.Observer shape —
// health stays dependency-free of the resilience package); wire the monitor
// with txn.WithRetryObserver, tee-ing with the RetryCollector if both are
// wanted.
func (m *Monitor) Retry(cause string, attempt int) {
	m.slots[uint64(m.cur.Load())%liveSlots].counts[RateRetries].Add(1)
}

// Done completes the resilience.Observer shape; final outcomes are already
// visible through the acquire/abort rates, so it records nothing.
func (m *Monitor) Done(attempts int, err error) {}

// OnTransition registers fn to run on every SLO state change, after the
// Advance that produced it has released the monitor's mutex — fn may call
// back into the monitor or the lock manager (the auto-admission policy
// does).
func (m *Monitor) OnTransition(fn func(Transition)) {
	if fn == nil {
		return
	}
	for {
		old := m.listeners.Load()
		var fns []func(Transition)
		if old != nil {
			fns = append(fns, *old...)
		}
		fns = append(fns, fn)
		if m.listeners.CompareAndSwap(old, &fns) {
			return
		}
	}
}

// Advance rotates the window clock to now: every window that ended before
// now is closed, graded against the SLO, appended to the retained series,
// and the hot-key sketch decays once per closed window (capped at liveSlots
// decays per call, so one late poll can't erase the sketch). Listeners
// observe any state transitions. Advance is the ONLY place windows rotate; drive it
// from observation points (HTTP polls, shell commands, test clocks), at
// least once per few windows for exact attribution. Returns the state after
// grading.
func (m *Monitor) Advance(now time.Time) State {
	target := int64(now.Sub(m.start) / m.winDur)
	if target < 0 {
		target = 0
	}
	var fired []Transition
	m.mu.Lock()
	cur := m.cur.Load()
	if target <= cur {
		st := m.slo.state
		m.mu.Unlock()
		return st
	}
	depth := 0
	if m.waiterDepth != nil {
		depth = m.waiterDepth()
	}
	m.lastDepth = depth

	closedN := int64(0)
	if gap := target - cur; gap > liveSlots {
		// Gap longer than the live ring (a poller that started late, or a
		// long idle stretch): windows in the middle are unobservable —
		// grade a bounded run of empty (healthy) windows for them — and
		// the live slots' accumulated partials close as the final
		// liveSlots windows before target. Their counts survive; only
		// their exact window attribution is approximate after such a gap.
		empties := gap - liveSlots
		if max := int64(m.retain); empties > max {
			empties = max
		}
		for e := target - liveSlots - empties; e < target-liveSlots; e++ {
			ws := WindowStats{Epoch: e, Start: m.start.Add(time.Duration(e) * m.winDur)}
			fired = m.closeWindow(ws, depth, fired)
		}
		for e := target - liveSlots; e < target; e++ {
			fired = m.closeSlot(e, depth, fired)
		}
		closedN = empties + liveSlots
	} else {
		for e := cur; e < target; e++ {
			fired = m.closeSlot(e, depth, fired)
		}
		closedN = gap
	}
	m.cur.Store(target)
	m.mu.Unlock()

	// One sketch decay per closed window, capped so a single late poll
	// cannot halve a hot key into oblivion.
	for i := int64(0); i < closedN && i < liveSlots; i++ {
		m.sketch.Decay()
	}

	if len(fired) > 0 {
		if p := m.listeners.Load(); p != nil {
			for _, t := range fired {
				for _, fn := range *p {
					fn(t)
				}
			}
		}
	}
	m.mu.Lock()
	st := m.slo.state
	m.mu.Unlock()
	return st
}

// closeSlot snapshots the live slot owning epoch e into a WindowStats,
// resets the slot for reuse, and closes the window. Caller holds m.mu.
func (m *Monitor) closeSlot(e int64, depth int, fired []Transition) []Transition {
	w := &m.slots[uint64(e)%liveSlots]
	ws := WindowStats{Epoch: e, Start: m.start.Add(time.Duration(e) * m.winDur)}
	for i := range ws.Counts {
		ws.Counts[i] = w.counts[i].Load()
	}
	snap := w.wait.Snapshot()
	ws.WaitCount = snap.Count
	ws.WaitP50 = snap.Quantile(0.50)
	ws.WaitP95 = snap.Quantile(0.95)
	ws.WaitP99 = snap.Quantile(0.99)
	ws.WaitMax = snap.Max
	w.reset() // the slot now belongs to epoch e+liveSlots
	return m.closeWindow(ws, depth, fired)
}

// closeWindow appends ws to the retained series, grades it, and collects
// any transition. Caller holds m.mu.
func (m *Monitor) closeWindow(ws WindowStats, depth int, fired []Transition) []Transition {
	m.closed = append(m.closed, ws)
	if over := len(m.closed) - m.retain; over > 0 {
		m.closed = append(m.closed[:0], m.closed[over:]...)
	}
	if t, ok := m.slo.observe(ws, depth); ok {
		t.WaiterDepth = depth
		fired = append(fired, t)
	}
	return fired
}

// State returns the current SLO verdict.
func (m *Monitor) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.slo.state
}

// Streaks returns the state machine's consecutive breaching and clean
// window counts — the burn-rate view of how entrenched the current state is.
func (m *Monitor) Streaks() (breach, clean int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.slo.breachStreak, m.slo.cleanStreak
}

// Windows returns up to n of the most recent closed windows, oldest first
// (n <= 0 returns all retained).
func (m *Monitor) Windows(n int) []WindowStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]WindowStats(nil), m.closed...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Current snapshots the still-open window (partial, not yet graded).
func (m *Monitor) Current() WindowStats {
	cur := m.cur.Load()
	w := &m.slots[uint64(cur)%liveSlots]
	ws := WindowStats{Epoch: cur, Start: m.start.Add(time.Duration(cur) * m.winDur)}
	for i := range ws.Counts {
		ws.Counts[i] = w.counts[i].Load()
	}
	snap := w.wait.Snapshot()
	ws.WaitCount = snap.Count
	ws.WaitP50 = snap.Quantile(0.50)
	ws.WaitP95 = snap.Quantile(0.95)
	ws.WaitP99 = snap.Quantile(0.99)
	ws.WaitMax = snap.Max
	return ws
}

// TopK returns the sketch's n hottest resource+mode keys (see Sketch.TopK).
func (m *Monitor) TopK(n int) []TopEntry { return m.sketch.TopK(n) }

// ResetStats zeroes the windows, the retained series, the sketch and the
// SLO state machine (back to ok). Named for the lock manager's ResetStats
// cascade: a monitor attached as a sink resets with everything else. The
// window clock (start, current epoch) is deliberately untouched.
func (m *Monitor) ResetStats() {
	m.mu.Lock()
	for i := range m.slots {
		m.slots[i].reset()
	}
	m.closed = nil
	m.slo.reset()
	m.lastDepth = 0
	m.mu.Unlock()
	m.sketch.Reset()
}
