package health

import (
	"sync"

	"colock/internal/lock"
)

// AutoAdmission is the opt-in policy closing the loop between the SLO
// verdict and the manager's admission gate: on a transition to critical it
// installs a degraded AdmissionConfig (saving whatever gate was configured
// before), and on recovery to ok it restores the saved gate (or disables
// admission control if none was installed). Warn takes no action — it is
// the operator's early signal, not the policy's.
//
// Attach with Monitor.EnableAutoAdmission, or construct directly and
// register OnTransition yourself. Disable makes the policy inert and
// restores the pre-engagement gate if currently engaged.
type AutoAdmission struct {
	mgr      *lock.Manager
	degraded lock.AdmissionConfig

	mu         sync.Mutex
	enabled    bool
	engaged    bool
	saved      lock.AdmissionConfig
	hadSaved   bool
	engages    uint64
	recoveries uint64
}

// NewAutoAdmission builds the policy; degraded is the gate to install while
// critical (its MaxWaiters must be positive or engaging would disable
// admission instead of tightening it).
func NewAutoAdmission(mgr *lock.Manager, degraded lock.AdmissionConfig) *AutoAdmission {
	return &AutoAdmission{mgr: mgr, degraded: degraded, enabled: true}
}

// EnableAutoAdmission wires an AutoAdmission policy to the monitor's
// transitions and returns it (for Disable / stats).
func (m *Monitor) EnableAutoAdmission(mgr *lock.Manager, degraded lock.AdmissionConfig) *AutoAdmission {
	a := NewAutoAdmission(mgr, degraded)
	m.OnTransition(a.OnTransition)
	return a
}

// OnTransition reacts to one SLO state change; register it with
// Monitor.OnTransition.
func (a *AutoAdmission) OnTransition(t Transition) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.enabled {
		return
	}
	switch t.To {
	case StateCritical:
		a.engage()
	case StateOK:
		a.disengage()
	}
}

// engage installs the degraded gate once per burn. Caller holds a.mu.
func (a *AutoAdmission) engage() {
	if a.engaged {
		return
	}
	a.saved, a.hadSaved = a.mgr.AdmissionConfigured()
	a.mgr.ConfigureAdmission(a.degraded)
	a.engaged = true
	a.engages++
}

// disengage restores the pre-engagement gate. Caller holds a.mu.
func (a *AutoAdmission) disengage() {
	if !a.engaged {
		return
	}
	if a.hadSaved {
		a.mgr.ConfigureAdmission(a.saved)
	} else {
		a.mgr.ConfigureAdmission(lock.AdmissionConfig{})
	}
	a.engaged = false
	a.recoveries++
}

// Disable makes the policy inert; if the degraded gate is currently
// installed it is rolled back first.
func (a *AutoAdmission) Disable() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.disengage()
	a.enabled = false
}

// Enable re-arms a disabled policy (it engages again on the next
// transition to critical, not retroactively).
func (a *AutoAdmission) Enable() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.enabled = true
}

// Engaged reports whether the degraded gate is currently installed.
func (a *AutoAdmission) Engaged() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.engaged
}

// Stats reports how many times the policy degraded and recovered the gate.
func (a *AutoAdmission) Stats() (engages, recoveries uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.engages, a.recoveries
}
