package health

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"colock/internal/lock"
)

var base = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newTestMonitor(slo SLO) *Monitor {
	return NewMonitor(Options{Window: time.Second, Retain: 8, TopK: 8, SLO: slo, Start: base})
}

// at places a timestamp inside window epoch e.
func at(e int64) time.Time { return base.Add(time.Duration(e)*time.Second + 100*time.Millisecond) }

func TestRecordRoutesKindsToRates(t *testing.T) {
	m := newTestMonitor(SLO{})
	m.Record(lock.Event{Kind: "grant", At: at(0)})
	m.Record(lock.Event{Kind: "convert", At: at(0)})
	m.Record(lock.Event{Kind: "grant", At: at(0), Waited: true, Dur: 5 * time.Millisecond})
	m.Record(lock.Event{Kind: "wait", At: at(0), Resource: "r", Mode: lock.X})
	m.Record(lock.Event{Kind: "victim", At: at(0), Resource: "r", Mode: lock.X, Dur: time.Millisecond})
	m.Record(lock.Event{Kind: "victim", At: at(0), Resource: "r", Mode: lock.X, WaitDie: true})
	m.Record(lock.Event{Kind: "timeout", At: at(0), Resource: "r", Mode: lock.X, Dur: time.Millisecond})
	m.Record(lock.Event{Kind: "shed", At: at(0), Resource: "r", Mode: lock.X})
	m.Record(lock.Event{Kind: "release", At: at(0)}) // ignored
	m.RecordFastPathHit()
	m.Retry("victim", 1)

	m.Advance(at(1))
	wins := m.Windows(0)
	if len(wins) != 1 {
		t.Fatalf("closed %d windows, want 1", len(wins))
	}
	ws := wins[0]
	want := map[Rate]uint64{
		RateAcquires: 3, RateFastPath: 1, RateBlocks: 1, RateVictims: 1,
		RateWaitDie: 1, RateTimeouts: 1, RateSheds: 1, RateRetries: 1,
	}
	for r, n := range want {
		if ws.Counts[r] != n {
			t.Errorf("%v = %d, want %d", r, ws.Counts[r], n)
		}
	}
	// Three wait-latency observations: the waited grant, the detected
	// victim, the timeout.
	if ws.WaitCount != 3 {
		t.Fatalf("WaitCount = %d, want 3", ws.WaitCount)
	}
	if ws.WaitMax < time.Millisecond || ws.WaitP99 == 0 {
		t.Fatalf("wait quantiles not recorded: p99=%v max=%v", ws.WaitP99, ws.WaitMax)
	}
	// Four contention events fed the sketch under one key; the window
	// close decayed the count once (4 → 2).
	top := m.TopK(1)
	if len(top) != 1 || top[0].Resource != "r" || top[0].Count != 2 {
		t.Fatalf("topk = %+v, want r/X count=2 after decay", top)
	}
	// Abort rate: (1 victim + 1 wait-die + 1 timeout) / (3 grants + 3) = 0.5.
	if ar := ws.AbortRate(); ar != 0.5 {
		t.Fatalf("AbortRate = %v, want 0.5", ar)
	}
}

func TestEventTimestampPicksWindow(t *testing.T) {
	m := newTestMonitor(SLO{})
	m.Record(lock.Event{Kind: "grant", At: at(0)})
	m.Record(lock.Event{Kind: "grant", At: at(1)}) // next window, before any Advance
	m.Record(lock.Event{Kind: "grant", At: at(1)})
	m.Advance(at(2))
	wins := m.Windows(0)
	if len(wins) != 2 {
		t.Fatalf("closed %d windows, want 2", len(wins))
	}
	if wins[0].Counts[RateAcquires] != 1 || wins[1].Counts[RateAcquires] != 2 {
		t.Fatalf("window counts = %d,%d, want 1,2", wins[0].Counts[RateAcquires], wins[1].Counts[RateAcquires])
	}
	if wins[0].Epoch != 0 || wins[1].Epoch != 1 || !wins[1].Start.Equal(base.Add(time.Second)) {
		t.Fatalf("window identity wrong: %+v", wins)
	}
}

func TestLateAndFarFutureEventsClamp(t *testing.T) {
	m := newTestMonitor(SLO{})
	m.Advance(at(3))                                // epochs 0..2 closed
	m.Record(lock.Event{Kind: "grant", At: at(0)})  // late: clamps into current epoch 3
	m.Record(lock.Event{Kind: "grant", At: at(50)}) // far future: clamps into the live ring
	m.Record(lock.Event{Kind: "grant"})             // zero timestamp: current epoch
	m.Advance(at(4))
	wins := m.Windows(1)
	if got := wins[0].Counts[RateAcquires]; got != 2 {
		t.Fatalf("epoch 3 acquires = %d, want 2 (late + zero-timestamp)", got)
	}
	// The far-future event sits in the newest live slot, not lost.
	m.Advance(at(3 + liveSlots))
	total := uint64(0)
	for _, ws := range m.Windows(0) {
		total += ws.Counts[RateAcquires]
	}
	if total != 3 {
		t.Fatalf("total acquires across closed windows = %d, want 3", total)
	}
}

func TestAdvanceIsIdempotentAndMonotonic(t *testing.T) {
	m := newTestMonitor(SLO{})
	m.Record(lock.Event{Kind: "grant", At: at(0)})
	m.Advance(at(1))
	m.Advance(at(1)) // same instant: no new window
	m.Advance(at(0)) // going backwards: no-op
	if len(m.Windows(0)) != 1 {
		t.Fatalf("closed %d windows, want 1", len(m.Windows(0)))
	}
	if m.Current().Epoch != 1 {
		t.Fatalf("current epoch = %d, want 1", m.Current().Epoch)
	}
}

func TestRetainCapsSeries(t *testing.T) {
	m := NewMonitor(Options{Window: time.Second, Retain: 3, Start: base})
	for e := int64(0); e < 3; e++ {
		m.Record(lock.Event{Kind: "grant", At: at(e)})
		m.Advance(at(e + 1))
	}
	m.Advance(at(6)) // two more (empty) windows
	wins := m.Windows(0)
	if len(wins) != 3 {
		t.Fatalf("retained %d windows, want 3", len(wins))
	}
	if wins[0].Epoch != 3 || wins[2].Epoch != 5 {
		t.Fatalf("retained epochs %d..%d, want 3..5", wins[0].Epoch, wins[2].Epoch)
	}
}

func TestIdleJumpPreservesLiveDataAndEmitsEmpties(t *testing.T) {
	m := NewMonitor(Options{Window: time.Second, Retain: 10, Start: base,
		SLO: SLO{MaxAbortRate: 0.1, WarnAfter: 1, CritAfter: 2, RecoverAfter: 2}})
	// Burn to critical.
	for e := int64(0); e < 2; e++ {
		m.Record(lock.Event{Kind: "victim", At: at(e), WaitDie: true, Resource: "r", Mode: lock.X})
		m.Advance(at(e + 1))
	}
	if m.State() != StateCritical {
		t.Fatalf("state = %v, want critical", m.State())
	}
	// Record into the live window, then jump far past the live ring. The
	// unobservable middle windows grade as clean empties (recovering the
	// state), while the live partial's counts survive, reattributed to
	// one of the final liveSlots windows before the jump target.
	m.Record(lock.Event{Kind: "victim", At: at(2), WaitDie: true, Resource: "r", Mode: lock.X})
	m.Advance(at(100))
	wins := m.Windows(0)
	if len(wins) != 10 {
		t.Fatalf("retained %d windows after jump, want 10", len(wins))
	}
	var survived uint64
	for _, ws := range wins {
		survived += ws.Counts[RateWaitDie]
	}
	if survived != 1 {
		t.Fatalf("live partial's wait-die count = %d after jump, want 1 preserved", survived)
	}
	if m.Current().Epoch != 100 {
		t.Fatalf("current epoch = %d, want 100", m.Current().Epoch)
	}
	// The empties broke the burn; whether the reattributed single-victim
	// window re-warns depends on where it lands, so just require the
	// state to have left critical.
	if m.State() == StateCritical {
		t.Fatal("state still critical after an idle gap of clean windows")
	}
	// Two further clean windows recover fully.
	m.Advance(at(102))
	if m.State() != StateOK {
		t.Fatalf("state = %v, want ok", m.State())
	}
}

func TestMonitorResetStatsViaManagerCascade(t *testing.T) {
	mgr := lock.NewManager(lock.Options{})
	m := newTestMonitor(SLO{MaxAbortRate: 0.1})
	mgr.AttachSink(m)

	if err := mgr.AcquireCtx(context.Background(), 1, "db", lock.IS); err != nil {
		t.Fatal(err)
	}
	mgr.ReleaseAll(1)
	m.Record(lock.Event{Kind: "victim", At: at(0), WaitDie: true, Resource: "r", Mode: lock.X})
	m.Record(lock.Event{Kind: "victim", At: at(0), WaitDie: true, Resource: "r", Mode: lock.X})
	m.Advance(at(1))
	if len(m.Windows(0)) == 0 || m.State() != StateWarn || m.sketch.Len() == 0 {
		t.Fatalf("monitor did not accumulate state: windows=%d state=%v", len(m.Windows(0)), m.State())
	}

	mgr.ResetStats()

	if got := len(m.Windows(0)); got != 0 {
		t.Fatalf("windows after reset = %d, want 0", got)
	}
	if m.State() != StateOK {
		t.Fatalf("state after reset = %v, want ok", m.State())
	}
	if m.sketch.Len() != 0 {
		t.Fatalf("sketch after reset has %d keys", m.sketch.Len())
	}
	cur := m.Current()
	for r := Rate(0); r < nRates; r++ {
		if cur.Counts[r] != 0 {
			t.Fatalf("live %v after reset = %d, want 0", r, cur.Counts[r])
		}
	}
	// The clock survives the reset.
	if cur.Epoch != 1 {
		t.Fatalf("epoch after reset = %d, want 1", cur.Epoch)
	}
}

func TestWaiterDepthSampledAtAdvance(t *testing.T) {
	depth := 7
	m := NewMonitor(Options{Window: time.Second, Start: base,
		SLO:         SLO{MaxWaiterDepth: 3, WarnAfter: 1},
		WaiterDepth: func() int { return depth }})
	m.Advance(at(1))
	if m.State() != StateWarn {
		t.Fatalf("state = %v, want warn from waiter depth", m.State())
	}
	rep := m.Report(0)
	if rep.WaiterDepth != 7 {
		t.Fatalf("report depth = %d, want 7", rep.WaiterDepth)
	}
	depth = 0
	m.Advance(at(3))
	if m.State() != StateOK {
		t.Fatalf("state = %v, want ok after depth drained", m.State())
	}
}

func TestReportAndHandlerJSON(t *testing.T) {
	m := newTestMonitor(SLO{MaxAbortRate: 0.25})
	m.Record(lock.Event{Kind: "grant", At: at(0)})
	m.Record(lock.Event{Kind: "wait", At: at(0), Resource: "cells/c1", Mode: lock.X})
	m.Record(lock.Event{Kind: "wait", At: at(0), Resource: "cells/c1", Mode: lock.X})
	m.Advance(at(1))
	m.Record(lock.Event{Kind: "grant", At: at(1)})

	rep := m.Report(0)
	if rep.State != "ok" || len(rep.Windows) != 1 || rep.Epoch != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Windows[0].Counts["acquires"] != 1 || rep.Current.Counts["acquires"] != 1 {
		t.Fatalf("report counts wrong: %+v", rep)
	}
	if len(rep.TopK) != 1 || rep.TopK[0].Resource != "cells/c1" {
		t.Fatalf("report topk = %+v", rep.TopK)
	}
	if rep.SLO.MaxAbortRate != 0.25 || rep.SLO.CritAfter != 3 {
		t.Fatalf("report slo = %+v", rep.SLO)
	}

	// The HTTP handler serves the same document (advancing to real now,
	// which is far past the synthetic base — an idle jump, still valid).
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got Report
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decode /health: %v", err)
	}
	if got.State == "" || got.WindowMs != 1000 {
		t.Fatalf("handler report = %+v", got)
	}
}

// TestReportGrantPathSection: when Options.GrantPath is wired, the report
// carries the manager's grant-path counters and the elided-walk difference;
// without it the section is omitted from the JSON entirely.
func TestReportGrantPathSection(t *testing.T) {
	src := func() lock.Stats {
		return lock.Stats{SummaryFastChecks: 40, DeferredDetections: 7, DetectorRuns: 2}
	}
	m := NewMonitor(Options{Window: time.Second, Start: base, GrantPath: src})
	rep := m.Report(0)
	gp := rep.GrantPath
	if gp == nil {
		t.Fatal("report missing grant_path section")
	}
	if gp.SummaryFastChecks != 40 || gp.DeferredDetections != 7 || gp.DetectorRuns != 2 || gp.WalksElided != 5 {
		t.Fatalf("grant path view = %+v", gp)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"walks_elided":5`) {
		t.Fatalf("grant_path not serialized: %s", raw)
	}

	bare := newTestMonitor(SLO{})
	raw, err = json.Marshal(bare.Report(0))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "grant_path") {
		t.Fatalf("unwired grant_path serialized: %s", raw)
	}
}

func TestWriteMetricsShape(t *testing.T) {
	m := newTestMonitor(SLO{MaxAbortRate: 0.25})
	m.Record(lock.Event{Kind: "wait", At: at(0), Resource: `odd"name`, Mode: lock.X})
	m.Record(lock.Event{Kind: "wait", At: at(0), Resource: `odd"name`, Mode: lock.X})
	m.Advance(at(1))
	var b strings.Builder
	m.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE colock_health_state gauge",
		"colock_health_state 0",
		`colock_health_window_events{rate="acquires"}`,
		"colock_health_window_abort_rate 0",
		`colock_health_hot_count{resource="odd\"name",mode="X"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestTransitionListenerReceivesWindow(t *testing.T) {
	m := newTestMonitor(SLO{MaxAbortRate: 0.1, WarnAfter: 1, CritAfter: 2, RecoverAfter: 1})
	var got []Transition
	m.OnTransition(func(t Transition) { got = append(got, t) })
	m.Record(lock.Event{Kind: "victim", At: at(0), WaitDie: true, Resource: "r", Mode: lock.X})
	m.Record(lock.Event{Kind: "victim", At: at(1), WaitDie: true, Resource: "r", Mode: lock.X})
	m.Advance(at(2)) // closes two breaching windows in one call: warn then critical
	m.Advance(at(3)) // clean: critical → ok
	if len(got) != 3 {
		t.Fatalf("got %d transitions, want 3: %+v", len(got), got)
	}
	if got[0].To != StateWarn || got[1].To != StateCritical || got[2].To != StateOK {
		t.Fatalf("transition sequence: %+v", got)
	}
	if got[1].Window.Epoch != 1 || got[1].Reason == "" {
		t.Fatalf("critical transition lacks window context: %+v", got[1])
	}
}
