package authz

import "testing"

func TestAllowDenyAll(t *testing.T) {
	if !(AllowAll{}).CanModify(1, "x") {
		t.Error("AllowAll denied")
	}
	if (DenyAll{}).CanModify(1, "x") {
		t.Error("DenyAll allowed")
	}
}

func TestTableDefaults(t *testing.T) {
	deny := NewTable(false)
	if deny.CanModify(1, "effectors") {
		t.Error("default-deny allowed")
	}
	allow := NewTable(true)
	if !allow.CanModify(1, "effectors") {
		t.Error("default-allow denied")
	}
}

func TestGrantRevoke(t *testing.T) {
	tab := NewTable(false)
	tab.Grant(7, "cells")
	if !tab.CanModify(7, "cells") {
		t.Error("grant ignored")
	}
	if tab.CanModify(7, "effectors") {
		t.Error("grant leaked to other relation")
	}
	if tab.CanModify(8, "cells") {
		t.Error("grant leaked to other txn")
	}
	tab.Revoke(7, "cells")
	if tab.CanModify(7, "cells") {
		t.Error("revoke ignored")
	}

	// Revoke overrides an allow default.
	tab2 := NewTable(true)
	tab2.Revoke(3, "effectors")
	if tab2.CanModify(3, "effectors") {
		t.Error("revoke did not override default")
	}
	if !tab2.CanModify(3, "cells") {
		t.Error("default lost")
	}
}

func TestForget(t *testing.T) {
	tab := NewTable(false)
	tab.Grant(7, "cells")
	tab.Forget(7)
	if tab.CanModify(7, "cells") {
		t.Error("Forget did not drop grants")
	}
}

func TestZeroValueTable(t *testing.T) {
	var tab Table
	if tab.CanModify(1, "x") {
		t.Error("zero table should deny")
	}
	tab.Grant(1, "x") // must not panic
	if !tab.CanModify(1, "x") {
		t.Error("grant on zero table ignored")
	}
}
