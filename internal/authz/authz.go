// Package authz implements the authorization component the paper's rule 4′
// cooperates with (§3.2.3, §4.4.2): it administrates, per transaction, the
// right to modify the data of a relation. The lock protocol consults it to
// decide whether a dependent inner unit is a "modifiable unit" of the
// transaction — if not, an X request on a referencing node only S-locks the
// unit's entry point, raising concurrency on shared read-mostly libraries.
package authz

import (
	"sync"

	"colock/internal/lock"
)

// Authorizer answers modify-right questions for the lock protocol.
type Authorizer interface {
	// CanModify reports whether the transaction has the right to modify
	// data of the given relation.
	CanModify(txn lock.TxnID, relation string) bool
}

// AllowAll grants every right to every transaction. Using it with rule 4′
// degenerates to the plain rule 4 of §4.4.2.1.
type AllowAll struct{}

// CanModify implements Authorizer.
func (AllowAll) CanModify(lock.TxnID, string) bool { return true }

// DenyAll denies every modify right (pure readers).
type DenyAll struct{}

// CanModify implements Authorizer.
func (DenyAll) CanModify(lock.TxnID, string) bool { return false }

// Table is a concrete authorization table with a default and per-transaction
// grants. The zero value denies by default; use NewTable to set a default.
type Table struct {
	mu            sync.RWMutex
	defaultModify bool
	grants        map[lock.TxnID]map[string]bool // txn → relation → allowed
}

// NewTable returns a table whose unlisted (txn, relation) pairs resolve to
// defaultModify.
func NewTable(defaultModify bool) *Table {
	return &Table{defaultModify: defaultModify, grants: make(map[lock.TxnID]map[string]bool)}
}

// Grant gives txn the right to modify relation.
func (t *Table) Grant(txn lock.TxnID, relation string) { t.set(txn, relation, true) }

// Revoke removes txn's right to modify relation (overriding the default).
func (t *Table) Revoke(txn lock.TxnID, relation string) { t.set(txn, relation, false) }

func (t *Table) set(txn lock.TxnID, relation string, allowed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.grants == nil {
		t.grants = make(map[lock.TxnID]map[string]bool)
	}
	m := t.grants[txn]
	if m == nil {
		m = make(map[string]bool)
		t.grants[txn] = m
	}
	m[relation] = allowed
}

// Forget drops all entries of a finished transaction.
func (t *Table) Forget(txn lock.TxnID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.grants, txn)
}

// CanModify implements Authorizer.
func (t *Table) CanModify(txn lock.TxnID, relation string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if m, ok := t.grants[txn]; ok {
		if v, ok := m[relation]; ok {
			return v
		}
	}
	return t.defaultModify
}
