package txn

import (
	"context"
	"errors"
	"testing"
	"time"

	"colock/internal/lock"
	"colock/internal/store"
)

// TestLockCtxCancelWithdraws checks that a canceled context withdraws the
// blocked protocol waiter and surfaces an error satisfying
// errors.Is(err, context.Canceled), after which the transaction can Abort
// cleanly (no leaked lock-table entries).
func TestLockCtxCancelWithdraws(t *testing.T) {
	m := newManager(t)
	p := store.P("cells", "c1", "robots", "r1", "trajectory")

	writer := m.Begin()
	if err := writer.UpdateAtomic(p, store.Str("held")); err != nil {
		t.Fatal(err)
	}

	reader := m.Begin()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- reader.LockPath(ctx, p, lock.S) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var le *lock.LockError
	if !errors.As(err, &le) {
		t.Fatalf("error is not a *lock.LockError: %v", err)
	}
	reader.Abort()
	writer.Abort()
	if got := m.Protocol().Manager().LockCount(); got != 0 {
		t.Errorf("locks leaked after aborts: %d", got)
	}
}

// TestLockCtxDeadline checks deadline expiry on the protocol path.
func TestLockCtxDeadline(t *testing.T) {
	m := newManager(t)
	p := store.P("cells", "c1", "robots", "r1")

	writer := m.Begin()
	if err := writer.LockPath(nil, p, lock.X); err != nil {
		t.Fatal(err)
	}
	reader := m.Begin()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := reader.LockPath(ctx, p, lock.X)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	reader.Abort()
	writer.Abort()
	if got := m.Protocol().Manager().LockCount(); got != 0 {
		t.Errorf("locks leaked: %d", got)
	}
}
