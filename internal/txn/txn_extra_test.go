package txn

import (
	"context"
	"strings"
	"testing"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
)

func TestLockPathNoFollowSkipsLibrary(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	defer tx.Abort()
	if err := tx.LockPath(nil, store.P("cells", "c1", "robots", "r1"), lock.X, WithNoFollow()); err != nil {
		t.Fatal(err)
	}
	for _, h := range m.Protocol().Manager().HeldLocks(tx.ID()) {
		if strings.Contains(string(h.Resource), "effectors") {
			t.Errorf("NOFOLLOW locked %s", h.Resource)
		}
	}
	// On a finished transaction it refuses.
	tx.Abort()
	if err := tx.LockPath(nil, store.P("cells", "c1"), lock.S, WithNoFollow()); err == nil {
		t.Error("NOFOLLOW on finished txn accepted")
	}
}

func TestTxnDeEscalateAndUnlock(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	obj := store.P("cells", "c1")
	if err := tx.LockPath(nil, obj, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := tx.DeEscalate(core.DataNode(obj), []store.Path{
		store.P("cells", "c1", "c_objects"),
	}); err != nil {
		t.Fatal(err)
	}
	mode := m.Protocol().Manager().HeldMode(tx.ID(), "db1/seg1/cells/c1")
	if mode != lock.IX {
		t.Errorf("after de-escalation object holds %v", mode)
	}
	if err := tx.Unlock(core.DataNode(store.P("cells", "c1", "c_objects"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Finished transactions refuse both.
	if err := tx.DeEscalate(core.DataNode(obj), nil); err == nil {
		t.Error("DeEscalate on finished txn accepted")
	}
	if err := tx.Unlock(core.DataNode(obj)); err == nil {
		t.Error("Unlock on finished txn accepted")
	}
}

func TestAddRemoveElemAt(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	coll := store.P("cells", "c1", "robots", "r1", "effectors")

	// Without coverage both refuse.
	if err := tx.AddElemAt(coll, "e3", store.Ref{Relation: "effectors", Key: "e3"}); err == nil {
		t.Error("uncovered AddElemAt accepted")
	}
	if err := tx.RemoveElemAt(coll, "e1"); err == nil {
		t.Error("uncovered RemoveElemAt accepted")
	}

	if err := tx.LockPath(nil, coll, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := tx.AddElemAt(coll, "e3", store.Ref{Relation: "effectors", Key: "e3"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.RemoveElemAt(coll, "e1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.RemoveElemAt(coll, "absent"); err != nil {
		t.Fatal(err) // removing an absent element is a no-op
	}
	// Errors from the store propagate (duplicate add).
	if err := tx.AddElemAt(coll, "e3", store.Ref{Relation: "effectors", Key: "e3"}); err == nil {
		t.Error("duplicate AddElemAt accepted")
	}
	tx.Abort()
	// Undo restored the original collection.
	ids, err := m.Store().CollectionIDs(coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "e1" || ids[1] != "e2" {
		t.Errorf("after abort: %v", ids)
	}
}

func TestMutationsOnFinishedTxn(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	coll := store.P("cells", "c1", "robots", "r1", "effectors")
	if err := tx.AddElem(coll, "x", store.Ref{Relation: "effectors", Key: "e1"}); err == nil {
		t.Error("AddElem on finished txn accepted")
	}
	if err := tx.RemoveElem(coll, "e1"); err == nil {
		t.Error("RemoveElem on finished txn accepted")
	}
	if err := tx.Insert("effectors", "zz", store.NewTuple()); err == nil {
		t.Error("Insert on finished txn accepted")
	}
	if err := tx.Delete("effectors", "e1"); err == nil {
		t.Error("Delete on finished txn accepted")
	}
	if err := tx.Lock(nil, core.DataNode(store.P("cells", "c1")), lock.S); err == nil {
		t.Error("Lock on finished txn accepted")
	}
	if _, err := tx.ReadAt(store.P("cells", "c1")); err == nil {
		t.Error("ReadAt on finished txn accepted")
	}
	if err := tx.UpdateAtomicAt(store.P("effectors", "e1", "tool"), store.Str("x")); err == nil {
		t.Error("UpdateAtomicAt on finished txn accepted")
	}
}

func TestInsertDeleteStoreErrorsPropagate(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	defer tx.Abort()
	// Insert of a non-conforming object fails after the lock was taken.
	if err := tx.Insert("effectors", "e9", store.NewTuple()); err == nil {
		t.Error("invalid insert accepted")
	}
	// Duplicate insert fails.
	dup := store.NewTuple().Set("eff_id", store.Str("e1")).Set("tool", store.Str("t"))
	if err := tx.Insert("effectors", "e1", dup); err == nil {
		t.Error("duplicate insert accepted")
	}
	// Delete of an absent object is a no-op.
	if err := tx.Delete("effectors", "zz"); err != nil {
		t.Fatal(err)
	}
	// Bad paths propagate.
	if err := tx.UpdateAtomic(store.P("cells", "c1", "nope"), store.Str("x")); err == nil {
		t.Error("bad update path accepted")
	}
	if err := tx.AddElem(store.P("cells", "c1", "cell_id"), "x", store.Str("v")); err == nil {
		t.Error("AddElem on atomic accepted")
	}
	if _, err := tx.Read(store.P("cells", "zz", "cell_id")); err == nil {
		t.Error("read of absent object accepted")
	}
}

func TestRunWithRetryDefaultAttempts(t *testing.T) {
	m := newManager(t)
	calls := 0
	err := m.RunWithRetry(context.Background(), func(tx *Txn) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Errorf("err=%v calls=%d", err, calls)
	}
}
