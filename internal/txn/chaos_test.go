package txn

import (
	"context"
	"sync"
	"testing"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/obs"
	"colock/internal/resilience"
	"colock/internal/store"
)

// TestChaosStormConverges is the -race storm: a fixed-seed fault injector
// forces synthetic deadlock victims, spurious timeouts and delayed grants
// on a wait-die manager while concurrent workers hammer one hot key, every
// transaction running through RunWithRetry with unbounded attempts. The kit
// must converge to 100% eventual commit — zero failures — and leak no
// locks.
func TestChaosStormConverges(t *testing.T) {
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{Policy: lock.PolicyWaitDie})
	chaos := resilience.NewChaos(resilience.ChaosConfig{
		Seed:        7,
		VictimRate:  0.15,
		TimeoutRate: 0.05,
		DelayRate:   0.05,
		Delay:       100 * time.Microsecond,
	})
	mgr.SetInjector(chaos)
	proto := core.NewProtocol(mgr, st, nm, core.Options{})
	m := NewManager(proto, st)

	const workers, txns = 8, 20
	rc := obs.NewRetryCollector()
	hot := store.P("cells", "c1", "robots", "r1", "trajectory")
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				err := m.RunWithRetry(context.Background(), func(tx *Txn) error {
					return tx.LockPath(nil, hot, lock.X)
				},
					WithMaxAttempts(0),
					WithBackoff(resilience.CappedExponential{
						Base: 20 * time.Microsecond, Cap: time.Millisecond,
					}),
					WithRetryObserver(rc))
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := rc.Attempts()
	if snap.Commits != workers*txns {
		t.Errorf("commits = %d, want %d", snap.Commits, workers*txns)
	}
	if snap.GiveUps != 0 {
		t.Errorf("give-ups = %d, want 0", snap.GiveUps)
	}
	cs := chaos.Stats()
	if cs.Victims+cs.Timeouts == 0 {
		t.Error("chaos injected no faults — the storm tested nothing")
	}
	if got := mgr.Stats().InjectedFaults; got == 0 {
		t.Error("manager counted no injected faults")
	}
	if got := mgr.LockCount(); got != 0 {
		t.Errorf("locks leaked after the storm: %d", got)
	}
}
