package txn

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"colock/internal/store"
)

func TestAccessKindString(t *testing.T) {
	if AccessR.String() != "r" || AccessW.String() != "w" {
		t.Error("kind strings")
	}
}

func TestPathsConflict(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"cells/c1", "cells/c1", true},
		{"cells/c1", "cells/c1/robots", true},
		{"cells/c1/robots", "cells/c1", true},
		{"cells/c1", "cells/c2", false},
		{"cells/c1", "cells/c10", false}, // prefix of string but not of path
		{"cells/c1/robots/r1", "cells/c1/robots/r2", false},
		{"cells", "effectors", false},
	}
	for _, c := range cases {
		if got := pathsConflict(c.a, c.b); got != c.want {
			t.Errorf("pathsConflict(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestHistorySerialRunIsSerializable: two sequential committed transactions
// touching the same data produce an acyclic precedence graph.
func TestHistorySerialRunIsSerializable(t *testing.T) {
	m := newManager(t)
	h := NewHistory()
	m.EnableHistory(h)

	p := store.P("effectors", "e1", "tool")
	t1 := m.Begin()
	if err := t1.UpdateAtomic(p, store.Str("a")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	if _, err := t2.Read(p); err != nil {
		t.Fatal(err)
	}
	if err := t2.UpdateAtomic(p, store.Str("b")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := h.CheckConflictSerializable(); err != nil {
		t.Fatal(err)
	}
	if h.CommittedCount() != 2 {
		t.Errorf("committed = %d", h.CommittedCount())
	}
	if len(h.Accesses()) == 0 {
		t.Error("no accesses recorded")
	}
}

// TestHistoryDropsAborted: aborted transactions impose no constraints.
func TestHistoryDropsAborted(t *testing.T) {
	m := newManager(t)
	h := NewHistory()
	m.EnableHistory(h)

	tx := m.Begin()
	if err := tx.UpdateAtomic(store.P("effectors", "e1", "tool"), store.Str("x")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	for _, a := range h.Accesses() {
		if a.Txn == tx.ID() {
			t.Error("aborted access kept")
		}
	}
}

// TestHistoryDetectsInjectedAnomaly: a hand-built non-serializable history
// (a classic write skew made into a cycle: T1 reads then writes after T2's
// conflicting write, and vice versa) is flagged.
func TestHistoryDetectsInjectedAnomaly(t *testing.T) {
	h := NewHistory()
	// T1: r(x) … w(y); T2: r(y) … w(x); interleaved so that
	// T1 r(x) < T2 w(x)  → T1→T2, and T2 r(y) < T1 w(y) → T2→T1.
	h.record(1, AccessR, store.P("x"))
	h.record(2, AccessR, store.P("y"))
	h.record(2, AccessW, store.P("x"))
	h.record(1, AccessW, store.P("y"))
	h.commit(1)
	h.commit(2)
	err := h.CheckConflictSerializable()
	if err == nil {
		t.Fatal("cyclic history accepted")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error does not name the cycle: %v", err)
	}
}

// TestHistoryIgnoresUncommitted: accesses of still-active transactions are
// not part of the check.
func TestHistoryIgnoresUncommitted(t *testing.T) {
	h := NewHistory()
	h.record(1, AccessW, store.P("x"))
	h.record(2, AccessW, store.P("x"))
	h.record(1, AccessW, store.P("y"))
	h.record(2, AccessW, store.P("y"))
	// Neither committed: vacuously serializable.
	if err := h.CheckConflictSerializable(); err != nil {
		t.Fatal(err)
	}
	h.commit(1)
	if err := h.CheckConflictSerializable(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWorkloadIsConflictSerializable is the end-to-end oracle:
// random concurrent read/write transactions under the full protocol stack
// must always produce a conflict-serializable history.
func TestConcurrentWorkloadIsConflictSerializable(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		m := newManager(t)
		h := NewHistory()
		m.EnableHistory(h)

		paths := []store.Path{
			store.P("effectors", "e1", "tool"),
			store.P("effectors", "e2", "tool"),
			store.P("effectors", "e3", "tool"),
			store.P("cells", "c1", "robots", "r1", "trajectory"),
			store.P("cells", "c1", "robots", "r2", "trajectory"),
			store.P("cells", "c1", "c_objects", "o1", "obj_name"),
		}
		var wg sync.WaitGroup
		errs := make(chan error, 6)
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*100 + int64(w)))
				for i := 0; i < 8; i++ {
					err := m.RunWithRetry(context.Background(), func(tx *Txn) error {
						for op := 0; op < 3; op++ {
							p := paths[rng.Intn(len(paths))]
							if rng.Intn(2) == 0 {
								if _, err := tx.Read(p); err != nil {
									return err
								}
							} else {
								if err := tx.UpdateAtomic(p, store.Str(fmt.Sprintf("w%d-%d", w, i))); err != nil {
									return err
								}
							}
						}
						return nil
					}, WithMaxAttempts(50))
					if err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if err := h.CheckConflictSerializable(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if h.CommittedCount() == 0 {
			t.Fatal("nothing committed")
		}
	}
}

// TestHistoryHierarchicalConflicts: a coarse read of a whole object
// conflicts with a fine write inside it — the prefix rule.
func TestHistoryHierarchicalConflicts(t *testing.T) {
	m := newManager(t)
	h := NewHistory()
	m.EnableHistory(h)

	t1 := m.Begin()
	if _, err := t1.Read(store.P("cells", "c1")); err != nil { // coarse read
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := m.Begin()
	if err := t2.UpdateAtomic(store.P("cells", "c1", "robots", "r1", "trajectory"), store.Str("x")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckConflictSerializable(); err != nil {
		t.Fatal(err)
	}
	// The precedence edge T1→T2 exists (read before conflicting write);
	// verify via the recorded accesses that the conflict is seen at all.
	var sawConflict bool
	acc := h.Accesses()
	for i := 0; i < len(acc); i++ {
		for j := i + 1; j < len(acc); j++ {
			if acc[i].Txn != acc[j].Txn && pathsConflict(acc[i].Path, acc[j].Path) {
				sawConflict = true
			}
		}
	}
	if !sawConflict {
		t.Error("hierarchical conflict not visible in history")
	}
}
