package txn

import (
	"testing"

	"colock/internal/store"
)

func TestSavepointPartialRollback(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	p1 := store.P("effectors", "e1", "tool")
	p2 := store.P("effectors", "e2", "tool")

	if err := tx.UpdateAtomic(p1, store.Str("keep")); err != nil {
		t.Fatal(err)
	}
	sp := tx.Savepoint()
	if err := tx.UpdateAtomic(p2, store.Str("discard")); err != nil {
		t.Fatal(err)
	}
	coll := store.P("cells", "c1", "robots", "r1", "effectors")
	if err := tx.AddElem(coll, "e3", store.Ref{Relation: "effectors", Key: "e3"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}

	// Post-savepoint changes are gone, pre-savepoint ones stay.
	v2, _ := m.Store().Lookup(p2)
	if v2 != store.Str("t2") {
		t.Errorf("e2 tool = %v, want t2", v2)
	}
	ids, _ := m.Store().CollectionIDs(coll)
	if len(ids) != 2 {
		t.Errorf("collection = %v", ids)
	}
	v1, _ := m.Store().Lookup(p1)
	if v1 != store.Str("keep") {
		t.Errorf("e1 tool = %v, want keep", v1)
	}

	// Work continues after partial rollback; full abort still undoes the
	// pre-savepoint change.
	if err := tx.UpdateAtomic(p2, store.Str("second-try")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	v1, _ = m.Store().Lookup(p1)
	v2, _ = m.Store().Lookup(p2)
	if v1 != store.Str("t1") || v2 != store.Str("t2") {
		t.Errorf("after abort: %v, %v", v1, v2)
	}
}

func TestSavepointNested(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	p := store.P("effectors", "e1", "tool")

	sp1 := tx.Savepoint()
	if err := tx.UpdateAtomic(p, store.Str("v1")); err != nil {
		t.Fatal(err)
	}
	sp2 := tx.Savepoint()
	if err := tx.UpdateAtomic(p, store.Str("v2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp2); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Store().Lookup(p)
	if v != store.Str("v1") {
		t.Errorf("after inner rollback = %v", v)
	}
	if err := tx.RollbackTo(sp1); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Store().Lookup(p)
	if v != store.Str("t1") {
		t.Errorf("after outer rollback = %v", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSavepointErrors(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	sp := tx.Savepoint()
	if err := tx.RollbackTo(Savepoint(99)); err == nil {
		t.Error("future savepoint accepted")
	}
	if err := tx.RollbackTo(Savepoint(-1)); err == nil {
		t.Error("negative savepoint accepted")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp); err == nil {
		t.Error("rollback on finished txn accepted")
	}
}

// TestSavepointKeepsLocks: rolling back to a savepoint keeps the locks
// acquired after it (2PL discipline).
func TestSavepointKeepsLocks(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	sp := tx.Savepoint()
	p := store.P("effectors", "e1", "tool")
	if err := tx.UpdateAtomic(p, store.Str("x")); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	if len(m.Protocol().Manager().HeldLocks(tx.ID())) == 0 {
		t.Error("locks dropped by partial rollback")
	}
	tx.Abort()
}
