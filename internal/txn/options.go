package txn

import (
	"time"

	"colock/internal/resilience"
)

// Option customizes Txn.Lock / Txn.LockPath calls and Manager.RunWithRetry
// runs. The lock-call options (WithTimeout, WithNoFollow) and the retry
// options (WithMaxAttempts, WithBackoff, WithAttemptTimeout,
// WithRetryObserver) form ONE set, so a call site composes lock behavior
// and restart policy in a single variadic tail; options that don't apply to
// the receiving call are ignored.
type Option func(*config)

type config struct {
	// Per-lock-call.
	timeout  time.Duration
	noFollow bool

	// Per-RunWithRetry.
	maxAttempts    int
	maxAttemptsSet bool
	backoff        resilience.Backoff
	attemptTimeout time.Duration
	observer       resilience.Observer
}

func buildConfig(opts []Option) config {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithTimeout bounds each lock-manager acquisition of the protocol chain:
// a request not granted within d is withdrawn and fails wrapping
// lock.ErrTimeout. Per acquisition, not per call — the workstation-server
// "don't block forever behind a check-out lock" knob.
func WithTimeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// WithNoFollow locks a data path without downward propagation into
// referenced common data — only safe for operations whose semantics never
// access the referenced data (§4.5, NOFOLLOW queries).
func WithNoFollow() Option {
	return func(c *config) { c.noFollow = true }
}

// WithMaxAttempts bounds RunWithRetry's total attempts; n <= 0 means
// unlimited (bounded only by the context). Without this option the default
// is 10.
func WithMaxAttempts(n int) Option {
	return func(c *config) { c.maxAttempts = n; c.maxAttemptsSet = true }
}

// WithBackoff sets RunWithRetry's restart pacing policy — e.g.
// resilience.CappedExponential{} or a resilience.RestartWait draining the
// blockers that killed the previous attempt. Default is an immediate
// restart.
func WithBackoff(b resilience.Backoff) Option {
	return func(c *config) { c.backoff = b }
}

// WithAttemptTimeout gives each RunWithRetry attempt its own budget: the
// transaction's context carries a deadline, every lock acquisition inside
// the attempt is withdrawn when it expires, and the attempt restarts as a
// timeout. The caller's outer context still bounds the whole run.
func WithAttemptTimeout(d time.Duration) Option {
	return func(c *config) { c.attemptTimeout = d }
}

// WithRetryObserver wires a resilience.Observer (e.g. *obs.RetryCollector)
// into RunWithRetry, recording retries by cause and attempts-per-commit.
func WithRetryObserver(o resilience.Observer) Option {
	return func(c *config) { c.observer = o }
}
