package txn

import (
	"fmt"
	"sort"
	"sync"

	"colock/internal/lock"
	"colock/internal/store"
)

// History records the read/write accesses and commit order of committed
// transactions so that conflict serializability can be verified after a
// run — an end-to-end oracle for the protocol + strict-2PL stack (degree 3
// consistency, GLPT76). Recording is off unless a History is attached to
// the Manager with EnableHistory.

// AccessKind distinguishes reads from writes in the history.
type AccessKind uint8

const (
	// AccessR is a read access.
	AccessR AccessKind = iota
	// AccessW is a write access.
	AccessW
)

// String returns "r" or "w".
func (k AccessKind) String() string {
	if k == AccessW {
		return "w"
	}
	return "r"
}

// Access is one recorded data access.
type Access struct {
	Seq  uint64 // global order of the access
	Txn  lock.TxnID
	Kind AccessKind
	// Path is the accessed node; hierarchical conflict semantics apply
	// (an access to a node touches its whole subtree).
	Path string
}

// History collects accesses and commit events.
type History struct {
	mu       sync.Mutex
	seq      uint64
	accesses []Access
	commits  map[lock.TxnID]uint64 // txn → commit seq
}

// NewHistory returns an empty history recorder.
func NewHistory() *History {
	return &History{commits: make(map[lock.TxnID]uint64)}
}

func (h *History) record(txn lock.TxnID, kind AccessKind, p store.Path) {
	h.mu.Lock()
	h.seq++
	h.accesses = append(h.accesses, Access{Seq: h.seq, Txn: txn, Kind: kind, Path: p.String()})
	h.mu.Unlock()
}

func (h *History) commit(txn lock.TxnID) {
	h.mu.Lock()
	h.seq++
	h.commits[txn] = h.seq
	h.mu.Unlock()
}

func (h *History) abort(txn lock.TxnID) {
	// Aborted transactions' accesses are dropped: their effects were undone
	// and must not constrain serializability.
	h.mu.Lock()
	kept := h.accesses[:0]
	for _, a := range h.accesses {
		if a.Txn != txn {
			kept = append(kept, a)
		}
	}
	h.accesses = kept
	h.mu.Unlock()
}

// Accesses returns a copy of the recorded committed-transaction accesses in
// global order.
func (h *History) Accesses() []Access {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Access, len(h.accesses))
	copy(out, h.accesses)
	return out
}

// CommittedCount returns the number of committed transactions recorded.
func (h *History) CommittedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.commits)
}

// pathsConflict: hierarchical data — an access to a node touches its whole
// subtree, so two paths conflict when one is a prefix of the other (or they
// are equal).
func pathsConflict(a, b string) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == len(b) {
		return a == b
	}
	return b[:len(a)] == a && b[len(a)] == '/'
}

// CheckConflictSerializable builds the precedence graph of the committed
// transactions (edge Ti→Tj when an access of Ti precedes a conflicting
// access of Tj, at least one of them a write) and verifies it is acyclic.
// It returns the offending cycle as an error, or nil.
func (h *History) CheckConflictSerializable() error {
	h.mu.Lock()
	accesses := make([]Access, 0, len(h.accesses))
	for _, a := range h.accesses {
		if _, committed := h.commits[a.Txn]; committed {
			accesses = append(accesses, a)
		}
	}
	h.mu.Unlock()
	sort.Slice(accesses, func(i, j int) bool { return accesses[i].Seq < accesses[j].Seq })

	edges := make(map[lock.TxnID]map[lock.TxnID]bool)
	addEdge := func(from, to lock.TxnID) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[lock.TxnID]bool)
		}
		edges[from][to] = true
	}
	for i := 0; i < len(accesses); i++ {
		for j := i + 1; j < len(accesses); j++ {
			a, b := accesses[i], accesses[j]
			if a.Txn == b.Txn {
				continue
			}
			if a.Kind == AccessR && b.Kind == AccessR {
				continue
			}
			if pathsConflict(a.Path, b.Path) {
				addEdge(a.Txn, b.Txn)
			}
		}
	}

	// Cycle detection (iterative-friendly sizes; recursion is fine here).
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[lock.TxnID]int)
	var path []lock.TxnID
	var cycle []lock.TxnID
	var dfs func(t lock.TxnID) bool
	dfs = func(t lock.TxnID) bool {
		color[t] = grey
		path = append(path, t)
		for next := range edges[t] {
			switch color[next] {
			case grey:
				for i := len(path) - 1; i >= 0; i-- {
					cycle = append(cycle, path[i])
					if path[i] == next {
						return true
					}
				}
				return true
			case white:
				if dfs(next) {
					return true
				}
			}
		}
		color[t] = black
		path = path[:len(path)-1]
		return false
	}
	nodes := make([]lock.TxnID, 0, len(edges))
	for t := range edges {
		nodes = append(nodes, t)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, t := range nodes {
		if color[t] == white && dfs(t) {
			return fmt.Errorf("txn: history not conflict-serializable: cycle %v", cycle)
		}
	}
	return nil
}

// EnableHistory attaches a history recorder to the manager; all subsequent
// transaction reads, writes, commits and aborts are recorded.
func (m *Manager) EnableHistory(h *History) {
	m.mu.Lock()
	m.history = h
	m.mu.Unlock()
}

func (m *Manager) recordAccess(txn lock.TxnID, kind AccessKind, p store.Path) {
	m.mu.Lock()
	h := m.history
	m.mu.Unlock()
	if h != nil {
		h.record(txn, kind, p)
	}
}

func (m *Manager) recordEnd(txn lock.TxnID, committed bool) {
	m.mu.Lock()
	h := m.history
	m.mu.Unlock()
	if h == nil {
		return
	}
	if committed {
		h.commit(txn)
	} else {
		h.abort(txn)
	}
}
