// Package txn implements transactions over the complex-object store and the
// core lock protocol: strict two-phase locking (degree 3 consistency,
// GLPT76), undo-based rollback, commit/abort, deadlock-victim handling, and
// long ("conversational") transactions whose locks are durable and survive
// simulated system crashes — the workstation–server transaction model the
// paper's introduction motivates.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/resilience"
	"colock/internal/store"
)

// State is the lifecycle state of a transaction.
type State uint8

const (
	// Active transactions may lock and mutate data.
	Active State = iota
	// Committed transactions are finished; their effects are permanent.
	Committed
	// Aborted transactions are finished; their effects were undone.
	Aborted
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// ErrNotActive is returned when operating on a finished transaction.
var ErrNotActive = errors.New("txn: transaction not active")

// Manager creates and tracks transactions.
type Manager struct {
	proto *core.Protocol
	st    *store.Store
	next  atomic.Uint64

	mu      sync.Mutex
	active  map[lock.TxnID]*Txn
	history *History

	commits atomic.Uint64
	aborts  atomic.Uint64
}

// NewManager returns a transaction manager over a protocol and its store.
func NewManager(proto *core.Protocol, st *store.Store) *Manager {
	return &Manager{proto: proto, st: st, active: make(map[lock.TxnID]*Txn)}
}

// Protocol returns the underlying lock protocol.
func (m *Manager) Protocol() *core.Protocol { return m.proto }

// Store returns the underlying store.
func (m *Manager) Store() *store.Store { return m.st }

// Begin starts a short transaction, bypassing admission control (callers
// that must respect the gate use BeginCtx).
func (m *Manager) Begin() *Txn {
	t, _ := m.begin(context.Background(), false, false)
	return t
}

// BeginCtx starts a short transaction gated by the lock manager's admission
// control: while the waits-for graph is saturated (shed mode), the Begin is
// delayed and then refused with an error wrapping lock.ErrShed — the
// Retrier classifies and retries it like any other transient abort. ctx
// also becomes the transaction's default context: internal lock
// acquisitions made by data operations (Read, UpdateAtomic, …) flow through
// it, which is how RunWithRetry's per-attempt budgets reach every acquire.
func (m *Manager) BeginCtx(ctx context.Context) (*Txn, error) {
	return m.begin(ctx, false, true)
}

// BeginLong starts a long transaction: all its locks are durable and survive
// a simulated system restart (check-out semantics).
func (m *Manager) BeginLong() *Txn {
	t, _ := m.begin(context.Background(), true, false)
	return t
}

func (m *Manager) begin(ctx context.Context, long, admit bool) (*Txn, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	id := lock.TxnID(m.next.Add(1))
	if admit {
		if err := m.proto.Manager().Admit(ctx, id); err != nil {
			return nil, err
		}
	}
	t := &Txn{
		id:   id,
		m:    m,
		long: long,
		ctx:  ctx,
	}
	m.mu.Lock()
	m.active[t.id] = t
	m.mu.Unlock()
	return t, nil
}

// Adopt re-creates a handle for a long transaction restored after a crash
// (its durable locks are already in the lock manager). The ID space is
// advanced past id so new transactions do not collide.
func (m *Manager) Adopt(id lock.TxnID) *Txn {
	for {
		cur := m.next.Load()
		if uint64(id) <= cur || m.next.CompareAndSwap(cur, uint64(id)) {
			break
		}
	}
	t := &Txn{id: id, m: m, long: true, ctx: context.Background()}
	m.mu.Lock()
	m.active[id] = t
	m.mu.Unlock()
	return t
}

// ActiveCount returns the number of unfinished transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Commits returns the number of committed transactions.
func (m *Manager) Commits() uint64 { return m.commits.Load() }

// Aborts returns the number of aborted transactions.
func (m *Manager) Aborts() uint64 { return m.aborts.Load() }

func (m *Manager) finish(t *Txn, committed bool) {
	m.mu.Lock()
	delete(m.active, t.id)
	m.mu.Unlock()
	m.recordEnd(t.id, committed)
	if committed {
		m.commits.Add(1)
	} else {
		m.aborts.Add(1)
	}
	// Flush the transaction's buffered span tree to the attached span sinks
	// (no-op when tracing is off). Runs after the locks are released, on the
	// finishing goroutine, mirroring the lock manager's sink discipline.
	if rec := m.proto.Tracer(); rec != nil {
		outcome := "abort"
		if committed {
			outcome = "commit"
		}
		rec.FinishTxn(t.id, outcome)
	}
}

// Txn is one transaction. A Txn is used by a single goroutine at a time
// (transactions are single "threads of execution"); the manager, store and
// lock protocol underneath are fully concurrent.
type Txn struct {
	id   lock.TxnID
	m    *Manager
	long bool
	// ctx is the transaction's default context: internal lock acquisitions
	// made by data operations use it, so a per-attempt budget installed by
	// RunWithRetry (via BeginCtx) bounds every acquire of the attempt.
	ctx context.Context

	mu    sync.Mutex
	state State
	undo  []func() error
}

// ID returns the transaction identifier.
func (t *Txn) ID() lock.TxnID { return t.id }

// Long reports whether this is a long (durable-lock) transaction.
func (t *Txn) Long() bool { return t.long }

// State returns the lifecycle state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

func (t *Txn) checkActive() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return fmt.Errorf("%w (%v)", ErrNotActive, t.state)
	}
	return nil
}

// Lock acquires a protocol lock on a node — the single acquisition entry
// point, every variant expressed as an option: WithTimeout bounds each
// acquisition of the chain, WithNoFollow skips downward propagation into
// referenced common data. Growing phase of 2PL; locks are only released at
// commit or abort (strict 2PL). A nil ctx uses the transaction's own
// context (from BeginCtx). On cancellation, deadline expiry, or a
// deadlock-victim error, locks acquired earlier in the chain stay held (2PL
// forbids selective release) — the transaction must Abort.
func (t *Txn) Lock(ctx context.Context, n core.Node, mode lock.Mode, opts ...Option) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if ctx == nil {
		ctx = t.ctx
	}
	var cfg config
	if len(opts) > 0 {
		cfg = buildConfig(opts)
	}
	return t.m.proto.LockWith(ctx, t.id, n, mode, t.long, cfg.noFollow, cfg.timeout)
}

// LockPath is Lock on a data path.
func (t *Txn) LockPath(ctx context.Context, p store.Path, mode lock.Mode, opts ...Option) error {
	return t.Lock(ctx, core.DataNode(p), mode, opts...)
}

// DeEscalate trades the transaction's coarse S/X lock on a node for locks of
// the same mode on the kept descendant paths (§5 "de-escalation"). Like any
// early release, it is only safe once the transaction no longer depends on
// the released parts.
func (t *Txn) DeEscalate(n core.Node, keep []store.Path) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	return t.m.proto.DeEscalate(t.id, n, keep)
}

// Unlock releases a single lock early in leaf-to-root order (rule 5). Using
// it gives up strictness; the caller must know the data is no longer needed.
func (t *Txn) Unlock(n core.Node) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	return t.m.proto.Unlock(t.id, n)
}

// Read returns (a clone of) the value at path after S-locking it through the
// protocol. The clone keeps later store mutations from leaking into the
// reader, preserving degree-3 repeatable reads at the API boundary.
func (t *Txn) Read(p store.Path) (store.Value, error) {
	if err := t.LockPath(t.ctx, p, lock.S); err != nil {
		return nil, err
	}
	t.m.recordAccess(t.id, AccessR, p)
	return t.m.st.LookupClone(p)
}

// ReadAt returns the value at path assuming the transaction already holds a
// sufficient lock (e.g. from a planned coarse granule); it verifies coverage
// and fails otherwise instead of silently reading unprotected data.
func (t *Txn) ReadAt(p store.Path) (store.Value, error) {
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	em, err := t.m.proto.EffectiveMode(t.id, core.DataNode(p))
	if err != nil {
		return nil, err
	}
	if !em.Covers(lock.S) {
		return nil, fmt.Errorf("txn %d: read of %q not covered (effective %v)", t.id, p, em)
	}
	t.m.recordAccess(t.id, AccessR, p)
	return t.m.st.LookupClone(p)
}

// UpdateAtomic X-locks the path and replaces its atomic value, recording an
// undo action.
func (t *Txn) UpdateAtomic(p store.Path, v store.Value) error {
	if err := t.LockPath(t.ctx, p, lock.X); err != nil {
		return err
	}
	return t.updateLocked(p, v)
}

// UpdateAtomicAt is UpdateAtomic for callers already holding a covering X
// lock (planned coarse granules).
func (t *Txn) UpdateAtomicAt(p store.Path, v store.Value) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	em, err := t.m.proto.EffectiveMode(t.id, core.DataNode(p))
	if err != nil {
		return err
	}
	if !em.Covers(lock.X) {
		return fmt.Errorf("txn %d: update of %q not covered (effective %v)", t.id, p, em)
	}
	return t.updateLocked(p, v)
}

func (t *Txn) updateLocked(p store.Path, v store.Value) error {
	old, err := t.m.st.SetAtomic(p, v)
	if err != nil {
		return err
	}
	t.m.recordAccess(t.id, AccessW, p)
	t.pushUndo(func() error {
		_, err := t.m.st.SetAtomic(p, old)
		return err
	})
	return nil
}

// AddElem X-locks the collection and inserts an element.
func (t *Txn) AddElem(collection store.Path, id string, v store.Value) error {
	if err := t.LockPath(t.ctx, collection, lock.X); err != nil {
		return err
	}
	if err := t.m.st.AddElem(collection, id, v); err != nil {
		return err
	}
	t.m.recordAccess(t.id, AccessW, collection)
	t.pushUndo(func() error {
		_, err := t.m.st.RemoveElem(collection, id)
		return err
	})
	return nil
}

// AddElemAt is AddElem for callers already holding a covering X lock (e.g.
// from a planned coarse granule or a NOFOLLOW lock).
func (t *Txn) AddElemAt(collection store.Path, id string, v store.Value) error {
	if err := t.requireX(collection); err != nil {
		return err
	}
	if err := t.m.st.AddElem(collection, id, v); err != nil {
		return err
	}
	t.m.recordAccess(t.id, AccessW, collection)
	t.pushUndo(func() error {
		_, err := t.m.st.RemoveElem(collection, id)
		return err
	})
	return nil
}

// RemoveElem X-locks the collection and removes an element.
func (t *Txn) RemoveElem(collection store.Path, id string) error {
	if err := t.LockPath(t.ctx, collection, lock.X); err != nil {
		return err
	}
	old, err := t.m.st.RemoveElem(collection, id)
	if err != nil {
		return err
	}
	t.m.recordAccess(t.id, AccessW, collection)
	if old == nil {
		return nil // removing an absent element needs no undo
	}
	t.pushUndo(func() error {
		return t.m.st.AddElem(collection, id, old)
	})
	return nil
}

// RemoveElemAt is RemoveElem for callers already holding a covering X lock.
func (t *Txn) RemoveElemAt(collection store.Path, id string) error {
	if err := t.requireX(collection); err != nil {
		return err
	}
	old, err := t.m.st.RemoveElem(collection, id)
	if err != nil {
		return err
	}
	t.m.recordAccess(t.id, AccessW, collection)
	if old == nil {
		return nil
	}
	t.pushUndo(func() error {
		return t.m.st.AddElem(collection, id, old)
	})
	return nil
}

// requireX verifies the transaction effectively holds X on the path.
func (t *Txn) requireX(p store.Path) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	em, err := t.m.proto.EffectiveMode(t.id, core.DataNode(p))
	if err != nil {
		return err
	}
	if !em.Covers(lock.X) {
		return fmt.Errorf("txn %d: mutation of %q not covered (effective %v)", t.id, p, em)
	}
	return nil
}

// Insert adds a new complex object: IX on the relation (via the protocol's
// ancestor chain) plus X on the new object's own resource, then the store
// insert. The phantom problem proper is out of the paper's scope (§5,
// future work).
func (t *Txn) Insert(relation, key string, obj *store.Tuple) error {
	p := store.P(relation, key)
	if err := t.LockPath(t.ctx, p, lock.X); err != nil {
		return err
	}
	if err := t.m.st.Insert(relation, key, obj); err != nil {
		return err
	}
	t.m.recordAccess(t.id, AccessW, p)
	t.pushUndo(func() error {
		t.m.st.Delete(relation, key)
		return nil
	})
	return nil
}

// Delete removes a complex object after X-locking it.
func (t *Txn) Delete(relation, key string) error {
	p := store.P(relation, key)
	if err := t.LockPath(t.ctx, p, lock.X); err != nil {
		return err
	}
	old := t.m.st.Delete(relation, key)
	t.m.recordAccess(t.id, AccessW, p)
	if old == nil {
		return nil
	}
	t.pushUndo(func() error {
		return t.m.st.Insert(relation, key, old)
	})
	return nil
}

func (t *Txn) pushUndo(fn func() error) {
	t.mu.Lock()
	t.undo = append(t.undo, fn)
	t.mu.Unlock()
}

// Savepoint marks the current position in the undo log. RollbackTo undoes
// everything after the mark.
type Savepoint int

// Savepoint returns a mark for partial rollback.
func (t *Txn) Savepoint() Savepoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Savepoint(len(t.undo))
}

// RollbackTo undoes all mutations made after the savepoint, in reverse
// order. Locks acquired since the savepoint are retained (releasing them
// selectively would break two-phase locking); only the data changes are
// rolled back.
func (t *Txn) RollbackTo(sp Savepoint) error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return fmt.Errorf("%w (%v)", ErrNotActive, t.state)
	}
	if sp < 0 || int(sp) > len(t.undo) {
		t.mu.Unlock()
		return fmt.Errorf("txn %d: invalid savepoint %d (undo log has %d entries)", t.id, sp, len(t.undo))
	}
	undo := t.undo[sp:]
	t.undo = t.undo[:sp]
	t.mu.Unlock()
	for i := len(undo) - 1; i >= 0; i-- {
		if err := undo[i](); err != nil {
			return fmt.Errorf("txn %d: rollback to savepoint: %w", t.id, err)
		}
	}
	return nil
}

// Commit makes the transaction's effects permanent and releases all its
// locks (shrinking phase happens atomically at EOT — strict 2PL, which rule
// 5 permits: "locks are released at the end of the transaction in any
// order").
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return fmt.Errorf("%w (%v)", ErrNotActive, t.state)
	}
	t.state = Committed
	t.undo = nil
	t.mu.Unlock()
	t.m.proto.Release(t.id)
	t.m.finish(t, true)
	return nil
}

// Abort undoes all mutations in reverse order and releases all locks.
// Aborting a finished transaction is a no-op.
func (t *Txn) Abort() {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return
	}
	t.state = Aborted
	undo := t.undo
	t.undo = nil
	t.mu.Unlock()
	for i := len(undo) - 1; i >= 0; i-- {
		if err := undo[i](); err != nil {
			// Undo against an in-memory store can only fail if the store
			// was corrupted outside the transaction system.
			panic(fmt.Sprintf("txn %d: undo failed: %v", t.id, err))
		}
	}
	t.m.proto.Release(t.id)
	t.m.finish(t, false)
}

// RunWithRetry executes body inside a fresh transaction per attempt,
// retrying every abort the resilience layer classifies as transient —
// deadlock victim, wait-die death, acquire timeout, shed by admission
// control, would-block — under the configured restart policy. Application
// errors and caller cancellation are returned without retrying. Each
// attempt begins through BeginCtx, so admission control gates restarts the
// same as first attempts, and WithAttemptTimeout budgets flow into every
// lock acquisition of the attempt. The body must use the supplied
// transaction for all data access and must be restartable: each attempt
// gets a fresh transaction with an empty undo log, so savepoints taken
// inside one attempt never leak into the next.
//
// Defaults: 10 attempts, immediate restart. Tune with WithMaxAttempts
// (<= 0 for unlimited), WithBackoff, WithAttemptTimeout and
// WithRetryObserver.
func (m *Manager) RunWithRetry(ctx context.Context, body func(*Txn) error, opts ...Option) error {
	cfg := buildConfig(opts)
	maxAttempts := 10
	if cfg.maxAttemptsSet {
		maxAttempts = cfg.maxAttempts
	}
	r := &resilience.Retrier{
		MaxAttempts:    maxAttempts,
		Backoff:        cfg.backoff,
		AttemptTimeout: cfg.attemptTimeout,
		Observer:       cfg.observer,
	}
	return r.Run(ctx, func(actx context.Context) error {
		t, err := m.BeginCtx(actx)
		if err != nil {
			return err
		}
		if err := body(t); err != nil {
			t.Abort()
			return err
		}
		return t.Commit()
	})
}
