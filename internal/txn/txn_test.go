package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, core.Options{})
	return NewManager(proto, st)
}

func TestCommitReleasesLocks(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	if _, err := tx.Read(store.P("cells", "c1", "cell_id")); err != nil {
		t.Fatal(err)
	}
	if len(m.Protocol().Manager().HeldLocks(tx.ID())) == 0 {
		t.Fatal("no locks held before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := m.Protocol().Manager().LockCount(); got != 0 {
		t.Errorf("locks after commit: %d", got)
	}
	if tx.State() != Committed {
		t.Errorf("state = %v", tx.State())
	}
	if m.Commits() != 1 || m.Aborts() != 0 || m.ActiveCount() != 0 {
		t.Error("manager counters wrong")
	}
}

func TestAbortUndoesUpdates(t *testing.T) {
	m := newManager(t)
	p := store.P("cells", "c1", "robots", "r1", "trajectory")
	tx := m.Begin()
	if err := tx.UpdateAtomic(p, store.Str("changed")); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Store().Lookup(p)
	if v != store.Str("changed") {
		t.Fatal("update not applied")
	}
	tx.Abort()
	v, _ = m.Store().Lookup(p)
	if v != store.Str("tr1") {
		t.Errorf("after abort = %v, want tr1", v)
	}
	if m.Protocol().Manager().LockCount() != 0 {
		t.Error("locks leaked after abort")
	}
	if tx.State() != Aborted {
		t.Errorf("state = %v", tx.State())
	}
}

func TestAbortUndoesInReverseOrder(t *testing.T) {
	m := newManager(t)
	p := store.P("cells", "c1", "robots", "r1", "trajectory")
	tx := m.Begin()
	if err := tx.UpdateAtomic(p, store.Str("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.UpdateAtomic(p, store.Str("v2")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	v, _ := m.Store().Lookup(p)
	if v != store.Str("tr1") {
		t.Errorf("after abort = %v, want tr1 (reverse-order undo)", v)
	}
}

func TestAbortUndoesInsertDeleteAndElems(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()

	eff := store.NewTuple().Set("eff_id", store.Str("e9")).Set("tool", store.Str("t9"))
	if err := tx.Insert("effectors", "e9", eff); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("effectors", "e3"); err != nil {
		t.Fatal(err)
	}
	coll := store.P("cells", "c1", "robots", "r1", "effectors")
	if err := tx.AddElem(coll, "e9", store.Ref{Relation: "effectors", Key: "e9"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.RemoveElem(coll, "e1"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	if m.Store().Get("effectors", "e9") != nil {
		t.Error("insert not undone")
	}
	if m.Store().Get("effectors", "e3") == nil {
		t.Error("delete not undone")
	}
	v, _ := m.Store().Lookup(coll)
	ids := v.(*store.Set).IDs()
	if len(ids) != 2 || ids[0] != "e1" || ids[1] != "e2" {
		t.Errorf("collection after abort = %v", ids)
	}
	if err := m.Store().CheckIntegrity(); err != nil {
		t.Error(err)
	}
}

func TestCommittedEffectsSurvive(t *testing.T) {
	m := newManager(t)
	p := store.P("effectors", "e1", "tool")
	tx := m.Begin()
	if err := tx.UpdateAtomic(p, store.Str("new-tool")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Store().Lookup(p)
	if v != store.Str("new-tool") {
		t.Errorf("committed value = %v", v)
	}
}

func TestFinishedTxnRejectsOperations(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Errorf("double commit: %v", err)
	}
	if _, err := tx.Read(store.P("cells", "c1")); !errors.Is(err, ErrNotActive) {
		t.Errorf("read after commit: %v", err)
	}
	if err := tx.UpdateAtomic(store.P("effectors", "e1", "tool"), store.Str("x")); !errors.Is(err, ErrNotActive) {
		t.Errorf("update after commit: %v", err)
	}
	tx.Abort() // no-op on finished txn
	if tx.State() != Committed {
		t.Error("abort changed committed state")
	}
}

func TestReadReturnsClone(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	v, err := tx.Read(store.P("cells", "c1", "robots", "r1"))
	if err != nil {
		t.Fatal(err)
	}
	v.(*store.Tuple).Set("trajectory", store.Str("hacked"))
	got, _ := m.Store().Lookup(store.P("cells", "c1", "robots", "r1", "trajectory"))
	if got != store.Str("tr1") {
		t.Error("Read leaked a live reference")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadAtRequiresCoverage(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	// No lock yet → ReadAt must refuse.
	if _, err := tx.ReadAt(store.P("cells", "c1", "cell_id")); err == nil {
		t.Error("uncovered ReadAt succeeded")
	}
	// Coarse S on the object covers every descendant.
	if err := tx.LockPath(nil, store.P("cells", "c1"), lock.S); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ReadAt(store.P("cells", "c1", "cell_id")); err != nil {
		t.Errorf("covered ReadAt failed: %v", err)
	}
	tx.Abort()
}

func TestUpdateAtomicAtRequiresXCoverage(t *testing.T) {
	m := newManager(t)
	tx := m.Begin()
	if err := tx.LockPath(nil, store.P("cells", "c1"), lock.S); err != nil {
		t.Fatal(err)
	}
	if err := tx.UpdateAtomicAt(store.P("cells", "c1", "cell_id"), store.Str("x")); err == nil {
		t.Error("S coverage allowed an update")
	}
	if err := tx.LockPath(nil, store.P("cells", "c1"), lock.X); err != nil {
		t.Fatal(err)
	}
	if err := tx.UpdateAtomicAt(store.P("cells", "c1", "cell_id"), store.Str("c1")); err != nil {
		t.Errorf("X coverage refused an update: %v", err)
	}
	tx.Abort()
}

// TestNoLostUpdates: concurrent read-modify-write increments under strict
// 2PL must not lose updates — the classic serializability smoke test.
func TestNoLostUpdates(t *testing.T) {
	m := newManager(t)
	seed := m.Begin()
	if err := seed.Insert("effectors", "ctr", store.NewTuple().
		Set("eff_id", store.Str("ctr")).Set("tool", store.Str("0"))); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	p := store.P("effectors", "ctr", "tool")

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				err := m.RunWithRetry(context.Background(), func(tx *Txn) error {
					// X first (read-modify-write); upgrading from S would
					// deadlock symmetric writers, which RunWithRetry also
					// survives, but X-first keeps the test fast.
					if err := tx.LockPath(nil, p, lock.X); err != nil {
						return err
					}
					v, err := tx.ReadAt(p)
					if err != nil {
						return err
					}
					var n int
					fmt.Sscanf(string(v.(store.Str)), "%d", &n)
					return tx.UpdateAtomicAt(p, store.Str(fmt.Sprintf("%d", n+1)))
				}, WithMaxAttempts(50))
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, _ := m.Store().Lookup(p)
	want := store.Str(fmt.Sprintf("%d", workers*rounds))
	if v != want {
		t.Errorf("counter = %v, want %v (lost updates)", v, want)
	}
	if m.Protocol().Manager().LockCount() != 0 {
		t.Error("locks leaked")
	}
}

// TestDeadlockVictimAbortsAndRetrySucceeds: two transactions locking two
// effectors in opposite orders; RunWithRetry must resolve the deadlock.
func TestDeadlockVictimAbortsAndRetrySucceeds(t *testing.T) {
	m := newManager(t)
	pa := store.P("effectors", "e1")
	pb := store.P("effectors", "e3")
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	barrier := make(chan struct{})
	run := func(first, second store.Path) {
		defer wg.Done()
		errs <- m.RunWithRetry(context.Background(), func(tx *Txn) error {
			if err := tx.LockPath(nil, first, lock.X); err != nil {
				return err
			}
			<-barrier
			return tx.LockPath(nil, second, lock.X)
		}, WithMaxAttempts(20))
	}
	wg.Add(2)
	go run(pa, pb)
	go run(pb, pa)
	close(barrier)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if m.Protocol().Manager().Stats().Deadlocks == 0 {
		t.Log("note: schedule did not produce a deadlock this run")
	}
}

func TestRunWithRetryPropagatesOtherErrors(t *testing.T) {
	m := newManager(t)
	boom := errors.New("boom")
	err := m.RunWithRetry(context.Background(), func(tx *Txn) error { return boom }, WithMaxAttempts(5))
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if m.Aborts() != 1 {
		t.Errorf("aborts = %d", m.Aborts())
	}
}

func TestLongTxnLocksAreDurable(t *testing.T) {
	m := newManager(t)
	tx := m.BeginLong()
	if !tx.Long() {
		t.Error("Long() = false")
	}
	if err := tx.LockPath(nil, store.P("cells", "c1"), lock.X); err != nil {
		t.Fatal(err)
	}
	snap := m.Protocol().Manager().Snapshot()
	if len(snap) == 0 {
		t.Fatal("long transaction produced no durable locks")
	}
	tx.Abort()
}

func TestAdoptAdvancesIDSpace(t *testing.T) {
	m := newManager(t)
	adopted := m.Adopt(100)
	if adopted.ID() != 100 || !adopted.Long() {
		t.Error("adopt wrong")
	}
	fresh := m.Begin()
	if fresh.ID() <= 100 {
		t.Errorf("fresh ID %d collides with adopted space", fresh.ID())
	}
	if m.ActiveCount() != 2 {
		t.Errorf("active = %d", m.ActiveCount())
	}
	adopted.Abort()
	fresh.Abort()
}

func TestStateString(t *testing.T) {
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Error("state strings")
	}
	if State(9).String() == "" {
		t.Error("invalid state string empty")
	}
}
