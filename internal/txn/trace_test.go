package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
	"colock/internal/trace"
)

type spanCapture struct {
	mu       sync.Mutex
	outcomes map[lock.TxnID]string
	spans    map[lock.TxnID][]trace.Span
}

func (sc *spanCapture) RecordSpans(txn lock.TxnID, outcome string, spans []trace.Span) {
	sc.mu.Lock()
	if sc.outcomes == nil {
		sc.outcomes = make(map[lock.TxnID]string)
		sc.spans = make(map[lock.TxnID][]trace.Span)
	}
	sc.outcomes[txn] = outcome
	sc.spans[txn] = spans
	sc.mu.Unlock()
}

func newTracedManager(t *testing.T) (*Manager, *trace.Recorder, *spanCapture) {
	t.Helper()
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	sink := &spanCapture{}
	rec := trace.NewRecorder(trace.Options{ShardOf: mgr.ShardOf, Sinks: []trace.SpanSink{sink}})
	proto := core.NewProtocol(mgr, st, nm, core.Options{Tracer: rec})
	return NewManager(proto, st), rec, sink
}

// Commit and Abort flush the transaction's span buffer to the span sinks
// with the matching outcome, and drop the buffer.
func TestSpanFlushAtCommitAndAbort(t *testing.T) {
	m, rec, sink := newTracedManager(t)

	tc := m.Begin()
	if _, err := tc.Read(store.P("cells", "c1", "cell_id")); err != nil {
		t.Fatal(err)
	}
	if err := tc.Commit(); err != nil {
		t.Fatal(err)
	}
	ta := m.Begin()
	if _, err := ta.Read(store.P("cells", "c1", "cell_id")); err != nil {
		t.Fatal(err)
	}
	ta.Abort()

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.outcomes[tc.ID()] != "commit" {
		t.Errorf("outcome for committed txn = %q, want commit", sink.outcomes[tc.ID()])
	}
	if sink.outcomes[ta.ID()] != "abort" {
		t.Errorf("outcome for aborted txn = %q, want abort", sink.outcomes[ta.ID()])
	}
	for _, id := range []lock.TxnID{tc.ID(), ta.ID()} {
		if len(sink.spans[id]) == 0 {
			t.Errorf("txn %d flushed no spans", id)
		}
		if rec.SpansOf(id) != nil {
			t.Errorf("txn %d buffer survived finish", id)
		}
		for _, sp := range sink.spans[id] {
			if sp.Open {
				t.Errorf("txn %d flushed open span %+v", id, sp)
			}
		}
	}
}

// Txn.LockTimeout surfaces lock.ErrTimeout and leaves the failed span in
// the abort flush.
func TestTxnLockTimeout(t *testing.T) {
	m, _, sink := newTracedManager(t)
	holder := m.Begin()
	if err := holder.LockPath(nil, store.P("cells", "c1"), lock.X); err != nil {
		t.Fatal(err)
	}
	blocked := m.Begin()
	err := blocked.Lock(nil, core.DataNode(store.P("cells", "c1")), lock.X, WithTimeout(5*time.Millisecond))
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	blocked.Abort()
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	var sawTimeoutSpan bool
	for _, sp := range sink.spans[blocked.ID()] {
		if sp.Err != "" {
			sawTimeoutSpan = true
		}
	}
	if !sawTimeoutSpan {
		t.Errorf("no errored span flushed for the timed-out txn: %+v", sink.spans[blocked.ID()])
	}
}
