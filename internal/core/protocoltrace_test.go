package core

import (
	"errors"
	"testing"
	"time"

	"colock/internal/lock"
	"colock/internal/store"
	"colock/internal/trace"
)

// A traced S lock on the top of the sharing chain must produce one root span
// whose children mirror the protocol: upward intention locks on the ancestor
// chain, a downward propagation subtree per referenced inner unit, and the
// node acquisition itself.
func TestProtocolSpanTree(t *testing.T) {
	_, st := nestedCatalogAndStore(t)
	nm := NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	rec := trace.NewRecorder(trace.Options{ShardOf: mgr.ShardOf})
	p := NewProtocol(mgr, st, nm, Options{Tracer: rec})

	if err := p.LockPath(1, store.P("assemblies", "a1"), lock.S); err != nil {
		t.Fatal(err)
	}

	spans := rec.SpansOf(1)
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	byKind := make(map[string][]trace.Span)
	var roots []trace.Span
	for _, sp := range spans {
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
		if sp.Parent == 0 {
			roots = append(roots, sp)
		}
		if sp.Open {
			t.Errorf("span still open after return: %+v", sp)
		}
		if sp.Shard != mgr.ShardOf(sp.Resource) {
			t.Errorf("span %s shard = %d, want %d", sp.Resource, sp.Shard, mgr.ShardOf(sp.Resource))
		}
	}
	if len(roots) != 1 || roots[0].Kind != "lock" || roots[0].Resource != "db/s1/assemblies/a1" || roots[0].Mode != "S" {
		t.Fatalf("roots = %+v, want one lock S root on db/s1/assemblies/a1", roots)
	}
	// Ancestors of a1: db, db/s1, db/s1/assemblies — three upward spans for
	// the root call, plus the upward chains of the two downward recursions
	// (parts/p1 and bolts/b1: db, seg, relation each, minus nothing — the
	// memo dedupes only repeats, and db is repeated).
	if len(byKind["upward"]) < 3 {
		t.Errorf("upward spans = %d, want ≥ 3: %+v", len(byKind["upward"]), byKind["upward"])
	}
	// Downward propagation: a1 → parts/p1, and inside it p1 → bolts/b1.
	if len(byKind["downward"]) != 2 {
		t.Fatalf("downward spans = %+v, want 2", byKind["downward"])
	}
	var p1, b1 trace.Span
	for _, sp := range byKind["downward"] {
		switch sp.Resource {
		case "db/s2/parts/p1":
			p1 = sp
		case "db/s3/bolts/b1":
			b1 = sp
		}
	}
	if p1.ID == 0 || b1.ID == 0 {
		t.Fatalf("downward spans = %+v, want parts/p1 and bolts/b1", byKind["downward"])
	}
	if p1.Parent != roots[0].ID {
		t.Errorf("parts/p1 downward span hangs off %d, want root %d", p1.Parent, roots[0].ID)
	}
	if b1.Parent != p1.ID {
		t.Errorf("bolts/b1 downward span hangs off %d, want parts/p1 span %d (nested propagation)", b1.Parent, p1.ID)
	}
	// Every lockable node acquired exactly once.
	acquired := make(map[lock.Resource]bool)
	for _, sp := range byKind["acquire"] {
		if acquired[sp.Resource] {
			t.Errorf("resource %s acquired twice", sp.Resource)
		}
		acquired[sp.Resource] = true
	}
	for _, want := range []lock.Resource{"db/s1/assemblies/a1", "db/s2/parts/p1", "db/s3/bolts/b1"} {
		if !acquired[want] {
			t.Errorf("no acquire span for %s; got %+v", want, byKind["acquire"])
		}
	}
	mgr.ReleaseAll(1)
}

// Rule 4′ demotions are visible in the span kind.
func TestProtocolSpanRule4Prime(t *testing.T) {
	_, st := nestedCatalogAndStore(t)
	nm := NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	rec := trace.NewRecorder(trace.Options{ShardOf: mgr.ShardOf})
	p := NewProtocol(mgr, st, nm, Options{
		Tracer:     rec,
		Rule4Prime: true,
		Authorizer: denyRelation{"bolts"},
	})

	if err := p.LockPath(1, store.P("parts", "p1"), lock.X); err != nil {
		t.Fatal(err)
	}
	var demoted []trace.Span
	for _, sp := range rec.SpansOf(1) {
		if sp.Kind == "downward-rule4prime" {
			demoted = append(demoted, sp)
		}
	}
	if len(demoted) != 1 || demoted[0].Resource != "db/s3/bolts/b1" || demoted[0].Mode != "S" {
		t.Fatalf("rule-4' spans = %+v, want one S demotion on bolts/b1", demoted)
	}
	mgr.ReleaseAll(1)
}

type denyRelation struct{ rel string }

func (d denyRelation) CanModify(txn lock.TxnID, relation string) bool { return relation != d.rel }

// Sampled-out calls leave no spans; sampled-in calls trace children too.
func TestProtocolSpanSampling(t *testing.T) {
	_, st := nestedCatalogAndStore(t)
	nm := NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	rec := trace.NewRecorder(trace.Options{SampleShift: 6, ShardOf: mgr.ShardOf})
	p := NewProtocol(mgr, st, nm, Options{Tracer: rec})

	for i := 0; i < 64; i++ {
		if err := p.LockPath(1, store.P("bolts", "b1"), lock.S); err != nil {
			t.Fatal(err)
		}
	}
	if rec.SampledCalls() != 1 {
		t.Errorf("SampledCalls = %d, want 1 of 64 at shift 6", rec.SampledCalls())
	}
	var roots int
	for _, sp := range rec.SpansOf(1) {
		if sp.Parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("root spans = %d, want 1", roots)
	}
	mgr.ReleaseAll(1)
}

// LockTimeout plumbs a per-acquisition deadline through the protocol chain
// and reports the blocking acquisition in the span tree.
func TestProtocolLockTimeout(t *testing.T) {
	_, st := nestedCatalogAndStore(t)
	nm := NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{Policy: lock.PolicyNone})
	rec := trace.NewRecorder(trace.Options{ShardOf: mgr.ShardOf})
	p := NewProtocol(mgr, st, nm, Options{Tracer: rec})

	if err := p.LockPath(1, store.P("bolts", "b1"), lock.X); err != nil {
		t.Fatal(err)
	}
	err := p.LockTimeout(2, DataNode(store.P("bolts", "b1")), lock.X, 5*time.Millisecond)
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	var sawErr bool
	for _, sp := range rec.SpansOf(2) {
		if sp.Kind == "acquire" && sp.Err != "" {
			sawErr = true
			if sp.Resource != "db/s3/bolts/b1" {
				t.Errorf("failed acquire span on %s, want bolts/b1", sp.Resource)
			}
			if sp.Dur < 5*time.Millisecond {
				t.Errorf("failed acquire span dur = %v, want ≥ 5ms", sp.Dur)
			}
		}
	}
	if !sawErr {
		t.Errorf("no failed acquire span in %+v", rec.SpansOf(2))
	}
	mgr.ReleaseAll(1)
	mgr.ReleaseAll(2)
}
