package core

import (
	"testing"

	"colock/internal/schema"
	"colock/internal/store"
)

func paperSetup(t *testing.T) (*store.Store, *Namer) {
	t.Helper()
	st := store.PaperDatabase()
	return st, NewNamer(st.Catalog(), false)
}

// TestComputeUnitsFigure6 pins the unit decomposition of complex object
// "cell c1" against Figure 6.
func TestComputeUnitsFigure6(t *testing.T) {
	st, nm := paperSetup(t)
	u, err := ComputeUnits(st, nm, store.P("cells", "c1"))
	if err != nil {
		t.Fatal(err)
	}

	// Outer unit: database, segment seg1, relation cells, and the 19
	// instance nodes of cell c1 down to (and including) the reference BLUs.
	if len(u.OuterNodes) != 3+19 {
		t.Fatalf("outer unit has %d nodes, want 22", len(u.OuterNodes))
	}
	if u.OuterNodes[0].Level != LevelDatabase ||
		!u.OuterNodes[1].Equal(SegmentNode("seg1")) ||
		!u.OuterNodes[2].Path.Equal(store.P("cells")) {
		t.Errorf("outer unit head wrong: %v", u.OuterNodes[:3])
	}
	// Spot-check membership: the reference BLUs belong to the OUTER unit.
	found := make(map[string]bool)
	for _, n := range u.OuterNodes {
		if n.Level == LevelData {
			found[n.Path.String()] = true
		}
	}
	for _, p := range []string{
		"cells/c1",
		"cells/c1/cell_id",
		"cells/c1/c_objects/o1/obj_name",
		"cells/c1/robots/r1/effectors/e2", // ref BLU — outer unit boundary
		"cells/c1/robots/r2/trajectory",
	} {
		if !found[p] {
			t.Errorf("outer unit misses %q", p)
		}
	}
	if found["effectors/e1"] {
		t.Error("outer unit contains shared data")
	}

	// Inner units: effector e1, e2, e3 — each with nodes
	// {effectors/eX, eff_id, tool} and superunit relation → segment → db.
	if len(u.Inner) != 3 {
		t.Fatalf("found %d inner units, want 3: %+v", len(u.Inner), u.Inner)
	}
	wantEntries := []string{"effectors/e1", "effectors/e2", "effectors/e3"}
	for i, iu := range u.Inner {
		if iu.EntryPoint.String() != wantEntries[i] {
			t.Errorf("inner[%d].EntryPoint = %q, want %q", i, iu.EntryPoint, wantEntries[i])
		}
		if iu.Depth != 1 {
			t.Errorf("inner[%d].Depth = %d, want 1", i, iu.Depth)
		}
		if len(iu.Nodes) != 3 {
			t.Errorf("inner[%d] has %d nodes, want 3 (entry, eff_id, tool)", i, len(iu.Nodes))
		}
		if len(iu.Superunit) != 3 ||
			!iu.Superunit[0].Path.Equal(store.P("effectors")) ||
			!iu.Superunit[1].Equal(SegmentNode("seg2")) ||
			iu.Superunit[2].Level != LevelDatabase {
			t.Errorf("inner[%d].Superunit = %v", i, iu.Superunit)
		}
	}

	// e2 is shared by r1 and r2: two referencing BLUs.
	e2 := u.Inner[1]
	if len(e2.ReferencedFrom) != 2 ||
		e2.ReferencedFrom[0].String() != "cells/c1/robots/r1/effectors/e2" ||
		e2.ReferencedFrom[1].String() != "cells/c1/robots/r2/effectors/e2" {
		t.Errorf("e2.ReferencedFrom = %v", e2.ReferencedFrom)
	}
	if len(u.Inner[0].ReferencedFrom) != 1 || len(u.Inner[2].ReferencedFrom) != 1 {
		t.Error("e1/e3 reference counts wrong")
	}
}

// TestComputeUnitsNestedCommonData: common data containing common data
// yields depth-2 inner units.
func TestComputeUnitsNestedCommonData(t *testing.T) {
	cat := schema.NewCatalog("db")
	_ = cat.AddRelation(&schema.Relation{
		Name: "bolts", Segment: "s3", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Str())),
	})
	_ = cat.AddRelation(&schema.Relation{
		Name: "parts", Segment: "s2", Key: "id",
		Type: schema.Tuple(
			schema.F("id", schema.Str()),
			schema.F("bolts", schema.Set(schema.Ref("bolts"))),
		),
	})
	_ = cat.AddRelation(&schema.Relation{
		Name: "assemblies", Segment: "s1", Key: "id",
		Type: schema.Tuple(
			schema.F("id", schema.Str()),
			schema.F("parts", schema.Set(schema.Ref("parts"))),
		),
	})
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	st := store.New(cat)
	mustIns := func(rel, key string, obj *store.Tuple) {
		t.Helper()
		if err := st.Insert(rel, key, obj); err != nil {
			t.Fatal(err)
		}
	}
	mustIns("bolts", "b1", store.NewTuple().Set("id", store.Str("b1")))
	mustIns("parts", "p1", store.NewTuple().Set("id", store.Str("p1")).
		Set("bolts", store.NewSet().Add("b1", store.Ref{Relation: "bolts", Key: "b1"})))
	mustIns("assemblies", "a1", store.NewTuple().Set("id", store.Str("a1")).
		Set("parts", store.NewSet().Add("p1", store.Ref{Relation: "parts", Key: "p1"})))

	nm := NewNamer(cat, false)
	u, err := ComputeUnits(st, nm, store.P("assemblies", "a1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Inner) != 2 {
		t.Fatalf("inner units = %d, want 2", len(u.Inner))
	}
	if u.Inner[0].EntryPoint.String() != "parts/p1" || u.Inner[0].Depth != 1 {
		t.Errorf("inner[0] = %+v", u.Inner[0])
	}
	if u.Inner[1].EntryPoint.String() != "bolts/b1" || u.Inner[1].Depth != 2 {
		t.Errorf("inner[1] = %+v", u.Inner[1])
	}
}

func TestComputeUnitsErrors(t *testing.T) {
	st, nm := paperSetup(t)
	if _, err := ComputeUnits(st, nm, store.P("cells")); err == nil {
		t.Error("relation path accepted")
	}
	if _, err := ComputeUnits(st, nm, store.P("nope", "x")); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := ComputeUnits(st, nm, store.P("cells", "zz")); err == nil {
		t.Error("unknown object accepted")
	}
	// Dangling reference is reported.
	st.Delete("effectors", "e2")
	if _, err := ComputeUnits(st, nm, store.P("cells", "c1")); err == nil {
		t.Error("dangling reference accepted")
	}
}

func TestEntryPointsUnder(t *testing.T) {
	st, nm := paperSetup(t)

	cases := []struct {
		node Node
		want []string
	}{
		{DatabaseNode(), nil}, // db covers everything implicitly
		{SegmentNode("seg1"), []string{"effectors/e1", "effectors/e2", "effectors/e3"}},
		{SegmentNode("seg2"), nil}, // effectors reference nothing
		{DataNode(store.P("cells")), []string{"effectors/e1", "effectors/e2", "effectors/e3"}},
		{DataNode(store.P("cells", "c1")), []string{"effectors/e1", "effectors/e2", "effectors/e3"}},
		{DataNode(store.P("cells", "c1", "robots", "r1")), []string{"effectors/e1", "effectors/e2"}},
		{DataNode(store.P("cells", "c1", "robots", "r2")), []string{"effectors/e2", "effectors/e3"}},
		{DataNode(store.P("cells", "c1", "c_objects")), nil},
		{DataNode(store.P("cells", "c1", "robots", "r1", "trajectory")), nil},
		{DataNode(store.P("effectors", "e1")), nil},
	}
	for _, c := range cases {
		got, err := EntryPointsUnder(st, nm, c.node)
		if err != nil {
			t.Errorf("%v: %v", c.node, err)
			continue
		}
		gs := make([]string, len(got))
		for i, p := range got {
			gs[i] = p.String()
		}
		if len(gs) != len(c.want) {
			t.Errorf("%v: entry points = %v, want %v", c.node, gs, c.want)
			continue
		}
		for i := range gs {
			if gs[i] != c.want[i] {
				t.Errorf("%v: entry points = %v, want %v", c.node, gs, c.want)
				break
			}
		}
	}
}

// TestEntryPointsSameSegmentSkipped: targets stored in the locked segment
// are implicitly covered and skipped.
func TestEntryPointsSameSegmentSkipped(t *testing.T) {
	cat := schema.NewCatalog("db")
	_ = cat.AddRelation(&schema.Relation{
		Name: "lib", Segment: "s1", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Str())),
	})
	_ = cat.AddRelation(&schema.Relation{
		Name: "top", Segment: "s1", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Str()), schema.F("p", schema.Set(schema.Ref("lib")))),
	})
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	st := store.New(cat)
	if err := st.Insert("lib", "l1", store.NewTuple().Set("id", store.Str("l1"))); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("top", "t1", store.NewTuple().Set("id", store.Str("t1")).
		Set("p", store.NewSet().Add("l1", store.Ref{Relation: "lib", Key: "l1"}))); err != nil {
		t.Fatal(err)
	}
	nm := NewNamer(cat, false)
	got, err := EntryPointsUnder(st, nm, SegmentNode("s1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("same-segment targets not skipped: %v", got)
	}
	// But a lock on the relation still propagates (lib is not under top).
	got, err = EntryPointsUnder(st, nm, DataNode(store.P("top")))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].String() != "lib/l1" {
		t.Errorf("relation-level entry points = %v", got)
	}
}

func TestEntryPointsDeduplicated(t *testing.T) {
	st, nm := paperSetup(t)
	// cell c1 references e2 twice (r1 and r2) but e2 appears once.
	got, err := EntryPointsUnder(st, nm, DataNode(store.P("cells", "c1")))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, p := range got {
		if p.String() == "effectors/e2" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("e2 appears %d times, want 1", count)
	}
}
