package core

import (
	"fmt"

	"colock/internal/lock"
	"colock/internal/store"
)

// Lock de-escalation — "the efficient release of locks ('de-escalation')" is
// named in the paper's §5 as future work; this file implements it. A
// transaction holding a coarse S/X lock (typically from an anticipated
// escalation that turned out too pessimistic) trades it for fine locks on
// the parts it still needs, releasing the rest of the subtree for other
// transactions.
//
// The exchange is safe because the fine locks are acquired while the coarse
// lock is still held (no window), and it never blocks: every fine lock is
// already implicitly covered by the coarse one, so the requests are granted
// immediately.

// DeEscalate replaces txn's coarse lock on node n with locks of the same
// mode on the given descendant data paths (plus the necessary intention
// locks), then releases the coarse lock. Requirements:
//
//   - txn must hold S or X explicitly on n;
//   - every keep path must lie strictly below n in the hierarchy.
//
// After the call, siblings of the kept paths are available to other
// transactions. Early release of a coarse lock weakens two-phase locking —
// like rule 5's leaf-to-root early release, it is only safe if the
// transaction no longer depends on the released data.
func (p *Protocol) DeEscalate(txn lock.TxnID, n Node, keep []store.Path) error {
	res, err := p.nm.Resource(n)
	if err != nil {
		return err
	}
	held := p.mgr.HeldMode(txn, res)
	if held != lock.S && held != lock.X {
		return fmt.Errorf("core: de-escalation needs an explicit S or X on %v, held %v", n, held)
	}

	// Validate the keep paths strictly descend from n.
	var prefix store.Path
	switch n.Level {
	case LevelRelation, LevelData:
		prefix = n.Path
	default:
		return fmt.Errorf("core: de-escalation of %v not supported (lock a relation or data node)", n)
	}
	for _, k := range keep {
		if len(k) <= len(prefix) || !k.HasPrefix(prefix) {
			return fmt.Errorf("core: keep path %q is not below %v", k, n)
		}
	}

	// Acquire the fine locks while still covered by the coarse lock. The
	// protocol's normal Lock handles intention chains and downward
	// propagation into common data reachable from the kept parts.
	for _, k := range keep {
		if err := p.Lock(txn, DataNode(k), held); err != nil {
			return err
		}
	}

	// Trade: atomically downgrade the coarse lock to the intention mode the
	// kept descendants require. The ancestors already hold at least that
	// intention strength, so the hierarchy invariant is preserved with no
	// unprotected window.
	return p.mgr.Downgrade(txn, res, held.IntentionFor())
}

// Unlock releases txn's explicit lock on a single node before end of
// transaction — rule 5's early "leaf-to-root order" release. It refuses to
// release a node while the transaction still holds explicit locks on
// descendants (that would break the intention-chain invariant).
func (p *Protocol) Unlock(txn lock.TxnID, n Node) error {
	res, err := p.nm.Resource(n)
	if err != nil {
		return err
	}
	if p.mgr.HeldMode(txn, res) == lock.None {
		return nil
	}
	prefix := string(res) + "/"
	for _, h := range p.mgr.HeldLocks(txn) {
		if len(h.Resource) > len(prefix) && string(h.Resource[:len(prefix)]) == prefix {
			return fmt.Errorf("core: cannot release %v before descendant %s (leaf-to-root order)", n, h.Resource)
		}
	}
	p.mgr.Release(txn, res)
	return nil
}
