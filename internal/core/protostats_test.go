package core

import (
	"strings"
	"testing"

	"colock/internal/authz"
	"colock/internal/lock"
	"colock/internal/store"
)

func TestProtocolStatsCountsRules(t *testing.T) {
	p, _ := newProto(t, Options{})
	if p.Stats() != (ProtocolStats{}) {
		t.Fatalf("fresh protocol has non-zero stats: %+v", p.Stats())
	}

	// X on a robot: upward locks on db/segment/relation/cell (rule 5 order),
	// downward propagation into the two referenced effectors (rule 4), each
	// of which needs its own upward chain.
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Requests != 1 {
		t.Errorf("Requests = %d, want 1", st.Requests)
	}
	if st.NodeLocks < 3 {
		t.Errorf("NodeLocks = %d, want ≥ 3 (robot + 2 effectors)", st.NodeLocks)
	}
	if st.DownwardPropagations != 2 {
		t.Errorf("DownwardPropagations = %d, want 2 (e1, e2)", st.DownwardPropagations)
	}
	if st.EntryPointScans < 3 {
		t.Errorf("EntryPointScans = %d, want ≥ 3 (robot + 2 effectors)", st.EntryPointScans)
	}
	if st.UpwardLocks < 6 {
		t.Errorf("UpwardLocks = %d, want ≥ 6 (two root-to-leaf chains)", st.UpwardLocks)
	}
	if st.Rule4PrimeWeakened != 0 || st.NoFollow != 0 {
		t.Errorf("unexpected rule-4'/no-follow counts: %+v", st)
	}
	// The two effectors share db1/seg2 ancestors: the second chain memoizes.
	if st.MemoHits == 0 {
		t.Error("MemoHits = 0, want > 0 (shared ancestor chains)")
	}

	p.ResetStats()
	if p.Stats() != (ProtocolStats{}) {
		t.Errorf("ResetStats left %+v", p.Stats())
	}
}

func TestProtocolStatsRule4PrimeAndNoFollow(t *testing.T) {
	auth := authz.NewTable(false)
	auth.Grant(1, "cells")
	p, _ := newProto(t, Options{Rule4Prime: true, Authorizer: auth})
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Rule4PrimeWeakened != 2 {
		t.Errorf("Rule4PrimeWeakened = %d, want 2 (both effectors demoted)", st.Rule4PrimeWeakened)
	}

	if err := p.LockNoFollow(2, DataNode(store.P("cells", "c2")), lock.X); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.NoFollow != 1 {
		t.Errorf("NoFollow = %d, want 1", st.NoFollow)
	}
	p.Release(1)
	p.Release(2)
}

func TestProtocolWriteMetrics(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockPath(1, store.P("cells", "c1"), lock.S); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	p.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE colock_protocol_ops_total counter",
		`colock_protocol_ops_total{op="requests"} 1`,
		`colock_protocol_ops_total{op="upward_locks"}`,
		`colock_protocol_ops_total{op="downward_propagations"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestUnitKindOfClassifier(t *testing.T) {
	st := store.PaperDatabase()
	nm := NewNamer(st.Catalog(), false)
	kindOf := UnitKindOf(nm)
	cases := map[lock.Resource]string{
		"db1":                                    "database",
		"db1/seg1":                               "segment",
		"db1/seg1/cells":                         "relation",
		"db1/seg1/cells/c1":                      "entry-point",
		"db1/seg1/cells/c1/robots":               "HoLU",
		"db1/seg1/cells/c1/robots/r1":            "HeLU",
		"db1/seg1/cells/c1/robots/r1/trajectory": "BLU",
		"db1/seg1/cells/c1/robots/r1/#attrs":     "BLU",
		"db1/seg1/nosuchrel/x/y/z":               "other",
	}
	for r, want := range cases {
		if got := UnitKindLabels[kindOf(r)]; got != want {
			t.Errorf("UnitKindOf(%q) = %s, want %s", r, got, want)
		}
	}
}
