package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"colock/internal/lock"
	"colock/internal/schema"
	"colock/internal/store"
)

// Property-based protocol tests: over randomly generated databases and lock
// sequences, the protocol must always maintain
//
//	(P1) ancestor intentions: a held lock implies sufficient intention
//	     locks on every ancestor (assertProtocolInvariants);
//	(P2) entry-point coverage: whenever a transaction holds S/X (explicitly
//	     or implicitly) on a node, every entry point reachable from that
//	     node's subtree is held in at least S by the same transaction.

// buildRandomDB creates a small random two-relation database with sharing:
// relation "top" objects reference relation "lib" objects.
func buildRandomDB(t *testing.T, seed int64, tops, libs, refsPer int) *store.Store {
	t.Helper()
	cat := schema.NewCatalog("rdb")
	if err := cat.AddRelation(&schema.Relation{
		Name: "lib", Segment: "s2", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Str()), schema.F("v", schema.Int())),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRelation(&schema.Relation{
		Name: "top", Segment: "s1", Key: "id",
		Type: schema.Tuple(
			schema.F("id", schema.Str()),
			schema.F("items", schema.Set(schema.Tuple(
				schema.F("item_id", schema.Str()),
				schema.F("parts", schema.Set(schema.Ref("lib"))),
			))),
		),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	st := store.New(cat)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < libs; i++ {
		id := fmt.Sprintf("l%d", i)
		if err := st.Insert("lib", id, store.NewTuple().
			Set("id", store.Str(id)).Set("v", store.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tops; i++ {
		id := fmt.Sprintf("t%d", i)
		items := store.NewSet()
		for j := 0; j < 2; j++ {
			parts := store.NewSet()
			for len(parts.IDs()) < refsPer && len(parts.IDs()) < libs {
				lid := fmt.Sprintf("l%d", rng.Intn(libs))
				parts.Add(lid, store.Ref{Relation: "lib", Key: lid})
			}
			iid := fmt.Sprintf("i%d", j)
			items.Add(iid, store.NewTuple().
				Set("item_id", store.Str(iid)).Set("parts", parts))
		}
		if err := st.Insert("top", id, store.NewTuple().
			Set("id", store.Str(id)).Set("items", items)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	return st
}

// randomNode picks a random lockable node of the random database.
func randomNode(rng *rand.Rand, tops, libs int) Node {
	switch rng.Intn(8) {
	case 0:
		return DataNode(store.P("top"))
	case 1:
		return DataNode(store.P("lib"))
	case 2:
		return DataNode(store.P("lib", fmt.Sprintf("l%d", rng.Intn(libs))))
	case 3:
		return DataNode(store.P("top", fmt.Sprintf("t%d", rng.Intn(tops))))
	case 4:
		return DataNode(store.P("top", fmt.Sprintf("t%d", rng.Intn(tops)), "items"))
	case 5:
		return DataNode(store.P("top", fmt.Sprintf("t%d", rng.Intn(tops)), "items", fmt.Sprintf("i%d", rng.Intn(2))))
	case 6:
		return DataNode(store.P("top", fmt.Sprintf("t%d", rng.Intn(tops)), "items", fmt.Sprintf("i%d", rng.Intn(2)), "parts"))
	default:
		return SegmentNode([]string{"s1", "s2"}[rng.Intn(2)])
	}
}

// assertEntryPointCoverage checks property P2 for a transaction.
func assertEntryPointCoverage(t *testing.T, p *Protocol, st *store.Store, txn lock.TxnID) {
	t.Helper()
	for _, h := range p.Manager().HeldLocks(txn) {
		if h.Mode != lock.S && h.Mode != lock.X {
			continue
		}
		n := nodeFromResource(t, p, string(h.Resource))
		entries, err := EntryPointsUnder(st, p.Namer(), n)
		if err != nil {
			t.Fatalf("entry points under %s: %v", h.Resource, err)
		}
		for _, ep := range entries {
			em, err := p.EffectiveMode(txn, DataNode(ep))
			if err != nil {
				t.Fatal(err)
			}
			if !em.Covers(lock.S) {
				t.Errorf("P2 violated: %v on %s but entry point %s only %v",
					h.Mode, h.Resource, ep, em)
			}
		}
	}
}

// nodeFromResource reverses the Namer's naming for the test databases
// (db/segment/relation/...path).
func nodeFromResource(t *testing.T, p *Protocol, res string) Node {
	t.Helper()
	parts := strings.Split(res, "/")
	switch len(parts) {
	case 1:
		return DatabaseNode()
	case 2:
		return SegmentNode(parts[1])
	default:
		return DataNode(store.Path(parts[2:]))
	}
}

func TestProtocolInvariantsProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		const tops, libs = 4, 5
		st := buildRandomDB(t, seed, tops, libs, 2)
		nm := NewNamer(st.Catalog(), false)
		p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))

		txn := lock.TxnID(1)
		ops := int(nOps%12) + 1
		for i := 0; i < ops; i++ {
			n := randomNode(rng, tops, libs)
			mode := []lock.Mode{lock.IS, lock.IX, lock.S, lock.X}[rng.Intn(4)]
			if err := p.Lock(txn, n, mode); err != nil {
				t.Logf("lock %v %v: %v", n, mode, err)
				return false
			}
		}
		assertProtocolInvariants(t, p, txn)
		assertEntryPointCoverage(t, p, st, txn)
		p.Release(txn)
		return p.Manager().LockCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDeEscalationPreservesInvariants: random coarse lock + random keeps,
// then both properties must still hold.
func TestDeEscalationPreservesInvariants(t *testing.T) {
	f := func(seed int64, keepBits uint8) bool {
		const tops, libs = 3, 4
		st := buildRandomDB(t, seed, tops, libs, 2)
		nm := NewNamer(st.Catalog(), false)
		p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})
		rng := rand.New(rand.NewSource(seed ^ 0xface))

		obj := store.P("top", fmt.Sprintf("t%d", rng.Intn(tops)))
		mode := []lock.Mode{lock.S, lock.X}[rng.Intn(2)]
		if err := p.LockPath(1, obj, mode); err != nil {
			return false
		}
		var keep []store.Path
		if keepBits&1 != 0 {
			keep = append(keep, obj.Child("items").Child("i0"))
		}
		if keepBits&2 != 0 {
			keep = append(keep, obj.Child("items").Child("i1").Child("parts"))
		}
		if err := p.DeEscalate(1, DataNode(obj), keep); err != nil {
			return false
		}
		assertProtocolInvariants(t, p, 1)
		assertEntryPointCoverage(t, p, st, 1)
		// The coarse lock is gone.
		res := p.Namer().MustResource(DataNode(obj))
		if got := p.Manager().HeldMode(1, res); got == lock.S || got == lock.X {
			return false
		}
		p.Release(1)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestTwoTxnCompatibilityProperty: two transactions lock random nodes
// sequentially with TryAcquire semantics (skipping conflicts); afterwards no
// node may have incompatible effective modes.
func TestTwoTxnCompatibilityProperty(t *testing.T) {
	const tops, libs = 3, 4
	for seed := int64(0); seed < 15; seed++ {
		st := buildRandomDB(t, seed, tops, libs, 2)
		nm := NewNamer(st.Catalog(), false)
		mgr := lock.NewManager(lock.Options{})
		p := NewProtocol(mgr, st, nm, Options{})
		rng := rand.New(rand.NewSource(seed * 31))

		// Interleave ops of txn 1 and 2; on conflict the op simply blocks —
		// to keep this single-threaded we run each op in a goroutine with
		// the lock manager's TryAcquire... instead we serialize: each op
		// either succeeds immediately or is skipped via a probe.
		for i := 0; i < 10; i++ {
			txn := lock.TxnID(i%2 + 1)
			n := randomNode(rng, tops, libs)
			mode := []lock.Mode{lock.IS, lock.IX, lock.S, lock.X}[rng.Intn(4)]
			if !probeCompatible(p, st, txn, n, mode) {
				continue
			}
			if err := p.Lock(txn, n, mode); err != nil {
				t.Fatalf("seed %d: lock after probe failed: %v", seed, err)
			}
		}
		// Invariant: on every held resource, the granted group is
		// compatible (manager-level) AND effective modes agree.
		for _, h := range mgr.HeldLocks(1) {
			n := nodeFromResource(t, p, string(h.Resource))
			m1, err := p.EffectiveMode(1, n)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := p.EffectiveMode(2, n)
			if err != nil {
				t.Fatal(err)
			}
			if !m1.Compatible(m2) {
				t.Errorf("seed %d: incompatible effective modes on %s: %v vs %v",
					seed, h.Resource, m1, m2)
			}
		}
		mgr.ReleaseAll(1)
		mgr.ReleaseAll(2)
	}
}

// probeCompatible conservatively predicts whether the full protocol lock
// (including ancestors and propagation) would be granted without blocking.
func probeCompatible(p *Protocol, st *store.Store, txn lock.TxnID, n Node, mode lock.Mode) bool {
	check := func(nn Node, m lock.Mode) bool {
		res, err := p.Namer().Resource(nn)
		if err != nil {
			return false
		}
		for holder, hm := range p.Manager().Holders(res) {
			if holder != txn && !m.Compatible(hm) {
				return false
			}
		}
		return true
	}
	anc, err := p.Namer().Ancestors(n)
	if err != nil {
		return false
	}
	for _, a := range anc {
		if !check(a, mode.IntentionFor()) {
			return false
		}
	}
	if !check(n, mode) {
		return false
	}
	if mode == lock.S || mode == lock.X {
		entries, err := EntryPointsUnder(st, p.Namer(), n)
		if err != nil {
			return false
		}
		for _, ep := range entries {
			epAnc, err := p.Namer().Ancestors(DataNode(ep))
			if err != nil {
				return false
			}
			for _, a := range epAnc {
				if !check(a, mode.IntentionFor()) {
					return false
				}
			}
			if !check(DataNode(ep), mode) {
				return false
			}
		}
	}
	return true
}
