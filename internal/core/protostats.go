package core

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"colock/internal/lock"
	"colock/internal/store"
)

// ProtocolStats counts the protocol's rule applications (§4.4.2, rules 1–5
// and rule 4′), quantifying how much implicit propagation the scheme costs
// on top of the explicit requests. All counters are cumulative and safe for
// concurrent use.
type ProtocolStats struct {
	// Requests counts top-level Lock/LockCtx/LockLong/LockNoFollow calls.
	Requests uint64
	// NoFollow counts the subset of Requests that suppressed downward
	// propagation (the §4.5 reference-only optimization).
	NoFollow uint64
	// MemoHits counts resources skipped because the same call had already
	// requested a covering mode (diamond-shaped sharing, reference cycles).
	MemoHits uint64
	// UpwardLocks counts intention locks placed on immediate parents —
	// rules 1–4's requirement serviced in the rule 5 root-to-leaf order,
	// including the implicit upward propagation above entry points.
	UpwardLocks uint64
	// EntryPointScans counts store walks discovering the dependent entry
	// points below a node (the downward half of rules 3 and 4).
	EntryPointScans uint64
	// DownwardPropagations counts entry points recursively locked by
	// downward propagation (rule 3 for S, rule 4 for X).
	DownwardPropagations uint64
	// Rule4PrimeWeakened counts X propagations demoted to S by rule 4′
	// because the transaction lacks modify authorization on the inner unit.
	Rule4PrimeWeakened uint64
	// NodeLocks counts locks acquired on the explicitly requested nodes
	// themselves (Requests minus validation failures, plus recursion
	// targets).
	NodeLocks uint64
	// FastPathHits counts lock requests served by the per-transaction
	// granted-mode cache without a lock-manager round-trip (IS/IX
	// re-acquisitions covered by a grant the manager already made). Cache
	// hits emit no trace span.
	FastPathHits uint64
	// BatchedLocks counts manager acquisitions that went through
	// Manager.AcquireBatch (one latch round per chain) rather than
	// one-at-a-time AcquireCtx calls.
	BatchedLocks uint64
}

// protoCounters is the atomic backing store embedded in Protocol.
type protoCounters struct {
	requests      atomic.Uint64
	noFollow      atomic.Uint64
	memoHits      atomic.Uint64
	upwardLocks   atomic.Uint64
	entryScans    atomic.Uint64
	downward      atomic.Uint64
	rule4Weakened atomic.Uint64
	nodeLocks     atomic.Uint64
	fastPathHits  atomic.Uint64
	batchedLocks  atomic.Uint64
}

func (pc *protoCounters) snapshot() ProtocolStats {
	return ProtocolStats{
		Requests:             pc.requests.Load(),
		NoFollow:             pc.noFollow.Load(),
		MemoHits:             pc.memoHits.Load(),
		UpwardLocks:          pc.upwardLocks.Load(),
		EntryPointScans:      pc.entryScans.Load(),
		DownwardPropagations: pc.downward.Load(),
		Rule4PrimeWeakened:   pc.rule4Weakened.Load(),
		NodeLocks:            pc.nodeLocks.Load(),
		FastPathHits:         pc.fastPathHits.Load(),
		BatchedLocks:         pc.batchedLocks.Load(),
	}
}

func (pc *protoCounters) reset() {
	pc.requests.Store(0)
	pc.noFollow.Store(0)
	pc.memoHits.Store(0)
	pc.upwardLocks.Store(0)
	pc.entryScans.Store(0)
	pc.downward.Store(0)
	pc.rule4Weakened.Store(0)
	pc.nodeLocks.Store(0)
	pc.fastPathHits.Store(0)
	pc.batchedLocks.Store(0)
}

// Stats returns a snapshot of the protocol's rule counters.
func (p *Protocol) Stats() ProtocolStats { return p.counters.snapshot() }

// ResetStats zeroes the rule counters.
func (p *Protocol) ResetStats() { p.counters.reset() }

// WriteMetrics writes the rule counters in Prometheus text format, for
// composition with obs.Handler's extra writers.
func (p *Protocol) WriteMetrics(w io.Writer) {
	st := p.Stats()
	fmt.Fprintf(w, "# HELP colock_protocol_ops_total Protocol rule applications (rules 1-5, 4').\n")
	fmt.Fprintf(w, "# TYPE colock_protocol_ops_total counter\n")
	for _, kv := range []struct {
		name string
		val  uint64
	}{
		{"requests", st.Requests},
		{"no_follow", st.NoFollow},
		{"memo_hits", st.MemoHits},
		{"upward_locks", st.UpwardLocks},
		{"entry_point_scans", st.EntryPointScans},
		{"downward_propagations", st.DownwardPropagations},
		{"rule4prime_weakened", st.Rule4PrimeWeakened},
		{"node_locks", st.NodeLocks},
		{"fast_path_hits", st.FastPathHits},
		{"batched_locks", st.BatchedLocks},
	} {
		fmt.Fprintf(w, "colock_protocol_ops_total{op=%q} %d\n", kv.name, kv.val)
	}
}

// UnitKindLabels is the lockable-unit-kind dimension UnitKindOf classifies
// into, for use as obs.Options.KindLabels.
var UnitKindLabels = []string{"database", "segment", "relation", "entry-point", "BLU", "HoLU", "HeLU", "other"}

// UnitKindOf returns an obs classifier that maps lock resource names back
// to the paper's lockable-unit kinds via the namer's schema walk: the first
// three path levels are the database, segment and relation, a
// complex-object root is an entry point, and deeper nodes classify as
// BLU/HoLU/HeLU by the §4.3 derivation rules. Use with obs.Options:
//
//	obs.Options{KindLabels: core.UnitKindLabels, KindOf: core.UnitKindOf(nm)}
func UnitKindOf(nm *Namer) func(lock.Resource) int {
	return func(r lock.Resource) int {
		parts := strings.Split(string(r), "/")
		switch len(parts) {
		case 1:
			return 0 // database
		case 2:
			return 1 // segment
		case 3:
			return 2 // relation
		case 4:
			return 3 // complex-object root: the entry-point granularity
		}
		if parts[len(parts)-1] == bluLabel {
			return 4 // coalesced per-level BLU (footnote 3)
		}
		info, err := nm.Classify(store.Path(parts[2:]))
		if err != nil {
			return len(UnitKindLabels) - 1
		}
		switch info.Kind {
		case BLU:
			return 4
		case HoLU:
			return 5
		case HeLU:
			return 6
		}
		return len(UnitKindLabels) - 1
	}
}
