package core

import (
	"fmt"
	"testing"
	"time"

	"colock/internal/lock"
	"colock/internal/schema"
	"colock/internal/store"
)

// Recursive complex objects — the paper's §5 extension. The catalog opts in
// via SetRecursive; the protocol's propagation memo and the unit analysis
// are cycle-safe.

// bomStore builds a parts relation that references itself, with the given
// edges (parent → children).
func bomStore(t *testing.T, edges map[string][]string) *store.Store {
	t.Helper()
	cat := schema.NewCatalog("plm")
	cat.SetRecursive(true)
	if err := cat.AddRelation(&schema.Relation{
		Name: "parts", Segment: "s1", Key: "part_id",
		Type: schema.Tuple(
			schema.F("part_id", schema.Str()),
			schema.F("name", schema.Str()),
			schema.F("subparts", schema.Set(schema.Ref("parts"))),
		),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	st := store.New(cat)
	for id, children := range edges {
		subs := store.NewSet()
		for _, c := range children {
			subs.Add(c, store.Ref{Relation: "parts", Key: c})
		}
		if err := st.Insert("parts", id, store.NewTuple().
			Set("part_id", store.Str(id)).
			Set("name", store.Str("n-"+id)).
			Set("subparts", subs)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRecursiveSchemaValidation(t *testing.T) {
	cat := schema.NewCatalog("db")
	cat.SetRecursive(true)
	if !cat.Recursive() {
		t.Error("Recursive() false")
	}
	_ = cat.AddRelation(&schema.Relation{
		Name: "parts", Segment: "s", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Str()), schema.F("sub", schema.Set(schema.Ref("parts")))),
	})
	if err := cat.Validate(); err != nil {
		t.Fatalf("recursive catalog rejected: %v", err)
	}
	// Without the opt-in the same schema is rejected (paper default).
	cat.SetRecursive(false)
	if err := cat.Validate(); err == nil {
		t.Error("recursion accepted without opt-in")
	}
}

// TestRecursiveSelfReferenceTerminates: a part that references itself.
func TestRecursiveSelfReferenceTerminates(t *testing.T) {
	st := bomStore(t, map[string][]string{"a1": {"a1"}})
	nm := NewNamer(st.Catalog(), false)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})
	done := make(chan error, 1)
	go func() { done <- p.LockPath(1, store.P("parts", "a1"), lock.X) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("self-reference did not terminate")
	}
	got := heldMap(t, p, 1)
	if got["plm/s1/parts/a1"] != lock.X {
		t.Errorf("held = %v", got)
	}
	assertProtocolInvariants(t, p, 1)
}

// TestRecursiveCycleLocksWholeCycle: a1 → a2 → a1; X on a1 X-locks both.
func TestRecursiveCycleLocksWholeCycle(t *testing.T) {
	st := bomStore(t, map[string][]string{"a1": {"a2"}, "a2": {"a1"}})
	nm := NewNamer(st.Catalog(), false)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})
	if err := p.LockPath(1, store.P("parts", "a1"), lock.X); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if got["plm/s1/parts/a1"] != lock.X || got["plm/s1/parts/a2"] != lock.X {
		t.Errorf("cycle not fully locked: %v", got)
	}
	assertProtocolInvariants(t, p, 1)

	// From-the-side: a direct reader of a2 is blocked.
	blocked := make(chan error, 1)
	go func() { blocked <- p.LockPath(2, store.P("parts", "a2"), lock.S) }()
	select {
	case err := <-blocked:
		t.Fatalf("cycle member not protected: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	p.Release(1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	p.Release(2)
}

// TestRecursiveDeepChainClosure: a linear BOM chain of depth 12 locks the
// whole transitive closure.
func TestRecursiveDeepChainClosure(t *testing.T) {
	edges := map[string][]string{}
	const depth = 12
	for i := 0; i < depth-1; i++ {
		edges[fmt.Sprintf("p%d", i)] = []string{fmt.Sprintf("p%d", i+1)}
	}
	edges[fmt.Sprintf("p%d", depth-1)] = nil
	st := bomStore(t, edges)
	nm := NewNamer(st.Catalog(), false)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})
	if err := p.LockPath(1, store.P("parts", "p0"), lock.S); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	for i := 0; i < depth; i++ {
		if got[fmt.Sprintf("plm/s1/parts/p%d", i)] != lock.S {
			t.Errorf("p%d not locked", i)
		}
	}
}

// TestRecursiveRelationLockSkipsInternalTargets: S on the whole relation
// covers every part implicitly — no per-object entry-point locks.
func TestRecursiveRelationLockSkipsInternalTargets(t *testing.T) {
	st := bomStore(t, map[string][]string{"a1": {"a2"}, "a2": {"a1"}})
	nm := NewNamer(st.Catalog(), false)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})
	if err := p.LockPath(1, store.P("parts"), lock.S); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if len(got) != 3 { // db, s1, parts — nothing below
		t.Errorf("relation lock propagated into its own objects: %v", got)
	}
}

// TestRecursiveComputeUnitsTerminates: the unit analysis over a cycle
// terminates and reports each object once.
func TestRecursiveComputeUnitsTerminates(t *testing.T) {
	st := bomStore(t, map[string][]string{"a1": {"a2"}, "a2": {"a3"}, "a3": {"a1"}})
	nm := NewNamer(st.Catalog(), false)
	u, err := ComputeUnits(st, nm, store.P("parts", "a1"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, iu := range u.Inner {
		seen[iu.EntryPoint.String()]++
	}
	for ep, n := range seen {
		if n != 1 {
			t.Errorf("entry point %s reported %d times", ep, n)
		}
	}
	// a2 at depth 1, a3 at depth 2, and the cycle-closing a1 itself.
	if seen["parts/a2"] != 1 || seen["parts/a3"] != 1 {
		t.Errorf("inner units = %v", seen)
	}
}

// TestRecursiveSharedSubtree: a diamond BOM (two parents share a subpart)
// locks the shared part once and keeps readers of the sibling parent
// concurrent under rule 4'-style S propagation.
func TestRecursiveSharedSubtree(t *testing.T) {
	st := bomStore(t, map[string][]string{
		"top1": {"shared"}, "top2": {"shared"}, "shared": nil,
	})
	nm := NewNamer(st.Catalog(), false)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})
	if err := p.LockPath(1, store.P("parts", "top1"), lock.S); err != nil {
		t.Fatal(err)
	}
	// A second reader via the other parent proceeds (S ∥ S on "shared").
	done := make(chan error, 1)
	go func() { done <- p.LockPath(2, store.P("parts", "top2"), lock.S) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sibling reader blocked")
	}
	if p.Manager().Stats().Waits != 0 {
		t.Error("unexpected waits")
	}
}
