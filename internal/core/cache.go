package core

import (
	"sync"

	"colock/internal/lock"
)

// The per-transaction granted-mode cache: the fast path that makes repeated
// intention locking nearly free. The protocol's rule 5 re-acquires the whole
// ancestor spine for every fine-grained lock; after the first acquisition
// the manager would answer every one of those requests with a regrant. The
// cache remembers what the manager already granted, so a covering IS/IX
// re-request skips the manager (shard latch, entry lookup, tracer) entirely.
//
// Correctness rests on three rules:
//
//   - Only grants the manager actually made are noted, and only AFTER the
//     manager returned success.
//   - Cache hits serve IS/IX requests only. S/X node locks always run the
//     full protocol, because granting S/X implies downward propagation over
//     the store's CURRENT reference structure — a cached answer would skip
//     the re-scan. (Cached S/X grants still serve later IS/IX requests:
//     the held coarse mode covers the intention modes.)
//   - Any operation that can retract a grant — Release, ReleaseAll,
//     Downgrade (and therefore DeEscalate and Unlock, which are built on
//     them) — drops the transaction's ENTIRE cache, via the manager's
//     OnRelease callback. Whole-txn invalidation instead of per-resource
//     bookkeeping keeps the hook O(1); early release is rare, the fast path
//     is not.
//
// A durable ("long") request is never served by a non-durable cached grant:
// covers demands the cached entry be durable too, so the manager sees the
// request and upgrades the held lock.
//
// Concurrency: a Txn is used by one goroutine at a time (see internal/txn),
// so a transaction's reads and notes do not race with each other; the
// per-transaction mutex makes the cache safe anyway against cross-goroutine
// invalidation (e.g. an operator releasing a foreign transaction's locks).

// grantCacheShards stripes the txn→cache registry; TxnIDs are sequential,
// so the low bits spread perfectly.
const grantCacheShards = 64

// grantCache maps transactions to their cached granted modes.
type grantCache struct {
	shards [grantCacheShards]grantCacheShard
}

type grantCacheShard struct {
	mu   sync.Mutex
	txns map[lock.TxnID]*txnGrants
}

// txnGrants is one transaction's cached grants. After invalidation the
// struct is detached: covers misses and note no-ops, so a lock call that
// raced the invalidation falls through to the manager (correct, just slow).
type txnGrants struct {
	mu       sync.Mutex
	detached bool
	m        map[lock.Resource]cachedGrant
}

type cachedGrant struct {
	mode    lock.Mode
	durable bool
}

func newGrantCache() *grantCache {
	gc := &grantCache{}
	for i := range gc.shards {
		gc.shards[i].txns = make(map[lock.TxnID]*txnGrants)
	}
	return gc
}

// get returns txn's cache, creating it on first use.
func (gc *grantCache) get(txn lock.TxnID) *txnGrants {
	s := &gc.shards[uint64(txn)%grantCacheShards]
	s.mu.Lock()
	tg := s.txns[txn]
	if tg == nil {
		tg = &txnGrants{m: make(map[lock.Resource]cachedGrant, 16)}
		s.txns[txn] = tg
	}
	s.mu.Unlock()
	return tg
}

// invalidate drops txn's entire cache. Registered as the lock manager's
// OnRelease callback, so it runs (with no manager latch held) after every
// Release, ReleaseAll and Downgrade that retracted coverage.
func (gc *grantCache) invalidate(txn lock.TxnID) {
	s := &gc.shards[uint64(txn)%grantCacheShards]
	s.mu.Lock()
	tg := s.txns[txn]
	delete(s.txns, txn)
	s.mu.Unlock()
	if tg != nil {
		tg.mu.Lock()
		tg.detached = true
		tg.m = nil
		tg.mu.Unlock()
	}
}

// covers reports whether the cache holds a grant covering mode on r. A
// durable request requires a durable cached grant.
func (tg *txnGrants) covers(r lock.Resource, mode lock.Mode, durable bool) bool {
	tg.mu.Lock()
	g, ok := tg.m[r]
	tg.mu.Unlock()
	return ok && g.mode.Covers(mode) && (!durable || g.durable)
}

// note records a grant the manager just made. Nil-safe (fast path disabled)
// and a no-op on a detached cache.
func (tg *txnGrants) note(r lock.Resource, mode lock.Mode, durable bool) {
	if tg == nil {
		return
	}
	tg.mu.Lock()
	if !tg.detached {
		g := tg.m[r]
		tg.m[r] = cachedGrant{mode: lock.Sup(g.mode, mode), durable: g.durable || durable}
	}
	tg.mu.Unlock()
}
