package core

import (
	"fmt"
	"sort"

	"colock/internal/store"
)

// Unit analysis (§4.4.1, Figure 6). A complex object's instance graph
// decomposes into one outer unit (its non-shared nodes plus the relation,
// segment and database ancestors) and the inner units it references (shared
// complex objects of other relations, recursively). The root of an inner
// unit is its entry point; a unit plus the immediate parents of its root up
// to the database node forms its superunit.

// InnerUnit describes one inner unit reachable from an object.
type InnerUnit struct {
	// EntryPoint is the root of the inner unit, e.g. effectors/e1.
	EntryPoint store.Path
	// Nodes are all instance nodes of the unit (entry point, its attribute
	// nodes, down to and including reference BLUs), in preorder.
	Nodes []store.Path
	// Superunit lists the immediate parents of the entry point up to and
	// including the database node, leaf-to-root: relation, segment,
	// database.
	Superunit []Node
	// ReferencedFrom lists the reference-BLU paths pointing at this entry
	// point from the analyzed object's units (sorted).
	ReferencedFrom []store.Path
	// Depth is 1 for units referenced directly from the outer unit, 2 for
	// units referenced from depth-1 units ("common data may again contain
	// common data", §2), and so on.
	Depth int
}

// ObjectUnits is the unit decomposition of one complex object.
type ObjectUnits struct {
	// Object is the complex-object root path, e.g. cells/c1.
	Object store.Path
	// OuterNodes are the nodes of the outer unit: database, segment,
	// relation, then every instance node of the object down to and
	// including reference BLUs (preorder).
	OuterNodes []Node
	// Inner are the inner units, sorted by (depth, entry point).
	Inner []InnerUnit
}

// ComputeUnits decomposes the complex object at path (relation/key) into its
// outer unit and all transitively reachable inner units.
func ComputeUnits(st *store.Store, nm *Namer, object store.Path) (*ObjectUnits, error) {
	if len(object) != 2 {
		return nil, fmt.Errorf("core: %q is not a complex-object path", object)
	}
	rel := nm.cat.Relation(object.Relation())
	if rel == nil {
		return nil, fmt.Errorf("core: unknown relation %q", object.Relation())
	}
	root := st.Get(object.Relation(), object.Key())
	if root == nil {
		return nil, fmt.Errorf("core: no object %q", object)
	}

	u := &ObjectUnits{Object: object.Clone()}
	u.OuterNodes = append(u.OuterNodes,
		DatabaseNode(), SegmentNode(rel.Segment), DataNode(store.P(object.Relation())))

	nodes, refs := unitNodes(st, object)
	for _, p := range nodes {
		u.OuterNodes = append(u.OuterNodes, DataNode(p))
	}

	// Breadth-first over referenced entry points, depth by depth.
	type pending struct {
		entry store.Path
		from  store.Path
	}
	seen := make(map[string]*InnerUnit)
	frontier := refs
	depth := 1
	for len(frontier) > 0 {
		var next []store.RefAt
		for _, r := range frontier {
			entry := store.P(r.Target.Relation, r.Target.Key)
			key := entry.String()
			if iu := seen[key]; iu != nil {
				iu.ReferencedFrom = append(iu.ReferencedFrom, r.Path.Clone())
				continue
			}
			trel := nm.cat.Relation(r.Target.Relation)
			if trel == nil {
				return nil, fmt.Errorf("core: reference at %q targets unknown relation %q", r.Path, r.Target.Relation)
			}
			if st.Get(r.Target.Relation, r.Target.Key) == nil {
				return nil, fmt.Errorf("core: dangling reference at %q to %q", r.Path, entry)
			}
			inNodes, inRefs := unitNodes(st, entry)
			iu := &InnerUnit{
				EntryPoint: entry,
				Nodes:      inNodes,
				Superunit: []Node{
					DataNode(store.P(r.Target.Relation)),
					SegmentNode(trel.Segment),
					DatabaseNode(),
				},
				ReferencedFrom: []store.Path{r.Path.Clone()},
				Depth:          depth,
			}
			seen[key] = iu
			next = append(next, inRefs...)
		}
		frontier = next
		depth++
	}

	for _, iu := range seen {
		sort.Slice(iu.ReferencedFrom, func(i, j int) bool {
			return iu.ReferencedFrom[i].String() < iu.ReferencedFrom[j].String()
		})
		u.Inner = append(u.Inner, *iu)
	}
	sort.Slice(u.Inner, func(i, j int) bool {
		if u.Inner[i].Depth != u.Inner[j].Depth {
			return u.Inner[i].Depth < u.Inner[j].Depth
		}
		return u.Inner[i].EntryPoint.String() < u.Inner[j].EntryPoint.String()
	})
	return u, nil
}

// unitNodes enumerates the instance nodes of the unit rooted at the given
// complex-object path: the root and all descendants in preorder, stopping at
// (but including) reference BLUs. It also returns the references found at
// the unit's boundary.
func unitNodes(st *store.Store, object store.Path) ([]store.Path, []store.RefAt) {
	var nodes []store.Path
	var refs []store.RefAt
	v, err := st.LookupClone(object)
	if err != nil {
		return nil, nil
	}
	var rec func(val store.Value, at store.Path)
	rec = func(val store.Value, at store.Path) {
		nodes = append(nodes, at.Clone())
		switch x := val.(type) {
		case store.Ref:
			refs = append(refs, store.RefAt{Path: at.Clone(), Target: x})
		case *store.Tuple:
			for _, n := range x.FieldNames() {
				rec(x.Get(n), at.Child(n))
			}
		case *store.Set:
			for _, id := range x.IDs() {
				rec(x.Get(id), at.Child(id))
			}
		case *store.List:
			for _, id := range x.IDs() {
				rec(x.Get(id), at.Child(id))
			}
		}
	}
	rec(v, object)
	return nodes, refs
}

// EntryPointsUnder returns the entry points of the inner units directly
// accessible via the node n: the distinct targets of all references in n's
// subtree, excluding targets that are themselves descendants of n in the
// lock hierarchy (those are already covered implicitly by a lock on n).
// The result is sorted for deterministic lock-acquisition order.
//
// This is the scan the protocol performs for implicit downward propagation;
// §4.4.2.1 argues it is cheap because "the affected inner units have to be
// accessed anyway to read the data during query execution".
func EntryPointsUnder(st *store.Store, nm *Namer, n Node) ([]store.Path, error) {
	var refs []store.RefAt
	switch n.Level {
	case LevelDatabase:
		// The database is the root of every superunit: everything is
		// implicitly covered, no propagation needed.
		return nil, nil
	case LevelSegment:
		for _, rel := range nm.cat.Relations() {
			if rel.Segment != n.Segment {
				continue
			}
			rs, err := relationRefs(st, rel.Name)
			if err != nil {
				return nil, err
			}
			refs = append(refs, rs...)
		}
		// Exclude targets stored in the same segment: they are descendants
		// of the segment node and implicitly covered.
		filtered := refs[:0]
		for _, r := range refs {
			trel := nm.cat.Relation(r.Target.Relation)
			if trel == nil {
				return nil, fmt.Errorf("core: unknown relation %q", r.Target.Relation)
			}
			if trel.Segment != n.Segment {
				filtered = append(filtered, r)
			}
		}
		refs = filtered
	case LevelRelation:
		rs, err := relationRefs(st, n.Path.Relation())
		if err != nil {
			return nil, err
		}
		refs = rs
	case LevelData:
		rs, err := st.Refs(n.Path)
		if err != nil {
			// A schema-valid path whose instance does not exist (yet) has no
			// dependent inner units — this happens when locking the resource
			// of an object about to be inserted.
			if nm.cat.Relation(n.Path.Relation()) == nil {
				return nil, err
			}
			return nil, nil
		}
		refs = rs
	}
	seen := make(map[string]bool)
	var out []store.Path
	for _, r := range refs {
		p := store.P(r.Target.Relation, r.Target.Key)
		// Targets inside the requested node's own subtree are already
		// implicitly covered by a lock on n — possible only with recursive
		// complex objects (a relation or object referencing itself).
		if (n.Level == LevelRelation || n.Level == LevelData) && p.HasPrefix(n.Path) {
			continue
		}
		if k := p.String(); !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

func relationRefs(st *store.Store, relation string) ([]store.RefAt, error) {
	var out []store.RefAt
	for _, key := range st.Keys(relation) {
		rs, err := st.Refs(store.P(relation, key))
		if err != nil {
			return nil, err
		}
		out = append(out, rs...)
	}
	return out, nil
}
