package core_test

import (
	"fmt"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/schema"
	"colock/internal/store"
)

// ExampleDeriveGraph derives the object-specific lock graph of the paper's
// "effectors" relation (the right half of Figure 5).
func ExampleDeriveGraph() {
	cat := schema.PaperSchema()
	g, err := core.DeriveGraph(cat, "effectors")
	if err != nil {
		panic(err)
	}
	fmt.Print(g.Render())
	// Output:
	// HeLU (Database "db1")
	//   HeLU (Segment "seg2")
	//     HoLU (Relation "effectors")
	//       HeLU (C.O. "effectors")
	//         BLU ("eff_id")
	//         BLU ("tool")
}

// ExampleProtocol_Lock reproduces the paper's Figure 7 lock set for query
// Q2: X on robot r1 with rule 4' S-locking the referenced effectors.
func ExampleProtocol_Lock() {
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	auth := authz.NewTable(false)
	auth.Grant(1, "cells") // may modify cells, not the effectors library
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm,
		core.Options{Rule4Prime: true, Authorizer: auth})

	if err := proto.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		panic(err)
	}
	for _, h := range proto.Manager().HeldLocks(1) {
		fmt.Printf("%-3s %s\n", h.Mode, h.Resource)
	}
	// Output:
	// IX  db1
	// IX  db1/seg1
	// IX  db1/seg1/cells
	// IX  db1/seg1/cells/c1
	// IX  db1/seg1/cells/c1/robots
	// IS  db1/seg2
	// IS  db1/seg2/effectors
	// S   db1/seg2/effectors/e1
	// S   db1/seg2/effectors/e2
	// X   db1/seg1/cells/c1/robots/r1
}

// ExamplePlanQuery shows the §4.5 anticipated escalation: a full scan of a
// large collection is planned as one collection lock.
func ExamplePlanQuery() {
	st := store.PaperDatabase()
	st.Catalog().Stats().SetCard("cells", 100)
	st.Catalog().Stats().SetCard("cells.c_objects", 500)

	spec := core.QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops:        []core.Hop{{Attrs: []string{"c_objects"}, Selectivity: 1}},
		Access:      core.AccessRead,
	}
	plan, err := core.PlanQuery(st.Catalog(), spec, core.PlannerOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(plan)
	// Output:
	// plan{read S at collection c_objects, ~1.0 locks (target element c_objects ~500.0), escalated 1}
}

// ExampleComputeUnits decomposes the paper's cell c1 into its units
// (Figure 6): the shared effectors are inner units with entry points.
func ExampleComputeUnits() {
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	u, err := core.ComputeUnits(st, nm, store.P("cells", "c1"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("outer unit: %d nodes\n", len(u.OuterNodes))
	for _, iu := range u.Inner {
		fmt.Printf("inner unit %s referenced %d time(s)\n", iu.EntryPoint, len(iu.ReferencedFrom))
	}
	// Output:
	// outer unit: 22 nodes
	// inner unit effectors/e1 referenced 1 time(s)
	// inner unit effectors/e2 referenced 2 time(s)
	// inner unit effectors/e3 referenced 1 time(s)
}
