// Package core implements the paper's primary contribution (Herrmann,
// Dadam, Küspert, Roman, Schlageter: "A Lock Technique for Disjoint and
// Non-Disjoint Complex Objects", EDBT 1990):
//
//   - the general lock graph for complex objects with its three kinds of
//     lockable units — BLU, HoLU, HeLU (§4.2, Figure 4);
//   - object-specific lock graphs derived automatically from relation
//     schemas (§4.3, Figure 5);
//   - the unit analysis: outer and inner units, entry points, immediate
//     parents and superunits (§4.4.1, Figure 6);
//   - the lock protocol with rules 1–5 and the authorization-aware rule 4′,
//     including implicit upward and downward propagation (§4.4.2);
//   - the determination of "optimal" lock requests during query analysis by
//     anticipating lock escalations, stored in query-specific lock graphs
//     (§4.5, after HDKS89).
package core

import (
	"fmt"
	"strings"
	"sync"

	"colock/internal/lock"
	"colock/internal/schema"
	"colock/internal/store"
)

// LUKind classifies a lockable unit per the general lock graph (Figure 4).
type LUKind uint8

const (
	// BLU is a basic lockable unit: an atomic attribute value or a
	// reference to common data — the smallest lockable units.
	BLU LUKind = iota
	// HoLU is a homogeneous lockable unit: data of a single type, i.e. a
	// set or a list (including relations, which are sets of complex
	// objects).
	HoLU
	// HeLU is a heterogeneous lockable unit: data composed of different
	// types, i.e. a (complex) tuple. Database and segment nodes are HeLUs
	// (§4.2: "database can be regarded as a HeLU, segments as well").
	HeLU
)

// String returns the paper's abbreviation.
func (k LUKind) String() string {
	switch k {
	case BLU:
		return "BLU"
	case HoLU:
		return "HoLU"
	case HeLU:
		return "HeLU"
	}
	return fmt.Sprintf("LUKind(%d)", uint8(k))
}

// Level identifies where in the lock hierarchy a node lives.
type Level uint8

const (
	// LevelDatabase is the root of every lock hierarchy.
	LevelDatabase Level = iota
	// LevelSegment is a storage segment.
	LevelSegment
	// LevelRelation is a relation node.
	LevelRelation
	// LevelData is a node within a complex object (from the complex-object
	// root tuple downwards), addressed by a store.Path of length ≥ 2.
	LevelData
)

// Node addresses one lockable unit instance: the database, a segment, or a
// data path rooted at a relation.
type Node struct {
	Level   Level
	Segment string     // for LevelSegment
	Path    store.Path // for LevelRelation (len 1) and LevelData (len ≥ 2)
}

// DatabaseNode returns the database node.
func DatabaseNode() Node { return Node{Level: LevelDatabase} }

// SegmentNode returns the node of the named segment.
func SegmentNode(seg string) Node { return Node{Level: LevelSegment, Segment: seg} }

// DataNode returns the node addressed by a store path (relation node for a
// single-segment path).
func DataNode(p store.Path) Node {
	if len(p) == 1 {
		return Node{Level: LevelRelation, Path: p}
	}
	return Node{Level: LevelData, Path: p}
}

// Equal reports whether two nodes address the same lockable unit.
func (n Node) Equal(o Node) bool {
	return n.Level == o.Level && n.Segment == o.Segment && n.Path.Equal(o.Path)
}

// String renders the node for diagnostics.
func (n Node) String() string {
	switch n.Level {
	case LevelDatabase:
		return "<database>"
	case LevelSegment:
		return "segment " + n.Segment
	default:
		return n.Path.String()
	}
}

// Namer maps instance nodes to lock.Resource names. Resource names are the
// slash-joined immediate-parent chains — database/segment/relation/…path —
// so that a resource's prefixes are exactly its immediate parents: "outer
// and inner units as well as superunits have hierarchical structure"
// (§4.4.1).
type Namer struct {
	cat *schema.Catalog
	// coalesceBLUs implements the paper's footnote 3: atomic non-reference
	// attributes of one tuple level share a single BLU ("obj_id and
	// obj_name could form one BLU") instead of one BLU per attribute.
	coalesceBLUs bool

	// The name cache: every concrete data path named once keeps its computed
	// resource string, root-to-leaf ancestor resource chain, and schema
	// classification, so the naming hot path (protocol upward locking) does
	// no string building and no schema walk after the first visit. Safe
	// because relation schemas are add-only (a relation, once in the catalog,
	// is never removed or retyped), so a computed name can never go stale;
	// an unknown-relation error is NOT cached, since DDL may add the
	// relation later. Size is bounded by the number of distinct paths named
	// — the same scale as the lock table itself.
	//
	// dbRes and dbAnc are precomputed; segs caches segment resources; paths
	// is keyed by an fnv-1a hash of the path segments with per-bucket
	// collision lists, so a cache hit allocates nothing.
	nocache bool
	dbRes   lock.Resource
	dbAnc   []lock.Resource
	mu      sync.RWMutex
	segs    map[string]lock.Resource
	paths   map[uint64][]*nameEntry
}

// nameEntry is the cached naming of one concrete data path.
type nameEntry struct {
	path []string        // owned copy of the path segments (cache key)
	res  lock.Resource   // resource name (after BLU coalescing)
	anc  []lock.Resource // ancestor chain, root to leaf; shared, read-only
	info NodeInfo
	// infoErr is the (deterministic) classification error for paths whose
	// relation exists but whose shape is invalid; Classify returns it, and
	// Resource does too when coalescing needed the classification.
	infoErr error
}

// NewNamer returns a Namer over the catalog. coalesceBLUs selects the
// footnote-3 BLU granularity (one BLU per tuple level) instead of one BLU
// per atomic attribute.
func NewNamer(cat *schema.Catalog, coalesceBLUs bool) *Namer {
	nm := &Namer{cat: cat, coalesceBLUs: coalesceBLUs}
	nm.dbRes = lock.Resource(cat.Database)
	nm.dbAnc = []lock.Resource{nm.dbRes}
	nm.segs = make(map[string]lock.Resource)
	nm.paths = make(map[uint64][]*nameEntry)
	return nm
}

// DisableCache turns the name cache off: every Resource/Classify call
// recomputes from scratch, as the pre-cache implementation did. It exists as
// the benchmark baseline (lockbench -hotbench) and must be called before the
// namer is shared between goroutines.
func (nm *Namer) DisableCache() { nm.nocache = true }

// pathHash is fnv-1a over the path's segments, with a separator byte so
// ["ab","c"] and ["a","bc"] hash apart.
func pathHash(p store.Path) uint64 {
	h := uint64(14695981039346656037)
	for _, seg := range p {
		for i := 0; i < len(seg); i++ {
			h ^= uint64(seg[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return h
}

func segsEqual(a []string, b store.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// entryFor returns the cached naming of p, computing and inserting it on
// first use. Unknown-relation errors are returned without caching.
func (nm *Namer) entryFor(p store.Path) (*nameEntry, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("core: empty path")
	}
	h := pathHash(p)
	nm.mu.RLock()
	for _, e := range nm.paths[h] {
		if segsEqual(e.path, p) {
			nm.mu.RUnlock()
			return e, nil
		}
	}
	nm.mu.RUnlock()
	e, err := nm.buildEntry(p)
	if err != nil {
		return nil, err
	}
	nm.mu.Lock()
	for _, o := range nm.paths[h] {
		if segsEqual(o.path, p) {
			nm.mu.Unlock()
			return o, nil
		}
	}
	nm.paths[h] = append(nm.paths[h], e)
	nm.mu.Unlock()
	return e, nil
}

// buildEntry computes a nameEntry from the schema (the slow path, once per
// distinct path).
func (nm *Namer) buildEntry(p store.Path) (*nameEntry, error) {
	rel := nm.cat.Relation(p.Relation())
	if rel == nil {
		return nil, fmt.Errorf("core: unknown relation %q", p.Relation())
	}
	e := &nameEntry{path: append([]string(nil), p...)}
	e.info, e.infoErr = nm.classifyUncached(p)
	db := nm.cat.Database
	named := p
	if nm.coalesceBLUs && len(p) >= 3 && e.infoErr == nil && e.info.Kind == BLU && !e.info.IsRef {
		named = p.Parent().Child(bluLabel)
	}
	if len(p) == 1 {
		e.res = lock.Resource(db + "/" + rel.Segment + "/" + rel.Name)
	} else {
		e.res = lock.Resource(db + "/" + rel.Segment + "/" + strings.Join([]string(named), "/"))
	}
	e.anc = make([]lock.Resource, 0, len(p)+1)
	e.anc = append(e.anc, nm.dbRes, nm.segRes(rel.Segment))
	pre := db + "/" + rel.Segment
	for i := 0; i < len(p)-1; i++ {
		pre = pre + "/" + p[i]
		e.anc = append(e.anc, lock.Resource(pre))
	}
	return e, nil
}

// segRes returns the (cached) resource name of a segment.
func (nm *Namer) segRes(seg string) lock.Resource {
	if nm.nocache {
		return lock.Resource(nm.cat.Database + "/" + seg)
	}
	nm.mu.RLock()
	r, ok := nm.segs[seg]
	nm.mu.RUnlock()
	if ok {
		return r
	}
	r = lock.Resource(nm.cat.Database + "/" + seg)
	nm.mu.Lock()
	nm.segs[seg] = r
	nm.mu.Unlock()
	return r
}

// chain returns the resource name of n together with its ancestor resources
// in root-to-leaf order — the protocol's per-lock naming, served from the
// cache with zero allocations after the first visit. The returned slice is
// shared and must not be modified.
func (nm *Namer) chain(n Node) (lock.Resource, []lock.Resource, error) {
	switch n.Level {
	case LevelDatabase:
		return nm.dbRes, nil, nil
	case LevelSegment:
		return nm.segRes(n.Segment), nm.dbAnc, nil
	}
	if nm.nocache {
		res, err := nm.Resource(n)
		if err != nil {
			return "", nil, err
		}
		ancNodes, err := nm.Ancestors(n)
		if err != nil {
			return "", nil, err
		}
		anc := make([]lock.Resource, len(ancNodes))
		for i, a := range ancNodes {
			if anc[i], err = nm.Resource(a); err != nil {
				return "", nil, err
			}
		}
		return res, anc, nil
	}
	e, err := nm.entryFor(n.Path)
	if err != nil {
		return "", nil, err
	}
	if nm.coalesceBLUs && len(n.Path) >= 3 && e.infoErr != nil {
		return "", nil, e.infoErr
	}
	return e.res, e.anc, nil
}

// Catalog returns the catalog the namer was built over.
func (nm *Namer) Catalog() *schema.Catalog { return nm.cat }

// blulabel is the synthetic path segment naming a coalesced per-level BLU.
const bluLabel = "#attrs"

// Resource returns the lock resource name for a node. Data-path names are
// served from the name cache (zero allocations after a path's first visit).
func (nm *Namer) Resource(n Node) (lock.Resource, error) {
	switch n.Level {
	case LevelDatabase:
		return nm.dbRes, nil
	case LevelSegment:
		return nm.segRes(n.Segment), nil
	}
	if nm.nocache {
		return nm.resourceUncached(n)
	}
	e, err := nm.entryFor(n.Path)
	if err != nil {
		return "", err
	}
	if nm.coalesceBLUs && len(n.Path) >= 3 && e.infoErr != nil {
		// Coalescing needed the classification (pre-cache behavior: the
		// Classify error surfaced through Resource).
		return "", e.infoErr
	}
	return e.res, nil
}

// resourceUncached is the pre-cache naming (DisableCache mode).
func (nm *Namer) resourceUncached(n Node) (lock.Resource, error) {
	db := nm.cat.Database
	rel := nm.cat.Relation(n.Path.Relation())
	if rel == nil {
		return "", fmt.Errorf("core: unknown relation %q", n.Path.Relation())
	}
	if n.Level == LevelRelation || len(n.Path) == 1 {
		return lock.Resource(db + "/" + rel.Segment + "/" + rel.Name), nil
	}
	p := n.Path
	if nm.coalesceBLUs && len(p) >= 3 {
		// If the path addresses an atomic non-ref attribute of a tuple,
		// substitute the shared per-level BLU segment.
		info, err := nm.Classify(p)
		if err != nil {
			return "", err
		}
		if info.Kind == BLU && !info.IsRef {
			p = p.Parent().Child(bluLabel)
		}
	}
	return lock.Resource(db + "/" + rel.Segment + "/" + strings.Join([]string(p), "/")), nil
}

// MustResource is Resource for known-valid nodes (panics otherwise); used in
// tests and figure printers.
func (nm *Namer) MustResource(n Node) lock.Resource {
	r, err := nm.Resource(n)
	if err != nil {
		panic(err)
	}
	return r
}

// Ancestors returns the chain of immediate parents of a node from the
// database node down to (excluding) the node itself, in root-to-leaf order —
// the order rule 5 prescribes for requesting locks.
//
// Crucially, for a complex-object root of a referenced relation (an entry
// point), the chain is relation → segment → database: the referencing BLU is
// NOT an immediate parent (it is connected by a dashed line, §4.4.1). This
// is exactly the "implicit upward propagation" path of rules 1–4.
func (nm *Namer) Ancestors(n Node) ([]Node, error) {
	switch n.Level {
	case LevelDatabase:
		return nil, nil
	case LevelSegment:
		return []Node{DatabaseNode()}, nil
	}
	rel := nm.cat.Relation(n.Path.Relation())
	if rel == nil {
		return nil, fmt.Errorf("core: unknown relation %q", n.Path.Relation())
	}
	out := []Node{DatabaseNode(), SegmentNode(rel.Segment)}
	for i := 1; i < len(n.Path); i++ {
		out = append(out, DataNode(n.Path[:i].Clone()))
	}
	return out, nil
}

// NodeInfo describes the lockable unit a data path addresses.
type NodeInfo struct {
	Kind LUKind
	// Type is the schema type of the addressed value (nil for coalesced
	// positions that do not correspond to a schema node).
	Type *schema.Type
	// IsRef reports whether the node is a reference BLU.
	IsRef bool
	// RefTarget is the referenced relation for reference BLUs.
	RefTarget string
}

// Classify determines the lockable-unit kind of a data path by walking the
// relation's schema: relations and collections are HoLUs, tuples are HeLUs,
// atomic attributes and references are BLUs (§4.3 derivation rules). The
// walk is memoized per path in the name cache (classification errors for a
// known relation are deterministic — relation types are immutable once in
// the catalog — so they are memoized too).
func (nm *Namer) Classify(p store.Path) (NodeInfo, error) {
	if nm.nocache {
		return nm.classifyUncached(p)
	}
	if len(p) == 0 {
		return NodeInfo{}, fmt.Errorf("core: empty path")
	}
	e, err := nm.entryFor(p)
	if err != nil {
		return NodeInfo{}, err
	}
	if e.infoErr != nil {
		return NodeInfo{}, e.infoErr
	}
	return e.info, nil
}

// classifyUncached is the memo-free schema walk backing Classify.
func (nm *Namer) classifyUncached(p store.Path) (NodeInfo, error) {
	if len(p) == 0 {
		return NodeInfo{}, fmt.Errorf("core: empty path")
	}
	rel := nm.cat.Relation(p.Relation())
	if rel == nil {
		return NodeInfo{}, fmt.Errorf("core: unknown relation %q", p.Relation())
	}
	if len(p) == 1 {
		// The relation: a set of complex objects — a HoLU.
		return NodeInfo{Kind: HoLU, Type: nil}, nil
	}
	// p[1] is a complex-object key; the object is the relation's tuple type.
	t := rel.Type
	for i := 2; i < len(p); i++ {
		seg := p[i]
		switch t.Kind {
		case schema.KindTuple:
			ft := t.Field(seg)
			if ft == nil {
				return NodeInfo{}, fmt.Errorf("core: path %q: no field %q", p, seg)
			}
			t = ft
		case schema.KindSet, schema.KindList:
			// seg is an element ID; the type descends to the element type.
			t = t.Elem
		default:
			return NodeInfo{}, fmt.Errorf("core: path %q: cannot descend into %v at %q", p, t.Kind, seg)
		}
	}
	return classifyType(t), nil
}

func classifyType(t *schema.Type) NodeInfo {
	switch t.Kind {
	case schema.KindSet, schema.KindList:
		return NodeInfo{Kind: HoLU, Type: t}
	case schema.KindTuple:
		return NodeInfo{Kind: HeLU, Type: t}
	case schema.KindRef:
		return NodeInfo{Kind: BLU, Type: t, IsRef: true, RefTarget: t.Target}
	default:
		return NodeInfo{Kind: BLU, Type: t}
	}
}
