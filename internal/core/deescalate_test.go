package core

import (
	"testing"
	"time"

	"colock/internal/lock"
	"colock/internal/store"
)

// TestDeEscalateFreesSiblings: a transaction holding X on a whole cell
// de-escalates to robot r1 only; another transaction can then X-lock robot
// r2 immediately.
func TestDeEscalateFreesSiblings(t *testing.T) {
	p, _ := newProto(t, Options{})
	obj := store.P("cells", "c1")
	if err := p.LockPath(1, obj, lock.X); err != nil {
		t.Fatal(err)
	}

	// c_object o1 is implicitly X-covered: a competitor blocks. (Robot r2
	// would NOT become available by keeping r1: both reference effector e2,
	// whose propagated X would still conflict under plain rule 4.)
	done := make(chan error, 1)
	go func() { done <- p.LockPath(2, store.P("cells", "c1", "c_objects", "o1"), lock.X) }()
	select {
	case err := <-done:
		t.Fatalf("competitor not blocked before de-escalation: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	if err := p.DeEscalate(1, DataNode(obj), []store.Path{
		store.P("cells", "c1", "robots", "r1"),
	}); err != nil {
		t.Fatal(err)
	}

	// The competitor proceeds now (c_objects released), r1 stays protected.
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if got["db1/seg1/cells/c1"] != lock.IX {
		t.Errorf("coarse lock not downgraded: %v", got)
	}
	if got["db1/seg1/cells/c1/robots/r1"] != lock.X {
		t.Errorf("kept path not X-locked: %v", got)
	}
	assertProtocolInvariants(t, p, 1)

	// r1 is still exclusive.
	blocked := make(chan error, 1)
	go func() { blocked <- p.LockPath(3, store.P("cells", "c1", "robots", "r1"), lock.S) }()
	select {
	case err := <-blocked:
		t.Fatalf("kept path lost protection: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	p.Release(1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestDeEscalateS(t *testing.T) {
	p, _ := newProto(t, Options{})
	obj := store.P("cells", "c1")
	if err := p.LockPath(1, obj, lock.S); err != nil {
		t.Fatal(err)
	}
	if err := p.DeEscalate(1, DataNode(obj), []store.Path{
		store.P("cells", "c1", "c_objects"),
	}); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if got["db1/seg1/cells/c1"] != lock.IS {
		t.Errorf("S not downgraded to IS: %v", got)
	}
	if got["db1/seg1/cells/c1/c_objects"] != lock.S {
		t.Errorf("kept collection not S: %v", got)
	}
	assertProtocolInvariants(t, p, 1)
}

func TestDeEscalateRelationLock(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockPath(1, store.P("effectors"), lock.X); err != nil {
		t.Fatal(err)
	}
	if err := p.DeEscalate(1, DataNode(store.P("effectors")), []store.Path{
		store.P("effectors", "e1"),
	}); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if got["db1/seg2/effectors"] != lock.IX || got["db1/seg2/effectors/e1"] != lock.X {
		t.Errorf("relation de-escalation wrong: %v", got)
	}
}

func TestDeEscalateErrors(t *testing.T) {
	p, _ := newProto(t, Options{})
	obj := store.P("cells", "c1")

	// No explicit S/X held.
	if err := p.DeEscalate(1, DataNode(obj), nil); err == nil {
		t.Error("de-escalation without coarse lock accepted")
	}
	if err := p.LockPath(1, obj, lock.IX); err != nil {
		t.Fatal(err)
	}
	if err := p.DeEscalate(1, DataNode(obj), nil); err == nil {
		t.Error("de-escalation of intention lock accepted")
	}
	p.Release(1)

	// Keep path outside the subtree.
	if err := p.LockPath(2, obj, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := p.DeEscalate(2, DataNode(obj), []store.Path{store.P("effectors", "e1")}); err == nil {
		t.Error("foreign keep path accepted")
	}
	if err := p.DeEscalate(2, DataNode(obj), []store.Path{obj}); err == nil {
		t.Error("keep path equal to node accepted")
	}
	p.Release(2) // txn 2's IX on the database would block txn 3's S
	// Database/segment-level de-escalation unsupported.
	if err := p.Lock(3, DatabaseNode(), lock.S); err != nil {
		t.Fatal(err)
	}
	if err := p.DeEscalate(3, DatabaseNode(), nil); err == nil {
		t.Error("database de-escalation accepted")
	}
}

// TestDeEscalatePropagatesIntoCommonData: keeping robot r1 (which references
// effectors) re-issues the downward propagation for the kept part.
func TestDeEscalatePropagatesIntoCommonData(t *testing.T) {
	p, _ := newProto(t, Options{})
	obj := store.P("cells", "c1")
	if err := p.LockPath(1, obj, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := p.DeEscalate(1, DataNode(obj), []store.Path{
		store.P("cells", "c1", "robots", "r1"),
	}); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	// e1, e2 must still be locked (reachable from the kept robot).
	if got["db1/seg2/effectors/e1"] != lock.X || got["db1/seg2/effectors/e2"] != lock.X {
		t.Errorf("kept part's common data unprotected: %v", got)
	}
}

func TestUnlockLeafToRoot(t *testing.T) {
	p, _ := newProto(t, Options{})
	leaf := store.P("cells", "c1", "robots", "r1", "trajectory")
	if err := p.LockPath(1, leaf, lock.S); err != nil {
		t.Fatal(err)
	}
	// Releasing an ancestor before the leaf violates leaf-to-root order.
	if err := p.Unlock(1, DataNode(store.P("cells", "c1"))); err == nil {
		t.Error("root-first release accepted")
	}
	// Leaf-to-root works.
	if err := p.Unlock(1, DataNode(leaf)); err != nil {
		t.Fatal(err)
	}
	if err := p.Unlock(1, DataNode(store.P("cells", "c1", "robots", "r1"))); err != nil {
		t.Fatal(err)
	}
	if err := p.Unlock(1, DataNode(store.P("cells", "c1", "robots"))); err != nil {
		t.Fatal(err)
	}
	// Releasing an unheld node is a no-op.
	if err := p.Unlock(1, DataNode(store.P("cells", "c1", "robots"))); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if _, held := got["db1/seg1/cells/c1/robots/r1/trajectory"]; held {
		t.Error("leaf still held")
	}
	if got["db1/seg1/cells/c1"] != lock.IS {
		t.Errorf("remaining chain wrong: %v", got)
	}
}
