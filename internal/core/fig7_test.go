package core

import (
	"testing"
	"time"

	"colock/internal/authz"
	"colock/internal/lock"
	"colock/internal/store"
)

// Fig7Locks returns the exact lock sets Figure 7 shows for queries Q2 and Q3
// (resource → mode). The transaction executing Q2 X-locks robot r1 FOR
// UPDATE; Q3 X-locks robot r2. Neither has the right to update relation
// "effectors", so rule 4′ S-locks the referenced effectors.
func fig7Want(q int) map[string]lock.Mode {
	common := map[string]lock.Mode{
		"db1":                      lock.IX,
		"db1/seg1":                 lock.IX,
		"db1/seg1/cells":           lock.IX,
		"db1/seg1/cells/c1":        lock.IX,
		"db1/seg1/cells/c1/robots": lock.IX,
		"db1/seg2":                 lock.IS,
		"db1/seg2/effectors":       lock.IS,
	}
	if q == 2 {
		common["db1/seg1/cells/c1/robots/r1"] = lock.X
		common["db1/seg2/effectors/e1"] = lock.S
		common["db1/seg2/effectors/e2"] = lock.S
	} else {
		common["db1/seg1/cells/c1/robots/r2"] = lock.X
		common["db1/seg2/effectors/e2"] = lock.S
		common["db1/seg2/effectors/e3"] = lock.S
	}
	return common
}

func fig7Protocol(t *testing.T) *Protocol {
	t.Helper()
	st := store.PaperDatabase()
	nm := NewNamer(st.Catalog(), false)
	auth := authz.NewTable(false)
	auth.Grant(2, "cells") // Q2's transaction may update cells …
	auth.Grant(3, "cells") // … and so may Q3's —
	// neither may update the effectors library (the Figure 7 assumption).
	return NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{
		Rule4Prime: true, Authorizer: auth,
	})
}

// TestFigure7LockSetQ2 reproduces the left column of Figure 7 lock for lock.
func TestFigure7LockSetQ2(t *testing.T) {
	p := fig7Protocol(t)
	if err := p.LockPath(2, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	want := fig7Want(2)
	got := heldMap(t, p, 2)
	if len(got) != len(want) {
		t.Fatalf("Q2 holds %d locks, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for r, m := range want {
		if got[r] != m {
			t.Errorf("Q2 holds %v on %s, want %v", got[r], r, m)
		}
	}
}

// TestFigure7LockSetQ3 reproduces the right column of Figure 7.
func TestFigure7LockSetQ3(t *testing.T) {
	p := fig7Protocol(t)
	if err := p.LockPath(3, store.P("cells", "c1", "robots", "r2"), lock.X); err != nil {
		t.Fatal(err)
	}
	want := fig7Want(3)
	got := heldMap(t, p, 3)
	if len(got) != len(want) {
		t.Fatalf("Q3 holds %d locks, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for r, m := range want {
		if got[r] != m {
			t.Errorf("Q3 holds %v on %s, want %v", got[r], r, m)
		}
	}
}

// TestFigure7AcquisitionOrder pins the §4.4.2.2 narrative: ancestors are
// IX-locked in sequence, then the concurrency-control manager locks the
// referenced effectors (IS spine + S entry points), and only then is the X
// lock on robot r1 granted.
func TestFigure7AcquisitionOrder(t *testing.T) {
	p := fig7Protocol(t)
	if err := p.LockPath(2, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, h := range p.Manager().HeldLocks(2) {
		order = append(order, string(h.Resource)+":"+h.Mode.String())
	}
	want := []string{
		"db1:IX",
		"db1/seg1:IX",
		"db1/seg1/cells:IX",
		"db1/seg1/cells/c1:IX",
		"db1/seg1/cells/c1/robots:IX",
		"db1/seg2:IS",
		"db1/seg2/effectors:IS",
		"db1/seg2/effectors/e1:S",
		"db1/seg2/effectors/e2:S",
		"db1/seg1/cells/c1/robots/r1:X",
	}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("acquisition %d = %s, want %s", i, order[i], want[i])
		}
	}
}

// TestFigure7Q2Q3Concurrent: "Rule 4' allows Q2 and Q3 to run concurrently,
// although both queries touch effector e2" — both X requests must be
// granted simultaneously without a wait.
func TestFigure7Q2Q3Concurrent(t *testing.T) {
	p := fig7Protocol(t)
	if err := p.LockPath(2, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.LockPath(3, store.P("cells", "c1", "robots", "r2"), lock.X) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Q3 blocked although rule 4' makes it compatible with Q2")
	}
	if p.Manager().Stats().Waits != 0 {
		t.Errorf("waits = %d, want 0", p.Manager().Stats().Waits)
	}
	// Both hold S on the shared effector e2.
	holders := p.Manager().Holders("db1/seg2/effectors/e2")
	if holders[2] != lock.S || holders[3] != lock.S {
		t.Errorf("e2 holders = %v", holders)
	}
}

// TestFigure7WithoutRule4PrimeSerializes: the same two queries under the
// plain rule 4 (X propagated onto e2) must serialize — the paper's
// authorization-oriented problem.
func TestFigure7WithoutRule4PrimeSerializes(t *testing.T) {
	st := store.PaperDatabase()
	nm := NewNamer(st.Catalog(), false)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{Rule4Prime: false})

	if err := p.LockPath(2, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.LockPath(3, store.P("cells", "c1", "robots", "r2"), lock.X) }()
	select {
	case err := <-done:
		t.Fatalf("Q3 not blocked under rule 4: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	p.Release(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if p.Manager().Stats().Waits == 0 {
		t.Error("expected a wait under rule 4")
	}
}
