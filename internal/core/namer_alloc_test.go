package core

import (
	"testing"

	"colock/internal/schema"
	"colock/internal/store"
)

// TestNamerResourceZeroAllocs: the warm naming path must not allocate — the
// whole point of the name cache is that the per-lock-call cost of naming is
// a hash and a map probe.
func TestNamerResourceZeroAllocs(t *testing.T) {
	nm := NewNamer(store.PaperDatabase().Catalog(), true)
	n := DataNode(store.P("cells", "c1", "robots", "r1", "trajectory"))
	if _, err := nm.Resource(n); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := nm.Resource(n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Resource allocates %.1f objects/op on the warm path, want 0", allocs)
	}
}

// TestNamerChainZeroAllocs covers the protocol-facing entry point: resource,
// ancestors and classification in one warm lookup, allocation-free.
func TestNamerChainZeroAllocs(t *testing.T) {
	nm := NewNamer(store.PaperDatabase().Catalog(), false)
	n := DataNode(store.P("cells", "c1", "robots", "r1"))
	if _, _, err := nm.chain(n); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := nm.chain(n); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("chain allocates %.1f objects/op on the warm path, want 0", allocs)
	}
}

// TestNamerCacheMatchesUncached: the cached namer must agree byte-for-byte
// with the legacy schema walk, for both BLU-coalescing modes.
func TestNamerCacheMatchesUncached(t *testing.T) {
	paths := []store.Path{
		store.P("cells"),
		store.P("cells", "c1"),
		store.P("cells", "c1", "robots"),
		store.P("cells", "c1", "robots", "r1"),
		store.P("cells", "c1", "robots", "r1", "trajectory"),
		store.P("cells", "c1", "robots", "r1", "effectors"),
		store.P("cells", "c1", "c_objects", "o1"),
		store.P("effectors", "e2"),
		store.P("effectors", "e2", "tool"),
	}
	for _, coalesce := range []bool{false, true} {
		cached := NewNamer(store.PaperDatabase().Catalog(), coalesce)
		legacy := NewNamer(store.PaperDatabase().Catalog(), coalesce)
		legacy.DisableCache()
		for _, p := range paths {
			n := DataNode(p)
			cr, cerr := cached.Resource(n)
			lr, lerr := legacy.Resource(n)
			if cr != lr || (cerr == nil) != (lerr == nil) {
				t.Errorf("coalesce=%v %v: cached (%q, %v) != legacy (%q, %v)",
					coalesce, p, cr, cerr, lr, lerr)
			}
			_, canc, cerr := cached.chain(n)
			_, lanc, lerr := legacy.chain(n)
			if (cerr == nil) != (lerr == nil) || len(canc) != len(lanc) {
				t.Errorf("coalesce=%v %v: ancestors differ: cached %v (%v) legacy %v (%v)",
					coalesce, p, canc, cerr, lanc, lerr)
				continue
			}
			for i := range canc {
				if canc[i] != lanc[i] {
					t.Errorf("coalesce=%v %v: ancestor %d: %q != %q", coalesce, p, i, canc[i], lanc[i])
				}
			}
		}
	}
}

// TestNamerUnknownRelationNotCached: naming errors for unknown relations
// must not be cached — the catalog is add-only DDL, so a relation may exist
// on the next call.
func TestNamerUnknownRelationNotCached(t *testing.T) {
	st := store.PaperDatabase()
	nm := NewNamer(st.Catalog(), false)
	n := DataNode(store.P("widgets", "w1"))
	if _, err := nm.Resource(n); err == nil {
		t.Fatal("expected unknown-relation error")
	}
	if err := st.Catalog().AddRelation(&schema.Relation{
		Name:    "widgets",
		Segment: "seg1",
		Key:     "widget_id",
		Type:    schema.Tuple(schema.F("widget_id", schema.Str())),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := nm.Resource(n); err != nil {
		t.Errorf("unknown-relation error was cached across DDL: %v", err)
	}
}

// BenchmarkNamerResource measures the warm naming path; run with -benchmem
// to confirm 0 allocs/op (satellite requirement of the fast-path PR).
func BenchmarkNamerResource(b *testing.B) {
	nm := NewNamer(store.PaperDatabase().Catalog(), true)
	n := DataNode(store.P("cells", "c1", "robots", "r1", "trajectory"))
	if _, err := nm.Resource(n); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nm.Resource(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNamerResourceUncached is the contrast: the legacy schema walk
// rebuilds the name (and its ancestor slice on demand) every call.
func BenchmarkNamerResourceUncached(b *testing.B) {
	nm := NewNamer(store.PaperDatabase().Catalog(), true)
	nm.DisableCache()
	n := DataNode(store.P("cells", "c1", "robots", "r1", "trajectory"))
	if _, err := nm.Resource(n); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nm.Resource(n); err != nil {
			b.Fatal(err)
		}
	}
}
