package core

import (
	"strings"
	"testing"
	"time"

	"colock/internal/authz"
	"colock/internal/lock"
	"colock/internal/store"
)

func newProto(t *testing.T, opts Options) (*Protocol, *store.Store) {
	t.Helper()
	st := store.PaperDatabase()
	nm := NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	return NewProtocol(mgr, st, nm, opts), st
}

func heldMap(t *testing.T, p *Protocol, txn lock.TxnID) map[string]lock.Mode {
	t.Helper()
	out := make(map[string]lock.Mode)
	for _, h := range p.Manager().HeldLocks(txn) {
		out[string(h.Resource)] = h.Mode
	}
	return out
}

func TestLockAcquiresAncestorIntentions(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1", "trajectory"), lock.S); err != nil {
		t.Fatal(err)
	}
	want := map[string]lock.Mode{
		"db1":                                    lock.IS,
		"db1/seg1":                               lock.IS,
		"db1/seg1/cells":                         lock.IS,
		"db1/seg1/cells/c1":                      lock.IS,
		"db1/seg1/cells/c1/robots":               lock.IS,
		"db1/seg1/cells/c1/robots/r1":            lock.IS,
		"db1/seg1/cells/c1/robots/r1/trajectory": lock.S,
	}
	got := heldMap(t, p, 1)
	if len(got) != len(want) {
		t.Fatalf("held = %v, want %v", got, want)
	}
	for r, m := range want {
		if got[r] != m {
			t.Errorf("held[%s] = %v, want %v", r, got[r], m)
		}
	}
}

func TestLockOrderIsRootToLeaf(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockPath(1, store.P("cells", "c1", "c_objects"), lock.X); err != nil {
		t.Fatal(err)
	}
	held := p.Manager().HeldLocks(1)
	var order []string
	for _, h := range held {
		order = append(order, string(h.Resource))
	}
	want := []string{"db1", "db1/seg1", "db1/seg1/cells", "db1/seg1/cells/c1", "db1/seg1/cells/c1/c_objects"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("acquisition %d = %s, want %s (rule 5: root-to-leaf)", i, order[i], want[i])
		}
	}
}

func TestIntentionModesPerRule(t *testing.T) {
	p, _ := newProto(t, Options{})
	// IS request → IS on parents (rule 1).
	if err := p.LockPath(1, store.P("cells", "c1"), lock.IS); err != nil {
		t.Fatal(err)
	}
	if heldMap(t, p, 1)["db1/seg1/cells"] != lock.IS {
		t.Error("IS request did not IS-lock parents")
	}
	p.Release(1)
	// IX request → IX on parents (rule 2).
	if err := p.LockPath(2, store.P("cells", "c1"), lock.IX); err != nil {
		t.Fatal(err)
	}
	if heldMap(t, p, 2)["db1/seg1/cells"] != lock.IX {
		t.Error("IX request did not IX-lock parents")
	}
}

func TestDatabaseLockNeedsNoParents(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.Lock(1, DatabaseNode(), lock.X); err != nil {
		t.Fatal(err)
	}
	held := p.Manager().HeldLocks(1)
	if len(held) != 1 || held[0].Resource != "db1" || held[0].Mode != lock.X {
		t.Errorf("held = %v", held)
	}
}

func TestProtocolRejectsSIXAndInvalid(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.Lock(1, DatabaseNode(), lock.SIX); err == nil {
		t.Error("SIX accepted (the protocol issues only IS/IX/S/X)")
	}
	if err := p.Lock(1, DatabaseNode(), lock.None); err == nil {
		t.Error("None accepted")
	}
	if err := p.LockPath(1, store.P("nope", "x"), lock.S); err == nil {
		t.Error("unknown relation accepted")
	}
}

// TestDownwardPropagationOnS: S on robot r1 S-locks the entry points of its
// dependent inner units (rule 3) with IS upward propagation into their
// superunit (segment seg2, relation effectors).
func TestDownwardPropagationOnS(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.S); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	for r, m := range map[string]lock.Mode{
		"db1/seg2":              lock.IS,
		"db1/seg2/effectors":    lock.IS,
		"db1/seg2/effectors/e1": lock.S,
		"db1/seg2/effectors/e2": lock.S,
	} {
		if got[r] != m {
			t.Errorf("held[%s] = %v, want %v", r, got[r], m)
		}
	}
	if _, ok := got["db1/seg2/effectors/e3"]; ok {
		t.Error("e3 locked although not reachable from r1")
	}
}

// TestDownwardPropagationRule4: without authorization cooperation, X on a
// referencing node X-locks all dependent entry points (plain rule 4).
func TestDownwardPropagationRule4(t *testing.T) {
	p, _ := newProto(t, Options{Rule4Prime: false})
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if got["db1/seg2/effectors/e1"] != lock.X || got["db1/seg2/effectors/e2"] != lock.X {
		t.Errorf("rule 4 must X-lock entry points: %v", got)
	}
	if got["db1/seg2/effectors"] != lock.IX || got["db1/seg2"] != lock.IX {
		t.Errorf("upward propagation for X must be IX: %v", got)
	}
}

// TestDownwardPropagationRule4Prime: with rule 4′ and no modify right on the
// library, X on the robot only S-locks the effectors.
func TestDownwardPropagationRule4Prime(t *testing.T) {
	auth := authz.NewTable(false)
	auth.Grant(1, "cells")
	p, _ := newProto(t, Options{Rule4Prime: true, Authorizer: auth})
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if got["db1/seg2/effectors/e1"] != lock.S || got["db1/seg2/effectors/e2"] != lock.S {
		t.Errorf("rule 4' must S-lock non-modifiable entry points: %v", got)
	}
	if got["db1/seg2/effectors"] != lock.IS {
		t.Errorf("upward propagation for S must be IS: %v", got)
	}
}

// TestRule4PrimeModifiableStaysX: a transaction WITH the modify right gets X
// on the entry points even under rule 4′.
func TestRule4PrimeModifiableStaysX(t *testing.T) {
	auth := authz.NewTable(false)
	auth.Grant(1, "cells")
	auth.Grant(1, "effectors")
	p, _ := newProto(t, Options{Rule4Prime: true, Authorizer: auth})
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if got["db1/seg2/effectors/e1"] != lock.X {
		t.Errorf("modifiable unit not X-locked: %v", got)
	}
}

// TestFromTheSideAccessIsVisible is the paper's protocol-oriented problem
// (§3.2.2): T1 locks effectors via robot r1; T2 arrives "from the side"
// through the effectors relation itself and must see the conflict.
func TestFromTheSideAccessIsVisible(t *testing.T) {
	p, _ := newProto(t, Options{})
	// T1: X on robot r1 → X on e1, e2 (rule 4, AllowAll authorizer).
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	// T2: direct S on effector e1 must block until T1 releases.
	done := make(chan error, 1)
	go func() { done <- p.LockPath(2, store.P("effectors", "e1"), lock.S) }()
	select {
	case err := <-done:
		t.Fatalf("from-the-side access not blocked: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	p.Release(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	p.Release(2)

	// And the mirror image: T3 X-locks effector e2 directly; T4 reading
	// robot r2 (which references e2) must block on the downward S.
	if err := p.LockPath(3, store.P("effectors", "e2"), lock.X); err != nil {
		t.Fatal(err)
	}
	done4 := make(chan error, 1)
	go func() { done4 <- p.LockPath(4, store.P("cells", "c1", "robots", "r2"), lock.S) }()
	select {
	case err := <-done4:
		t.Fatalf("reader not blocked by library X lock: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	p.Release(3)
	if err := <-done4; err != nil {
		t.Fatal(err)
	}
}

// TestDisjointEqualsTraditional: §4.4.2.1 — "In case of disjoint complex
// objects no inner units exist. So ... the above lock protocol is identical
// to the traditional one": no seg2/effectors locks appear when locking only
// c_objects (a disjoint part).
func TestDisjointEqualsTraditional(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockPath(1, store.P("cells", "c1", "c_objects", "o1"), lock.X); err != nil {
		t.Fatal(err)
	}
	for r := range heldMap(t, p, 1) {
		if strings.Contains(r, "seg2") || strings.Contains(r, "effectors") {
			t.Errorf("disjoint access locked shared data: %s", r)
		}
	}
}

// TestNestedDownwardPropagation: X on an object whose inner unit itself
// references deeper common data propagates transitively.
func TestNestedDownwardPropagation(t *testing.T) {
	cat, st := nestedCatalogAndStore(t)
	nm := NewNamer(cat, false)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})
	if err := p.LockPath(1, store.P("assemblies", "a1"), lock.X); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if got["db/s2/parts/p1"] != lock.X {
		t.Errorf("depth-1 entry point: %v", got["db/s2/parts/p1"])
	}
	if got["db/s3/bolts/b1"] != lock.X {
		t.Errorf("depth-2 entry point: %v", got["db/s3/bolts/b1"])
	}
	if got["db/s2"] != lock.IX || got["db/s3"] != lock.IX {
		t.Errorf("superunit spines not intention-locked: %v", got)
	}
}

// TestSharedDiamondLockedOnce: two refs to the same target produce one lock
// request (the requested map dedupes).
func TestSharedDiamondLockedOnce(t *testing.T) {
	p, _ := newProto(t, Options{})
	before := p.Manager().Stats()
	if err := p.LockPath(1, store.P("cells", "c1"), lock.S); err != nil {
		t.Fatal(err)
	}
	d := p.Manager().Stats().Sub(before)
	// db, seg1, cells, c1 + seg2, effectors, e1, e2, e3 = 9 grants; e2 must
	// not be requested twice.
	if d.Grants != 9 {
		t.Errorf("grants = %d, want 9", d.Grants)
	}
	if d.Regrants != 0 || d.Conversions != 0 {
		t.Errorf("redundant requests: %+v", d)
	}
}

func TestEffectiveMode(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.X); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		node Node
		want lock.Mode
	}{
		{DataNode(store.P("cells", "c1", "robots", "r1")), lock.X},
		{DataNode(store.P("cells", "c1", "robots", "r1", "trajectory")), lock.X}, // implicit via r1
		{DataNode(store.P("cells", "c1", "robots", "r2")), lock.None},
		{DataNode(store.P("cells", "c1")), lock.IX},
		{DataNode(store.P("effectors", "e1")), lock.X},         // downward propagation
		{DataNode(store.P("effectors", "e1", "tool")), lock.X}, // implicit via e1
		{DataNode(store.P("effectors")), lock.IX},              // upward propagation
		{SegmentNode("seg2"), lock.IX},
	}
	for _, c := range cases {
		got, err := p.EffectiveMode(1, c.node)
		if err != nil {
			t.Errorf("%v: %v", c.node, err)
			continue
		}
		if got != c.want {
			t.Errorf("EffectiveMode(%v) = %v, want %v", c.node, got, c.want)
		}
	}
}

func TestLockLongIsDurable(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockLong(1, DataNode(store.P("cells", "c1")), lock.X); err != nil {
		t.Fatal(err)
	}
	snap := p.Manager().Snapshot()
	// Every lock of the chain (including propagated ones) must be durable:
	// db, seg1, cells, c1, seg2, effectors, e1..e3.
	if len(snap) != 9 {
		t.Errorf("durable locks = %d, want 9: %v", len(snap), snap)
	}
}

// TestCoalescedBLUs: with footnote-3 coalescing, the atomic attributes of
// one tuple level share a BLU resource, while references keep their own.
func TestCoalescedBLUs(t *testing.T) {
	st := store.PaperDatabase()
	nm := NewNamer(st.Catalog(), true)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})

	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1", "robot_id"), lock.S); err != nil {
		t.Fatal(err)
	}
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1", "trajectory"), lock.S); err != nil {
		t.Fatal(err)
	}
	got := heldMap(t, p, 1)
	if _, ok := got["db1/seg1/cells/c1/robots/r1/#attrs"]; !ok {
		t.Errorf("no coalesced BLU resource: %v", got)
	}
	if _, ok := got["db1/seg1/cells/c1/robots/r1/robot_id"]; ok {
		t.Error("per-attribute BLU used despite coalescing")
	}
	st2 := p.Manager().Stats()
	// Second S request must be a regrant on the shared BLU.
	if st2.Regrants == 0 {
		t.Errorf("expected regrant on coalesced BLU: %+v", st2)
	}
	// References are NOT coalesced.
	r, err := nm.Resource(DataNode(store.P("cells", "c1", "robots", "r1", "effectors", "e1")))
	if err != nil {
		t.Fatal(err)
	}
	if r != "db1/seg1/cells/c1/robots/r1/effectors/e1" {
		t.Errorf("ref BLU resource = %s", r)
	}
}

// TestHierarchyInvariant: after any protocol lock, the transaction holds a
// sufficient intention lock on every ancestor of every held resource.
func TestHierarchyInvariant(t *testing.T) {
	p, _ := newProto(t, Options{})
	targets := []struct {
		path store.Path
		mode lock.Mode
	}{
		{store.P("cells", "c1", "robots", "r1"), lock.X},
		{store.P("cells", "c1", "c_objects"), lock.S},
		{store.P("effectors", "e3"), lock.X},
		{store.P("cells"), lock.IS},
		{store.P("cells", "c1", "robots", "r2", "effectors", "e3"), lock.S},
	}
	for _, tg := range targets {
		if err := p.LockPath(1, tg.path, tg.mode); err != nil {
			t.Fatal(err)
		}
	}
	assertProtocolInvariants(t, p, 1)
}

// assertProtocolInvariants checks the two structural invariants of the
// protocol for one transaction: (a) ancestor intention coverage, (b) every
// entry point reachable under an S/X-held node is held ≥ S.
func assertProtocolInvariants(t *testing.T, p *Protocol, txn lock.TxnID) {
	t.Helper()
	held := p.Manager().HeldLocks(txn)
	byRes := make(map[lock.Resource]lock.Mode, len(held))
	for _, h := range held {
		byRes[h.Resource] = h.Mode
	}
	for _, h := range held {
		parts := strings.Split(string(h.Resource), "/")
		need := h.Mode.IntentionFor()
		for i := 1; i < len(parts); i++ {
			anc := lock.Resource(strings.Join(parts[:i], "/"))
			if !byRes[anc].Covers(need) {
				t.Errorf("invariant: %s held %v but ancestor %s holds %v (< %v)",
					h.Resource, h.Mode, anc, byRes[anc], need)
			}
		}
	}
}
