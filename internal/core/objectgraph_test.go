package core

import (
	"strings"
	"testing"

	"colock/internal/schema"
)

// TestDeriveGraphFigure5 pins the object-specific lock graph of relation
// "cells" node for node against Figure 5.
func TestDeriveGraphFigure5(t *testing.T) {
	cat := schema.PaperSchema()
	g, err := DeriveGraph(cat, "cells")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckGeneral(cat); err != nil {
		t.Fatalf("graph violates general lock graph: %v", err)
	}

	type flat struct {
		depth int
		label string
		kind  LUKind
		ref   string
	}
	var got []flat
	g.Walk(func(d int, n *GraphNode) {
		got = append(got, flat{d, n.Label, n.Kind, n.RefTarget})
	})
	want := []flat{
		{0, `HeLU (Database "db1")`, HeLU, ""},
		{1, `HeLU (Segment "seg1")`, HeLU, ""},
		{2, `HoLU (Relation "cells")`, HoLU, ""},
		{3, `HeLU (C.O. "cells")`, HeLU, ""},
		{4, `BLU ("cell_id")`, BLU, ""},
		{4, `HoLU ("c_objects")`, HoLU, ""},
		{5, `HeLU (C.O. "c_objects")`, HeLU, ""},
		{6, `BLU ("obj_id")`, BLU, ""},
		{6, `BLU ("obj_name")`, BLU, ""},
		{4, `HoLU ("robots")`, HoLU, ""},
		{5, `HeLU (C.O. "robots")`, HeLU, ""},
		{6, `BLU ("robot_id")`, BLU, ""},
		{6, `BLU ("trajectory")`, BLU, ""},
		{6, `HoLU ("effectors")`, HoLU, ""},
		{7, `BLU ("ref")`, BLU, "effectors"},
	}
	if len(got) != len(want) {
		t.Fatalf("graph has %d nodes, want %d:\n%s", len(got), len(want), g.Render())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("node %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	if targets := g.RefTargets(); len(targets) != 1 || targets[0] != "effectors" {
		t.Errorf("RefTargets = %v", targets)
	}
}

// TestDeriveGraphEffectors: the referenced relation has its own
// object-specific lock graph (right half of Figure 5).
func TestDeriveGraphEffectors(t *testing.T) {
	cat := schema.PaperSchema()
	g, err := DeriveGraph(cat, "effectors")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckGeneral(cat); err != nil {
		t.Fatal(err)
	}
	if g.Segment.Label != `HeLU (Segment "seg2")` {
		t.Errorf("segment label = %q", g.Segment.Label)
	}
	if len(g.CO.Children) != 2 ||
		g.CO.Children[0].Label != `BLU ("eff_id")` ||
		g.CO.Children[1].Label != `BLU ("tool")` {
		t.Errorf("effectors C.O. children wrong:\n%s", g.Render())
	}
	if len(g.RefTargets()) != 0 {
		t.Error("effectors graph should reference nothing")
	}
}

func TestDeriveGraphUnknownRelation(t *testing.T) {
	if _, err := DeriveGraph(schema.PaperSchema(), "nope"); err == nil {
		t.Error("unknown relation accepted")
	}
}

// TestDeriveGraphSystemRIsSpecialCase: §4.2 — "The traditional lock graph of
// System R is a special case of the general lock graph": a flat relation
// derives to database HeLU, segment HeLU, relation HoLU and tuple HeLUs
// whose children are plain BLUs.
func TestDeriveGraphSystemRIsSpecialCase(t *testing.T) {
	cat := schema.NewCatalog("db")
	_ = cat.AddRelation(&schema.Relation{
		Name: "flat", Segment: "s", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Str()), schema.F("v", schema.Int())),
	})
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := DeriveGraph(cat, "flat")
	if err != nil {
		t.Fatal(err)
	}
	if g.Database.Kind != HeLU || g.Segment.Kind != HeLU || g.Rel.Kind != HoLU || g.CO.Kind != HeLU {
		t.Error("System R hierarchy kinds wrong")
	}
	for _, c := range g.CO.Children {
		if c.Kind != BLU {
			t.Errorf("flat tuple child %s is %v, want BLU", c.Label, c.Kind)
		}
	}
}

func TestDeriveGraphNestedCollections(t *testing.T) {
	// A set of lists of integers: "a set of lists of integers is treated
	// ... as a HoLU composed of HoLUs which in turn consist of BLUs" (§4.2).
	cat := schema.NewCatalog("db")
	_ = cat.AddRelation(&schema.Relation{
		Name: "m", Segment: "s", Key: "id",
		Type: schema.Tuple(
			schema.F("id", schema.Str()),
			schema.F("matrix", schema.Set(schema.List(schema.Int()))),
		),
	})
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := DeriveGraph(cat, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckGeneral(cat); err != nil {
		t.Fatal(err)
	}
	matrix := g.CO.Children[1]
	if matrix.Kind != HoLU {
		t.Fatalf("matrix is %v, want HoLU", matrix.Kind)
	}
	inner := matrix.Children[0]
	if inner.Kind != HoLU {
		t.Fatalf("matrix elem is %v, want HoLU", inner.Kind)
	}
	leaf := inner.Children[0]
	if leaf.Kind != BLU {
		t.Fatalf("innermost elem is %v, want BLU", leaf.Kind)
	}
}

func TestDeriveGraphNestedTupleAttr(t *testing.T) {
	// A tuple-valued attribute (not inside a collection) becomes a HeLU.
	cat := schema.NewCatalog("db")
	_ = cat.AddRelation(&schema.Relation{
		Name: "r", Segment: "s", Key: "id",
		Type: schema.Tuple(
			schema.F("id", schema.Str()),
			schema.F("pos", schema.Tuple(schema.F("x", schema.Real()), schema.F("y", schema.Real()))),
		),
	})
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := DeriveGraph(cat, "r")
	if err != nil {
		t.Fatal(err)
	}
	pos := g.CO.Children[1]
	if pos.Kind != HeLU || pos.Label != `HeLU ("pos")` || len(pos.Children) != 2 {
		t.Errorf("pos node wrong: %+v", pos)
	}
}

func TestRenderContainsDashedTransition(t *testing.T) {
	g, err := DeriveGraph(schema.PaperSchema(), "cells")
	if err != nil {
		t.Fatal(err)
	}
	out := g.Render()
	if !strings.Contains(out, `- - -> HeLU (C.O. "effectors")`) {
		t.Errorf("render lacks dashed transition:\n%s", out)
	}
	if !strings.Contains(out, `HoLU (Relation "cells")`) {
		t.Errorf("render lacks relation node:\n%s", out)
	}
}

func TestCheckGeneralRejectsMalformed(t *testing.T) {
	cat := schema.PaperSchema()
	g, _ := DeriveGraph(cat, "cells")

	// BLU with solid children.
	g.CO.Children[0].Children = []*GraphNode{{Kind: BLU, Label: "x"}}
	if err := g.CheckGeneral(cat); err == nil {
		t.Error("BLU with children accepted")
	}
	g.CO.Children[0].Children = nil

	// Heterogeneous HoLU.
	robots := g.CO.Children[2]
	robots.Children = append(robots.Children, &GraphNode{Kind: BLU, Label: "stray"})
	if err := g.CheckGeneral(cat); err == nil {
		t.Error("heterogeneous HoLU accepted")
	}
	robots.Children = robots.Children[:1]

	// Dashed transition on a HeLU.
	g.CO.RefTarget = "effectors"
	if err := g.CheckGeneral(cat); err == nil {
		t.Error("HeLU with dashed transition accepted")
	}
	g.CO.RefTarget = ""

	// Dashed transition to an unknown relation.
	ref := robots.Children[0].Children[2].Children[0]
	if ref.RefTarget != "effectors" {
		t.Fatalf("test walked to wrong node: %+v", ref)
	}
	ref.RefTarget = "nowhere"
	if err := g.CheckGeneral(cat); err == nil {
		t.Error("dangling dashed transition accepted")
	}
}

func TestLUKindString(t *testing.T) {
	if BLU.String() != "BLU" || HoLU.String() != "HoLU" || HeLU.String() != "HeLU" {
		t.Error("kind strings wrong")
	}
	if !strings.HasPrefix(LUKind(9).String(), "LUKind(") {
		t.Error("invalid kind string")
	}
}
