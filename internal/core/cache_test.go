package core

import (
	"fmt"
	"sync"
	"testing"

	"colock/internal/lock"
	"colock/internal/store"
)

// TestFastPathSkipsManager: after a covering grant, IS/IX re-acquisition of
// the same chain performs ZERO lock-manager requests — the headline of the
// fast path.
func TestFastPathSkipsManager(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.Lock(1, DataNode(store.P("cells", "c1")), lock.IS); err != nil {
		t.Fatal(err)
	}
	before := p.Manager().Stats()
	if err := p.Lock(1, DataNode(store.P("cells", "c1")), lock.IS); err != nil {
		t.Fatal(err)
	}
	after := p.Manager().Stats()
	if d := after.Requests - before.Requests; d != 0 {
		t.Errorf("IS re-acquisition made %d manager requests, want 0", d)
	}
	if p.Stats().FastPathHits == 0 {
		t.Error("FastPathHits not counted")
	}
}

// TestFastPathRepeatedLeaf: on the repeated-leaf workload shape (the
// hotbench scenario) only the S node locks reach the manager; the shared
// ancestor spine is served from the cache.
func TestFastPathRepeatedLeaf(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.S); err != nil {
		t.Fatal(err)
	}
	before := p.Manager().Stats()
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1"), lock.S); err != nil {
		t.Fatal(err)
	}
	after := p.Manager().Stats()
	// S on r1 re-scans and re-locks the node plus its two referenced
	// effectors (e1, e2): exactly 3 manager requests, all regrants — the
	// 5-deep ancestor spine and the effectors' own spines are cache hits.
	if d := after.Requests - before.Requests; d != 3 {
		t.Errorf("repeated leaf S made %d manager requests, want 3", d)
	}
	if d := after.Regrants - before.Regrants; d != 3 {
		t.Errorf("repeated leaf S made %d regrants, want 3", d)
	}
	assertProtocolInvariants(t, p, 1)
}

// TestColdChainIsBatched: a cold chain acquisition goes through
// Manager.AcquireBatch (one latch round), not per-resource calls.
func TestColdChainIsBatched(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.Lock(1, DataNode(store.P("cells", "c1")), lock.IX); err != nil {
		t.Fatal(err)
	}
	ms := p.Manager().Stats()
	if ms.Batches != 1 {
		t.Errorf("Batches = %d, want 1", ms.Batches)
	}
	// db, seg1, cells, c1 — all four served by the one batch.
	if ms.BatchFastGrants != 4 {
		t.Errorf("BatchFastGrants = %d, want 4", ms.BatchFastGrants)
	}
	if got := p.Stats().BatchedLocks; got != 4 {
		t.Errorf("BatchedLocks = %d, want 4", got)
	}
	assertProtocolInvariants(t, p, 1)
}

// TestCacheInvalidatedOnReleaseAll: end of transaction drops the cache, so
// the next transaction-life re-acquires through the manager.
func TestCacheInvalidatedOnReleaseAll(t *testing.T) {
	p, _ := newProto(t, Options{})
	if err := p.Lock(1, DataNode(store.P("cells", "c1")), lock.IS); err != nil {
		t.Fatal(err)
	}
	p.Release(1)
	if n := p.Manager().LockCount(); n != 0 {
		t.Fatalf("LockCount = %d after release, want 0", n)
	}
	before := p.Manager().Stats()
	if err := p.Lock(1, DataNode(store.P("cells", "c1")), lock.IS); err != nil {
		t.Fatal(err)
	}
	after := p.Manager().Stats()
	if d := after.Requests - before.Requests; d != 4 {
		t.Errorf("post-ReleaseAll IS made %d manager requests, want 4 (stale cache?)", d)
	}
	if d := after.Grants - before.Grants; d != 4 {
		t.Errorf("post-ReleaseAll IS made %d grants, want 4", d)
	}
	assertProtocolInvariants(t, p, 1)
}

// TestCacheInvalidatedOnEarlyRelease: rule 5's leaf-to-root early release
// (Unlock) must drop the cache — otherwise a later lock of a descendant
// would skip the IS re-acquisition on the released ancestor and leave the
// descendant without intention cover.
func TestCacheInvalidatedOnEarlyRelease(t *testing.T) {
	p, _ := newProto(t, Options{})
	r1 := store.P("cells", "c1", "robots", "r1")
	if err := p.LockPath(1, r1, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := p.Unlock(1, DataNode(r1)); err != nil {
		t.Fatal(err)
	}
	if got := p.Manager().HeldMode(1, "db1/seg1/cells/c1/robots/r1"); got != lock.None {
		t.Fatalf("r1 still held %v after Unlock", got)
	}
	// Locking below r1 must re-acquire the intention on r1 through the
	// manager — a stale cached X would have skipped it.
	if err := p.LockPath(1, store.P("cells", "c1", "robots", "r1", "trajectory"), lock.S); err != nil {
		t.Fatal(err)
	}
	if got := p.Manager().HeldMode(1, "db1/seg1/cells/c1/robots/r1"); got != lock.IS {
		t.Errorf("r1 held %v after re-lock below it, want IS", got)
	}
	assertProtocolInvariants(t, p, 1)
}

// TestCacheInvalidatedOnDeEscalate pins the satellite requirement: after
// DeEscalate downgrades the coarse lock, the next Lock must not be served
// from a stale cached coarse grant.
func TestCacheInvalidatedOnDeEscalate(t *testing.T) {
	p, _ := newProto(t, Options{})
	c1 := store.P("cells", "c1")
	if err := p.LockPath(1, c1, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := p.DeEscalate(1, DataNode(c1), []store.Path{store.P("cells", "c1", "robots", "r1")}); err != nil {
		t.Fatal(err)
	}
	if got := p.Manager().HeldMode(1, "db1/seg1/cells/c1"); got != lock.IX {
		t.Fatalf("c1 held %v after de-escalation, want IX", got)
	}
	// The next lock call must go to the manager for every resource: the
	// de-escalation invalidated the whole cache, so zero fast-path hits.
	fpBefore := p.Stats().FastPathHits
	if err := p.LockPath(1, store.P("cells", "c1", "c_objects", "o1"), lock.X); err != nil {
		t.Fatal(err)
	}
	if d := p.Stats().FastPathHits - fpBefore; d != 0 {
		t.Errorf("post-deescalation Lock used %d stale cache hits, want 0", d)
	}
	// c1 must still be IX (a stale cached X would have hidden the need to
	// keep it intention-locked — and the o1 X must coexist with siblings).
	if got := p.Manager().HeldMode(1, "db1/seg1/cells/c1"); got != lock.IX {
		t.Errorf("c1 held %v after locking o1, want IX", got)
	}
	// A second transaction can now reach the released siblings: IS below c1
	// would deadlock against a stale-cache-corrupted hierarchy.
	if err := p.Lock(2, DataNode(store.P("cells", "c1", "robots")), lock.IS); err != nil {
		t.Fatal(err)
	}
	assertProtocolInvariants(t, p, 1)
	assertProtocolInvariants(t, p, 2)
}

// TestDurableRequestNotSwallowedByCache: a durable ("long") request must
// reach the manager even when a non-durable cached grant covers the mode,
// so the held locks get their durable flag.
func TestDurableRequestNotSwallowedByCache(t *testing.T) {
	p, _ := newProto(t, Options{})
	r1 := store.P("cells", "c1", "robots", "r1")
	if err := p.LockPath(1, r1, lock.S); err != nil {
		t.Fatal(err)
	}
	for _, h := range p.Manager().HeldLocks(1) {
		if h.Durable {
			t.Fatalf("%s durable before LockLong", h.Resource)
		}
	}
	if err := p.LockLong(1, DataNode(r1), lock.S); err != nil {
		t.Fatal(err)
	}
	for _, h := range p.Manager().HeldLocks(1) {
		if !h.Durable {
			t.Errorf("%s not durable after LockLong (cache swallowed the durable upgrade?)", h.Resource)
		}
	}
}

// TestResetStatsClearsFastPathCounters: the ResetStats cascade must zero
// the new protocol counters too (satellite regression test).
func TestResetStatsClearsFastPathCounters(t *testing.T) {
	p, _ := newProto(t, Options{})
	for i := 0; i < 2; i++ {
		if err := p.Lock(1, DataNode(store.P("cells", "c1")), lock.IS); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.FastPathHits == 0 || st.BatchedLocks == 0 {
		t.Fatalf("expected nonzero fast-path counters, got %+v", st)
	}
	p.Manager().ResetStats()
	st = p.Stats()
	if st.FastPathHits != 0 || st.BatchedLocks != 0 {
		t.Errorf("counters survived ResetStats: FastPathHits=%d BatchedLocks=%d", st.FastPathHits, st.BatchedLocks)
	}
	ms := p.Manager().Stats()
	if ms.Batches != 0 || ms.BatchFastGrants != 0 {
		t.Errorf("manager batch counters survived ResetStats: %+v", ms)
	}
}

// TestDisableFastPath: the escape hatch restores the classic one-call-per-
// resource behavior.
func TestDisableFastPath(t *testing.T) {
	p, _ := newProto(t, Options{DisableFastPath: true})
	for i := 0; i < 2; i++ {
		if err := p.Lock(1, DataNode(store.P("cells", "c1")), lock.IS); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.FastPathHits != 0 || st.BatchedLocks != 0 {
		t.Errorf("fast path active despite DisableFastPath: %+v", st)
	}
	ms := p.Manager().Stats()
	if ms.Requests != 8 {
		t.Errorf("Requests = %d, want 8 (4 per call)", ms.Requests)
	}
	if ms.Batches != 0 {
		t.Errorf("Batches = %d, want 0", ms.Batches)
	}
}

// TestFastPathStress exercises cache hits, ReleaseAll, Downgrade
// (DeEscalate) and early release (Unlock) from concurrent transactions
// under -race: each worker X-locks its own disjoint cell, de-escalates,
// early-releases, and S-reads the shared paper cell (whose robots reference
// the common effectors), re-checking the hierarchy invariant throughout.
func TestFastPathStress(t *testing.T) {
	st := store.PaperDatabase()
	const workers = 8
	for w := 0; w < workers; w++ {
		key := fmt.Sprintf("cw%d", w)
		robot := store.NewTuple().
			Set("robot_id", store.Str("r1")).
			Set("trajectory", store.Str("t")).
			Set("effectors", store.NewSet())
		cell := store.NewTuple().
			Set("cell_id", store.Str(key)).
			Set("c_objects", store.NewSet()).
			Set("robots", store.NewList().Append("r1", robot))
		if err := st.Insert("cells", key, cell); err != nil {
			t.Fatal(err)
		}
	}
	nm := NewNamer(st.Catalog(), false)
	p := NewProtocol(lock.NewManager(lock.Options{}), st, nm, Options{})

	iters := 150
	if testing.Short() {
		iters = 30
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			txn := lock.TxnID(id + 1)
			own := store.P("cells", fmt.Sprintf("cw%d", id))
			ownR1 := own.Child("robots").Child("r1")
			for i := 0; i < iters; i++ {
				// Disjoint X + de-escalation (Downgrade under the hood).
				if err := p.LockPath(txn, own, lock.X); err != nil {
					t.Errorf("txn %d: %v", txn, err)
					return
				}
				if err := p.DeEscalate(txn, DataNode(own), []store.Path{ownR1}); err != nil {
					t.Errorf("txn %d deescalate: %v", txn, err)
					return
				}
				// Early release of the kept fine lock (Release under the hood).
				if err := p.Unlock(txn, DataNode(ownR1)); err != nil {
					t.Errorf("txn %d unlock: %v", txn, err)
					return
				}
				// Shared S traffic over the common effectors, repeated so the
				// cache serves the spine.
				for k := 0; k < 3; k++ {
					if err := p.LockPath(txn, store.P("cells", "c1", "robots", "r1"), lock.S); err != nil {
						t.Errorf("txn %d: %v", txn, err)
						return
					}
					if err := p.Lock(txn, DataNode(store.P("cells", "c1")), lock.IS); err != nil {
						t.Errorf("txn %d: %v", txn, err)
						return
					}
				}
				assertProtocolInvariants(t, p, txn)
				p.Release(txn)
			}
		}(w)
	}
	wg.Wait()
	if n := p.Manager().LockCount(); n != 0 {
		t.Errorf("LockCount = %d after all releases, want 0", n)
	}
	if p.Stats().FastPathHits == 0 {
		t.Error("stress produced no fast-path hits")
	}
}

// BenchmarkHotLockPath is the hotbench inner loop as a Go benchmark, for
// profiling the fast path; run with -benchmem.
func BenchmarkHotLockPath(b *testing.B) {
	st := store.PaperDatabase()
	nm := NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	p := NewProtocol(mgr, st, nm, Options{})
	path := store.P("effectors", "e2", "tool")
	if err := p.LockPath(1, path, lock.S); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.LockPath(1, path, lock.S); err != nil {
			b.Fatal(err)
		}
	}
}
