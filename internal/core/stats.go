package core

import (
	"colock/internal/schema"
	"colock/internal/store"
)

// CollectStatistics walks the store and fills the catalog's statistics with
// actual relation cardinalities and average collection fan-outs — the
// "structural and statistical information" the planner consumes (§5).
// Paths follow the planner's convention: "cells" is the cardinality of the
// relation, "cells.robots" the average robots per cell,
// "cells.robots.effectors" the average effector references per robot.
func CollectStatistics(st *store.Store) {
	cat := st.Catalog()
	stats := cat.Stats()
	for _, rel := range cat.Relations() {
		keys := st.Keys(rel.Name)
		stats.SetCard(rel.Name, float64(len(keys)))
		sums := make(map[string]float64)
		counts := make(map[string]float64)
		for _, key := range keys {
			obj := st.Get(rel.Name, key)
			collectFanouts(obj, rel.Type, rel.Name, sums, counts)
		}
		for path, sum := range sums {
			if counts[path] > 0 {
				stats.SetCard(path, sum/counts[path])
			}
		}
	}
}

// collectFanouts records, for every collection-valued position, the number
// of elements per containing tuple instance.
func collectFanouts(v store.Value, t *schema.Type, path string, sums, counts map[string]float64) {
	switch t.Kind {
	case schema.KindTuple:
		tp, ok := v.(*store.Tuple)
		if !ok {
			return
		}
		for _, f := range t.Fields {
			collectFanouts(tp.Get(f.Name), f.Type, path+"."+f.Name, sums, counts)
		}
	case schema.KindSet:
		s, ok := v.(*store.Set)
		if !ok {
			return
		}
		sums[path] += float64(s.Len())
		counts[path]++
		for _, id := range s.IDs() {
			collectFanouts(s.Get(id), t.Elem, path, sums, counts)
		}
	case schema.KindList:
		l, ok := v.(*store.List)
		if !ok {
			return
		}
		sums[path] += float64(l.Len())
		counts[path]++
		for _, id := range l.IDs() {
			collectFanouts(l.Get(id), t.Elem, path, sums, counts)
		}
	}
}
