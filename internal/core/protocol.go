package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/authz"
	"colock/internal/lock"
	"colock/internal/store"
	"colock/internal/trace"
)

// Protocol implements the paper's lock protocol for object-specific lock
// graphs (§4.4.2), rules 1–5 plus the authorization-aware rule 4′:
//
//   - IS/IX on a non-root node requires (at least) IS/IX on all immediate
//     parents; requesting a lock acquires the whole ancestor chain
//     root-to-leaf (rule 5).
//   - Locking the root of an inner unit (an entry point) triggers implicit
//     upward propagation: the concurrency-control manager intention-locks
//     the entry point's immediate parents up to the root of its superunit.
//   - Granting S or X on a node first S/X-locks the entry points of all
//     lower (dependent) inner units accessible via the node — implicit
//     downward propagation, which makes locks on shared data visible to
//     transactions arriving "from the side".
//   - Rule 4′: during downward propagation of an X request, inner units the
//     transaction is not authorized to modify are locked S instead of X.
//
// The protocol issues only the paper's four modes (IS, IX, S, X).
type Protocol struct {
	nm   *Namer
	mgr  *lock.Manager
	st   *store.Store
	auth authz.Authorizer

	// rule4Prime enables the authorization cooperation of rule 4′. With it
	// disabled (or with an AllowAll authorizer) the protocol behaves as the
	// plain rule 4: X requests propagate X onto every dependent entry
	// point.
	rule4Prime bool

	// tr, when non-nil, records a span tree per user-level Lock call: the
	// root span is the call itself, children are the protocol's rule
	// applications (upward intention locks, downward propagations, the node
	// acquisition). Sampling is decided once per call; sampled-out calls
	// pay one atomic add.
	tr *trace.Recorder

	// gcache is the per-transaction granted-mode cache (nil when the fast
	// path is disabled); see cache.go. Invalidation is wired through the
	// manager's OnRelease callback in NewProtocol.
	gcache *grantCache

	// counters tallies rule applications; see ProtocolStats.
	counters protoCounters

	// onFastHit, when set, is notified once per grant-cache fast-path hit.
	// Cache hits never reach the lock manager, so they are invisible to
	// its event sinks; rate monitors hook here instead. See OnFastPathHit.
	onFastHit atomic.Pointer[func()]
}

// Options configures a Protocol.
type Options struct {
	// Authorizer supplies modify rights for rule 4′. nil defaults to
	// authz.AllowAll (every unit is modifiable).
	Authorizer authz.Authorizer
	// Rule4Prime enables authorization cooperation (§4.4.2.1, rule 4′).
	Rule4Prime bool
	// Tracer, when non-nil, records per-transaction span trees for every
	// sampled user-level lock call (see internal/trace).
	Tracer *trace.Recorder
	// DisableFastPath turns off the per-transaction granted-mode cache and
	// the batched ancestor acquisition, forcing every request through the
	// classic one-AcquireCtx-per-resource path. The benchmark baseline and
	// an escape hatch; see DESIGN.md §11.
	DisableFastPath bool
}

// NewProtocol builds a protocol instance over a lock manager, a store and a
// namer. The protocol's rule counters are registered with the manager's
// ResetStats cascade, so resetting the manager resets them too.
func NewProtocol(mgr *lock.Manager, st *store.Store, nm *Namer, opts Options) *Protocol {
	auth := opts.Authorizer
	if auth == nil {
		auth = authz.AllowAll{}
	}
	p := &Protocol{nm: nm, mgr: mgr, st: st, auth: auth, rule4Prime: opts.Rule4Prime, tr: opts.Tracer}
	if !opts.DisableFastPath {
		p.gcache = newGrantCache()
		mgr.OnRelease(p.gcache.invalidate)
	}
	mgr.OnResetStats(p.counters.reset)
	return p
}

// Manager exposes the underlying lock manager (for release, inspection and
// statistics).
func (p *Protocol) Manager() *lock.Manager { return p.mgr }

// Tracer exposes the span recorder (nil when tracing is off).
func (p *Protocol) Tracer() *trace.Recorder { return p.tr }

// OnFastPathHit registers fn to run once per grant-cache fast-path hit, on
// the requesting goroutine with no protocol or manager locks held. One hook
// slot: a second call replaces the first. fn must be cheap (an atomic add) —
// it sits on the hottest path the cache exists to keep short.
func (p *Protocol) OnFastPathHit(fn func()) {
	if fn == nil {
		return
	}
	p.onFastHit.Store(&fn)
}

// noteFastPathHit tallies one cache-served request and notifies the hook.
func (p *Protocol) noteFastPathHit() {
	p.counters.fastPathHits.Add(1)
	if f := p.onFastHit.Load(); f != nil {
		(*f)()
	}
}

// CanModify reports whether the authorization component grants txn the
// right to modify the relation. The query executor enforces it for
// modifying statements; the protocol itself only uses it for rule 4′.
func (p *Protocol) CanModify(txn lock.TxnID, relation string) bool {
	return p.auth.CanModify(txn, relation)
}

// Namer exposes the resource namer.
func (p *Protocol) Namer() *Namer { return p.nm }

// Lock acquires a lock of the given mode (IS, IX, S or X) on the node,
// following the protocol. It blocks until granted; a deadlock-victim error
// from the lock manager is returned unchanged and the transaction must
// abort.
func (p *Protocol) Lock(txn lock.TxnID, n Node, mode lock.Mode) error {
	return p.LockCtx(context.Background(), txn, n, mode)
}

// LockCtx is Lock with a context: a canceled or expired context withdraws
// the blocked lock-manager waiter and returns its error. Locks already
// acquired for earlier nodes of the protocol chain are NOT rolled back —
// the transaction must abort, exactly as after a deadlock victim error.
func (p *Protocol) LockCtx(ctx context.Context, txn lock.TxnID, n Node, mode lock.Mode) error {
	return p.lockOpts(ctx, txn, n, mode, false, false, 0)
}

// LockTimeout is Lock with a per-acquire deadline: every lock-manager
// acquisition of the protocol chain is withdrawn after d, returning an error
// wrapping lock.ErrTimeout. The timeout is per acquisition, not per call —
// the workstation-server "don't block forever behind a check-out lock" knob,
// and the trigger for automatic timeout incident dumps.
func (p *Protocol) LockTimeout(txn lock.TxnID, n Node, mode lock.Mode, d time.Duration) error {
	return p.lockOpts(context.Background(), txn, n, mode, false, false, d)
}

// LockLong is Lock with durable ("long") locks, as used for check-out in
// workstation–server environments.
func (p *Protocol) LockLong(txn lock.TxnID, n Node, mode lock.Mode) error {
	return p.LockLongCtx(context.Background(), txn, n, mode)
}

// LockLongCtx is LockLong with a context (see LockCtx).
func (p *Protocol) LockLongCtx(ctx context.Context, txn lock.TxnID, n Node, mode lock.Mode) error {
	return p.lockOpts(ctx, txn, n, mode, true, false, 0)
}

// LockPath is shorthand for Lock on a data node.
func (p *Protocol) LockPath(txn lock.TxnID, path store.Path, mode lock.Mode) error {
	return p.Lock(txn, DataNode(path), mode)
}

// LockPathCtx is shorthand for LockCtx on a data node.
func (p *Protocol) LockPathCtx(ctx context.Context, txn lock.TxnID, path store.Path, mode lock.Mode) error {
	return p.LockCtx(ctx, txn, DataNode(path), mode)
}

// LockNoFollow acquires the lock without implicit downward propagation into
// referenced common data. It exploits query semantics (§4.5 end): an
// operation that accesses references without accessing the referenced data —
// e.g. deleting a robot by a transaction without the right to delete
// effectors — needs "no locks on common data at all". The caller must
// guarantee the operation really never touches the referenced data.
func (p *Protocol) LockNoFollow(txn lock.TxnID, n Node, mode lock.Mode) error {
	return p.lockOpts(context.Background(), txn, n, mode, false, true, 0)
}

// LockWith is the unified acquisition entry point: one call expressing
// every option combination — context, durability, NOFOLLOW, per-acquisition
// timeout. The named wrappers above are each a fixed point in this option
// space; the txn layer's variadic-option Lock builds directly on LockWith.
func (p *Protocol) LockWith(ctx context.Context, txn lock.TxnID, n Node, mode lock.Mode, durable, noFollow bool, timeout time.Duration) error {
	return p.lockOpts(ctx, txn, n, mode, durable, noFollow, timeout)
}

func (p *Protocol) lockOpts(ctx context.Context, txn lock.TxnID, n Node, mode lock.Mode, durable, noFollow bool, timeout time.Duration) (err error) {
	p.counters.requests.Add(1)
	if noFollow {
		p.counters.noFollow.Add(1)
	}
	switch mode {
	case lock.IS, lock.IX, lock.S, lock.X:
	default:
		return fmt.Errorf("core: protocol mode must be IS, IX, S or X, got %v", mode)
	}
	if n.Level == LevelData && len(n.Path) >= 2 {
		// Validate the path against the schema; instances need not exist
		// (inserts lock their future resource), but the attribute shape
		// must be real.
		if _, err := p.nm.Classify(n.Path); err != nil {
			return err
		}
	}
	// Root span: one per sampled user-level lock call. The sampling decision
	// is made before naming the resource, so sampled-out calls skip even
	// that; children ride on the root's decision (nil handle = inert).
	var sp *trace.SpanHandle
	if p.tr.Sample() {
		if res, rerr := p.nm.Resource(n); rerr == nil {
			sp = p.tr.Start(txn, "lock", res, mode)
			defer func() { sp.End(err) }()
		}
	}
	// requested tracks the strongest mode already handled per resource
	// within this call, so that diamond-shaped sharing does not reprocess
	// entry points. Pooled: the map is cleared and reused across calls.
	requested := requestedPool.Get().(map[lock.Resource]lock.Mode)
	defer func() {
		clear(requested)
		requestedPool.Put(requested)
	}()
	// tg is the transaction's granted-mode cache handle, fetched once per
	// call (nil when the fast path is disabled).
	var tg *txnGrants
	if p.gcache != nil {
		tg = p.gcache.get(txn)
	}
	return p.lockRec(ctx, txn, n, mode, durable, noFollow, timeout, requested, tg, sp)
}

var requestedPool = sync.Pool{
	New: func() any { return make(map[lock.Resource]lock.Mode, 16) },
}

func (p *Protocol) lockRec(ctx context.Context, txn lock.TxnID, n Node, mode lock.Mode, durable, noFollow bool, timeout time.Duration, requested map[lock.Resource]lock.Mode, tg *txnGrants, sp *trace.SpanHandle) error {
	res, anc, err := p.nm.chain(n)
	if err != nil {
		return err
	}
	if prev, ok := requested[res]; ok && prev.Covers(mode) {
		p.counters.memoHits.Add(1)
		return nil
	}
	intent := mode.IntentionFor()
	// follow: granting S or X implies downward propagation (rules 3/4) —
	// those requests must run the full protocol below. Everything else
	// (IS/IX, or S/X with noFollow) is a pure chain acquisition, eligible
	// for the all-in-one batched fast path. Sampled calls (sp != nil) take
	// the classic per-resource path so the span tree keeps its per-resource
	// timing; a cache hit inside it emits no span (DESIGN.md §11).
	follow := (mode == lock.S || mode == lock.X) && !noFollow
	if tg != nil && sp == nil && !follow {
		return p.lockChainBatched(ctx, txn, res, anc, mode, intent, durable, timeout, requested, tg)
	}

	// Rules 1–4, upward part: intention-lock all immediate parents
	// root-to-leaf (rule 5 order). For entry points this is the "implicit
	// upward propagation" up to the root of the superunit; it never crosses
	// superunit boundaries because the ancestor chain is exactly the
	// superunit spine.
	if intent != lock.None {
		if tg != nil && sp == nil {
			if err := p.upwardBatched(ctx, txn, anc, intent, durable, timeout, requested, tg); err != nil {
				return err
			}
		} else {
			for _, ares := range anc {
				if prev, ok := requested[ares]; ok && prev.Covers(intent) {
					p.counters.memoHits.Add(1)
					continue
				}
				if tg != nil && tg.covers(ares, intent, durable) {
					// Granted-mode cache hit: the manager already holds a
					// covering lock for this txn; no manager call, no span.
					p.noteFastPathHit()
					requested[ares] = lock.Sup(requested[ares], intent)
					continue
				}
				c := sp.Child("upward", ares, intent)
				err = p.acquire(ctx, txn, ares, intent, durable, timeout)
				c.End(err)
				if err != nil {
					return err
				}
				p.counters.upwardLocks.Add(1)
				requested[ares] = lock.Sup(requested[ares], intent)
				tg.note(ares, intent, durable)
			}
		}
	}

	// Reserve the mode in the memo BEFORE propagating: with recursive
	// complex objects a reference cycle leads back to this node, and the
	// reservation terminates the recursion (the cycle member is then locked
	// on the way back up).
	reserved := requested[res]
	requested[res] = lock.Sup(reserved, mode)

	// Rules 3/4/4′, downward part: before granting S or X on the node, lock
	// the entry points of all lower (dependent) inner units accessible via
	// it. Downward propagation crosses superunit boundaries and recurses,
	// because common data may again contain common data.
	if follow {
		p.counters.entryScans.Add(1)
		entries, err := EntryPointsUnder(p.st, p.nm, n)
		if err != nil {
			return err
		}
		for _, ep := range entries {
			em := mode
			kind := "downward"
			if mode == lock.X && p.rule4Prime && !p.auth.CanModify(txn, ep.Relation()) {
				// Rule 4′: non-modifiable inner units are only S-locked.
				em = lock.S
				kind = "downward-rule4prime"
				p.counters.rule4Weakened.Add(1)
			}
			p.counters.downward.Add(1)
			// The downward span becomes the parent of the recursion's own
			// spans, so the tree mirrors the propagation structure.
			next := sp
			if sp != nil {
				if eres, rerr := p.nm.Resource(DataNode(ep)); rerr == nil {
					next = sp.Child(kind, eres, em)
				}
			}
			err := p.lockRec(ctx, txn, DataNode(ep), em, durable, noFollow, timeout, requested, tg, next)
			if next != sp {
				next.End(err)
			}
			if err != nil {
				return err
			}
		}
	}

	// Final acquire on the node itself. An IS/IX request covered by the
	// granted-mode cache skips the manager (and emits no span); S/X always
	// goes to the manager, whose held-covers regrant path answers it.
	if tg != nil && mode.IsIntention() && tg.covers(res, mode, durable) {
		p.noteFastPathHit()
		return nil
	}
	c := sp.Child("acquire", res, mode)
	err = p.acquire(ctx, txn, res, mode, durable, timeout)
	c.End(err)
	if err != nil {
		return err
	}
	p.counters.nodeLocks.Add(1)
	tg.note(res, mode, durable)
	return nil
}

// upwardBatched services the upward half of rules 1–4 for unsampled calls
// with the fast path on: cache and memo hits are skipped without touching
// the manager, and whatever remains is acquired in ONE Manager.AcquireBatch
// call (root-to-leaf order preserved) instead of one AcquireCtx round-trip
// per ancestor.
func (p *Protocol) upwardBatched(ctx context.Context, txn lock.TxnID, anc []lock.Resource, intent lock.Mode, durable bool, timeout time.Duration, requested map[lock.Resource]lock.Mode, tg *txnGrants) error {
	// Pass 1 (hot): serve hits, count the manager-needing ancestors. The
	// batch slice is only allocated when something actually needs the
	// manager — the steady state allocates nothing.
	need := 0
	for _, ares := range anc {
		if prev, ok := requested[ares]; ok && prev.Covers(intent) {
			p.counters.memoHits.Add(1)
			continue
		}
		if tg.covers(ares, intent, durable) {
			// Deliberately NOT folded into requested: the cache answers any
			// later encounter the memo would, and skipping the map write
			// keeps the steady state free of per-call map traffic.
			p.noteFastPathHit()
			continue
		}
		need++
	}
	if need == 0 {
		return nil
	}
	// Pass 2 (cold): re-derive the manager-needing set pass 1 counted.
	reqs := make([]lock.BatchReq, 0, need)
	for _, ares := range anc {
		if prev, ok := requested[ares]; ok && prev.Covers(intent) {
			continue
		}
		if tg.covers(ares, intent, durable) {
			continue
		}
		reqs = append(reqs, lock.BatchReq{Resource: ares, Mode: intent})
	}
	if err := p.acquireBatch(ctx, txn, reqs, durable, timeout); err != nil {
		return err
	}
	p.counters.upwardLocks.Add(uint64(len(reqs)))
	p.counters.batchedLocks.Add(uint64(len(reqs)))
	for _, q := range reqs {
		requested[q.Resource] = lock.Sup(requested[q.Resource], intent)
		tg.note(q.Resource, intent, durable)
	}
	return nil
}

// lockChainBatched is the whole-call fast path for non-propagating requests
// (IS/IX, or S/X with noFollow): the ancestor chain AND the node's own lock
// are served from the caches and, for whatever is left, one AcquireBatch
// call. The common steady-state outcome — everything cached — performs zero
// manager calls and zero allocations.
func (p *Protocol) lockChainBatched(ctx context.Context, txn lock.TxnID, res lock.Resource, anc []lock.Resource, mode, intent lock.Mode, durable bool, timeout time.Duration, requested map[lock.Resource]lock.Mode, tg *txnGrants) error {
	need := 0
	if intent != lock.None {
		for _, ares := range anc {
			if prev, ok := requested[ares]; ok && prev.Covers(intent) {
				p.counters.memoHits.Add(1)
				continue
			}
			if tg.covers(ares, intent, durable) {
				p.noteFastPathHit()
				continue
			}
			need++
		}
	}
	// Only IS/IX node locks may be served from the cache; a cached S/X
	// answer would skip the downward re-scan — but this path is only taken
	// for noFollow S/X, where the caller asserted there is nothing to scan.
	// Keep S/X going to the manager anyway: noFollow is rare and the
	// manager's regrant answer is authoritative.
	nodeCached := mode.IsIntention() && tg.covers(res, mode, durable)
	if nodeCached {
		p.noteFastPathHit()
	} else {
		need++
		requested[res] = lock.Sup(requested[res], mode)
	}
	if need == 0 {
		return nil
	}
	reqs := make([]lock.BatchReq, 0, need)
	if intent != lock.None {
		for _, ares := range anc {
			if prev, ok := requested[ares]; ok && prev.Covers(intent) {
				continue
			}
			if tg.covers(ares, intent, durable) {
				continue
			}
			reqs = append(reqs, lock.BatchReq{Resource: ares, Mode: intent})
		}
	}
	if !nodeCached {
		reqs = append(reqs, lock.BatchReq{Resource: res, Mode: mode})
	}
	if err := p.acquireBatch(ctx, txn, reqs, durable, timeout); err != nil {
		return err
	}
	p.counters.batchedLocks.Add(uint64(len(reqs)))
	for _, q := range reqs {
		requested[q.Resource] = lock.Sup(requested[q.Resource], q.Mode)
		tg.note(q.Resource, q.Mode, durable)
	}
	if nodeCached {
		p.counters.upwardLocks.Add(uint64(len(reqs)))
	} else {
		p.counters.upwardLocks.Add(uint64(len(reqs) - 1))
		p.counters.nodeLocks.Add(1)
	}
	return nil
}

// acquireBatch forwards to Manager.AcquireBatch with the call's options.
func (p *Protocol) acquireBatch(ctx context.Context, txn lock.TxnID, reqs []lock.BatchReq, durable bool, timeout time.Duration) error {
	switch {
	case durable && timeout > 0:
		return p.mgr.AcquireBatch(ctx, txn, reqs, lock.WithDurable(), lock.WithTimeout(timeout))
	case durable:
		return p.mgr.AcquireBatch(ctx, txn, reqs, lock.WithDurable())
	case timeout > 0:
		return p.mgr.AcquireBatch(ctx, txn, reqs, lock.WithTimeout(timeout))
	default:
		return p.mgr.AcquireBatch(ctx, txn, reqs)
	}
}

func (p *Protocol) acquire(ctx context.Context, txn lock.TxnID, res lock.Resource, mode lock.Mode, durable bool, timeout time.Duration) error {
	switch {
	case durable && timeout > 0:
		return p.mgr.AcquireCtx(ctx, txn, res, mode, lock.WithDurable(), lock.WithTimeout(timeout))
	case durable:
		return p.mgr.AcquireCtx(ctx, txn, res, mode, lock.WithDurable())
	case timeout > 0:
		return p.mgr.AcquireCtx(ctx, txn, res, mode, lock.WithTimeout(timeout))
	default:
		return p.mgr.AcquireCtx(ctx, txn, res, mode)
	}
}

// Release drops all locks of a transaction (EOT, rule 5: "locks are
// released at the end of the transaction ... in any order").
func (p *Protocol) Release(txn lock.TxnID) { p.mgr.ReleaseAll(txn) }

// EffectiveMode returns the strongest mode the transaction holds on a node,
// explicitly or implicitly: an S or X lock on any node implicitly locks its
// descendants in the same mode (§3.1). Because resource names are the
// immediate-parent chains, implicit coverage is prefix coverage.
func (p *Protocol) EffectiveMode(txn lock.TxnID, n Node) (lock.Mode, error) {
	res, anc, err := p.nm.chain(n)
	if err != nil {
		return lock.None, err
	}
	best := p.mgr.HeldMode(txn, res)
	for _, ares := range anc {
		switch p.mgr.HeldMode(txn, ares) {
		case lock.S:
			best = lock.Sup(best, lock.S)
		case lock.X:
			best = lock.Sup(best, lock.X)
		case lock.SIX:
			best = lock.Sup(best, lock.S)
		}
	}
	return best, nil
}
