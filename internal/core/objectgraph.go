package core

import (
	"fmt"
	"strings"

	"colock/internal/schema"
)

// GraphNode is one lockable unit in an object-specific lock graph (schema
// level). Solid edges (Children) express "composed of"; a reference BLU
// additionally carries a dashed transition (RefTarget) into the common
// data's own graph (§4.2, Figure 4).
type GraphNode struct {
	Kind LUKind
	// Label is the display label following Figure 5, e.g.
	// `HoLU (Relation "cells")`, `HeLU (C.O. "robots")`, `BLU ("robot_id")`.
	Label string
	// Attr is the schema attribute this node was derived from ("" for
	// synthetic nodes such as database, segment, relation, C.O.).
	Attr string
	// Children are the solid-line constituents.
	Children []*GraphNode
	// RefTarget names the referenced relation for reference BLUs (the
	// dashed line of Figures 4 and 5).
	RefTarget string
}

// ObjectGraph is the object-specific lock graph of one relation: the chain
// HeLU(Database) → HeLU(Segment) → HoLU(Relation) → HeLU(C.O.) with the
// complex-object subtree below it (§4.3, Figure 5).
type ObjectGraph struct {
	Relation string
	Database *GraphNode
	Segment  *GraphNode
	Rel      *GraphNode
	// CO is the heterogeneous lockable unit representing one complex object
	// of the relation.
	CO *GraphNode
}

// DeriveGraph constructs the object-specific lock graph of a relation by the
// derivation rules of §4.3:
//
//  1. an attribute of type "list" is transformed to a HoLU;
//  2. an attribute of type "set" is transformed to a HoLU;
//  3. an attribute of type "(complex) tuple" is transformed to a HeLU;
//  4. an atomic attribute of any type is transformed to a BLU
//     (references are BLUs carrying a dashed transition to common data).
func DeriveGraph(cat *schema.Catalog, relation string) (*ObjectGraph, error) {
	rel := cat.Relation(relation)
	if rel == nil {
		return nil, fmt.Errorf("core: unknown relation %q", relation)
	}
	co := &GraphNode{Kind: HeLU, Label: fmt.Sprintf("HeLU (C.O. %q)", relation)}
	for _, f := range rel.Type.Fields {
		child, err := deriveAttr(f.Name, f.Type)
		if err != nil {
			return nil, fmt.Errorf("core: relation %q: %w", relation, err)
		}
		co.Children = append(co.Children, child)
	}
	g := &ObjectGraph{
		Relation: relation,
		Database: &GraphNode{Kind: HeLU, Label: fmt.Sprintf("HeLU (Database %q)", cat.Database)},
		Segment:  &GraphNode{Kind: HeLU, Label: fmt.Sprintf("HeLU (Segment %q)", rel.Segment)},
		Rel:      &GraphNode{Kind: HoLU, Label: fmt.Sprintf("HoLU (Relation %q)", relation)},
		CO:       co,
	}
	g.Database.Children = []*GraphNode{g.Segment}
	g.Segment.Children = []*GraphNode{g.Rel}
	g.Rel.Children = []*GraphNode{g.CO}
	return g, nil
}

func deriveAttr(name string, t *schema.Type) (*GraphNode, error) {
	switch t.Kind {
	case schema.KindStr, schema.KindInt, schema.KindReal, schema.KindBool:
		return &GraphNode{Kind: BLU, Label: fmt.Sprintf("BLU (%q)", name), Attr: name}, nil
	case schema.KindRef:
		return &GraphNode{
			Kind:      BLU,
			Label:     `BLU ("ref")`,
			Attr:      name,
			RefTarget: t.Target,
		}, nil
	case schema.KindSet, schema.KindList:
		n := &GraphNode{Kind: HoLU, Label: fmt.Sprintf("HoLU (%q)", name), Attr: name}
		elem, err := deriveElem(name, t.Elem)
		if err != nil {
			return nil, err
		}
		n.Children = []*GraphNode{elem}
		return n, nil
	case schema.KindTuple:
		n := &GraphNode{Kind: HeLU, Label: fmt.Sprintf("HeLU (%q)", name), Attr: name}
		for _, f := range t.Fields {
			c, err := deriveAttr(f.Name, f.Type)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, nil
	}
	return nil, fmt.Errorf("attribute %q: invalid type kind %v", name, t.Kind)
}

// deriveElem derives the lockable unit of a collection's element type: a
// tuple element is the "C.O." HeLU of the collection (e.g. HeLU (C.O.
// "robots") in Figure 5); reference and atomic elements are BLUs; nested
// collections are HoLUs.
func deriveElem(collection string, t *schema.Type) (*GraphNode, error) {
	switch t.Kind {
	case schema.KindTuple:
		n := &GraphNode{Kind: HeLU, Label: fmt.Sprintf("HeLU (C.O. %q)", collection)}
		for _, f := range t.Fields {
			c, err := deriveAttr(f.Name, f.Type)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, nil
	case schema.KindRef:
		return &GraphNode{Kind: BLU, Label: `BLU ("ref")`, RefTarget: t.Target}, nil
	case schema.KindSet, schema.KindList:
		n := &GraphNode{Kind: HoLU, Label: fmt.Sprintf("HoLU (%q elem)", collection)}
		elem, err := deriveElem(collection, t.Elem)
		if err != nil {
			return nil, err
		}
		n.Children = []*GraphNode{elem}
		return n, nil
	default:
		return &GraphNode{Kind: BLU, Label: fmt.Sprintf("BLU (%q elem)", collection)}, nil
	}
}

// Walk visits every node of the graph (solid edges only) in preorder.
func (g *ObjectGraph) Walk(fn func(depth int, n *GraphNode)) {
	var rec func(d int, n *GraphNode)
	rec = func(d int, n *GraphNode) {
		fn(d, n)
		for _, c := range n.Children {
			rec(d+1, c)
		}
	}
	rec(0, g.Database)
}

// CheckGeneral validates the graph against the general lock graph of
// Figure 4:
//
//   - BLUs have no solid children (they are the smallest lockable units);
//     only BLUs may carry a dashed transition into common data;
//   - HoLUs are composed of exactly one kind of constituent (homogeneous);
//   - every dashed transition targets a relation known to the catalog.
func (g *ObjectGraph) CheckGeneral(cat *schema.Catalog) error {
	var err error
	g.Walk(func(_ int, n *GraphNode) {
		if err != nil {
			return
		}
		switch n.Kind {
		case BLU:
			if len(n.Children) > 0 {
				err = fmt.Errorf("core: BLU %s has solid children", n.Label)
			}
			if n.RefTarget != "" && cat.Relation(n.RefTarget) == nil {
				err = fmt.Errorf("core: %s references unknown relation %q", n.Label, n.RefTarget)
			}
		case HoLU:
			if n.RefTarget != "" {
				err = fmt.Errorf("core: HoLU %s carries a dashed transition", n.Label)
			}
			kinds := make(map[LUKind]bool)
			for _, c := range n.Children {
				kinds[c.Kind] = true
			}
			if len(kinds) > 1 {
				err = fmt.Errorf("core: HoLU %s is heterogeneous", n.Label)
			}
		case HeLU:
			if n.RefTarget != "" {
				err = fmt.Errorf("core: HeLU %s carries a dashed transition", n.Label)
			}
		}
	})
	return err
}

// Render draws the graph as an indented tree, dashed transitions marked with
// "- - ->", mirroring Figure 5.
func (g *ObjectGraph) Render() string {
	var b strings.Builder
	g.Walk(func(d int, n *GraphNode) {
		b.WriteString(strings.Repeat("  ", d))
		b.WriteString(n.Label)
		if n.RefTarget != "" {
			fmt.Fprintf(&b, `  - - -> HeLU (C.O. %q)`, n.RefTarget)
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// RefTargets returns the distinct relations referenced from the graph, in
// first-encounter order.
func (g *ObjectGraph) RefTargets() []string {
	seen := make(map[string]bool)
	var out []string
	g.Walk(func(_ int, n *GraphNode) {
		if n.RefTarget != "" && !seen[n.RefTarget] {
			seen[n.RefTarget] = true
			out = append(out, n.RefTarget)
		}
	})
	return out
}
