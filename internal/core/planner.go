package core

import (
	"fmt"
	"strings"

	"colock/internal/lock"
	"colock/internal/schema"
)

// Determination of "optimal" lock requests (§4.5, following HDKS89). During
// query analysis — before any data is touched — the planner chooses the lock
// granule and mode that maximize expected throughput: granules "must be
// neither too coarse (data would be blocked unnecessarily) nor too small
// (high overhead would result)". The chosen requests are stored in a
// query-specific lock graph; query execution then requests locks straight
// from the plan.
//
// The key mechanism is the anticipation of lock escalations: if the
// estimated number of fine locks exceeds a budget, or the estimated fraction
// of a collection touched exceeds a threshold, the plan requests the coarser
// granule up front instead of escalating (expensively, deadlock-prone) at
// run time.

// AccessKind distinguishes read from update access.
type AccessKind uint8

const (
	// AccessRead corresponds to FOR READ: S locks.
	AccessRead AccessKind = iota
	// AccessUpdate corresponds to FOR UPDATE: X locks.
	AccessUpdate
)

// String returns "read" or "update".
func (a AccessKind) String() string {
	if a == AccessUpdate {
		return "update"
	}
	return "read"
}

// Mode returns the lock mode of the access kind.
func (a AccessKind) Mode() lock.Mode {
	if a == AccessUpdate {
		return lock.X
	}
	return lock.S
}

// Hop is one navigation step of a query from a tuple into one of its
// collection-valued attributes, selecting either one element (Bound, via a
// key-equality predicate) or a subset of elements (Selectivity, 1.0 for a
// full scan).
type Hop struct {
	// Attrs is the attribute chain from the current tuple to the
	// collection, e.g. ["robots"]; nested tuple attributes yield longer
	// chains.
	Attrs []string
	// Bound reports whether the element is identified by an equality
	// predicate on its key-like attribute.
	Bound bool
	// Selectivity estimates the fraction of elements matched when not
	// bound (1.0 = full scan).
	Selectivity float64
}

// QuerySpec is the planner's neutral description of a query: the root
// relation, whether the complex object is identified by a key predicate, the
// navigation hops, and the access kind.
type QuerySpec struct {
	Relation string
	// ObjectBound reports whether the complex object is identified by an
	// equality predicate on the relation key.
	ObjectBound bool
	// ObjectSelectivity estimates the fraction of the relation's objects
	// matched when not bound (1.0 = full scan).
	ObjectSelectivity float64
	// Hops are the collection navigations below the object.
	Hops   []Hop
	Access AccessKind
	// NoFollowRefs marks queries whose semantics do not access referenced
	// common data (§4.5 end, e.g. deleting a robot without the right to
	// delete effectors): downward propagation may be skipped by the
	// executor.
	NoFollowRefs bool
}

// PlannerOptions tune the escalation anticipation.
type PlannerOptions struct {
	// Theta is the touched-fraction threshold above which the plan
	// escalates from per-element locks to one collection lock. Default 0.4.
	Theta float64
	// MaxLocks is the absolute budget of instance locks per level above
	// which the plan escalates. Default 64.
	MaxLocks float64
}

func (o PlannerOptions) withDefaults() PlannerOptions {
	if o.Theta <= 0 {
		o.Theta = 0.4
	}
	if o.MaxLocks <= 0 {
		o.MaxLocks = 64
	}
	return o
}

// GranuleLevel identifies the depth at which instance locks are taken.
// Level 0 is the relation, level 1 the complex object, level 2i+2 the
// collection of hop i, level 2i+3 its elements.
type GranuleLevel int

// LevelName renders a granule level for a spec ("relation", "object",
// "collection robots", "element robots").
func (s QuerySpec) LevelName(l GranuleLevel) string {
	switch {
	case l <= 0:
		return "relation " + s.Relation
	case l == 1:
		return "object"
	default:
		hop := (int(l) - 2) / 2
		attr := strings.Join(s.Hops[hop].Attrs, ".")
		if int(l)%2 == 0 {
			return "collection " + attr
		}
		return "element " + attr
	}
}

// Plan is a query-specific lock graph: the granule level and mode to request
// during execution, with the planner's estimates recorded for inspection.
type Plan struct {
	Spec QuerySpec
	// Level is the chosen instance-lock level.
	Level GranuleLevel
	// Mode is the mode requested at that level (S or X); ancestors receive
	// intention locks through the protocol automatically.
	Mode lock.Mode
	// TargetLevel is the finest level the query addresses.
	TargetLevel GranuleLevel
	// EstimatedLocks is the expected number of instance locks at Level.
	EstimatedLocks float64
	// EstimatedAtTarget is the expected number at TargetLevel (what a
	// no-escalation plan would request).
	EstimatedAtTarget float64
	// EscalatedLevels counts how many levels the plan moved up.
	EscalatedLevels int
}

// String summarizes the plan.
func (p Plan) String() string {
	return fmt.Sprintf("plan{%s %s at %s, ~%.1f locks (target %s ~%.1f), escalated %d}",
		p.Spec.Access, p.Mode, p.Spec.LevelName(p.Level), p.EstimatedLocks,
		p.Spec.LevelName(p.TargetLevel), p.EstimatedAtTarget, p.EscalatedLevels)
}

// PlanQuery chooses the "optimal" lock requests for a query spec using
// catalog statistics. It returns an error for specs that do not match the
// schema.
func PlanQuery(cat *schema.Catalog, spec QuerySpec, opts PlannerOptions) (Plan, error) {
	opts = opts.withDefaults()
	rel := cat.Relation(spec.Relation)
	if rel == nil {
		return Plan{}, fmt.Errorf("core: unknown relation %q", spec.Relation)
	}
	stats := cat.Stats()

	// Validate hops against the schema and gather fan-outs.
	t := rel.Type
	statPath := spec.Relation
	fanouts := make([]float64, len(spec.Hops))
	for i, h := range spec.Hops {
		for _, a := range h.Attrs {
			if t.Kind != schema.KindTuple {
				return Plan{}, fmt.Errorf("core: hop %d: %q is not a tuple attribute chain", i, strings.Join(h.Attrs, "."))
			}
			ft := t.Field(a)
			if ft == nil {
				return Plan{}, fmt.Errorf("core: hop %d: no attribute %q", i, a)
			}
			t = ft
			statPath += "." + a
		}
		if t.Kind != schema.KindSet && t.Kind != schema.KindList {
			return Plan{}, fmt.Errorf("core: hop %d: %q is not a collection", i, strings.Join(h.Attrs, "."))
		}
		fanouts[i] = stats.CardOr(statPath, 8)
		// Descend into the element type for the next hop.
		t = t.Elem
	}
	relCard := stats.CardOr(spec.Relation, 100)

	// counts[l] = expected number of instance locks if locking at level l.
	nLevels := 2 + 2*len(spec.Hops)
	counts := make([]float64, nLevels)
	fractions := make([]float64, nLevels) // touched fraction at element-ish levels
	counts[0] = 1
	fractions[0] = 1
	objSel := spec.ObjectSelectivity
	if spec.ObjectBound {
		// A key-bound access names exactly one object: the fraction rule is
		// for scans, so it never triggers here (only the count rule can).
		counts[1] = 1
		fractions[1] = 0
	} else {
		if objSel <= 0 || objSel > 1 {
			objSel = 1
		}
		counts[1] = relCard * objSel
		fractions[1] = objSel
	}
	for i, h := range spec.Hops {
		coll := 2 + 2*i
		elem := coll + 1
		counts[coll] = counts[coll-1] // one collection per parent element
		fractions[coll] = 1
		sel := h.Selectivity
		if h.Bound {
			counts[elem] = counts[coll]
			fractions[elem] = 0 // bound: exactly one element, never θ-escalate
		} else {
			if sel <= 0 || sel > 1 {
				sel = 1
			}
			counts[elem] = counts[coll] * fanouts[i] * sel
			fractions[elem] = sel
		}
	}

	target := GranuleLevel(nLevels - 1)
	if len(spec.Hops) == 0 {
		target = 1
	}
	level := target
	escalated := 0
	for level > 0 {
		escalate := false
		if fractions[level] >= opts.Theta && int(level)%2 == 1 {
			// Touching most elements of the enclosing granule: one coarse
			// lock beats many fine ones (element levels are odd).
			escalate = true
		}
		if counts[level] > opts.MaxLocks {
			escalate = true
		}
		if !escalate {
			break
		}
		level--
		escalated++
	}
	return Plan{
		Spec:              spec,
		Level:             level,
		Mode:              spec.Access.Mode(),
		TargetLevel:       target,
		EstimatedLocks:    counts[level],
		EstimatedAtTarget: counts[target],
		EscalatedLevels:   escalated,
	}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
