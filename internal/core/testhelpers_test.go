package core

import (
	"testing"

	"colock/internal/schema"
	"colock/internal/store"
)

// nestedCatalogAndStore builds a three-level sharing chain for tests:
// assemblies (seg s1) → parts (seg s2) → bolts (seg s3), with one object
// each: a1 → p1 → b1.
func nestedCatalogAndStore(t *testing.T) (*schema.Catalog, *store.Store) {
	t.Helper()
	cat := schema.NewCatalog("db")
	if err := cat.AddRelation(&schema.Relation{
		Name: "bolts", Segment: "s3", Key: "id",
		Type: schema.Tuple(schema.F("id", schema.Str())),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRelation(&schema.Relation{
		Name: "parts", Segment: "s2", Key: "id",
		Type: schema.Tuple(
			schema.F("id", schema.Str()),
			schema.F("bolts", schema.Set(schema.Ref("bolts"))),
		),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddRelation(&schema.Relation{
		Name: "assemblies", Segment: "s1", Key: "id",
		Type: schema.Tuple(
			schema.F("id", schema.Str()),
			schema.F("parts", schema.Set(schema.Ref("parts"))),
		),
	}); err != nil {
		t.Fatal(err)
	}
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	st := store.New(cat)
	if err := st.Insert("bolts", "b1", store.NewTuple().Set("id", store.Str("b1"))); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("parts", "p1", store.NewTuple().Set("id", store.Str("p1")).
		Set("bolts", store.NewSet().Add("b1", store.Ref{Relation: "bolts", Key: "b1"}))); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("assemblies", "a1", store.NewTuple().Set("id", store.Str("a1")).
		Set("parts", store.NewSet().Add("p1", store.Ref{Relation: "parts", Key: "p1"}))); err != nil {
		t.Fatal(err)
	}
	return cat, st
}
