package core

import (
	"strings"
	"testing"

	"colock/internal/lock"
	"colock/internal/store"
)

// statsSetup builds the paper database, collects real statistics, and then
// overrides selected cardinalities for planning scenarios.
func statsSetup(t *testing.T, overrides map[string]float64) *store.Store {
	t.Helper()
	st := store.PaperDatabase()
	CollectStatistics(st)
	for p, n := range overrides {
		st.Catalog().Stats().SetCard(p, n)
	}
	return st
}

func TestCollectStatistics(t *testing.T) {
	st := store.PaperDatabase()
	CollectStatistics(st)
	stats := st.Catalog().Stats()
	cases := map[string]float64{
		"cells":                  1,
		"effectors":              3,
		"cells.c_objects":        1,
		"cells.robots":           2,
		"cells.robots.effectors": 2,
	}
	for p, want := range cases {
		got, ok := stats.Card(p)
		if !ok {
			t.Errorf("no statistic for %q", p)
			continue
		}
		if got != want {
			t.Errorf("stat %q = %v, want %v", p, got, want)
		}
	}
}

// TestPlanQ1CollectionLock: Q1 checks out ALL c_objects of cell c1 for read;
// the plan must lock the c_objects collection with one S lock instead of one
// lock per element (the paper: "one cell may contain hundreds of
// c_objects").
func TestPlanQ1CollectionLock(t *testing.T) {
	st := statsSetup(t, map[string]float64{"cells": 100, "cells.c_objects": 500})
	spec := QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops:        []Hop{{Attrs: []string{"c_objects"}, Selectivity: 1}},
		Access:      AccessRead,
	}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.LevelName(plan.Level); got != "collection c_objects" {
		t.Errorf("level = %s, plan = %v", got, plan)
	}
	if plan.Mode != lock.S {
		t.Errorf("mode = %v", plan.Mode)
	}
	if plan.EstimatedLocks != 1 {
		t.Errorf("estimated locks = %v", plan.EstimatedLocks)
	}
	if plan.EstimatedAtTarget != 500 {
		t.Errorf("estimated at target = %v", plan.EstimatedAtTarget)
	}
	if plan.EscalatedLevels != 1 {
		t.Errorf("escalations = %d", plan.EscalatedLevels)
	}
}

// TestPlanQ2ElementLock: Q2 updates exactly robot r1 of cell c1 — a bound
// hop keeps the fine element granule with an X lock.
func TestPlanQ2ElementLock(t *testing.T) {
	st := statsSetup(t, map[string]float64{"cells": 100, "cells.robots": 50})
	spec := QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops:        []Hop{{Attrs: []string{"robots"}, Bound: true}},
		Access:      AccessUpdate,
	}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.LevelName(plan.Level); got != "element robots" {
		t.Errorf("level = %s, plan = %v", got, plan)
	}
	if plan.Mode != lock.X || plan.EstimatedLocks != 1 || plan.EscalatedLevels != 0 {
		t.Errorf("plan = %v", plan)
	}
}

// TestPlanRelationScanEscalates: an unbound scan over a whole relation locks
// the relation, not each object.
func TestPlanRelationScanEscalates(t *testing.T) {
	st := statsSetup(t, map[string]float64{"cells": 1000})
	spec := QuerySpec{Relation: "cells", ObjectSelectivity: 1, Access: AccessRead}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.LevelName(plan.Level); got != "relation cells" {
		t.Errorf("level = %s", got)
	}
	if plan.EstimatedLocks != 1 || plan.EstimatedAtTarget != 1000 {
		t.Errorf("plan = %v", plan)
	}
}

// TestPlanSelectivePredicateKeepsFineLocks: a selective (σ < θ) predicate
// over a small collection keeps per-element locks.
func TestPlanSelectivePredicateKeepsFineLocks(t *testing.T) {
	st := statsSetup(t, map[string]float64{"cells": 100, "cells.robots": 10})
	spec := QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops:        []Hop{{Attrs: []string{"robots"}, Selectivity: 0.1}},
		Access:      AccessRead,
	}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.LevelName(plan.Level); got != "element robots" {
		t.Errorf("level = %s, plan = %v", got, plan)
	}
	if plan.EstimatedLocks != 1 {
		t.Errorf("estimated = %v", plan.EstimatedLocks)
	}
}

// TestPlanBudgetEscalation: even selective access escalates when the
// absolute lock budget is exceeded (many objects × fanout).
func TestPlanBudgetEscalation(t *testing.T) {
	st := statsSetup(t, map[string]float64{"cells": 1000, "cells.robots": 100})
	spec := QuerySpec{
		Relation:          "cells",
		ObjectSelectivity: 0.2,                                                   // 200 objects
		Hops:              []Hop{{Attrs: []string{"robots"}, Selectivity: 0.05}}, // ×5 = 1000 elements
		Access:            AccessRead,
	}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{MaxLocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// 1000 element locks > 64 → collections (200) > 64 → objects (200) > 64
	// → relation.
	if got := spec.LevelName(plan.Level); got != "relation cells" {
		t.Errorf("level = %s, plan = %v", got, plan)
	}
}

// TestPlanThetaAblation: raising θ above the scan fraction disables the
// fraction-triggered escalation (the E6 ablation knob).
func TestPlanThetaAblation(t *testing.T) {
	st := statsSetup(t, map[string]float64{"cells": 10, "cells.c_objects": 20})
	spec := QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops:        []Hop{{Attrs: []string{"c_objects"}, Selectivity: 1}},
		Access:      AccessRead,
	}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{Theta: 1.1, MaxLocks: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.LevelName(plan.Level); got != "element c_objects" {
		t.Errorf("level = %s (θ ablation broken), plan = %v", got, plan)
	}
}

func TestPlanTwoHops(t *testing.T) {
	st := statsSetup(t, map[string]float64{
		"cells": 10, "cells.robots": 4, "cells.robots.effectors": 3,
	})
	spec := QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops: []Hop{
			{Attrs: []string{"robots"}, Bound: true},
			{Attrs: []string{"effectors"}, Selectivity: 1},
		},
		Access: AccessRead,
	}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.LevelName(plan.Level); got != "collection effectors" {
		t.Errorf("level = %s, plan = %v", got, plan)
	}
	if plan.EstimatedLocks != 1 {
		t.Errorf("estimated = %v", plan.EstimatedLocks)
	}
}

func TestPlanErrors(t *testing.T) {
	st := statsSetup(t, nil)
	if _, err := PlanQuery(st.Catalog(), QuerySpec{Relation: "nope"}, PlannerOptions{}); err == nil {
		t.Error("unknown relation accepted")
	}
	bad := QuerySpec{Relation: "cells", ObjectBound: true,
		Hops: []Hop{{Attrs: []string{"cell_id"}}}}
	if _, err := PlanQuery(st.Catalog(), bad, PlannerOptions{}); err == nil {
		t.Error("non-collection hop accepted")
	}
	bad2 := QuerySpec{Relation: "cells", ObjectBound: true,
		Hops: []Hop{{Attrs: []string{"zz"}}}}
	if _, err := PlanQuery(st.Catalog(), bad2, PlannerOptions{}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestPlanStringAndLevelName(t *testing.T) {
	st := statsSetup(t, nil)
	spec := QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops:        []Hop{{Attrs: []string{"robots"}, Bound: true}},
		Access:      AccessUpdate,
	}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	if !strings.Contains(s, "update") || !strings.Contains(s, "element robots") {
		t.Errorf("String = %s", s)
	}
	if spec.LevelName(0) != "relation cells" || spec.LevelName(1) != "object" ||
		spec.LevelName(2) != "collection robots" || spec.LevelName(3) != "element robots" {
		t.Error("LevelName wrong")
	}
	if AccessRead.String() != "read" || AccessUpdate.String() != "update" {
		t.Error("AccessKind.String wrong")
	}
	if AccessRead.Mode() != lock.S || AccessUpdate.Mode() != lock.X {
		t.Error("AccessKind.Mode wrong")
	}
}

// TestPlanDefaultStatistics: with no statistics recorded the planner falls
// back to defaults and still produces a plan.
func TestPlanDefaultStatistics(t *testing.T) {
	st := store.PaperDatabase() // no CollectStatistics
	spec := QuerySpec{
		Relation:    "cells",
		ObjectBound: true,
		Hops:        []Hop{{Attrs: []string{"robots"}, Bound: true}},
		Access:      AccessRead,
	}
	plan, err := PlanQuery(st.Catalog(), spec, PlannerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.LevelName(plan.Level) != "element robots" {
		t.Errorf("plan = %v", plan)
	}
}
