package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/store"
	"colock/internal/txn"
	"colock/internal/wire"
)

// session is one connection's server-side state: the transactions it has
// begun, its lease clock, and the write half of the framing. Requests are
// dispatched to a pool of per-session worker goroutines (the wire protocol
// pipelines on request ids), bounded by the max-inflight semaphore —
// except Commit/Abort, which run on their own goroutines outside the cap
// (see run) — and operations on one transaction serialize on its
// per-transaction mutex because a txn.Txn is a single thread of execution.
// The pool is grown lazily and workers persist for the session's lifetime
// — the lock protocol's recursion grows a goroutine stack once instead of
// on every request, which is a measurable share of the per-frame cost.
type session struct {
	s    *Server
	id   uint64
	conn net.Conn
	fw   *wire.FrameWriter

	// ctx is canceled when the session ends (client gone, lease missed,
	// server shutdown); every blocking acquisition runs under it, so
	// teardown withdraws parked waiters instead of orphaning them.
	ctx    context.Context
	cancel context.CancelFunc

	seen atomic.Int64 // unix nanos of the last frame read

	wclosed atomic.Bool

	inflight chan struct{}   // max-inflight semaphore
	reqCh    chan wire.Frame // dispatch queue, capacity == max-inflight
	workers  atomic.Int32    // live pool goroutines
	idle     atomic.Int32    // pool goroutines parked on reqCh
	reqWG    sync.WaitGroup

	mu      sync.Mutex
	txns    map[uint64]*sessTxn
	expired bool

	finalizeOnce sync.Once
}

// sessTxn pairs a transaction with the mutex that serializes its wire
// operations.
type sessTxn struct {
	mu sync.Mutex
	t  *txn.Txn
}

func newSession(s *Server, id uint64, conn net.Conn) *session {
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{
		s:        s,
		id:       id,
		conn:     conn,
		fw:       wire.NewFrameWriter(conn),
		ctx:      ctx,
		cancel:   cancel,
		inflight: make(chan struct{}, s.opts.MaxInflight),
		reqCh:    make(chan wire.Frame, s.opts.MaxInflight),
		txns:     make(map[uint64]*sessTxn),
	}
	sess.touch()
	return sess
}

func (sess *session) touch()              { sess.seen.Store(time.Now().UnixNano()) }
func (sess *session) lastSeen() time.Time { return time.Unix(0, sess.seen.Load()) }

func (sess *session) txnCount() int {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return len(sess.txns)
}

// run reads frames until the connection dies, dispatching each request.
// Pings answer inline — the keepalive must never queue behind blocked
// lock acquisitions. Commit and Abort bypass the max-inflight cap on
// their own goroutines: a finish frame releases locks other sessions
// (or other transactions pipelined on this one) are waiting on, so
// refusing it busy while every slot is held by a blocked acquisition
// would leave the transaction — and its locks — stranded. Everything
// else takes an inflight slot or is refused busy. Reads are buffered:
// one syscall drains every frame a pipelining client has queued.
func (sess *session) run() {
	br := bufio.NewReaderSize(sess.conn, 32<<10)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		sess.s.framesRead.Add(1)
		sess.touch()
		if f.Type == wire.TPing {
			sess.reply(f.ReqID, wire.TPong, wire.Pong{Lease: sess.s.opts.Lease}.Encode())
			continue
		}
		if f.Type == wire.TCommit || f.Type == wire.TAbort {
			sess.reqWG.Add(1)
			go func(f wire.Frame) {
				defer sess.reqWG.Done()
				sess.dispatch(f)
			}(f)
			continue
		}
		select {
		case sess.inflight <- struct{}{}:
		default:
			sess.s.busyRefusals.Add(1)
			sess.replyErr(f.ReqID, wire.ErrPayload{
				Cause: wire.CauseBusy, Retryable: true,
				Message: "session exceeded max-inflight requests",
			})
			continue
		}
		sess.reqWG.Add(1)
		// Holding an inflight slot guarantees reqCh has room, so the send
		// cannot block. Claim a parked worker by atomically taking an idle
		// credit; workers post a credit each time they park, so a won claim
		// means one worker is committed to receive exactly one more frame.
		// A lost claim spawns a worker — unless the pool is already at the
		// inflight cap, in which case pigeonhole guarantees pickup: every
		// enqueued frame holds a slot, so with cap-many workers at least
		// one is not blocked in dispatch and will return to receive.
		if sess.idle.Add(-1) < 0 {
			sess.idle.Add(1)
			if int(sess.workers.Load()) < cap(sess.inflight) {
				sess.workers.Add(1)
				go sess.worker()
			}
		}
		sess.reqCh <- f
	}
}

// worker is one pool goroutine: it serves requests until the session
// ends. The idle credit is posted only after a request completes — a
// freshly spawned worker owes its first receive to the frame that
// spawned it, and run() consumes credits when claiming a parked worker.
func (sess *session) worker() {
	for {
		select {
		case f := <-sess.reqCh:
			sess.dispatch(f)
			<-sess.inflight
			sess.reqWG.Done()
			sess.idle.Add(1)
		case <-sess.ctx.Done():
			return
		}
	}
}

// reply writes one reply frame; writes after close are dropped (the peer
// is gone and teardown owns the conn). A write error is session-fatal:
// the connection is cut so the read loop stops accepting requests whose
// outcomes the client could never hear, and teardown aborts the
// session's transactions promptly instead of waiting for the peer to
// notice the broken half on its own.
func (sess *session) reply(reqID uint64, typ byte, payload []byte) {
	if sess.wclosed.Load() {
		return
	}
	if err := sess.fw.WriteFrame(typ, reqID, payload); err != nil {
		sess.close()
		return
	}
	sess.s.framesWritten.Add(1)
}

func (sess *session) replyErr(reqID uint64, p wire.ErrPayload) {
	sess.s.errorReplies.Add(1)
	sess.reply(reqID, wire.TErr, p.Encode())
}

// replyOutcome converts a handler result into TOK or TErr.
func (sess *session) replyOutcome(reqID uint64, err error) {
	if err == nil {
		sess.reply(reqID, wire.TOK, nil)
		return
	}
	if errors.Is(err, txn.ErrNotActive) {
		// Map the txn layer's sentinel onto the wire vocabulary.
		sess.replyErr(reqID, wire.ErrPayload{
			Cause: wire.CauseNotActive, Message: err.Error(),
		})
		return
	}
	sess.replyErr(reqID, wire.PayloadOf(err))
}

// dispatch decodes and executes one request. A grammar violation is fatal
// to the session: the reply says so and the connection closes (framing
// state after a bad payload is untrustworthy).
func (sess *session) dispatch(f wire.Frame) {
	switch f.Type {
	case wire.TBegin:
		m, err := wire.DecodeBeginReq(f.Payload)
		if err != nil {
			sess.protocolViolation(f.ReqID, err)
			return
		}
		sess.handleBegin(f.ReqID, m)
	case wire.TLock, wire.TLockPath:
		m, err := wire.DecodeLockReq(f.Payload)
		if err != nil {
			sess.protocolViolation(f.ReqID, err)
			return
		}
		sess.handleLock(f.ReqID, m)
	case wire.TDowngrade:
		m, err := wire.DecodeDowngradeReq(f.Payload)
		if err != nil {
			sess.protocolViolation(f.ReqID, err)
			return
		}
		sess.handleDowngrade(f.ReqID, m)
	case wire.TRelease:
		m, err := wire.DecodeReleaseReq(f.Payload)
		if err != nil {
			sess.protocolViolation(f.ReqID, err)
			return
		}
		sess.handleRelease(f.ReqID, m)
	case wire.TCommit, wire.TAbort:
		m, err := wire.DecodeTxnReq(f.Payload)
		if err != nil {
			sess.protocolViolation(f.ReqID, err)
			return
		}
		sess.handleFinish(f.ReqID, m, f.Type == wire.TCommit)
	default:
		sess.protocolViolation(f.ReqID, errors.New("unknown request type "+wire.TypeName(f.Type)))
	}
}

func (sess *session) protocolViolation(reqID uint64, err error) {
	sess.replyErr(reqID, wire.ErrPayload{
		Cause: wire.CauseProtocol, Message: err.Error(),
	})
	_ = sess.conn.Close() // unblocks run(); teardown aborts the txns
}

func (sess *session) handleBegin(reqID uint64, m wire.BeginReq) {
	if sess.s.Draining() {
		sess.replyErr(reqID, wire.ErrPayload{
			Cause: wire.CauseDraining, Retryable: true,
			Message: "server draining: no new transactions",
		})
		return
	}
	var t *txn.Txn
	if m.Long {
		// Long transactions bypass admission, mirroring BeginLong locally.
		t = sess.s.tm.BeginLong()
	} else {
		var err error
		t, err = sess.s.tm.BeginCtx(sess.ctx)
		if err != nil {
			sess.replyErr(reqID, wire.PayloadOf(err))
			return
		}
	}
	st := &sessTxn{t: t}
	sess.mu.Lock()
	if sess.expired {
		// Lost the race with teardown: don't leak the transaction.
		sess.mu.Unlock()
		t.Abort()
		sess.replyErr(reqID, wire.ErrPayload{Cause: wire.CauseExpired, Message: "session expired"})
		return
	}
	sess.txns[uint64(t.ID())] = st
	sess.mu.Unlock()
	sess.reply(reqID, wire.TTxn, wire.TxnReply{Txn: uint64(t.ID())}.Encode())
}

// lookup resolves a wire txn id to this session's transaction. Ids from
// other sessions resolve to not-active — sessions cannot operate on
// transactions they do not own.
func (sess *session) lookup(id uint64) *sessTxn {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.txns[id]
}

func (sess *session) handleLock(reqID uint64, m wire.LockReq) {
	st := sess.lookup(m.Txn)
	if st == nil {
		sess.replyErr(reqID, wire.ErrPayload{
			Cause: wire.CauseNotActive, Txn: m.Txn,
			Message: "transaction not active in this session",
		})
		return
	}
	opts := make([]txn.Option, 0, 2)
	if m.NoFollow {
		opts = append(opts, txn.WithNoFollow())
	}
	if m.Timeout > 0 {
		opts = append(opts, txn.WithTimeout(m.Timeout))
	}
	st.mu.Lock()
	err := st.t.Lock(sess.ctx, m.Node.Node(), m.Mode, opts...)
	st.mu.Unlock()
	sess.replyOutcome(reqID, err)
}

func (sess *session) handleDowngrade(reqID uint64, m wire.DowngradeReq) {
	st := sess.lookup(m.Txn)
	if st == nil {
		sess.replyErr(reqID, wire.ErrPayload{
			Cause: wire.CauseNotActive, Txn: m.Txn,
			Message: "transaction not active in this session",
		})
		return
	}
	keep := make([]store.Path, 0, len(m.Keep))
	for _, p := range m.Keep {
		keep = append(keep, store.Path(p))
	}
	st.mu.Lock()
	err := st.t.DeEscalate(m.Node.Node(), keep)
	st.mu.Unlock()
	sess.replyOutcome(reqID, err)
}

func (sess *session) handleRelease(reqID uint64, m wire.ReleaseReq) {
	st := sess.lookup(m.Txn)
	if st == nil {
		sess.replyErr(reqID, wire.ErrPayload{
			Cause: wire.CauseNotActive, Txn: m.Txn,
			Message: "transaction not active in this session",
		})
		return
	}
	st.mu.Lock()
	err := st.t.Unlock(m.Node.Node())
	st.mu.Unlock()
	sess.replyOutcome(reqID, err)
}

func (sess *session) handleFinish(reqID uint64, m wire.TxnReq, commit bool) {
	sess.mu.Lock()
	st := sess.txns[m.Txn]
	delete(sess.txns, m.Txn)
	sess.mu.Unlock()
	if st == nil {
		sess.replyErr(reqID, wire.ErrPayload{
			Cause: wire.CauseNotActive, Txn: m.Txn,
			Message: "transaction not active in this session",
		})
		return
	}
	st.mu.Lock()
	var err error
	if commit {
		err = st.t.Commit()
	} else {
		st.t.Abort()
	}
	st.mu.Unlock()
	sess.replyOutcome(reqID, err)
}

// expire enforces a missed lease: notify the client (unsolicited TErr on
// reqid 0), cut the connection, and let teardown abort the transactions.
func (sess *session) expire() {
	sess.replyErr(0, wire.ErrPayload{
		Cause:   wire.CauseExpired,
		Message: "session lease expired; transactions aborted",
	})
	sess.close()
}

// close cuts the connection; run() then returns and the server finalizes.
func (sess *session) close() {
	sess.cancel()
	sess.wclosed.Store(true)
	_ = sess.conn.Close()
}

// finalize aborts whatever the session still owns. It runs exactly once,
// after the read loop has exited; canceling ctx first withdraws any
// handler still parked in a lock wait, draining reqCh accounts for
// requests no worker picked up before the cancel, and waiting for the
// workers means no goroutine touches a Txn while it is aborted here.
func (sess *session) finalize() {
	sess.finalizeOnce.Do(func() {
		sess.cancel()
	drain:
		for {
			select {
			case <-sess.reqCh:
				<-sess.inflight
				sess.reqWG.Done()
			default:
				break drain
			}
		}
		sess.reqWG.Wait()
		sess.mu.Lock()
		sess.expired = true
		txns := make([]*sessTxn, 0, len(sess.txns))
		for _, st := range sess.txns {
			txns = append(txns, st)
		}
		sess.txns = make(map[uint64]*sessTxn)
		sess.mu.Unlock()
		for _, st := range txns {
			st.t.Abort()
		}
	})
}
