// Package server exposes the lock protocol as a network service: a TCP
// listener speaking the internal/wire protocol (DESIGN.md §16), one
// session per connection, each session binding its transactions to a lease
// the client must keep alive. A session that misses its lease deadline is
// expired — its transactions abort and their locks are released, exactly
// as if the workstation had crashed in the paper's workstation–server
// model. The server maps its admission knobs (max sessions, max in-flight
// requests per session, lock-manager waiter depth) onto retryable shed
// replies so the resilience layer on the client side rides storms out, and
// it drains gracefully on demand: new sessions are refused while in-flight
// transactions finish.
//
// The server adds no lock semantics of its own — every request lands in
// the same internal/txn manager an in-process caller uses, so the health
// monitor, the journal, tracing and the obs endpoint see network traffic
// exactly like local traffic.
package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/lock"
	"colock/internal/txn"
	"colock/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Lease is the keepalive interval: a session must deliver at least one
	// frame (a Ping suffices) per lease or it is expired and its
	// transactions aborted. Defaults to 5s; values below 20ms are clamped
	// up (the lease poller and client keepalive divide the interval). The
	// effective interval is announced in the handshake so clients size
	// their keepalive cadence from it.
	Lease time.Duration
	// MaxSessions caps concurrent sessions; further handshakes are refused
	// with WelcomeSessionLimit. Zero means unlimited.
	MaxSessions int
	// MaxInflight caps concurrently executing requests per session;
	// excess requests are refused with a retryable CauseBusy error instead
	// of queueing (queueing would stall the read loop and starve the
	// lease). Zero defaults to 64.
	MaxInflight int
	// Admission, when MaxWaiters > 0, is installed on the lock manager via
	// ConfigureAdmission at Serve time: the waiter-depth gate then sheds
	// or degrades network transactions exactly like local ones.
	Admission lock.AdmissionConfig
	// Logf receives connection-level diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Server serves the wire protocol over a listener.
type Server struct {
	tm   *txn.Manager
	opts Options
	ln   net.Listener

	mu       sync.Mutex
	sessions map[uint64]*session
	draining bool
	closed   bool

	nextSession atomic.Uint64
	wg          sync.WaitGroup // per-connection goroutines
	stopLease   chan struct{}

	// Counters exposed via WriteMetrics (colock_server_* family).
	sessionsTotal   atomic.Uint64
	sessionsRefused atomic.Uint64
	leaseExpiries   atomic.Uint64
	framesRead      atomic.Uint64
	framesWritten   atomic.Uint64
	errorReplies    atomic.Uint64
	busyRefusals    atomic.Uint64
}

// minLease floors the configured lease: the lease poller and the client
// keepalive both divide it into ticker intervals, and sub-millisecond
// leases would expire sessions faster than a loopback round trip anyway.
const minLease = 20 * time.Millisecond

// New wraps a transaction manager in an (unstarted) server.
func New(tm *txn.Manager, opts Options) *Server {
	if opts.Lease <= 0 {
		opts.Lease = 5 * time.Second
	} else if opts.Lease < minLease {
		opts.Lease = minLease
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 64
	}
	return &Server{
		tm:        tm,
		opts:      opts,
		sessions:  make(map[uint64]*session),
		stopLease: make(chan struct{}),
	}
}

// Serve starts listening on addr ("host:port"; ":0" picks a free port) and
// accepts sessions until Close or Drain. It returns once the listener is
// live; use Addr for the bound address.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.opts.Admission.MaxWaiters > 0 {
		s.tm.Protocol().Manager().ConfigureAdmission(s.opts.Admission)
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.leaseLoop()
	return nil
}

// Addr returns the listener's address (valid after Serve).
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Close/Drain)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handshake admits or refuses the connection. It returns a registered
// session, or nil after writing the refusal welcome.
func (s *Server) handshake(conn net.Conn) *session {
	// A peer that never completes the 8-byte hello must not pin the
	// goroutine forever.
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	hello, err := wire.ReadHello(conn)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		s.logf("handshake from %s: %v", conn.RemoteAddr(), err)
		return nil
	}
	refuse := func(code uint16) {
		s.sessionsRefused.Add(1)
		_ = wire.WriteWelcome(conn, wire.Welcome{Version: wire.Version, Code: code})
	}
	if hello.Version != wire.Version {
		refuse(wire.WelcomeVersionUnsupported)
		return nil
	}
	id := s.nextSession.Add(1)
	sess := newSession(s, id, conn)
	s.mu.Lock()
	switch {
	case s.draining || s.closed:
		s.mu.Unlock()
		refuse(wire.WelcomeDraining)
		return nil
	case s.opts.MaxSessions > 0 && len(s.sessions) >= s.opts.MaxSessions:
		s.mu.Unlock()
		refuse(wire.WelcomeSessionLimit)
		return nil
	default:
		s.sessions[id] = sess
		s.mu.Unlock()
	}
	if err := wire.WriteWelcome(conn, wire.Welcome{
		Version: wire.Version,
		Code:    wire.WelcomeOK,
		Session: id,
		Lease:   int64(s.opts.Lease),
	}); err != nil {
		s.dropSession(sess)
		return nil
	}
	s.sessionsTotal.Add(1)
	return sess
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	sess := s.handshake(conn)
	if sess == nil {
		return
	}
	sess.run()
	s.dropSession(sess)
}

// dropSession unregisters and finalizes a session (abort of anything still
// active happens inside finalize, exactly once).
func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	sess.finalize()
}

// leaseLoop expires sessions that missed their lease deadline. Polling at
// a quarter lease bounds detection latency to 1.25 leases.
func (s *Server) leaseLoop() {
	defer s.wg.Done()
	interval := s.opts.Lease / 4
	if interval <= 0 { // unreachable given the minLease clamp; keep NewTicker safe
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopLease:
			return
		case now := <-tick.C:
			s.mu.Lock()
			var expired []*session
			for _, sess := range s.sessions {
				if now.Sub(sess.lastSeen()) > s.opts.Lease {
					expired = append(expired, sess)
				}
			}
			s.mu.Unlock()
			for _, sess := range expired {
				s.leaseExpiries.Add(1)
				s.logf("session %d: lease expired, aborting its transactions", sess.id)
				sess.expire()
			}
		}
	}
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Draining reports whether the server refuses new sessions.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops accepting sessions and transactions — new handshakes get
// WelcomeDraining, new Begins a retryable CauseDraining error — and waits
// for in-flight transactions to finish, then closes every connection and
// the listener. ctx bounds the wait; on expiry remaining sessions are cut
// (their transactions abort via session teardown, releasing their locks,
// so a hung client cannot wedge shutdown).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	err := ctx.Err()
	for err == nil {
		if s.activeTxns() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.shutdown()
	return err
}

// activeTxns counts unfinished transactions across live sessions.
func (s *Server) activeTxns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sess := range s.sessions {
		n += sess.txnCount()
	}
	return n
}

// Close tears the server down immediately: listener closed, every session
// cut, every still-active transaction aborted (locks released).
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.shutdown()
	return nil
}

func (s *Server) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	close(s.stopLease)
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for _, sess := range sessions {
		sess.close()
	}
	s.wg.Wait()
}

// WriteMetrics appends the colock_server_* Prometheus family, for wiring
// as an extra writer on obs.Serve.
func (s *Server) WriteMetrics(w io.Writer) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	s.mu.Lock()
	live := len(s.sessions)
	draining := 0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	gauge("colock_server_sessions", "Live wire sessions.", live)
	gauge("colock_server_draining", "1 while the server refuses new sessions.", draining)
	counter("colock_server_sessions_total", "Sessions admitted since start.", s.sessionsTotal.Load())
	counter("colock_server_sessions_refused_total", "Handshakes refused (version, drain, session cap).", s.sessionsRefused.Load())
	counter("colock_server_lease_expiries_total", "Sessions expired for missing the lease.", s.leaseExpiries.Load())
	counter("colock_server_frames_read_total", "Request frames read.", s.framesRead.Load())
	counter("colock_server_frames_written_total", "Reply frames written.", s.framesWritten.Load())
	counter("colock_server_error_replies_total", "TErr replies sent.", s.errorReplies.Load())
	counter("colock_server_busy_refusals_total", "Requests refused at the max-inflight cap.", s.busyRefusals.Load())
}
