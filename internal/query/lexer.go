// Package query implements a small HDBL-flavoured query language for
// complex objects — the language of the paper's Figure 3 examples:
//
//	SELECT o
//	FROM c IN cells, o IN c.c_objects
//	WHERE c.cell_id = 'c1'
//	FOR READ
//
// It provides the lexer, a recursive-descent parser, the AST, the query
// analyzer that resolves bindings against a schema catalog and produces the
// planner's QuerySpec (the input of §4.5's "optimal" lock-request
// determination), and the executor that evaluates a query inside a
// transaction, requesting locks from the query-specific lock plan.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokSymbol // . , = <> < > <= >= { } ( ) :
)

type token struct {
	kind tokKind
	text string // keywords are upper-cased, symbols canonical
	pos  int    // byte offset for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"FOR": true, "READ": true, "UPDATE": true, "IN": true,
	"NOFOLLOW": true, "TRUE": true, "FALSE": true,
	// DML statements and value literals:
	"DELETE": true, "INSERT": true, "INTO": true, "VALUE": true,
	"SET": true, "LIST": true, "REF": true,
	// DDL:
	"CREATE": true, "RELATION": true, "SEGMENT": true, "KEY": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{tokKeyword, upper, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case c == '<':
			switch {
			case strings.HasPrefix(input[i:], "<>"):
				toks = append(toks, token{tokSymbol, "<>", i})
				i += 2
			case strings.HasPrefix(input[i:], "<="):
				toks = append(toks, token{tokSymbol, "<=", i})
				i += 2
			default:
				toks = append(toks, token{tokSymbol, "<", i})
				i++
			}
		case c == '>':
			if strings.HasPrefix(input[i:], ">=") {
				toks = append(toks, token{tokSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, ">", i})
				i++
			}
		case c == '=' || c == '.' || c == ',' || c == '{' || c == '}' ||
			c == '(' || c == ')' || c == ':':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}
