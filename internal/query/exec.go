package query

import (
	"fmt"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
	"colock/internal/txn"
)

// Executor evaluates queries inside transactions, following the paper's
// phase separation (§4.1, §4.6 advantage 6): analysis determines the
// "optimal" lock requests and stores them in a query-specific lock graph
// (the Plan); execution then requests exactly those granules from the lock
// manager while navigating the data.
type Executor struct {
	mgr  *txn.Manager
	opts core.PlannerOptions
}

// NewExecutor returns an executor over a transaction manager.
func NewExecutor(mgr *txn.Manager, opts core.PlannerOptions) *Executor {
	return &Executor{mgr: mgr, opts: opts}
}

// Result is one projected instance: its path and a deep copy of its value.
type Result struct {
	Path  store.Path
	Value store.Value
}

// Run parses, analyzes, plans and executes a query string.
func (e *Executor) Run(tx *txn.Txn, input string) ([]Result, core.Plan, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, core.Plan{}, err
	}
	return e.RunQuery(tx, q)
}

// RunQuery analyzes, plans and executes a parsed query.
func (e *Executor) RunQuery(tx *txn.Txn, q *Query) ([]Result, core.Plan, error) {
	cat := e.mgr.Store().Catalog()
	an, err := Analyze(cat, q, AnalyzeOptions{})
	if err != nil {
		return nil, core.Plan{}, err
	}
	plan, err := core.PlanQuery(cat, an.Spec, e.opts)
	if err != nil {
		return nil, core.Plan{}, err
	}
	res, err := e.execute(tx, an, plan)
	if err != nil {
		return nil, plan, err
	}
	return res, plan, nil
}

type execState struct {
	tx   *txn.Txn
	an   *Analysis
	plan core.Plan
	st   *store.Store
	// chain[i] is the instance path bound by binding i on the current row.
	chain   []store.Path
	results []Result
	seen    map[string]bool
}

func (e *Executor) execute(tx *txn.Txn, an *Analysis, plan core.Plan) ([]Result, error) {
	s := &execState{
		tx:    tx,
		an:    an,
		plan:  plan,
		st:    e.mgr.Store(),
		chain: make([]store.Path, len(an.Query.From)),
		seen:  make(map[string]bool),
	}

	// Coarsest granule: one lock on the relation covers the whole query.
	if plan.Level == 0 {
		if err := s.lockInstance(store.P(an.Spec.Relation), plan.Mode); err != nil {
			return nil, err
		}
	}

	var keys []string
	if an.Spec.ObjectBound {
		if s.st.Get(an.Spec.Relation, an.ObjectKey) == nil {
			return nil, nil // bound object absent: empty result
		}
		keys = []string{an.ObjectKey}
	} else {
		keys = s.st.Keys(an.Spec.Relation)
	}
	for _, key := range keys {
		if err := s.walk(0, store.P(an.Spec.Relation, key)); err != nil {
			return nil, err
		}
	}
	return s.results, nil
}

// lockInstance requests a protocol lock honouring the NOFOLLOW option.
func (s *execState) lockInstance(p store.Path, mode lock.Mode) error {
	if s.an.Query.NoFollow {
		return s.tx.LockPath(nil, p, mode, txn.WithNoFollow())
	}
	return s.tx.LockPath(nil, p, mode)
}

// covered reports whether the plan's coarse lock already covers instances at
// the given level.
func (s *execState) covered(level core.GranuleLevel) bool {
	return s.plan.Level < level
}

// walk processes binding idx with the given instance path, evaluating
// residual predicates and descending into deeper bindings.
func (s *execState) walk(idx int, instance store.Path) error {
	level := bindingLevel(idx)
	if s.plan.Level == level {
		if err := s.lockInstance(instance, s.plan.Mode); err != nil {
			return err
		}
	}
	s.chain[idx] = instance

	match, err := s.evalResiduals(idx, instance, s.covered(level))
	if err != nil {
		return err
	}
	if !match {
		return nil
	}

	if idx == len(s.an.Query.From)-1 {
		return s.project()
	}

	// Descend into hop idx (binding idx+1).
	hop := s.an.Spec.Hops[idx]
	collPath := instance
	for _, a := range hop.Attrs {
		collPath = collPath.Child(a)
	}
	collLevel := collectionLevel(idx)
	if s.plan.Level == collLevel {
		if err := s.lockInstance(collPath, s.plan.Mode); err != nil {
			return err
		}
	}

	if key := s.an.HopKeys[idx]; key != "" {
		elem := collPath.Child(key)
		if _, err := s.st.Lookup(elem); err != nil {
			return nil // bound element absent on this row
		}
		return s.walk(idx+1, elem)
	}

	ids, err := s.st.CollectionIDs(collPath)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := s.walk(idx+1, collPath.Child(id)); err != nil {
			return err
		}
	}
	return nil
}

// evalResiduals evaluates the residual predicates of a binding against its
// current instance, reading attribute values under locks: covered reads use
// the coarse plan lock; uncovered reads S-lock the attribute (the
// predicate-test locks the paper's footnote 5 sets aside).
func (s *execState) evalResiduals(idx int, instance store.Path, covered bool) (bool, error) {
	for _, pred := range s.an.Residual[idx] {
		p := instance
		for _, a := range pred.Path[1:] {
			p = p.Child(a)
		}
		var v store.Value
		var err error
		if covered {
			v, err = s.tx.ReadAt(p)
		} else {
			v, err = s.tx.Read(p)
		}
		if err != nil {
			return false, err
		}
		ok, err := comparePred(v, pred.Op, pred.Lit)
		if err != nil {
			return false, fmt.Errorf("query: predicate %v: %w", pred.Path, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// project records the SELECT variable's instance of the current row,
// ensuring it carries a result lock of the plan's mode.
func (s *execState) project() error {
	sel := s.chain[s.an.SelectBinding]
	key := sel.String()
	if s.seen[key] {
		return nil
	}
	s.seen[key] = true
	selLevel := bindingLevel(s.an.SelectBinding)
	if !s.covered(selLevel) && s.plan.Level != selLevel {
		// The plan locked deeper levels only; the projected instance needs
		// its own result lock.
		if err := s.lockInstance(sel, s.plan.Mode); err != nil {
			return err
		}
	}
	proj := sel
	for _, a := range s.an.Query.SelectAttrs {
		proj = proj.Child(a)
	}
	v, err := s.tx.ReadAt(proj)
	if err != nil {
		return err
	}
	s.results = append(s.results, Result{Path: proj.Clone(), Value: v})
	return nil
}

// comparePred compares an atomic value with a literal.
func comparePred(v store.Value, op string, lit store.Value) (bool, error) {
	cmp, err := compareValues(v, lit)
	if err != nil {
		return false, err
	}
	switch op {
	case "=":
		return cmp == 0, nil
	case "<>":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case ">":
		return cmp > 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">=":
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("unknown operator %q", op)
}

func compareValues(a, b store.Value) (int, error) {
	switch x := a.(type) {
	case store.Str:
		y, ok := b.(store.Str)
		if !ok {
			return 0, typeErr(a, b)
		}
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
		return 0, nil
	case store.Int:
		switch y := b.(type) {
		case store.Int:
			return cmpF(float64(x), float64(y)), nil
		case store.Real:
			return cmpF(float64(x), float64(y)), nil
		}
		return 0, typeErr(a, b)
	case store.Real:
		switch y := b.(type) {
		case store.Int:
			return cmpF(float64(x), float64(y)), nil
		case store.Real:
			return cmpF(float64(x), float64(y)), nil
		}
		return 0, typeErr(a, b)
	case store.Bool:
		y, ok := b.(store.Bool)
		if !ok {
			return 0, typeErr(a, b)
		}
		if x == y {
			return 0, nil
		}
		if !bool(x) {
			return -1, nil
		}
		return 1, nil
	}
	return 0, fmt.Errorf("cannot compare %v values", a.Kind())
}

func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func typeErr(a, b store.Value) error {
	return fmt.Errorf("type mismatch: %v vs %v", a.Kind(), b.Kind())
}
