package query

import (
	"testing"

	"colock/internal/schema"
	"colock/internal/store"
)

func TestParseCreateSimple(t *testing.T) {
	st, err := ParseCreate(`CREATE RELATION effectors IN SEGMENT seg2 KEY eff_id {eff_id: str, tool: str}`)
	if err != nil {
		t.Fatal(err)
	}
	r := st.Relation
	if r.Name != "effectors" || r.Segment != "seg2" || r.Key != "eff_id" {
		t.Errorf("relation = %+v", r)
	}
	want := schema.Tuple(schema.F("eff_id", schema.Str()), schema.F("tool", schema.Str()))
	if !r.Type.Equal(want) {
		t.Errorf("type = %v, want %v", r.Type, want)
	}
}

func TestParseCreateFullPaperSchema(t *testing.T) {
	// Recreate the Figure 1 schema entirely through DDL and compare it with
	// the hand-built PaperSchema.
	cat := schema.NewCatalog("db1")
	ddl := []string{
		`CREATE RELATION effectors IN SEGMENT seg2 KEY eff_id {eff_id: str, tool: str}`,
		`CREATE RELATION cells IN SEGMENT seg1 KEY cell_id {
			cell_id: str,
			c_objects: SET({obj_id: int, obj_name: str}),
			robots: LIST({robot_id: str, trajectory: str, effectors: SET(REF(effectors))})
		}`,
	}
	for _, src := range ddl {
		st, err := ParseCreate(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(cat); err != nil {
			t.Fatal(err)
		}
	}
	ref := schema.PaperSchema()
	for _, name := range []string{"cells", "effectors"} {
		got := cat.Relation(name)
		want := ref.Relation(name)
		if !got.Type.Equal(want.Type) || got.Key != want.Key || got.Segment != want.Segment {
			t.Errorf("%s differs from PaperSchema:\n got %v\nwant %v", name, got.Type, want.Type)
		}
	}
	// The DDL-built catalog is immediately usable: insert and query.
	stx := store.New(cat)
	if err := stx.Insert("effectors", "e1", store.NewTuple().
		Set("eff_id", store.Str("e1")).Set("tool", store.Str("t1"))); err != nil {
		t.Fatal(err)
	}
}

func TestParseCreateAllTypes(t *testing.T) {
	st, err := ParseCreate(`CREATE RELATION x IN SEGMENT s KEY id {
		id: str, n: int, f: real, b: bool,
		nested: {a: int, deep: LIST(SET(real))}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	nested := st.Relation.Type.Field("nested")
	if nested.Kind != schema.KindTuple {
		t.Fatalf("nested = %v", nested)
	}
	deep := nested.Field("deep")
	if deep.Kind != schema.KindList || deep.Elem.Kind != schema.KindSet || deep.Elem.Elem.Kind != schema.KindReal {
		t.Errorf("deep = %v", deep)
	}
}

func TestParseCreateErrors(t *testing.T) {
	bad := []string{
		`CREATE`,
		`CREATE RELATION`,
		`CREATE RELATION x`,
		`CREATE RELATION x IN SEGMENT`,
		`CREATE RELATION x IN SEGMENT s`,
		`CREATE RELATION x IN SEGMENT s KEY`,
		`CREATE RELATION x IN SEGMENT s KEY id`,          // missing type
		`CREATE RELATION x IN SEGMENT s KEY id str`,      // non-tuple type
		`CREATE RELATION x IN SEGMENT s KEY id {}`,       // empty tuple
		`CREATE RELATION x IN SEGMENT s KEY id {a str}`,  // missing ':'
		`CREATE RELATION x IN SEGMENT s KEY id {a: zzz}`, // unknown type
		`CREATE RELATION x IN SEGMENT s KEY id {a: SET}`, // missing '('
		`CREATE RELATION x IN SEGMENT s KEY id {a: SET(str}`,
		`CREATE RELATION x IN SEGMENT s KEY id {a: REF()}`,
		`CREATE RELATION x IN SEGMENT s KEY id {a: str} trailing`,
	}
	for _, src := range bad {
		if _, err := ParseCreate(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestCreateApplyValidation(t *testing.T) {
	cat := schema.NewCatalog("db")
	// Dangling REF fails and leaves the catalog unchanged.
	st, err := ParseCreate(`CREATE RELATION a IN SEGMENT s KEY id {id: str, p: SET(REF(nowhere))}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(cat); err == nil {
		t.Error("dangling ref applied")
	}
	if cat.Relation("a") != nil {
		t.Error("failed apply registered the relation")
	}
	// Missing key attribute fails too.
	st2, _ := ParseCreate(`CREATE RELATION b IN SEGMENT s KEY nope {id: str}`)
	if err := st2.Apply(cat); err == nil {
		t.Error("bad key applied")
	}
	// Duplicate relation fails.
	good, _ := ParseCreate(`CREATE RELATION c IN SEGMENT s KEY id {id: str}`)
	if err := good.Apply(cat); err != nil {
		t.Fatal(err)
	}
	dup, _ := ParseCreate(`CREATE RELATION c IN SEGMENT s KEY id {id: str}`)
	if err := dup.Apply(cat); err == nil {
		t.Error("duplicate applied")
	}
	// Recursive DDL honours the catalog's recursion opt-in.
	rcat := schema.NewCatalog("db")
	rcat.SetRecursive(true)
	rec, _ := ParseCreate(`CREATE RELATION parts IN SEGMENT s KEY id {id: str, sub: SET(REF(parts))}`)
	if err := rec.Apply(rcat); err != nil {
		t.Errorf("recursive DDL rejected: %v", err)
	}
	rcat2 := schema.NewCatalog("db")
	if err := rec.Apply(rcat2); err == nil {
		t.Error("recursive DDL applied without opt-in")
	}
}
