package query

import (
	"strings"
	"testing"

	"colock/internal/core"
	"colock/internal/store"
)

func TestParseStatementKinds(t *testing.T) {
	cases := []struct {
		src  string
		kind StmtKind
	}{
		{q1Src, StmtSelect},
		{`UPDATE r SET trajectory = 'x' FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1'`, StmtUpdate},
		{`DELETE r FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r2' NOFOLLOW`, StmtDelete},
		{`INSERT INTO effectors VALUE {eff_id: 'e9', tool: 't9'}`, StmtInsert},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if st.Kind != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.src, st.Kind, c.kind)
		}
	}
	if StmtSelect.String() != "SELECT" || StmtInsert.String() != "INSERT" ||
		StmtUpdate.String() != "UPDATE" || StmtDelete.String() != "DELETE" {
		t.Error("StmtKind strings")
	}
	if !strings.HasPrefix(StmtKind(9).String(), "StmtKind(") {
		t.Error("invalid kind string")
	}
}

func TestParseUpdateDetails(t *testing.T) {
	st, err := ParseStatement(`UPDATE r SET trajectory = 'x', robot_id = 'r1' FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' NOFOLLOW`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sets) != 2 {
		t.Fatalf("sets = %v", st.Sets)
	}
	if st.Sets[0].Attrs[0] != "trajectory" || st.Sets[0].Value != store.Str("x") {
		t.Errorf("set[0] = %+v", st.Sets[0])
	}
	if !st.Query.Update || !st.Query.NoFollow || st.Query.Select != "r" {
		t.Errorf("query = %+v", st.Query)
	}
}

func TestParseValueLiterals(t *testing.T) {
	st, err := ParseStatement(`INSERT INTO cells VALUE {
		cell_id: 'c9',
		c_objects: SET(o1: {obj_id: 1, obj_name: 'n'}),
		robots: LIST(r1: {robot_id: 'r1', trajectory: 't', effectors: SET(e1: REF(effectors, 'e1'))})
	}`)
	if err != nil {
		t.Fatal(err)
	}
	v := st.InsertValue
	if v.Get("cell_id") != store.Str("c9") {
		t.Error("atomic field")
	}
	objs := v.Get("c_objects").(*store.Set)
	if objs.Len() != 1 || objs.Get("o1").(*store.Tuple).Get("obj_id") != store.Int(1) {
		t.Errorf("set literal = %v", objs)
	}
	robots := v.Get("robots").(*store.List)
	if robots.Len() != 1 {
		t.Fatalf("list literal = %v", robots)
	}
	effs := robots.Get("r1").(*store.Tuple).Get("effectors").(*store.Set)
	if effs.Get("e1") != (store.Ref{Relation: "effectors", Key: "e1"}) {
		t.Errorf("ref literal = %v", effs.Get("e1"))
	}
}

func TestParseEmptyCollections(t *testing.T) {
	st, err := ParseStatement(`INSERT INTO cells VALUE {cell_id: 'c9', c_objects: SET(), robots: LIST()}`)
	if err != nil {
		t.Fatal(err)
	}
	if st.InsertValue.Get("c_objects").(*store.Set).Len() != 0 {
		t.Error("empty SET()")
	}
	if st.InsertValue.Get("robots").(*store.List).Len() != 0 {
		t.Error("empty LIST()")
	}
	// Empty tuple literal.
	st2, err := ParseStatement(`INSERT INTO effectors VALUE {}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.InsertValue.FieldNames()) != 0 {
		t.Error("empty tuple")
	}
}

func TestParseStatementErrors(t *testing.T) {
	bad := []string{
		``,
		`42`,
		`DROP TABLE cells`,
		`UPDATE r FROM c IN cells`,                    // missing SET
		`UPDATE r SET x FROM c IN cells`,              // missing '='
		`UPDATE r SET x = FROM c IN cells`,            // missing literal
		`UPDATE r SET x = 1`,                          // missing FROM
		`UPDATE z SET x = 1 FROM c IN cells`,          // unbound target
		`DELETE FROM c IN cells`,                      // missing target
		`DELETE z FROM c IN cells`,                    // unbound target
		`DELETE c FROM c IN cells trailing`,           // trailing input
		`INSERT effectors VALUE {}`,                   // missing INTO
		`INSERT INTO effectors {}`,                    // missing VALUE
		`INSERT INTO effectors VALUE 42`,              // non-tuple value
		`INSERT INTO effectors VALUE {x: }`,           // missing value
		`INSERT INTO effectors VALUE {x 1}`,           // missing ':'
		`INSERT INTO effectors VALUE {x: 1`,           // missing '}'
		`INSERT INTO e VALUE {x: SET(a 1)}`,           // missing ':' in elem
		`INSERT INTO e VALUE {x: SET(a: 1}`,           // missing ')'
		`INSERT INTO e VALUE {x: SET a: 1)}`,          // missing '('
		`INSERT INTO e VALUE {x: REF(effectors)}`,     // missing key
		`INSERT INTO e VALUE {x: REF(effectors, 'k'}`, // missing ')'
		`INSERT INTO e VALUE {x: REF('rel', 'k')}`,    // non-ident relation
		`INSERT INTO effectors VALUE {} trailing`,     // trailing input
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestExecUpdateStatement(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	res, err := f.exec.RunStatement(tx, `UPDATE r SET trajectory = 'rewired' FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != StmtUpdate || res.Affected != 1 {
		t.Errorf("result = %+v", res)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := f.st.Lookup(store.P("cells", "c1", "robots", "r1", "trajectory"))
	if v != store.Str("rewired") {
		t.Errorf("value = %v", v)
	}
}

func TestExecUpdateMultipleRowsAndSets(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	res, err := f.exec.RunStatement(tx, `UPDATE e SET tool = 'standard' FROM e IN effectors`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Errorf("affected = %d", res.Affected)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"e1", "e2", "e3"} {
		v, _ := f.st.Lookup(store.P("effectors", e, "tool"))
		if v != store.Str("standard") {
			t.Errorf("%s = %v", e, v)
		}
	}
}

func TestExecUpdateValidatesSets(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	bad := []string{
		`UPDATE r SET nope = 'x' FROM c IN cells, r IN c.robots`,      // unknown attr
		`UPDATE r SET effectors = 'x' FROM c IN cells, r IN c.robots`, // non-atomic
		`UPDATE r SET trajectory = 42 FROM c IN cells, r IN c.robots`, // wrong kind
		`UPDATE c SET robots.r1 = 'x' FROM c IN cells`,                // not a tuple chain
	}
	for _, src := range bad {
		if _, err := f.exec.RunStatement(tx, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestExecDeleteElement(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	res, err := f.exec.RunStatement(tx, `DELETE r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("affected = %d", res.Affected)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ids, _ := f.st.CollectionIDs(store.P("cells", "c1", "robots"))
	if len(ids) != 1 || ids[0] != "r1" {
		t.Errorf("robots = %v", ids)
	}
	if err := f.st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestExecDeleteRobotNoFollow is the §4.5 example: deleting a robot without
// the right to delete effectors needs NO locks on common data at all.
func TestExecDeleteRobotNoFollow(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	res, err := f.exec.RunStatement(tx, `DELETE r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' NOFOLLOW`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("affected = %d", res.Affected)
	}
	for r := range heldOf(f, tx.ID()) {
		if strings.Contains(r, "effectors") || strings.Contains(r, "seg2") {
			t.Errorf("NOFOLLOW delete locked common data: %s", r)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The effectors library is untouched.
	if f.st.Count("effectors") != 3 {
		t.Error("library damaged")
	}
}

func TestExecDeleteObject(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	res, err := f.exec.RunStatement(tx, `DELETE e FROM e IN effectors WHERE e.eff_id = 'e1'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("affected = %d", res.Affected)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if f.st.Get("effectors", "e1") != nil {
		t.Error("object survived delete")
	}
	// Dangling reference from robot r1 — detectable by the checker (the
	// language leaves referential actions to the application, like the
	// paper does).
	if err := f.st.CheckIntegrity(); err == nil {
		t.Error("expected dangling-reference report")
	}
}

func TestExecInsertStatement(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	res, err := f.exec.RunStatement(tx, `INSERT INTO effectors VALUE {eff_id: 'e9', tool: 't9'}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != StmtInsert || res.Affected != 1 {
		t.Errorf("result = %+v", res)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _ := f.st.Lookup(store.P("effectors", "e9", "tool"))
	if v != store.Str("t9") {
		t.Errorf("inserted = %v", v)
	}
}

func TestExecInsertComplexObject(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	_, err := f.exec.RunStatement(tx, `INSERT INTO cells VALUE {
		cell_id: 'c2',
		c_objects: SET(o1: {obj_id: 1, obj_name: 'x'}),
		robots: LIST(r1: {robot_id: 'r1', trajectory: 't', effectors: SET(e3: REF(effectors, 'e3'))})
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.st.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	v, err := f.st.Lookup(store.P("cells", "c2", "robots", "r1", "effectors", "e3"))
	if err != nil || v != (store.Ref{Relation: "effectors", Key: "e3"}) {
		t.Errorf("nested insert = %v, %v", v, err)
	}
}

func TestExecInsertErrors(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	bad := []string{
		`INSERT INTO nowhere VALUE {x: 1}`,                      // unknown relation
		`INSERT INTO effectors VALUE {eff_id: 'e9'}`,            // missing field
		`INSERT INTO effectors VALUE {eff_id: '', tool: 'x'}`,   // empty key
		`INSERT INTO effectors VALUE {eff_id: 'e1', tool: 'x'}`, // duplicate key
	}
	for _, src := range bad {
		if _, err := f.exec.RunStatement(tx, src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestExecStatementAbortUndoesDML(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	for _, src := range []string{
		`INSERT INTO effectors VALUE {eff_id: 'e9', tool: 't9'}`,
		`UPDATE e SET tool = 'mutated' FROM e IN effectors WHERE e.eff_id = 'e3'`,
		`DELETE r FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r1'`,
	} {
		if _, err := f.exec.RunStatement(tx, src); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
	tx.Abort()
	if f.st.Get("effectors", "e9") != nil {
		t.Error("insert survived abort")
	}
	v, _ := f.st.Lookup(store.P("effectors", "e3", "tool"))
	if v != store.Str("t3") {
		t.Error("update survived abort")
	}
	ids, _ := f.st.CollectionIDs(store.P("cells", "c1", "robots"))
	if len(ids) != 2 {
		t.Error("delete survived abort")
	}
}
