package query

import (
	"strings"
	"testing"

	"colock/internal/authz"
	"colock/internal/core"
)

// TestDMLAuthorizationEnforced: with an authorization table, modifying
// statements require the modify right on the target relation; SELECT … FOR
// UPDATE (check-out style) does not.
func TestDMLAuthorizationEnforced(t *testing.T) {
	auth := authz.NewTable(false)
	f := newFixture(t, core.Options{Rule4Prime: true, Authorizer: auth})
	tx := f.mgr.Begin()
	defer tx.Abort()
	auth.Grant(tx.ID(), "cells") // cells yes, effectors no

	// Allowed: update within cells.
	if _, err := f.exec.RunStatement(tx, `UPDATE r SET trajectory = 'x' FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r1'`); err != nil {
		t.Fatalf("authorized update refused: %v", err)
	}
	// Denied: all three DML kinds on effectors.
	denied := []string{
		`UPDATE e SET tool = 'x' FROM e IN effectors`,
		`DELETE e FROM e IN effectors WHERE e.eff_id = 'e1'`,
		`INSERT INTO effectors VALUE {eff_id: 'e9', tool: 't9'}`,
	}
	for _, src := range denied {
		_, err := f.exec.RunStatement(tx, src)
		if err == nil || !strings.Contains(err.Error(), "no right to modify") {
			t.Errorf("%s: err = %v", src, err)
		}
	}
	// SELECT FOR UPDATE on effectors is a lock request, not a modification:
	// permitted (the library S/X interplay is rule 4's business).
	if _, err := f.exec.RunStatement(tx, `SELECT e FROM e IN effectors WHERE e.eff_id = 'e3' FOR UPDATE`); err != nil {
		t.Fatalf("FOR UPDATE refused: %v", err)
	}
}

// TestDMLAllowAllByDefault: without an authorizer every DML passes.
func TestDMLAllowAllByDefault(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	if _, err := f.exec.RunStatement(tx, `INSERT INTO effectors VALUE {eff_id: 'e9', tool: 't9'}`); err != nil {
		t.Fatal(err)
	}
}
