package query

import (
	"testing"

	"colock/internal/core"
	"colock/internal/schema"
)

func analyzeSrc(t *testing.T, src string) *Analysis {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(schema.PaperSchema(), q, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestAnalyzeQ1(t *testing.T) {
	an := analyzeSrc(t, q1Src)
	if an.Spec.Relation != "cells" || !an.Spec.ObjectBound || an.ObjectKey != "c1" {
		t.Errorf("spec = %+v key=%q", an.Spec, an.ObjectKey)
	}
	if len(an.Spec.Hops) != 1 || an.Spec.Hops[0].Bound || an.Spec.Hops[0].Selectivity != 1 {
		t.Errorf("hops = %+v", an.Spec.Hops)
	}
	if an.Spec.Access != core.AccessRead {
		t.Error("access kind")
	}
	if an.SelectBinding != 1 {
		t.Errorf("select binding = %d", an.SelectBinding)
	}
	if len(an.Residual) != 0 {
		t.Errorf("residual = %v", an.Residual)
	}
}

func TestAnalyzeQ2(t *testing.T) {
	an := analyzeSrc(t, q2Src)
	if !an.Spec.ObjectBound || an.ObjectKey != "c1" {
		t.Error("object binding")
	}
	if len(an.Spec.Hops) != 1 || !an.Spec.Hops[0].Bound || an.HopKeys[0] != "r1" {
		t.Errorf("hop binding = %+v keys=%v", an.Spec.Hops, an.HopKeys)
	}
	if an.Spec.Access != core.AccessUpdate {
		t.Error("access kind")
	}
}

func TestAnalyzeResidualPredicates(t *testing.T) {
	an := analyzeSrc(t, `SELECT r FROM c IN cells, r IN c.robots WHERE r.trajectory = 'tr1' FOR READ`)
	if an.Spec.Hops[0].Bound {
		t.Error("non-key predicate bound the hop")
	}
	if got := an.Spec.Hops[0].Selectivity; got != 0.1 {
		t.Errorf("selectivity = %v, want 0.1 (eq default)", got)
	}
	if len(an.Residual[1]) != 1 {
		t.Errorf("residual = %v", an.Residual)
	}

	an = analyzeSrc(t, `SELECT c FROM c IN cells WHERE c.cell_id > 'a' FOR READ`)
	if an.Spec.ObjectBound {
		t.Error("range predicate on key bound the object")
	}
	if got := an.Spec.ObjectSelectivity; got != 0.3 {
		t.Errorf("object selectivity = %v, want 0.3 (range default)", got)
	}
}

func TestAnalyzeSelectivityFloor(t *testing.T) {
	an := analyzeSrc(t, `SELECT c FROM c IN cells WHERE c.cell_id > 'a' AND c.cell_id > 'b' AND c.cell_id > 'c' AND c.cell_id > 'd' AND c.cell_id > 'e' FOR READ`)
	if got := an.Spec.ObjectSelectivity; got < 0.01 {
		t.Errorf("selectivity %v below floor", got)
	}
}

func TestAnalyzeIntKeyLiteral(t *testing.T) {
	// Integer literals work as element IDs (obj_id is an int).
	an := analyzeSrc(t, `SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' AND o.obj_id = 1 FOR READ`)
	if !an.Spec.Hops[0].Bound || an.HopKeys[0] != "1" {
		t.Errorf("int key binding failed: %+v %v", an.Spec.Hops, an.HopKeys)
	}
}

func TestAnalyzeNoFollow(t *testing.T) {
	an := analyzeSrc(t, `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE NOFOLLOW`)
	if !an.Spec.NoFollowRefs {
		t.Error("NOFOLLOW not propagated")
	}
}

func TestAnalyzeTwoHopChain(t *testing.T) {
	an := analyzeSrc(t, `SELECT e FROM c IN cells, r IN c.robots, e IN r.effectors WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR READ`)
	if len(an.Spec.Hops) != 2 {
		t.Fatalf("hops = %+v", an.Spec.Hops)
	}
	if !an.Spec.Hops[0].Bound || an.Spec.Hops[1].Bound {
		t.Errorf("hop binding = %+v", an.Spec.Hops)
	}
	if an.SelectBinding != 2 {
		t.Errorf("select binding = %d", an.SelectBinding)
	}
	// The effectors elements are refs (not tuples): no element key attr.
	if an.ElemTypes[2].Kind != schema.KindRef {
		t.Errorf("elem type = %v", an.ElemTypes[2])
	}
}

func TestAnalyzeContradictoryKeys(t *testing.T) {
	q, err := Parse(`SELECT c FROM c IN cells WHERE c.cell_id = 'c1' AND c.cell_id = 'c2'`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(schema.PaperSchema(), q, AnalyzeOptions{}); err == nil {
		t.Error("contradictory keys accepted")
	}
	// Identical duplicates are fine.
	q2, _ := Parse(`SELECT c FROM c IN cells WHERE c.cell_id = 'c1' AND c.cell_id = 'c1'`)
	if _, err := Analyze(schema.PaperSchema(), q2, AnalyzeOptions{}); err != nil {
		t.Errorf("identical duplicate keys rejected: %v", err)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := []string{
		`SELECT c FROM c IN nowhere`,                             // unknown relation
		`SELECT r FROM c IN cells, r IN c.cell_id`,               // not a collection
		`SELECT r FROM c IN cells, r IN c.zz`,                    // unknown attr
		`SELECT c FROM c IN cells WHERE c.zz = 1`,                // unknown pred attr
		`SELECT c FROM c IN cells WHERE c.c_objects = 1`,         // non-atomic pred
		`SELECT e FROM c IN cells, r IN c.robots, e IN c.robots`, // non-linear chain
		`SELECT r FROM c IN cells, r IN c.robots.zz`,             // broken chain
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Analyze(schema.PaperSchema(), q, AnalyzeOptions{}); err == nil {
			t.Errorf("analyzed %q", src)
		}
	}
}

func TestBindingLevels(t *testing.T) {
	if bindingLevel(0) != 1 || bindingLevel(1) != 3 || bindingLevel(2) != 5 {
		t.Error("bindingLevel")
	}
	if collectionLevel(0) != 2 || collectionLevel(1) != 4 {
		t.Error("collectionLevel")
	}
}
