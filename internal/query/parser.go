package query

import (
	"fmt"
	"strconv"
	"strings"

	"colock/internal/store"
)

// Parse parses a query string into its AST.
//
// Grammar:
//
//	query   := SELECT path FROM binding (',' binding)*
//	           [WHERE pred (AND pred)*] [FOR (READ|UPDATE)] [NOFOLLOW]
//	binding := ident IN path
//	pred    := path op literal
//	path    := ident ('.' ident)*
//	op      := '=' | '<>' | '<' | '>' | '<=' | '>='
//	literal := 'string' | number | TRUE | FALSE
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.validateVars(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("query: %s at offset %d (near %q)", fmt.Sprintf(format, args...), t.pos, t.text)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.kind != tokKeyword || t.text != kw {
		return p.errf("expected %s", kw)
	}
	p.pos++
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier")
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	q := &Query{Select: sel[0], SelectAttrs: sel[1:]}
	for {
		b, err := p.parseBinding()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, b)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	if p.cur().kind == tokKeyword && p.cur().text == "WHERE" {
		p.pos++
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if p.cur().kind == tokKeyword && p.cur().text == "AND" {
				p.pos++
				continue
			}
			break
		}
	}
	if p.cur().kind == tokKeyword && p.cur().text == "FOR" {
		p.pos++
		t := p.next()
		switch {
		case t.kind == tokKeyword && t.text == "READ":
			q.Update = false
		case t.kind == tokKeyword && t.text == "UPDATE":
			q.Update = true
		default:
			p.pos--
			return nil, p.errf("expected READ or UPDATE after FOR")
		}
	}
	if p.cur().kind == tokKeyword && p.cur().text == "NOFOLLOW" {
		p.pos++
		q.NoFollow = true
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	return q, nil
}

func (p *parser) parseBinding() (Binding, error) {
	v, err := p.expectIdent()
	if err != nil {
		return Binding{}, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return Binding{}, err
	}
	src, err := p.parsePath()
	if err != nil {
		return Binding{}, err
	}
	return Binding{Var: v, Source: src}, nil
}

func (p *parser) parsePath() ([]string, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	path := []string{first}
	for p.cur().kind == tokSymbol && p.cur().text == "." {
		p.pos++
		seg, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		path = append(path, seg)
	}
	return path, nil
}

var validOps = map[string]bool{"=": true, "<>": true, "<": true, ">": true, "<=": true, ">=": true}

func (p *parser) parsePredicate() (Predicate, error) {
	path, err := p.parsePath()
	if err != nil {
		return Predicate{}, err
	}
	if len(path) < 2 {
		return Predicate{}, p.errf("predicate path %q must be var.attr", strings.Join(path, "."))
	}
	op := p.cur()
	if op.kind != tokSymbol || !validOps[op.text] {
		return Predicate{}, p.errf("expected comparison operator")
	}
	p.pos++
	lit, err := p.parseLiteral()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Path: path, Op: op.text, Lit: lit}, nil
}

func (p *parser) parseLiteral() (store.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokString:
		p.pos++
		return store.Str(t.text), nil
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return store.Real(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return store.Int(n), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.pos++
		return store.Bool(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.pos++
		return store.Bool(false), nil
	}
	return nil, p.errf("expected literal")
}
