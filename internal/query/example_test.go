package query_test

import (
	"fmt"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/query"
	"colock/internal/store"
	"colock/internal/txn"
)

// ExampleExecutor_Run executes the paper's query Q1 — all c_objects of cell
// c1 FOR READ — through the planner (which escalates the scan to one
// collection lock) and the lock protocol.
func ExampleExecutor_Run() {
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st,
		core.NewNamer(st.Catalog(), false), core.Options{})
	mgr := txn.NewManager(proto, st)
	exec := query.NewExecutor(mgr, core.PlannerOptions{})

	tx := mgr.Begin()
	defer tx.Abort()
	results, plan, err := exec.Run(tx,
		`SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ`)
	if err != nil {
		panic(err)
	}
	fmt.Println("granule:", plan.Spec.LevelName(plan.Level))
	for _, r := range results {
		fmt.Println(r.Path, "=", r.Value)
	}
	// Output:
	// granule: collection c_objects
	// cells/c1/c_objects/o1 = {obj_id:1, obj_name:"on1"}
}

// ExampleParse shows the AST round trip of a Figure 3 query.
func ExampleParse() {
	q, err := query.Parse(`select r from c in cells, r in c.robots
		where c.cell_id = 'c1' and r.robot_id = 'r2' for update`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output:
	// SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE
}

// ExampleExecutor_RunStatement applies the §4.5 robot-deletion example: the
// DELETE never touches the referenced effectors, so NOFOLLOW skips all
// common-data locks.
func ExampleExecutor_RunStatement() {
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st,
		core.NewNamer(st.Catalog(), false), core.Options{})
	mgr := txn.NewManager(proto, st)
	exec := query.NewExecutor(mgr, core.PlannerOptions{})

	tx := mgr.Begin()
	res, err := exec.RunStatement(tx,
		`DELETE r FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r2' NOFOLLOW`)
	if err != nil {
		panic(err)
	}
	if err := tx.Commit(); err != nil {
		panic(err)
	}
	fmt.Println("deleted:", res.Affected)
	ids, _ := st.CollectionIDs(store.P("cells", "c1", "robots"))
	fmt.Println("remaining robots:", ids)
	// Output:
	// deleted: 1
	// remaining robots: [r1]
}
