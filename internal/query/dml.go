package query

import (
	"fmt"

	"colock/internal/store"
)

// DML statements. Besides the paper's SELECT … FOR READ/UPDATE queries
// (Figure 3), the language supports the modifying statements that the
// paper's discussion needs — in particular §4.5's "deletion of a robot by a
// transaction which doesn't have the right to delete effectors":
//
//	UPDATE r SET trajectory = 'tr9' FROM c IN cells, r IN c.robots
//	WHERE c.cell_id = 'c1' AND r.robot_id = 'r1'
//
//	DELETE r FROM c IN cells, r IN c.robots
//	WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' NOFOLLOW
//
//	INSERT INTO effectors VALUE {eff_id: 'e9', tool: 't9'}
//
// Value literals cover the full extended-NF² model:
//
//	{attr: value, ...}              tuple
//	SET(id: value, ...)             set with element IDs
//	LIST(id: value, ...)            list in element order
//	REF(relation, 'key')            reference to common data
//	'str' | 42 | 2.5 | TRUE|FALSE   atomics

// StmtKind discriminates statements.
type StmtKind uint8

const (
	// StmtSelect is a SELECT query.
	StmtSelect StmtKind = iota
	// StmtUpdate is an UPDATE … SET statement.
	StmtUpdate
	// StmtDelete is a DELETE statement.
	StmtDelete
	// StmtInsert is an INSERT INTO … VALUE statement.
	StmtInsert
)

// String names the statement kind.
func (k StmtKind) String() string {
	switch k {
	case StmtSelect:
		return "SELECT"
	case StmtUpdate:
		return "UPDATE"
	case StmtDelete:
		return "DELETE"
	case StmtInsert:
		return "INSERT"
	}
	return fmt.Sprintf("StmtKind(%d)", uint8(k))
}

// SetClause is one attr = literal assignment of an UPDATE.
type SetClause struct {
	// Attrs is the attribute chain below the updated variable's instance.
	Attrs []string
	// Value is the new atomic value.
	Value store.Value
}

// Statement is a parsed statement of any kind.
type Statement struct {
	Kind StmtKind
	// Query carries target/bindings/predicates for SELECT, UPDATE and
	// DELETE (for UPDATE and DELETE, Query.Select names the affected
	// variable and Query.Update is forced true).
	Query *Query
	// Sets are the UPDATE assignments.
	Sets []SetClause
	// InsertRelation / InsertKey / InsertValue describe an INSERT.
	InsertRelation string
	InsertValue    *store.Tuple
}

// ParseStatement parses a statement of any kind.
func ParseStatement(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, p.errf("expected SELECT, UPDATE, DELETE or INSERT")
	}
	switch t.text {
	case "SELECT":
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := q.validateVars(); err != nil {
			return nil, err
		}
		return &Statement{Kind: StmtSelect, Query: q}, nil
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "INSERT":
		return p.parseInsert()
	}
	return nil, p.errf("expected SELECT, UPDATE, DELETE or INSERT")
}

// parseUpdate := UPDATE ident SET ident('.'ident)* '=' literal
// (',' ...)* FROM bindings [WHERE ...] [NOFOLLOW]
func (p *parser) parseUpdate() (*Statement, error) {
	p.pos++ // UPDATE
	target, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtUpdate}
	for {
		attrs, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokSymbol || p.cur().text != "=" {
			return nil, p.errf("expected '=' in SET clause")
		}
		p.pos++
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Attrs: attrs, Value: lit})
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	q, err := p.parseTail(target)
	if err != nil {
		return nil, err
	}
	st.Query = q
	return st, nil
}

// parseDelete := DELETE ident FROM bindings [WHERE ...] [NOFOLLOW]
func (p *parser) parseDelete() (*Statement, error) {
	p.pos++ // DELETE
	target, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q, err := p.parseTail(target)
	if err != nil {
		return nil, err
	}
	return &Statement{Kind: StmtDelete, Query: q}, nil
}

// parseTail parses FROM/WHERE/NOFOLLOW shared by UPDATE and DELETE and
// builds the underlying FOR UPDATE query for the target variable.
func (p *parser) parseTail(target string) (*Query, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	q := &Query{Select: target, Update: true}
	for {
		b, err := p.parseBinding()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, b)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	if p.cur().kind == tokKeyword && p.cur().text == "WHERE" {
		p.pos++
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if p.cur().kind == tokKeyword && p.cur().text == "AND" {
				p.pos++
				continue
			}
			break
		}
	}
	if p.cur().kind == tokKeyword && p.cur().text == "NOFOLLOW" {
		p.pos++
		q.NoFollow = true
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	if err := q.validateVars(); err != nil {
		return nil, err
	}
	return q, nil
}

// parseInsert := INSERT INTO ident VALUE tupleLiteral
func (p *parser) parseInsert() (*Statement, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUE"); err != nil {
		return nil, err
	}
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	tp, ok := v.(*store.Tuple)
	if !ok {
		return nil, fmt.Errorf("query: INSERT VALUE must be a tuple literal {…}")
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	return &Statement{Kind: StmtInsert, InsertRelation: rel, InsertValue: tp}, nil
}

// parseValue parses a value literal of the extended NF² model.
func (p *parser) parseValue() (store.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokSymbol && t.text == "{":
		p.pos++
		tp := store.NewTuple()
		if p.cur().kind == tokSymbol && p.cur().text == "}" {
			p.pos++
			return tp, nil
		}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.cur().kind != tokSymbol || p.cur().text != ":" {
				return nil, p.errf("expected ':' after tuple field %q", name)
			}
			p.pos++
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			tp.Set(name, v)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.pos++
				continue
			}
			break
		}
		if p.cur().kind != tokSymbol || p.cur().text != "}" {
			return nil, p.errf("expected '}'")
		}
		p.pos++
		return tp, nil
	case t.kind == tokKeyword && t.text == "SET":
		p.pos++
		elems, err := p.parseElems()
		if err != nil {
			return nil, err
		}
		set := store.NewSet()
		for _, e := range elems {
			set.Add(e.id, e.v)
		}
		return set, nil
	case t.kind == tokKeyword && t.text == "LIST":
		p.pos++
		elems, err := p.parseElems()
		if err != nil {
			return nil, err
		}
		list := store.NewList()
		for _, e := range elems {
			list.Append(e.id, e.v)
		}
		return list, nil
	case t.kind == tokKeyword && t.text == "REF":
		p.pos++
		if p.cur().kind != tokSymbol || p.cur().text != "(" {
			return nil, p.errf("expected '(' after REF")
		}
		p.pos++
		rel, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokSymbol || p.cur().text != "," {
			return nil, p.errf("expected ',' in REF")
		}
		p.pos++
		key := p.cur()
		if key.kind != tokString && key.kind != tokNumber {
			return nil, p.errf("expected key literal in REF")
		}
		p.pos++
		if p.cur().kind != tokSymbol || p.cur().text != ")" {
			return nil, p.errf("expected ')' after REF")
		}
		p.pos++
		return store.Ref{Relation: rel, Key: key.text}, nil
	default:
		return p.parseLiteral()
	}
}

type elemLit struct {
	id string
	v  store.Value
}

// parseElems parses '(' [id ':' value (',' id ':' value)*] ')' where id is
// an identifier, string or number.
func (p *parser) parseElems() ([]elemLit, error) {
	if p.cur().kind != tokSymbol || p.cur().text != "(" {
		return nil, p.errf("expected '(' after collection keyword")
	}
	p.pos++
	var out []elemLit
	if p.cur().kind == tokSymbol && p.cur().text == ")" {
		p.pos++
		return out, nil
	}
	for {
		idTok := p.cur()
		if idTok.kind != tokIdent && idTok.kind != tokString && idTok.kind != tokNumber {
			return nil, p.errf("expected element id")
		}
		p.pos++
		if p.cur().kind != tokSymbol || p.cur().text != ":" {
			return nil, p.errf("expected ':' after element id %q", idTok.text)
		}
		p.pos++
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		out = append(out, elemLit{id: idTok.text, v: v})
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	if p.cur().kind != tokSymbol || p.cur().text != ")" {
		return nil, p.errf("expected ')'")
	}
	p.pos++
	return out, nil
}
