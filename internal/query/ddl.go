package query

import (
	"fmt"

	"colock/internal/schema"
)

// DDL: CREATE RELATION statements let applications (and the shell) define
// extended-NF² schemas in the same language that queries them:
//
//	CREATE RELATION effectors IN SEGMENT seg2 KEY eff_id
//	  {eff_id: str, tool: str}
//
//	CREATE RELATION cells IN SEGMENT seg1 KEY cell_id {
//	  cell_id: str,
//	  c_objects: SET({obj_id: int, obj_name: str}),
//	  robots: LIST({robot_id: str, trajectory: str, effectors: SET(REF(effectors))})
//	}
//
// Type grammar:
//
//	type := str | int | real | bool
//	      | SET(type) | LIST(type)
//	      | {name: type, ...}        (tuple)
//	      | REF(relation)
//
// The statement registers the relation in the catalog and re-validates it;
// on a validation failure the relation is not added.

// CreateStatement is a parsed CREATE RELATION.
type CreateStatement struct {
	Relation *schema.Relation
}

// ParseCreate parses a CREATE RELATION statement.
func ParseCreate(input string) (*CreateStatement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("RELATION"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SEGMENT"); err != nil {
		return nil, err
	}
	seg, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("KEY"); err != nil {
		return nil, err
	}
	key, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input")
	}
	if t.Kind != schema.KindTuple {
		return nil, fmt.Errorf("query: CREATE RELATION %s: type must be a tuple {…}", name)
	}
	return &CreateStatement{Relation: &schema.Relation{
		Name: name, Segment: seg, Key: key, Type: t,
	}}, nil
}

// parseType parses the DDL type grammar.
func (p *parser) parseType() (*schema.Type, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent:
		p.pos++
		switch t.text {
		case "str":
			return schema.Str(), nil
		case "int":
			return schema.Int(), nil
		case "real":
			return schema.Real(), nil
		case "bool":
			return schema.Bool(), nil
		}
		return nil, p.errf("unknown atomic type %q", t.text)
	case t.kind == tokKeyword && (t.text == "SET" || t.text == "LIST"):
		p.pos++
		if p.cur().kind != tokSymbol || p.cur().text != "(" {
			return nil, p.errf("expected '(' after %s", t.text)
		}
		p.pos++
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokSymbol || p.cur().text != ")" {
			return nil, p.errf("expected ')'")
		}
		p.pos++
		if t.text == "SET" {
			return schema.Set(elem), nil
		}
		return schema.List(elem), nil
	case t.kind == tokKeyword && t.text == "REF":
		p.pos++
		if p.cur().kind != tokSymbol || p.cur().text != "(" {
			return nil, p.errf("expected '(' after REF")
		}
		p.pos++
		rel, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokSymbol || p.cur().text != ")" {
			return nil, p.errf("expected ')' after REF")
		}
		p.pos++
		return schema.Ref(rel), nil
	case t.kind == tokSymbol && t.text == "{":
		p.pos++
		var fields []schema.Field
		if p.cur().kind == tokSymbol && p.cur().text == "}" {
			return nil, p.errf("tuple type needs at least one field")
		}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.cur().kind != tokSymbol || p.cur().text != ":" {
				return nil, p.errf("expected ':' after field %q", name)
			}
			p.pos++
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, schema.F(name, ft))
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.pos++
				continue
			}
			break
		}
		if p.cur().kind != tokSymbol || p.cur().text != "}" {
			return nil, p.errf("expected '}'")
		}
		p.pos++
		return schema.Tuple(fields...), nil
	}
	return nil, p.errf("expected a type")
}

// Apply registers the relation in the catalog, validating the result. The
// catalog is left unchanged on error... relations cannot be unregistered, so
// validation happens against a trial catalog first.
func (c *CreateStatement) Apply(cat *schema.Catalog) error {
	// Trial: replay the existing relations plus the new one into a scratch
	// catalog and validate there.
	trial := schema.NewCatalog(cat.Database)
	trial.SetRecursive(cat.Recursive())
	for _, r := range cat.Relations() {
		if err := trial.AddRelation(r); err != nil {
			return err
		}
	}
	if err := trial.AddRelation(c.Relation); err != nil {
		return err
	}
	if err := trial.Validate(); err != nil {
		return err
	}
	return cat.AddRelation(c.Relation)
}
