package query

import (
	"fmt"
	"strings"

	"colock/internal/core"
	"colock/internal/schema"
	"colock/internal/store"
)

// Analysis is the result of resolving a query against a schema catalog:
// "Each query to be processed is first analyzed to find out which attributes
// will be accessed, and which kind of access will be done" (§4.1). The Spec
// feeds the §4.5 planner; the binding metadata drives execution.
type Analysis struct {
	Query *Query
	// Spec is the planner input derived from the query.
	Spec core.QuerySpec
	// ObjectKey is the bound complex-object key when Spec.ObjectBound.
	ObjectKey string
	// HopKeys holds the bound element ID per hop ("" for scans).
	HopKeys []string
	// SelectBinding is the index of the projected binding (0 = the
	// relation binding, i = hop i-1's element binding).
	SelectBinding int
	// Residual groups the predicates that must be evaluated by reading
	// data, keyed by binding index.
	Residual map[int][]Predicate
	// ElemTypes caches the tuple type of each binding's instances (nil for
	// non-tuple elements), index 0 being the relation's object type.
	ElemTypes []*schema.Type
}

// AnalyzeOptions tune the analyzer's selectivity guesses for residual
// predicates.
type AnalyzeOptions struct {
	// EqSelectivity estimates equality predicates on non-key attributes
	// (default 0.1).
	EqSelectivity float64
	// RangeSelectivity estimates range predicates (default 0.3).
	RangeSelectivity float64
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.EqSelectivity <= 0 {
		o.EqSelectivity = 0.1
	}
	if o.RangeSelectivity <= 0 {
		o.RangeSelectivity = 0.3
	}
	return o
}

// Analyze resolves the query's bindings against the catalog. The FROM chain
// must be linear: each binding after the first ranges over a collection
// reached from the previous binding's variable.
func Analyze(cat *schema.Catalog, q *Query, opts AnalyzeOptions) (*Analysis, error) {
	opts = opts.withDefaults()
	if len(q.From) == 0 {
		return nil, fmt.Errorf("query: no FROM bindings")
	}

	first := q.From[0]
	if len(first.Source) != 1 {
		return nil, fmt.Errorf("query: first binding %q must range over a relation", first.Var)
	}
	rel := cat.Relation(first.Source[0])
	if rel == nil {
		return nil, fmt.Errorf("query: unknown relation %q", first.Source[0])
	}

	an := &Analysis{
		Query:    q,
		Residual: make(map[int][]Predicate),
	}
	an.Spec.Relation = rel.Name
	an.Spec.NoFollowRefs = q.NoFollow
	if q.Update {
		an.Spec.Access = core.AccessUpdate
	}
	an.ElemTypes = []*schema.Type{rel.Type}

	// Resolve the hop chain.
	cur := rel.Type
	for i := 1; i < len(q.From); i++ {
		b := q.From[i]
		if len(b.Source) < 2 {
			return nil, fmt.Errorf("query: binding %q must navigate from a variable", b.Var)
		}
		if b.Source[0] != q.From[i-1].Var {
			return nil, fmt.Errorf("query: non-linear FROM chain: %q ranges over %q, expected %q",
				b.Var, b.Source[0], q.From[i-1].Var)
		}
		attrs := b.Source[1:]
		t := cur
		for _, a := range attrs {
			if t == nil || t.Kind != schema.KindTuple {
				return nil, fmt.Errorf("query: binding %q: %q is not a tuple attribute", b.Var, a)
			}
			t = t.Field(a)
			if t == nil {
				return nil, fmt.Errorf("query: binding %q: unknown attribute %q", b.Var, a)
			}
		}
		if t.Kind != schema.KindSet && t.Kind != schema.KindList {
			return nil, fmt.Errorf("query: binding %q: %q is not a collection", b.Var, strings.Join(attrs, "."))
		}
		an.Spec.Hops = append(an.Spec.Hops, core.Hop{Attrs: attrs, Selectivity: 1})
		an.HopKeys = append(an.HopKeys, "")
		cur = t.Elem
		an.ElemTypes = append(an.ElemTypes, cur)
	}
	an.Spec.ObjectSelectivity = 1

	// Resolve the SELECT variable.
	an.SelectBinding = -1
	for i, b := range q.From {
		if b.Var == q.Select {
			an.SelectBinding = i
			break
		}
	}
	if an.SelectBinding < 0 {
		return nil, fmt.Errorf("query: SELECT variable %q not bound", q.Select)
	}
	if len(q.SelectAttrs) > 0 {
		t := an.ElemTypes[an.SelectBinding]
		for _, a := range q.SelectAttrs {
			if t == nil || t.Kind != schema.KindTuple {
				return nil, fmt.Errorf("query: SELECT %s.%s: not a tuple attribute chain",
					q.Select, strings.Join(q.SelectAttrs, "."))
			}
			t = t.Field(a)
			if t == nil {
				return nil, fmt.Errorf("query: SELECT %s.%s: unknown attribute %q",
					q.Select, strings.Join(q.SelectAttrs, "."), a)
			}
		}
	}

	// Classify predicates: key-equality predicates bind a level; everything
	// else becomes residual and lowers the estimated selectivity.
	for _, p := range q.Where {
		idx := -1
		for i, b := range q.From {
			if b.Var == p.Path[0] {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("query: predicate references unbound variable %q", p.Path[0])
		}
		attrs := p.Path[1:]
		if len(attrs) == 0 {
			return nil, fmt.Errorf("query: predicate on bare variable %q", p.Path[0])
		}
		// Validate the attribute chain against the binding's tuple type.
		t := an.ElemTypes[idx]
		for _, a := range attrs {
			if t == nil || t.Kind != schema.KindTuple {
				return nil, fmt.Errorf("query: predicate %s: %q is not a tuple attribute", strings.Join(p.Path, "."), a)
			}
			t = t.Field(a)
			if t == nil {
				return nil, fmt.Errorf("query: predicate %s: unknown attribute %q", strings.Join(p.Path, "."), a)
			}
		}
		if !t.Kind.Atomic() || t.Kind == schema.KindRef {
			return nil, fmt.Errorf("query: predicate %s: attribute is not atomic", strings.Join(p.Path, "."))
		}

		isKeyEq := p.Op == "=" && len(attrs) == 1 && attrs[0] == keyAttr(cat, rel, idx, an)
		if isKeyEq {
			key, ok := litKey(p.Lit)
			if !ok {
				return nil, fmt.Errorf("query: key predicate %s needs a string or integer literal", strings.Join(p.Path, "."))
			}
			if idx == 0 {
				if an.Spec.ObjectBound && an.ObjectKey != key {
					return nil, fmt.Errorf("query: contradictory key predicates on %q", p.Path[0])
				}
				an.Spec.ObjectBound = true
				an.ObjectKey = key
			} else {
				h := &an.Spec.Hops[idx-1]
				if h.Bound && an.HopKeys[idx-1] != key {
					return nil, fmt.Errorf("query: contradictory key predicates on %q", p.Path[0])
				}
				h.Bound = true
				an.HopKeys[idx-1] = key
			}
			continue
		}

		an.Residual[idx] = append(an.Residual[idx], p)
		sel := opts.RangeSelectivity
		if p.Op == "=" {
			sel = opts.EqSelectivity
		}
		if idx == 0 {
			an.Spec.ObjectSelectivity *= sel
			if an.Spec.ObjectSelectivity < 0.01 {
				an.Spec.ObjectSelectivity = 0.01
			}
		} else {
			h := &an.Spec.Hops[idx-1]
			h.Selectivity *= sel
			if h.Selectivity < 0.01 {
				h.Selectivity = 0.01
			}
		}
	}
	return an, nil
}

// keyAttr returns the attribute name whose equality predicate binds binding
// idx: the relation key for the first binding; for element bindings the
// conventional ID attribute — the first tuple field ending in "_id" (the
// paper: "the suffix _id of an attribute name indicates a key attribute").
// Returns "" when the binding has no key attribute.
func keyAttr(cat *schema.Catalog, rel *schema.Relation, idx int, an *Analysis) string {
	if idx == 0 {
		return rel.Key
	}
	t := an.ElemTypes[idx]
	if t == nil || t.Kind != schema.KindTuple {
		return ""
	}
	for _, f := range t.Fields {
		if strings.HasSuffix(f.Name, "_id") {
			return f.Name
		}
	}
	return ""
}

// litKey renders a literal as a key/element-ID string.
func litKey(v store.Value) (string, bool) {
	switch x := v.(type) {
	case store.Str:
		return string(x), true
	case store.Int:
		return x.String(), true
	}
	return "", false
}

// bindingLevel maps a binding index to the planner's GranuleLevel of its
// instances: binding 0 → level 1 (objects), binding i → level 2i+1
// (elements of hop i-1).
func bindingLevel(idx int) core.GranuleLevel {
	if idx == 0 {
		return 1
	}
	return core.GranuleLevel(2*idx + 1)
}

// collectionLevel maps hop index i (binding i+1) to the level of its
// collection instances.
func collectionLevel(hop int) core.GranuleLevel { return core.GranuleLevel(2*hop + 2) }
