package query

import (
	"fmt"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/schema"
	"colock/internal/store"
	"colock/internal/txn"
)

// StatementResult reports what a statement did.
type StatementResult struct {
	Kind StmtKind
	// Results holds the projected rows of a SELECT.
	Results []Result
	// Affected counts updated/deleted/inserted instances.
	Affected int
	// Plan is the query-specific lock plan (zero for INSERT).
	Plan core.Plan
}

// RunStatement parses and executes any statement kind inside a transaction.
func (e *Executor) RunStatement(tx *txn.Txn, input string) (*StatementResult, error) {
	stmt, err := ParseStatement(input)
	if err != nil {
		return nil, err
	}
	return e.ExecStatement(tx, stmt)
}

// ExecStatement executes a parsed statement.
func (e *Executor) ExecStatement(tx *txn.Txn, stmt *Statement) (*StatementResult, error) {
	switch stmt.Kind {
	case StmtSelect:
		res, plan, err := e.RunQuery(tx, stmt.Query)
		if err != nil {
			return nil, err
		}
		return &StatementResult{Kind: StmtSelect, Results: res, Affected: 0, Plan: plan}, nil
	case StmtUpdate:
		return e.execUpdate(tx, stmt)
	case StmtDelete:
		return e.execDelete(tx, stmt)
	case StmtInsert:
		return e.execInsert(tx, stmt)
	}
	return nil, fmt.Errorf("query: unknown statement kind %v", stmt.Kind)
}

// execUpdate runs the underlying FOR UPDATE query, then applies the SET
// clauses to every matched instance under the already-held X coverage.
func (e *Executor) execUpdate(tx *txn.Txn, stmt *Statement) (*StatementResult, error) {
	cat := e.mgr.Store().Catalog()
	if err := e.requireModifyRight(tx, stmt.Query.From[0].Source[0]); err != nil {
		return nil, err
	}
	if err := validateSetClauses(cat, stmt); err != nil {
		return nil, err
	}
	res, plan, err := e.RunQuery(tx, stmt.Query)
	if err != nil {
		return nil, err
	}
	for _, r := range res {
		for _, set := range stmt.Sets {
			p := r.Path
			for _, a := range set.Attrs {
				p = p.Child(a)
			}
			if err := tx.UpdateAtomicAt(p, set.Value); err != nil {
				return nil, err
			}
		}
	}
	return &StatementResult{Kind: StmtUpdate, Affected: len(res), Plan: plan}, nil
}

// validateSetClauses checks the SET attribute chains against the schema type
// of the updated variable, before any locks are taken.
func validateSetClauses(cat *schema.Catalog, stmt *Statement) error {
	an, err := Analyze(cat, stmt.Query, AnalyzeOptions{})
	if err != nil {
		return err
	}
	t := an.ElemTypes[an.SelectBinding]
	for _, set := range stmt.Sets {
		ft := t
		for _, a := range set.Attrs {
			if ft == nil || ft.Kind != schema.KindTuple {
				return fmt.Errorf("query: SET %v: not a tuple attribute chain", set.Attrs)
			}
			ft = ft.Field(a)
			if ft == nil {
				return fmt.Errorf("query: SET %v: unknown attribute %q", set.Attrs, a)
			}
		}
		if !ft.Kind.Atomic() {
			return fmt.Errorf("query: SET %v: attribute is not atomic", set.Attrs)
		}
		if err := store.Check(set.Value, ft); err != nil {
			return fmt.Errorf("query: SET %v: %w", set.Attrs, err)
		}
	}
	return nil
}

// execDelete runs the underlying FOR UPDATE query and removes every matched
// instance: complex objects are deleted from their relation, collection
// elements are removed from their collection (which is X-locked first —
// honouring NOFOLLOW, the §4.5 robot-deletion optimization).
func (e *Executor) execDelete(tx *txn.Txn, stmt *Statement) (*StatementResult, error) {
	if err := e.requireModifyRight(tx, stmt.Query.From[0].Source[0]); err != nil {
		return nil, err
	}
	res, plan, err := e.RunQuery(tx, stmt.Query)
	if err != nil {
		return nil, err
	}
	noFollow := stmt.Query.NoFollow
	for _, r := range res {
		if len(r.Path) == 2 {
			// A complex object: the FOR UPDATE query already X-locked it.
			if err := tx.Delete(r.Path.Relation(), r.Path.Key()); err != nil {
				return nil, err
			}
			continue
		}
		// A collection element: structural changes need X on the collection.
		coll := r.Path.Parent()
		id := r.Path[len(r.Path)-1]
		if noFollow {
			if err := tx.LockPath(nil, coll, lock.X, txn.WithNoFollow()); err != nil {
				return nil, err
			}
			if err := tx.RemoveElemAt(coll, id); err != nil {
				return nil, err
			}
		} else {
			if err := tx.RemoveElem(coll, id); err != nil {
				return nil, err
			}
		}
	}
	return &StatementResult{Kind: StmtDelete, Affected: len(res), Plan: plan}, nil
}

// execInsert type-checks the tuple literal against the relation, extracts
// the key attribute, and inserts under an X lock on the new object's
// resource.
func (e *Executor) execInsert(tx *txn.Txn, stmt *Statement) (*StatementResult, error) {
	cat := e.mgr.Store().Catalog()
	rel := cat.Relation(stmt.InsertRelation)
	if rel == nil {
		return nil, fmt.Errorf("query: INSERT into unknown relation %q", stmt.InsertRelation)
	}
	if err := e.requireModifyRight(tx, stmt.InsertRelation); err != nil {
		return nil, err
	}
	if err := store.Check(stmt.InsertValue, rel.Type); err != nil {
		return nil, fmt.Errorf("query: INSERT into %q: %w", stmt.InsertRelation, err)
	}
	key := keyString(stmt.InsertValue.Get(rel.Key))
	if key == "" {
		return nil, fmt.Errorf("query: INSERT into %q: empty key attribute %q", stmt.InsertRelation, rel.Key)
	}
	if err := tx.Insert(stmt.InsertRelation, key, stmt.InsertValue); err != nil {
		return nil, err
	}
	return &StatementResult{Kind: StmtInsert, Affected: 1}, nil
}

// requireModifyRight enforces the authorization component for modifying
// statements: the transaction must hold the modify right on the target
// relation (with the default AllowAll authorizer this always passes).
func (e *Executor) requireModifyRight(tx *txn.Txn, relation string) error {
	if !e.mgr.Protocol().CanModify(tx.ID(), relation) {
		return fmt.Errorf("query: txn %d has no right to modify relation %q", tx.ID(), relation)
	}
	return nil
}

func keyString(v store.Value) string {
	switch x := v.(type) {
	case store.Str:
		return string(x)
	case store.Int:
		return x.String()
	case store.Real:
		return x.String()
	case store.Bool:
		return x.String()
	}
	return ""
}
