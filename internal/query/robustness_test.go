package query

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestLexerNeverPanics: arbitrary byte strings either tokenize or return an
// error — no panics, no infinite loops.
func TestLexerNeverPanics(t *testing.T) {
	f := func(input string) bool {
		toks, err := lex(input)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].kind == tokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics: random token soup built from the language's own
// vocabulary must parse or fail cleanly.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "AND", "FOR", "READ", "UPDATE", "IN",
		"NOFOLLOW", "DELETE", "INSERT", "INTO", "VALUE", "SET", "LIST", "REF",
		"c", "r", "cells", "robots", "cell_id", ".", ",", "=", "<", ">", "<=",
		">=", "<>", "{", "}", "(", ")", ":", "'x'", "42", "2.5", "TRUE", "FALSE",
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := rng.Intn(15) + 1
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[rng.Intn(len(vocab))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseStatement(src)
			_, _ = Parse(src)
		}()
	}
}

// TestParseRoundTripProperty: every successfully parsed SELECT re-parses to
// an identical canonical form.
func TestParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rels := []string{"cells", "effectors"}
	attrs := []string{"cell_id", "robots", "c_objects", "tool", "eff_id"}
	ops := []string{"=", "<>", "<", ">", "<=", ">="}
	for i := 0; i < 200; i++ {
		var b strings.Builder
		b.WriteString("SELECT v0 FROM v0 IN ")
		b.WriteString(rels[rng.Intn(2)])
		if rng.Intn(2) == 0 {
			b.WriteString(", v1 IN v0.")
			b.WriteString(attrs[rng.Intn(len(attrs))])
		}
		if rng.Intn(2) == 0 {
			b.WriteString(" WHERE v0.")
			b.WriteString(attrs[rng.Intn(len(attrs))])
			b.WriteString(" ")
			b.WriteString(ops[rng.Intn(len(ops))])
			b.WriteString(" 'lit'")
		}
		if rng.Intn(2) == 0 {
			b.WriteString(" FOR UPDATE")
		}
		q, err := Parse(b.String())
		if err != nil {
			continue // some combinations are (rightly) invalid
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("canonical form %q failed to parse: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip diverged: %q vs %q", q.String(), q2.String())
		}
	}
}
