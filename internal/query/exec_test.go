package query

import (
	"testing"
	"time"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
	"colock/internal/txn"
)

type fixture struct {
	st   *store.Store
	mgr  *txn.Manager
	exec *Executor
}

func newFixture(t *testing.T, opts core.Options) *fixture {
	t.Helper()
	st := store.PaperDatabase()
	core.CollectStatistics(st)
	nm := core.NewNamer(st.Catalog(), false)
	proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm, opts)
	mgr := txn.NewManager(proto, st)
	return &fixture{st: st, mgr: mgr, exec: NewExecutor(mgr, core.PlannerOptions{})}
}

func heldOf(f *fixture, id lock.TxnID) map[string]lock.Mode {
	out := make(map[string]lock.Mode)
	for _, h := range f.mgr.Protocol().Manager().HeldLocks(id) {
		out[string(h.Resource)] = h.Mode
	}
	return out
}

// TestExecQ1: all c_objects of cell c1 for read — one S lock on the
// c_objects collection, results contain o1.
func TestExecQ1(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, plan, err := f.exec.Run(tx, q1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Path.String() != "cells/c1/c_objects/o1" {
		t.Fatalf("results = %v", res)
	}
	obj := res[0].Value.(*store.Tuple)
	if obj.Get("obj_name") != store.Str("on1") {
		t.Errorf("value = %v", res[0].Value)
	}
	if got := plan.Spec.LevelName(plan.Level); got != "collection c_objects" {
		t.Errorf("plan level = %s", got)
	}
	held := heldOf(f, tx.ID())
	if held["db1/seg1/cells/c1/c_objects"] != lock.S {
		t.Errorf("collection not S-locked: %v", held)
	}
	if _, ok := held["db1/seg1/cells/c1/c_objects/o1"]; ok {
		t.Error("element locked despite collection-level plan")
	}
}

// TestExecQ2MatchesFigure7: executing the paper's Q2 through the full stack
// (parser → analyzer → planner → executor → protocol) produces exactly the
// Figure 7 lock set.
func TestExecQ2MatchesFigure7(t *testing.T) {
	auth := authz.NewTable(false)
	f := newFixture(t, core.Options{Rule4Prime: true, Authorizer: auth})
	tx := f.mgr.Begin()
	defer tx.Abort()
	auth.Grant(tx.ID(), "cells")

	res, plan, err := f.exec.Run(tx, q2Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Path.String() != "cells/c1/robots/r1" {
		t.Fatalf("results = %v", res)
	}
	if got := plan.Spec.LevelName(plan.Level); got != "element robots" {
		t.Errorf("plan level = %s", got)
	}
	want := map[string]lock.Mode{
		"db1":                         lock.IX,
		"db1/seg1":                    lock.IX,
		"db1/seg1/cells":              lock.IX,
		"db1/seg1/cells/c1":           lock.IX,
		"db1/seg1/cells/c1/robots":    lock.IX,
		"db1/seg1/cells/c1/robots/r1": lock.X,
		"db1/seg2":                    lock.IS,
		"db1/seg2/effectors":          lock.IS,
		"db1/seg2/effectors/e1":       lock.S,
		"db1/seg2/effectors/e2":       lock.S,
	}
	got := heldOf(f, tx.ID())
	if len(got) != len(want) {
		t.Fatalf("lock set:\n got %v\nwant %v", got, want)
	}
	for r, m := range want {
		if got[r] != m {
			t.Errorf("held[%s] = %v, want %v", r, got[r], m)
		}
	}
}

// TestExecQ2Q3ConcurrentEndToEnd: the full-stack version of the paper's
// headline claim — Q2 and Q3 run concurrently under rule 4′.
func TestExecQ2Q3ConcurrentEndToEnd(t *testing.T) {
	auth := authz.NewTable(false)
	f := newFixture(t, core.Options{Rule4Prime: true, Authorizer: auth})
	tx2 := f.mgr.Begin()
	tx3 := f.mgr.Begin()
	auth.Grant(tx2.ID(), "cells")
	auth.Grant(tx3.ID(), "cells")

	if _, _, err := f.exec.Run(tx2, q2Src); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := f.exec.Run(tx3, q3Src)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Q3 blocked behind Q2")
	}
	if f.mgr.Protocol().Manager().Stats().Waits != 0 {
		t.Error("waits > 0")
	}
	tx2.Abort()
	tx3.Abort()
}

func TestExecRelationScan(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, plan, err := f.exec.Run(tx, `SELECT e FROM e IN effectors FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	if got := plan.Spec.LevelName(plan.Level); got != "relation effectors" {
		t.Errorf("plan level = %s", got)
	}
	held := heldOf(f, tx.ID())
	if held["db1/seg2/effectors"] != lock.S {
		t.Errorf("relation not S-locked: %v", held)
	}
	if len(held) != 3 { // db, seg2, relation
		t.Errorf("lock count = %d: %v", len(held), held)
	}
}

// TestExecResidualPredicate: a non-key predicate filters rows; scanned
// elements are read under locks.
func TestExecResidualPredicate(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, _, err := f.exec.Run(tx, `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.trajectory = 'tr2' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Path.String() != "cells/c1/robots/r2" {
		t.Fatalf("results = %v", res)
	}
}

func TestExecPredicateOperatorsEndToEnd(t *testing.T) {
	f := newFixture(t, core.Options{})
	cases := []struct {
		src  string
		want int
	}{
		{`SELECT e FROM e IN effectors WHERE e.tool <> 't2' FOR READ`, 2},
		{`SELECT e FROM e IN effectors WHERE e.tool < 't2' FOR READ`, 1},
		{`SELECT e FROM e IN effectors WHERE e.tool >= 't2' FOR READ`, 2},
		{`SELECT e FROM e IN effectors WHERE e.tool <= 't9' FOR READ`, 3},
		{`SELECT e FROM e IN effectors WHERE e.tool > 't9' FOR READ`, 0},
		{`SELECT o FROM c IN cells, o IN c.c_objects WHERE o.obj_id < 5 FOR READ`, 1},
	}
	for _, c := range cases {
		tx := f.mgr.Begin()
		res, _, err := f.exec.Run(tx, c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if len(res) != c.want {
			t.Errorf("%s: %d results, want %d", c.src, len(res), c.want)
		}
		tx.Abort()
	}
}

// TestExecUpdateLocksX: FOR UPDATE takes X locks at the plan granule.
func TestExecUpdateLocksX(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	_, _, err := f.exec.Run(tx, `SELECT e FROM e IN effectors WHERE e.eff_id = 'e3' FOR UPDATE`)
	if err != nil {
		t.Fatal(err)
	}
	held := heldOf(f, tx.ID())
	if held["db1/seg2/effectors/e3"] != lock.X {
		t.Errorf("held = %v", held)
	}
	// The X result lock permits a covered update.
	if err := tx.UpdateAtomicAt(store.P("effectors", "e3", "tool"), store.Str("t3b")); err != nil {
		t.Errorf("covered update failed: %v", err)
	}
}

// TestExecNoFollowSkipsCommonData: the §4.5 semantics exploitation — a
// NOFOLLOW update of a robot takes no locks on the effectors library at all.
func TestExecNoFollowSkipsCommonData(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	_, _, err := f.exec.Run(tx, q2Src+" NOFOLLOW")
	if err != nil {
		t.Fatal(err)
	}
	held := heldOf(f, tx.ID())
	for r := range held {
		if r == "db1/seg2" || r == "db1/seg2/effectors" ||
			r == "db1/seg2/effectors/e1" || r == "db1/seg2/effectors/e2" {
			t.Errorf("NOFOLLOW still locked %s", r)
		}
	}
	if held["db1/seg1/cells/c1/robots/r1"] != lock.X {
		t.Errorf("target not locked: %v", held)
	}
}

func TestExecBoundObjectAbsent(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, _, err := f.exec.Run(tx, `SELECT c FROM c IN cells WHERE c.cell_id = 'zz' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results = %v", res)
	}
}

func TestExecBoundElementAbsent(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, _, err := f.exec.Run(tx, `SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r99' FOR UPDATE`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results = %v", res)
	}
}

func TestExecTwoHopProjection(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, _, err := f.exec.Run(tx, `SELECT e FROM c IN cells, r IN c.robots, e IN r.effectors WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Path.String() != "cells/c1/robots/r1/effectors/e1" {
		t.Errorf("res[0] = %v", res[0].Path)
	}
	// The projected values are the reference BLUs.
	if res[0].Value != (store.Ref{Relation: "effectors", Key: "e1"}) {
		t.Errorf("value = %v", res[0].Value)
	}
}

// TestExecProjectIntermediateVar: SELECT of an upstream variable while
// predicates live deeper; the projected instance gets its own result lock.
func TestExecProjectIntermediateVar(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, _, err := f.exec.Run(tx, `SELECT c FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r1' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Path.String() != "cells/c1" {
		t.Fatalf("results = %v", res)
	}
	held := heldOf(f, tx.ID())
	if !held["db1/seg1/cells/c1"].Covers(lock.S) {
		t.Errorf("projected object not S-covered: %v", held)
	}
}

func TestExecResultsAreClones(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, _, err := f.exec.Run(tx, `SELECT e FROM e IN effectors WHERE e.eff_id = 'e1' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	res[0].Value.(*store.Tuple).Set("tool", store.Str("hacked"))
	v, _ := f.st.Lookup(store.P("effectors", "e1", "tool"))
	if v != store.Str("t1") {
		t.Error("executor leaked a live value")
	}
}

func TestExecParseAndAnalyzeErrorsPropagate(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	if _, _, err := f.exec.Run(tx, `garbage`); err == nil {
		t.Error("parse error swallowed")
	}
	if _, _, err := f.exec.Run(tx, `SELECT c FROM c IN nowhere`); err == nil {
		t.Error("analyze error swallowed")
	}
}

func TestCompareValueErrors(t *testing.T) {
	if _, err := compareValues(store.Str("a"), store.Int(1)); err == nil {
		t.Error("str vs int compared")
	}
	if _, err := compareValues(store.Bool(true), store.Str("x")); err == nil {
		t.Error("bool vs str compared")
	}
	if _, err := compareValues(store.NewSet(), store.Int(1)); err == nil {
		t.Error("set compared")
	}
	if c, _ := compareValues(store.Int(1), store.Real(1.5)); c != -1 {
		t.Error("int vs real")
	}
	if c, _ := compareValues(store.Bool(false), store.Bool(true)); c != -1 {
		t.Error("bool order")
	}
	if _, err := comparePred(store.Int(1), "??", store.Int(1)); err == nil {
		t.Error("bad op accepted")
	}
}
