package query

import (
	"testing"

	"colock/internal/core"
	"colock/internal/schema"
	"colock/internal/store"
)

func TestParseSelectProjection(t *testing.T) {
	q, err := Parse(`SELECT r.trajectory FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r1' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != "r" || len(q.SelectAttrs) != 1 || q.SelectAttrs[0] != "trajectory" {
		t.Errorf("projection = %q.%v", q.Select, q.SelectAttrs)
	}
	// Round trip keeps the projection.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatal(err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), q2.String())
	}
}

func TestAnalyzeProjectionValidation(t *testing.T) {
	cat := schema.PaperSchema()
	for _, src := range []string{
		`SELECT r.nope FROM c IN cells, r IN c.robots`, // unknown attr
		`SELECT c.robots.r1 FROM c IN cells`,           // not a tuple chain
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Analyze(cat, q, AnalyzeOptions{}); err == nil {
			t.Errorf("analyzed %q", src)
		}
	}
	// Projecting a collection-valued attribute is allowed (it is a value).
	q, _ := Parse(`SELECT r.effectors FROM c IN cells, r IN c.robots`)
	if _, err := Analyze(cat, q, AnalyzeOptions{}); err != nil {
		t.Errorf("collection projection rejected: %v", err)
	}
}

func TestExecProjection(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, _, err := f.exec.Run(tx, `SELECT r.trajectory FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Path.String() != "cells/c1/robots/r1/trajectory" || res[0].Value != store.Str("tr1") {
		t.Errorf("res[0] = %v", res[0])
	}
	if res[1].Value != store.Str("tr2") {
		t.Errorf("res[1] = %v", res[1])
	}
}

func TestExecProjectionOfCollection(t *testing.T) {
	f := newFixture(t, core.Options{})
	tx := f.mgr.Begin()
	defer tx.Abort()
	res, _, err := f.exec.Run(tx, `SELECT r.effectors FROM c IN cells, r IN c.robots WHERE r.robot_id = 'r2' FOR READ`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("results = %v", res)
	}
	set := res[0].Value.(*store.Set)
	if set.Len() != 2 || set.Get("e2") == nil {
		t.Errorf("value = %v", res[0].Value)
	}
}
