package query

import (
	"fmt"
	"strings"

	"colock/internal/store"
)

// Query is the AST of a SELECT query.
type Query struct {
	// Select names the projected range variable.
	Select string
	// SelectAttrs optionally projects an attribute chain below the
	// variable's instances (SELECT r.trajectory FROM …).
	SelectAttrs []string
	// From lists the range-variable bindings in declaration order.
	From []Binding
	// Where is a conjunction of predicates.
	Where []Predicate
	// Update is true for FOR UPDATE queries (X locks), false for FOR READ.
	Update bool
	// NoFollow marks queries whose semantics never access referenced
	// common data; the executor then skips downward propagation (§4.5).
	NoFollow bool
}

// Binding declares a range variable: `c IN cells` ranges over a relation's
// complex objects; `r IN c.robots` ranges over the elements of a collection
// reached from another variable.
type Binding struct {
	Var string
	// Source is the dotted source path: either [relation] or
	// [var, attr, attr...].
	Source []string
}

// Predicate compares a dotted path expression rooted at a range variable
// with a literal.
type Predicate struct {
	// Path is [var, attr, attr...].
	Path []string
	// Op is one of = <> < > <= >=.
	Op string
	// Lit is the comparison literal.
	Lit store.Value
}

// String renders the query back to source form (canonical spelling).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(q.Select)
	for _, a := range q.SelectAttrs {
		b.WriteByte('.')
		b.WriteString(a)
	}
	b.WriteString(" FROM ")
	for i, f := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Var)
		b.WriteString(" IN ")
		b.WriteString(strings.Join(f.Source, "."))
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(strings.Join(p.Path, "."))
			b.WriteByte(' ')
			b.WriteString(p.Op)
			b.WriteByte(' ')
			b.WriteString(litString(p.Lit))
		}
	}
	if q.Update {
		b.WriteString(" FOR UPDATE")
	} else {
		b.WriteString(" FOR READ")
	}
	if q.NoFollow {
		b.WriteString(" NOFOLLOW")
	}
	return b.String()
}

func litString(v store.Value) string {
	switch x := v.(type) {
	case store.Str:
		return "'" + string(x) + "'"
	default:
		return v.String()
	}
}

// binding returns the binding of a variable, or nil.
func (q *Query) binding(name string) *Binding {
	for i := range q.From {
		if q.From[i].Var == name {
			return &q.From[i]
		}
	}
	return nil
}

// validateVars checks that every referenced variable is bound and that
// variable names are unique.
func (q *Query) validateVars() error {
	seen := make(map[string]bool)
	for i, f := range q.From {
		if seen[f.Var] {
			return fmt.Errorf("query: duplicate range variable %q", f.Var)
		}
		seen[f.Var] = true
		if i > 0 && len(f.Source) > 1 && !seen[f.Source[0]] {
			return fmt.Errorf("query: binding %q references unbound variable %q", f.Var, f.Source[0])
		}
	}
	if !seen[q.Select] {
		return fmt.Errorf("query: SELECT references unbound variable %q", q.Select)
	}
	for _, p := range q.Where {
		if !seen[p.Path[0]] {
			return fmt.Errorf("query: predicate references unbound variable %q", p.Path[0])
		}
	}
	return nil
}
