package query

import (
	"strings"
	"testing"

	"colock/internal/store"
)

// Q1, Q2, Q3 are the paper's Figure 3 queries (Q2's source spells the list
// "roboters" in the figure; the schema attribute is "robots", which the
// paper's own Figure 7 uses, so we use "robots" throughout).
const (
	q1Src = `SELECT o
FROM c IN cells, o IN c.c_objects
WHERE c.cell_id = 'c1'
FOR READ`
	q2Src = `SELECT r
FROM c IN cells, r IN c.robots
WHERE c.cell_id = 'c1' AND r.robot_id = 'r1'
FOR UPDATE`
	q3Src = `SELECT r
FROM c IN cells, r IN c.robots
WHERE c.cell_id = 'c1' AND r.robot_id = 'r2'
FOR UPDATE`
)

func TestParseQ1(t *testing.T) {
	q, err := Parse(q1Src)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != "o" || q.Update || q.NoFollow {
		t.Errorf("header wrong: %+v", q)
	}
	if len(q.From) != 2 {
		t.Fatalf("bindings = %d", len(q.From))
	}
	if q.From[0].Var != "c" || q.From[0].Source[0] != "cells" {
		t.Errorf("binding 0 = %+v", q.From[0])
	}
	if q.From[1].Var != "o" || strings.Join(q.From[1].Source, ".") != "c.c_objects" {
		t.Errorf("binding 1 = %+v", q.From[1])
	}
	if len(q.Where) != 1 || q.Where[0].Op != "=" || q.Where[0].Lit != store.Str("c1") {
		t.Errorf("where = %+v", q.Where)
	}
}

func TestParseQ2Q3(t *testing.T) {
	for _, src := range []string{q2Src, q3Src} {
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Update {
			t.Error("FOR UPDATE not parsed")
		}
		if len(q.Where) != 2 {
			t.Errorf("where = %+v", q.Where)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{q1Src, q2Src, q3Src,
		`SELECT x FROM x IN effectors WHERE x.tool <> 't1' AND x.eff_id >= 'e2' FOR UPDATE NOFOLLOW`,
		`SELECT c FROM c IN cells`,
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip: %q != %q", q.String(), q2.String())
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := Parse(`SELECT c FROM c IN cells WHERE c.a = 5 AND c.b = -3 AND c.d = 2.5 AND c.e = TRUE AND c.f = FALSE AND c.g = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []store.Value{store.Int(5), store.Int(-3), store.Real(2.5), store.Bool(true), store.Bool(false), store.Str("x")}
	for i, p := range q.Where {
		if p.Lit != want[i] {
			t.Errorf("literal %d = %v, want %v", i, p.Lit, want[i])
		}
	}
}

func TestParseOperators(t *testing.T) {
	q, err := Parse(`SELECT c FROM c IN cells WHERE c.a = 1 AND c.b <> 2 AND c.d < 3 AND c.e > 4 AND c.f <= 5 AND c.g >= 6`)
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{"=", "<>", "<", ">", "<=", ">="}
	for i, p := range q.Where {
		if p.Op != ops[i] {
			t.Errorf("op %d = %q, want %q", i, p.Op, ops[i])
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`select c from c in cells for update`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Update || q.Select != "c" {
		t.Errorf("%+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT c`,
		`SELECT c FROM`,
		`SELECT c FROM c`,
		`SELECT c FROM c IN`,
		`SELECT c FROM c IN cells WHERE`,
		`SELECT c FROM c IN cells WHERE c.x`,
		`SELECT c FROM c IN cells WHERE c.x =`,
		`SELECT c FROM c IN cells WHERE x = 1`,       // bare var path
		`SELECT c FROM c IN cells FOR`,               // missing READ/UPDATE
		`SELECT c FROM c IN cells FOR WRITE`,         // bad access
		`SELECT c FROM c IN cells garbage`,           // trailing input
		`SELECT z FROM c IN cells`,                   // unbound select
		`SELECT c FROM c IN cells, c IN c.robots`,    // duplicate var
		`SELECT r FROM c IN cells, r IN z.robots`,    // unbound source
		`SELECT c FROM c IN cells WHERE z.a = 1`,     // unbound predicate var
		`SELECT c FROM c IN cells WHERE c.a = 'open`, // unterminated string
		`SELECT c FROM c IN cells WHERE c.a ? 1`,     // bad char
		`SELECT c FROM c IN cells WHERE c.a = 1.2.3`, // bad number
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestLexOffsets(t *testing.T) {
	toks, err := lex("SELECT  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos != 0 || toks[1].pos != 8 {
		t.Errorf("positions = %d, %d", toks[0].pos, toks[1].pos)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("no EOF token")
	}
}
