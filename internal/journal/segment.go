package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"colock/internal/lock"
)

// Segment wire format. A segment file is:
//
//	magic "CLKJRNL1" (8 bytes)
//	record*
//
// where every record is framed as
//
//	uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload
//
// and the payload's first byte selects the record type:
//
//	recString: uvarint id, then the string's bytes (length implied by the
//	           payload length). Ids are assigned densely from 1 and scoped
//	           to ONE segment — the interning table resets on rotation, so
//	           each segment decodes standalone.
//	recEvent:  uvarint kind-id, uvarint txn, uvarint resource-id,
//	           byte mode, uvarint shard, byte flags (1 waited, 2 wait-die),
//	           varint at (unix nanos; 0 = no timestamp), uvarint dur (ns),
//	           uvarint #blockers + uvarint*, uvarint #resources + uvarint*
//	           (interned resource ids, release-all sweeps).
//
// Id 0 always decodes to the empty string. Kinds and resource names share
// one interning namespace.

const (
	segMagic = "CLKJRNL1"

	recString byte = 0
	recEvent  byte = 1

	// maxRecordBytes bounds a single record's payload; a length prefix
	// beyond it means the frame is garbage (torn or corrupt), not a record.
	maxRecordBytes = 16 << 20
)

// ErrTorn marks a segment tail that ends mid-record: a short frame, a short
// payload, or a payload failing its CRC. The Reader tolerates it on the
// final record of the final segment (a crash mid-write) and fails the
// journal anywhere else.
var ErrTorn = errors.New("journal: torn record")

// segmentEncoder writes framed records to w, interning strings per segment.
type segmentEncoder struct {
	w     io.Writer
	ids   map[string]uint32
	next  uint32
	buf   []byte // payload scratch
	frame [8]byte
	n     int64 // bytes written, header included
}

// newSegmentEncoder writes the segment header and returns an encoder.
func newSegmentEncoder(w io.Writer) (*segmentEncoder, error) {
	if _, err := io.WriteString(w, segMagic); err != nil {
		return nil, err
	}
	return &segmentEncoder{w: w, ids: make(map[string]uint32), next: 1, n: int64(len(segMagic))}, nil
}

// writeFrame emits one length+CRC framed payload.
func (e *segmentEncoder) writeFrame(payload []byte) error {
	binary.LittleEndian.PutUint32(e.frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := e.w.Write(e.frame[:]); err != nil {
		return err
	}
	if _, err := e.w.Write(payload); err != nil {
		return err
	}
	e.n += int64(len(e.frame) + len(payload))
	return nil
}

// intern returns the id for s, emitting the defining string record on first
// use within this segment.
func (e *segmentEncoder) intern(s string) (uint32, error) {
	if s == "" {
		return 0, nil
	}
	if id, ok := e.ids[s]; ok {
		return id, nil
	}
	id := e.next
	e.next++
	e.ids[s] = id
	e.buf = e.buf[:0]
	e.buf = append(e.buf, recString)
	e.buf = binary.AppendUvarint(e.buf, uint64(id))
	e.buf = append(e.buf, s...)
	return id, e.writeFrame(e.buf)
}

// writeRecord interns the record's strings and emits its event frame.
func (e *segmentEncoder) writeRecord(rec Record) error {
	kindID, err := e.intern(rec.Kind)
	if err != nil {
		return err
	}
	resID, err := e.intern(string(rec.Resource))
	if err != nil {
		return err
	}
	// Intern the release-all sweep list before building the event payload
	// (interning writes frames of its own and shares the scratch buffer).
	resIDs := make([]uint32, len(rec.Resources))
	for i, r := range rec.Resources {
		if resIDs[i], err = e.intern(string(r)); err != nil {
			return err
		}
	}
	var flags byte
	if rec.Waited {
		flags |= 1
	}
	if rec.WaitDie {
		flags |= 2
	}
	var at int64
	if !rec.At.IsZero() {
		at = rec.At.UnixNano()
	}
	dur := rec.Dur
	if dur < 0 {
		dur = 0
	}
	e.buf = e.buf[:0]
	e.buf = append(e.buf, recEvent)
	e.buf = binary.AppendUvarint(e.buf, uint64(kindID))
	e.buf = binary.AppendUvarint(e.buf, uint64(rec.Txn))
	e.buf = binary.AppendUvarint(e.buf, uint64(resID))
	e.buf = append(e.buf, byte(rec.Mode))
	e.buf = binary.AppendUvarint(e.buf, uint64(rec.Shard))
	e.buf = append(e.buf, flags)
	e.buf = binary.AppendVarint(e.buf, at)
	e.buf = binary.AppendUvarint(e.buf, uint64(dur))
	e.buf = binary.AppendUvarint(e.buf, uint64(len(rec.Blockers)))
	for _, b := range rec.Blockers {
		e.buf = binary.AppendUvarint(e.buf, uint64(b))
	}
	e.buf = binary.AppendUvarint(e.buf, uint64(len(resIDs)))
	for _, id := range resIDs {
		e.buf = binary.AppendUvarint(e.buf, uint64(id))
	}
	return e.writeFrame(e.buf)
}

// segmentDecoder reads framed records back, resolving interned strings.
type segmentDecoder struct {
	r    *bufio.Reader
	strs []string // id → string; index 0 is ""
	buf  []byte
}

// newSegmentDecoder checks the header and returns a decoder. An empty or
// header-truncated file decodes as torn.
func newSegmentDecoder(r io.Reader) (*segmentDecoder, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	hdr := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated segment header", ErrTorn)
		}
		return nil, err
	}
	if string(hdr) != segMagic {
		return nil, fmt.Errorf("journal: bad segment magic %q", hdr)
	}
	return &segmentDecoder{r: br, strs: []string{""}}, nil
}

// lookup resolves an interned id.
func (d *segmentDecoder) lookup(id uint64) (string, error) {
	if id >= uint64(len(d.strs)) {
		return "", fmt.Errorf("journal: undefined intern id %d", id)
	}
	return d.strs[id], nil
}

// next returns the next event record (string records are consumed
// internally). io.EOF signals a clean end; ErrTorn-wrapped errors a tail
// that stops mid-record.
func (d *segmentDecoder) next() (Record, error) {
	for {
		var frame [8]byte
		if _, err := io.ReadFull(d.r, frame[:]); err != nil {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				return Record{}, fmt.Errorf("%w: truncated frame", ErrTorn)
			}
			return Record{}, err
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length > maxRecordBytes {
			return Record{}, fmt.Errorf("%w: implausible record length %d", ErrTorn, length)
		}
		if cap(d.buf) < int(length) {
			d.buf = make([]byte, length)
		}
		payload := d.buf[:length]
		if _, err := io.ReadFull(d.r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return Record{}, fmt.Errorf("%w: truncated payload", ErrTorn)
			}
			return Record{}, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return Record{}, fmt.Errorf("%w: CRC mismatch", ErrTorn)
		}
		if len(payload) == 0 {
			return Record{}, fmt.Errorf("journal: empty record payload")
		}
		switch payload[0] {
		case recString:
			body := payload[1:]
			id, n := binary.Uvarint(body)
			if n <= 0 {
				return Record{}, fmt.Errorf("journal: bad string record id")
			}
			if id != uint64(len(d.strs)) {
				return Record{}, fmt.Errorf("journal: out-of-order intern id %d (want %d)", id, len(d.strs))
			}
			d.strs = append(d.strs, string(body[n:]))
		case recEvent:
			return d.decodeEvent(payload[1:])
		default:
			return Record{}, fmt.Errorf("journal: unknown record type %d", payload[0])
		}
	}
}

// decodeEvent parses one event payload (type byte stripped).
func (d *segmentDecoder) decodeEvent(b []byte) (Record, error) {
	var rec Record
	u := func() (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("journal: short event payload")
		}
		b = b[n:]
		return v, nil
	}
	kindID, err := u()
	if err != nil {
		return rec, err
	}
	if rec.Kind, err = d.lookup(kindID); err != nil {
		return rec, err
	}
	txn, err := u()
	if err != nil {
		return rec, err
	}
	rec.Txn = lock.TxnID(txn)
	resID, err := u()
	if err != nil {
		return rec, err
	}
	res, err := d.lookup(resID)
	if err != nil {
		return rec, err
	}
	rec.Resource = lock.Resource(res)
	if len(b) < 1 {
		return rec, fmt.Errorf("journal: short event payload")
	}
	rec.Mode = lock.Mode(b[0])
	b = b[1:]
	shard, err := u()
	if err != nil {
		return rec, err
	}
	if shard > math.MaxInt32 {
		return rec, fmt.Errorf("journal: implausible shard %d", shard)
	}
	rec.Shard = int(shard)
	if len(b) < 1 {
		return rec, fmt.Errorf("journal: short event payload")
	}
	flags := b[0]
	b = b[1:]
	rec.Waited = flags&1 != 0
	rec.WaitDie = flags&2 != 0
	at, n := binary.Varint(b)
	if n <= 0 {
		return rec, fmt.Errorf("journal: short event payload")
	}
	b = b[n:]
	if at != 0 {
		rec.At = time.Unix(0, at)
	}
	dur, err := u()
	if err != nil {
		return rec, err
	}
	if dur > math.MaxInt64 {
		return rec, fmt.Errorf("journal: implausible duration %d", dur)
	}
	rec.Dur = time.Duration(dur)
	nb, err := u()
	if err != nil {
		return rec, err
	}
	if nb > uint64(len(b)) { // each blocker costs ≥1 byte
		return rec, fmt.Errorf("journal: implausible blocker count %d", nb)
	}
	if nb > 0 {
		rec.Blockers = make([]lock.TxnID, nb)
		for i := range rec.Blockers {
			v, err := u()
			if err != nil {
				return rec, err
			}
			rec.Blockers[i] = lock.TxnID(v)
		}
	}
	nr, err := u()
	if err != nil {
		return rec, err
	}
	if nr > uint64(len(b)) {
		return rec, fmt.Errorf("journal: implausible resource count %d", nr)
	}
	if nr > 0 {
		rec.Resources = make([]lock.Resource, nr)
		for i := range rec.Resources {
			v, err := u()
			if err != nil {
				return rec, err
			}
			s, err := d.lookup(v)
			if err != nil {
				return rec, err
			}
			rec.Resources[i] = lock.Resource(s)
		}
	}
	return rec, nil
}
