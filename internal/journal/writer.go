package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/lock"
)

// Options configures a Writer.
type Options struct {
	// MaxSegmentBytes rotates to a new segment file once the current one
	// exceeds this size (default 8 MiB).
	MaxSegmentBytes int64
	// RingSize is the bounded event ring's capacity, rounded up to a power
	// of two (default 8192). When the ring is full events are dropped and
	// counted — the hot path never blocks on the journal.
	RingSize int
	// FlushEvery is the background flush period for the buffered segment
	// writer (default 200ms). Close and Flush always flush.
	FlushEvery time.Duration
}

// Writer persists lock events to an append-only segment journal in dir. It
// implements lock.EventSink: Record copies the event into a lock-free ring
// and returns; a single background goroutine drains, interns, encodes and
// writes. Attach it with Manager.AttachSink.
type Writer struct {
	dir  string
	opts Options
	ring *eventRing

	notify  chan struct{}
	flushCh chan chan error
	done    chan struct{}
	stopped chan struct{}
	once    sync.Once

	accepted atomic.Uint64 // records accepted into the ring
	dropped  atomic.Uint64 // records dropped (ring full or sticky write error)
	written  atomic.Uint64 // records persisted, == the Reader's Seq ordinals
	bytes    atomic.Int64  // bytes written across all segments
	segments atomic.Uint64 // segment files created (pre-existing included)
	curSeg   atomic.Uint64 // current segment sequence number

	errMu    sync.Mutex
	writeErr error // sticky: first write failure

	// Consumer-goroutine state; never touched by producers.
	f           *os.File
	bw          *bufio.Writer
	enc         *segmentEncoder
	closedBytes int64 // bytes in closed segments; live segment adds enc.n
}

// Open creates (or appends to) the journal directory and starts the writer
// goroutine. Existing segments are never modified: writing always begins a
// fresh segment numbered after the highest present.
func Open(dir string, opts Options) (*Writer, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = 8 << 20
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 8192
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = 200 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	existing, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(existing); n > 0 {
		if _, seq, err := parseSegmentName(existing[n-1]); err == nil {
			next = seq + 1
		}
	}
	w := &Writer{
		dir:     dir,
		opts:    opts,
		ring:    newEventRing(opts.RingSize),
		notify:  make(chan struct{}, 1),
		flushCh: make(chan chan error),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	w.segments.Store(uint64(len(existing)))
	if err := w.openSegment(next); err != nil {
		return nil, err
	}
	go w.run()
	return w, nil
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("%08d.journal", seq) }

// parseSegmentName extracts the sequence number from a segment path.
func parseSegmentName(path string) (base string, seq uint64, err error) {
	base = filepath.Base(path)
	if _, err = fmt.Sscanf(base, "%08d.journal", &seq); err != nil {
		return base, 0, fmt.Errorf("journal: bad segment name %q", base)
	}
	return base, seq, nil
}

// Segments lists the journal's segment files in write order.
func Segments(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths) // zero-padded names: lexicographic == numeric
	return paths, nil
}

// Record is the lock.EventSink implementation: enqueue and return. Never
// blocks; a full ring (or a previous write failure) drops the event.
func (w *Writer) Record(e lock.Event) { w.push(RecordOf(e)) }

// RecordFastPathHit journals one protocol grant-cache hit; wire it to
// core.Protocol.OnFastPathHit (composed with the health monitor's counter).
// Unlike the manager's events it must stamp its own timestamp — cache hits
// never reach the manager's tracer.
func (w *Writer) RecordFastPathHit() {
	w.push(Record{Kind: "fastpath", At: time.Now()})
}

// Note journals a synthetic event, e.g. kind "health" with an SLO
// transition summary as detail — the same convention the colockshell trace
// ring uses for non-lock events.
func (w *Writer) Note(kind, detail string) {
	w.push(Record{Kind: kind, Resource: lock.Resource(detail), At: time.Now()})
}

// ResetStats zeroes the drop counter and journals a "reset" marker so
// offline analysis can tell benchmark phases apart. Files are durable
// history — the manager's ResetStats cascade never truncates them.
func (w *Writer) ResetStats() {
	w.dropped.Store(0)
	w.Note("reset", "")
}

func (w *Writer) push(rec Record) {
	if w.failed() != nil || !w.ring.push(rec) {
		w.dropped.Add(1)
		return
	}
	w.accepted.Add(1)
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

func (w *Writer) failed() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.writeErr
}

func (w *Writer) fail(err error) {
	w.errMu.Lock()
	if w.writeErr == nil {
		w.writeErr = err
	}
	w.errMu.Unlock()
}

// Offset is the journal position for incident correlation: the number of
// records accepted so far. A record enqueued before Offset was read has
// Seq ≤ Offset once persisted (drops only widen the bound), so replaying
// "Seq ≤ offset" reconstructs everything up to the correlated moment.
func (w *Writer) Offset() uint64 { return w.accepted.Load() }

// Dropped returns the events dropped since open (or the last ResetStats).
func (w *Writer) Dropped() uint64 { return w.dropped.Load() }

// Records returns the records persisted to disk so far.
func (w *Writer) Records() uint64 { return w.written.Load() }

// Flush forces buffered bytes to disk and returns the first write error.
func (w *Writer) Flush() error {
	ch := make(chan error, 1)
	select {
	case w.flushCh <- ch:
		return <-ch
	case <-w.stopped:
		return w.failed()
	}
}

// Close drains the ring, flushes, and closes the current segment.
func (w *Writer) Close() error {
	w.once.Do(func() { close(w.done) })
	<-w.stopped
	return w.failed()
}

// run is the writer goroutine: drain on notify, flush on a timer, exit on
// Close after a final drain.
func (w *Writer) run() {
	defer close(w.stopped)
	ticker := time.NewTicker(w.opts.FlushEvery)
	defer ticker.Stop()
	for {
		w.drain()
		select {
		case <-w.notify:
		case ch := <-w.flushCh:
			w.drain()
			ch <- w.flush()
		case <-ticker.C:
			_ = w.flush()
		case <-w.done:
			w.drain()
			err := w.flush()
			if w.f != nil {
				if cerr := w.f.Close(); err == nil && cerr != nil {
					err = cerr
				}
				w.f = nil
			}
			if err != nil {
				w.fail(err)
			}
			return
		}
	}
}

// drain writes every ring record, rotating segments as they fill.
func (w *Writer) drain() {
	for {
		rec, ok := w.ring.pop()
		if !ok {
			return
		}
		if w.enc == nil {
			continue // sticky failure: discard
		}
		rec.Seq = w.written.Load() + 1
		if err := w.enc.writeRecord(rec); err != nil {
			w.fail(err)
			w.enc = nil
			continue
		}
		w.written.Store(rec.Seq)
		w.bytes.Store(w.closedBytes + w.enc.n)
		if w.enc.n >= w.opts.MaxSegmentBytes {
			if err := w.rotate(); err != nil {
				w.fail(err)
				w.enc = nil
			}
		}
	}
}

func (w *Writer) flush() error {
	if w.bw == nil {
		return w.failed()
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return err
	}
	return nil
}

// rotate closes the current segment and opens the next one.
func (w *Writer) rotate() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	w.closedBytes += w.enc.n
	return w.openSegment(w.curSeg.Load() + 1)
}

// openSegment creates segment file seq and resets the interning table.
func (w *Writer) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	enc, err := newSegmentEncoder(bw)
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.bw, w.enc = f, bw, enc
	w.curSeg.Store(seq)
	w.segments.Add(1)
	w.bytes.Store(w.closedBytes + enc.n)
	return nil
}

// Status is the journal's live state, served on /journal/status.
type Status struct {
	Dir      string `json:"dir"`
	Segment  uint64 `json:"segment"`  // current segment sequence number
	Segments uint64 `json:"segments"` // segment files (pre-existing included)
	Records  uint64 `json:"records"`  // persisted records
	Accepted uint64 `json:"accepted"` // records accepted into the ring
	Dropped  uint64 `json:"dropped"`
	Bytes    int64  `json:"bytes"`
	Error    string `json:"error,omitempty"`
}

// Status snapshots the writer's counters.
func (w *Writer) Status() Status {
	st := Status{
		Dir:      w.dir,
		Segment:  w.curSeg.Load(),
		Segments: w.segments.Load(),
		Records:  w.written.Load(),
		Accepted: w.accepted.Load(),
		Dropped:  w.dropped.Load(),
		Bytes:    w.bytes.Load(),
	}
	if err := w.failed(); err != nil {
		st.Error = err.Error()
	}
	return st
}

// StatusHandler serves Status as JSON; wire it into obs.TraceSources.Journal
// to expose /journal/status.
func (w *Writer) StatusHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		_ = enc.Encode(w.Status())
	})
}

// WriteMetrics appends the journal counters in Prometheus text format; wire
// it into obs.Handler's extra writers.
func (w *Writer) WriteMetrics(out io.Writer) {
	st := w.Status()
	fmt.Fprintf(out, "# HELP colock_journal_records_total Lock events persisted to the journal.\n")
	fmt.Fprintf(out, "# TYPE colock_journal_records_total counter\n")
	fmt.Fprintf(out, "colock_journal_records_total %d\n", st.Records)
	fmt.Fprintf(out, "# HELP colock_journal_dropped_total Lock events dropped by the journal's bounded ring.\n")
	fmt.Fprintf(out, "# TYPE colock_journal_dropped_total counter\n")
	fmt.Fprintf(out, "colock_journal_dropped_total %d\n", st.Dropped)
	fmt.Fprintf(out, "# HELP colock_journal_bytes_total Bytes written across all journal segments.\n")
	fmt.Fprintf(out, "# TYPE colock_journal_bytes_total counter\n")
	fmt.Fprintf(out, "colock_journal_bytes_total %d\n", st.Bytes)
	fmt.Fprintf(out, "# HELP colock_journal_segments Journal segment files on disk.\n")
	fmt.Fprintf(out, "# TYPE colock_journal_segments gauge\n")
	fmt.Fprintf(out, "colock_journal_segments %d\n", st.Segments)
}
