package journal

import "sync/atomic"

// eventRing is a bounded lock-free multi-producer single-consumer queue
// (Vyukov's bounded MPMC design, used here MPSC): producers are lock-event
// goroutines inside the manager's sink fan-out, the consumer is the
// Writer's background goroutine. A full ring makes push fail instead of
// blocking — the Writer counts the drop and the lock manager never waits
// on the journal.
type eventRing struct {
	mask  uint64
	slots []ringSlot
	head  atomic.Uint64 // next producer position
	tail  atomic.Uint64 // next consumer position
}

type ringSlot struct {
	seq atomic.Uint64
	rec Record
}

// newEventRing builds a ring with capacity rounded up to a power of two.
func newEventRing(capacity int) *eventRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &eventRing{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues rec; false when the ring is full.
func (r *eventRing) push(rec Record) bool {
	for {
		pos := r.head.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.head.CompareAndSwap(pos, pos+1) {
				slot.rec = rec
				slot.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			return false // the slot still holds an unconsumed record: full
		}
		// seq > pos: another producer advanced head; retry with a fresh load.
	}
}

// pop dequeues the oldest record; false when the ring is empty. Single
// consumer only.
func (r *eventRing) pop() (Record, bool) {
	pos := r.tail.Load()
	slot := &r.slots[pos&r.mask]
	seq := slot.seq.Load()
	if seq != pos+1 {
		return Record{}, false
	}
	rec := slot.rec
	slot.rec = Record{} // drop references for GC
	slot.seq.Store(pos + r.mask + 1)
	r.tail.Store(pos + 1)
	return rec, true
}
