package journal

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Reader streams a journal directory's records back in timestamp order.
// Segments are read sequentially (they were written by one goroutine), but
// concurrent operations can journal slightly out of their timestamp order,
// so the reader runs a bounded reorder buffer over the raw stream: records
// are released in At order as long as the disorder stays inside
// reorderWindow records (the writer's ring capacity bounds real disorder
// far below that).
//
// Robustness: every record's CRC is validated. A record that stops
// mid-frame or fails its CRC at the TAIL of the FINAL segment is a torn
// write (crash mid-append); the reader ends the stream cleanly there and
// reports it via Torn. The same damage anywhere else is corruption and
// errors out.
type Reader struct {
	segs   []string
	segIdx int
	f      *os.File
	dec    *segmentDecoder

	h       recHeap
	window  int
	ordinal uint64
	lastAt  time.Time
	rawDone bool
	torn    bool
	tornErr error
}

// reorderWindow is the default reorder-buffer depth.
const reorderWindow = 512

// OpenDir opens every segment in dir for streaming. A directory with no
// segments yields an immediately-empty reader.
func OpenDir(dir string) (*Reader, error) {
	segs, err := Segments(dir)
	if err != nil {
		return nil, err
	}
	return &Reader{segs: segs, window: reorderWindow}, nil
}

// Torn reports whether the stream ended at a torn final record; TornErr
// describes the tear.
func (r *Reader) Torn() bool { return r.torn }

// TornErr returns the tear detail (nil when the journal ended cleanly).
func (r *Reader) TornErr() error { return r.tornErr }

// Close releases the currently open segment.
func (r *Reader) Close() error {
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}

// rawNext returns the next record in file order, crossing segment
// boundaries and assigning Seq ordinals (1-based, identical to the ones the
// Writer assigned: drops never reach the file).
func (r *Reader) rawNext() (Record, error) {
	for {
		if r.dec == nil {
			if r.segIdx >= len(r.segs) {
				return Record{}, io.EOF
			}
			f, err := os.Open(r.segs[r.segIdx])
			if err != nil {
				return Record{}, err
			}
			dec, err := newSegmentDecoder(f)
			if err != nil {
				f.Close()
				if errors.Is(err, ErrTorn) && r.segIdx == len(r.segs)-1 {
					r.torn, r.tornErr = true, err
					return Record{}, io.EOF
				}
				return Record{}, fmt.Errorf("%s: %w", r.segs[r.segIdx], err)
			}
			r.f, r.dec = f, dec
			r.segIdx++
		}
		rec, err := r.dec.next()
		switch {
		case err == nil:
			r.ordinal++
			rec.Seq = r.ordinal
			return rec, nil
		case err == io.EOF:
			r.Close()
			r.dec = nil
		case errors.Is(err, ErrTorn) && r.segIdx == len(r.segs):
			// Tail damage on the final segment: a crash tore the last
			// append. Everything before it was already returned.
			r.Close()
			r.dec = nil
			r.torn, r.tornErr = true, err
			return Record{}, io.EOF
		default:
			r.Close()
			r.dec = nil
			return Record{}, fmt.Errorf("%s: %w", r.segs[r.segIdx-1], err)
		}
	}
}

// Next returns the next record in timestamp order; io.EOF at the end.
func (r *Reader) Next() (Record, error) {
	for !r.rawDone && r.h.Len() < r.window {
		rec, err := r.rawNext()
		if err == io.EOF {
			r.rawDone = true
			break
		}
		if err != nil {
			return Record{}, err
		}
		// Timestampless records (fast-path hits recorded during a sampling
		// gap, reset markers) sort at the position of the last timestamped
		// record before them.
		key := rec.At
		if key.IsZero() {
			key = r.lastAt
		} else {
			r.lastAt = key
		}
		heap.Push(&r.h, recEntry{key: key, rec: rec})
	}
	if r.h.Len() == 0 {
		return Record{}, io.EOF
	}
	return heap.Pop(&r.h).(recEntry).rec, nil
}

// ReadAll streams the whole journal into memory, in timestamp order,
// tolerating a torn tail. It reports whether the tail was torn.
func ReadAll(dir string) (recs []Record, torn bool, err error) {
	r, err := OpenDir(dir)
	if err != nil {
		return nil, false, err
	}
	defer r.Close()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, r.Torn(), nil
		}
		if err != nil {
			return recs, r.Torn(), err
		}
		recs = append(recs, rec)
	}
}

// recEntry pairs a record with its reorder key.
type recEntry struct {
	key time.Time
	rec Record
}

// recHeap is a min-heap by (key, Seq) — Seq breaks timestamp ties with
// file order, keeping the stream deterministic.
type recHeap []recEntry

func (h recHeap) Len() int { return len(h) }
func (h recHeap) Less(i, j int) bool {
	if h[i].key.Equal(h[j].key) {
		return h[i].rec.Seq < h[j].rec.Seq
	}
	return h[i].key.Before(h[j].key)
}
func (h recHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *recHeap) Push(x any)   { *h = append(*h, x.(recEntry)) }
func (h *recHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
