package journal

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"colock/internal/lock"
)

// at builds a deterministic wall-clock timestamp (no monotonic reading, so
// decoded records compare equal with reflect.DeepEqual).
func at(i int) time.Time { return time.Unix(1700000000, int64(i)*int64(time.Millisecond)) }

// sampleRecords exercises every field: blockers, release-all sweeps,
// wait-die flags, zero durations, synthetic kinds.
func sampleRecords() []Record {
	return []Record{
		{Kind: "grant", Txn: 1, Resource: "db1/seg1/cells/c1", Mode: lock.X, Shard: 3, At: at(0), Dur: 42 * time.Microsecond},
		{Kind: "wait", Txn: 2, Resource: "db1/seg1/cells/c1", Mode: lock.X, Shard: 3, At: at(1), Blockers: []lock.TxnID{1}},
		{Kind: "grant", Txn: 2, Resource: "db1/seg1/cells/c1", Mode: lock.X, Shard: 3, Waited: true, At: at(2), Dur: time.Millisecond},
		{Kind: "victim", Txn: 3, Resource: "db1/seg1/cells/c2", Mode: lock.IX, Shard: 5, WaitDie: true, At: at(3), Dur: 7 * time.Millisecond, Blockers: []lock.TxnID{1, 2}},
		{Kind: "release-all", Txn: 1, Shard: 0, At: at(4), Dur: time.Microsecond,
			Resources: []lock.Resource{"db1/seg1/cells/c1", "db1", "db1/seg1"}},
		{Kind: "fastpath", At: at(5)},
		{Kind: "health", Resource: "ok->warn abort rate 0.4 > 0.05", At: at(6)},
		{Kind: "reset", At: at(7)},
	}
}

func writeJournal(t *testing.T, dir string, opts Options, recs []Record) {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		w.push(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	writeJournal(t, dir, Options{}, want)

	got, torn, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean journal reported torn")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != uint64(i+1) {
			t.Errorf("record %d: Seq = %d, want %d", i, got[i].Seq, i+1)
		}
		got[i].Seq = 0
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestSegmentRotationAndInterning(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations; the repeated resource name must
	// re-intern per segment and still decode everywhere.
	var recs []Record
	for i := 0; i < 500; i++ {
		recs = append(recs, Record{Kind: "grant", Txn: lock.TxnID(i%7 + 1),
			Resource: "db1/seg1/cells/c1/robots/r1/trajectory", Mode: lock.X, At: at(i)})
	}
	writeJournal(t, dir, Options{MaxSegmentBytes: 1024}, recs)

	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected ≥3 segments from 1KiB rotation, got %d", len(segs))
	}
	got, torn, err := ReadAll(dir)
	if err != nil || torn {
		t.Fatalf("ReadAll: torn=%v err=%v", torn, err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records across %d segments, want %d", len(got), len(segs), len(recs))
	}
	for i, r := range got {
		if r.Resource != recs[i].Resource || r.Txn != recs[i].Txn {
			t.Fatalf("record %d: %+v, want %+v", i, r, recs[i])
		}
	}
}

func TestReopenAppendsNewSegment(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, Options{}, sampleRecords()[:3])
	writeJournal(t, dir, Options{}, sampleRecords()[3:])

	segs, _ := Segments(dir)
	if len(segs) != 2 {
		t.Fatalf("expected 2 segments after reopen, got %d: %v", len(segs), segs)
	}
	got, torn, err := ReadAll(dir)
	if err != nil || torn {
		t.Fatalf("ReadAll: torn=%v err=%v", torn, err)
	}
	if len(got) != len(sampleRecords()) {
		t.Fatalf("got %d records, want %d", len(got), len(sampleRecords()))
	}
}

// TestTornFinalRecord truncates the last segment mid-record and asserts the
// Reader recovers every record before the tear.
func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	writeJournal(t, dir, Options{}, want)

	segs, _ := Segments(dir)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{1, 3, 7} { // progressively tear deeper into the tail
		if err := os.Truncate(last, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		got, torn, err := ReadAll(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !torn {
			t.Fatalf("cut %d: tear not reported", cut)
		}
		if len(got) != len(want)-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), len(want)-1)
		}
	}
	// Tear away everything but the header: zero records, still tolerated
	// only if the tail is the final segment.
	if err := os.Truncate(last, int64(len(segMagic))+2); err != nil {
		t.Fatal(err)
	}
	got, torn, err := ReadAll(dir)
	if err != nil || !torn || len(got) != 0 {
		t.Fatalf("header-only tail: got %d records torn=%v err=%v", len(got), torn, err)
	}
}

// TestCorruptMiddleSegmentFails: the torn-record tolerance applies only to
// the final segment's tail — damage anywhere else is corruption.
func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	var recs []Record
	for i := 0; i < 300; i++ {
		recs = append(recs, Record{Kind: "grant", Txn: 1, Resource: lock.Resource(strings.Repeat("r", 40)), At: at(i)})
	}
	writeJournal(t, dir, Options{MaxSegmentBytes: 2048}, recs)
	segs, _ := Segments(dir)
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(segs))
	}
	info, _ := os.Stat(segs[0])
	if err := os.Truncate(segs[0], info.Size()-4); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAll(dir); err == nil {
		t.Fatal("mid-journal truncation did not error")
	}

	// A flipped byte (CRC failure) in the final segment's middle still ends
	// the stream there — the length chain is untrustworthy past the flip —
	// but the reader reports the tear rather than inventing records.
	dir2 := t.TempDir()
	writeJournal(t, dir2, Options{}, sampleRecords())
	segs2, _ := Segments(dir2)
	data, err := os.ReadFile(segs2[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+10] ^= 0xff
	if err := os.WriteFile(segs2[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, torn, err := ReadAll(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(got) != 0 {
		t.Fatalf("flipped first record: got %d records torn=%v", len(got), torn)
	}
}

func TestTimestampOrderAcrossDisorder(t *testing.T) {
	dir := t.TempDir()
	// Write deliberately shuffled timestamps (disorder well inside the
	// reorder window); the reader must emit them sorted.
	var recs []Record
	for i := 0; i < 200; i++ {
		j := i
		if i%2 == 0 && i+5 < 200 {
			j = i + 5
		}
		recs = append(recs, Record{Kind: "grant", Txn: lock.TxnID(i), Resource: "r", At: at(j)})
	}
	writeJournal(t, dir, Options{}, recs)
	got, _, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].At.Before(got[i-1].At) {
			t.Fatalf("record %d out of order: %v before %v", i, got[i].At, got[i-1].At)
		}
	}
}

func TestRingFullDropsAndFIFO(t *testing.T) {
	r := newEventRing(4)
	for i := 0; i < 4; i++ {
		if !r.push(Record{Txn: lock.TxnID(i)}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.push(Record{Txn: 99}) {
		t.Fatal("push into a full ring succeeded")
	}
	for i := 0; i < 4; i++ {
		rec, ok := r.pop()
		if !ok || rec.Txn != lock.TxnID(i) {
			t.Fatalf("pop %d: ok=%v txn=%d", i, ok, rec.Txn)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	// Wrap around: capacity is reusable after pops.
	if !r.push(Record{Txn: 7}) {
		t.Fatal("push after drain failed")
	}
	if rec, ok := r.pop(); !ok || rec.Txn != 7 {
		t.Fatal("wrap-around pop failed")
	}
}

func TestRingConcurrentProducers(t *testing.T) {
	r := newEventRing(1 << 12)
	const producers, each = 8, 400
	var wg sync.WaitGroup
	var droppedMu sync.Mutex
	dropped := 0
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if !r.push(Record{Txn: lock.TxnID(p*each + i)}) {
					droppedMu.Lock()
					dropped++
					droppedMu.Unlock()
				}
			}
		}(p)
	}
	produced := make(chan struct{})
	done := make(chan struct{})
	seen := make(map[lock.TxnID]bool)
	go func() {
		defer close(done)
		for {
			rec, ok := r.pop()
			if !ok {
				select {
				case <-produced:
					// Producers finished: one final drain, then stop.
					for {
						rec, ok := r.pop()
						if !ok {
							return
						}
						seen[rec.Txn] = true
					}
				default:
					time.Sleep(50 * time.Microsecond)
					continue
				}
			}
			if seen[rec.Txn] {
				t.Error("duplicate record")
				return
			}
			seen[rec.Txn] = true
		}
	}()
	wg.Wait()
	close(produced)
	<-done
	if len(seen)+dropped != producers*each {
		t.Fatalf("records lost: seen %d + dropped %d != %d", len(seen), dropped, producers*each)
	}
}

func TestManagerIntegration(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := lock.NewManager(lock.Options{Sinks: []lock.EventSink{w}})
	ctx := context.Background()
	if err := m.AcquireCtx(ctx, 1, "db1/a", lock.X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(ctx, 1, "db1/b", lock.S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	m.ResetStats() // cascades to the writer: journals a "reset" marker
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := ReadAll(dir)
	if err != nil || torn {
		t.Fatalf("ReadAll: torn=%v err=%v", torn, err)
	}
	kinds := map[string]int{}
	for _, r := range recs {
		kinds[r.Kind]++
	}
	if kinds["grant"] != 2 || kinds["release-all"] != 1 || kinds["reset"] != 1 {
		t.Fatalf("unexpected kinds journaled: %v", kinds)
	}
	st := w.Status()
	if st.Records != uint64(len(recs)) || st.Dropped != 0 || st.Segments != 1 {
		t.Fatalf("bad status: %+v (read %d records)", st, len(recs))
	}
}

func TestStatusAndMetrics(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Note("health", "ok->warn wait p99")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"colock_journal_records_total 1",
		"colock_journal_dropped_total 0",
		"colock_journal_segments 1",
		"colock_journal_bytes_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
	if w.Offset() != 1 {
		t.Errorf("Offset = %d, want 1", w.Offset())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing twice is safe.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flush after close returns without hanging.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyDirReads(t *testing.T) {
	got, torn, err := ReadAll(t.TempDir())
	if err != nil || torn || len(got) != 0 {
		t.Fatalf("empty dir: got %d torn=%v err=%v", len(got), torn, err)
	}
}

// FuzzRecordRoundTrip drives arbitrary field values through one
// encoder/decoder pair and asserts the record survives unchanged.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("grant", uint64(1), "db1/seg1/cells/c1", byte(5), uint32(3), true, false, int64(1700000000e9), int64(250), uint64(2), "db1/x")
	f.Add("", uint64(0), "", byte(0), uint32(0), false, false, int64(0), int64(-5), uint64(0), "")
	f.Add("victim", uint64(1<<63), strings.Repeat("long/", 100), byte(255), uint32(1<<20), true, true, int64(-1), int64(1<<40), uint64(7), "q")
	f.Fuzz(func(t *testing.T, kind string, txn uint64, resource string, mode byte, shard uint32, waited, waitdie bool, atNanos, dur int64, blocker uint64, extraRes string) {
		rec := Record{
			Kind:     kind,
			Txn:      lock.TxnID(txn),
			Resource: lock.Resource(resource),
			Mode:     lock.Mode(mode),
			Shard:    int(shard & 0x7fffffff),
			Waited:   waited,
			WaitDie:  waitdie,
		}
		if atNanos != 0 {
			rec.At = time.Unix(0, atNanos)
		}
		if dur > 0 {
			rec.Dur = time.Duration(dur)
		}
		if blocker != 0 {
			rec.Blockers = []lock.TxnID{lock.TxnID(blocker)}
		}
		if extraRes != "" {
			rec.Resources = []lock.Resource{lock.Resource(extraRes), rec.Resource}
		}

		var buf bytes.Buffer
		enc, err := newSegmentEncoder(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.writeRecord(rec); err != nil {
			t.Fatal(err)
		}
		dec, err := newSegmentDecoder(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.next()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
		}
	})
}
