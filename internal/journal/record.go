// Package journal persists the lock manager's full event stream — grants,
// blocks, conversions, releases, victims, wait-die deaths, sheds, fast-path
// hits, SLO transitions — to a durable append-only binary journal so that
// incidents can be studied long after the in-memory observability rings and
// health windows have rotated. The live layers (obs, health, trace) answer
// "what is happening now"; the journal answers "what happened", replayable
// offline by cmd/colockreplay.
//
// The on-disk format is a directory of size-rotated segment files. Each
// segment is self-contained: an 8-byte magic header followed by
// length-prefixed records (uint32 length + uint32 CRC32 of the payload),
// where repeated strings (resource names, event kinds) are written once as
// interning records and referenced by varint id afterwards, keeping hot
// resources from bloating the journal. The final record of the final
// segment may be torn by a crash; the Reader detects and tolerates exactly
// that, recovering every record before the tear.
//
// The Writer is a lock.EventSink: the hot path copies the event into a
// bounded lock-free ring and returns — it NEVER blocks the lock manager.
// A single background goroutine drains the ring, interns, encodes and
// writes. When the ring is full the event is dropped and counted
// (colock_journal_dropped_total); durability is best-effort by design.
package journal

import (
	"fmt"
	"time"

	"colock/internal/lock"
)

// Record is one journaled event: a lock.Event plus the writer-assigned
// sequence number (its ordinal in file order, 1-based). Synthetic kinds
// extend the lock-manager vocabulary: "fastpath" marks a protocol
// grant-cache hit, "health" an SLO transition (detail in Resource, as the
// colockshell trace ring does), "reset" a ResetStats marker separating
// benchmark phases.
type Record struct {
	Seq       uint64
	Kind      string
	Txn       lock.TxnID
	Resource  lock.Resource
	Mode      lock.Mode
	Shard     int
	Waited    bool
	WaitDie   bool
	At        time.Time
	Dur       time.Duration
	Blockers  []lock.TxnID
	Resources []lock.Resource
}

// RecordOf converts a lock event into its journal record (Seq unassigned).
func RecordOf(e lock.Event) Record {
	return Record{
		Kind:      e.Kind,
		Txn:       e.Txn,
		Resource:  e.Resource,
		Mode:      e.Mode,
		Shard:     e.Shard,
		Waited:    e.Waited,
		WaitDie:   e.WaitDie,
		At:        e.At,
		Dur:       e.Dur,
		Blockers:  e.Blockers,
		Resources: e.Resources,
	}
}

// Event converts the record back into the lock event it journals.
func (r Record) Event() lock.Event {
	return lock.Event{
		Kind:      r.Kind,
		Txn:       r.Txn,
		Resource:  r.Resource,
		Mode:      r.Mode,
		Shard:     r.Shard,
		Waited:    r.Waited,
		WaitDie:   r.WaitDie,
		At:        r.At,
		Dur:       r.Dur,
		Blockers:  r.Blockers,
		Resources: r.Resources,
	}
}

// String renders the record for timelines and debugging.
func (r Record) String() string {
	return fmt.Sprintf("#%d %s txn=%d %s %s", r.Seq, r.Kind, r.Txn, r.Mode, r.Resource)
}
