package resilience

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"colock/internal/lock"
)

// ChaosConfig sets the fault mix. Rates are per-acquire probabilities in
// [0,1], tested in the order victim, timeout, delay — at most one fault per
// request.
type ChaosConfig struct {
	// Seed makes the fault sequence reproducible: the same seed and the
	// same sequence of InjectAcquire calls produce the same faults.
	Seed int64
	// VictimRate forces synthetic deadlock victims (ErrDeadlockVictim).
	VictimRate float64
	// TimeoutRate forces spurious timeouts (ErrTimeout).
	TimeoutRate float64
	// DelayRate stalls the request by Delay before granting normally —
	// a slow grant, not a failure.
	DelayRate float64
	// Delay is the synthetic grant latency for DelayRate faults (default
	// 1ms).
	Delay time.Duration
}

// ChaosStats counts injected faults by kind.
type ChaosStats struct {
	Victims  uint64
	Timeouts uint64
	Delays   uint64
}

// Chaos is a deterministic lock.Injector: installed with
// Manager.SetInjector, it forces synthetic deadlock victims, spurious
// timeouts, and delayed grants at the configured rates. The single seeded
// source is mutex-guarded, so -race runs are clean; under a fixed seed the
// kth fault decision is always the same, making storm tests reproducible
// attempt-for-attempt whenever the call order is (goroutine scheduling can
// reorder WHICH request draws the kth decision, but the fault mix and count
// stay fixed).
type Chaos struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg ChaosConfig

	victims  atomic.Uint64
	timeouts atomic.Uint64
	delays   atomic.Uint64
}

// NewChaos builds a Chaos injector from cfg.
func NewChaos(cfg ChaosConfig) *Chaos {
	if cfg.Delay <= 0 {
		cfg.Delay = time.Millisecond
	}
	return &Chaos{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// InjectAcquire implements lock.Injector.
func (c *Chaos) InjectAcquire(txn lock.TxnID, r lock.Resource, mode lock.Mode) lock.Injection {
	c.mu.Lock()
	roll := c.rng.Float64()
	c.mu.Unlock()
	switch {
	case roll < c.cfg.VictimRate:
		c.victims.Add(1)
		return lock.Injection{Err: lock.ErrDeadlockVictim}
	case roll < c.cfg.VictimRate+c.cfg.TimeoutRate:
		c.timeouts.Add(1)
		return lock.Injection{Err: lock.ErrTimeout}
	case roll < c.cfg.VictimRate+c.cfg.TimeoutRate+c.cfg.DelayRate:
		c.delays.Add(1)
		return lock.Injection{Delay: c.cfg.Delay}
	}
	return lock.Injection{}
}

// Stats returns the cumulative injected-fault counts.
func (c *Chaos) Stats() ChaosStats {
	return ChaosStats{
		Victims:  c.victims.Load(),
		Timeouts: c.timeouts.Load(),
		Delays:   c.delays.Load(),
	}
}
