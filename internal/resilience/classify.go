// Package resilience turns lock-protocol aborts from terminal errors into
// managed restarts. The lock hierarchy (paper rules 1–5) guarantees
// correctness; this layer is about surviving contention storms: a Retrier
// re-runs a transaction closure under a pluggable backoff policy, admission
// control in lock.Manager sheds work when the waits-for graph saturates,
// and Chaos injects deterministic synthetic faults so both are testable
// under -race. The design follows Thomasian's restart-policy results for
// high data contention: once conflicts thicken, WHAT a system does after an
// abort — back off, restart-wait, limit admissions — dominates throughput.
package resilience

import (
	"context"
	"errors"

	"colock/internal/lock"
)

// Cause labels why an attempt failed, for observers and retry decisions.
// The string values are stable: they key retry counters in obs.
type Cause string

const (
	// CauseDeadlock: chosen as a deadlock-detection victim.
	CauseDeadlock Cause = "deadlock"
	// CauseWaitDie: killed by the wait-die prevention rule.
	CauseWaitDie Cause = "wait-die"
	// CauseTimeout: an acquire deadline (WithTimeout or a per-attempt
	// budget) expired.
	CauseTimeout Cause = "timeout"
	// CauseShed: refused by admission control.
	CauseShed Cause = "shed"
	// CauseWouldBlock: a WithNoWait request found a conflict.
	CauseWouldBlock Cause = "would-block"
	// CauseCanceled: the caller's context was canceled — the caller gave
	// up, so retrying would be wrong.
	CauseCanceled Cause = "canceled"
	// CauseOther: not a lock-protocol failure (application error).
	CauseOther Cause = "other"
)

// Classify maps an error from a transaction attempt to its Cause and
// reports whether a retrier should re-run the closure. Lock-protocol
// aborts (deadlock victim, wait-die death, timeout, shed, would-block) are
// transient — the same transaction can succeed on a re-run — so they
// retry; cancellation and application errors do not.
func Classify(err error) (Cause, bool) {
	switch {
	case err == nil:
		return "", false
	case errors.Is(err, lock.ErrWaitDie):
		// Checked before ErrDeadlockVictim: a wait-die death wraps the
		// deadlock sentinel so legacy errors.Is(err, ErrDeadlock) holds.
		return CauseWaitDie, true
	case errors.Is(err, lock.ErrDeadlockVictim):
		return CauseDeadlock, true
	case errors.Is(err, lock.ErrTimeout):
		return CauseTimeout, true
	case errors.Is(err, lock.ErrShed):
		return CauseShed, true
	case errors.Is(err, lock.ErrWouldBlock):
		return CauseWouldBlock, true
	case errors.Is(err, context.DeadlineExceeded):
		// A per-attempt budget expiring is a timeout: the parent context
		// may be perfectly healthy, so the attempt retries (the Retrier
		// separately stops when the parent itself is done).
		return CauseTimeout, true
	case errors.Is(err, context.Canceled):
		return CauseCanceled, false
	default:
		return CauseOther, false
	}
}

// Blockers extracts the blocker set recorded on a *LockError — the
// transactions the failed request was queued behind — or nil. RestartWait
// pauses until these have drained.
func Blockers(err error) []lock.TxnID {
	var le *lock.LockError
	if errors.As(err, &le) {
		return le.Blockers
	}
	return nil
}
