package resilience

import (
	"context"
	"time"
)

// Observer receives retry life-cycle notifications. Implementations must be
// safe for concurrent use (one Retrier is typically shared by all client
// goroutines). obs.RetryCollector is the canonical implementation.
type Observer interface {
	// Retry fires after a failed attempt that WILL be retried.
	Retry(cause string, attempt int)
	// Done fires when Run returns: attempts is the total number of attempts
	// made, err the final outcome (nil on success).
	Done(attempts int, err error)
}

// teeObserver fans notifications out to several observers in order.
type teeObserver struct{ os []Observer }

func (t teeObserver) Retry(cause string, attempt int) {
	for _, o := range t.os {
		o.Retry(cause, attempt)
	}
}

func (t teeObserver) Done(attempts int, err error) {
	for _, o := range t.os {
		o.Done(attempts, err)
	}
}

// Tee combines observers into one that notifies each in argument order;
// nils are skipped. A retry collector and a health monitor can then share
// one Retrier's observer slot.
func Tee(os ...Observer) Observer {
	kept := make([]Observer, 0, len(os))
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	return teeObserver{os: kept}
}

// Retrier re-runs a transaction closure until it succeeds, its error is
// classified non-retryable, attempts run out, or the caller's context ends.
// The zero value retries forever, immediately — set Backoff and MaxAttempts
// to taste. A Retrier is immutable after construction and safe for
// concurrent use by any number of goroutines.
type Retrier struct {
	// MaxAttempts bounds the total number of attempts; <= 0 means
	// unlimited (bounded only by ctx).
	MaxAttempts int
	// Backoff paces restarts; nil means Immediate.
	Backoff Backoff
	// AttemptTimeout, when > 0, gives each attempt its own budget: the
	// closure's context carries a deadline, so every AcquireCtx inside the
	// attempt is withdrawn when the budget expires and the attempt retries
	// as a timeout. The parent ctx still bounds the whole Run.
	AttemptTimeout time.Duration
	// RetryIf overrides the default classification when set: it is
	// consulted INSTEAD of Classify's retry verdict (the cause label for
	// observers still comes from Classify).
	RetryIf func(error) bool
	// Observer, when set, is notified of every retry and final outcome.
	Observer Observer
}

// Run executes body until it returns nil or the retrier gives up; the
// closure must be restartable (it runs from scratch each attempt — the txn
// layer aborts the failed transaction and begins a fresh one). The returned
// error is the LAST attempt's error, unwrapped — errors.Is classification
// still works on it.
func (r *Retrier) Run(ctx context.Context, body func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(nil)
		if r.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, r.AttemptTimeout)
		}
		err := body(attemptCtx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			r.done(attempt, nil)
			return nil
		}
		cause, retry := Classify(err)
		if r.RetryIf != nil {
			retry = r.RetryIf(err)
		}
		// The parent context ending overrides everything: an attempt that
		// died because the caller gave up must not restart.
		if ctx.Err() != nil {
			retry = false
		}
		if !retry || (r.MaxAttempts > 0 && attempt >= r.MaxAttempts) {
			r.done(attempt, err)
			return err
		}
		if r.Observer != nil {
			r.Observer.Retry(string(cause), attempt)
		}
		bo := r.Backoff
		if bo == nil {
			bo = Immediate{}
		}
		if perr := bo.Pause(ctx, attempt, err); perr != nil {
			r.done(attempt, err)
			return err
		}
	}
}

func (r *Retrier) done(attempts int, err error) {
	if r.Observer != nil {
		r.Observer.Done(attempts, err)
	}
}
