package resilience

import (
	"context"
	"math/rand"
	"time"

	"colock/internal/lock"
)

// Backoff paces restarts: Pause blocks until the next attempt may begin.
// attempt is the 1-based number of the attempt that just FAILED; err is its
// error (always non-nil). Pause returns non-nil only when ctx ended during
// the pause — the retrier then gives up.
type Backoff interface {
	Pause(ctx context.Context, attempt int, err error) error
}

// Immediate restarts with no pause at all. Cheapest when conflicts are
// rare; under a storm it burns CPU re-colliding with the same holders.
type Immediate struct{}

// Pause returns at once (or ctx's error if it already ended).
func (Immediate) Pause(ctx context.Context, attempt int, err error) error {
	return ctx.Err()
}

// CappedExponential sleeps Base<<(attempt-1), capped at Cap, with up to
// Jitter (a fraction, e.g. 0.5) of the delay added at random so restarted
// transactions don't re-collide in lockstep. The zero value is usable:
// Base defaults to 1ms, Cap to 100ms, Jitter to 0.5.
type CappedExponential struct {
	Base   time.Duration
	Cap    time.Duration
	Jitter float64
}

// Pause sleeps the attempt's backoff delay, cut short by ctx.
func (b CappedExponential) Pause(ctx context.Context, attempt int, err error) error {
	base, cap_, jitter := b.Base, b.Cap, b.Jitter
	if base <= 0 {
		base = time.Millisecond
	}
	if cap_ <= 0 {
		cap_ = 100 * time.Millisecond
	}
	if jitter <= 0 {
		jitter = 0.5
	}
	d := base
	for i := 1; i < attempt && d < cap_; i++ {
		d *= 2
	}
	if d > cap_ {
		d = cap_
	}
	if j := int64(float64(d) * jitter); j > 0 {
		d += time.Duration(rand.Int63n(j + 1))
	}
	return sleep(ctx, d)
}

// RestartWait implements Thomasian-style restart waiting: before re-running
// a killed transaction, poll until every transaction that blocked the fatal
// request (the *LockError's Blockers) has left the lock table — holding
// nothing and waiting on nothing. Restarting earlier would, with high
// probability, just re-collide with the same holders; waiting for them to
// drain converts a doomed restart into a likely-clean one.
type RestartWait struct {
	// Active reports whether a transaction still occupies the lock table —
	// typically (*lock.Manager).TxnActive. Required; a nil Active degrades
	// to Fallback (or an immediate restart).
	Active func(lock.TxnID) bool
	// Poll is the re-check interval (default 200µs).
	Poll time.Duration
	// Max bounds the pause (default 50ms): past it the restart proceeds
	// anyway, so a long-running blocker cannot stall the retrier forever.
	Max time.Duration
	// Fallback, if set, paces restarts whose error carried no blocker set
	// (e.g. an injected fault or a shed Begin). Nil restarts immediately.
	Fallback Backoff
}

// Pause blocks until the blockers of the failed attempt have drained, Max
// elapses, or ctx ends.
func (b RestartWait) Pause(ctx context.Context, attempt int, err error) error {
	blockers := Blockers(err)
	if len(blockers) == 0 || b.Active == nil {
		if b.Fallback != nil {
			return b.Fallback.Pause(ctx, attempt, err)
		}
		return ctx.Err()
	}
	poll := b.Poll
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}
	max := b.Max
	if max <= 0 {
		max = 50 * time.Millisecond
	}
	deadline := time.Now().Add(max)
	for {
		drained := true
		for _, t := range blockers {
			if b.Active(t) {
				drained = false
				break
			}
		}
		if drained || !time.Now().Before(deadline) {
			return ctx.Err()
		}
		if err := sleep(ctx, poll); err != nil {
			return err
		}
	}
}

// sleep waits for d or until ctx ends, whichever is first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
