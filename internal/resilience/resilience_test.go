package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"colock/internal/lock"
)

func TestClassify(t *testing.T) {
	le := func(cause error) error {
		return &lock.LockError{Txn: 7, Resource: "a", Mode: lock.X, Cause: cause}
	}
	cases := []struct {
		name  string
		err   error
		cause Cause
		retry bool
	}{
		{"nil", nil, "", false},
		{"deadlock", le(lock.ErrDeadlockVictim), CauseDeadlock, true},
		{"wait-die", le(lock.ErrWaitDie), CauseWaitDie, true},
		{"timeout", le(lock.ErrTimeout), CauseTimeout, true},
		{"shed", le(lock.ErrShed), CauseShed, true},
		{"would-block", le(lock.ErrWouldBlock), CauseWouldBlock, true},
		{"attempt-budget", le(context.DeadlineExceeded), CauseTimeout, true},
		{"canceled", le(context.Canceled), CauseCanceled, false},
		{"bare-sentinel", lock.ErrDeadlock, CauseDeadlock, true},
		{"app-error", errors.New("constraint violated"), CauseOther, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cause, retry := Classify(c.err)
			if cause != c.cause || retry != c.retry {
				t.Errorf("Classify(%v) = (%q, %v), want (%q, %v)", c.err, cause, retry, c.cause, c.retry)
			}
		})
	}
}

// A wait-die death must classify as wait-die, not generic deadlock, even
// though it satisfies errors.Is(err, ErrDeadlock) for legacy callers.
func TestWaitDieIsAlsoDeadlock(t *testing.T) {
	err := &lock.LockError{Txn: 2, Resource: "a", Mode: lock.X, Cause: lock.ErrWaitDie}
	if !errors.Is(err, lock.ErrDeadlock) {
		t.Fatal("wait-die death should satisfy errors.Is(err, ErrDeadlock)")
	}
	if cause, _ := Classify(err); cause != CauseWaitDie {
		t.Fatalf("cause = %q, want wait-die", cause)
	}
}

func TestBlockers(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &lock.LockError{
		Txn: 2, Resource: "a", Mode: lock.X, Cause: lock.ErrTimeout,
		Blockers: []lock.TxnID{5, 9},
	})
	got := Blockers(err)
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("Blockers = %v, want [5 9]", got)
	}
	if Blockers(errors.New("plain")) != nil {
		t.Error("plain error should have no blockers")
	}
}

type obsRecorder struct {
	mu      sync.Mutex
	retries []string
	dones   []int
	errs    []error
}

func (o *obsRecorder) Retry(cause string, attempt int) {
	o.mu.Lock()
	o.retries = append(o.retries, cause)
	o.mu.Unlock()
}

func (o *obsRecorder) Done(attempts int, err error) {
	o.mu.Lock()
	o.dones = append(o.dones, attempts)
	o.errs = append(o.errs, err)
	o.mu.Unlock()
}

func TestRetrierSucceedsAfterTransientFailures(t *testing.T) {
	obs := &obsRecorder{}
	r := &Retrier{MaxAttempts: 10, Observer: obs}
	calls := 0
	err := r.Run(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 4 {
			return &lock.LockError{Txn: 1, Resource: "a", Mode: lock.X, Cause: lock.ErrDeadlockVictim}
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want nil after 4 attempts", err, calls)
	}
	if len(obs.retries) != 3 || obs.retries[0] != "deadlock" {
		t.Errorf("retries = %v, want 3× deadlock", obs.retries)
	}
	if len(obs.dones) != 1 || obs.dones[0] != 4 || obs.errs[0] != nil {
		t.Errorf("done = %v/%v, want attempts=4 err=nil", obs.dones, obs.errs)
	}
}

func TestRetrierStopsOnNonRetryable(t *testing.T) {
	appErr := errors.New("application bug")
	calls := 0
	r := &Retrier{MaxAttempts: 10}
	err := r.Run(context.Background(), func(ctx context.Context) error {
		calls++
		return appErr
	})
	if !errors.Is(err, appErr) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the app error after one attempt", err, calls)
	}
}

func TestRetrierExhaustsAttempts(t *testing.T) {
	obs := &obsRecorder{}
	r := &Retrier{MaxAttempts: 3, Observer: obs}
	calls := 0
	err := r.Run(context.Background(), func(ctx context.Context) error {
		calls++
		return &lock.LockError{Txn: 1, Resource: "a", Mode: lock.X, Cause: lock.ErrTimeout}
	})
	if !errors.Is(err, lock.ErrTimeout) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want timeout after exactly 3 attempts", err, calls)
	}
	if len(obs.dones) != 1 || obs.dones[0] != 3 || obs.errs[0] == nil {
		t.Errorf("done = %v/%v, want attempts=3 with error", obs.dones, obs.errs)
	}
}

func TestRetrierHonorsParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Retrier{} // unlimited attempts
	calls := 0
	err := r.Run(ctx, func(ctx context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return &lock.LockError{Txn: 1, Resource: "a", Mode: lock.X, Cause: lock.ErrDeadlockVictim}
	})
	if err == nil || calls != 2 {
		t.Fatalf("err=%v calls=%d, want retryable error surfaced after cancel", err, calls)
	}
}

func TestRetrierAttemptTimeout(t *testing.T) {
	r := &Retrier{MaxAttempts: 2, AttemptTimeout: 5 * time.Millisecond}
	deadlines := 0
	err := r.Run(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done() // burn the whole budget
		return &lock.LockError{Txn: 1, Resource: "a", Mode: lock.X, Cause: ctx.Err()}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want attempt deadline", err)
	}
	if deadlines != 2 {
		t.Fatalf("deadlines seen = %d, want one per attempt", deadlines)
	}
}

func TestRetrierRetryIfOverride(t *testing.T) {
	appErr := errors.New("transient infra hiccup")
	calls := 0
	r := &Retrier{MaxAttempts: 3, RetryIf: func(err error) bool { return errors.Is(err, appErr) }}
	err := r.Run(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return appErr
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want override to retry the app error", err, calls)
	}
}

func TestCappedExponentialGrowsAndCaps(t *testing.T) {
	b := CappedExponential{Base: time.Millisecond, Cap: 4 * time.Millisecond, Jitter: 0.001}
	start := time.Now()
	for attempt := 1; attempt <= 5; attempt++ {
		if err := b.Pause(context.Background(), attempt, lock.ErrTimeout); err != nil {
			t.Fatal(err)
		}
	}
	// 1+2+4+4+4 = 15ms minimum.
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Errorf("total pause %v, want ≥ 15ms (growth then cap)", el)
	}
	// Canceled ctx cuts the pause short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Pause(ctx, 10, lock.ErrTimeout); err == nil {
		t.Error("pause on dead ctx should return its error")
	}
}

func TestRestartWaitDrainsBlockers(t *testing.T) {
	var mu sync.Mutex
	active := map[lock.TxnID]bool{5: true, 9: true}
	b := RestartWait{
		Active: func(t lock.TxnID) bool { mu.Lock(); defer mu.Unlock(); return active[t] },
		Poll:   100 * time.Microsecond,
		Max:    time.Second,
	}
	err := &lock.LockError{Txn: 2, Resource: "a", Mode: lock.X,
		Cause: lock.ErrWaitDie, Blockers: []lock.TxnID{5, 9}}
	go func() {
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		delete(active, 5)
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		delete(active, 9)
		mu.Unlock()
	}()
	start := time.Now()
	if perr := b.Pause(context.Background(), 1, err); perr != nil {
		t.Fatal(perr)
	}
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Errorf("pause returned after %v, want ≥ 4ms (both blockers drained)", el)
	}
}

func TestRestartWaitMaxBound(t *testing.T) {
	b := RestartWait{
		Active: func(lock.TxnID) bool { return true }, // never drains
		Poll:   100 * time.Microsecond,
		Max:    3 * time.Millisecond,
	}
	err := &lock.LockError{Txn: 2, Resource: "a", Mode: lock.X,
		Cause: lock.ErrWaitDie, Blockers: []lock.TxnID{5}}
	start := time.Now()
	if perr := b.Pause(context.Background(), 1, err); perr != nil {
		t.Fatal(perr)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Errorf("pause ran %v, want bounded near Max", el)
	}
}

func TestRestartWaitFallback(t *testing.T) {
	used := false
	b := RestartWait{
		Active:   func(lock.TxnID) bool { return false },
		Fallback: backoffFunc(func(context.Context, int, error) error { used = true; return nil }),
	}
	// No blocker set on the error → fallback paces the restart.
	if err := b.Pause(context.Background(), 1, lock.ErrShed); err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Error("fallback not consulted for blocker-less error")
	}
}

type backoffFunc func(context.Context, int, error) error

func (f backoffFunc) Pause(ctx context.Context, a int, e error) error { return f(ctx, a, e) }

func TestChaosDeterministicUnderSeed(t *testing.T) {
	mk := func() *Chaos {
		return NewChaos(ChaosConfig{Seed: 42, VictimRate: 0.2, TimeoutRate: 0.1, DelayRate: 0.05})
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		fa := a.InjectAcquire(1, "r", lock.S)
		fb := b.InjectAcquire(1, "r", lock.S)
		if !errors.Is(fa.Err, fb.Err) && fa.Err != fb.Err || fa.Delay != fb.Delay {
			t.Fatalf("call %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Victims == 0 || sa.Timeouts == 0 || sa.Delays == 0 {
		t.Errorf("expected every fault kind at these rates over 500 draws: %+v", sa)
	}
}

func TestChaosZeroRatesInjectNothing(t *testing.T) {
	c := NewChaos(ChaosConfig{Seed: 1})
	for i := 0; i < 100; i++ {
		if f := c.InjectAcquire(1, "r", lock.X); f.Err != nil || f.Delay != 0 {
			t.Fatalf("zero-rate chaos injected %+v", f)
		}
	}
}

// End-to-end: a chaos injector installed on a real manager produces
// *LockError failures indistinguishable from organic ones, counted by the
// manager, and the Retrier rides through them.
func TestChaosThroughManagerAndRetrier(t *testing.T) {
	m := lock.NewManager(lock.Options{})
	m.SetInjector(NewChaos(ChaosConfig{Seed: 7, VictimRate: 0.5}))
	r := &Retrier{} // unlimited, immediate
	var txn lock.TxnID
	err := r.Run(context.Background(), func(ctx context.Context) error {
		txn++
		if err := m.AcquireCtx(ctx, txn, "a", lock.X); err != nil {
			m.ReleaseAll(txn)
			return err
		}
		m.ReleaseAll(txn)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().InjectedFaults == 0 {
		// Seed 7 at 50% makes the first few draws overwhelmingly likely to
		// include a victim; if not, the retrier just succeeded first try.
		t.Log("no fault injected before first success (seed-dependent)")
	}
	m.SetInjector(nil)
	if err := m.AcquireCtx(context.Background(), 999, "a", lock.X); err != nil {
		t.Fatalf("after clearing injector: %v", err)
	}
	m.ReleaseAll(999)
}
