package resilience_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"colock/internal/lock"
	"colock/internal/resilience"
)

// countingInjector counts every manager acquisition (InjectAcquire runs
// exactly once per AcquireCtx call) and fails the first failFirst of them
// with a synthetic deadlock victim.
type countingInjector struct {
	calls     atomic.Int64
	failFirst int64
}

func (c *countingInjector) InjectAcquire(txn lock.TxnID, r lock.Resource, mode lock.Mode) lock.Injection {
	if c.calls.Add(1) <= c.failFirst {
		return lock.Injection{Err: lock.ErrDeadlockVictim}
	}
	return lock.Injection{}
}

// TestOptionRetryMatrix drives every acquire-option combination (durable ×
// no-wait × timeout) through every backoff policy, with an injector that
// kills the first two attempts. Each attempt must reach the manager exactly
// once — options must neither short-circuit the call nor multiply it — so
// after two injected victims and one success the injector has seen exactly
// three acquisitions, and the retrier reports success.
func TestOptionRetryMatrix(t *testing.T) {
	backoffs := []struct {
		name string
		make func(m *lock.Manager) resilience.Backoff
	}{
		{"immediate", func(*lock.Manager) resilience.Backoff { return resilience.Immediate{} }},
		{"capped-exponential", func(*lock.Manager) resilience.Backoff {
			return resilience.CappedExponential{Base: 10 * time.Microsecond, Cap: 100 * time.Microsecond}
		}},
		{"restart-wait", func(m *lock.Manager) resilience.Backoff {
			return resilience.RestartWait{
				Active: m.TxnActive,
				Poll:   10 * time.Microsecond,
				Max:    time.Millisecond,
			}
		}},
	}
	for _, durable := range []bool{false, true} {
		for _, noWait := range []bool{false, true} {
			for _, timeout := range []time.Duration{0, 50 * time.Millisecond} {
				for _, bo := range backoffs {
					name := fmt.Sprintf("durable=%v/nowait=%v/timeout=%v/%s",
						durable, noWait, timeout, bo.name)
					t.Run(name, func(t *testing.T) {
						m := lock.NewManager(lock.Options{})
						inj := &countingInjector{failFirst: 2}
						m.SetInjector(inj)
						var opts []lock.AcquireOption
						if durable {
							opts = append(opts, lock.WithDurable())
						}
						if noWait {
							opts = append(opts, lock.WithNoWait())
						}
						if timeout > 0 {
							opts = append(opts, lock.WithTimeout(timeout))
						}
						r := &resilience.Retrier{MaxAttempts: 5, Backoff: bo.make(m)}
						var id lock.TxnID
						err := r.Run(context.Background(), func(ctx context.Context) error {
							id++
							if err := m.AcquireCtx(ctx, id, "res", lock.X, opts...); err != nil {
								m.ReleaseAll(id)
								return err
							}
							return nil
						})
						if err != nil {
							t.Fatalf("retrier failed: %v", err)
						}
						if got := inj.calls.Load(); got != 3 {
							t.Errorf("manager acquisitions = %d, want exactly 3 (one per attempt)", got)
						}
						if held := m.HeldLocks(id); len(held) != 1 {
							t.Errorf("winning attempt holds %d locks, want 1", len(held))
						}
					})
				}
			}
		}
	}
}
