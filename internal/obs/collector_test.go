package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"colock/internal/lock"
)

func newTracedManager(t *testing.T, c *Collector) *lock.Manager {
	t.Helper()
	return lock.NewManager(lock.Options{Sinks: []lock.EventSink{c}})
}

func TestCollectorCountsAndHistograms(t *testing.T) {
	c := NewCollector(Options{})
	m := newTracedManager(t, c)

	const db = lock.Resource("db1")
	const rel = lock.Resource("db1/seg1/cells")
	const obj = lock.Resource("db1/seg1/cells/c1")
	if err := m.AcquireCtx(context.Background(), 1, db, lock.IX); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, rel, lock.IX); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, obj, lock.S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, obj, lock.X); err != nil { // conversion
		t.Fatal(err)
	}
	m.ReleaseAll(1)

	if got := c.EventCount("grant"); got != 3 {
		t.Errorf("grant count = %d, want 3", got)
	}
	if got := c.EventCount("convert"); got != 1 {
		t.Errorf("convert count = %d, want 1", got)
	}
	if got := c.EventCount("release"); got != 3 {
		t.Errorf("release count = %d, want 3", got)
	}

	// Uncontended acquires land in the acquire histogram only.
	if acq := c.Aggregate(OpAcquire); acq.Count != 4 {
		t.Errorf("acquire observations = %d, want 4", acq.Count)
	}
	if w := c.Aggregate(OpWait); w.Count != 0 {
		t.Errorf("wait observations = %d, want 0 (uncontended)", w.Count)
	}
	if h := c.Aggregate(OpHold); h.Count != 3 {
		t.Errorf("hold observations = %d, want 3", h.Count)
	}

	// Dimension routing: db is depth 1, obj root is depth 4 ("entry-point").
	if s := c.Hist(OpAcquire, lock.IX, "database"); s.Count != 1 {
		t.Errorf("IX/database acquires = %d, want 1", s.Count)
	}
	if s := c.Hist(OpAcquire, lock.X, "entry-point"); s.Count != 1 {
		t.Errorf("X/entry-point acquires (conversion) = %d, want 1", s.Count)
	}
}

func TestCollectorWaitHistogram(t *testing.T) {
	c := NewCollector(Options{})
	m := newTracedManager(t, c)
	r := lock.Resource("db1/seg1/cells/c1")

	if err := m.AcquireCtx(context.Background(), 1, r, lock.X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 2, r, lock.X) }()
	// Wait until txn 2 is queued, then release to grant it.
	for i := 0; m.WaitingTxns() == 0; i++ {
		if i > 1000 {
			t.Fatal("txn 2 never queued")
		}
		time.Sleep(time.Millisecond)
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)

	w := c.Aggregate(OpWait)
	if w.Count != 1 {
		t.Fatalf("wait observations = %d, want 1", w.Count)
	}
	if w.Max < time.Millisecond {
		t.Errorf("wait max = %v, want ≥ 1ms (we held the lock that long)", w.Max)
	}
	if c.EventCount("wait") != 1 {
		t.Errorf("wait events = %d, want 1", c.EventCount("wait"))
	}
}

func TestCollectorTimeoutFeedsWaitHistogram(t *testing.T) {
	c := NewCollector(Options{})
	m := newTracedManager(t, c)
	r := lock.Resource("db1/seg1/cells/c1")

	if err := m.AcquireCtx(context.Background(), 1, r, lock.X); err != nil {
		t.Fatal(err)
	}
	err := m.AcquireCtx(context.Background(), 2, r, lock.S, lock.WithTimeout(5*time.Millisecond))
	if !errors.Is(err, lock.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	m.ReleaseAll(1)

	if c.EventCount("timeout") != 1 {
		t.Fatalf("timeout events = %d, want 1", c.EventCount("timeout"))
	}
	w := c.Aggregate(OpWait)
	if w.Count != 1 || w.Max < 5*time.Millisecond {
		t.Errorf("wait hist count=%d max=%v, want 1 observation ≥ 5ms", w.Count, w.Max)
	}
}

func TestCollectorRings(t *testing.T) {
	c := NewCollector(Options{RingSize: 4, Rings: 2})
	m := newTracedManager(t, c)
	for i := 0; i < 10; i++ {
		r := lock.Resource("db1/seg1/cells/c" + string(rune('a'+i)))
		if err := m.AcquireCtx(context.Background(), 1, r, lock.S); err != nil {
			t.Fatal(err)
		}
	}
	recent := c.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("Recent(3) returned %d events", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].At.Before(recent[i-1].At) {
			t.Fatal("Recent not time-ordered")
		}
	}
	drained := c.Drain()
	if len(drained) == 0 || len(drained) > 8 { // 2 rings × cap 4
		t.Fatalf("Drain returned %d events, want 1..8", len(drained))
	}
	if got := c.Drain(); len(got) != 0 {
		t.Fatalf("second Drain returned %d events, want 0", len(got))
	}
	// Counters are unaffected by draining.
	if c.EventCount("grant") != 10 {
		t.Errorf("grant count = %d, want 10", c.EventCount("grant"))
	}
	m.ReleaseAll(1)
}

func TestCollectorRingsDisabled(t *testing.T) {
	c := NewCollector(Options{RingSize: -1})
	m := newTracedManager(t, c)
	if err := m.AcquireCtx(context.Background(), 1, "db1", lock.S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if evs := c.Recent(10); len(evs) != 0 {
		t.Fatalf("retention disabled but Recent returned %d events", len(evs))
	}
	if c.EventCount("grant") != 1 {
		t.Error("counters must still work with retention disabled")
	}
}

func TestCollectorCustomKinds(t *testing.T) {
	kinds := []string{"hot", "cold"}
	c := NewCollector(Options{
		KindLabels: kinds,
		KindOf: func(r lock.Resource) int {
			if strings.HasPrefix(string(r), "hot/") {
				return 0
			}
			return 1
		},
	})
	m := newTracedManager(t, c)
	if err := m.AcquireCtx(context.Background(), 1, "hot/a", lock.S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, "cold/b", lock.S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if s := c.Hist(OpAcquire, lock.S, "hot"); s.Count != 1 {
		t.Errorf("hot acquires = %d, want 1", s.Count)
	}
	if s := c.Hist(OpAcquire, lock.S, "cold"); s.Count != 1 {
		t.Errorf("cold acquires = %d, want 1", s.Count)
	}
}

func TestDepthKindOf(t *testing.T) {
	cases := map[lock.Resource]string{
		"db1":                          "database",
		"db1/seg1":                     "segment",
		"db1/seg1/cells":               "relation",
		"db1/seg1/cells/c1":            "entry-point",
		"db1/seg1/cells/c1/robots/r1":  "node",
		"db1/seg1/cells/c1/surface/s1": "node",
	}
	for r, want := range cases {
		if got := DefaultKinds[DepthKindOf(r)]; got != want {
			t.Errorf("DepthKindOf(%q) = %s, want %s", r, got, want)
		}
	}
}

// Concurrent traffic through the collector must be race-free and lose no
// counter increments (rings may overwrite, counters may not).
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(Options{RingSize: 64})
	m := newTracedManager(t, c)
	const goroutines, iters = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := lock.TxnID(g + 1)
			for i := 0; i < iters; i++ {
				r := lock.Resource("db1/seg1/cells/c" + string(rune('a'+i%8)))
				if err := m.AcquireCtx(context.Background(), txn, r, lock.S); err != nil {
					t.Error(err)
					return
				}
				m.Release(txn, r)
			}
		}(g)
	}
	wg.Wait()
	grants := c.EventCount("grant")
	releases := c.EventCount("release")
	if grants != goroutines*iters || releases != goroutines*iters {
		t.Fatalf("grants=%d releases=%d, want %d each", grants, releases, goroutines*iters)
	}
	if acq := c.Aggregate(OpAcquire); acq.Count != goroutines*iters {
		t.Fatalf("acquire observations = %d, want %d", acq.Count, goroutines*iters)
	}
}

// With sampling enabled the exact counters in Manager.Stats must keep exact
// totals while the collector sees roughly 1/2^k of operations.
func TestSampledCollector(t *testing.T) {
	c := NewCollector(Options{})
	m := lock.NewManager(lock.Options{Sinks: []lock.EventSink{c}, EventSampleShift: 2})
	const n = 400
	for i := 0; i < n; i++ {
		r := lock.Resource(fmt.Sprintf("db1/seg1/cells/x%d", i))
		if err := m.AcquireCtx(context.Background(), 1, r, lock.S); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseAll(1)
	if st := m.Stats(); st.Requests != n {
		t.Fatalf("Stats.Requests = %d, want exact %d despite sampling", st.Requests, n)
	}
	got := c.EventCount("grant")
	if got == 0 || got >= n {
		t.Fatalf("sampled grant events = %d, want in (0, %d)", got, n)
	}
	// 1-in-4 sampling over a run of consecutive acquire operations: expect
	// about n/4, allow generous slop for the deterministic modular pattern.
	if got < n/8 || got > n/2 {
		t.Errorf("sampled grant events = %d, want ≈ %d", got, n/4)
	}
}
