package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"colock/internal/lock"
	"colock/internal/trace"
)

// The exposition endpoint is opt-in: nothing in the lock manager or the
// collector touches the network unless Serve (or Handler) is called, and
// every page is computed on demand from the same introspection calls a
// test would make — there is no background goroutine besides the HTTP
// server itself.

// TraceSources bundles the per-transaction tracing surfaces /trace/* serve.
// Any field may be nil; its route then answers 404.
type TraceSources struct {
	// Recorder supplies buffered span trees (/trace/spans?txn=N) and the
	// flight recorder's recent spans (/trace/spans?n=K).
	Recorder *trace.Recorder
	// Incidents lists written incident dumps (/trace/incidents).
	Incidents *trace.IncidentWriter
	// Profile renders the blocked-time contention profile in folded-stack
	// text (/trace/profile), ready for flamegraph tooling.
	Profile *trace.Profile
	// Health serves the lock-health verdict on /health (JSON state + window
	// series + top-K hot resources). Wire internal/health.Monitor.Handler
	// here; obs stays dependency-free of the health package by taking the
	// plain http.Handler.
	Health http.Handler
	// Journal serves the durable lock-event journal's status on
	// /journal/status (JSON counters: segments, records, drops). Wire
	// internal/journal.Writer.StatusHandler here; like Health it is a plain
	// http.Handler so obs stays dependency-free of the journal package.
	Journal http.Handler
	// Pprof opt-in mounts net/http/pprof under /debug/pprof/ (CPU, heap,
	// mutex, block profiles — the natural companions to /trace/profile when
	// chasing grant-path regressions). Off by default: the profile endpoints
	// can observably perturb a latency-sensitive process, so production
	// deployments enable them deliberately (colockshell -pprof).
	Pprof bool
}

// Handler returns an http.Handler exposing the observability surface:
//
//	/metrics          Prometheus text format (collector + manager + extras)
//	/debug/vars       expvar-style JSON gauges
//	/queues           live lock-table queue snapshot (JSON; ?contended=1 filters)
//	/dot              waits-for graph in Graphviz DOT format
//	/health           lock-health verdict (JSON; see internal/health)
//	/trace/spans      span trees (JSON; ?txn=N for one txn's buffer, else ?n=K recent)
//	/trace/incidents  incident-dump index (JSON)
//	/trace/profile    blocked-time contention profile (folded-stack text)
//	/journal/status   durable journal status (JSON; see internal/journal)
//	/debug/pprof/     net/http/pprof profiles (opt-in via TraceSources.Pprof)
//
// col may be nil (manager metrics only), as may ts or any of its fields
// (the corresponding routes then 404); extra writers are appended to
// /metrics, letting callers export their own families (e.g. the core
// protocol's rule counters) without this package importing them.
//
// The index page "/" is registration-driven: it lists exactly the routes
// that are live for this handler's configuration, so a scraper (or a human
// with curl) discovers the surface instead of guessing it.
func Handler(m *lock.Manager, col *Collector, ts *TraceSources, extra ...func(io.Writer)) http.Handler {
	if ts == nil {
		ts = &TraceSources{}
	}
	mux := http.NewServeMux()
	var routes []string
	register := func(path string, live bool, h http.HandlerFunc) {
		mux.HandleFunc(path, h)
		if live {
			routes = append(routes, path)
		}
	}
	register("/metrics", true, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if col != nil {
			col.WriteMetrics(w)
		}
		WriteManagerMetrics(w, m)
		for _, f := range extra {
			f(w)
		}
	})
	register("/debug/vars", true, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteVars(w, m, col)
	})
	register("/queues", true, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteQueuesJSON(w, m, r.URL.Query().Get("contended") != "")
	})
	register("/dot", true, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		io.WriteString(w, m.WaitsForDOT())
	})
	register("/trace/spans", ts.Recorder != nil, func(w http.ResponseWriter, r *http.Request) {
		if ts.Recorder == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if q := r.URL.Query().Get("txn"); q != "" {
			id, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "bad txn", http.StatusBadRequest)
				return
			}
			spans := ts.Recorder.SpansOf(lock.TxnID(id))
			if spans == nil {
				spans = []trace.Span{}
			}
			_ = enc.Encode(spans)
			return
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			n, _ = strconv.Atoi(q)
		}
		spans := ts.Recorder.Recent(n)
		if spans == nil {
			spans = []trace.Span{}
		}
		_ = enc.Encode(spans)
	})
	register("/trace/incidents", ts.Incidents != nil, func(w http.ResponseWriter, r *http.Request) {
		if ts.Incidents == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		infos := ts.Incidents.Incidents()
		if infos == nil {
			infos = []trace.IncidentInfo{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(infos)
	})
	register("/health", ts.Health != nil, func(w http.ResponseWriter, r *http.Request) {
		if ts.Health == nil {
			http.NotFound(w, r)
			return
		}
		ts.Health.ServeHTTP(w, r)
	})
	register("/trace/profile", ts.Profile != nil, func(w http.ResponseWriter, r *http.Request) {
		if ts.Profile == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = ts.Profile.WriteFolded(w)
	})
	register("/journal/status", ts.Journal != nil, func(w http.ResponseWriter, r *http.Request) {
		if ts.Journal == nil {
			http.NotFound(w, r)
			return
		}
		ts.Journal.ServeHTTP(w, r)
	})
	if ts.Pprof {
		// Explicit handlers rather than net/http/pprof's init-time
		// registration: that targets http.DefaultServeMux, not this mux.
		register("/debug/pprof/", true, pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	sort.Strings(routes)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "colock observability\n\n")
		for _, route := range routes {
			fmt.Fprintln(w, route)
		}
	})
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition endpoint on addr (use ":0" or "127.0.0.1:0"
// to pick a free port, e.g. in tests) and returns once the listener is
// bound. Close shuts it down.
func Serve(addr string, m *lock.Manager, col *Collector, ts *TraceSources, extra ...func(io.Writer)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(m, col, ts, extra...), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
