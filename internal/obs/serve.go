package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"colock/internal/lock"
)

// The exposition endpoint is opt-in: nothing in the lock manager or the
// collector touches the network unless Serve (or Handler) is called, and
// every page is computed on demand from the same introspection calls a
// test would make — there is no background goroutine besides the HTTP
// server itself.

// Handler returns an http.Handler exposing the observability surface:
//
//	/metrics     Prometheus text format (collector + manager + extras)
//	/debug/vars  expvar-style JSON gauges
//	/queues      live lock-table queue snapshot (JSON; ?contended=1 filters)
//	/dot         waits-for graph in Graphviz DOT format
//
// col may be nil (manager metrics only); extra writers are appended to
// /metrics, letting callers export their own families (e.g. the core
// protocol's rule counters) without this package importing them.
func Handler(m *lock.Manager, col *Collector, extra ...func(io.Writer)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if col != nil {
			col.WriteMetrics(w)
		}
		WriteManagerMetrics(w, m)
		for _, f := range extra {
			f(w)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteVars(w, m, col)
	})
	mux.HandleFunc("/queues", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteQueuesJSON(w, m, r.URL.Query().Get("contended") != "")
	})
	mux.HandleFunc("/dot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
		io.WriteString(w, m.WaitsForDOT())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "colock observability\n\n/metrics\n/debug/vars\n/queues\n/dot\n")
	})
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition endpoint on addr (use ":0" or "127.0.0.1:0"
// to pick a free port, e.g. in tests) and returns once the listener is
// bound. Close shuts it down.
func Serve(addr string, m *lock.Manager, col *Collector, extra ...func(io.Writer)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(m, col, extra...), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
