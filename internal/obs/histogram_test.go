package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// Every bucket boundary must be monotone, and bucketIndex must agree with
// the [bucketLow, bucketHigh) ranges it implies.
func TestBucketBoundsConsistent(t *testing.T) {
	prev := uint64(0)
	for i := 0; i < nBuckets; i++ {
		lo, hi := bucketLow(i), bucketHigh(i)
		if i > 0 && lo <= prev {
			t.Fatalf("bucket %d: low %d not > previous low %d", i, lo, prev)
		}
		if hi <= lo {
			t.Fatalf("bucket %d: high %d <= low %d", i, hi, lo)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(low=%d) = %d, want %d", lo, got, i)
		}
		if hi != math.MaxUint64 {
			if got := bucketIndex(hi - 1); got != i {
				t.Fatalf("bucketIndex(high-1=%d) = %d, want %d", hi-1, got, i)
			}
		}
		prev = lo
	}
}

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{3, 3},
		{4, 4}, // first octave bucket: 2^2 + 0
		{math.MaxUint64, nBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// The relative error of any finite bucket is bounded by 1/nSub (25%).
	for _, v := range []uint64{5, 100, 999, 12345, 1e6, 1e9, 1e12} {
		i := bucketIndex(v)
		lo, hi := bucketLow(i), bucketHigh(i)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
		if hi == math.MaxUint64 {
			continue // the last bucket doubles as the clamp bucket
		}
		if width := hi - lo; width > lo/nSub+1 {
			t.Errorf("bucket %d for %d too wide: [%d,%d)", i, v, lo, hi)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Max != 1000*time.Microsecond {
		t.Fatalf("max = %v, want 1ms", s.Max)
	}
	// Bucket midpoints give ~25% resolution; allow a wide band.
	p50 := s.Quantile(0.50)
	if p50 < 300*time.Microsecond || p50 > 700*time.Microsecond {
		t.Errorf("p50 = %v, want ~500µs", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 800*time.Microsecond || p99 > 1000*time.Microsecond {
		t.Errorf("p99 = %v, want ~990µs", p99)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("p100 = %v, want max %v", q, s.Max)
	}
	if m := s.Mean(); m < 400*time.Microsecond || m > 600*time.Microsecond {
		t.Errorf("mean = %v, want ~500µs", m)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram should report zero quantiles and mean")
	}
	h.Record(-time.Second) // counts as zero
	s := h.Snapshot()
	if s.Count != 1 || s.Counts[0] != 1 {
		t.Fatalf("negative record: count=%d bucket0=%d, want 1/1", s.Count, s.Counts[0])
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(g*per+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
	if s.Max != time.Duration(goroutines*per-1) {
		t.Fatalf("max = %v, want %v", s.Max, time.Duration(goroutines*per-1))
	}
}
