package obs

import (
	"fmt"
	"strings"
	"unicode"
)

// ValidateDOT checks a string against a useful subset of the Graphviz DOT
// grammar — enough to guarantee that Manager.WaitsForDOT output (and
// anything of similar shape) is well-formed without shelling out to dot:
//
//	graph     := [ "strict" ] ( "digraph" | "graph" ) [ id ] "{" stmts "}"
//	stmt      := node-stmt | edge-stmt | attr-stmt | id "=" id
//	node-stmt := id [ attr-list ]
//	edge-stmt := id edgeop id { edgeop id } [ attr-list ]
//	attr-stmt := ( "node" | "edge" | "graph" ) attr-list
//	attr-list := "[" [ a-list ] "]"
//	a-list    := id "=" id { ("," | ";") id "=" id } [ "," | ";" ]
//	id        := name | number | quoted-string
//
// Statements may be separated by ";" or newlines. Subgraphs, ports and
// HTML-string IDs are not supported. Returns nil when the input parses.
func ValidateDOT(src string) error {
	toks, err := dotLex(src)
	if err != nil {
		return err
	}
	p := &dotParser{toks: toks}
	if err := p.parseGraph(); err != nil {
		return err
	}
	if !p.eof() {
		return fmt.Errorf("dot: trailing input at %q", p.peek().val)
	}
	return nil
}

type dotToken struct {
	kind string // "id", "punct", "edgeop"
	val  string
	pos  int
}

func dotLex(src string) ([]dotToken, error) {
	var toks []dotToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("dot: unterminated comment at offset %d", i)
			}
			i += 2 + end + 2
		case c == '-' && i+1 < len(src) && (src[i+1] == '>' || src[i+1] == '-'):
			toks = append(toks, dotToken{kind: "edgeop", val: src[i : i+2], pos: i})
			i += 2
		case strings.ContainsRune("{}[]=;,", rune(c)):
			toks = append(toks, dotToken{kind: "punct", val: string(c), pos: i})
			i++
		case c == '"':
			j := i + 1
			for j < len(src) {
				if src[j] == '\\' && j+1 < len(src) {
					j += 2
					continue
				}
				if src[j] == '"' {
					break
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("dot: unterminated string at offset %d", i)
			}
			toks = append(toks, dotToken{kind: "id", val: src[i : j+1], pos: i})
			i = j + 1
		case c == '_' || c == '.' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) {
				r := rune(src[j])
				if r == '_' || r == '.' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r) {
					j++
					continue
				}
				break
			}
			toks = append(toks, dotToken{kind: "id", val: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("dot: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

type dotParser struct {
	toks []dotToken
	i    int
}

func (p *dotParser) eof() bool { return p.i >= len(p.toks) }

func (p *dotParser) peek() dotToken {
	if p.eof() {
		return dotToken{kind: "eof", val: "<eof>", pos: -1}
	}
	return p.toks[p.i]
}

func (p *dotParser) next() dotToken {
	t := p.peek()
	if !p.eof() {
		p.i++
	}
	return t
}

func (p *dotParser) accept(kind, val string) bool {
	t := p.peek()
	if t.kind == kind && (val == "" || t.val == val) {
		p.i++
		return true
	}
	return false
}

func (p *dotParser) expect(kind, val string) error {
	if p.accept(kind, val) {
		return nil
	}
	t := p.peek()
	want := val
	if want == "" {
		want = kind
	}
	return fmt.Errorf("dot: expected %q, got %q (offset %d)", want, t.val, t.pos)
}

func (p *dotParser) parseGraph() error {
	if t := p.peek(); t.kind == "id" && t.val == "strict" {
		p.next()
	}
	t := p.next()
	if t.kind != "id" || (t.val != "digraph" && t.val != "graph") {
		return fmt.Errorf("dot: expected \"digraph\" or \"graph\", got %q", t.val)
	}
	directed := t.val == "digraph"
	if q := p.peek(); q.kind == "id" {
		p.next() // optional graph name
	}
	if err := p.expect("punct", "{"); err != nil {
		return err
	}
	for !p.accept("punct", "}") {
		if p.eof() {
			return fmt.Errorf("dot: missing closing \"}\"")
		}
		if err := p.parseStmt(directed); err != nil {
			return err
		}
		p.accept("punct", ";") // optional statement terminator
	}
	return nil
}

func (p *dotParser) parseStmt(directed bool) error {
	t := p.next()
	if t.kind != "id" {
		return fmt.Errorf("dot: expected statement, got %q (offset %d)", t.val, t.pos)
	}
	// graph-level attribute: id = id
	if p.accept("punct", "=") {
		return p.expect("id", "")
	}
	// attr-stmt: node/edge/graph [ ... ]
	if (t.val == "node" || t.val == "edge" || t.val == "graph") && p.peek().val == "[" {
		return p.parseAttrList()
	}
	// edge-stmt: id (-> id)+ [attrs]
	sawEdge := false
	for p.peek().kind == "edgeop" {
		op := p.next()
		if directed && op.val != "->" {
			return fmt.Errorf("dot: undirected edge %q in digraph (offset %d)", op.val, op.pos)
		}
		if !directed && op.val != "--" {
			return fmt.Errorf("dot: directed edge %q in graph (offset %d)", op.val, op.pos)
		}
		if err := p.expect("id", ""); err != nil {
			return err
		}
		sawEdge = true
	}
	_ = sawEdge
	// optional attr-list for both node-stmt and edge-stmt
	if p.peek().val == "[" {
		return p.parseAttrList()
	}
	return nil
}

func (p *dotParser) parseAttrList() error {
	if err := p.expect("punct", "["); err != nil {
		return err
	}
	for !p.accept("punct", "]") {
		if p.eof() {
			return fmt.Errorf("dot: missing closing \"]\"")
		}
		if err := p.expect("id", ""); err != nil {
			return err
		}
		if err := p.expect("punct", "="); err != nil {
			return err
		}
		if err := p.expect("id", ""); err != nil {
			return err
		}
		if !p.accept("punct", ",") {
			p.accept("punct", ";")
		}
	}
	return nil
}
