package obs

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"colock/internal/lock"
	"colock/internal/resilience"
)

// RetryCollector must satisfy resilience.Observer by shape.
var _ resilience.Observer = (*RetryCollector)(nil)

func TestRetryCollectorCounts(t *testing.T) {
	rc := NewRetryCollector()
	rc.Retry("deadlock", 1)
	rc.Retry("deadlock", 2)
	rc.Retry("timeout", 1)
	rc.Done(3, nil)
	rc.Done(1, nil)
	rc.Done(5, errors.New("gave up"))

	if got := rc.Retries(); got["deadlock"] != 2 || got["timeout"] != 1 {
		t.Errorf("retries = %v", got)
	}
	s := rc.Attempts()
	if s.Commits != 2 || s.GiveUps != 1 || s.Sum != 4 || s.Max != 3 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Buckets[1] != 1 || s.Buckets[3] != 1 {
		t.Errorf("buckets = %v, want one commit at 1 attempt and one at 3", s.Buckets)
	}
	if m := s.Mean(); m != 2 {
		t.Errorf("mean = %v, want 2", m)
	}
	if str := rc.String(); !strings.Contains(str, "deadlock=2") || !strings.Contains(str, "commits=2") {
		t.Errorf("String() = %q", str)
	}

	rc.ResetStats()
	if s := rc.Attempts(); s.Commits != 0 || s.Sum != 0 || len(rc.Retries()) != 0 {
		t.Errorf("after reset: %+v %v", s, rc.Retries())
	}
}

func TestRetryCollectorOverflowBucket(t *testing.T) {
	rc := NewRetryCollector()
	rc.Done(100, nil)
	s := rc.Attempts()
	if s.Buckets[attemptBuckets-1] != 1 || s.Max != 100 {
		t.Errorf("snapshot = %+v, want overflow bucket hit and max 100", s)
	}
}

// Under -race: the collector wired as a live Retrier observer across
// concurrent workers, with a chaos-faulted manager underneath.
func TestRetryCollectorConcurrent(t *testing.T) {
	rc := NewRetryCollector()
	m := lock.NewManager(lock.Options{})
	m.SetInjector(resilience.NewChaos(resilience.ChaosConfig{Seed: 3, VictimRate: 0.3}))
	r := &resilience.Retrier{Observer: rc}

	const workers, iters = 8, 50
	var next lock.TxnID
	var idMu sync.Mutex
	newID := func() lock.TxnID {
		idMu.Lock()
		defer idMu.Unlock()
		next++
		return next
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := r.Run(context.Background(), func(ctx context.Context) error {
					id := newID()
					defer m.ReleaseAll(id)
					return m.AcquireCtx(ctx, id, "hot", lock.S)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := rc.Attempts()
	if s.Commits != workers*iters {
		t.Errorf("commits = %d, want %d", s.Commits, workers*iters)
	}
	if s.Sum < s.Commits {
		t.Errorf("sum %d < commits %d", s.Sum, s.Commits)
	}
	// At a 30% fault rate over 400 runs some retries are certain.
	if rc.Retries()["deadlock"] == 0 {
		t.Error("expected chaos-induced deadlock retries")
	}
}
