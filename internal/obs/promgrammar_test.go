package obs_test

// Grammar audit of the full /metrics document: every family the stack can
// export — collector, manager, protocol rules, retry collector, health
// gauges — written back-to-back exactly as obs.Handler composes them, then
// checked against the Prometheus text exposition rules: well-formed HELP
// and TYPE lines, every sample under a declared family, samples grouped
// with their family, parseable label sets and values, and no family
// declared twice across the writers (duplicate names would make a scraper
// reject the whole page).

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"colock/internal/core"
	"colock/internal/health"
	"colock/internal/lock"
	"colock/internal/obs"
	"colock/internal/store"
)

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// familyOf maps a sample name to its declaring family: summary/histogram
// child series append _sum/_count/_bucket to the family name.
func familyOf(name string, declared map[string]string) string {
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if _, exists := declared[base]; exists {
				return base
			}
		}
	}
	return name
}

func checkPromGrammar(t *testing.T, doc string) {
	t.Helper()
	declaredType := map[string]string{} // family → type
	declaredHelp := map[string]bool{}
	samples := 0
	current := "" // family of the most recent TYPE line
	for i, line := range strings.Split(doc, "\n") {
		where := fmt.Sprintf("line %d: %q", i+1, line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			m := helpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed HELP, %s", where)
			}
			if declaredHelp[m[1]] {
				t.Fatalf("duplicate HELP for family %s, %s", m[1], where)
			}
			declaredHelp[m[1]] = true
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed TYPE, %s", where)
			}
			if _, dup := declaredType[m[1]]; dup {
				t.Fatalf("family %s declared twice, %s", m[1], where)
			}
			if !declaredHelp[m[1]] {
				t.Fatalf("TYPE without preceding HELP for %s, %s", m[1], where)
			}
			declaredType[m[1]] = m[2]
			current = m[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unrecognized comment line, %s", where)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed sample, %s", where)
			}
			name, labels, value := m[1], m[2], m[3]
			fam := familyOf(name, declaredType)
			if _, ok := declaredType[fam]; !ok {
				t.Fatalf("sample %s has no TYPE declaration, %s", name, where)
			}
			if fam != current {
				t.Fatalf("sample %s not grouped under its family %s (current group %s), %s",
					name, fam, current, where)
			}
			if labels != "" {
				body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
				for _, pair := range splitLabels(body) {
					if !labelRe.MatchString(pair) {
						t.Fatalf("malformed label %q, %s", pair, where)
					}
				}
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("unparseable value %q, %s", value, where)
			}
			samples++
		}
	}
	if samples == 0 {
		t.Fatal("document contained no samples")
	}
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range body {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(r)
		case r == '\\':
			escaped = true
			cur.WriteRune(r)
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func TestMetricsGrammarAcrossAllWriters(t *testing.T) {
	st := store.PaperDatabase()
	nm := core.NewNamer(st.Catalog(), false)
	col := obs.NewCollector(obs.Options{})
	mgr := lock.NewManager(lock.Options{Sinks: []lock.EventSink{col}})
	proto := core.NewProtocol(mgr, st, nm, core.Options{})
	rc := obs.NewRetryCollector()
	mon := health.NewMonitor(health.Options{Window: time.Second, SLO: health.SLO{MaxAbortRate: 0.1}})
	mgr.AttachSink(mon)

	// Populate label-bearing series: real lock traffic (event counters,
	// latency histograms, health windows + a hot key with a label-hostile
	// name), retry causes, a commit and a give-up.
	ctx := context.Background()
	if err := mgr.AcquireCtx(ctx, 1, "db1", lock.IX); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AcquireCtx(ctx, 1, `db1/seg"odd\name`, lock.X); err != nil {
		t.Fatal(err)
	}
	mgr.ReleaseAll(1)
	mon.Record(lock.Event{Kind: "wait", At: time.Now(), Resource: `db1/seg"odd\name`, Mode: lock.X})
	mon.Record(lock.Event{Kind: "wait", At: time.Now(), Resource: `db1/seg"odd\name`, Mode: lock.X})
	mon.Advance(time.Now().Add(2 * time.Second))
	rc.Retry("victim", 1)
	rc.Retry("timeout", 2)
	rc.Done(3, nil)
	rc.Done(2, context.DeadlineExceeded)

	// Compose the document exactly like obs.Handler's /metrics route:
	// collector, manager, then the extra writers the shell registers.
	var b strings.Builder
	col.WriteMetrics(&b)
	obs.WriteManagerMetrics(&b, mgr)
	proto.WriteMetrics(&b)
	rc.WriteMetrics(&b)
	mon.WriteMetrics(&b)
	doc := b.String()

	checkPromGrammar(t, doc)

	// The three new surfaces of this PR are all present.
	for _, fam := range []string{"colock_retries_total", "colock_health_state", "colock_health_hot_count"} {
		if !strings.Contains(doc, "# TYPE "+fam+" ") {
			t.Fatalf("family %s missing from the composed document", fam)
		}
	}
}
