package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"colock/internal/lock"
)

func TestValidateDOTAccepts(t *testing.T) {
	good := []string{
		"digraph {}",
		"digraph waitsfor { }",
		"strict digraph g { a; b; a -> b; }",
		"graph g { a -- b }",
		`digraph waitsfor {
  rankdir=LR;
  node [shape=ellipse];
  t1 [label="txn 1"];
  t2 [label="txn 2 (victim)", color=red, style=bold];
  t1 -> t2 [label="X db1/seg1/cells/c1"];
  t2 -> t1 [label="S \"quoted\" name (victim edge)", color=red, style=bold];
}`,
		"digraph { a -> b -> c [label=chain] }",
		"digraph { // comment\n a -> b # trailing\n /* block */ }",
	}
	for _, src := range good {
		if err := ValidateDOT(src); err != nil {
			t.Errorf("ValidateDOT(%q) = %v, want nil", src, err)
		}
	}
}

func TestValidateDOTRejects(t *testing.T) {
	bad := []string{
		"",
		"graph",
		"digraph {",
		"digraph } {",
		"digraph { a -> }",
		"digraph { a -- b }",          // undirected edge in digraph
		"graph { a -> b }",            // directed edge in graph
		"digraph { a [label] }",       // attr without value
		"digraph { a [label=\"x] }",   // unterminated string
		"digraph { a } trailing",      // junk after graph
		"flowchart { a --> b }",       // not DOT at all
		"digraph { a -> b [x=1 y } }", // malformed attr list
	}
	for _, src := range bad {
		if err := ValidateDOT(src); err == nil {
			t.Errorf("ValidateDOT(%q) = nil, want error", src)
		}
	}
}

// The generated waits-for export must always satisfy the validator,
// including under a real (persisting) deadlock with victim annotations.
func TestWaitsForDOTValidates(t *testing.T) {
	m := lock.NewManager(lock.Options{Policy: lock.PolicyNone})

	// Empty graph.
	if err := ValidateDOT(m.WaitsForDOT()); err != nil {
		t.Fatalf("empty waits-for DOT invalid: %v", err)
	}

	// Force a two-transaction deadlock: 1 holds a, 2 holds b, then each
	// requests the other's resource. PolicyNone leaves the cycle standing.
	a, b := lock.Resource("db1/seg1/cells/a"), lock.Resource("db1/seg1/cells/b")
	if err := m.AcquireCtx(context.Background(), 1, a, lock.X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, b, lock.X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.AcquireCtx(context.Background(), 1, b, lock.X) }()
	go func() { errs <- m.AcquireCtx(context.Background(), 2, a, lock.X) }()
	waitForWaiters(t, m, 2)

	dot := m.WaitsForDOT()
	if err := ValidateDOT(dot); err != nil {
		t.Fatalf("deadlock waits-for DOT invalid: %v\n%s", err, dot)
	}
	// Both transactions are on the cycle; txn 2 is the younger victim and
	// its outgoing edge is the victim edge.
	if !strings.Contains(dot, `t2 [label="txn 2 (victim)"`) {
		t.Errorf("victim node not marked:\n%s", dot)
	}
	if !strings.Contains(dot, "(victim edge)") {
		t.Errorf("victim edge not labeled:\n%s", dot)
	}
	if !strings.Contains(dot, "t2 -> t1") {
		t.Errorf("missing cycle edge t2 -> t1:\n%s", dot)
	}

	// Break the cycle by hand (abort txn 2): txn 1 gets b, then releasing
	// txn 1's locks unblocks txn 2.
	m.ReleaseAll(2)
	if err := <-errs; err != nil {
		t.Fatalf("first unblocked acquire: %v", err)
	}
	m.ReleaseAll(1)
	if err := <-errs; err != nil {
		t.Fatalf("second unblocked acquire: %v", err)
	}
}

func waitForWaiters(t *testing.T, m *lock.Manager, n int) {
	t.Helper()
	for i := 0; m.WaitingTxns() < n; i++ {
		if i > 2000 {
			t.Fatalf("only %d/%d waiters appeared", m.WaitingTxns(), n)
		}
		time.Sleep(time.Millisecond)
	}
}
