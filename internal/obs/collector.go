package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"colock/internal/lock"
)

// Op names the three latency dimensions the collector distinguishes.
type Op int

const (
	// OpAcquire is the request-to-grant latency of every granted request
	// (fast-path grants included).
	OpAcquire Op = iota
	// OpWait is the time spent blocked: grants that queued first, plus
	// withdrawn requests (timeout, cancel, deadlock victim).
	OpWait
	// OpHold is the grant-to-release hold time of a lock.
	OpHold

	nOps
)

// String names the op for labels.
func (o Op) String() string {
	switch o {
	case OpAcquire:
		return "acquire"
	case OpWait:
		return "wait"
	case OpHold:
		return "hold"
	}
	return "op?"
}

// nModes is the size of the lock.Mode dimension (None..X).
const nModes = int(lock.X) + 1

// eventKinds is the fixed set of event-kind counters; unknown kinds land
// in "other".
var eventKinds = [nEventKinds]string{"grant", "convert", "wait", "release", "release-all", "downgrade", "victim", "timeout", "cancel", "shed", "other"}

const nEventKinds = 11

// DefaultKinds is the default lockable-unit-kind dimension, derived from
// the hierarchical resource-name depth (database/segment/relation/object
// path): the first four levels are the database HeLU, the segment HeLU,
// the relation HoLU and the complex-object root — an entry point when
// reached by downward propagation — and anything deeper is an inner node
// of an object. Callers with schema knowledge (e.g. colockshell via
// core.UnitKindOf) refine the deep levels into BLU/HoLU/HeLU.
var DefaultKinds = []string{"database", "segment", "relation", "entry-point", "node", "BLU", "HoLU", "HeLU", "other"}

// DepthKindOf classifies a resource by path depth into DefaultKinds.
func DepthKindOf(r lock.Resource) int {
	switch strings.Count(string(r), "/") {
	case 0:
		return 0 // database
	case 1:
		return 1 // segment
	case 2:
		return 2 // relation
	case 3:
		return 3 // complex-object root / entry point
	default:
		return 4 // inner node
	}
}

// Options configures a Collector.
type Options struct {
	// RingSize is the per-ring event capacity (default 1024; negative
	// disables event retention entirely, keeping only counters and
	// histograms).
	RingSize int
	// Rings is the number of ring buffers (rounded up to a power of two,
	// default 16). Events are routed by their lock-table shard index, so
	// disjoint lock traffic lands on disjoint rings.
	Rings int
	// KindLabels and KindOf define the lockable-unit-kind dimension of the
	// histograms; nil defaults to DefaultKinds/DepthKindOf. KindOf must
	// return an index into KindLabels (out-of-range indexes are clamped to
	// the last label).
	KindLabels []string
	KindOf     func(lock.Resource) int
}

// Collector consumes lock.Events (it is a lock.EventSink) and maintains
// event-kind counters, acquire/wait/hold latency histograms keyed by lock
// mode and lockable-unit kind, and per-shard ring buffers of recent events
// drained by a reader — mirroring the manager's latch-free delivery
// discipline: Record is called outside all manager latches and touches
// only atomics plus one ring mutex.
type Collector struct {
	kindLabels []string
	kindOf     func(lock.Resource) int

	events [nEventKinds]atomic.Uint64
	hists  []*Histogram // nOps × nModes × len(kindLabels), row-major

	rings    []*ring
	ringMask int
}

// NewCollector builds a collector.
func NewCollector(opts Options) *Collector {
	if opts.KindLabels == nil {
		opts.KindLabels = DefaultKinds
		if opts.KindOf == nil {
			opts.KindOf = DepthKindOf
		}
	}
	if opts.KindOf == nil {
		opts.KindOf = func(lock.Resource) int { return 0 }
	}
	c := &Collector{
		kindLabels: opts.KindLabels,
		kindOf:     opts.KindOf,
		hists:      make([]*Histogram, int(nOps)*nModes*len(opts.KindLabels)),
	}
	for i := range c.hists {
		c.hists[i] = &Histogram{}
	}
	if opts.RingSize >= 0 {
		size := opts.RingSize
		if size == 0 {
			size = 1024
		}
		n := opts.Rings
		if n <= 0 {
			n = 16
		}
		p := 1
		for p < n {
			p <<= 1
		}
		c.rings = make([]*ring, p)
		for i := range c.rings {
			c.rings[i] = &ring{cap: size}
		}
		c.ringMask = p - 1
	}
	return c
}

// hist returns the histogram for (op, mode, kind-of-resource).
func (c *Collector) hist(op Op, mode lock.Mode, r lock.Resource) *Histogram {
	mi := int(mode)
	if mi >= nModes {
		mi = nModes - 1
	}
	ki := c.kindOf(r)
	if ki < 0 || ki >= len(c.kindLabels) {
		ki = len(c.kindLabels) - 1
	}
	return c.hists[(int(op)*nModes+mi)*len(c.kindLabels)+ki]
}

func kindIndex(kind string) int {
	for i, k := range eventKinds {
		if k == kind {
			return i
		}
	}
	return len(eventKinds) - 1
}

// Record consumes one event. It is the lock.EventSink implementation and
// runs on the operation's goroutine with no manager latch held.
func (c *Collector) Record(e lock.Event) {
	c.events[kindIndex(e.Kind)].Add(1)
	switch e.Kind {
	case "grant", "convert":
		if e.Waited {
			// Dur == 0 means the enqueue fell outside the event sample, so
			// no wait reference exists — skip rather than record a zero.
			if e.Dur > 0 {
				c.hist(OpAcquire, e.Mode, e.Resource).Record(e.Dur)
				c.hist(OpWait, e.Mode, e.Resource).Record(e.Dur)
			}
		} else {
			c.hist(OpAcquire, e.Mode, e.Resource).Record(e.Dur)
		}
	case "timeout", "cancel", "victim":
		if e.Dur > 0 {
			c.hist(OpWait, e.Mode, e.Resource).Record(e.Dur)
		}
	case "release":
		if e.Dur > 0 {
			c.hist(OpHold, e.Mode, e.Resource).Record(e.Dur)
		}
	}
	if c.rings != nil {
		c.rings[e.Shard&c.ringMask].add(e)
	}
}

// ResetStats zeroes the event counters and histograms and empties the event
// rings. The lock manager's ResetStats cascade calls it on attached
// collectors, so resetting the manager between benchmark phases resets the
// whole observability surface in one step.
func (c *Collector) ResetStats() {
	for i := range c.events {
		c.events[i].Store(0)
	}
	for _, h := range c.hists {
		h.Reset()
	}
	for _, g := range c.rings {
		g.mu.Lock()
		g.buf = g.buf[:0]
		g.start = 0
		g.mu.Unlock()
	}
}

// EventCount returns the number of events of the given kind seen so far.
func (c *Collector) EventCount(kind string) uint64 {
	return c.events[kindIndex(kind)].Load()
}

// EventCounts returns all event-kind counters (kind → count).
func (c *Collector) EventCounts() map[string]uint64 {
	out := make(map[string]uint64, len(eventKinds))
	for i, k := range eventKinds {
		out[k] = c.events[i].Load()
	}
	return out
}

// HistView is one non-empty histogram with its labels.
type HistView struct {
	Op   Op
	Mode lock.Mode
	Kind string // lockable-unit kind label
	Snap HistSnapshot
}

// Histograms returns a snapshot of every non-empty histogram, ordered by
// (op, mode, kind).
func (c *Collector) Histograms() []HistView {
	var out []HistView
	for op := Op(0); op < nOps; op++ {
		for mi := 0; mi < nModes; mi++ {
			for ki, kl := range c.kindLabels {
				h := c.hists[(int(op)*nModes+mi)*len(c.kindLabels)+ki]
				if h.Count() == 0 {
					continue
				}
				out = append(out, HistView{Op: op, Mode: lock.Mode(mi), Kind: kl, Snap: h.Snapshot()})
			}
		}
	}
	return out
}

// Hist returns the snapshot of one (op, mode, kind-label) histogram
// (zero-valued when the label is unknown or nothing was recorded).
func (c *Collector) Hist(op Op, mode lock.Mode, kindLabel string) HistSnapshot {
	for ki, kl := range c.kindLabels {
		if kl == kindLabel {
			mi := int(mode)
			if mi >= nModes {
				mi = nModes - 1
			}
			return c.hists[(int(op)*nModes+mi)*len(c.kindLabels)+ki].Snapshot()
		}
	}
	return HistSnapshot{}
}

// Aggregate returns the merge of every histogram of one op across modes
// and kinds — the headline acquire/wait/hold distribution.
func (c *Collector) Aggregate(op Op) HistSnapshot {
	var s HistSnapshot
	for mi := 0; mi < nModes; mi++ {
		for ki := range c.kindLabels {
			hs := c.hists[(int(op)*nModes+mi)*len(c.kindLabels)+ki].Snapshot()
			for b, n := range hs.Counts {
				s.Counts[b] += n
			}
			s.Count += hs.Count
			s.Sum += hs.Sum
			if hs.Max > s.Max {
				s.Max = hs.Max
			}
		}
	}
	return s
}

// ring is one bounded buffer of recent events behind its own small mutex
// (Record runs outside manager latches, so a leaf mutex here is safe; ring
// choice follows the lock-table shard, keeping disjoint traffic disjoint).
type ring struct {
	mu    sync.Mutex
	buf   []lock.Event
	start int // index of the oldest event in buf
	cap   int
}

func (g *ring) add(e lock.Event) {
	g.mu.Lock()
	if len(g.buf) < g.cap {
		g.buf = append(g.buf, e)
	} else {
		g.buf[g.start] = e
		g.start = (g.start + 1) % g.cap
	}
	g.mu.Unlock()
}

// snapshot appends the ring's events (oldest first) to dst; clear empties
// the ring.
func (g *ring) snapshot(dst []lock.Event, clear bool) []lock.Event {
	g.mu.Lock()
	dst = append(dst, g.buf[g.start:]...)
	dst = append(dst, g.buf[:g.start]...)
	if clear {
		g.buf = g.buf[:0]
		g.start = 0
	}
	g.mu.Unlock()
	return dst
}

// Drain removes and returns all buffered events, ordered by timestamp.
// This is the reader side of the per-shard ring discipline: writers only
// ever touch their own ring; the single reader merges.
func (c *Collector) Drain() []lock.Event {
	return c.collect(true)
}

// Recent returns up to n of the most recent buffered events (oldest first)
// without consuming them. n ≤ 0 returns everything buffered.
func (c *Collector) Recent(n int) []lock.Event {
	evs := c.collect(false)
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

func (c *Collector) collect(clear bool) []lock.Event {
	var evs []lock.Event
	for _, g := range c.rings {
		evs = g.snapshot(evs, clear)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })
	return evs
}
