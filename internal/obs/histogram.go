// Package obs is the lock manager's observability subsystem: an event
// collector with per-shard ring buffers, HDR-style latency histograms for
// acquire/wait/hold times keyed by lock mode and lockable-unit kind, and an
// opt-in HTTP exposition endpoint publishing Prometheus-text-format
// counters plus expvar-style gauges. It quantifies the "administrative
// overhead of locks and conflict tests" that the paper's evaluation (§5)
// argues about qualitatively.
package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucketing, HDR-style: values are grouped by power-of-two
// magnitude, each octave split into 2^subBits linear sub-buckets, giving a
// constant ~25% relative resolution over the full nanosecond-to-minutes
// range in a fixed, lock-free array of counters.
const (
	subBits  = 2
	nSub     = 1 << subBits
	maxExp   = 39 // values ≥ 2^40 ns (~18 min) clamp into the last bucket
	nBuckets = (maxExp-subBits+1)*nSub + nSub
)

// bucketIndex maps a non-negative duration (in ns) to its bucket.
func bucketIndex(v uint64) int {
	if v < nSub {
		return int(v)
	}
	exp := 63
	for v>>uint(exp) == 0 {
		exp--
	}
	if exp > maxExp {
		return nBuckets - 1
	}
	sub := (v >> uint(exp-subBits)) & (nSub - 1)
	return (exp-subBits+1)*nSub + int(sub)
}

// bucketLow returns the inclusive lower bound (ns) of bucket idx.
func bucketLow(idx int) uint64 {
	if idx < nSub {
		return uint64(idx)
	}
	g := idx / nSub
	sub := uint64(idx % nSub)
	exp := g + subBits - 1
	return (uint64(1) << uint(exp)) + sub<<uint(exp-subBits)
}

// bucketHigh returns the exclusive upper bound (ns) of bucket idx.
func bucketHigh(idx int) uint64 {
	if idx >= nBuckets-1 {
		return math.MaxUint64
	}
	return bucketLow(idx + 1)
}

// Histogram is a fixed-size, lock-free latency histogram. Record is safe
// for concurrent use; Snapshot gives a point-in-time copy for analysis.
type Histogram struct {
	counts [nBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // total ns
	max    atomic.Uint64 // ns
}

// Record adds one observation (negative durations count as zero).
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram. Concurrent Records during a reset may land
// before or after it — acceptable for the benchmark-phase resets this
// serves; there is no atomic cut across the counters.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Counts [nBuckets]uint64
	Count  uint64
	Sum    time.Duration
	Max    time.Duration
}

// Snapshot copies the histogram's counters. Under concurrent recording the
// copy is not a single atomic cut, which is fine for reporting.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	return s
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) as a duration:
// the midpoint of the bucket containing the q·Count-th observation, capped
// at the recorded maximum. Zero when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	if rank >= s.Count {
		return s.Max // p100 is exact
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			lo, hi := bucketLow(i), bucketHigh(i)
			if hi == math.MaxUint64 { // clamp bucket
				return s.Max
			}
			mid := time.Duration(lo + (hi-lo)/2)
			if mid > s.Max {
				return s.Max
			}
			return mid
		}
	}
	return s.Max
}

// Mean returns the average observation.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// String summarizes the snapshot for diagnostics.
func (s HistSnapshot) String() string {
	return fmt.Sprintf("count=%d p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Max)
}
