package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"colock/internal/lock"
	"colock/internal/trace"
)

func TestServeEndpoints(t *testing.T) {
	c := NewCollector(Options{})
	m := lock.NewManager(lock.Options{Sinks: []lock.EventSink{c}})
	if err := m.AcquireCtx(context.Background(), 1, "db1/seg1/cells/c1", lock.X); err != nil {
		t.Fatal(err)
	}
	defer m.ReleaseAll(1)

	extra := func(w io.Writer) { fmt.Fprintf(w, "colock_protocol_requests_total 7\n") }
	srv, err := Serve("127.0.0.1:0", m, c, nil, extra)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		`colock_events_total{kind="grant"} 1`,
		"# TYPE colock_acquire_latency_seconds summary",
		`colock_acquire_latency_seconds{mode="X",unit="entry-point",quantile="0.5"}`,
		"colock_table_entries 1",
		"colock_active_txns 1",
		"colock_protocol_requests_total 7", // the extra writer
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var vars Vars
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.TableEntries != 1 || vars.ActiveTxns != 1 {
		t.Errorf("vars = %+v, want 1 table entry and 1 active txn", vars)
	}
	if vars.Stats["requests"] == nil {
		t.Error("vars missing stats.requests")
	}

	var queues []map[string]any
	if err := json.Unmarshal([]byte(get("/queues")), &queues); err != nil {
		t.Fatalf("/queues not JSON: %v", err)
	}
	if len(queues) != 1 || queues[0]["resource"] != "db1/seg1/cells/c1" {
		t.Errorf("queues = %v, want the one held resource", queues)
	}
	var contended []map[string]any
	if err := json.Unmarshal([]byte(get("/queues?contended=1")), &contended); err != nil {
		t.Fatal(err)
	}
	if len(contended) != 0 {
		t.Errorf("contended queues = %v, want none", contended)
	}

	if dot := get("/dot"); ValidateDOT(dot) != nil {
		t.Errorf("/dot output invalid:\n%s", dot)
	}
	if index := get("/"); !strings.Contains(index, "/metrics") {
		t.Errorf("index page missing endpoint list:\n%s", index)
	}
}

func TestHandlerWithoutCollector(t *testing.T) {
	m := lock.NewManager(lock.Options{})
	srv, err := Serve("127.0.0.1:0", m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "colock_table_entries 0") {
		t.Errorf("manager-only metrics missing table gauge:\n%s", body)
	}
	if strings.Contains(string(body), "colock_events_total") {
		t.Errorf("nil collector must not emit event counters:\n%s", body)
	}
	// With no trace sources the /trace routes answer 404, not panic.
	for _, path := range []string{"/trace/spans", "/trace/incidents", "/trace/profile"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without sources: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestIndexListsRegisteredRoutes pins the "/" index to the registration
// set: every live route listed, conditional routes absent unless their
// source is wired, nothing invented.
func TestIndexListsRegisteredRoutes(t *testing.T) {
	m := lock.NewManager(lock.Options{})
	fetch := func(ts *TraceSources) []string {
		t.Helper()
		srv, err := Serve("127.0.0.1:0", m, nil, ts)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		resp, err := http.Get("http://" + srv.Addr() + "/")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		var routes []string
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "/") {
				routes = append(routes, line)
			}
		}
		return routes
	}

	minimal := fetch(nil)
	wantMin := []string{"/debug/vars", "/dot", "/metrics", "/queues"}
	if fmt.Sprint(minimal) != fmt.Sprint(wantMin) {
		t.Errorf("minimal index = %v, want %v", minimal, wantMin)
	}

	stub := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "{}") })
	rec := trace.NewRecorder(trace.Options{ShardOf: m.ShardOf})
	full := fetch(&TraceSources{
		Recorder:  rec,
		Incidents: trace.NewIncidentWriter(t.TempDir(), rec, m, trace.IncidentOptions{}),
		Profile:   trace.NewProfile(),
		Health:    stub,
		Journal:   stub,
		Pprof:     true,
	})
	wantFull := []string{
		"/debug/pprof/", "/debug/vars", "/dot", "/health", "/journal/status",
		"/metrics", "/queues", "/trace/incidents", "/trace/profile", "/trace/spans",
	}
	if fmt.Sprint(full) != fmt.Sprint(wantFull) {
		t.Errorf("full index = %v, want %v", full, wantFull)
	}

	// The conditional routes still answer (404) even when unlisted.
	srv, err := Serve("127.0.0.1:0", m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/journal/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/journal/status without a journal: status %d, want 404", resp.StatusCode)
	}
}

// TestPprofOptIn: /debug/pprof/ serves only when TraceSources.Pprof is set —
// profiling endpoints must be a deliberate deployment decision.
func TestPprofOptIn(t *testing.T) {
	m := lock.NewManager(lock.Options{})
	srv, err := Serve("127.0.0.1:0", m, nil, &TraceSources{Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof heap: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "heap profile") {
		t.Errorf("pprof heap output unexpected:\n%.200s", body)
	}

	off, err := Serve("127.0.0.1:0", m, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	resp, err = http.Get("http://" + off.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status %d, want 404", resp.StatusCode)
	}
}

func TestServeTraceRoutes(t *testing.T) {
	m := lock.NewManager(lock.Options{})
	rec := trace.NewRecorder(trace.Options{ShardOf: m.ShardOf})
	prof := trace.NewProfile()
	iw := trace.NewIncidentWriter(t.TempDir(), rec, m, trace.IncidentOptions{})
	m.AttachSink(prof)
	m.AttachSink(iw)

	if rec.Sample() {
		sp := rec.Start(7, "lock", "db1/seg1/cells/c1", lock.S)
		sp.Child("acquire", "db1/seg1/cells/c1", lock.S).End(nil)
		sp.End(nil)
	}
	if _, err := iw.Trigger("timeout", 7, "db1/seg1/cells/c1", "S"); err != nil {
		t.Fatal(err)
	}
	// A synthetic blocked-time sample so the profile is non-empty.
	prof.Record(lock.Event{Kind: "wait", Txn: 7, Resource: "db1/seg1/cells/c1", Mode: lock.X, Blockers: []lock.TxnID{3}})
	prof.Record(lock.Event{Kind: "grant", Txn: 7, Resource: "db1/seg1/cells/c1", Mode: lock.X, Waited: true, Dur: 1500})

	srv, err := Serve("127.0.0.1:0", m, nil, &TraceSources{Recorder: rec, Incidents: iw, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	var byTxn []trace.Span
	if err := json.Unmarshal([]byte(get("/trace/spans?txn=7")), &byTxn); err != nil {
		t.Fatalf("/trace/spans?txn=7 not JSON: %v", err)
	}
	if len(byTxn) != 2 || byTxn[0].Kind != "lock" {
		t.Errorf("spans for txn 7 = %+v, want root + child", byTxn)
	}
	var recent []trace.Span
	if err := json.Unmarshal([]byte(get("/trace/spans?n=10")), &recent); err != nil {
		t.Fatalf("/trace/spans not JSON: %v", err)
	}
	if len(recent) == 0 {
		t.Error("/trace/spans returned no recent spans")
	}

	var incidents []trace.IncidentInfo
	if err := json.Unmarshal([]byte(get("/trace/incidents")), &incidents); err != nil {
		t.Fatalf("/trace/incidents not JSON: %v", err)
	}
	if len(incidents) != 1 || incidents[0].Reason != "timeout" {
		t.Errorf("incidents = %+v, want one timeout incident", incidents)
	}

	profile := get("/trace/profile")
	if !strings.Contains(profile, "txn:7;X:db1/seg1/cells/c1;blocked-on:txn:3 1500") {
		t.Errorf("/trace/profile missing folded stack:\n%s", profile)
	}

	if index := get("/"); !strings.Contains(index, "/trace/profile") {
		t.Errorf("index page missing trace endpoints:\n%s", index)
	}
}
