package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"colock/internal/lock"
)

// Prometheus text exposition (version 0.0.4). Hand-rolled — the repo takes
// no dependencies — but byte-compatible with what client_golang would emit
// for the same families: counters for event kinds and manager statistics,
// summaries (quantiles + _sum/_count) for the latency histograms.

func secs(d time.Duration) float64 { return d.Seconds() }

// WriteMetrics writes the collector's counters and latency summaries in
// Prometheus text format.
func (c *Collector) WriteMetrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP colock_events_total Lock trace events by kind.\n")
	fmt.Fprintf(w, "# TYPE colock_events_total counter\n")
	for _, k := range eventKinds {
		fmt.Fprintf(w, "colock_events_total{kind=%q} %d\n", k, c.EventCount(k))
	}
	for op := Op(0); op < nOps; op++ {
		views := make([]HistView, 0, 8)
		for _, v := range c.Histograms() {
			if v.Op == op {
				views = append(views, v)
			}
		}
		if len(views) == 0 {
			continue
		}
		name := fmt.Sprintf("colock_%s_latency_seconds", op)
		fmt.Fprintf(w, "# HELP %s Lock %s latency by mode and lockable-unit kind.\n", name, op)
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		for _, v := range views {
			labels := fmt.Sprintf("mode=%q,unit=%q", v.Mode.String(), v.Kind)
			for _, q := range []float64{0.5, 0.95, 0.99} {
				fmt.Fprintf(w, "%s{%s,quantile=\"%g\"} %g\n", name, labels, q, secs(v.Snap.Quantile(q)))
			}
			fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, secs(v.Snap.Sum))
			fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, v.Snap.Count)
		}
	}
}

// WriteManagerMetrics writes the manager's cumulative statistics, table
// occupancy and transaction gauges in Prometheus text format.
func WriteManagerMetrics(w io.Writer, m *lock.Manager) {
	st := m.Stats()
	fmt.Fprintf(w, "# HELP colock_lock_ops_total Cumulative lock-manager operation counters.\n")
	fmt.Fprintf(w, "# TYPE colock_lock_ops_total counter\n")
	for _, kv := range statCounters(st) {
		fmt.Fprintf(w, "colock_lock_ops_total{op=%q} %d\n", kv.name, kv.val)
	}
	sizes := m.ShardSizes()
	total := 0
	for _, n := range sizes {
		total += n
	}
	fmt.Fprintf(w, "# HELP colock_table_entries Live lock-table entries.\n")
	fmt.Fprintf(w, "# TYPE colock_table_entries gauge\n")
	fmt.Fprintf(w, "colock_table_entries %d\n", total)
	fmt.Fprintf(w, "# HELP colock_table_entries_max High-water mark of granted lock-table entries.\n")
	fmt.Fprintf(w, "# TYPE colock_table_entries_max gauge\n")
	fmt.Fprintf(w, "colock_table_entries_max %d\n", st.MaxTableSize)
	fmt.Fprintf(w, "# HELP colock_shard_entries Live lock-table entries per shard.\n")
	fmt.Fprintf(w, "# TYPE colock_shard_entries gauge\n")
	for i, n := range sizes {
		fmt.Fprintf(w, "colock_shard_entries{shard=\"%d\"} %d\n", i, n)
	}
	fmt.Fprintf(w, "# HELP colock_active_txns Transactions currently holding locks.\n")
	fmt.Fprintf(w, "# TYPE colock_active_txns gauge\n")
	fmt.Fprintf(w, "colock_active_txns %d\n", m.ActiveTxns())
	fmt.Fprintf(w, "# HELP colock_waiting_txns Transactions blocked on a lock request.\n")
	fmt.Fprintf(w, "# TYPE colock_waiting_txns gauge\n")
	fmt.Fprintf(w, "colock_waiting_txns %d\n", m.WaitingTxns())
}

type statKV struct {
	name string
	val  uint64
}

func statCounters(st lock.Stats) []statKV {
	return []statKV{
		{"requests", st.Requests},
		{"regrants", st.Regrants},
		{"grants", st.Grants},
		{"conversions", st.Conversions},
		{"conflicts", st.Conflicts},
		{"waits", st.Waits},
		{"deadlocks", st.Deadlocks},
		{"timeouts", st.Timeouts},
		{"cancels", st.Cancels},
		{"downgrades", st.Downgrades},
		{"releases", st.Releases},
		{"batches", st.Batches},
		{"batch_fast_grants", st.BatchFastGrants},
		{"batch_fallbacks", st.BatchFallbacks},
		{"summary_fast_checks", st.SummaryFastChecks},
		{"deferred_detections", st.DeferredDetections},
		{"detector_runs", st.DetectorRuns},
	}
}

// Vars is the expvar-style gauge set published at /debug/vars.
type Vars struct {
	TableEntries int            `json:"table_entries"`
	MaxTable     int            `json:"table_entries_max"`
	ShardEntries []int          `json:"shard_entries"`
	ActiveTxns   int            `json:"active_txns"`
	WaitingTxns  int            `json:"waiting_txns"`
	Stats        map[string]any `json:"stats"`
	Events       map[string]any `json:"events,omitempty"`
}

// SnapshotVars gathers the expvar gauges from a manager and (optionally) a
// collector.
func SnapshotVars(m *lock.Manager, c *Collector) Vars {
	st := m.Stats()
	sizes := m.ShardSizes()
	total := 0
	for _, n := range sizes {
		total += n
	}
	v := Vars{
		TableEntries: total,
		MaxTable:     st.MaxTableSize,
		ShardEntries: sizes,
		ActiveTxns:   m.ActiveTxns(),
		WaitingTxns:  m.WaitingTxns(),
		Stats:        make(map[string]any),
	}
	for _, kv := range statCounters(st) {
		v.Stats[kv.name] = kv.val
	}
	if c != nil {
		v.Events = make(map[string]any)
		for k, n := range c.EventCounts() {
			v.Events[k] = n
		}
	}
	return v
}

// WriteVars writes the expvar-style JSON gauge document (sorted keys, via
// encoding/json's map ordering).
func WriteVars(w io.Writer, m *lock.Manager, c *Collector) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SnapshotVars(m, c))
}

// WriteQueuesJSON writes the live queue snapshot as JSON.
func WriteQueuesJSON(w io.Writer, m *lock.Manager, contendedOnly bool) error {
	type grantJSON struct {
		Txn     uint64 `json:"txn"`
		Mode    string `json:"mode"`
		Durable bool   `json:"durable,omitempty"`
		Seq     uint64 `json:"seq"`
	}
	type waitJSON struct {
		Txn     uint64 `json:"txn"`
		Mode    string `json:"mode"`
		Convert bool   `json:"convert,omitempty"`
		Durable bool   `json:"durable,omitempty"`
		WaitNS  int64  `json:"wait_ns,omitempty"`
	}
	type queueJSON struct {
		Resource string      `json:"resource"`
		Shard    int         `json:"shard"`
		Granted  []grantJSON `json:"granted"`
		Waiting  []waitJSON  `json:"waiting,omitempty"`
	}
	qs := m.SnapshotQueues()
	out := make([]queueJSON, 0, len(qs))
	now := time.Now()
	for _, q := range qs {
		if contendedOnly && !q.Contended() {
			continue
		}
		qj := queueJSON{Resource: string(q.Resource), Shard: q.Shard}
		for _, g := range q.Granted {
			qj.Granted = append(qj.Granted, grantJSON{Txn: uint64(g.Txn), Mode: g.Mode.String(), Durable: g.Durable, Seq: g.Seq})
		}
		for _, wt := range q.Waiting {
			wj := waitJSON{Txn: uint64(wt.Txn), Mode: wt.Mode.String(), Convert: wt.Convert, Durable: wt.Durable}
			if !wt.Since.IsZero() {
				wj.WaitNS = now.Sub(wt.Since).Nanoseconds()
			}
			qj.Waiting = append(qj.Waiting, wj)
		}
		out = append(out, qj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
