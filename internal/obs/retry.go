package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// attemptBuckets is the size of the attempts-per-commit histogram: buckets
// 1..attemptBuckets-1 count commits that took exactly that many attempts;
// the last bucket collects everything beyond.
const attemptBuckets = 17

// RetryCollector aggregates retry outcomes: retries by cause, commits and
// give-ups, and a histogram of attempts-per-commit — the Thomasian-style
// "how many restarts does a commit cost" distribution that quantifies
// contention-survival overhead the way the latency histograms quantify
// waiting. It implements resilience.Observer (by shape — obs stays
// dependency-free of the resilience package) and is safe for concurrent use
// by every worker sharing one Retrier.
type RetryCollector struct {
	mu      sync.Mutex
	retries map[string]uint64 // cause label → count

	commits  atomic.Uint64
	giveUps  atomic.Uint64
	attempts [attemptBuckets]atomic.Uint64 // attempts-per-commit histogram
	sum      atomic.Uint64                 // total attempts across commits
	max      atomic.Uint64                 // worst attempts-per-commit seen
}

// NewRetryCollector builds an empty collector.
func NewRetryCollector() *RetryCollector {
	return &RetryCollector{retries: make(map[string]uint64)}
}

// Retry records one failed-then-retried attempt with its cause label.
func (rc *RetryCollector) Retry(cause string, attempt int) {
	rc.mu.Lock()
	rc.retries[cause]++
	rc.mu.Unlock()
}

// Done records a finished Retrier.Run: a commit (err == nil) lands in the
// attempts-per-commit histogram, a give-up only in the give-up counter.
func (rc *RetryCollector) Done(attempts int, err error) {
	if err != nil {
		rc.giveUps.Add(1)
		return
	}
	rc.commits.Add(1)
	rc.sum.Add(uint64(attempts))
	b := attempts
	if b < 1 {
		b = 1
	}
	if b >= attemptBuckets {
		b = attemptBuckets - 1
	}
	rc.attempts[b].Add(1)
	for {
		cur := rc.max.Load()
		if uint64(attempts) <= cur || rc.max.CompareAndSwap(cur, uint64(attempts)) {
			break
		}
	}
}

// Retries returns the per-cause retry counts.
func (rc *RetryCollector) Retries() map[string]uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make(map[string]uint64, len(rc.retries))
	for k, v := range rc.retries {
		out[k] = v
	}
	return out
}

// AttemptsSnapshot is a point-in-time view of the attempts-per-commit
// distribution.
type AttemptsSnapshot struct {
	Commits uint64
	GiveUps uint64
	Sum     uint64 // total attempts across commits
	Max     uint64
	// Buckets[i] counts commits that took exactly i attempts (i ≥ 1); the
	// last bucket collects 17+.
	Buckets [attemptBuckets]uint64
}

// Mean is the average attempts-per-commit (0 when nothing committed).
func (s AttemptsSnapshot) Mean() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Commits)
}

// Attempts snapshots the attempts-per-commit histogram.
func (rc *RetryCollector) Attempts() AttemptsSnapshot {
	var s AttemptsSnapshot
	s.Commits = rc.commits.Load()
	s.GiveUps = rc.giveUps.Load()
	s.Sum = rc.sum.Load()
	s.Max = rc.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = rc.attempts[i].Load()
	}
	return s
}

// ResetStats zeroes everything; named for the manager's ResetStats cascade
// so a RetryCollector can be registered alongside event sinks.
func (rc *RetryCollector) ResetStats() {
	rc.mu.Lock()
	rc.retries = make(map[string]uint64)
	rc.mu.Unlock()
	rc.commits.Store(0)
	rc.giveUps.Store(0)
	rc.sum.Store(0)
	rc.max.Store(0)
	for i := range rc.attempts {
		rc.attempts[i].Store(0)
	}
}

// WriteMetrics appends the retry families in Prometheus text format; wire
// it into Handler's extra writers. Causes are emitted in sorted order so
// successive scrapes diff cleanly.
func (rc *RetryCollector) WriteMetrics(w io.Writer) {
	retries := rc.Retries()
	causes := make([]string, 0, len(retries))
	for c := range retries {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	fmt.Fprintf(w, "# HELP colock_retries_total Failed-then-retried attempts by cause.\n")
	fmt.Fprintf(w, "# TYPE colock_retries_total counter\n")
	for _, c := range causes {
		fmt.Fprintf(w, "colock_retries_total{cause=%q} %d\n", c, retries[c])
	}
	s := rc.Attempts()
	fmt.Fprintf(w, "# HELP colock_retry_commits_total Retrier runs that committed.\n")
	fmt.Fprintf(w, "# TYPE colock_retry_commits_total counter\n")
	fmt.Fprintf(w, "colock_retry_commits_total %d\n", s.Commits)
	fmt.Fprintf(w, "# HELP colock_retry_giveups_total Retrier runs that exhausted their attempts.\n")
	fmt.Fprintf(w, "# TYPE colock_retry_giveups_total counter\n")
	fmt.Fprintf(w, "colock_retry_giveups_total %d\n", s.GiveUps)
	fmt.Fprintf(w, "# HELP colock_retry_attempts_per_commit Attempts-per-commit distribution.\n")
	fmt.Fprintf(w, "# TYPE colock_retry_attempts_per_commit summary\n")
	fmt.Fprintf(w, "colock_retry_attempts_per_commit_sum %d\n", s.Sum)
	fmt.Fprintf(w, "colock_retry_attempts_per_commit_count %d\n", s.Commits)
	fmt.Fprintf(w, "# HELP colock_retry_attempts_max Worst attempts-per-commit observed.\n")
	fmt.Fprintf(w, "# TYPE colock_retry_attempts_max gauge\n")
	fmt.Fprintf(w, "colock_retry_attempts_max %d\n", s.Max)
}

// String renders a one-paragraph summary for shells and incident dumps.
func (rc *RetryCollector) String() string {
	s := rc.Attempts()
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d give-ups=%d mean-attempts=%.2f max-attempts=%d",
		s.Commits, s.GiveUps, s.Mean(), s.Max)
	retries := rc.Retries()
	if len(retries) > 0 {
		causes := make([]string, 0, len(retries))
		for c := range retries {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		b.WriteString(" retries:")
		for _, c := range causes {
			fmt.Fprintf(&b, " %s=%d", c, retries[c])
		}
	}
	return b.String()
}
