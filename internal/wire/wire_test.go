package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/resilience"
	"colock/internal/store"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("payload bytes")
	if err := WriteFrame(&buf, TLock, 42, payload); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TLock || f.ReqID != 42 || !bytes.Equal(f.Payload, payload) {
		t.Errorf("round trip = %+v", f)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TPing, 1, nil); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TPing || f.ReqID != 1 || len(f.Payload) != 0 {
		t.Errorf("round trip = %+v", f)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, TOK, 7, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail cleanly, never hang or panic.
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: no error", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	// A clean EOF at a frame boundary is a plain EOF.
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: err = %v, want EOF", err)
	}
}

func TestReadFrameOversized(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0xFF
	buf.Write(hdr[:])
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, Hello{Version: Version, Flags: 3}); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.Flags != 3 {
		t.Errorf("hello = %+v", h)
	}
	w := Welcome{Version: Version, Code: WelcomeOK, Session: 99, Lease: int64(5 * time.Second)}
	if err := WriteWelcome(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWelcome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Errorf("welcome = %+v, want %+v", got, w)
	}
}

func TestReadHelloBadMagic(t *testing.T) {
	if _, err := ReadHello(bytes.NewReader([]byte("XXXX\x00\x01\x00\x00"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestNodeRefRoundTrip(t *testing.T) {
	nodes := []core.Node{
		core.DatabaseNode(),
		core.SegmentNode("private_cells"),
		core.DataNode(store.P("cells")),
		core.DataNode(store.P("cells", "c1", "robots", "r1")),
	}
	for _, n := range nodes {
		if got := RefOf(n).Node(); !reflect.DeepEqual(got, n) {
			t.Errorf("RefOf(%v).Node() = %v", n, got)
		}
	}
}

func TestMessageRoundTrips(t *testing.T) {
	// Each message must decode back to exactly what was encoded, with no
	// trailing bytes tolerated.
	lr := LockReq{
		Txn:      7,
		Node:     NodeRef{Level: NodePath, Path: []string{"cells", "c1"}},
		Mode:     lock.SIX,
		NoFollow: true,
		Timeout:  250 * time.Millisecond,
	}
	if got, err := DecodeLockReq(lr.Encode()); err != nil || !reflect.DeepEqual(got, lr) {
		t.Errorf("LockReq: %+v %v", got, err)
	}
	dr := DowngradeReq{
		Txn:  9,
		Node: NodeRef{Level: NodePath, Path: []string{"cells"}},
		Keep: [][]string{{"cells", "c1"}, {"cells", "c2"}},
	}
	if got, err := DecodeDowngradeReq(dr.Encode()); err != nil || !reflect.DeepEqual(got, dr) {
		t.Errorf("DowngradeReq: %+v %v", got, err)
	}
	rr := ReleaseReq{Txn: 3, Node: NodeRef{Level: NodeSegment, Segment: "common"}}
	if got, err := DecodeReleaseReq(rr.Encode()); err != nil || !reflect.DeepEqual(got, rr) {
		t.Errorf("ReleaseReq: %+v %v", got, err)
	}
	br := BeginReq{Long: true}
	if got, err := DecodeBeginReq(br.Encode()); err != nil || got != br {
		t.Errorf("BeginReq: %+v %v", got, err)
	}
	tr := TxnReq{Txn: 12}
	if got, err := DecodeTxnReq(tr.Encode()); err != nil || got != tr {
		t.Errorf("TxnReq: %+v %v", got, err)
	}
	ty := TxnReply{Txn: 12}
	if got, err := DecodeTxnReply(ty.Encode()); err != nil || got != ty {
		t.Errorf("TxnReply: %+v %v", got, err)
	}
	pg := Pong{Lease: 5 * time.Second}
	if got, err := DecodePong(pg.Encode()); err != nil || got != pg {
		t.Errorf("Pong: %+v %v", got, err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	p := append(TxnReq{Txn: 1}.Encode(), 0xFF)
	if _, err := DecodeTxnReq(p); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestDecodeRejectsCorruptCounts(t *testing.T) {
	// A sequence count far beyond the remaining payload must fail, not
	// allocate.
	var e enc
	e.uvarint(5)
	e.byte(NodePath)
	e.string("")
	e.uvarint(1 << 40) // path element count
	if _, err := DecodeReleaseReq(e.b); err == nil {
		t.Error("corrupt count accepted")
	}
}

func TestErrPayloadRoundTrip(t *testing.T) {
	p := ErrPayload{
		Cause: CauseDeadlock, Retryable: true,
		Txn: 4, Mode: lock.X, Resource: "d/cells/c1",
		Message:  "deadlock victim",
		Blockers: []uint64{2, 3},
	}
	got, err := DecodeErrPayload(p.Encode())
	if err != nil || !reflect.DeepEqual(got, p) {
		t.Errorf("round trip = %+v, %v", got, err)
	}
}

// TestErrorCauseParity proves the central wire-spec claim: for every lock
// sentinel, PayloadOf → encode → decode → Err reconstructs an error that
// errors.Is-matches the sentinel, classifies to the same resilience cause
// with the same retryability, and keeps the blocker set.
func TestErrorCauseParity(t *testing.T) {
	cases := []error{
		lock.ErrDeadlockVictim,
		lock.ErrWaitDie,
		lock.ErrTimeout,
		lock.ErrWouldBlock,
		lock.ErrShed,
	}
	for _, sentinel := range cases {
		orig := &lock.LockError{
			Txn: 7, Resource: "d/cells/c1", Mode: lock.X,
			Cause:    sentinel,
			Blockers: []lock.TxnID{2, 3},
		}
		decoded, err := DecodeErrPayload(PayloadOf(orig).Encode())
		if err != nil {
			t.Fatalf("%v: %v", sentinel, err)
		}
		back := decoded.Err()
		if !errors.Is(back, sentinel) {
			t.Errorf("%v: reconstructed error does not match sentinel: %v", sentinel, back)
		}
		wantCause, wantRetry := resilience.Classify(orig)
		gotCause, gotRetry := resilience.Classify(back)
		if gotCause != wantCause || gotRetry != wantRetry {
			t.Errorf("%v: classify = (%v,%v), want (%v,%v)", sentinel, gotCause, gotRetry, wantCause, wantRetry)
		}
		var le *lock.LockError
		if !errors.As(back, &le) {
			t.Fatalf("%v: not a *lock.LockError: %v", sentinel, back)
		}
		if !reflect.DeepEqual(le.Blockers, orig.Blockers) {
			t.Errorf("%v: blockers = %v, want %v", sentinel, le.Blockers, orig.Blockers)
		}
	}
}

func TestErrPayloadOther(t *testing.T) {
	p := PayloadOf(errors.New("application failure"))
	if p.Cause != CauseOther || p.Retryable {
		t.Fatalf("payload = %+v", p)
	}
	if got := p.Err().Error(); got != "application failure" {
		t.Errorf("message = %q", got)
	}
}

func TestDrainingAndBusyClassifyShed(t *testing.T) {
	for _, err := range []error{ErrDraining, ErrBusy} {
		if !errors.Is(err, lock.ErrShed) {
			t.Errorf("%v does not wrap ErrShed", err)
		}
		if _, retry := resilience.Classify(err); !retry {
			t.Errorf("%v not retryable", err)
		}
	}
}
