package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec primitives. Payload fields use unsigned varints (the
// encoding/binary Uvarint format) for integers, uvarint-length-prefixed
// UTF-8 bytes for strings, and uvarint-counted sequences for lists — the
// grammar DESIGN.md §16 specifies. The encoder appends to a byte slice;
// the decoder is a cursor over one with a sticky error, so message
// decoders read field after field and check once at the end.

// ErrTruncated reports a payload that ended before its grammar did.
var ErrTruncated = errors.New("wire: truncated payload")

// enc builds a payload.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) byte(v byte)      { e.b = append(e.b, v) }

func (e *enc) bool(v bool) {
	var b byte
	if v {
		b = 1
	}
	e.b = append(e.b, b)
}

func (e *enc) string(s string) { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) strings(s []string) {
	e.uvarint(uint64(len(s)))
	for _, x := range s {
		e.string(x)
	}
}

// dec is a cursor over one payload with a sticky error.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bool() bool { return d.byte() != 0 }

func (d *dec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// maxSeq bounds decoded sequence lengths: a corrupt count must not turn
// into a multi-gigabyte allocation. MaxFrame already bounds the encoded
// bytes, and every sequence element is at least one byte, so the payload
// length is a safe cap.
func (d *dec) count() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) strings() []string {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.string())
	}
	return out
}

// finish returns the sticky error, also failing when trailing bytes
// remain — every message must consume its payload exactly.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing payload bytes", len(d.b))
	}
	return nil
}
