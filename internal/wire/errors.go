package wire

import (
	"context"
	"errors"
	"fmt"

	"colock/internal/lock"
	"colock/internal/resilience"
)

// Cause codes carried in TErr. The table is part of the wire spec
// (DESIGN.md §16): a third-party client maps codes to its own error
// vocabulary; the Go client maps them back onto the exact lock sentinels,
// so errors.Is and resilience.Classify behave identically on both sides of
// the connection.
const (
	// CauseOther: an application-level failure; Message carries the text.
	// Not retryable.
	CauseOther byte = 0
	// CauseDeadlock: chosen as a deadlock-detection victim. Retryable.
	CauseDeadlock byte = 1
	// CauseWaitDie: killed by the wait-die prevention rule. Retryable.
	CauseWaitDie byte = 2
	// CauseTimeout: the acquire deadline expired. Retryable.
	CauseTimeout byte = 3
	// CauseWouldBlock: a no-wait request found a conflict. Retryable.
	CauseWouldBlock byte = 4
	// CauseShed: refused by the lock manager's admission control.
	// Retryable after backoff.
	CauseShed byte = 5
	// CauseCanceled: the server-side acquisition was canceled. Not
	// retryable (the canceler gave up).
	CauseCanceled byte = 6
	// CauseNotActive: the transaction already finished (committed,
	// aborted, or lease-expired and aborted by the server). Not retryable
	// on the same transaction.
	CauseNotActive byte = 7
	// CauseExpired: the session missed its lease deadline; the server
	// aborted its transactions and is closing the connection. Sent with
	// reqid 0 as an unsolicited notice. A fresh Dial starts over.
	CauseExpired byte = 8
	// CauseDraining: the server is draining toward shutdown and refuses
	// new transactions. Retryable (classified as shed).
	CauseDraining byte = 9
	// CauseBusy: the session exceeded its max-inflight request admission
	// cap. Retryable (classified as shed).
	CauseBusy byte = 10
	// CauseProtocol: the peer violated the framing or message grammar; the
	// connection is torn down. Not retryable.
	CauseProtocol byte = 11
)

// CauseName returns the spec name of a cause code.
func CauseName(c byte) string {
	switch c {
	case CauseOther:
		return "other"
	case CauseDeadlock:
		return "deadlock"
	case CauseWaitDie:
		return "wait-die"
	case CauseTimeout:
		return "timeout"
	case CauseWouldBlock:
		return "would-block"
	case CauseShed:
		return "shed"
	case CauseCanceled:
		return "canceled"
	case CauseNotActive:
		return "not-active"
	case CauseExpired:
		return "expired"
	case CauseDraining:
		return "draining"
	case CauseBusy:
		return "busy"
	case CauseProtocol:
		return "protocol"
	}
	return fmt.Sprintf("cause(%d)", c)
}

// ErrSessionExpired is the client-side error for CauseExpired: every
// transaction of the session was aborted server-side and the connection is
// gone. Not retryable on this session — re-Dial to start over.
var ErrSessionExpired = errors.New("wire: session lease expired; transactions aborted by server")

// ErrDraining is the client-side error for CauseDraining. It wraps
// lock.ErrShed so resilience.Classify reports it retryable: a retrying
// client rides out a rolling restart.
var ErrDraining = fmt.Errorf("wire: server draining (%w)", lock.ErrShed)

// ErrBusy is the client-side error for CauseBusy (max-inflight admission).
// Like ErrDraining it wraps lock.ErrShed: back off and retry.
var ErrBusy = fmt.Errorf("wire: session at max-inflight admission cap (%w)", lock.ErrShed)

// ErrProtocol is the client-side error for CauseProtocol.
var ErrProtocol = errors.New("wire: protocol violation")

// ErrNotActive mirrors txn.ErrNotActive across the wire (wire cannot
// import internal/txn — the server maps the two onto each other).
var ErrNotActive = errors.New("wire: transaction not active")

// ErrPayload is the decoded TErr payload.
type ErrPayload struct {
	Cause     byte
	Retryable bool
	Txn       uint64
	Mode      lock.Mode
	Resource  string
	Message   string
	Blockers  []uint64
}

// errFlagRetryable marks the server's retryability verdict on the wire.
const errFlagRetryable byte = 1 << 0

// Encode renders the payload.
func (m ErrPayload) Encode() []byte {
	var e enc
	e.byte(m.Cause)
	var flags byte
	if m.Retryable {
		flags |= errFlagRetryable
	}
	e.byte(flags)
	e.uvarint(m.Txn)
	e.byte(byte(m.Mode))
	e.string(m.Resource)
	e.string(m.Message)
	e.uvarint(uint64(len(m.Blockers)))
	for _, b := range m.Blockers {
		e.uvarint(b)
	}
	return e.b
}

// DecodeErrPayload parses a TErr payload.
func DecodeErrPayload(p []byte) (ErrPayload, error) {
	d := dec{b: p}
	m := ErrPayload{Cause: d.byte()}
	m.Retryable = d.byte()&errFlagRetryable != 0
	m.Txn = d.uvarint()
	m.Mode = lock.Mode(d.byte())
	m.Resource = d.string()
	m.Message = d.string()
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		m.Blockers = append(m.Blockers, d.uvarint())
	}
	return m, d.finish()
}

// PayloadOf maps a server-side error to its wire representation. The
// structured *lock.LockError fields (txn, resource, mode, blockers) ride
// along when present; the cause code comes from the sentinel chain; the
// retryable flag is resilience.Classify's verdict, which the client quotes
// but a spec-only client can also use directly.
func PayloadOf(err error) ErrPayload {
	p := ErrPayload{Message: err.Error()}
	var le *lock.LockError
	if errors.As(err, &le) {
		p.Txn = uint64(le.Txn)
		p.Mode = le.Mode
		p.Resource = string(le.Resource)
		for _, b := range le.Blockers {
			p.Blockers = append(p.Blockers, uint64(b))
		}
	}
	cause, retry := resilience.Classify(err)
	p.Retryable = retry
	switch cause {
	case resilience.CauseWaitDie:
		p.Cause = CauseWaitDie
	case resilience.CauseDeadlock:
		p.Cause = CauseDeadlock
	case resilience.CauseTimeout:
		p.Cause = CauseTimeout
	case resilience.CauseShed:
		p.Cause = CauseShed
	case resilience.CauseWouldBlock:
		p.Cause = CauseWouldBlock
	case resilience.CauseCanceled:
		p.Cause = CauseCanceled
	default:
		p.Cause = CauseOther
	}
	if errors.Is(err, ErrNotActive) {
		p.Cause, p.Retryable = CauseNotActive, false
	}
	return p
}

// causeSentinel maps a wire cause code back to the sentinel the in-process
// lock manager would have produced.
func causeSentinel(c byte) error {
	switch c {
	case CauseDeadlock:
		return lock.ErrDeadlockVictim
	case CauseWaitDie:
		return lock.ErrWaitDie
	case CauseTimeout:
		return lock.ErrTimeout
	case CauseWouldBlock:
		return lock.ErrWouldBlock
	case CauseShed:
		return lock.ErrShed
	case CauseCanceled:
		return context.Canceled
	case CauseNotActive:
		return ErrNotActive
	case CauseExpired:
		return ErrSessionExpired
	case CauseDraining:
		return ErrDraining
	case CauseBusy:
		return ErrBusy
	case CauseProtocol:
		return ErrProtocol
	}
	return nil
}

// Err reconstructs the client-side error for a TErr payload. Lock-protocol
// causes come back as a *lock.LockError wrapping the exact sentinel with
// the blocker set intact, so errors.Is, resilience.Classify and
// resilience.Blockers see what an in-process caller would have seen.
// Application errors (CauseOther) come back as a plain error carrying the
// server's message.
func (m ErrPayload) Err() error {
	sentinel := causeSentinel(m.Cause)
	if sentinel == nil {
		return errors.New(m.Message)
	}
	if m.Txn == 0 && m.Resource == "" && len(m.Blockers) == 0 {
		return sentinel
	}
	le := &lock.LockError{
		Txn:      lock.TxnID(m.Txn),
		Resource: lock.Resource(m.Resource),
		Mode:     m.Mode,
		Cause:    sentinel,
	}
	for _, b := range m.Blockers {
		le.Blockers = append(le.Blockers, lock.TxnID(b))
	}
	return le
}
