// Package wire defines the colockd network protocol: a length-prefixed
// binary framing over TCP with a fixed-size magic/version handshake,
// request-id multiplexing for pipelining, and a small message catalog
// (Begin, Lock, LockPath, Downgrade, Release, Commit, Abort, Ping plus
// their replies) that carries the lock protocol's acquire options and its
// structured *lock.LockError failures — cause sentinel and blocker set —
// faithfully across the connection.
//
// The protocol is specified, byte by byte, in DESIGN.md §16; a third-party
// client can be written from that spec alone. This package is the Go
// reference implementation of the spec: internal/server speaks it on the
// accept side, the public client package on the dial side. Everything here
// is pure encoding — no sockets, no sessions — so both sides (and the
// tests) share one codec.
//
// Layout summary (all integers big-endian where fixed-width, unsigned
// varints otherwise; see DESIGN.md §16 for the normative grammar):
//
//	ClientHello  = magic(4) version(2) flags(2)
//	ServerWelcome = magic(4) version(2) code(2) session(8) lease-ns(8)
//	Frame        = length(4) type(1) reqid(8) payload(length-9)
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Magic opens both handshake messages: "CLKW" (colock wire).
var Magic = [4]byte{'C', 'L', 'K', 'W'}

// Version is the protocol version this implementation speaks. The
// handshake rejects any other major version (there are no minor versions:
// the payload grammar is frozen per version number).
const Version uint16 = 1

// MaxFrame bounds the on-wire size of one frame body (type + reqid +
// payload). A peer announcing a larger frame is protocol-broken and the
// connection is torn down — the cap keeps a corrupt or hostile length
// prefix from ballooning a single read into gigabytes.
const MaxFrame = 1 << 20

// Handshake result codes carried in ServerWelcome.Code.
const (
	// WelcomeOK: session established; Session and Lease are valid.
	WelcomeOK uint16 = 0
	// WelcomeVersionUnsupported: the server does not speak the client's
	// version. The server closes after writing the welcome.
	WelcomeVersionUnsupported uint16 = 1
	// WelcomeDraining: the server is draining toward shutdown and refuses
	// new sessions. Retryable against another endpoint (or later).
	WelcomeDraining uint16 = 2
	// WelcomeSessionLimit: the server is at its max-session admission cap.
	// Retryable after backoff.
	WelcomeSessionLimit uint16 = 3
)

// Frame types. Requests have the high bit clear, replies have it set; a
// reply's reqid echoes the request it answers. Reqid 0 is reserved for
// unsolicited server notices (session expiry, drain) — see DESIGN.md §16.
const (
	// TBegin starts a transaction bound to this session.
	TBegin byte = 0x01
	// TLock acquires a protocol lock on a node (full rule 1-5 chain).
	TLock byte = 0x02
	// TLockPath is TLock on a data path (the common case).
	TLockPath byte = 0x03
	// TDowngrade trades a coarse S/X lock for finer locks on kept
	// descendant paths (de-escalation, §5 of the paper).
	TDowngrade byte = 0x04
	// TRelease releases a single lock early, leaf-to-root (rule 5).
	TRelease byte = 0x05
	// TCommit commits the transaction and releases its locks.
	TCommit byte = 0x06
	// TAbort aborts the transaction and releases its locks.
	TAbort byte = 0x07
	// TPing refreshes the session lease; the reply is TPong.
	TPing byte = 0x08

	// TOK acknowledges success for requests with no result payload.
	TOK byte = 0x81
	// TTxn answers TBegin with the new transaction id.
	TTxn byte = 0x82
	// TErr reports a failure: cause code, retryability, request context
	// (txn, resource, mode) and the blocker set.
	TErr byte = 0x83
	// TPong answers TPing, restating the session lease interval.
	TPong byte = 0x84
)

// TypeName returns the spec name of a frame type, for diagnostics.
func TypeName(t byte) string {
	switch t {
	case TBegin:
		return "Begin"
	case TLock:
		return "Lock"
	case TLockPath:
		return "LockPath"
	case TDowngrade:
		return "Downgrade"
	case TRelease:
		return "Release"
	case TCommit:
		return "Commit"
	case TAbort:
		return "Abort"
	case TPing:
		return "Ping"
	case TOK:
		return "OK"
	case TTxn:
		return "Txn"
	case TErr:
		return "Err"
	case TPong:
		return "Pong"
	}
	return fmt.Sprintf("0x%02x", t)
}

// ErrFrameTooLarge reports a frame body exceeding MaxFrame in either
// direction; the connection must be closed.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// ErrBadMagic reports a handshake that does not open with Magic.
var ErrBadMagic = errors.New("wire: bad handshake magic")

// Frame is one decoded frame: a type, the request id it belongs to, and
// the raw payload (decoded further by the message layer).
type Frame struct {
	Type    byte
	ReqID   uint64
	Payload []byte
}

// WriteFrame writes one frame. It performs a single Write call so frames
// from concurrent writers guarded by a mutex never interleave.
func WriteFrame(w io.Writer, typ byte, reqID uint64, payload []byte) error {
	body := 1 + 8 + len(payload)
	if body > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+body)
	binary.BigEndian.PutUint32(buf[0:4], uint32(body))
	buf[4] = typ
	binary.BigEndian.PutUint64(buf[5:13], reqID)
	copy(buf[13:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame. The returned payload aliases a fresh buffer
// (safe to retain). io.EOF is returned untouched on a clean close between
// frames; a close mid-frame surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 9 {
		return Frame{}, fmt.Errorf("wire: frame body %d bytes, need >= 9", n)
	}
	if n > MaxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{
		Type:    body[0],
		ReqID:   binary.BigEndian.Uint64(body[1:9]),
		Payload: body[9:],
	}, nil
}

// FrameWriter serializes concurrent frame writes onto one connection
// through a buffer with last-writer-out flush coalescing: a writer that
// sees other writers queued behind it skips the flush and leaves it to the
// last of them, so frames produced concurrently (pipelined requests, a
// burst of replies) share write syscalls instead of paying one each. The
// first write error is sticky — every later write reports it.
type FrameWriter struct {
	queued atomic.Int32
	mu     sync.Mutex
	bw     *bufio.Writer
	err    error
}

// NewFrameWriter wraps w (normally a net.Conn).
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriterSize(w, 32<<10)}
}

// WriteFrame writes one frame, flushing unless another writer is already
// waiting to append to the buffer.
func (fw *FrameWriter) WriteFrame(typ byte, reqID uint64, payload []byte) error {
	fw.queued.Add(1)
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.err != nil {
		fw.queued.Add(-1)
		return fw.err
	}
	err := WriteFrame(fw.bw, typ, reqID, payload)
	if fw.queued.Add(-1) == 0 && err == nil {
		err = fw.bw.Flush()
	}
	if err != nil {
		fw.err = err
	}
	return err
}

// Hello is the client's opening handshake message.
type Hello struct {
	Version uint16
	Flags   uint16 // reserved, must be 0
}

// WriteHello writes the 8-byte ClientHello.
func WriteHello(w io.Writer, h Hello) error {
	var buf [8]byte
	copy(buf[0:4], Magic[:])
	binary.BigEndian.PutUint16(buf[4:6], h.Version)
	binary.BigEndian.PutUint16(buf[6:8], h.Flags)
	_, err := w.Write(buf[:])
	return err
}

// ReadHello reads and validates the ClientHello (magic only — version
// acceptance is the server's policy decision).
func ReadHello(r io.Reader) (Hello, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Hello{}, err
	}
	if [4]byte(buf[0:4]) != Magic {
		return Hello{}, ErrBadMagic
	}
	return Hello{
		Version: binary.BigEndian.Uint16(buf[4:6]),
		Flags:   binary.BigEndian.Uint16(buf[6:8]),
	}, nil
}

// Welcome is the server's handshake response.
type Welcome struct {
	Version uint16
	Code    uint16 // WelcomeOK, WelcomeVersionUnsupported, ...
	Session uint64 // server-assigned session id (valid when Code == WelcomeOK)
	Lease   int64  // lease interval in nanoseconds the client must beat
}

// WriteWelcome writes the 24-byte ServerWelcome.
func WriteWelcome(w io.Writer, wl Welcome) error {
	var buf [24]byte
	copy(buf[0:4], Magic[:])
	binary.BigEndian.PutUint16(buf[4:6], wl.Version)
	binary.BigEndian.PutUint16(buf[6:8], wl.Code)
	binary.BigEndian.PutUint64(buf[8:16], wl.Session)
	binary.BigEndian.PutUint64(buf[16:24], uint64(wl.Lease))
	_, err := w.Write(buf[:])
	return err
}

// ReadWelcome reads and validates the ServerWelcome.
func ReadWelcome(r io.Reader) (Welcome, error) {
	var buf [24]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Welcome{}, err
	}
	if [4]byte(buf[0:4]) != Magic {
		return Welcome{}, ErrBadMagic
	}
	return Welcome{
		Version: binary.BigEndian.Uint16(buf[4:6]),
		Code:    binary.BigEndian.Uint16(buf[6:8]),
		Session: binary.BigEndian.Uint64(buf[8:16]),
		Lease:   int64(binary.BigEndian.Uint64(buf[16:24])),
	}, nil
}
