package wire

import (
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
)

// NodeRef addresses one lockable unit on the wire. Level uses the spec's
// three codes — the receiver derives relation vs. data nodes from the path
// length, exactly as core.DataNode does, so both sides always agree on the
// resource naming.
type NodeRef struct {
	// Level: 0 = database, 1 = segment, 2 = path (relation when the path
	// has one segment, data below that).
	Level byte
	// Segment names the segment for Level 1; empty otherwise.
	Segment string
	// Path addresses relation and data nodes for Level 2; nil otherwise.
	Path []string
}

// Node levels on the wire.
const (
	// NodeDatabase addresses the hierarchy root.
	NodeDatabase byte = 0
	// NodeSegment addresses a storage segment by name.
	NodeSegment byte = 1
	// NodePath addresses a relation (one segment) or a data node (two or
	// more) by store path.
	NodePath byte = 2
)

// RefOf converts a core node to its wire address.
func RefOf(n core.Node) NodeRef {
	switch n.Level {
	case core.LevelDatabase:
		return NodeRef{Level: NodeDatabase}
	case core.LevelSegment:
		return NodeRef{Level: NodeSegment, Segment: n.Segment}
	default:
		return NodeRef{Level: NodePath, Path: n.Path}
	}
}

// Node converts a wire address back to a core node.
func (r NodeRef) Node() core.Node {
	switch r.Level {
	case NodeDatabase:
		return core.DatabaseNode()
	case NodeSegment:
		return core.SegmentNode(r.Segment)
	default:
		return core.DataNode(store.Path(r.Path))
	}
}

func (e *enc) node(r NodeRef) {
	e.byte(r.Level)
	e.string(r.Segment)
	e.strings(r.Path)
}

func (d *dec) node() NodeRef {
	return NodeRef{Level: d.byte(), Segment: d.string(), Path: d.strings()}
}

// BeginReq asks the server to start a transaction bound to this session.
type BeginReq struct {
	// Long requests a long (durable-lock) transaction: its locks survive a
	// simulated crash, per the paper's check-out model.
	Long bool
}

// Encode renders the payload.
func (m BeginReq) Encode() []byte {
	var e enc
	e.bool(m.Long)
	return e.b
}

// DecodeBeginReq parses a TBegin payload.
func DecodeBeginReq(p []byte) (BeginReq, error) {
	d := dec{b: p}
	m := BeginReq{Long: d.bool()}
	return m, d.finish()
}

// LockReq asks for a protocol lock. It carries every acquire option the
// in-process Txn.Lock accepts: NoFollow (skip downward propagation into
// referenced common data) and Timeout (per-acquisition deadline; zero
// means wait indefinitely, bounded only by the session).
type LockReq struct {
	Txn      uint64
	Node     NodeRef
	Mode     lock.Mode
	NoFollow bool
	Timeout  time.Duration
}

// lockFlagNoFollow marks the NOFOLLOW acquire option on the wire.
const lockFlagNoFollow byte = 1 << 0

// Encode renders the payload (shared by TLock and TLockPath; LockPath
// simply pins Node.Level to NodePath).
func (m LockReq) Encode() []byte {
	var e enc
	e.uvarint(m.Txn)
	e.node(m.Node)
	e.byte(byte(m.Mode))
	var flags byte
	if m.NoFollow {
		flags |= lockFlagNoFollow
	}
	e.byte(flags)
	e.uvarint(uint64(m.Timeout))
	return e.b
}

// DecodeLockReq parses a TLock or TLockPath payload.
func DecodeLockReq(p []byte) (LockReq, error) {
	d := dec{b: p}
	m := LockReq{Txn: d.uvarint(), Node: d.node(), Mode: lock.Mode(d.byte())}
	flags := d.byte()
	m.NoFollow = flags&lockFlagNoFollow != 0
	m.Timeout = time.Duration(d.uvarint())
	return m, d.finish()
}

// DowngradeReq de-escalates a coarse S/X lock on Node into locks of the
// same mode on the Keep paths (the paper's §5 de-escalation; the
// in-process equivalent is Txn.DeEscalate).
type DowngradeReq struct {
	Txn  uint64
	Node NodeRef
	Keep [][]string
}

// Encode renders the payload.
func (m DowngradeReq) Encode() []byte {
	var e enc
	e.uvarint(m.Txn)
	e.node(m.Node)
	e.uvarint(uint64(len(m.Keep)))
	for _, p := range m.Keep {
		e.strings(p)
	}
	return e.b
}

// DecodeDowngradeReq parses a TDowngrade payload.
func DecodeDowngradeReq(p []byte) (DowngradeReq, error) {
	d := dec{b: p}
	m := DowngradeReq{Txn: d.uvarint(), Node: d.node()}
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		m.Keep = append(m.Keep, d.strings())
	}
	return m, d.finish()
}

// ReleaseReq releases a single lock early, leaf-to-root (rule 5; the
// in-process equivalent is Txn.Unlock). TCommit and TAbort also use this
// shape with Node ignored — their payload is just the txn id.
type ReleaseReq struct {
	Txn  uint64
	Node NodeRef
}

// Encode renders the payload.
func (m ReleaseReq) Encode() []byte {
	var e enc
	e.uvarint(m.Txn)
	e.node(m.Node)
	return e.b
}

// DecodeReleaseReq parses a TRelease payload.
func DecodeReleaseReq(p []byte) (ReleaseReq, error) {
	d := dec{b: p}
	m := ReleaseReq{Txn: d.uvarint(), Node: d.node()}
	return m, d.finish()
}

// TxnReq is the payload of TCommit and TAbort: just the transaction.
type TxnReq struct {
	Txn uint64
}

// Encode renders the payload.
func (m TxnReq) Encode() []byte {
	var e enc
	e.uvarint(m.Txn)
	return e.b
}

// DecodeTxnReq parses a TCommit/TAbort payload.
func DecodeTxnReq(p []byte) (TxnReq, error) {
	d := dec{b: p}
	m := TxnReq{Txn: d.uvarint()}
	return m, d.finish()
}

// TxnReply answers TBegin with the server-assigned transaction id (the
// lock manager's TxnID, so wait-die age ordering is server-global across
// every connected client).
type TxnReply struct {
	Txn uint64
}

// Encode renders the payload.
func (m TxnReply) Encode() []byte {
	var e enc
	e.uvarint(m.Txn)
	return e.b
}

// DecodeTxnReply parses a TTxn payload.
func DecodeTxnReply(p []byte) (TxnReply, error) {
	d := dec{b: p}
	m := TxnReply{Txn: d.uvarint()}
	return m, d.finish()
}

// Pong answers TPing, restating the lease interval the session must beat
// (clients size their keepalive cadence from it).
type Pong struct {
	Lease time.Duration
}

// Encode renders the payload.
func (m Pong) Encode() []byte {
	var e enc
	e.uvarint(uint64(m.Lease))
	return e.b
}

// DecodePong parses a TPong payload.
func DecodePong(p []byte) (Pong, error) {
	d := dec{b: p}
	m := Pong{Lease: time.Duration(d.uvarint())}
	return m, d.finish()
}
