package experiments

import (
	"sync"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/store"
	"colock/internal/workload"
)

// E13DeadlockPolicy compares the lock manager's two deadlock strategies
// under a crossing-order hot-spot workload: waits-for detection with
// youngest-victim abort (the default; what System R-era managers did) vs
// wait-die prevention. Detection aborts only on real cycles; wait-die never
// deadlocks but kills young transactions spuriously.
func E13DeadlockPolicy(workers, rounds int) *metrics.Table {
	t := metrics.NewTable("E13: deadlock handling — detection vs wait-die on a crossing hot spot",
		"policy", "txns", "aborts", "waits", "elapsed")
	cfg := workload.Config{Seed: 13, Cells: 2, CObjectsPerCell: 2, RobotsPerCell: 2, Effectors: 2, DisjointOnly: true}
	for _, policy := range []lock.Policy{lock.PolicyDetect, lock.PolicyWaitDie} {
		st := workload.Generate(cfg)
		nm := core.NewNamer(st.Catalog(), false)
		// Eager detection reproduces the paper-era semantics the experiment
		// reports on: a cycle is found and a victim chosen the instant the
		// closing request enqueues, not after the deferral window.
		mgr := lock.NewManager(lock.Options{Policy: policy, EagerDetection: true})
		proto := core.NewProtocol(mgr, st, nm, core.Options{})

		hot := []store.Path{
			store.P("cells", "c0", "robots", "r0"),
			store.P("cells", "c1", "robots", "r0"),
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		aborts := 0
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					id := lock.TxnID(w*rounds + r + 1)
					first, second := hot[0], hot[1]
					if w%2 == 1 {
						first, second = second, first
					}
					for {
						err := func() error {
							if err := proto.LockPath(id, first, lock.X); err != nil {
								return err
							}
							time.Sleep(50 * time.Microsecond)
							return proto.LockPath(id, second, lock.X)
						}()
						proto.Release(id)
						if err == nil {
							break
						}
						mu.Lock()
						aborts++
						mu.Unlock()
						// Back off before retrying; otherwise wait-die's
						// young transactions spin against an older holder.
						time.Sleep(200 * time.Microsecond)
					}
				}
			}(w)
		}
		wg.Wait()
		el := time.Since(start)
		t.Addf(policy.String(), workers*rounds, aborts, mgr.Stats().Waits, el)
	}
	return t
}
