package experiments

import (
	"fmt"
	"sync"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/store"
	"colock/internal/workload"
)

// E10DeEscalation is the ablation for the de-escalation extension (the
// paper's §5 names "the efficient release of locks ('de-escalation')" as
// future work). A transaction X-locks a whole cell, works on one robot for
// a long time, and either keeps the coarse lock or de-escalates to the
// robot. Concurrent readers of the cell's other parts measure the
// difference.
func E10DeEscalation(readers int, hold time.Duration) *metrics.Table {
	t := metrics.NewTable("E10: de-escalation ablation — coarse X on a cell, work on one robot",
		"variant", "readers", "total-reader-wait", "blocked-readers")
	cfg := workload.Config{
		Seed: 10, Cells: 1, CObjectsPerCell: 8,
		RobotsPerCell: 4, Effectors: 4, DisjointOnly: true,
	}
	for _, variant := range []string{"hold-coarse", "de-escalate"} {
		st := workload.Generate(cfg)
		e := newEnv(st, false)
		obj := store.P("cells", "c0")
		if err := e.proto.LockPath(1, obj, lock.X); err != nil {
			panic(err)
		}
		if variant == "de-escalate" {
			if err := e.proto.DeEscalate(1, core.DataNode(obj), []store.Path{
				store.P("cells", "c0", "robots", "r0"),
			}); err != nil {
				panic(err)
			}
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var totalWait time.Duration
		blocked := 0
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(id lock.TxnID, obj int) {
				defer wg.Done()
				p := store.P("cells", "c0", "c_objects", fmt.Sprintf("o%d", obj))
				start := time.Now()
				if err := e.proto.LockPath(id, p, lock.S); err != nil {
					panic(err)
				}
				w := time.Since(start)
				e.proto.Release(id)
				mu.Lock()
				totalWait += w
				if w > hold/2 {
					blocked++
				}
				mu.Unlock()
			}(lock.TxnID(r+2), r%8)
		}
		time.Sleep(hold) // the long robot work
		e.proto.Release(1)
		wg.Wait()
		t.Addf(variant, readers, totalWait.Round(time.Millisecond), blocked)
	}
	return t
}

// E11BLUCoalescing is the ablation for footnote 3: per-attribute BLUs vs
// one coalesced BLU per tuple level. A transaction reads every atomic
// attribute of many robots; coalescing should cut the lock-table entries
// roughly by the number of atomic attributes per tuple while concurrency on
// whole attributes levels is unchanged.
func E11BLUCoalescing(robots int) *metrics.Table {
	t := metrics.NewTable("E11: BLU granularity (footnote 3) — reading every atomic attribute",
		"blu-granularity", "lock-requests", "table-entries", "elapsed")
	cfg := workload.Config{
		Seed: 11, Cells: 1, CObjectsPerCell: 2,
		RobotsPerCell: robots, Effectors: 4, DisjointOnly: true,
	}
	for _, coalesce := range []bool{false, true} {
		st := workload.Generate(cfg)
		nm := core.NewNamer(st.Catalog(), coalesce)
		mgr := lock.NewManager(lock.Options{})
		proto := core.NewProtocol(mgr, st, nm, core.Options{})
		name := "per-attribute"
		if coalesce {
			name = "coalesced (#attrs)"
		}
		start := time.Now()
		for r := 0; r < robots; r++ {
			for _, attr := range []string{"robot_id", "trajectory"} {
				p := store.P("cells", "c0", "robots", fmt.Sprintf("r%d", r), attr)
				if err := proto.LockPath(1, p, lock.S); err != nil {
					panic(err)
				}
			}
		}
		el := time.Since(start)
		t.Addf(name, mgr.Stats().Requests, mgr.LockCount(), el)
		mgr.ReleaseAll(1)
	}
	return t
}
