// Package experiments implements the quantitative evaluation harness: one
// experiment per qualitative claim of the paper's §4.6 (see DESIGN.md §5 for
// the index). Each experiment returns a metrics.Table whose rows reproduce
// the claim's expected shape; cmd/lockbench prints them and bench_test.go
// wraps them as testing.B benchmarks.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"colock/internal/authz"
	"colock/internal/baseline"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
	"colock/internal/txn"
	"colock/internal/workload"
)

// env bundles a fresh protocol stack over a store.
type env struct {
	st    *store.Store
	nm    *core.Namer
	mgr   *lock.Manager
	proto *core.Protocol
	txns  *txn.Manager
	auth  *authz.Table
}

func newEnv(st *store.Store, rule4Prime bool) *env {
	nm := core.NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	auth := authz.NewTable(false)
	var opts core.Options
	if rule4Prime {
		opts = core.Options{Rule4Prime: true, Authorizer: auth}
	}
	proto := core.NewProtocol(mgr, st, nm, opts)
	return &env{st: st, nm: nm, mgr: mgr, proto: proto, txns: txn.NewManager(proto, st), auth: auth}
}

// lockerStack builds a fresh lock manager and the named baseline over st.
func lockerStack(name string, st *store.Store) baseline.Locker {
	nm := core.NewNamer(st.Catalog(), false)
	mgr := lock.NewManager(lock.Options{})
	switch name {
	case "colock":
		// The technique comparisons reproduce the paper's request-count
		// claims (e.g. E8: identical counts on disjoint-only workloads).
		// The granted-mode cache deliberately elides covered requests, so
		// it is disabled here to keep the measured rule shape the paper's.
		return baseline.Core{Proto: core.NewProtocol(mgr, st, nm, core.Options{DisableFastPath: true})}
	case "xsql-whole-object":
		return baseline.NewWholeObject(mgr, st, nm)
	case "systemr-tuple":
		return baseline.NewTupleLevel(mgr, st, nm)
	case "traditional-dag":
		return baseline.NewTraditionalDAG(mgr, st, nm)
	}
	panic("experiments: unknown locker " + name)
}

// runScripts executes the transaction scripts concurrently under a locker:
// each script locks its ops in order, "works" for hold, then releases.
// Deadlock victims retry with fresh lock sets. Returns wall time and the
// number of retries.
func runScripts(l baseline.Locker, scripts [][]workload.Op, hold time.Duration) (time.Duration, uint64) {
	var wg sync.WaitGroup
	var retriesMu sync.Mutex
	retries := uint64(0)
	start := time.Now()
	for i, script := range scripts {
		wg.Add(1)
		go func(id lock.TxnID, ops []workload.Op) {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				err := func() error {
					for _, op := range ops {
						var e error
						if op.Write {
							e = l.LockWrite(id, op.Path)
						} else {
							e = l.LockRead(id, op.Path)
						}
						if e != nil {
							return e
						}
					}
					if hold > 0 {
						time.Sleep(hold)
					}
					return nil
				}()
				l.ReleaseAll(id)
				if err == nil {
					return
				}
				retriesMu.Lock()
				retries++
				retriesMu.Unlock()
				if attempt > 100 {
					panic(fmt.Sprintf("experiments: txn %d cannot make progress: %v", id, err))
				}
			}
		}(lock.TxnID(i+1), script)
	}
	wg.Wait()
	return time.Since(start), retries
}
