package experiments

import (
	"fmt"
	"sync"
	"time"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/store"
	"colock/internal/workload"
)

// E5Authorization quantifies §4.6 advantage 4: many updaters, each X-locking
// its own robot, all referencing a small shared effectors library none of
// them may modify. Under rule 4′ the library entry points are S-locked and
// the updaters run concurrently; under rule 4 the X-propagation onto the
// library serializes them.
func E5Authorization(updaters []int, hold time.Duration) *metrics.Table {
	t := metrics.NewTable("E5: authorization cooperation (rule 4 vs 4') — updaters on robots sharing a read-only library",
		"updaters", "variant", "waits", "deadlock-retries", "elapsed")
	for _, n := range updaters {
		cfg := workload.Config{
			Seed: 5, Cells: n, CObjectsPerCell: 2,
			RobotsPerCell: 1, EffectorsPerRobot: 2, Effectors: 4,
		}
		for _, variant := range []struct {
			name  string
			prime bool
		}{{"rule 4'", true}, {"rule 4", false}} {
			st := workload.Generate(cfg)
			e := newEnv(st, variant.prime)
			var wg sync.WaitGroup
			var retries uint64
			var mu sync.Mutex
			start := time.Now()
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(id lock.TxnID, cell string) {
					defer wg.Done()
					if variant.prime {
						e.auth.Grant(id, "cells")
					}
					p := store.P("cells", cell, "robots", "r0")
					for {
						if err := e.proto.LockPath(id, p, lock.X); err == nil {
							break
						}
						e.proto.Release(id)
						mu.Lock()
						retries++
						mu.Unlock()
					}
					time.Sleep(hold)
					e.proto.Release(id)
				}(lock.TxnID(i+1), fmt.Sprintf("c%d", i))
			}
			wg.Wait()
			el := time.Since(start)
			t.Addf(n, variant.name, e.mgr.Stats().Waits, retries, el)
		}
	}
	return t
}

// E6Escalation evaluates the anticipation of lock escalations (§4.5): a
// query reads a fraction of a cell's c_objects. With anticipation the plan
// escalates to one collection lock when the fraction is high; without it,
// execution takes one lock per element and would have to escalate at run
// time once past the escalation threshold.
func E6Escalation(objectsPerCell int, fractions []float64) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E6: anticipated escalation — reading a fraction of %d c_objects", objectsPerCell),
		"fraction", "planner", "plan-granule", "lock-requests", "runtime-escalations")
	const escalationThreshold = 64 // locks per collection before a run-time escalation fires
	cfg := workload.Config{Seed: 6, Cells: 1, CObjectsPerCell: objectsPerCell, RobotsPerCell: 1, EffectorsPerRobot: 1, Effectors: 2}

	for _, frac := range fractions {
		touched := int(frac * float64(objectsPerCell))
		if touched < 1 {
			touched = 1
		}
		for _, planner := range []struct {
			name string
			opts core.PlannerOptions
		}{
			{"anticipating", core.PlannerOptions{Theta: 0.4, MaxLocks: escalationThreshold}},
			{"naive", core.PlannerOptions{Theta: 1.01, MaxLocks: 1 << 30}},
		} {
			st := workload.Generate(cfg)
			core.CollectStatistics(st)
			spec := core.QuerySpec{
				Relation:    "cells",
				ObjectBound: true,
				Hops:        []core.Hop{{Attrs: []string{"c_objects"}, Selectivity: frac}},
				Access:      core.AccessRead,
			}
			plan, err := core.PlanQuery(st.Catalog(), spec, planner.opts)
			if err != nil {
				panic(err)
			}
			e := newEnv(st, false)
			base := e.mgr.Stats()
			runtimeEscalations := 0
			switch spec.LevelName(plan.Level) {
			case "collection c_objects", "object", "relation cells":
				if err := e.proto.LockPath(1, store.P("cells", "c0", "c_objects"), lock.S); err != nil {
					panic(err)
				}
			default: // element level: one lock per touched element
				for i := 0; i < touched; i++ {
					p := store.P("cells", "c0", "c_objects", fmt.Sprintf("o%d", i))
					if err := e.proto.LockPath(1, p, lock.S); err != nil {
						panic(err)
					}
					if i+1 == escalationThreshold {
						// A real system would now trade the element locks
						// for a collection lock at run time.
						runtimeEscalations++
					}
				}
			}
			d := e.mgr.Stats().Sub(base)
			t.Addf(fmt.Sprintf("%.0f%%", frac*100), planner.name,
				spec.LevelName(plan.Level), d.Requests, runtimeEscalations)
			e.proto.Release(1)
		}
	}
	return t
}

// E7LongTransactions reproduces the long-transaction argument (§1, §3.2.1):
// a workstation checks out one cell FOR UPDATE and holds it (a long lock);
// short readers meanwhile read the shared effectors library. Under
// whole-object check-out the library is X-locked for the whole check-out;
// under the paper's protocol with rule 4′ the library is only S-locked and
// the readers proceed.
func E7LongTransactions(readers int, checkoutHold time.Duration) *metrics.Table {
	t := metrics.NewTable("E7: long check-out vs short library readers",
		"technique", "readers", "checkout-hold", "total-reader-wait", "blocked-readers")
	cfg := workload.Config{
		Seed: 7, Cells: 4, CObjectsPerCell: 4,
		RobotsPerCell: 2, EffectorsPerRobot: 2, Effectors: 4,
	}
	for _, tech := range []string{"colock", "xsql-whole-object"} {
		st := workload.Generate(cfg)
		var l lockerFunc
		switch tech {
		case "colock":
			e := newEnv(st, true)
			e.auth.Grant(1, "cells") // the check-out txn may modify cells only
			l = lockerFunc{
				write:   func(id lock.TxnID, p store.Path) error { return e.proto.LockPath(id, p, lock.X) },
				read:    func(id lock.TxnID, p store.Path) error { return e.proto.LockPath(id, p, lock.S) },
				release: e.proto.Release,
			}
		default:
			b := lockerStack(tech, st)
			l = lockerFunc{write: b.LockWrite, read: b.LockRead, release: b.ReleaseAll}
		}

		// Long transaction: check out cell c0 entirely.
		if err := l.write(1, store.P("cells", "c0")); err != nil {
			panic(err)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var totalWait time.Duration
		blocked := 0
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(id lock.TxnID, eff string) {
				defer wg.Done()
				start := time.Now()
				if err := l.read(id, store.P("effectors", eff)); err != nil {
					panic(err)
				}
				w := time.Since(start)
				l.release(id)
				mu.Lock()
				totalWait += w
				if w > checkoutHold/2 {
					blocked++
				}
				mu.Unlock()
			}(lock.TxnID(r+2), fmt.Sprintf("e%d", r%4))
		}
		time.Sleep(checkoutHold)
		l.release(1) // check-in
		wg.Wait()
		t.Addf(tech, readers, checkoutHold, totalWait.Round(time.Millisecond), blocked)
	}
	return t
}

type lockerFunc struct {
	write   func(lock.TxnID, store.Path) error
	read    func(lock.TxnID, store.Path) error
	release func(lock.TxnID)
}

// E8DisjointOverhead measures the paper's admitted disadvantage 2: on purely
// disjoint complex objects the protocol behaves like the traditional one,
// paying only the (fruitless) scan for references during S/X requests.
func E8DisjointOverhead(objects, opsPerTxn int) *metrics.Table {
	t := metrics.NewTable("E8: disjoint-only workload — protocol overhead vs traditional hierarchical locking",
		"technique", "txns", "lock-requests", "elapsed")
	cfg := workload.Config{
		Seed: 8, Cells: objects, CObjectsPerCell: 8,
		RobotsPerCell: 4, Effectors: 4, DisjointOnly: true,
	}
	scripts := workload.Scripts(cfg, workload.MixConfig{
		Seed: 8, Txns: objects, OpsPerTxn: opsPerTxn, WriteFraction: 0.7, SharedFraction: 0,
	})
	for _, tech := range []string{"colock", "traditional-dag"} {
		st := workload.Generate(cfg)
		l := lockerStack(tech, st)
		el, _ := runScripts(l, scripts, 0)
		ms := l.Manager().Stats()
		t.Addf(tech, len(scripts), ms.Requests, el)
	}
	return t
}

// E9BenefitSweep validates the paper's closing claim (§5): "the deeper
// complex objects are structured and/or the more abundant common data exist
// …, the higher the benefit of the proposed technique promises to be." For
// growing chain depth, one updater X-locks a top-level object while readers
// read the deepest shared level; rule 4′ keeps the readers concurrent,
// whole-object check-out blocks them.
func E9BenefitSweep(depths []int, hold time.Duration) *metrics.Table {
	t := metrics.NewTable("E9: benefit vs structure depth — updater on level0 ∥ readers on deepest level",
		"depth", "technique", "total-reader-wait", "blocked-readers")
	const perLevel = 6
	const readers = 8
	for _, depth := range depths {
		ccfg := workload.ChainConfig{Seed: 9, Depth: depth, PerLevel: perLevel, Fanout: 2}
		bottom := workload.LevelRelation(depth - 1)
		for _, tech := range []string{"colock-rule4'", "xsql-whole-object"} {
			st := workload.GenerateChain(ccfg)
			var l lockerFunc
			if tech == "colock-rule4'" {
				nm := core.NewNamer(st.Catalog(), false)
				auth := authz.NewTable(false)
				auth.Grant(1, workload.LevelRelation(0)) // updater may modify only level0
				proto := core.NewProtocol(lock.NewManager(lock.Options{}), st, nm,
					core.Options{Rule4Prime: true, Authorizer: auth})
				l = lockerFunc{
					write:   func(id lock.TxnID, p store.Path) error { return proto.LockPath(id, p, lock.X) },
					read:    func(id lock.TxnID, p store.Path) error { return proto.LockPath(id, p, lock.S) },
					release: proto.Release,
				}
			} else {
				b := lockerStack("xsql-whole-object", st)
				l = lockerFunc{write: b.LockWrite, read: b.LockRead, release: b.ReleaseAll}
			}
			if err := l.write(1, store.P(workload.LevelRelation(0), "n0_0")); err != nil {
				panic(err)
			}
			var wg sync.WaitGroup
			var mu sync.Mutex
			var totalWait time.Duration
			blocked := 0
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(id lock.TxnID, key string) {
					defer wg.Done()
					start := time.Now()
					if err := l.read(id, store.P(bottom, key)); err != nil {
						panic(err)
					}
					w := time.Since(start)
					l.release(id)
					mu.Lock()
					totalWait += w
					if w > hold/2 {
						blocked++
					}
					mu.Unlock()
				}(lock.TxnID(r+2), fmt.Sprintf("n%d_%d", depth-1, r%perLevel))
			}
			time.Sleep(hold)
			l.release(1)
			wg.Wait()
			t.Addf(depth, tech, totalWait.Round(time.Millisecond), blocked)
		}
	}
	return t
}
