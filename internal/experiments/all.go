package experiments

import (
	"time"

	"colock/internal/metrics"
)

// Quick runs every experiment at a small scale (seconds, not minutes) and
// returns the result tables in experiment order. cmd/lockbench -quick and
// smoke tests use it.
func Quick() []*metrics.Table {
	return []*metrics.Table{
		E1Fig7Concurrency(20),
		E2Granularity(8, 50, 200*time.Microsecond),
		E3SharedXLock([]int{2, 8, 32}),
		E4FromTheSide(10),
		E5Authorization([]int{4, 16}, 200*time.Microsecond),
		E6Escalation(200, []float64{0.05, 0.25, 0.5, 1.0}),
		E7LongTransactions(8, 30*time.Millisecond),
		E8DisjointOverhead(16, 4),
		E9BenefitSweep([]int{1, 2, 3, 4}, 30*time.Millisecond),
		E10DeEscalation(8, 30*time.Millisecond),
		E11BLUCoalescing(16),
		E12RecursiveClosure([]int{2, 8, 32}),
		E13DeadlockPolicy(4, 15),
	}
}

// Full runs every experiment at the scale used for EXPERIMENTS.md.
func Full() []*metrics.Table {
	return []*metrics.Table{
		E1Fig7Concurrency(200),
		E2Granularity(16, 200, 500*time.Microsecond),
		E3SharedXLock([]int{2, 8, 32, 128}),
		E4FromTheSide(50),
		E5Authorization([]int{4, 16, 64}, 500*time.Microsecond),
		E6Escalation(500, []float64{0.02, 0.1, 0.25, 0.5, 0.75, 1.0}),
		E7LongTransactions(16, 100*time.Millisecond),
		E8DisjointOverhead(64, 6),
		E9BenefitSweep([]int{1, 2, 3, 4, 5}, 60*time.Millisecond),
		E10DeEscalation(16, 100*time.Millisecond),
		E11BLUCoalescing(64),
		E12RecursiveClosure([]int{2, 8, 32, 128}),
		E13DeadlockPolicy(8, 40),
	}
}
