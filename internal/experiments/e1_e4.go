package experiments

import (
	"fmt"
	"sync"
	"time"

	"colock/internal/baseline"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/store"
	"colock/internal/workload"
)

// E1Fig7Concurrency reproduces Figure 7's headline: Q2 (X robot r1) and Q3
// (X robot r2) touch the shared effector e2 but run concurrently under rule
// 4′, while plain rule 4 serializes them. The table reports waits and wall
// time for `pairs` repetitions of the two-transaction schedule.
func E1Fig7Concurrency(pairs int) *metrics.Table {
	t := metrics.NewTable("E1: Figure 7 — Q2 ∥ Q3 on shared effector e2",
		"variant", "pairs", "waits", "elapsed")
	for _, variant := range []struct {
		name  string
		prime bool
	}{
		{"rule 4' (authorization)", true},
		{"rule 4 (plain)", false},
	} {
		e := newEnv(store.PaperDatabase(), variant.prime)
		start := time.Now()
		for i := 0; i < pairs; i++ {
			id2 := lock.TxnID(2*i + 1)
			id3 := lock.TxnID(2*i + 2)
			if variant.prime {
				e.auth.Grant(id2, "cells")
				e.auth.Grant(id3, "cells")
			}
			var wg sync.WaitGroup
			for _, q := range []struct {
				id    lock.TxnID
				robot string
			}{{id2, "r1"}, {id3, "r2"}} {
				wg.Add(1)
				go func(id lock.TxnID, robot string) {
					defer wg.Done()
					p := store.P("cells", "c1", "robots", robot)
					for {
						if err := e.proto.LockPath(id, p, lock.X); err == nil {
							break
						}
						e.proto.Release(id) // deadlock victim: retry
					}
					time.Sleep(200 * time.Microsecond) // transaction work
					e.proto.Release(id)
				}(q.id, q.robot)
			}
			wg.Wait()
		}
		el := time.Since(start)
		st := e.mgr.Stats()
		t.Addf(variant.name, pairs, st.Waits, el)
	}
	return t
}

// E2Granularity quantifies the granule-oriented problem (§3.2.1): readers of
// a cell's c_objects and updaters of single robots touch disjoint parts.
// Appropriate granules (colock) let them run concurrently with few locks;
// whole-object locking serializes them; tuple-level locking is concurrent
// but pays one lock per tuple.
func E2Granularity(cells, objectsPerCell int, hold time.Duration) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E2: lock granularity — %d cells × %d c_objects, reader ∥ updater per cell", cells, objectsPerCell),
		"technique", "elapsed", "waits", "lock-requests", "max-table")
	// The granule-oriented problem is orthogonal to sharing: a disjoint-only
	// database isolates it (shared-data effects are E3-E5's subject).
	cfg := workload.Config{
		Seed: 2, Cells: cells, CObjectsPerCell: objectsPerCell,
		RobotsPerCell: 4, Effectors: 8, DisjointOnly: true,
	}
	// Per cell: one reader of the whole c_objects collection (Q1-shaped)
	// and one updater of robot r0 (Q2-shaped) — logically disjoint.
	var scripts [][]workload.Op
	for c := 0; c < cells; c++ {
		cell := fmt.Sprintf("c%d", c)
		scripts = append(scripts,
			[]workload.Op{{Path: store.P("cells", cell, "c_objects")}},
			[]workload.Op{{Write: true, Path: store.P("cells", cell, "robots", "r0")}},
		)
	}
	for _, name := range []string{"colock", "xsql-whole-object", "systemr-tuple"} {
		st := workload.Generate(cfg)
		l := lockerStack(name, st)
		el, _ := runScripts(l, scripts, hold)
		ms := l.Manager().Stats()
		t.Addf(name, el, ms.Waits, ms.Requests, ms.MaxTableSize)
	}
	return t
}

// E3SharedXLock measures the protocol-oriented overhead claim (§3.2.2,
// §4.6 advantage 2): X-locking one shared effector under the traditional
// DAG needs a reverse scan over the database plus a lock chain per
// referencing robot; the paper's protocol only walks the superunit spine.
// Sharing degree grows with the number of cells.
func E3SharedXLock(cellCounts []int) *metrics.Table {
	t := metrics.NewTable("E3: X-lock one shared effector — cost vs sharing degree",
		"cells", "technique", "sharing", "lock-requests", "nodes-scanned", "elapsed")
	for _, cells := range cellCounts {
		cfg := workload.Config{
			Seed: 3, Cells: cells, CObjectsPerCell: 4,
			RobotsPerCell: 4, EffectorsPerRobot: 2, Effectors: 4,
		}
		for _, name := range []string{"colock", "traditional-dag"} {
			st := workload.Generate(cfg)
			sharing := len(st.BackRefs("effectors", "e0"))
			st.ResetScanCount()
			l := lockerStack(name, st)
			base := l.Manager().Stats()
			start := time.Now()
			if err := l.LockWrite(1, store.P("effectors", "e0")); err != nil {
				panic(err)
			}
			el := time.Since(start)
			d := l.Manager().Stats().Sub(base)
			t.Addf(cells, name, sharing, d.Requests, st.ScanCount(), el)
			l.ReleaseAll(1)
		}
	}
	return t
}

// E4FromTheSide demonstrates §4.6 advantage 3: under the paper's protocol,
// from-the-side access to common data is synchronized — concurrent
// increments of a shared effector's payload via different robots never lose
// updates. The naive DAG (implicit locks along one access path) loses them.
func E4FromTheSide(rounds int) *metrics.Table {
	t := metrics.NewTable("E4: from-the-side access to shared effector e2",
		"technique", "increments", "final-value", "lost-updates")

	inc := func(st *store.Store, v store.Value) store.Value {
		var n int
		fmt.Sscanf(string(v.(store.Str)), "%d", &n)
		time.Sleep(500 * time.Microsecond) // widen the race window
		return store.Str(fmt.Sprintf("%d", n+1))
	}
	counterPath := store.P("effectors", "e2", "tool")

	// Paper protocol (plain rule 4: updating via the robot X-locks e2).
	{
		st := store.PaperDatabase()
		if _, err := st.SetAtomic(counterPath, store.Str("0")); err != nil {
			panic(err)
		}
		e := newEnv(st, false)
		var wg sync.WaitGroup
		for i := 0; i < rounds; i++ {
			for j, robot := range []string{"r1", "r2"} {
				wg.Add(1)
				go func(id lock.TxnID, robot string) {
					defer wg.Done()
					for {
						err := e.proto.LockPath(id, store.P("cells", "c1", "robots", robot), lock.X)
						if err == nil {
							break
						}
						e.proto.Release(id)
					}
					v, err := st.Lookup(counterPath)
					if err != nil {
						panic(err)
					}
					if _, err := st.SetAtomic(counterPath, inc(st, v)); err != nil {
						panic(err)
					}
					e.proto.Release(id)
				}(lock.TxnID(2*i+j+1), robot)
			}
		}
		wg.Wait()
		v, _ := st.Lookup(counterPath)
		var final int
		fmt.Sscanf(string(v.(store.Str)), "%d", &final)
		t.Addf("colock", 2*rounds, final, 2*rounds-final)
	}

	// Naive DAG: both paths grant "exclusive" access concurrently.
	{
		st := store.PaperDatabase()
		if _, err := st.SetAtomic(counterPath, store.Str("0")); err != nil {
			panic(err)
		}
		nm := core.NewNamer(st.Catalog(), false)
		naive := baseline.NewNaiveDAG(lock.NewManager(lock.Options{}), st, nm)
		var wg sync.WaitGroup
		for i := 0; i < rounds; i++ {
			for j, robot := range []string{"r1", "r2"} {
				wg.Add(1)
				go func(id lock.TxnID, robot string) {
					defer wg.Done()
					ref := store.P("cells", "c1", "robots", robot, "effectors", "e2")
					if err := naive.LockThrough(id, ref, lock.X); err != nil {
						panic(err)
					}
					v, err := st.Lookup(counterPath)
					if err != nil {
						panic(err)
					}
					if _, err := st.SetAtomic(counterPath, inc(st, v)); err != nil {
						panic(err)
					}
					naive.ReleaseAll(id)
				}(lock.TxnID(2*i+j+1), robot)
			}
		}
		wg.Wait()
		v, _ := st.Lookup(counterPath)
		var final int
		fmt.Sscanf(string(v.(store.Str)), "%d", &final)
		t.Addf("naive-dag-unsafe", 2*rounds, final, 2*rounds-final)
	}
	return t
}
