package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// The experiment tests assert the SHAPE of each result — who wins, and in
// the right direction — not absolute numbers, mirroring the reproduction
// goal ("the shape should hold").

func cell(t *testing.T, tab, row, col string, rows [][]string, header []string) string {
	t.Helper()
	ci := -1
	for i, h := range header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("%s: no column %q", tab, col)
	}
	for _, r := range rows {
		if strings.Contains(strings.Join(r, "|"), row) {
			return r[ci]
		}
	}
	t.Fatalf("%s: no row matching %q", tab, row)
	return ""
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "/s")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as number", s)
	}
	return f
}

func TestE1Shape(t *testing.T) {
	tab := E1Fig7Concurrency(10)
	prime := num(t, cell(t, "E1", "rule 4'", "waits", tab.Rows, tab.Header))
	plain := num(t, cell(t, "E1", "rule 4 (plain)", "waits", tab.Rows, tab.Header))
	if prime != 0 {
		t.Errorf("rule 4' waits = %v, want 0", prime)
	}
	if plain == 0 {
		t.Errorf("rule 4 waits = %v, want > 0 (serialization on e2)", plain)
	}
}

func TestE2Shape(t *testing.T) {
	tab := E2Granularity(4, 30, 100*time.Microsecond)
	col := num(t, cell(t, "E2", "colock", "waits", tab.Rows, tab.Header))
	whole := num(t, cell(t, "E2", "xsql-whole-object", "waits", tab.Rows, tab.Header))
	if col != 0 {
		t.Errorf("colock waits = %v, want 0 (disjoint parts)", col)
	}
	if whole == 0 {
		t.Errorf("whole-object waits = %v, want > 0", whole)
	}
	colReq := num(t, cell(t, "E2", "colock", "lock-requests", tab.Rows, tab.Header))
	tupReq := num(t, cell(t, "E2", "systemr-tuple", "lock-requests", tab.Rows, tab.Header))
	if tupReq <= colReq {
		t.Errorf("tuple-level requests (%v) not above colock (%v)", tupReq, colReq)
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3SharedXLock([]int{2, 16})
	// For every sharing level: traditional scans nodes, colock scans none
	// beyond the isShared check, and traditional issues more lock requests.
	var colockReq, tradReq, tradScan float64
	for _, r := range tab.Rows {
		req := num(t, r[3])
		scan := num(t, r[4])
		if r[1] == "colock" && r[0] == "16" {
			colockReq = req
		}
		if r[1] == "traditional-dag" && r[0] == "16" {
			tradReq = req
			tradScan = scan
		}
	}
	if tradScan == 0 {
		t.Error("traditional DAG performed no reverse scan")
	}
	if tradReq <= colockReq {
		t.Errorf("traditional requests (%v) not above colock (%v)", tradReq, colockReq)
	}
}

func TestE4Shape(t *testing.T) {
	tab := E4FromTheSide(6)
	colockLost := num(t, cell(t, "E4", "colock", "lost-updates", tab.Rows, tab.Header))
	naiveLost := num(t, cell(t, "E4", "naive-dag-unsafe", "lost-updates", tab.Rows, tab.Header))
	if colockLost != 0 {
		t.Errorf("colock lost %v updates", colockLost)
	}
	if naiveLost == 0 {
		t.Error("naive DAG lost no updates (race did not manifest)")
	}
}

func TestE5Shape(t *testing.T) {
	tab := E5Authorization([]int{8}, 200*time.Microsecond)
	var primeWaits, plainWaits float64
	for _, r := range tab.Rows {
		if r[1] == "rule 4'" {
			primeWaits = num(t, r[2])
		}
		if r[1] == "rule 4" {
			plainWaits = num(t, r[2])
		}
	}
	if primeWaits != 0 {
		t.Errorf("rule 4' waits = %v", primeWaits)
	}
	if plainWaits == 0 {
		t.Error("rule 4 produced no waits")
	}
}

func TestE6Shape(t *testing.T) {
	tab := E6Escalation(200, []float64{0.05, 1.0})
	// At 100% the anticipating planner issues few requests, the naive one
	// issues ~200 and crosses the run-time escalation threshold.
	var anticipating, naive, naiveEsc float64
	for _, r := range tab.Rows {
		if r[0] == "100%" && r[1] == "anticipating" {
			anticipating = num(t, r[3])
		}
		if r[0] == "100%" && r[1] == "naive" {
			naive = num(t, r[3])
			naiveEsc = num(t, r[4])
		}
	}
	if naive <= anticipating {
		t.Errorf("naive requests (%v) not above anticipating (%v)", naive, anticipating)
	}
	if naiveEsc == 0 {
		t.Error("naive plan did not hit the run-time escalation threshold")
	}
	// At 5% both plans stay at element level: identical request counts.
	var a5, n5 string
	for _, r := range tab.Rows {
		if r[0] == "5%" && r[1] == "anticipating" {
			a5 = r[2]
		}
		if r[0] == "5%" && r[1] == "naive" {
			n5 = r[2]
		}
	}
	if a5 != n5 || a5 != "element c_objects" {
		t.Errorf("5%% granules: anticipating=%q naive=%q", a5, n5)
	}
}

func TestE7Shape(t *testing.T) {
	tab := E7LongTransactions(6, 25*time.Millisecond)
	colBlocked := num(t, cell(t, "E7", "colock", "blocked-readers", tab.Rows, tab.Header))
	wholeBlocked := num(t, cell(t, "E7", "xsql-whole-object", "blocked-readers", tab.Rows, tab.Header))
	if colBlocked != 0 {
		t.Errorf("colock blocked %v readers", colBlocked)
	}
	if wholeBlocked == 0 {
		t.Error("whole-object blocked no readers")
	}
}

func TestE8Shape(t *testing.T) {
	tab := E8DisjointOverhead(8, 3)
	col := num(t, cell(t, "E8", "colock", "lock-requests", tab.Rows, tab.Header))
	trad := num(t, cell(t, "E8", "traditional-dag", "lock-requests", tab.Rows, tab.Header))
	if col != trad {
		t.Errorf("disjoint-only request counts differ: colock=%v traditional=%v (must be identical, §4.4.2.1)", col, trad)
	}
}

func TestE9Shape(t *testing.T) {
	tab := E9BenefitSweep([]int{2, 4}, 25*time.Millisecond)
	// colock never blocks readers; whole-object blocks more at depth 4 than
	// the technique comparison at depth 2 shows in total wait.
	for _, r := range tab.Rows {
		if r[1] == "colock-rule4'" && num(t, r[3]) != 0 {
			t.Errorf("colock blocked readers at depth %s", r[0])
		}
	}
	var d2, d4 float64
	for _, r := range tab.Rows {
		if r[1] == "xsql-whole-object" && r[0] == "2" {
			d2 = num(t, r[3])
		}
		if r[1] == "xsql-whole-object" && r[0] == "4" {
			d4 = num(t, r[3])
		}
	}
	if d4 < d2 {
		t.Errorf("whole-object blocked readers should not shrink with depth: d2=%v d4=%v", d2, d4)
	}
	if d4 == 0 {
		t.Error("whole-object blocked no readers at depth 4")
	}
}

func TestE10Shape(t *testing.T) {
	tab := E10DeEscalation(6, 25*time.Millisecond)
	coarse := num(t, cell(t, "E10", "hold-coarse", "blocked-readers", tab.Rows, tab.Header))
	deesc := num(t, cell(t, "E10", "de-escalate", "blocked-readers", tab.Rows, tab.Header))
	if deesc != 0 {
		t.Errorf("de-escalation blocked %v readers", deesc)
	}
	if coarse == 0 {
		t.Error("coarse lock blocked no readers")
	}
}

func TestE11Shape(t *testing.T) {
	tab := E11BLUCoalescing(16)
	perAttr := num(t, cell(t, "E11", "per-attribute", "table-entries", tab.Rows, tab.Header))
	coalesced := num(t, cell(t, "E11", "coalesced", "table-entries", tab.Rows, tab.Header))
	if coalesced >= perAttr {
		t.Errorf("coalescing did not shrink the table: %v vs %v", coalesced, perAttr)
	}
}

func TestE12Shape(t *testing.T) {
	tab := E12RecursiveClosure([]int{4, 16})
	// Closure size equals the chain depth for both variants; cost grows
	// linearly and the cyclic variant costs the same as the acyclic one.
	var reqs [2][2]float64 // [depth-index][acyclic,cyclic]
	for _, r := range tab.Rows {
		di := 0
		if r[0] == "16" {
			di = 1
		}
		vi := 0
		if r[1] == "cyclic" {
			vi = 1
		}
		if r[2] != r[0] {
			t.Errorf("depth %s %s: closure = %s, want %s", r[0], r[1], r[2], r[0])
		}
		reqs[di][vi] = num(t, r[3])
	}
	if reqs[0][0] != reqs[0][1] || reqs[1][0] != reqs[1][1] {
		t.Errorf("cyclic cost differs from acyclic: %v", reqs)
	}
	if reqs[1][0] <= reqs[0][0] {
		t.Errorf("cost not growing with depth: %v", reqs)
	}
}

func TestE13Shape(t *testing.T) {
	tab := E13DeadlockPolicy(4, 12)
	detect := num(t, cell(t, "E13", "detect", "txns", tab.Rows, tab.Header))
	waitdie := num(t, cell(t, "E13", "wait-die", "txns", tab.Rows, tab.Header))
	if detect != waitdie || detect == 0 {
		t.Errorf("txn counts wrong: %v vs %v", detect, waitdie)
	}
	// Both policies finish all transactions; the table reports the abort
	// trade-off. Wait-die may abort spuriously; detection aborts only on
	// real cycles — assert both columns parse and are non-negative.
	for _, r := range tab.Rows {
		if num(t, r[2]) < 0 || num(t, r[3]) < 0 {
			t.Errorf("negative counters: %v", r)
		}
	}
}

func TestQuickRunsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite in -short mode")
	}
	tabs := Quick()
	if len(tabs) != 13 {
		t.Fatalf("Quick returned %d tables", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Errorf("table %q empty", tab.Title)
		}
		if tab.String() == "" {
			t.Errorf("table %q renders empty", tab.Title)
		}
	}
}
