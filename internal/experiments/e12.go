package experiments

import (
	"fmt"
	"time"

	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/metrics"
	"colock/internal/schema"
	"colock/internal/store"
)

// E12RecursiveClosure measures the §5 recursive-objects extension: locking
// the top of a bill-of-material chain propagates over the transitive
// closure. Cost must be linear in the closure size and identical for the
// acyclic and the cyclic variant (the cycle is detected, not re-walked).
func E12RecursiveClosure(depths []int) *metrics.Table {
	t := metrics.NewTable("E12: recursive BOM — X-lock the top of a chain of depth d",
		"depth", "variant", "closure-locks", "lock-requests", "elapsed")
	for _, depth := range depths {
		for _, variant := range []string{"acyclic", "cyclic"} {
			st := bomChain(depth, variant == "cyclic")
			nm := core.NewNamer(st.Catalog(), false)
			mgr := lock.NewManager(lock.Options{})
			proto := core.NewProtocol(mgr, st, nm, core.Options{})
			start := time.Now()
			if err := proto.LockPath(1, store.P("parts", "p0"), lock.X); err != nil {
				panic(err)
			}
			el := time.Since(start)
			closure := 0
			for _, h := range mgr.HeldLocks(1) {
				if h.Mode == lock.X {
					closure++
				}
			}
			t.Addf(depth, variant, closure, mgr.Stats().Requests, el)
			proto.Release(1)
		}
	}
	return t
}

// bomChain builds p0 → p1 → … → p(depth-1), optionally closing the cycle
// p(depth-1) → p0.
func bomChain(depth int, cyclic bool) *store.Store {
	cat := schema.NewCatalog("bom")
	cat.SetRecursive(true)
	if err := cat.AddRelation(&schema.Relation{
		Name: "parts", Segment: "s1", Key: "part_id",
		Type: schema.Tuple(
			schema.F("part_id", schema.Str()),
			schema.F("subparts", schema.Set(schema.Ref("parts"))),
		),
	}); err != nil {
		panic(err)
	}
	if err := cat.Validate(); err != nil {
		panic(err)
	}
	st := store.New(cat)
	for i := 0; i < depth; i++ {
		subs := store.NewSet()
		if i < depth-1 {
			subs.Add(fmt.Sprintf("p%d", i+1), store.Ref{Relation: "parts", Key: fmt.Sprintf("p%d", i+1)})
		} else if cyclic {
			subs.Add("p0", store.Ref{Relation: "parts", Key: "p0"})
		}
		if err := st.Insert("parts", fmt.Sprintf("p%d", i), store.NewTuple().
			Set("part_id", store.Str(fmt.Sprintf("p%d", i))).
			Set("subparts", subs)); err != nil {
			panic(err)
		}
	}
	return st
}
