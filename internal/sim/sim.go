// Package sim simulates the workstation–server environment the paper's
// introduction motivates: users check complex objects out of a central
// database onto workstations, work on the private copies for a long time
// ("long transactions" lasting days or weeks), and check changed data back
// in. Check-out takes long locks through the core protocol — durable locks
// that survive simulated server crashes — so the private databases stay in a
// well-known state with the central database.
package sim

import (
	"fmt"
	"sync"

	"colock/internal/authz"
	"colock/internal/core"
	"colock/internal/lock"
	"colock/internal/store"
	"colock/internal/txn"
)

// Server is the central database server.
type Server struct {
	mu sync.Mutex

	st   *store.Store
	auth *authz.Table

	mgr   *lock.Manager
	proto *core.Protocol
	txns  *txn.Manager

	// persisted is the crash-surviving image of the durable lock table
	// (the store itself plays the role of the persistent database).
	persisted []byte

	workstations []*Workstation
}

// NewServer builds a server over a store, running the core protocol with
// rule 4′ and an authorization table (modify rights are granted per
// check-out).
func NewServer(st *store.Store) *Server {
	s := &Server{st: st, auth: authz.NewTable(false)}
	s.boot(nil)
	return s
}

// boot (re)creates the volatile state, restoring durable locks if given.
func (s *Server) boot(durable []lock.DurableLock) {
	s.mgr = lock.NewManager(lock.Options{})
	if durable != nil {
		if err := s.mgr.Restore(durable); err != nil {
			// A snapshot taken from a consistent lock table always restores.
			panic(fmt.Sprintf("sim: restore: %v", err))
		}
	}
	nm := core.NewNamer(s.st.Catalog(), false)
	s.proto = core.NewProtocol(s.mgr, s.st, nm, core.Options{
		Rule4Prime: true, Authorizer: s.auth,
	})
	s.txns = txn.NewManager(s.proto, s.st)
}

// Store returns the central database.
func (s *Server) Store() *store.Store { return s.st }

// Txns returns the transaction manager for ordinary (short) transactions
// against the central database.
func (s *Server) Txns() *txn.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txns
}

// LockManager exposes the current lock manager (for inspection).
func (s *Server) LockManager() *lock.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr
}

// persistLocks snapshots the durable locks to the simulated disk.
func (s *Server) persistLocks() {
	data, err := lock.EncodeSnapshot(s.mgr.Snapshot())
	if err != nil {
		panic(fmt.Sprintf("sim: persist: %v", err))
	}
	s.mu.Lock()
	s.persisted = data
	s.mu.Unlock()
}

// CrashAndRestart simulates a server crash: all volatile state (lock table,
// short transactions) is lost; the persistent store and the persisted long
// locks survive. Workstation tickets are re-attached to the new lock table.
func (s *Server) CrashAndRestart() error {
	s.mu.Lock()
	data := s.persisted
	ws := append([]*Workstation(nil), s.workstations...)
	s.mu.Unlock()

	var durable []lock.DurableLock
	if data != nil {
		var err error
		durable, err = lock.DecodeSnapshot(data)
		if err != nil {
			return fmt.Errorf("sim: restart: %w", err)
		}
	}
	s.mu.Lock()
	s.boot(durable)
	s.mu.Unlock()

	for _, w := range ws {
		w.reattach()
	}
	return nil
}

// Browse returns a consistent copy of a complex object WITHOUT taking any
// lock — the "browse" access of workstation transaction models (KSUW85,
// LoPl83): a user may look at the current central version of an object even
// while it is checked out exclusively elsewhere, accepting that the view may
// be stale the moment it is returned. Returns nil if the object does not
// exist.
func (s *Server) Browse(relation, key string) *store.Tuple {
	v, err := s.st.LookupClone(store.P(relation, key))
	if err != nil {
		return nil
	}
	return v.(*store.Tuple)
}

// Backup serializes the central database's data (media-recovery image). It
// should be taken at a quiescent point (no active updaters) for a
// transaction-consistent image.
func (s *Server) Backup() ([]byte, error) { return s.st.EncodeData() }

// RestoreBackup replaces the central database's contents with a backup
// image — media recovery after losing the "disk". Long locks are unaffected
// (they live in their own persisted snapshot).
func (s *Server) RestoreBackup(data []byte) error { return s.st.RestoreData(data) }

// NewWorkstation registers a workstation with a private local database.
func (s *Server) NewWorkstation(name string) *Workstation {
	w := &Workstation{
		Name:    name,
		srv:     s,
		local:   make(map[string]*store.Tuple),
		tickets: make(map[string]*ticket),
	}
	s.mu.Lock()
	s.workstations = append(s.workstations, w)
	s.mu.Unlock()
	return w
}

type ticket struct {
	tx        *txn.Txn
	object    store.Path
	forUpdate bool
}

// Workstation holds private copies of checked-out complex objects.
type Workstation struct {
	Name string
	srv  *Server

	mu      sync.Mutex
	local   map[string]*store.Tuple
	tickets map[string]*ticket
}

func objKey(relation, key string) string { return relation + "/" + key }

// CheckOut copies a complex object into the workstation's private database
// under a long lock: X when forUpdate (the workstation intends to change the
// object), S otherwise. The lock — including its rule-4′ propagation onto
// shared common data — survives server crashes. CheckOut blocks while a
// conflicting (long or short) lock is held.
func (w *Workstation) CheckOut(relation, key string, forUpdate bool) error {
	w.mu.Lock()
	if _, dup := w.tickets[objKey(relation, key)]; dup {
		w.mu.Unlock()
		return fmt.Errorf("sim: %s already checked out on %s", objKey(relation, key), w.Name)
	}
	w.mu.Unlock()

	s := w.srv
	s.mu.Lock()
	tm := s.txns
	s.mu.Unlock()

	t := tm.BeginLong()
	mode := lock.S
	if forUpdate {
		s.auth.Grant(t.ID(), relation)
		mode = lock.X
	}
	if err := t.Lock(nil, core.DataNode(store.P(relation, key)), mode); err != nil {
		t.Abort()
		return err
	}
	obj := s.st.Get(relation, key)
	if obj == nil {
		t.Abort()
		return fmt.Errorf("sim: no object %s", objKey(relation, key))
	}
	w.mu.Lock()
	w.local[objKey(relation, key)] = obj.Clone().(*store.Tuple)
	w.tickets[objKey(relation, key)] = &ticket{tx: t, object: store.P(relation, key), forUpdate: forUpdate}
	w.mu.Unlock()
	s.persistLocks()
	return nil
}

// Local returns the workstation's private copy of a checked-out object for
// reading and (if checked out for update) editing.
func (w *Workstation) Local(relation, key string) *store.Tuple {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.local[objKey(relation, key)]
}

// CheckedOut lists the objects currently checked out (sorted by key).
func (w *Workstation) CheckedOut() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.tickets))
	for k := range w.tickets {
		out = append(out, k)
	}
	return out
}

// CheckIn writes the (possibly modified) private copy back into the central
// database and releases the long lock. Check-in of a read-only check-out
// just releases the lock.
func (w *Workstation) CheckIn(relation, key string) error {
	w.mu.Lock()
	tk := w.tickets[objKey(relation, key)]
	localObj := w.local[objKey(relation, key)]
	w.mu.Unlock()
	if tk == nil {
		return fmt.Errorf("sim: %s not checked out on %s", objKey(relation, key), w.Name)
	}

	s := w.srv
	if tk.forUpdate {
		rel := s.st.Catalog().Relation(relation)
		if err := store.Check(localObj, rel.Type); err != nil {
			return fmt.Errorf("sim: check-in of %s: private copy invalid: %w", objKey(relation, key), err)
		}
		// The long X lock (held, durable) makes this write safe.
		s.st.Delete(relation, key)
		if err := s.st.Insert(relation, key, localObj.Clone().(*store.Tuple)); err != nil {
			return fmt.Errorf("sim: check-in of %s: %w", objKey(relation, key), err)
		}
	}
	if err := tk.tx.Commit(); err != nil {
		return err
	}
	w.drop(relation, key)
	s.persistLocks()
	return nil
}

// Cancel abandons a check-out: the private copy is dropped and the long
// lock released without writing back.
func (w *Workstation) Cancel(relation, key string) error {
	w.mu.Lock()
	tk := w.tickets[objKey(relation, key)]
	w.mu.Unlock()
	if tk == nil {
		return fmt.Errorf("sim: %s not checked out on %s", objKey(relation, key), w.Name)
	}
	tk.tx.Abort()
	w.drop(relation, key)
	w.srv.persistLocks()
	return nil
}

func (w *Workstation) drop(relation, key string) {
	w.mu.Lock()
	delete(w.tickets, objKey(relation, key))
	delete(w.local, objKey(relation, key))
	w.mu.Unlock()
}

// reattach refreshes the workstation's tickets after a server restart: the
// long transactions are adopted into the new transaction manager (their
// durable locks were already restored), and modify rights are re-granted.
func (w *Workstation) reattach() {
	s := w.srv
	s.mu.Lock()
	tm := s.txns
	s.mu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, tk := range w.tickets {
		old := tk.tx.ID()
		tk.tx = tm.Adopt(old)
		if tk.forUpdate {
			s.auth.Grant(old, tk.object.Relation())
		}
	}
}
