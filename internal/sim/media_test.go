package sim

import (
	"testing"

	"colock/internal/store"
)

// TestMediaRecovery: the server's disk is lost; a backup restores the data
// while the persisted long locks continue to protect the checked-out
// objects.
func TestMediaRecovery(t *testing.T) {
	s := NewServer(store.PaperDatabase())

	// Committed work, then a backup.
	tx := s.Txns().Begin()
	if err := tx.UpdateAtomic(store.P("effectors", "e1", "tool"), store.Str("t1-v2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	backup, err := s.Backup()
	if err != nil {
		t.Fatal(err)
	}

	// A workstation checks out c1 (long lock survives everything).
	ws := s.NewWorkstation("ws1")
	if err := ws.CheckOut("cells", "c1", true); err != nil {
		t.Fatal(err)
	}

	// "Media failure": the data is corrupted after the backup.
	s.Store().Delete("effectors", "e2")
	s.Store().Delete("cells", "c1")

	if err := s.RestoreBackup(backup); err != nil {
		t.Fatal(err)
	}
	v, err := s.Store().Lookup(store.P("effectors", "e1", "tool"))
	if err != nil || v != store.Str("t1-v2") {
		t.Errorf("backup state wrong: %v %v", v, err)
	}
	if s.Store().Get("cells", "c1") == nil {
		t.Fatal("c1 not recovered")
	}
	if err := s.Store().CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	// The check-out is still held; check-in applies the workstation's edit
	// on top of the recovered state.
	ws.Local("cells", "c1").Get("robots").(*store.List).
		Get("r1").(*store.Tuple).Set("trajectory", store.Str("post-recovery"))
	if err := ws.CheckIn("cells", "c1"); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Store().Lookup(store.P("cells", "c1", "robots", "r1", "trajectory"))
	if v != store.Str("post-recovery") {
		t.Errorf("check-in after recovery = %v", v)
	}
	if s.LockManager().LockCount() != 0 {
		t.Error("locks leaked")
	}
}

func TestRestoreBackupRejectsGarbage(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	if err := s.RestoreBackup([]byte("nope")); err == nil {
		t.Error("garbage backup restored")
	}
	if err := s.Store().CheckIntegrity(); err != nil {
		t.Error("store damaged by failed restore")
	}
}
