package sim

import (
	"strings"
	"testing"
	"time"

	"colock/internal/lock"
	"colock/internal/store"
)

func TestCheckOutCheckInRoundTrip(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	ws := s.NewWorkstation("ws1")

	if err := ws.CheckOut("cells", "c1", true); err != nil {
		t.Fatal(err)
	}
	if got := ws.CheckedOut(); len(got) != 1 || got[0] != "cells/c1" {
		t.Errorf("CheckedOut = %v", got)
	}

	// Edit the private copy: rename the trajectory of robot r1.
	local := ws.Local("cells", "c1")
	robots := local.Get("robots").(*store.List)
	robots.Get("r1").(*store.Tuple).Set("trajectory", store.Str("tr1-v2"))

	// The central database is untouched until check-in.
	v, _ := s.Store().Lookup(store.P("cells", "c1", "robots", "r1", "trajectory"))
	if v != store.Str("tr1") {
		t.Fatal("central database changed before check-in")
	}

	if err := ws.CheckIn("cells", "c1"); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Store().Lookup(store.P("cells", "c1", "robots", "r1", "trajectory"))
	if v != store.Str("tr1-v2") {
		t.Errorf("after check-in = %v", v)
	}
	if len(ws.CheckedOut()) != 0 {
		t.Error("ticket not dropped")
	}
	if s.LockManager().LockCount() != 0 {
		t.Error("locks leaked after check-in")
	}
	if err := s.Store().CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckOutConflictBlocks(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	w1 := s.NewWorkstation("ws1")
	w2 := s.NewWorkstation("ws2")

	if err := w1.CheckOut("cells", "c1", true); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w2.CheckOut("cells", "c1", true) }()
	select {
	case err := <-done:
		t.Fatalf("conflicting check-out granted: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	if err := w1.CheckIn("cells", "c1"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := w2.Cancel("cells", "c1"); err != nil {
		t.Fatal(err)
	}
}

// TestRule4PrimeAllowsDisjointRobotCheckouts: two workstations check out FOR
// UPDATE two different cells whose robots share effectors — concurrent under
// rule 4′ because neither may modify the library.
func TestRule4PrimeAllowsSharedLibraryReaders(t *testing.T) {
	st := store.PaperDatabase()
	// A second cell whose robot shares effector e2.
	robot := store.NewTuple().
		Set("robot_id", store.Str("r1")).
		Set("trajectory", store.Str("t")).
		Set("effectors", store.NewSet().Add("e2", store.Ref{Relation: "effectors", Key: "e2"}))
	c2 := store.NewTuple().
		Set("cell_id", store.Str("c2")).
		Set("c_objects", store.NewSet()).
		Set("robots", store.NewList().Append("r1", robot))
	if err := st.Insert("cells", "c2", c2); err != nil {
		t.Fatal(err)
	}

	s := NewServer(st)
	w1 := s.NewWorkstation("ws1")
	w2 := s.NewWorkstation("ws2")
	if err := w1.CheckOut("cells", "c1", true); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w2.CheckOut("cells", "c2", true) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("check-outs of different cells sharing library data blocked each other")
	}
	_ = w1.Cancel("cells", "c1")
	_ = w2.Cancel("cells", "c2")
}

// TestCrashRestartPreservesCheckout: the long lock survives a server crash;
// after restart the check-in still works and conflicting access is still
// blocked.
func TestCrashRestartPreservesCheckout(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	ws := s.NewWorkstation("ws1")
	if err := ws.CheckOut("effectors", "e1", true); err != nil {
		t.Fatal(err)
	}
	ws.Local("effectors", "e1").Set("tool", store.Str("t1-v2"))

	if err := s.CrashAndRestart(); err != nil {
		t.Fatal(err)
	}

	// The durable X lock still blocks others after restart.
	tx := s.Txns().Begin()
	blocked := make(chan error, 1)
	go func() { blocked <- tx.LockPath(nil, store.P("effectors", "e1"), lock.S) }()
	select {
	case err := <-blocked:
		t.Fatalf("long lock lost in crash: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	if err := ws.CheckIn("effectors", "e1"); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	v, _ := s.Store().Lookup(store.P("effectors", "e1", "tool"))
	if v != store.Str("t1-v2") {
		t.Errorf("check-in after crash = %v", v)
	}
}

func TestCrashLosesShortLocks(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	tx := s.Txns().Begin()
	if err := tx.LockPath(nil, store.P("cells", "c1"), lock.X); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashAndRestart(); err != nil {
		t.Fatal(err)
	}
	if got := s.LockManager().LockCount(); got != 0 {
		t.Errorf("short locks survived crash: %d", got)
	}
}

func TestCheckInReadOnly(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	ws := s.NewWorkstation("ws1")
	if err := ws.CheckOut("cells", "c1", false); err != nil {
		t.Fatal(err)
	}
	// Read-only local edits are NOT written back.
	ws.Local("cells", "c1").Set("cell_id", store.Str("evil"))
	if err := ws.CheckIn("cells", "c1"); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Store().Lookup(store.P("cells", "c1", "cell_id"))
	if v != store.Str("c1") {
		t.Error("read-only check-in wrote back")
	}
}

func TestCheckInRejectsCorruptCopy(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	ws := s.NewWorkstation("ws1")
	if err := ws.CheckOut("effectors", "e1", true); err != nil {
		t.Fatal(err)
	}
	ws.Local("effectors", "e1").Set("tool", store.Int(42)) // wrong kind
	err := ws.CheckIn("effectors", "e1")
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("corrupt check-in accepted: %v", err)
	}
	// The central copy is unharmed and the ticket still open.
	v, _ := s.Store().Lookup(store.P("effectors", "e1", "tool"))
	if v != store.Str("t1") {
		t.Error("central copy damaged")
	}
	if len(ws.CheckedOut()) != 1 {
		t.Error("ticket dropped on failed check-in")
	}
	_ = ws.Cancel("effectors", "e1")
}

func TestCheckOutErrors(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	ws := s.NewWorkstation("ws1")
	if err := ws.CheckOut("cells", "zz", true); err == nil {
		t.Error("check-out of absent object succeeded")
	}
	if err := ws.CheckOut("cells", "c1", false); err != nil {
		t.Fatal(err)
	}
	if err := ws.CheckOut("cells", "c1", false); err == nil {
		t.Error("double check-out succeeded")
	}
	if err := ws.CheckIn("effectors", "e1"); err == nil {
		t.Error("check-in of unchecked object succeeded")
	}
	if err := ws.Cancel("effectors", "e1"); err == nil {
		t.Error("cancel of unchecked object succeeded")
	}
	_ = ws.Cancel("cells", "c1")
	if s.LockManager().LockCount() != 0 {
		t.Error("locks leaked")
	}
}

func TestCancelDiscardsEdits(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	ws := s.NewWorkstation("ws1")
	if err := ws.CheckOut("effectors", "e3", true); err != nil {
		t.Fatal(err)
	}
	ws.Local("effectors", "e3").Set("tool", store.Str("discarded"))
	if err := ws.Cancel("effectors", "e3"); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Store().Lookup(store.P("effectors", "e3", "tool"))
	if v != store.Str("t3") {
		t.Error("cancel wrote back")
	}
	if ws.Local("effectors", "e3") != nil {
		t.Error("local copy kept after cancel")
	}
}

// TestBrowseIgnoresLocks: browse access returns the central version even
// while the object is checked out exclusively, and never blocks.
func TestBrowseIgnoresLocks(t *testing.T) {
	s := NewServer(store.PaperDatabase())
	ws := s.NewWorkstation("ws1")
	if err := ws.CheckOut("cells", "c1", true); err != nil {
		t.Fatal(err)
	}
	ws.Local("cells", "c1").Get("robots").(*store.List).
		Get("r1").(*store.Tuple).Set("trajectory", store.Str("in-progress"))

	// Browse sees the central (pre-check-in) version immediately.
	v := s.Browse("cells", "c1")
	if v == nil {
		t.Fatal("browse returned nil")
	}
	got := v.Get("robots").(*store.List).Get("r1").(*store.Tuple).Get("trajectory")
	if got != store.Str("tr1") {
		t.Errorf("browse = %v, want the stale central version tr1", got)
	}
	// The copy is private.
	v.Set("cell_id", store.Str("hacked"))
	orig, _ := s.Store().Lookup(store.P("cells", "c1", "cell_id"))
	if orig != store.Str("c1") {
		t.Error("browse leaked a live reference")
	}
	if s.Browse("cells", "zz") != nil {
		t.Error("browse of absent object non-nil")
	}
	if err := ws.CheckIn("cells", "c1"); err != nil {
		t.Fatal(err)
	}
	// After check-in, browse sees the new version.
	v = s.Browse("cells", "c1")
	got = v.Get("robots").(*store.List).Get("r1").(*store.Tuple).Get("trajectory")
	if got != store.Str("in-progress") {
		t.Errorf("browse after check-in = %v", got)
	}
}
