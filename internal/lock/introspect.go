package lock

// Live lock-table introspection: per-resource grant/wait queues, per-shard
// occupancy, and the waits-for graph with a Graphviz DOT export for
// deadlock post-mortems. Everything here follows the latch-ordering
// discipline of shard.go rule 3: at most one shard latch at a time, so the
// result is a consistent per-resource (not a globally atomic) picture —
// the same trade the cross-shard deadlock detector makes.

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// GrantInfo describes one granted lock in a queue snapshot.
type GrantInfo struct {
	Txn     TxnID
	Mode    Mode
	Durable bool
	Seq     uint64 // global grant sequence number
}

// WaiterInfo describes one queued request in a queue snapshot.
type WaiterInfo struct {
	Txn     TxnID
	Mode    Mode // target mode (post-conversion supremum for conversions)
	Convert bool
	Durable bool
	// Since is the request's start time; zero when the enqueuing operation
	// was not traced (no sinks, or sampled out).
	Since time.Time
}

// QueueInfo is the snapshot of one resource's lock-table entry.
type QueueInfo struct {
	Resource Resource
	Shard    int
	Granted  []GrantInfo  // sorted by grant sequence
	Waiting  []WaiterInfo // queue order (conversions first)
}

// Contended reports whether the resource has at least one queued waiter.
func (q QueueInfo) Contended() bool { return len(q.Waiting) > 0 }

// SnapshotQueues returns the granted set and wait queue of every resource
// with a live lock-table entry, sorted by resource name. It latches one
// shard at a time.
func (m *Manager) SnapshotQueues() []QueueInfo {
	var out []QueueInfo
	for _, s := range m.shards {
		s.mu.Lock()
		for r, e := range s.res {
			q := QueueInfo{Resource: r, Shard: s.idx}
			e.forEachHolder(func(t TxnID, h *heldLock) bool {
				q.Granted = append(q.Granted, GrantInfo{Txn: t, Mode: h.mode, Durable: h.durable, Seq: h.seq})
				return true
			})
			sort.Slice(q.Granted, func(i, j int) bool { return q.Granted[i].Seq < q.Granted[j].Seq })
			for _, w := range e.queue {
				q.Waiting = append(q.Waiting, WaiterInfo{Txn: w.txn, Mode: w.mode, Convert: w.convert, Durable: w.durable, Since: w.enq})
			}
			out = append(out, q)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out
}

// ShardSizes returns the number of live lock-table entries per shard — the
// per-stripe occupancy the exposition endpoint publishes. It latches one
// shard at a time.
func (m *Manager) ShardSizes() []int {
	out := make([]int, len(m.shards))
	for i, s := range m.shards {
		s.mu.Lock()
		out[i] = len(s.res)
		s.mu.Unlock()
	}
	return out
}

// ActiveTxns returns the number of distinct transactions currently holding
// at least one lock.
func (m *Manager) ActiveTxns() int {
	n := 0
	for _, ts := range m.txns {
		ts.mu.Lock()
		n += len(ts.held)
		ts.mu.Unlock()
	}
	return n
}

// WaitingTxns returns the number of transactions with an outstanding
// (blocked) lock request.
func (m *Manager) WaitingTxns() int {
	return m.wf.size()
}

// TxnActive reports whether txn still occupies the lock table — holding at
// least one lock or parked in a wait queue. Restart-wait retry policies
// poll this to hold a restarted transaction back until the transactions
// that killed it have drained.
func (m *Manager) TxnActive(txn TxnID) bool {
	if _, ok := m.wf.get(txn); ok {
		return true
	}
	ts := m.txnShardFor(txn)
	ts.mu.Lock()
	_, ok := ts.held[txn]
	ts.mu.Unlock()
	return ok
}

// WaitEdge is one edge of the waits-for graph: From's outstanding request
// for Mode on Resource is blocked by To.
type WaitEdge struct {
	From, To TxnID
	Resource Resource
	Mode     Mode
}

// WaitsForEdges snapshots the waits-for graph: for every blocked
// transaction, the transactions blocking it (incompatible holders and
// earlier incompatible waiters). Edges are read one shard at a time, so
// under churn the set is accurate edge-by-edge but not globally atomic —
// genuine deadlock cycles are stable and always appear. The result is
// sorted by (From, To).
func (m *Manager) WaitsForEdges() []WaitEdge {
	var out []WaitEdge
	sc := getBlockScratch()
	for _, txn := range m.wf.txns() {
		clear(sc.seen)
		var res Resource
		var mode Mode
		res, mode, sc.out = m.appendWaitsFor(txn, sc.out[:0], sc.seen)
		for _, to := range sc.out {
			out = append(out, WaitEdge{From: txn, To: to, Resource: res, Mode: mode})
		}
	}
	putBlockScratch(sc)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// WaitsForDOT exports the current waits-for graph in Graphviz DOT format
// for deadlock post-mortems. Transactions on a detected cycle are marked;
// the victim — the youngest (highest-ID) member of its cycle, i.e. the
// transaction the detector would abort — is highlighted and its outgoing
// cycle edge is labeled "victim edge". Useful with PolicyNone, where
// deadlocks persist instead of being resolved, and for dashboards that
// render the live wait topology.
func (m *Manager) WaitsForDOT() string {
	edges := m.WaitsForEdges()
	return waitsForDOT(edges)
}

// waitsForDOT renders an edge set; split out for deterministic testing.
func waitsForDOT(edges []WaitEdge) string {
	adj := make(map[TxnID][]TxnID)
	nodes := make(map[TxnID]bool)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		nodes[e.From], nodes[e.To] = true, true
	}

	onCycle, victims, victimEdges := cycleAnalysis(adj)

	ids := make([]TxnID, 0, len(nodes))
	for t := range nodes {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var b strings.Builder
	b.WriteString("digraph waitsfor {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=ellipse];\n")
	for _, t := range ids {
		switch {
		case victims[t]:
			fmt.Fprintf(&b, "  t%d [label=\"txn %d (victim)\", color=red, style=bold];\n", t, t)
		case onCycle[t]:
			fmt.Fprintf(&b, "  t%d [label=\"txn %d\", color=red];\n", t, t)
		default:
			fmt.Fprintf(&b, "  t%d [label=\"txn %d\"];\n", t, t)
		}
	}
	for _, e := range edges {
		label := fmt.Sprintf("%s %s", e.Mode, dotEscape(string(e.Resource)))
		if victimEdges[[2]TxnID{e.From, e.To}] {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%s (victim edge)\", color=red, style=bold];\n", e.From, e.To, label)
		} else {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%s\"];\n", e.From, e.To, label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// cycleAnalysis finds the nodes on waits-for cycles, the victim of each
// cycle (its youngest member), and the victim's outgoing edge within its
// cycle — the edge whose removal (aborting the victim) breaks the cycle.
func cycleAnalysis(adj map[TxnID][]TxnID) (onCycle, victims map[TxnID]bool, victimEdges map[[2]TxnID]bool) {
	onCycle = make(map[TxnID]bool)
	victims = make(map[TxnID]bool)
	victimEdges = make(map[[2]TxnID]bool)

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[TxnID]int)
	var path []TxnID

	starts := make([]TxnID, 0, len(adj))
	for t := range adj {
		starts = append(starts, t)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	var dfs func(t TxnID)
	dfs = func(t TxnID) {
		color[t] = grey
		path = append(path, t)
		for _, next := range adj[t] {
			switch color[next] {
			case grey:
				// Cycle: the path suffix from next to t.
				i := len(path) - 1
				for ; i >= 0 && path[i] != next; i-- {
				}
				cycle := path[i:]
				victim := cycle[0]
				for _, c := range cycle {
					onCycle[c] = true
					if c > victim {
						victim = c
					}
				}
				victims[victim] = true
				// The victim's successor on the cycle.
				for k, c := range cycle {
					if c == victim {
						victimEdges[[2]TxnID{victim, cycle[(k+1)%len(cycle)]}] = true
					}
				}
			case white:
				dfs(next)
			}
		}
		color[t] = black
		path = path[:len(path)-1]
	}
	for _, t := range starts {
		if color[t] == white {
			dfs(t)
		}
	}
	return onCycle, victims, victimEdges
}

// dotEscape escapes a string for use inside a double-quoted DOT string.
func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
