package lock

import (
	"context"
	"time"
)

// Injection describes one synthetic fault to apply to an acquire request.
// The zero value means "no fault". Delay stalls the request (simulating a
// slow grant) before Err — if non-nil — is returned as the request's
// outcome, wrapped in a *LockError exactly like an organic failure. Typical
// Err values are ErrDeadlockVictim (synthetic victim), ErrTimeout (spurious
// timeout) and ErrWaitDie; any error is accepted.
type Injection struct {
	Err   error
	Delay time.Duration
}

// Injector decides, per acquire request, whether to inject a synthetic
// fault. Implementations must be safe for concurrent use: InjectAcquire is
// called on the acquire fast path from every client goroutine (with no
// latches held). resilience.Chaos is the canonical implementation —
// deterministic under a fixed seed so chaos tests are reproducible.
type Injector interface {
	InjectAcquire(txn TxnID, r Resource, mode Mode) Injection
}

// SetInjector installs (or, with nil, removes) the fault injector consulted
// at the top of every AcquireCtx / AcquireBatch call. Safe to call
// concurrently with acquires; in-flight requests keep the injector they
// already read.
func (m *Manager) SetInjector(inj Injector) {
	if inj == nil {
		m.injector.Store(nil)
		return
	}
	m.injector.Store(&inj)
}

// inject applies the configured injector, if any, to one request. It runs
// before any latch is taken, so a Delay stalls only the calling goroutine.
// Delays respect ctx: cancellation during a synthetic stall surfaces as the
// usual *LockError wrapping ctx.Err().
func (m *Manager) inject(ctx context.Context, txn TxnID, r Resource, mode Mode) error {
	p := m.injector.Load()
	if p == nil {
		return nil
	}
	f := (*p).InjectAcquire(txn, r, mode)
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			m.injected.Add(1)
			return lockErr(txn, r, mode, ctx.Err())
		}
	}
	if f.Err != nil {
		m.injected.Add(1)
		return lockErr(txn, r, mode, f.Err)
	}
	return nil
}
