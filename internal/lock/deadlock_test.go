package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestTwoTxnDeadlock: classic AB-BA deadlock; the younger txn (2) must be
// the victim.
func TestTwoTxnDeadlock(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "b", X); err != nil {
		t.Fatal(err)
	}

	r1 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, "b", X) }()
	time.Sleep(20 * time.Millisecond) // ensure txn 1 is queued first

	err2 := m.AcquireCtx(context.Background(), 2, "a", X) // closes the cycle
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("txn 2: want ErrDeadlock, got %v", err2)
	}
	m.ReleaseAll(2)
	if err := <-r1; err != nil {
		t.Fatalf("txn 1 (survivor): %v", err)
	}
	if m.Stats().Deadlocks != 1 {
		t.Errorf("Deadlocks = %d, want 1", m.Stats().Deadlocks)
	}
}

// TestVictimIsYoungest: when the cycle is closed by the OLDER transaction,
// the younger waiter must still be the victim: its blocked Acquire returns
// ErrDeadlock.
func TestVictimIsYoungest(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "b", X); err != nil {
		t.Fatal(err)
	}

	r2 := make(chan error, 1)
	go func() { r2 <- m.AcquireCtx(context.Background(), 2, "a", X) }() // younger waits first
	time.Sleep(20 * time.Millisecond)

	// Older txn closes the cycle; victim must be txn 2.
	r1 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, "b", X) }()

	err2 := <-r2
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("txn 2: want ErrDeadlock, got %v", err2)
	}
	m.ReleaseAll(2) // victim aborts, freeing b
	if err := <-r1; err != nil {
		t.Fatalf("txn 1 (survivor): %v", err)
	}
}

// TestThreeTxnCycle: a → b → c → a.
func TestThreeTxnCycle(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "a", X)
	_ = m.AcquireCtx(context.Background(), 2, "b", X)
	_ = m.AcquireCtx(context.Background(), 3, "c", X)

	r1 := make(chan error, 1)
	r2 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, "b", X) }()
	time.Sleep(20 * time.Millisecond)
	go func() { r2 <- m.AcquireCtx(context.Background(), 2, "c", X) }()
	time.Sleep(20 * time.Millisecond)

	err3 := m.AcquireCtx(context.Background(), 3, "a", X) // closes cycle; txn 3 youngest => victim
	if !errors.Is(err3, ErrDeadlock) {
		t.Fatalf("txn 3: want ErrDeadlock, got %v", err3)
	}
	m.ReleaseAll(3)
	if err := <-r2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-r1; err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeDeadlock: two S holders both upgrading to X deadlock; the
// younger is aborted.
func TestUpgradeDeadlock(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "a", S)
	_ = m.AcquireCtx(context.Background(), 2, "a", S)

	r1 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, "a", X) }()
	time.Sleep(20 * time.Millisecond)

	err2 := m.AcquireCtx(context.Background(), 2, "a", X)
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("txn 2: want ErrDeadlock, got %v", err2)
	}
	m.ReleaseAll(2)
	if err := <-r1; err != nil {
		t.Fatalf("txn 1 upgrade: %v", err)
	}
	if m.HeldMode(1, "a") != X {
		t.Errorf("mode = %v, want X", m.HeldMode(1, "a"))
	}
}

// TestNoFalseDeadlock: a plain waits-for chain without a cycle must not
// trigger victim selection.
func TestNoFalseDeadlock(t *testing.T) {
	m := NewManager(Options{})
	_ = m.AcquireCtx(context.Background(), 1, "a", X)
	r2 := make(chan error, 1)
	go func() { r2 <- m.AcquireCtx(context.Background(), 2, "a", X) }()
	time.Sleep(20 * time.Millisecond)
	r3 := make(chan error, 1)
	go func() { r3 <- m.AcquireCtx(context.Background(), 3, "a", X) }()
	time.Sleep(20 * time.Millisecond)

	if m.Stats().Deadlocks != 0 {
		t.Fatalf("false deadlock detected")
	}
	m.ReleaseAll(1)
	if err := <-r2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-r3; err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockStress: many goroutines locking two resources in opposite
// orders; every Acquire must terminate (grant or victim), no livelock.
func TestDeadlockStress(t *testing.T) {
	m := NewManager(Options{})
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			first, second := Resource("a"), Resource("b")
			if id%2 == 0 {
				first, second = second, first
			}
			for k := 0; k < 30; k++ {
				if err := m.AcquireCtx(context.Background(), id, first, X); err != nil {
					m.ReleaseAll(id)
					continue
				}
				if err := m.AcquireCtx(context.Background(), id, second, X); err != nil {
					m.ReleaseAll(id)
					continue
				}
				m.ReleaseAll(id)
			}
		}(TxnID(i + 1))
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock stress did not terminate (livelock or undetected deadlock)")
	}
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}
