package lock

import (
	"testing"
	"testing/quick"
)

var allModes = []Mode{None, IS, IX, S, SIX, X}

func TestModeString(t *testing.T) {
	want := map[Mode]string{None: "-", IS: "IS", IX: "IX", S: "S", SIX: "SIX", X: "X"}
	for m, s := range want {
		if got := m.String(); got != s {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, s)
		}
	}
	if got := Mode(99).String(); got != "Mode(99)" {
		t.Errorf("invalid mode string = %q", got)
	}
	if Mode(99).Valid() {
		t.Error("Mode(99) reported valid")
	}
}

// TestCompatibilityMatrix pins the matrix from Gray et al. 1976, which the
// paper's §3.1 builds on.
func TestCompatibilityMatrix(t *testing.T) {
	type pair struct{ a, b Mode }
	compatible := map[pair]bool{
		{IS, IS}: true, {IS, IX}: true, {IS, S}: true, {IS, SIX}: true, {IS, X}: false,
		{IX, IX}: true, {IX, S}: false, {IX, SIX}: false, {IX, X}: false,
		{S, S}: true, {S, SIX}: false, {S, X}: false,
		{SIX, SIX}: false, {SIX, X}: false,
		{X, X}: false,
	}
	for p, want := range compatible {
		if got := p.a.Compatible(p.b); got != want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", p.a, p.b, got, want)
		}
		if got := p.b.Compatible(p.a); got != want {
			t.Errorf("Compatible(%v,%v) = %v, want %v (symmetry)", p.b, p.a, got, want)
		}
	}
	for _, m := range allModes {
		if !None.Compatible(m) || !m.Compatible(None) {
			t.Errorf("None must be compatible with %v", m)
		}
	}
}

func TestCompatibilitySymmetry(t *testing.T) {
	f := func(a, b uint8) bool {
		ma, mb := Mode(a%numModes), Mode(b%numModes)
		return ma.Compatible(mb) == mb.Compatible(ma)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCoversIsPartialOrder checks reflexivity, antisymmetry and transitivity
// of the restrictiveness order.
func TestCoversIsPartialOrder(t *testing.T) {
	for _, a := range allModes {
		if !a.Covers(a) {
			t.Errorf("%v must cover itself", a)
		}
		for _, b := range allModes {
			if a != b && a.Covers(b) && b.Covers(a) {
				t.Errorf("antisymmetry violated for %v,%v", a, b)
			}
			for _, c := range allModes {
				if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
					t.Errorf("transitivity violated: %v>%v>%v", a, b, c)
				}
			}
		}
	}
}

// TestCoversImpliesMoreConflicts: if a covers b, then everything compatible
// with a is compatible with b (a stronger lock conflicts with at least as
// much). This is the monotonicity that makes implicit locks sound.
func TestCoversImpliesMoreConflicts(t *testing.T) {
	for _, a := range allModes {
		for _, b := range allModes {
			if !a.Covers(b) {
				continue
			}
			for _, c := range allModes {
				if a.Compatible(c) && !b.Compatible(c) {
					t.Errorf("%v covers %v but %v compat %v while %v not", a, b, a, c, b)
				}
			}
		}
	}
}

func TestSupIsLeastUpperBound(t *testing.T) {
	for _, a := range allModes {
		for _, b := range allModes {
			s := Sup(a, b)
			if !s.Covers(a) || !s.Covers(b) {
				t.Errorf("Sup(%v,%v)=%v does not cover both", a, b, s)
			}
			// Least: no strictly weaker mode covers both.
			for _, c := range allModes {
				if c != s && s.Covers(c) && c.Covers(a) && c.Covers(b) {
					t.Errorf("Sup(%v,%v)=%v is not least: %v also covers both", a, b, s, c)
				}
			}
			if Sup(b, a) != s {
				t.Errorf("Sup not commutative for %v,%v", a, b)
			}
		}
	}
	if Sup(IX, S) != SIX {
		t.Errorf("Sup(IX,S) = %v, want SIX", Sup(IX, S))
	}
}

func TestSupAssociative(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ma, mb, mc := Mode(a%numModes), Mode(b%numModes), Mode(c%numModes)
		return Sup(Sup(ma, mb), mc) == Sup(ma, Sup(mb, mc))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntentionFor(t *testing.T) {
	want := map[Mode]Mode{None: None, IS: IS, S: IS, IX: IX, SIX: IX, X: IX}
	for m, w := range want {
		if got := m.IntentionFor(); got != w {
			t.Errorf("IntentionFor(%v) = %v, want %v", m, got, w)
		}
	}
}

func TestIsIntention(t *testing.T) {
	for _, m := range allModes {
		want := m == IS || m == IX
		if got := m.IsIntention(); got != want {
			t.Errorf("IsIntention(%v) = %v, want %v", m, got, want)
		}
	}
}

func TestStronger(t *testing.T) {
	if !X.Stronger(S) || S.Stronger(S) || S.Stronger(X) || IX.Stronger(S) {
		t.Error("Stronger misbehaves")
	}
}
