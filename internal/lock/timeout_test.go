package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAcquireTimeoutExpires(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.AcquireCtx(context.Background(), 2, "a", S, WithTimeout(30*time.Millisecond))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("returned before the deadline")
	}
	if m.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d", m.Stats().Timeouts)
	}
	// The withdrawn waiter does not block later grants or leak.
	m.ReleaseAll(1)
	if err := m.AcquireCtx(context.Background(), 3, "a", X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
	if m.LockCount() != 0 {
		t.Error("locks leaked")
	}
}

func TestAcquireTimeoutGrantsInTime(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 2, "a", S, WithTimeout(time.Second)) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatalf("grant within deadline failed: %v", err)
	}
	if m.HeldMode(2, "a") != S {
		t.Error("lock not held after timed grant")
	}
}

func TestAcquireTimeoutImmediateGrant(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X, WithTimeout(time.Millisecond)); err != nil {
		t.Fatalf("uncontended timed acquire failed: %v", err)
	}
}

// TestAcquireTimeoutRace hammers timed acquires against a releasing holder;
// every outcome must be either a held lock or a clean timeout, never a
// stuck waiter or a lost grant.
func TestAcquireTimeoutRace(t *testing.T) {
	m := NewManager(Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				err := m.AcquireCtx(context.Background(), id, "hot", X, WithTimeout(time.Duration(k%3)*time.Millisecond))
				if err == nil {
					m.ReleaseAll(id)
				} else if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrDeadlock) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(TxnID(i + 1))
	}
	wg.Wait()
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}
