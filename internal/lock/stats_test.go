package lock

import "testing"

// Pins the Stats algebra that benchmark phase-attribution relies on: Add
// sums every counter but takes the MAX of MaxTableSize (high-water marks
// do not add), and Sub subtracts every counter but carries MaxTableSize
// over from the receiver unchanged (a high-water mark cannot be attributed
// to a phase by subtraction).
func TestStatsAddMaxVsSumAsymmetry(t *testing.T) {
	a := Stats{Requests: 10, Waits: 4, MaxTableSize: 7}
	b := Stats{Requests: 3, Waits: 1, MaxTableSize: 9}

	ab := a.Add(b)
	if ab.Requests != 13 || ab.Waits != 5 {
		t.Errorf("Add counters = %+v, want field-wise sums", ab)
	}
	if ab.MaxTableSize != 9 {
		t.Errorf("Add MaxTableSize = %d, want max(7,9)=9 not 16", ab.MaxTableSize)
	}
	ba := b.Add(a)
	if ba != ab {
		t.Errorf("Add not commutative: %+v vs %+v", ba, ab)
	}
	if aa := a.Add(a); aa.MaxTableSize != a.MaxTableSize {
		t.Errorf("Add(self) MaxTableSize = %d, want unchanged %d", aa.MaxTableSize, a.MaxTableSize)
	}
}

func TestStatsSubCarriesMaxTableSize(t *testing.T) {
	before := Stats{Requests: 100, Grants: 60, Releases: 60, MaxTableSize: 12}
	after := Stats{Requests: 250, Grants: 140, Releases: 140, MaxTableSize: 31}

	phase := after.Sub(before)
	if phase.Requests != 150 || phase.Grants != 80 || phase.Releases != 80 {
		t.Errorf("Sub counters = %+v, want field-wise differences", phase)
	}
	// The high-water mark is NOT differenced: it carries over from the
	// receiver (the "after" snapshot), because 31−12 would be meaningless.
	if phase.MaxTableSize != 31 {
		t.Errorf("Sub MaxTableSize = %d, want carry-over 31", phase.MaxTableSize)
	}
	// Round trip: (after − before) + before restores the counters and, by
	// the max rule, the high-water mark.
	if rt := phase.Add(before); rt != after {
		t.Errorf("Sub/Add round trip = %+v, want %+v", rt, after)
	}
}
