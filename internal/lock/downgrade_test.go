package lock

import (
	"context"
	"testing"
	"time"
)

func TestDowngradeInPlace(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Downgrade(1, "a", IX); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(1, "a"); got != IX {
		t.Errorf("mode = %v, want IX", got)
	}
	if m.Stats().Downgrades != 1 {
		t.Errorf("Downgrades = %d", m.Stats().Downgrades)
	}
}

func TestDowngradeWakesWaiters(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 2, "a", IX) }()
	select {
	case err := <-done:
		t.Fatalf("IX granted under X: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := m.Downgrade(1, "a", IX); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Both hold IX now.
	h := m.Holders("a")
	if h[1] != IX || h[2] != IX {
		t.Errorf("holders = %v", h)
	}
}

func TestDowngradeErrors(t *testing.T) {
	m := NewManager(Options{})
	if err := m.Downgrade(1, "a", IS); err == nil {
		t.Error("downgrade of unheld lock succeeded")
	}
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.Downgrade(1, "a", X); err == nil {
		t.Error("upgrade via Downgrade succeeded")
	}
	if err := m.Downgrade(1, "a", IX); err == nil {
		t.Error("downgrade to incomparable mode succeeded (S does not cover IX)")
	}
	// Equal mode is a permitted no-op-ish downgrade.
	if err := m.Downgrade(1, "a", S); err != nil {
		t.Errorf("downgrade to same mode: %v", err)
	}
}

func TestDowngradeToNoneReleases(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.Downgrade(1, "a", None); err != nil {
		t.Fatal(err)
	}
	if m.HeldMode(1, "a") != None {
		t.Error("lock survived downgrade to None")
	}
	if m.LockCount() != 0 {
		t.Error("table not empty")
	}
}

// TestDowngradeAtomicity: while a conversion from S to a weaker-conflicting
// state happens, no other transaction may sneak in an X between "release"
// and "re-acquire" — Downgrade is a single critical section, so a concurrent
// X request observes either X(old) or IX(new), never a free resource.
func TestDowngradeAtomicity(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.AcquireCtx(context.Background(), 2, "a", X) }()
	time.Sleep(10 * time.Millisecond)
	if err := m.Downgrade(1, "a", IX); err != nil {
		t.Fatal(err)
	}
	// Txn 2's X is still blocked: IX ∦ X.
	select {
	case err := <-got:
		t.Fatalf("X granted while IX held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}
