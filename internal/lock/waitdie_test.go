package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPolicyString(t *testing.T) {
	if PolicyDetect.String() != "detect" || PolicyWaitDie.String() != "wait-die" {
		t.Error("policy strings")
	}
}

// TestWaitDieYoungDies: a younger transaction requesting a lock held
// incompatibly by an older one dies immediately instead of waiting.
func TestWaitDieYoungDies(t *testing.T) {
	m := NewManager(Options{Policy: PolicyWaitDie})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	err := m.AcquireCtx(context.Background(), 2, "a", S) // younger, incompatible → dies
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("young requester did not die: %v", err)
	}
	if m.Stats().Deadlocks != 1 {
		t.Errorf("Deadlocks = %d", m.Stats().Deadlocks)
	}
}

// TestWaitDieOldWaits: the older transaction is allowed to wait for the
// younger holder.
func TestWaitDieOldWaits(t *testing.T) {
	m := NewManager(Options{Policy: PolicyWaitDie})
	if err := m.AcquireCtx(context.Background(), 5, "a", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 2, "a", X) }() // older waits
	select {
	case err := <-done:
		t.Fatalf("older requester did not wait: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(5)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWaitDieDiesBehindOlderWaiter: a young request also dies when it would
// queue behind an incompatible older waiter.
func TestWaitDieDiesBehindOlderWaiter(t *testing.T) {
	m := NewManager(Options{Policy: PolicyWaitDie})
	if err := m.AcquireCtx(context.Background(), 3, "a", X); err != nil { // holder (older than 4)
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 1, "a", X) }() // oldest: waits
	time.Sleep(20 * time.Millisecond)
	err := m.AcquireCtx(context.Background(), 4, "a", X) // youngest: would queue behind txn 1 → dies
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("young did not die behind older waiter: %v", err)
	}
	m.ReleaseAll(3)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWaitDieNeverDeadlocks: the crossing-order stress from the detection
// tests must terminate without any cycle forming.
func TestWaitDieNeverDeadlocks(t *testing.T) {
	m := NewManager(Options{Policy: PolicyWaitDie})
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			first, second := Resource("a"), Resource("b")
			if id%2 == 0 {
				first, second = second, first
			}
			for k := 0; k < 30; k++ {
				if err := m.AcquireCtx(context.Background(), id, first, X); err != nil {
					m.ReleaseAll(id)
					continue
				}
				if err := m.AcquireCtx(context.Background(), id, second, X); err != nil {
					m.ReleaseAll(id)
					continue
				}
				m.ReleaseAll(id)
			}
		}(TxnID(i + 1))
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("wait-die stress did not terminate")
	}
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}

// TestWaitDieCompatibleProceeds: compatible requests are unaffected by age.
func TestWaitDieCompatibleProceeds(t *testing.T) {
	m := NewManager(Options{Policy: PolicyWaitDie})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 9, "a", S); err != nil {
		t.Fatalf("compatible young request died: %v", err)
	}
	if err := m.AcquireCtx(context.Background(), 9, "a", IS); err != nil {
		t.Fatalf("covered regrant died: %v", err)
	}
}
