package lock

// Deadlock detection: the waits-for graph has an edge T1 → T2 whenever T1
// has an outstanding waiter that is incompatible with a lock granted to T2,
// or that queues behind an earlier incompatible waiter of T2. Detection runs
// whenever a new waiter is enqueued; the victim is the youngest (highest
// TxnID) transaction on the detected cycle.

// waitsForLocked computes the out-edges of txn in the waits-for graph.
func (m *Manager) waitsForLocked(txn TxnID) []TxnID {
	rec := m.waiting[txn]
	if rec == nil {
		return nil
	}
	e := m.res[rec.res]
	if e == nil {
		return nil
	}
	var out []TxnID
	seen := make(map[TxnID]bool)
	add := func(t TxnID) {
		if t != txn && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for t, h := range e.granted {
		if t != txn && !rec.w.mode.Compatible(h.mode) {
			add(t)
		}
	}
	// Earlier incompatible waiters also block us (FIFO).
	for _, w := range e.queue {
		if w == rec.w {
			break
		}
		if !rec.w.mode.Compatible(w.mode) {
			add(w.txn)
		}
	}
	return out
}

// findDeadlockVictimLocked searches for a waits-for cycle reachable from
// start and, if one exists, returns the youngest transaction on it.
func (m *Manager) findDeadlockVictimLocked(start TxnID) (TxnID, bool) {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make(map[TxnID]int)
	var path []TxnID

	var cycle []TxnID
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		color[t] = grey
		path = append(path, t)
		for _, next := range m.waitsForLocked(t) {
			switch color[next] {
			case grey:
				// Found a cycle: the path suffix starting at next.
				for i := len(path) - 1; i >= 0; i-- {
					cycle = append(cycle, path[i])
					if path[i] == next {
						return true
					}
				}
				return true
			case white:
				if dfs(next) {
					return true
				}
			}
		}
		color[t] = black
		path = path[:len(path)-1]
		return false
	}
	if !dfs(start) {
		return 0, false
	}
	victim := cycle[0]
	for _, t := range cycle {
		if t > victim {
			victim = t
		}
	}
	return victim, true
}
