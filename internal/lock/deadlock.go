package lock

import (
	"sync"
	"time"
)

// Deadlock detection over the sharded lock table. The waits-for graph has an
// edge T1 → T2 whenever T1 has an outstanding waiter that is incompatible
// with a lock granted to T2, or that queues behind an earlier incompatible
// waiter of T2. The victim is the youngest (highest TxnID) transaction on
// the detected cycle.
//
// Sharding makes detection a cross-shard concern: the detector never holds
// more than one shard latch at a time. It walks the graph edge set by edge
// set — the waits-for registry (wf) names the resource each blocked
// transaction waits on, and the out-edges of one transaction are computed
// under that single resource's shard latch. Each edge is therefore accurate
// at the moment it is read, and a genuine cycle is stable (every member is
// blocked), so a walk started from the waiter whose arrival closed the cycle
// always finds it. Under heavy churn an edge read early in the walk can be
// gone by the end — a transiently observed "cycle" would then abort a victim
// spuriously, the classic price of latch-local detection. To keep that price
// small, a found cycle is not acted on until every one of its edges has been
// re-confirmed (confirmEdge): genuine cycles are stable, so they always pass,
// while a phantom must reproduce the same inconsistent interleaving at
// revalidation time to slip through. A lock convoy — one hot resource whose
// holder releases, wraps around, and re-queues behind its own former waiters
// — manufactures exactly these phantoms at high rate, and revalidation is
// what keeps convoys from bleeding spurious aborts.
//
// WHEN the walk runs is a policy choice. Eager detection
// (Options.EagerDetection) runs it inline on every enqueue — exact, but the
// enqueue path pays a full graph walk whose answer is almost always "no
// cycle". Deferred detection (the default) instead arms the waiter on a
// dirty queue; a single background detector goroutine picks it up after
// Options.DeadlockDefer and walks only if the wait is STILL live (validated
// against the waits-for registry by waiter identity). Grant-bound waits —
// the overwhelming majority — are woken before the deferral elapses and
// never pay for detection at all. Cycles are still always found: the waiter
// whose edge completed the cycle stays blocked (cycles don't resolve
// themselves), so its armed check survives validation and its walk sees the
// full cycle. The cost is latency (a cycle lives ~DeadlockDefer longer) and
// a slightly wider window for the spurious-victim race above.

// dirtyWaiter is one armed deferred detection: at armAt, if txn's
// outstanding wait is still this exact waiter INCARNATION — same pointer
// AND same checkout gen; the pointer alone is ABA-prone because the pool
// can reissue the address to the same transaction's next request — run the
// walk. w is an identity token only — it is never dereferenced until
// revalidated under the shard latch (pooled waiters may be recycled at any
// time).
type dirtyWaiter struct {
	txn   TxnID
	w     *waiter
	gen   uint64
	armAt time.Time
}

// armDetection schedules deferred detection for a freshly enqueued waiter.
// Called with no latch held. Reading w.gen here is race-free: the owner
// wrote it before enqueue and nothing rewrites it until the owner itself
// recycles the waiter after await returns.
//
// The dirty list is unbounded on purpose. A convoy arms hundreds of
// thousands of (short-lived) waits per second; any fixed buffer either
// wastes its full capacity up front or overflows under exactly that load,
// and an overflow fallback that walks inline on the request path turns one
// scheduling hiccup into a feedback loop — inline walks slow the workers,
// waits stretch, more walks validate live. Pushing is a mutex-guarded
// append, so backlog memory is proportional to how far behind the detector
// actually is (entries are discarded at receipt once their wait resolves).
func (m *Manager) armDetection(txn TxnID, w *waiter) {
	select {
	case <-m.stopCh:
		// Manager closed: no detector drains the queue anymore; run inline
		// so detection is never lost.
		m.inlineDetect(txn, w, w.gen)
		return
	default:
	}
	m.ensureDetector()
	m.deferredDet.Add(1)
	d := dirtyWaiter{txn: txn, w: w, gen: w.gen, armAt: time.Now().Add(m.deferDur)}
	m.dirtyMu.Lock()
	m.dirty = append(m.dirty, d)
	m.dirtyMu.Unlock()
	select {
	case m.dirtyBell <- struct{}{}:
	default: // bell already rung; the detector will see this push too
	}
}

// ensureDetector starts the background detector goroutine on first use.
func (m *Manager) ensureDetector() {
	m.detOnce.Do(func() {
		m.dirtyBell = make(chan struct{}, 1)
		go m.detectorLoop()
	})
}

// takeDirty swaps out the accumulated armings, reusing buf (the detector's
// previously drained batch) as the next accumulation buffer so steady-state
// arming never allocates.
func (m *Manager) takeDirty(buf []dirtyWaiter) []dirtyWaiter {
	m.dirtyMu.Lock()
	batch := m.dirty
	m.dirty = buf[:0]
	m.dirtyMu.Unlock()
	return batch
}

// stillWaiting reports whether the armed wait is still the transaction's
// current one — same waiter pointer AND same checkout gen (pool ABA guard).
func (m *Manager) stillWaiting(d dirtyWaiter) bool {
	rec, ok := m.wf.get(d.txn)
	return ok && rec.w == d.w && rec.gen == d.gen
}

// checkDirty runs one matured deferred detection: revalidate, then walk.
func (m *Manager) checkDirty(d dirtyWaiter, sc *detScratch) {
	if !m.stillWaiting(d) {
		return // resolved while parked; nothing to check
	}
	m.detectorRuns.Add(1)
	if victim, found := m.findDeadlockVictim(d.txn, sc); found {
		m.abortWaiter(victim)
	}
}

// detectorLoop drains the dirty list in batches. On every wake — the bell
// after a push, or the maturity timer — it swaps the accumulated armings
// out, validates each for the price of one registry lookup, discards those
// whose wait already resolved (the overwhelming majority under churn), and
// parks the still-live rest on the pending list; pending's ripe prefix is
// then walked. pending stays ordered by armAt (armings are pushed in arm
// order), so maturity checks only ever look at its head. One persistent
// scratch buffer serves every walk, and the two batch buffers ping-pong
// through takeDirty, so the whole loop is allocation-free at steady state.
// The persistent timer uses the classic Stop/drain/Reset discipline (it is
// provably stopped-and-drained at every Reset below).
func (m *Manager) detectorLoop() {
	sc := detScratchPool.Get().(*detScratch)
	defer detScratchPool.Put(sc)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var pending, spare []dirtyWaiter
	for {
		// Walk the ripe prefix of pending.
		for len(pending) > 0 && time.Until(pending[0].armAt) <= 0 {
			d := pending[0]
			pending = pending[1:]
			m.checkDirty(d, sc)
		}
		if len(pending) == 0 {
			// Release the drained backing array so a contention spike's
			// pending list does not pin memory forever.
			pending = nil
			select {
			case <-m.stopCh:
				return
			case <-m.dirtyBell:
			}
		} else {
			timer.Reset(time.Until(pending[0].armAt))
			select {
			case <-m.stopCh:
				return
			case <-timer.C:
			case <-m.dirtyBell:
				if !timer.Stop() {
					<-timer.C
				}
			}
		}
		// Triage the new armings: dead on arrival or parked until maturity.
		batch := m.takeDirty(spare)
		for _, d := range batch {
			if m.stillWaiting(d) {
				pending = append(pending, d)
			}
		}
		spare = batch
	}
}

// inlineDetect is the deferred path's fallback walk (detector unavailable or
// dirty queue saturated): validate and walk on the calling goroutine. Unlike
// eager resolveDeadlock it resolves a self-victim through abortWaiter — the
// caller is about to park in await and receives the verdict on the ready
// channel.
func (m *Manager) inlineDetect(txn TxnID, w *waiter, gen uint64) {
	rec, ok := m.wf.get(txn)
	if !ok || rec.w != w || rec.gen != gen {
		return
	}
	sc := detScratchPool.Get().(*detScratch)
	victim, found := m.findDeadlockVictim(txn, sc)
	detScratchPool.Put(sc)
	m.detectorRuns.Add(1)
	if found {
		m.abortWaiter(victim)
	}
}

// appendWaitsFor appends txn's waits-for out-edges to dst (deduped via
// seen, which the caller clears between nodes) and reports the resource and
// target mode of its outstanding request. It latches only the single shard
// of that resource. The registered waiter is dereferenced only after its
// queue membership is confirmed under the latch: queue presence and
// registry currency change together under this latch, and a waiter cannot
// be recycled while queued, so the deref is safe even though waiters are
// pooled.
func (m *Manager) appendWaitsFor(txn TxnID, dst []TxnID, seen map[TxnID]bool) (Resource, Mode, []TxnID) {
	rec, ok := m.wf.get(txn)
	if !ok {
		return "", None, dst
	}
	s := m.shardFor(rec.res)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.res[rec.res]
	if e == nil {
		return rec.res, None, dst
	}
	pos := -1
	for i, w := range e.queue {
		if w == rec.w {
			pos = i
			break
		}
	}
	if pos < 0 {
		// Granted or withdrawn between registry and shard lookup; it no
		// longer blocks on anything (and rec.w must not be dereferenced).
		return rec.res, None, dst
	}
	return rec.res, rec.w.mode, e.appendBlockers(dst, seen, txn, rec.w.mode, pos)
}

// blockScratch is the pooled dedup scratch for blocker-set computation
// (blockerTxns, WaitsForEdges). The map is cleared on recycle so gets are
// ready to use.
type blockScratch struct {
	seen map[TxnID]bool
	out  []TxnID
}

var blockScratchPool = sync.Pool{New: func() any {
	return &blockScratch{seen: make(map[TxnID]bool, 16)}
}}

func getBlockScratch() *blockScratch { return blockScratchPool.Get().(*blockScratch) }

func putBlockScratch(sc *blockScratch) {
	clear(sc.seen)
	blockScratchPool.Put(sc)
}

// detScratch holds every buffer a waits-for walk needs, so detection is
// allocation-free at steady state: the DFS is iterative with an explicit
// frame stack, and all out-edge slices live in one shared arena indexed by
// the frames.
type detScratch struct {
	seen  map[TxnID]bool
	color map[TxnID]uint8
	arena []TxnID // concatenated out-edge lists
	stack []dfsFrame
	cycle []TxnID
}

// dfsFrame is one node on the DFS path; its unvisited out-edges are
// arena[lo:hi].
type dfsFrame struct {
	txn    TxnID
	lo, hi int
}

var detScratchPool = sync.Pool{New: func() any {
	return &detScratch{
		seen:  make(map[TxnID]bool, 16),
		color: make(map[TxnID]uint8, 16),
	}
}}

// push marks t on the DFS path and loads its out-edges into the arena.
func (sc *detScratch) push(m *Manager, t TxnID) {
	const grey = 1
	sc.color[t] = grey
	lo := len(sc.arena)
	clear(sc.seen)
	_, _, sc.arena = m.appendWaitsFor(t, sc.arena, sc.seen)
	sc.stack = append(sc.stack, dfsFrame{txn: t, lo: lo, hi: len(sc.arena)})
}

// confirmEdge reports whether from currently blocks on to, by re-reading
// from's out-edges under the shard latch. Used to revalidate a detected
// cycle before aborting its victim; reuses sc.arena (the walk is over), but
// leaves sc.cycle untouched.
func (m *Manager) confirmEdge(sc *detScratch, from, to TxnID) bool {
	clear(sc.seen)
	sc.arena = sc.arena[:0]
	_, _, sc.arena = m.appendWaitsFor(from, sc.arena, sc.seen)
	for _, t := range sc.arena {
		if t == to {
			return true
		}
	}
	return false
}

// findDeadlockVictim searches for a waits-for cycle reachable from start
// and, if one exists, returns the youngest transaction on it. It holds at
// most one shard latch at any moment (inside appendWaitsFor) and allocates
// nothing once the scratch buffers are warm. A found cycle is revalidated
// edge by edge before it is reported: each edge of the walk was read at a
// different instant, so under churn the "cycle" may be a phantom assembled
// from edges that never coexisted (see the package comment). A real cycle
// is stable and always confirms.
func (m *Manager) findDeadlockVictim(start TxnID, sc *detScratch) (TxnID, bool) {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	clear(sc.color)
	sc.arena = sc.arena[:0]
	sc.stack = sc.stack[:0]
	sc.cycle = sc.cycle[:0]

	sc.push(m, start)
	for len(sc.stack) > 0 && len(sc.cycle) == 0 {
		top := &sc.stack[len(sc.stack)-1]
		if top.lo == top.hi {
			sc.color[top.txn] = black
			sc.stack = sc.stack[:len(sc.stack)-1]
			continue
		}
		next := sc.arena[top.lo]
		top.lo++
		switch sc.color[next] {
		case grey:
			// Found a cycle: the stack suffix from next to the top.
			for i := len(sc.stack) - 1; i >= 0; i-- {
				sc.cycle = append(sc.cycle, sc.stack[i].txn)
				if sc.stack[i].txn == next {
					break
				}
			}
		case white:
			sc.push(m, next)
		}
	}
	if len(sc.cycle) == 0 {
		return 0, false
	}
	// sc.cycle holds the stack suffix deepest-first: cycle[j+1] waits for
	// cycle[j], and the closing edge is cycle[0] → cycle[n-1]. Re-confirm
	// each edge; any gap means the cycle was a phantom of the walk.
	n := len(sc.cycle)
	for j := 0; j+1 < n; j++ {
		if !m.confirmEdge(sc, sc.cycle[j+1], sc.cycle[j]) {
			return 0, false
		}
	}
	if !m.confirmEdge(sc, sc.cycle[0], sc.cycle[n-1]) {
		return 0, false
	}
	victim := sc.cycle[0]
	for _, t := range sc.cycle {
		if t > victim {
			victim = t
		}
	}
	return victim, true
}

// resolveDeadlock is the EAGER path: run cycle detection for a freshly
// enqueued waiter and resolve any cycle found, before the caller parks. It
// returns (err, true) when txn's own request is finished — either txn was
// chosen as the victim (err wraps ErrDeadlock), or the request completed
// concurrently and err is its outcome (nil on a raced grant). (nil, false)
// means the caller should keep waiting.
func (m *Manager) resolveDeadlock(txn TxnID, r Resource, w *waiter, target Mode) (error, bool) {
	m.detectorRuns.Add(1)
	sc := detScratchPool.Get().(*detScratch)
	victim, ok := m.findDeadlockVictim(txn, sc)
	detScratchPool.Put(sc)
	if !ok {
		return nil, false
	}
	if victim != txn {
		m.abortWaiter(victim)
		return nil, false
	}
	tr := m.newTracer()
	s := m.shardFor(r)
	s.mu.Lock()
	select {
	case err := <-w.ready:
		// A grant (or a concurrent detector's abort) raced the detection;
		// that outcome stands.
		s.mu.Unlock()
		putWaiter(w)
		return err, true
	default:
	}
	blockers := s.queuedBlockers(r, w)
	s.removeWaiter(r, w)
	m.wf.delete(txn)
	s.stats.deadlocks.Add(1)
	tr.add(Event{Kind: "victim", Txn: txn, Resource: r, Mode: target, Shard: s.idx,
		Blockers: blockers}, w.enq)
	m.grantWaitersLocked(tr, s, r)
	s.mu.Unlock()
	tr.deliver()
	err := lockErrBlocked(txn, r, target, ErrDeadlock, blockers)
	putWaiter(w)
	return err, true
}

// abortWaiter makes victim's outstanding wait fail with ErrDeadlock. It
// reports false when the victim had no withdrawable waiter (already granted
// or withdrawn — the supposed cycle is then broken anyway). The registry
// record is revalidated by identity under the shard latch before the waiter
// is touched: between the racy first read and the latch the waiter may have
// been granted, recycled through the pool, and re-enqueued by a different
// transaction — without the recheck that innocent waiter would be aborted.
func (m *Manager) abortWaiter(victim TxnID) bool {
	rec, ok := m.wf.get(victim)
	if !ok {
		return false
	}
	tr := m.newTracer()
	s := m.shardFor(rec.res)
	s.mu.Lock()
	if cur, live := m.wf.get(victim); !live || cur.w != rec.w || cur.gen != rec.gen || cur.res != rec.res {
		s.mu.Unlock()
		return false
	}
	// Registry currency under the latch implies queue membership (the two
	// change together under this latch), so rec.w is safe to use from here.
	blockers := s.queuedBlockers(rec.res, rec.w)
	if !s.removeWaiter(rec.res, rec.w) {
		s.mu.Unlock()
		return false
	}
	m.wf.delete(victim)
	s.stats.deadlocks.Add(1)
	tr.add(Event{Kind: "victim", Txn: victim, Resource: rec.res, Mode: rec.w.mode, Shard: s.idx,
		Blockers: blockers}, rec.w.enq)
	rec.w.ready <- lockErrBlocked(victim, rec.res, rec.w.mode, ErrDeadlock, blockers)
	// The victim's departure may unblock others. (After the send the waiter
	// belongs to the victim's goroutine; rec.w is not touched again.)
	m.grantWaitersLocked(tr, s, rec.res)
	s.mu.Unlock()
	tr.deliver()
	return true
}
