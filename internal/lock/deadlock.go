package lock

// Deadlock detection over the sharded lock table. The waits-for graph has an
// edge T1 → T2 whenever T1 has an outstanding waiter that is incompatible
// with a lock granted to T2, or that queues behind an earlier incompatible
// waiter of T2. Detection runs whenever a new waiter is enqueued; the victim
// is the youngest (highest TxnID) transaction on the detected cycle.
//
// Sharding makes detection a cross-shard concern: the detector never holds
// more than one shard latch at a time. It walks the graph edge set by edge
// set — the waits-for registry (wf) names the resource each blocked
// transaction waits on, and the out-edges of one transaction are computed
// under that single resource's shard latch. Each edge is therefore accurate
// at the moment it is read, and a genuine cycle is stable (every member is
// blocked), so the waiter whose arrival closed the cycle always finds it.
// Under heavy churn an edge read early in the walk can be gone by the end —
// a transiently observed "cycle" may then abort a victim spuriously, which
// is safe (the victim retries) and is the classic price of latch-local
// detection.

// waitsFor computes the out-edges of txn in the waits-for graph, latching
// only the single shard of the resource txn waits on.
func (m *Manager) waitsFor(txn TxnID) []TxnID {
	_, _, out := m.blockers(txn)
	return out
}

// blockers returns the resource and mode of txn's outstanding request plus
// the transactions blocking it (its waits-for out-edges), latching only the
// single shard of that resource. The introspection layer (WaitsForEdges)
// shares this walk with the detector.
func (m *Manager) blockers(txn TxnID) (Resource, Mode, []TxnID) {
	rec := m.wf.get(txn)
	if rec == nil {
		return "", None, nil
	}
	s := m.shardFor(rec.res)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.res[rec.res]
	if e == nil {
		return rec.res, rec.w.mode, nil
	}
	pos := -1
	for i, w := range e.queue {
		if w == rec.w {
			pos = i
			break
		}
	}
	if pos < 0 {
		// The waiter was granted or withdrawn between registry and shard
		// lookup; it no longer blocks on anything.
		return rec.res, rec.w.mode, nil
	}
	var out []TxnID
	seen := make(map[TxnID]bool)
	add := func(t TxnID) {
		if t != txn && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for t, h := range e.granted {
		if t != txn && !rec.w.mode.Compatible(h.mode) {
			add(t)
		}
	}
	// Earlier incompatible waiters also block us (FIFO).
	for _, w := range e.queue[:pos] {
		if !rec.w.mode.Compatible(w.mode) {
			add(w.txn)
		}
	}
	return rec.res, rec.w.mode, out
}

// findDeadlockVictim searches for a waits-for cycle reachable from start
// and, if one exists, returns the youngest transaction on it. It holds at
// most one shard latch at any moment (inside waitsFor).
func (m *Manager) findDeadlockVictim(start TxnID) (TxnID, bool) {
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make(map[TxnID]int)
	var path []TxnID

	var cycle []TxnID
	var dfs func(t TxnID) bool
	dfs = func(t TxnID) bool {
		color[t] = grey
		path = append(path, t)
		for _, next := range m.waitsFor(t) {
			switch color[next] {
			case grey:
				// Found a cycle: the path suffix starting at next.
				for i := len(path) - 1; i >= 0; i-- {
					cycle = append(cycle, path[i])
					if path[i] == next {
						return true
					}
				}
				return true
			case white:
				if dfs(next) {
					return true
				}
			}
		}
		color[t] = black
		path = path[:len(path)-1]
		return false
	}
	if !dfs(start) {
		return 0, false
	}
	victim := cycle[0]
	for _, t := range cycle {
		if t > victim {
			victim = t
		}
	}
	return victim, true
}

// resolveDeadlock runs cycle detection for a freshly enqueued waiter and
// resolves any cycle found. It returns (err, true) when txn's own request is
// finished — either txn was chosen as the victim (err wraps ErrDeadlock), or
// the request completed concurrently and err is its outcome (nil on a raced
// grant). (nil, false) means the caller should keep waiting.
func (m *Manager) resolveDeadlock(txn TxnID, r Resource, w *waiter, target Mode) (error, bool) {
	victim, ok := m.findDeadlockVictim(txn)
	if !ok {
		return nil, false
	}
	if victim != txn {
		m.abortWaiter(victim)
		return nil, false
	}
	tr := m.newTracer()
	s := m.shardFor(r)
	s.mu.Lock()
	select {
	case err := <-w.ready:
		// A grant (or a concurrent detector's abort) raced the detection;
		// that outcome stands.
		s.mu.Unlock()
		return err, true
	default:
	}
	blockers := s.queuedBlockers(r, w)
	s.removeWaiter(r, w)
	m.wf.delete(txn)
	s.stats.deadlocks.Add(1)
	tr.add(Event{Kind: "victim", Txn: txn, Resource: r, Mode: target, Shard: s.idx,
		Blockers: blockers}, w.enq)
	m.grantWaitersLocked(tr, s, r)
	s.mu.Unlock()
	tr.deliver()
	return lockErrBlocked(txn, r, target, ErrDeadlock, blockers), true
}

// abortWaiter makes victim's outstanding wait fail with ErrDeadlock. It
// reports false when the victim had no withdrawable waiter (already granted
// or withdrawn — the supposed cycle is then broken anyway).
func (m *Manager) abortWaiter(victim TxnID) bool {
	rec := m.wf.get(victim)
	if rec == nil {
		return false
	}
	tr := m.newTracer()
	s := m.shardFor(rec.res)
	s.mu.Lock()
	blockers := s.queuedBlockers(rec.res, rec.w)
	if !s.removeWaiter(rec.res, rec.w) {
		s.mu.Unlock()
		return false
	}
	m.wf.delete(victim)
	s.stats.deadlocks.Add(1)
	tr.add(Event{Kind: "victim", Txn: victim, Resource: rec.res, Mode: rec.w.mode, Shard: s.idx,
		Blockers: blockers}, rec.w.enq)
	rec.w.ready <- lockErrBlocked(victim, rec.res, rec.w.mode, ErrDeadlock, blockers)
	// The victim's departure may unblock others.
	m.grantWaitersLocked(tr, s, rec.res)
	s.mu.Unlock()
	tr.deliver()
	return true
}
