package lock

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordingSink is a trivial EventSink for tests.
type recordingSink struct {
	mu     sync.Mutex
	events []Event
}

func (rs *recordingSink) Record(e Event) {
	rs.mu.Lock()
	rs.events = append(rs.events, e)
	rs.mu.Unlock()
}

func (rs *recordingSink) kinds() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]string, len(rs.events))
	for i, e := range rs.events {
		out[i] = e.Kind
	}
	return out
}

// The OnEvent hook and every sink see the same event stream, in the same
// order, without double-buffering (one tracer buffer fans out to all).
func TestSinkComposition(t *testing.T) {
	var hook recordingSink
	s1, s2 := &recordingSink{}, &recordingSink{}
	m := NewManager(Options{OnEvent: hook.Record, Sinks: []EventSink{s1, s2}})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)

	want := []string{"grant", "convert", "release", "release-all"}
	for name, got := range map[string][]string{
		"hook": hook.kinds(), "sink1": s1.kinds(), "sink2": s2.kinds(),
	} {
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s saw %v, want %v", name, got, want)
		}
	}
}

func TestAttachSink(t *testing.T) {
	m := NewManager(Options{})
	// With no consumer at all, operations are untraced.
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	late := &recordingSink{}
	m.AttachSink(late)
	if err := m.AcquireCtx(context.Background(), 1, "b", S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	got := late.kinds()
	// The late sink sees the post-attach grant, both releases, and the
	// release-all summary.
	if len(got) != 4 || got[0] != "grant" || got[3] != "release-all" {
		t.Errorf("late sink saw %v, want [grant release release release-all]", got)
	}
}

// A sink may call back into the manager: delivery happens with no latch
// held, same contract as the OnEvent hook.
func TestSinkMayReenter(t *testing.T) {
	var m *Manager
	var counts []int
	var mu sync.Mutex
	sink := sinkFunc(func(e Event) {
		mu.Lock()
		counts = append(counts, m.LockCount())
		mu.Unlock()
	})
	m = NewManager(Options{Sinks: []EventSink{sink}})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 0 || counts[2] != 0 {
		t.Errorf("LockCount seen by sink = %v, want [1 0 0]", counts)
	}
}

type sinkFunc func(Event)

func (f sinkFunc) Record(e Event) { f(e) }

// Event metadata: grants carry the serving shard and a fast-path latency;
// releases carry the released mode and the hold time.
func TestEventTimestampsAndDurations(t *testing.T) {
	sink := &recordingSink{}
	m := NewManager(Options{Sinks: []EventSink{sink}})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	m.ReleaseAll(1)

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.events) != 3 {
		t.Fatalf("events = %v", sink.events)
	}
	g, r := sink.events[0], sink.events[1]
	if ra := sink.events[2]; ra.Kind != "release-all" ||
		len(ra.Resources) != 1 || ra.Resources[0] != "a" {
		t.Errorf("release-all event = %+v, want Resources [a]", ra)
	}
	if g.Kind != "grant" || g.At.IsZero() || g.Dur < 0 || g.Waited {
		t.Errorf("grant event = %+v", g)
	}
	if g.Shard != int(m.shardIndex("a")) {
		t.Errorf("grant shard = %d, want %d", g.Shard, m.shardIndex("a"))
	}
	if r.Kind != "release" || r.Mode != X {
		t.Errorf("release event = %+v, want mode X", r)
	}
	if r.Dur < 2*time.Millisecond {
		t.Errorf("release hold time = %v, want ≥ 2ms", r.Dur)
	}
	if !r.At.After(g.At) {
		t.Errorf("release At %v not after grant At %v", r.At, g.At)
	}
}

// Under -race: per-operation event ordering must hold through a shared sink
// even with many concurrent operations — for any (txn, resource) the stream
// is grant, then release, repeated, never reordered or dropped.
func TestConcurrentEventOrdering(t *testing.T) {
	sink := &recordingSink{}
	m := NewManager(Options{Sinks: []EventSink{sink}})
	const workers, iters = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txn := TxnID(w + 1)
			for i := 0; i < iters; i++ {
				r := Resource(fmt.Sprintf("r%d", w%4)) // some sharing
				if err := m.AcquireCtx(context.Background(), txn, r, S); err != nil {
					t.Error(err)
					return
				}
				m.Release(txn, r)
			}
		}(w)
	}
	wg.Wait()

	sink.mu.Lock()
	defer sink.mu.Unlock()
	type key struct {
		txn TxnID
		res Resource
	}
	holding := make(map[key]bool)
	var grants, releases int
	for _, e := range sink.events {
		k := key{e.Txn, e.Resource}
		switch e.Kind {
		case "grant":
			if holding[k] {
				t.Fatalf("double grant without release for %+v", k)
			}
			holding[k] = true
			grants++
		case "release":
			if !holding[k] {
				t.Fatalf("release without grant for %+v", k)
			}
			holding[k] = false
			releases++
		}
	}
	if grants != workers*iters || releases != workers*iters {
		t.Fatalf("grants=%d releases=%d, want %d each", grants, releases, workers*iters)
	}
}

func TestSnapshotQueues(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "a", S); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 3, "a", X) }()
	for i := 0; m.WaitingTxns() == 0; i++ {
		if i > 2000 {
			t.Fatal("txn 3 never queued")
		}
		time.Sleep(time.Millisecond)
	}

	qs := m.SnapshotQueues()
	if len(qs) != 1 {
		t.Fatalf("queues = %+v, want one entry", qs)
	}
	q := qs[0]
	if q.Resource != "a" || !q.Contended() {
		t.Fatalf("queue = %+v", q)
	}
	if len(q.Granted) != 2 || q.Granted[0].Txn != 1 || q.Granted[1].Txn != 2 {
		t.Errorf("granted = %+v, want txns 1,2 in grant order", q.Granted)
	}
	for _, g := range q.Granted {
		if g.Mode != S {
			t.Errorf("granted mode = %v, want S", g.Mode)
		}
	}
	if len(q.Waiting) != 1 || q.Waiting[0].Txn != 3 || q.Waiting[0].Mode != X {
		t.Errorf("waiting = %+v, want txn 3 in X", q.Waiting)
	}

	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
	if qs := m.SnapshotQueues(); len(qs) != 0 {
		t.Errorf("queues after drain = %+v, want empty", qs)
	}
}

// PolicyNone performs neither detection nor prevention: a genuine deadlock
// persists, visible to the waits-for introspection, until a participant is
// withdrawn by timeout or released by hand.
func TestPolicyNoneLeavesDeadlockStanding(t *testing.T) {
	m := NewManager(Options{Policy: PolicyNone})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "b", X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.AcquireCtx(context.Background(), 1, "b", X) }()
	go func() { errs <- m.AcquireCtx(context.Background(), 2, "a", X) }()
	for i := 0; m.WaitingTxns() < 2; i++ {
		if i > 2000 {
			t.Fatal("deadlock never formed")
		}
		time.Sleep(time.Millisecond)
	}

	// Still deadlocked after a grace period: nobody was aborted.
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-errs:
		t.Fatalf("a waiter returned (%v); PolicyNone must not resolve deadlocks", err)
	default:
	}
	if st := m.Stats(); st.Deadlocks != 0 {
		t.Errorf("Deadlocks = %d, want 0 under PolicyNone", st.Deadlocks)
	}

	edges := m.WaitsForEdges()
	if len(edges) != 2 {
		t.Fatalf("waits-for edges = %+v, want 2", edges)
	}
	if edges[0].From != 1 || edges[0].To != 2 || edges[1].From != 2 || edges[1].To != 1 {
		t.Errorf("edges = %+v, want 1→2 and 2→1", edges)
	}
	dot := m.WaitsForDOT()
	if !strings.Contains(dot, "(victim)") || !strings.Contains(dot, "(victim edge)") {
		t.Errorf("DOT missing victim annotations:\n%s", dot)
	}

	// Hand-resolve: abort the younger transaction.
	m.ReleaseAll(2)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// With timeouts, PolicyNone behaves like the timeout-based systems of the
// paper's era: the deadlock breaks when a waiter's deadline expires.
func TestPolicyNoneTimeoutBreaksDeadlock(t *testing.T) {
	m := NewManager(Options{Policy: PolicyNone})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "b", X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- m.AcquireCtx(context.Background(), 1, "b", X) }()
	go func() { errs <- m.AcquireCtx(context.Background(), 2, "a", X, WithTimeout(20*time.Millisecond)) }()

	var sawTimeout bool
	err := <-errs // txn 2 times out, which lets... nothing move yet
	if err != nil {
		sawTimeout = true
		m.ReleaseAll(2) // abort the timed-out transaction
	} else {
		t.Fatalf("txn 1 returned first with nil; expected txn 2's timeout")
	}
	if err := <-errs; err != nil {
		t.Fatalf("txn 1 after timeout resolution: %v", err)
	}
	if !sawTimeout {
		t.Fatal("no timeout observed")
	}
	m.ReleaseAll(1)
}
