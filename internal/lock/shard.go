package lock

import (
	"sync"
	"sync/atomic"
)

// The lock table is striped into power-of-two shards, each owning a slice of
// the resource namespace (fnv-1a hash of the Resource string) behind its own
// latch. Disjoint-resource traffic — the common case the paper's
// fine-granularity protocol is designed to produce — therefore never
// serializes behind a single hot mutex.
//
// Latch-ordering discipline (violations deadlock the manager itself):
//
//  1. table-shard latch → txn-shard latch        (never the reverse)
//  2. table-shard latch → waits-for-table latch  (never the reverse)
//  3. multiple table-shard latches may be held simultaneously ONLY when
//     acquired in ascending stripe-index order (AcquireBatch's fast path
//     latches every involved stripe that way, grants, and unlatches).
//     Everything else holds at most ONE table-shard latch at a time;
//     cross-shard work (ReleaseAll, HeldLocks, Snapshot, deadlock detection)
//     snapshots under one latch, releases it, and re-latches the next shard.
//     Single-latch code never acquires a second stripe, and ascending-order
//     batchers cannot cycle among themselves, so the two regimes compose
//     deadlock-free.
//  4. txn-shard and waits-for latches are leaves: code holding them may not
//     acquire any other manager latch.
//
// OnEvent callbacks and event sinks are delivered with NO latch held (see
// Options.OnEvent / Options.Sinks).

// tableShard is one stripe of the lock table: a resource→entry map and the
// stripe's statistics counters.
type tableShard struct {
	mu    sync.Mutex
	idx   int // stripe index, stamped into trace events
	res   map[Resource]*entry
	stats shardStats
}

func newTableShard(idx int) *tableShard {
	return &tableShard{idx: idx, res: make(map[Resource]*entry)}
}

// entryFor returns (creating from the pool on demand) the shard's entry for
// r. Caller holds s.mu.
func (s *tableShard) entryFor(r Resource) *entry {
	e := s.res[r]
	if e == nil {
		e = getEntry()
		s.res[r] = e
	}
	return e
}

// removeWaiter removes w from r's queue, reporting whether it was present.
// Caller holds s.mu. A false return means the waiter was already granted or
// withdrawn by a concurrent actor (its ready channel then carries the
// outcome).
func (s *tableShard) removeWaiter(r Resource, w *waiter) bool {
	e := s.res[r]
	if e == nil {
		return false
	}
	return e.removeWaiterPtr(w)
}

// maybeDropEntry recycles r's entry once nothing is granted or queued.
// Caller holds s.mu.
func (s *tableShard) maybeDropEntry(r Resource) {
	if e := s.res[r]; e != nil && e.empty() {
		delete(s.res, r)
		putEntry(e)
	}
}

// shardStats are one stripe's cumulative counters. They are plain atomics so
// that Stats() aggregates lock-free while the stripe stays hot; increments
// happen on the shard that serviced the request, keeping the cache line
// local under disjoint workloads.
type shardStats struct {
	requests    atomic.Uint64
	regrants    atomic.Uint64
	grants      atomic.Uint64
	conversions atomic.Uint64
	conflicts   atomic.Uint64
	waits       atomic.Uint64
	deadlocks   atomic.Uint64
	timeouts    atomic.Uint64
	cancels     atomic.Uint64
	downgrades  atomic.Uint64
	releases    atomic.Uint64
	summaryFast atomic.Uint64
}

func (ss *shardStats) addTo(st *Stats) {
	st.Requests += ss.requests.Load()
	st.Regrants += ss.regrants.Load()
	st.Grants += ss.grants.Load()
	st.Conversions += ss.conversions.Load()
	st.Conflicts += ss.conflicts.Load()
	st.Waits += ss.waits.Load()
	st.Deadlocks += ss.deadlocks.Load()
	st.Timeouts += ss.timeouts.Load()
	st.Cancels += ss.cancels.Load()
	st.Downgrades += ss.downgrades.Load()
	st.Releases += ss.releases.Load()
	st.SummaryFastChecks += ss.summaryFast.Load()
}

func (ss *shardStats) reset() {
	ss.requests.Store(0)
	ss.regrants.Store(0)
	ss.grants.Store(0)
	ss.conversions.Store(0)
	ss.conflicts.Store(0)
	ss.waits.Store(0)
	ss.deadlocks.Store(0)
	ss.timeouts.Store(0)
	ss.cancels.Store(0)
	ss.downgrades.Store(0)
	ss.releases.Store(0)
	ss.summaryFast.Store(0)
}

// txnShard is one stripe of the per-transaction held-lock index (sharded by
// TxnID), so that commit/abort release and HeldLocks never sweep the
// resource shards looking for a transaction's locks.
type txnShard struct {
	mu   sync.Mutex
	held map[TxnID]map[Resource]struct{}
}

func newTxnShard() *txnShard {
	return &txnShard{held: make(map[TxnID]map[Resource]struct{})}
}

func (ts *txnShard) add(txn TxnID, r Resource) {
	ts.mu.Lock()
	set := ts.held[txn]
	if set == nil {
		set = make(map[Resource]struct{})
		ts.held[txn] = set
	}
	set[r] = struct{}{}
	ts.mu.Unlock()
}

func (ts *txnShard) remove(txn TxnID, r Resource) {
	ts.mu.Lock()
	if set := ts.held[txn]; set != nil {
		delete(set, r)
		if len(set) == 0 {
			delete(ts.held, txn)
		}
	}
	ts.mu.Unlock()
}

// snapshot returns the resources txn holds at the moment of the call.
func (ts *txnShard) snapshot(txn TxnID) []Resource {
	ts.mu.Lock()
	set := ts.held[txn]
	out := make([]Resource, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	ts.mu.Unlock()
	return out
}

// waitRecord is a transaction's single outstanding lock request. Records
// are stored BY VALUE: get returns a copy, so readers never alias a record
// another goroutine may replace — and registering a wait allocates nothing
// (the waiter itself is pooled). The w pointer is an identity token for
// revalidation; it must not be dereferenced until the waiter is proven
// current under its resource's shard latch (pooled waiters recycle). gen is
// w's checkout stamp, captured at registration: comparing it alongside the
// pointer defeats pool ABA (same address, different blocked request).
type waitRecord struct {
	res Resource
	w   *waiter
	gen uint64
}

// waitTable is the cross-shard waits-for registry: which resource each
// blocked transaction is waiting on. It is the only structure the deadlock
// detector needs besides one resource shard at a time; its latch is a leaf
// in the ordering discipline.
type waitTable struct {
	mu      sync.Mutex
	waiting map[TxnID]waitRecord
}

func (wt *waitTable) put(txn TxnID, rec waitRecord) {
	wt.mu.Lock()
	wt.waiting[txn] = rec
	wt.mu.Unlock()
}

func (wt *waitTable) get(txn TxnID) (waitRecord, bool) {
	wt.mu.Lock()
	rec, ok := wt.waiting[txn]
	wt.mu.Unlock()
	return rec, ok
}

func (wt *waitTable) delete(txn TxnID) {
	wt.mu.Lock()
	delete(wt.waiting, txn)
	wt.mu.Unlock()
}

// size returns the number of outstanding lock requests without snapshotting
// them (the admission gate polls this on every conflicted acquire).
func (wt *waitTable) size() int {
	wt.mu.Lock()
	n := len(wt.waiting)
	wt.mu.Unlock()
	return n
}

// txns returns the transactions with an outstanding lock request at the
// moment of the call (unordered).
func (wt *waitTable) txns() []TxnID {
	wt.mu.Lock()
	out := make([]TxnID, 0, len(wt.waiting))
	for t := range wt.waiting {
		out = append(out, t)
	}
	wt.mu.Unlock()
	return out
}

// shardHash is fnv-1a over the resource name.
func shardHash(r Resource) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(r); i++ {
		h ^= uint32(r[i])
		h *= 16777619
	}
	return h
}

// nextPow2 rounds n up to the next power of two (n ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
