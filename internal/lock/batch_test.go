package lock

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// chainReqs builds the ancestor-chain shape AcquireBatch exists for.
func chainReqs(mode Mode, leafMode Mode) []BatchReq {
	return []BatchReq{
		{"db", mode},
		{"db/seg", mode},
		{"db/seg/rel", mode},
		{"db/seg/rel/t1", leafMode},
	}
}

func TestAcquireBatchGrantsChainInOrder(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireBatch(context.Background(), 1, chainReqs(IS, S)); err != nil {
		t.Fatal(err)
	}
	held := m.HeldLocks(1)
	if len(held) != 4 {
		t.Fatalf("held %d locks, want 4: %v", len(held), held)
	}
	want := chainReqs(IS, S)
	for i, h := range held {
		if h.Resource != want[i].Resource || h.Mode != want[i].Mode {
			t.Errorf("held[%d] = %v %v, want %v %v", i, h.Resource, h.Mode, want[i].Resource, want[i].Mode)
		}
		if i > 0 && held[i].Seq <= held[i-1].Seq {
			t.Errorf("grant seq out of chain order: %v", held)
		}
	}
	st := m.Stats()
	if st.Batches != 1 || st.BatchFastGrants != 4 || st.BatchFallbacks != 0 {
		t.Errorf("batch counters = %d/%d/%d, want 1/4/0", st.Batches, st.BatchFastGrants, st.BatchFallbacks)
	}
	if st.Requests != 4 || st.Grants != 4 {
		t.Errorf("requests/grants = %d/%d, want 4/4", st.Requests, st.Grants)
	}
}

func TestAcquireBatchRegrantsAndConverts(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireBatch(context.Background(), 1, chainReqs(IS, S)); err != nil {
		t.Fatal(err)
	}
	// Re-running with IX intentions converts the IS ancestors (Sup) and
	// regrants the covered leaf.
	if err := m.AcquireBatch(context.Background(), 1, chainReqs(IX, S)); err != nil {
		t.Fatal(err)
	}
	if got := m.HeldMode(1, "db"); got != IX {
		t.Errorf("db held %v, want IX", got)
	}
	if got := m.HeldMode(1, "db/seg/rel/t1"); got != S {
		t.Errorf("leaf held %v, want S", got)
	}
	st := m.Stats()
	if st.Conversions != 3 {
		t.Errorf("Conversions = %d, want 3", st.Conversions)
	}
	if st.Regrants != 1 {
		t.Errorf("Regrants = %d, want 1", st.Regrants)
	}
	if st.BatchFastGrants != 8 {
		t.Errorf("BatchFastGrants = %d, want 8", st.BatchFastGrants)
	}
}

func TestAcquireBatchDurable(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireBatch(context.Background(), 1, chainReqs(IS, S)); err != nil {
		t.Fatal(err)
	}
	// A durable batch over the same chain must upgrade every held lock to
	// durable, including the regranted ones.
	if err := m.AcquireBatch(context.Background(), 1, chainReqs(IS, S), WithDurable()); err != nil {
		t.Fatal(err)
	}
	for _, h := range m.HeldLocks(1) {
		if !h.Durable {
			t.Errorf("%v not durable after durable batch", h.Resource)
		}
	}
}

func TestAcquireBatchFallbackOnConflict(t *testing.T) {
	m := NewManager(Options{})
	// Txn 2 X-locks the relation, so txn 1's batch grants db and db/seg,
	// then conflicts on db/seg/rel and falls back to the wait path.
	if err := m.AcquireCtx(context.Background(), 2, "db/seg/rel", X); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.AcquireBatch(context.Background(), 1, chainReqs(IS, S))
	}()
	select {
	case err := <-done:
		t.Fatalf("batch completed while X held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	// The compatible prefix must already be granted.
	if got := m.HeldMode(1, "db"); got != IS {
		t.Errorf("db held %v, want IS while blocked", got)
	}
	if got := m.HeldMode(1, "db/seg"); got != IS {
		t.Errorf("db/seg held %v, want IS while blocked", got)
	}
	m.ReleaseAll(2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("batch not completed after conflicting lock released")
	}
	if got := m.HeldMode(1, "db/seg/rel/t1"); got != S {
		t.Errorf("leaf held %v, want S", got)
	}
	st := m.Stats()
	if st.BatchFallbacks != 1 {
		t.Errorf("BatchFallbacks = %d, want 1", st.BatchFallbacks)
	}
	if st.BatchFastGrants != 2 {
		t.Errorf("BatchFastGrants = %d, want 2", st.BatchFastGrants)
	}
	if st.Waits == 0 {
		t.Error("expected the fallback to record a wait")
	}
}

func TestAcquireBatchNoWaitFallback(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 2, "db/seg/rel", X); err != nil {
		t.Fatal(err)
	}
	err := m.AcquireBatch(context.Background(), 1, chainReqs(IS, S), WithNoWait())
	if !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want ErrWouldBlock, got %v", err)
	}
	// Prefix grants survive the refused tail (the caller aborts or retries).
	if got := m.HeldMode(1, "db"); got != IS {
		t.Errorf("db held %v, want IS", got)
	}
}

func TestAcquireBatchCanceledContext(t *testing.T) {
	m := NewManager(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.AcquireBatch(ctx, 1, chainReqs(IS, S))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := m.LockCount(); n != 0 {
		t.Errorf("LockCount = %d after pre-canceled batch, want 0", n)
	}
}

func TestAcquireBatchInvalidMode(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireBatch(context.Background(), 1, []BatchReq{{"a", None}}); err == nil {
		t.Fatal("want error for None mode")
	}
	if err := m.AcquireBatch(context.Background(), 1, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

// TestAcquireBatchManyShards exercises the multi-latch path with more
// distinct resources than the stack index buffer holds.
func TestAcquireBatchManyShards(t *testing.T) {
	m := NewManager(Options{Shards: 64})
	var reqs []BatchReq
	for _, r := range []Resource{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"} {
		reqs = append(reqs, BatchReq{r, X})
	}
	if err := m.AcquireBatch(context.Background(), 1, reqs); err != nil {
		t.Fatal(err)
	}
	if n := m.LockCount(); n != len(reqs) {
		t.Errorf("LockCount = %d, want %d", n, len(reqs))
	}
}

// TestResetStatsClearsBatchCounters is the satellite regression test: the
// PR-3 cascade pattern must cover the new manager-level batch counters.
func TestResetStatsClearsBatchCounters(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireBatch(context.Background(), 1, chainReqs(IS, S)); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "db/seg/rel/t2", X); err != nil {
		t.Fatal(err)
	}
	go m.AcquireBatch(context.Background(), 3, []BatchReq{{"db/seg/rel/t2", S}}) //nolint:errcheck
	waitFor(t, func() bool { return m.Stats().Waits == 1 })
	m.ReleaseAll(2)
	waitFor(t, func() bool { return m.HeldMode(3, "db/seg/rel/t2") == S })
	st := m.Stats()
	if st.Batches == 0 || st.BatchFastGrants == 0 || st.BatchFallbacks == 0 {
		t.Fatalf("expected nonzero batch counters before reset, got %+v", st)
	}
	m.ResetStats()
	st = m.Stats()
	if st.Batches != 0 || st.BatchFastGrants != 0 || st.BatchFallbacks != 0 {
		t.Errorf("batch counters not reset: %d/%d/%d", st.Batches, st.BatchFastGrants, st.BatchFallbacks)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAcquireBatchConcurrentStress hammers overlapping chains from many
// goroutines under -race: shared IS/IX ancestors, disjoint X leaves, with
// periodic ReleaseAll. Verifies the multi-latch fast path against the
// single-latch operations it interleaves with.
func TestAcquireBatchConcurrentStress(t *testing.T) {
	m := NewManager(Options{Shards: 8})
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			txn := TxnID(id + 1)
			leaf := Resource("db/seg/rel/t" + string(rune('a'+id)))
			for i := 0; i < iters; i++ {
				reqs := []BatchReq{
					{"db", IX},
					{"db/seg", IX},
					{"db/seg/rel", IX},
					{leaf, X},
				}
				if err := m.AcquireBatch(context.Background(), txn, reqs); err != nil {
					t.Errorf("txn %d: %v", txn, err)
					return
				}
				if got := m.HeldMode(txn, leaf); got != X {
					t.Errorf("txn %d holds %v on its leaf, want X", txn, got)
					return
				}
				m.ReleaseAll(txn)
			}
		}(w)
	}
	wg.Wait()
	if n := m.LockCount(); n != 0 {
		t.Errorf("LockCount = %d after all ReleaseAll, want 0", n)
	}
}
