package lock

import "fmt"

// LockError is the structured error returned by AcquireCtx (and, through the
// deprecated wrappers, by Acquire/AcquireTimeout/TryAcquire) when a request
// fails. It records WHICH request failed — transaction, resource and mode —
// while Cause carries the sentinel (ErrDeadlock, ErrTimeout, ErrWouldBlock)
// or the context error (context.Canceled, context.DeadlineExceeded), so both
// forms compose:
//
//	var le *lock.LockError
//	if errors.As(err, &le) { report(le.Resource) }
//	if errors.Is(err, lock.ErrDeadlock) { abortAndRetry() }
type LockError struct {
	Txn      TxnID
	Resource Resource
	Mode     Mode
	Cause    error
}

// Error formats the failure with its full request context.
func (e *LockError) Error() string {
	return fmt.Sprintf("%v (txn %d requesting %v on %q)", e.Cause, e.Txn, e.Mode, e.Resource)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *LockError) Unwrap() error { return e.Cause }

func lockErr(txn TxnID, r Resource, mode Mode, cause error) error {
	return &LockError{Txn: txn, Resource: r, Mode: mode, Cause: cause}
}
