package lock

import "fmt"

// LockError is the structured error returned by AcquireCtx when a request
// fails. It records WHICH request failed — transaction, resource and mode —
// while Cause carries the sentinel (ErrDeadlockVictim, ErrWaitDie,
// ErrTimeout, ErrWouldBlock, ErrShed) or the context error
// (context.Canceled, context.DeadlineExceeded), so both forms compose:
//
//	var le *lock.LockError
//	if errors.As(err, &le) { report(le.Resource) }
//	if errors.Is(err, lock.ErrDeadlock) { abortAndRetry() }
//
// Blockers, when non-empty, names the transactions the failed request was
// queued behind (incompatible holders plus incompatible earlier waiters) at
// the moment the request was refused or withdrawn. Restart policies use it
// to wait until the blocking transactions have drained before retrying
// (resilience.RestartWait).
type LockError struct {
	Txn      TxnID
	Resource Resource
	Mode     Mode
	Cause    error
	Blockers []TxnID
}

// Error formats the failure with its full request context.
func (e *LockError) Error() string {
	return fmt.Sprintf("%v (txn %d requesting %v on %q)", e.Cause, e.Txn, e.Mode, e.Resource)
}

// Unwrap exposes the cause to errors.Is / errors.As, so a *LockError
// matches every sentinel its cause wraps: a wait-die death satisfies both
// errors.Is(err, ErrWaitDie) and errors.Is(err, ErrDeadlock), a shed Begin
// satisfies errors.Is(err, ErrShed), and so on — callers classify with
// errors.Is instead of type-switching on strings.
func (e *LockError) Unwrap() error { return e.Cause }

func lockErr(txn TxnID, r Resource, mode Mode, cause error) error {
	return &LockError{Txn: txn, Resource: r, Mode: mode, Cause: cause}
}

func lockErrBlocked(txn TxnID, r Resource, mode Mode, cause error, blockers []TxnID) error {
	return &LockError{Txn: txn, Resource: r, Mode: mode, Cause: cause, Blockers: blockers}
}
