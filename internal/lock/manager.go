package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TxnID identifies a transaction. Transaction IDs are assigned in start
// order, so a numerically larger ID means a younger transaction; the
// deadlock detector aborts the youngest member of a cycle.
type TxnID uint64

// Resource identifies a lockable unit. The core package uses hierarchical
// path strings such as "db1/seg1/cells/c1/robots/r1", but the lock manager
// treats resources as opaque.
type Resource string

// ErrDeadlock is returned from Acquire when the requesting transaction was
// chosen as the victim of a deadlock cycle. The caller must abort the
// transaction and release all its locks.
var ErrDeadlock = errors.New("lock: deadlock victim")

// ErrWouldBlock is returned by TryAcquire when the request cannot be granted
// immediately.
var ErrWouldBlock = errors.New("lock: would block")

// ErrTimeout is returned by AcquireTimeout when the deadline passes before
// the lock is granted. The request is withdrawn; locks already held by the
// transaction are unaffected.
var ErrTimeout = errors.New("lock: acquire timeout")

// Held describes one granted lock, as reported by HeldLocks.
type Held struct {
	Resource Resource
	Mode     Mode
	Durable  bool
	Seq      uint64 // global grant sequence number (acquisition order)
}

// Event is a lock-manager trace event, delivered to the OnEvent hook.
type Event struct {
	Kind     string // "grant", "wait", "convert", "release", "victim"
	Txn      TxnID
	Resource Resource
	Mode     Mode
}

// Policy selects how deadlocks are handled.
type Policy uint8

const (
	// PolicyDetect (default) lets requests wait and runs waits-for cycle
	// detection on every new waiter, aborting the youngest cycle member.
	PolicyDetect Policy = iota
	// PolicyWaitDie is the classic prevention scheme: an older transaction
	// may wait for a younger one, but a younger requester "dies"
	// immediately (ErrDeadlock) when it would have to wait for an older
	// holder. Deadlock-free by construction, at the price of spurious
	// aborts.
	PolicyWaitDie
)

// String names the policy.
func (p Policy) String() string {
	if p == PolicyWaitDie {
		return "wait-die"
	}
	return "detect"
}

// Options configures a Manager.
type Options struct {
	// OnEvent, if non-nil, is invoked (under the manager's mutex; it must
	// not call back into the manager) for every grant, wait, conversion,
	// release and deadlock-victim event. Used by the figure reproductions
	// and the trace shell.
	OnEvent func(Event)
	// Policy selects deadlock handling (default PolicyDetect).
	Policy Policy
}

type heldLock struct {
	mode    Mode
	durable bool
	seq     uint64
}

type waiter struct {
	txn     TxnID
	mode    Mode // target mode after conversion, if convert
	convert bool
	durable bool
	ready   chan error
}

type entry struct {
	granted map[TxnID]*heldLock
	queue   []*waiter // conversions are kept ahead of plain waiters
}

// Manager is a blocking multi-granularity lock manager. All methods are safe
// for concurrent use.
type Manager struct {
	mu      sync.Mutex
	res     map[Resource]*entry
	held    map[TxnID]map[Resource]*heldLock
	waiting map[TxnID]*waitRecord // at most one outstanding request per txn
	seq     uint64
	stats   Stats
	opts    Options
}

type waitRecord struct {
	res Resource
	w   *waiter
}

// NewManager returns an empty lock manager.
func NewManager(opts Options) *Manager {
	return &Manager{
		res:     make(map[Resource]*entry),
		held:    make(map[TxnID]map[Resource]*heldLock),
		waiting: make(map[TxnID]*waitRecord),
		opts:    opts,
	}
}

func (m *Manager) emit(kind string, txn TxnID, r Resource, mode Mode) {
	if m.opts.OnEvent != nil {
		m.opts.OnEvent(Event{Kind: kind, Txn: txn, Resource: r, Mode: mode})
	}
}

func (m *Manager) entryFor(r Resource) *entry {
	e := m.res[r]
	if e == nil {
		e = &entry{granted: make(map[TxnID]*heldLock)}
		m.res[r] = e
	}
	return e
}

// compatibleWithGranted reports whether txn may hold mode on e given the
// other transactions' granted locks.
func (e *entry) compatibleWithGranted(txn TxnID, mode Mode) bool {
	for t, h := range e.granted {
		if t == txn {
			continue
		}
		if !mode.Compatible(h.mode) {
			return false
		}
	}
	return true
}

// Acquire obtains (or converts to) a lock of at least the given mode on r
// for txn, blocking until it is granted or the transaction is chosen as a
// deadlock victim. Durable locks survive Snapshot/Restore (simulated
// shutdown); requesting a durable lock on a resource already held
// non-durably makes the held lock durable.
func (m *Manager) Acquire(txn TxnID, r Resource, mode Mode) error {
	return m.acquire(txn, r, mode, false, true, 0)
}

// AcquireTimeout is Acquire with a deadline: if the lock is not granted
// within d, the request is withdrawn and ErrTimeout returned. Useful in
// workstation-server environments where blocking behind a days-long
// check-out lock is not acceptable for interactive transactions.
func (m *Manager) AcquireTimeout(txn TxnID, r Resource, mode Mode, d time.Duration) error {
	return m.acquire(txn, r, mode, false, true, d)
}

// AcquireDurable is Acquire with the durable ("long lock") flag set.
func (m *Manager) AcquireDurable(txn TxnID, r Resource, mode Mode) error {
	return m.acquire(txn, r, mode, true, true, 0)
}

// TryAcquire is a non-blocking Acquire: it returns ErrWouldBlock instead of
// waiting.
func (m *Manager) TryAcquire(txn TxnID, r Resource, mode Mode) error {
	return m.acquire(txn, r, mode, false, false, 0)
}

func (m *Manager) acquire(txn TxnID, r Resource, mode Mode, durable, wait bool, timeout time.Duration) error {
	if !mode.Valid() || mode == None {
		return fmt.Errorf("lock: invalid mode %v", mode)
	}
	m.mu.Lock()
	m.stats.Requests++

	e := m.entryFor(r)
	h := e.granted[txn]
	if h != nil {
		if durable {
			h.durable = true
		}
		if h.mode.Covers(mode) {
			m.stats.Regrants++
			m.mu.Unlock()
			return nil
		}
	}

	target := mode
	convert := false
	if h != nil {
		target = Sup(h.mode, mode)
		convert = true
	}

	grantable := e.compatibleWithGranted(txn, target) &&
		(convert || !e.hasBlockingQueue(txn, target))
	if grantable {
		m.grantLocked(e, txn, r, target, durable || (h != nil && h.durable), convert)
		m.mu.Unlock()
		return nil
	}

	if !wait {
		m.stats.Conflicts++
		m.mu.Unlock()
		return fmt.Errorf("%w: %v on %q for txn %d", ErrWouldBlock, mode, r, txn)
	}

	if m.opts.Policy == PolicyWaitDie && m.mustDieLocked(e, txn, target) {
		m.stats.Conflicts++
		m.stats.Deadlocks++
		m.emit("victim", txn, r, target)
		m.mu.Unlock()
		return fmt.Errorf("%w: wait-die: txn %d on %q", ErrDeadlock, txn, r)
	}

	// Enqueue. Conversions are placed after existing conversion waiters but
	// ahead of plain waiters, giving them the classic conversion priority.
	w := &waiter{txn: txn, mode: target, convert: convert, durable: durable, ready: make(chan error, 1)}
	if convert {
		i := 0
		for i < len(e.queue) && e.queue[i].convert {
			i++
		}
		e.queue = append(e.queue, nil)
		copy(e.queue[i+1:], e.queue[i:])
		e.queue[i] = w
	} else {
		e.queue = append(e.queue, w)
	}
	m.waiting[txn] = &waitRecord{res: r, w: w}
	m.stats.Conflicts++
	m.stats.Waits++
	m.emit("wait", txn, r, target)

	// Deadlock check: did enqueuing this waiter close a cycle? (Under
	// wait-die no cycle can form — the young-waits-for-old edge was refused
	// above — so detection is skipped.)
	if m.opts.Policy == PolicyDetect {
		if victim, ok := m.findDeadlockVictimLocked(txn); ok {
			m.stats.Deadlocks++
			if victim == txn {
				m.removeWaiterLocked(r, w)
				delete(m.waiting, txn)
				m.emit("victim", txn, r, target)
				m.mu.Unlock()
				return fmt.Errorf("%w: txn %d on %q", ErrDeadlock, txn, r)
			}
			m.abortWaiterLocked(victim)
		}
	}
	m.mu.Unlock()

	if timeout <= 0 {
		return <-w.ready
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-w.ready:
		return err
	case <-timer.C:
		m.mu.Lock()
		// The grant may have raced the timer: the ready channel is buffered,
		// so a completed grant is drained here and the lock kept.
		select {
		case err := <-w.ready:
			m.mu.Unlock()
			return err
		default:
		}
		m.removeWaiterLocked(r, w)
		delete(m.waiting, txn)
		m.stats.Timeouts++
		m.emit("timeout", txn, r, target)
		m.mu.Unlock()
		return fmt.Errorf("%w: %v on %q for txn %d after %v", ErrTimeout, mode, r, txn, timeout)
	}
}

// mustDieLocked implements the wait-die rule: the requester dies if it is
// younger (higher TxnID) than any incompatible current holder or any
// incompatible earlier waiter it would queue behind.
func (m *Manager) mustDieLocked(e *entry, txn TxnID, mode Mode) bool {
	for t, h := range e.granted {
		if t != txn && !mode.Compatible(h.mode) && txn > t {
			return true
		}
	}
	for _, w := range e.queue {
		if w.txn != txn && !mode.Compatible(w.mode) && txn > w.txn {
			return true
		}
	}
	return false
}

// hasBlockingQueue reports whether a new (non-conversion) request in mode
// mode by txn must queue behind existing waiters for fairness.
func (e *entry) hasBlockingQueue(txn TxnID, mode Mode) bool {
	for _, w := range e.queue {
		if w.txn == txn {
			continue
		}
		if !mode.Compatible(w.mode) {
			return true
		}
	}
	return false
}

func (m *Manager) grantLocked(e *entry, txn TxnID, r Resource, mode Mode, durable, convert bool) {
	m.seq++
	h := e.granted[txn]
	if h == nil {
		h = &heldLock{}
		e.granted[txn] = h
		tl := m.held[txn]
		if tl == nil {
			tl = make(map[Resource]*heldLock)
			m.held[txn] = tl
		}
		tl[r] = h
		m.stats.Grants++
	} else {
		m.stats.Conversions++
	}
	h.mode = mode
	h.durable = h.durable || durable
	h.seq = m.seq
	if n := m.tableSize(); n > m.stats.MaxTableSize {
		m.stats.MaxTableSize = n
	}
	if convert {
		m.emit("convert", txn, r, mode)
	} else {
		m.emit("grant", txn, r, mode)
	}
}

func (m *Manager) tableSize() int {
	n := 0
	for _, e := range m.res {
		n += len(e.granted)
	}
	return n
}

// removeWaiterLocked removes w from r's queue.
func (m *Manager) removeWaiterLocked(r Resource, w *waiter) {
	e := m.res[r]
	if e == nil {
		return
	}
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// abortWaiterLocked makes txn's outstanding wait fail with ErrDeadlock.
func (m *Manager) abortWaiterLocked(txn TxnID) {
	rec := m.waiting[txn]
	if rec == nil {
		return
	}
	m.removeWaiterLocked(rec.res, rec.w)
	delete(m.waiting, txn)
	m.emit("victim", txn, rec.res, rec.w.mode)
	rec.w.ready <- fmt.Errorf("%w: txn %d on %q", ErrDeadlock, txn, rec.res)
	// The victim's departure may unblock others.
	m.grantWaitersLocked(rec.res)
}

// grantWaitersLocked scans r's queue front to back, granting every waiter
// that has become compatible. Conversions (kept at the front) may be granted
// even when a later plain waiter cannot; the scan stops at the first
// non-grantable plain waiter so that plain requests stay FIFO.
func (m *Manager) grantWaitersLocked(r Resource) {
	e := m.res[r]
	if e == nil {
		return
	}
	for progress := true; progress; {
		progress = false
		for i, w := range e.queue {
			ok := e.compatibleWithGranted(w.txn, w.mode)
			if ok {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				delete(m.waiting, w.txn)
				m.grantLocked(e, w.txn, r, w.mode, w.durable, w.convert)
				w.ready <- nil
				progress = true
				break
			}
			if !w.convert {
				break // FIFO barrier for plain waiters
			}
		}
	}
	m.maybeDropEntryLocked(r)
}

func (m *Manager) maybeDropEntryLocked(r Resource) {
	if e := m.res[r]; e != nil && len(e.granted) == 0 && len(e.queue) == 0 {
		delete(m.res, r)
	}
}

// Downgrade atomically lowers txn's lock on r to a weaker mode (e.g. X→IX
// during de-escalation) and wakes any waiters the weaker mode is compatible
// with. Downgrading to None releases the lock. It is an error if txn holds
// no lock on r or if mode is not weaker than (or equal to) the held mode.
func (m *Manager) Downgrade(txn TxnID, r Resource, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.res[r]
	var h *heldLock
	if e != nil {
		h = e.granted[txn]
	}
	if h == nil {
		return fmt.Errorf("lock: downgrade of unheld %q by txn %d", r, txn)
	}
	if !h.mode.Covers(mode) {
		return fmt.Errorf("lock: %v on %q cannot be downgraded to %v", h.mode, r, mode)
	}
	if mode == None {
		m.releaseLocked(txn, r)
		return nil
	}
	h.mode = mode
	m.stats.Downgrades++
	m.emit("downgrade", txn, r, mode)
	m.grantWaitersLocked(r)
	return nil
}

// Release drops txn's lock on r (leaf-to-root early release). Releasing a
// resource that is not held is a no-op.
func (m *Manager) Release(txn TxnID, r Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(txn, r)
}

func (m *Manager) releaseLocked(txn TxnID, r Resource) {
	e := m.res[r]
	if e == nil || e.granted[txn] == nil {
		return
	}
	delete(e.granted, txn)
	if tl := m.held[txn]; tl != nil {
		delete(tl, r)
		if len(tl) == 0 {
			delete(m.held, txn)
		}
	}
	m.stats.Releases++
	m.emit("release", txn, r, None)
	m.grantWaitersLocked(r)
}

// ReleaseAll drops every lock held by txn (end of transaction). Any granted
// waiters are woken.
func (m *Manager) ReleaseAll(txn TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tl := m.held[txn]
	rs := make([]Resource, 0, len(tl))
	for r := range tl {
		rs = append(rs, r)
	}
	for _, r := range rs {
		m.releaseLocked(txn, r)
	}
}

// HeldMode returns the mode txn currently holds on r (None if unheld).
func (m *Manager) HeldMode(txn TxnID, r Resource) Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.res[r]; e != nil {
		if h := e.granted[txn]; h != nil {
			return h.mode
		}
	}
	return None
}

// HeldLocks returns all locks currently held by txn, in acquisition order.
func (m *Manager) HeldLocks(txn TxnID) []Held {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Held, 0, len(m.held[txn]))
	for r, h := range m.held[txn] {
		out = append(out, Held{Resource: r, Mode: h.mode, Durable: h.durable, Seq: h.seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// LockCount returns the number of granted lock-table entries (across all
// transactions).
func (m *Manager) LockCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tableSize()
}

// Holders returns the transactions holding a lock on r and their modes.
func (m *Manager) Holders(r Resource) map[TxnID]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[TxnID]Mode)
	if e := m.res[r]; e != nil {
		for t, h := range e.granted {
			out[t] = h.mode
		}
	}
	return out
}

// Stats returns a copy of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters (the lock table is untouched).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}
