package lock

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TxnID identifies a transaction. Transaction IDs are assigned in start
// order, so a numerically larger ID means a younger transaction; the
// deadlock detector aborts the youngest member of a cycle.
type TxnID uint64

// Resource identifies a lockable unit. The core package uses hierarchical
// path strings such as "db1/seg1/cells/c1/robots/r1", but the lock manager
// treats resources as opaque.
type Resource string

// ErrDeadlock is returned from AcquireCtx when the requesting transaction
// was chosen as the victim of a deadlock cycle. The caller must abort the
// transaction and release all its locks.
var ErrDeadlock = errors.New("lock: deadlock victim")

// ErrDeadlockVictim is the classification alias for ErrDeadlock: restart
// policies match abort causes with errors.Is(err, ErrDeadlockVictim). Both
// detected victims and wait-die deaths satisfy it (the latter additionally
// match ErrWaitDie).
var ErrDeadlockVictim = ErrDeadlock

// ErrWaitDie is the cause of a wait-die death: under PolicyWaitDie a
// younger requester "dies" instead of waiting for an older transaction. It
// wraps ErrDeadlock, so errors.Is reports both — existing victim handling
// keeps working while restart policies can tell prevention deaths (safe to
// retry immediately once the older blocker drains) from detected cycles.
var ErrWaitDie = fmt.Errorf("%w (wait-die)", ErrDeadlock)

// ErrWouldBlock is returned by AcquireCtx with WithNoWait when the request
// cannot be granted immediately.
var ErrWouldBlock = errors.New("lock: would block")

// ErrTimeout is returned by AcquireCtx with WithTimeout when the deadline
// passes before the lock is granted. The request is withdrawn; locks
// already held by the transaction are unaffected.
var ErrTimeout = errors.New("lock: acquire timeout")

// ErrShed is returned when the admission gate refuses work because the
// waits-for graph is saturated: Admit sheds a Begin, or — in degrade mode —
// AcquireCtx refuses to queue a new waiter and fails fast so the caller
// retries under its backoff policy instead of deepening the queues.
var ErrShed = errors.New("lock: shed by admission control")

// Held describes one granted lock, as reported by HeldLocks.
type Held struct {
	Resource Resource
	Mode     Mode
	Durable  bool
	Seq      uint64 // global grant sequence number (acquisition order)
}

// Event is a lock-manager trace event, delivered to every attached consumer
// (the OnEvent hook and the Options.Sinks).
type Event struct {
	Kind     string // "grant", "wait", "convert", "release", "release-all", "victim", "downgrade", "timeout", "cancel"
	Txn      TxnID
	Resource Resource
	Mode     Mode
	// Shard is the lock-table stripe that served the operation.
	Shard int
	// Waited reports, on grant/convert events, that the request queued
	// before being granted (its Dur is then a real wait, not a fast-path
	// latency).
	Waited bool
	// At is the monotonic timestamp taken when the event was recorded
	// (zero when the operation fell outside the EventSampleShift sample).
	At time.Time
	// Dur is a kind-dependent duration: for grant/convert it is the
	// request-to-grant latency, for release the hold time of the dropped
	// lock, for timeout/cancel/victim the time spent blocked before the
	// request was withdrawn, for release-all the duration of the whole
	// end-of-transaction sweep. Zero for wait/downgrade events, and zero
	// whenever the needed reference timestamp was not captured (the
	// matching earlier operation fell outside the sample).
	Dur time.Duration
	// Blockers names, on wait events (and wait-die victim events), the
	// transactions the request queued behind — incompatible holders plus
	// incompatible earlier waiters — computed under the shard latch at
	// enqueue time. Contention profiles use it to attribute the eventual
	// blocked time to specific holding transactions.
	Blockers []TxnID
	// Resources carries, on release-all events, the resources the sweep
	// actually released, in release order — what a dying deadlock victim
	// gave up, for incident dumps.
	Resources []Resource
	// WaitDie marks victim events produced by wait-die prevention (the
	// requester died younger-waits-never) as opposed to detected-cycle
	// victims; rate monitors separate the two abort classes.
	WaitDie bool
}

// EventSink consumes trace events. Sinks are invoked exactly like the
// OnEvent hook: by the goroutine performing the operation, after all manager
// latches have been released, so a sink may call back into the manager.
type EventSink interface {
	Record(Event)
}

// Policy selects how deadlocks are handled.
type Policy uint8

const (
	// PolicyDetect (default) lets requests wait and runs waits-for cycle
	// detection on every new waiter, aborting the youngest cycle member.
	PolicyDetect Policy = iota
	// PolicyWaitDie is the classic prevention scheme: an older transaction
	// may wait for a younger one, but a younger requester "dies"
	// immediately (ErrDeadlock) when it would have to wait for an older
	// holder. Deadlock-free by construction, at the price of spurious
	// aborts.
	PolicyWaitDie
	// PolicyNone disables detection and prevention entirely: waiters block
	// until granted or withdrawn (context, WithTimeout). Deadlocks persist,
	// which is exactly what the waits-for introspection (WaitsForEdges,
	// WaitsForDOT) needs for post-mortems; pair it with timeouts, as the
	// timeout-based systems of the paper's era did.
	PolicyNone
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyWaitDie:
		return "wait-die"
	case PolicyNone:
		return "none"
	}
	return "detect"
}

// Options configures a Manager.
type Options struct {
	// OnEvent, if non-nil, is invoked for every grant, wait, conversion,
	// release, downgrade, withdrawal and deadlock-victim event. Events are
	// delivered by the goroutine performing the operation AFTER all manager
	// latches have been released, so the hook may safely call back into the
	// manager. Events of one operation arrive in order; ordering across
	// concurrent operations on different resources is best-effort.
	OnEvent func(Event)
	// Sinks are additional event consumers (e.g. an obs.Collector),
	// composed with OnEvent: every event is delivered to the hook and to
	// each sink, in order, under the same no-latch contract. Use
	// AttachSink to add one after construction.
	Sinks []EventSink
	// EventSampleShift samples event emission by operation: only one in
	// 2^EventSampleShift operations is traced (0, the default, traces every
	// operation). Sampling decides per operation, so the traced operations
	// still deliver all their events in order; it exists to keep tracing
	// overhead negligible on benchmark-grade hot paths.
	EventSampleShift uint8
	// Policy selects deadlock handling (default PolicyDetect).
	Policy Policy
	// Injector, if non-nil, is consulted at the top of every AcquireCtx and
	// AcquireBatch call and may delay the request (delayed grant) or fail it
	// with a synthetic cause (deadlock victim, timeout) — deterministic
	// fault injection for resilience testing (resilience.Chaos). It can also
	// be swapped at runtime with SetInjector.
	Injector Injector
	// Admission, if non-nil, configures the admission gate at construction
	// (equivalent to calling ConfigureAdmission afterwards).
	Admission *AdmissionConfig
	// Shards is the number of lock-table stripes. 0 picks an automatic
	// GOMAXPROCS-scaled power of two (at least 16); other values are
	// rounded up to a power of two. Shards=1 degenerates to the classic
	// single-latch lock table (useful as a benchmark baseline).
	Shards int
	// DeadlockDefer is how long a waiter under PolicyDetect blocks before
	// deadlock detection is armed for it (the background detector then
	// validates the wait is still live and runs the waits-for walk). Most
	// waits are grant-bound and far shorter than any real cycle's lifetime,
	// so deferral removes the full graph walk from the enqueue path. 0 picks
	// the default (1ms); a negative value arms detection immediately, still
	// on the detector goroutine.
	DeadlockDefer time.Duration
	// EagerDetection restores the pre-deferral semantics: the waits-for walk
	// runs inline on the enqueuing goroutine before it blocks, and a request
	// chosen as victim returns without ever parking. The paper-claim
	// experiments use it so detection counts stay exact per enqueue; the
	// deadlock unit tests run both ways.
	EagerDetection bool
}

type heldLock struct {
	mode    Mode
	durable bool
	seq     uint64
	// since is the grant time, kept only when the granting operation was
	// traced; it is the reference for the release event's hold duration.
	since time.Time
}

// waiter is one blocked lock request. Waiters are pooled (see entry.go):
// after creation its fields are written only by its owner before enqueue,
// and read by other actors only under the shard latch after proving the
// waiter current (queue membership or waits-for-record identity).
type waiter struct {
	txn     TxnID
	mode    Mode // target mode after conversion, if convert
	convert bool
	durable bool
	ready   chan error // buffered(1), reused across pool lives
	// gen is a globally unique stamp assigned on every checkout from the
	// pool. Pointer equality alone cannot prove a waits-for record current:
	// the pool may hand the SAME waiter address back to the same transaction
	// for its next blocked request (ABA), which would make the deferred
	// detector mistake a brand-new short wait for the one it armed and pay a
	// graph walk for it. Identity checks therefore compare (pointer, gen).
	gen uint64
	// enq is the request's start time, kept only when the enqueuing
	// operation was traced; it is the reference for wait durations.
	enq time.Time
}

// Manager is a blocking multi-granularity lock manager over a sharded lock
// table. All methods are safe for concurrent use; see shard.go for the
// latch-ordering discipline.
type Manager struct {
	opts    Options
	shards  []*tableShard
	mask    uint32
	txns    []*txnShard
	txnMask uint32
	wf      waitTable
	seq     atomic.Uint64 // global grant sequence
	size    atomic.Int64  // granted lock-table entries across all shards
	high    atomic.Int64  // high-water mark of size

	// sinks is the composed consumer list (OnEvent hook + Options.Sinks +
	// AttachSink additions); nil when tracing is off. Copy-on-write behind
	// an atomic pointer so the hot path pays one load.
	sinks      atomic.Pointer[[]func(Event)]
	opSeq      atomic.Uint64 // operation counter for event sampling
	sampleMask uint64        // 2^EventSampleShift − 1

	// releaseFns are the OnRelease callbacks, invoked (with no latch held)
	// whenever a transaction's lock coverage shrinks. Copy-on-write like
	// sinks so notifyRelease pays one atomic load on the hot path.
	releaseFns atomic.Pointer[[]func(TxnID)]

	// Batch counters live on the manager (not a shard) because one
	// AcquireBatch call spans several stripes.
	batches        atomic.Uint64
	batchFast      atomic.Uint64
	batchFallbacks atomic.Uint64

	// admission is the gate configuration (nil = gate off); see
	// admission.go. Copy-on-write behind an atomic pointer so the conflict
	// path pays one load.
	admission   atomic.Pointer[AdmissionConfig]
	sheds       atomic.Uint64 // Begins shed + degrade-mode fast-fails
	admitDelays atomic.Uint64 // Admits that had to stall before passing
	degradedAcq atomic.Uint64 // acquires refused by degrade mode

	// injector is the fault-injection hook (nil = none); swappable at
	// runtime via SetInjector.
	injector atomic.Pointer[Injector]
	injected atomic.Uint64 // synthetic failures injected

	// Deferred deadlock detection (see deadlock.go). The detector goroutine
	// starts lazily with the first armed waiter and parks on dirtyBell;
	// Close stops it. Armings accumulate in the unbounded dirty list —
	// memory tracks the real backlog instead of a fixed channel buffer, and
	// arming never degrades to an inline walk on the request path. deferDur
	// is the resolved Options.DeadlockDefer.
	deferDur     time.Duration
	detOnce      sync.Once
	dirtyMu      sync.Mutex
	dirty        []dirtyWaiter
	dirtyBell    chan struct{} // cap 1: wakes the detector after a push
	stopOnce     sync.Once
	stopCh       chan struct{}
	deferredDet  atomic.Uint64 // waiters whose detection was deferred
	detectorRuns atomic.Uint64 // waits-for walks by the deferred detector

	// resetFns are run by ResetStats after the shard counters are zeroed:
	// OnResetStats registrations plus the ResetStats method of every
	// attached sink that has one, so downstream aggregates (rule counters,
	// obs collectors) reset in the same call.
	resetMu  sync.Mutex
	resetFns []func()
}

// resettable is the optional sink interface ResetStats cascades to.
type resettable interface{ ResetStats() }

// NewManager returns an empty lock manager.
func NewManager(opts Options) *Manager {
	n := opts.Shards
	if n <= 0 {
		n = 8 * runtime.GOMAXPROCS(0)
		if n < 16 {
			n = 16
		}
	}
	if n > 1024 {
		n = 1024
	}
	n = nextPow2(n)
	m := &Manager{
		opts:    opts,
		shards:  make([]*tableShard, n),
		mask:    uint32(n - 1),
		txns:    make([]*txnShard, n),
		txnMask: uint32(n - 1),
	}
	for i := 0; i < n; i++ {
		m.shards[i] = newTableShard(i)
		m.txns[i] = newTxnShard()
	}
	m.wf.waiting = make(map[TxnID]waitRecord)
	m.stopCh = make(chan struct{})
	m.deferDur = opts.DeadlockDefer
	if m.deferDur == 0 {
		m.deferDur = time.Millisecond
	} else if m.deferDur < 0 {
		m.deferDur = 0
	}
	m.sampleMask = (uint64(1) << opts.EventSampleShift) - 1
	if opts.Injector != nil {
		m.SetInjector(opts.Injector)
	}
	if opts.Admission != nil {
		m.ConfigureAdmission(*opts.Admission)
	}
	var fns []func(Event)
	if opts.OnEvent != nil {
		fns = append(fns, opts.OnEvent)
	}
	for _, s := range opts.Sinks {
		if s != nil {
			fns = append(fns, s.Record)
			if rs, ok := s.(resettable); ok {
				m.resetFns = append(m.resetFns, rs.ResetStats)
			}
		}
	}
	if len(fns) > 0 {
		m.sinks.Store(&fns)
	}
	return m
}

// AttachSink adds an event consumer after construction. Safe for concurrent
// use; operations already past their sampling decision keep the consumer
// list they loaded.
func (m *Manager) AttachSink(s EventSink) {
	if s == nil {
		return
	}
	if rs, ok := s.(resettable); ok {
		m.OnResetStats(rs.ResetStats)
	}
	for {
		old := m.sinks.Load()
		var fns []func(Event)
		if old != nil {
			fns = append(fns, *old...)
		}
		fns = append(fns, s.Record)
		if m.sinks.CompareAndSwap(old, &fns) {
			return
		}
	}
}

// NumShards returns the number of lock-table stripes.
func (m *Manager) NumShards() int { return len(m.shards) }

// ShardOf returns the index of the lock-table stripe that serves r — the
// same value Event.Shard reports. Tracing layers use it to stamp spans with
// their lock-table stripe without re-deriving the hash.
func (m *Manager) ShardOf(r Resource) int { return int(m.shardIndex(r)) }

// OnResetStats registers fn to run whenever ResetStats is called, after the
// shard counters have been zeroed. Layers that keep statistics derived from
// this manager's activity (protocol rule counters, observability collectors)
// register here so one ResetStats call resets the whole stack.
func (m *Manager) OnResetStats(fn func()) {
	if fn == nil {
		return
	}
	m.resetMu.Lock()
	m.resetFns = append(m.resetFns, fn)
	m.resetMu.Unlock()
}

// OnRelease registers fn to be called whenever txn's lock coverage may have
// shrunk: after a Release or Downgrade of one of its locks, or after
// ReleaseAll dropped anything. The callback runs on the goroutine performing
// the operation, AFTER all manager latches have been released, so it may call
// back into the manager. Layers that cache granted modes (the protocol's
// per-transaction grant cache) register here to invalidate on exactly the
// operations that can retract a grant.
func (m *Manager) OnRelease(fn func(TxnID)) {
	if fn == nil {
		return
	}
	for {
		old := m.releaseFns.Load()
		var fns []func(TxnID)
		if old != nil {
			fns = append(fns, *old...)
		}
		fns = append(fns, fn)
		if m.releaseFns.CompareAndSwap(old, &fns) {
			return
		}
	}
}

// notifyRelease invokes the OnRelease callbacks. MUST be called with no
// manager latch held.
func (m *Manager) notifyRelease(txn TxnID) {
	if p := m.releaseFns.Load(); p != nil {
		for _, fn := range *p {
			fn(txn)
		}
	}
}

func (m *Manager) shardIndex(r Resource) uint32 { return shardHash(r) & m.mask }

func (m *Manager) shardFor(r Resource) *tableShard { return m.shards[m.shardIndex(r)] }

func (m *Manager) txnShardFor(txn TxnID) *txnShard {
	return m.txns[uint32(txn)&m.txnMask]
}

// tracer buffers one operation's events for delivery to every consumer
// after the shard latch is released. A nil *tracer (untraced operation —
// no consumers attached, or sampled out) records nothing, so call sites
// need no guards. This replaces the old single-hook ev/deliver pair: one
// buffer now fans out to N consumers without double-buffering.
type tracer struct {
	fns   []func(Event)
	start time.Time // operation start, the fast-path latency reference
	evs   []Event
}

// newTracer makes the per-operation tracing decision: nil when no consumer
// is attached or the operation falls outside the 1-in-2^EventSampleShift
// sample. Untraced operations pay one atomic load (plus one counter add
// when sampling is on) and never touch the clock.
func (m *Manager) newTracer() *tracer {
	p := m.sinks.Load()
	if p == nil || (m.sampleMask != 0 && m.opSeq.Add(1)&m.sampleMask != 0) {
		return nil
	}
	return &tracer{fns: *p, start: time.Now()}
}

// add buffers an event, stamping At with now and Dur with now − ref (zero
// ref leaves Dur zero).
func (t *tracer) add(e Event, ref time.Time) {
	if t == nil {
		return
	}
	t.addAt(e, time.Now(), ref)
}

// addFast buffers an event stamped with the operation-start time instead of
// a fresh clock read. Only for events emitted by short non-blocking
// operations (release, downgrade), where the sub-microsecond staleness is
// irrelevant but the saved time.Now call is the bulk of the traced cost.
func (t *tracer) addFast(e Event, ref time.Time) {
	if t == nil {
		return
	}
	t.addAt(e, t.start, ref)
}

func (t *tracer) addAt(e Event, now, ref time.Time) {
	e.At = now
	if !ref.IsZero() {
		e.Dur = now.Sub(ref)
	}
	t.evs = append(t.evs, e)
}

// deliver invokes every consumer for each buffered event, in order, and
// resets the buffer (an operation may buffer and deliver in several rounds,
// e.g. wait then withdraw). MUST be called with no manager latch held.
func (t *tracer) deliver() {
	if t == nil || len(t.evs) == 0 {
		return
	}
	for _, e := range t.evs {
		for _, fn := range t.fns {
			fn(e)
		}
	}
	t.evs = t.evs[:0]
}

// appendBlockers appends to dst the distinct transactions a request for
// target by txn queues behind when placed after the first `ahead` queue
// entries: incompatible holders plus incompatible earlier waiters. seen is
// the caller's dedup scratch (left dirty; the scratch pool clears it).
// Caller holds the shard latch. Allocation-free at steady state — the
// deadlock detector runs it on every walked edge.
func (e *entry) appendBlockers(dst []TxnID, seen map[TxnID]bool, txn TxnID, target Mode, ahead int) []TxnID {
	if e.spill != nil {
		for t, h := range e.spill {
			if t != txn && !compat[target][h.mode] && !seen[t] {
				seen[t] = true
				dst = append(dst, t)
			}
		}
	} else {
		for i := range e.slots {
			t := e.slots[i].txn
			if t != txn && !compat[target][e.slots[i].h.mode] && !seen[t] {
				seen[t] = true
				dst = append(dst, t)
			}
		}
	}
	if ahead > len(e.queue) {
		ahead = len(e.queue)
	}
	for _, w := range e.queue[:ahead] {
		if w.txn != txn && !compat[target][w.mode] && !seen[w.txn] {
			seen[w.txn] = true
			dst = append(dst, w.txn)
		}
	}
	return dst
}

// blockerTxns returns the blocker set as a fresh sorted slice — the escaping
// variant of appendBlockers for events and *LockError values. Caller holds
// the shard latch.
func (e *entry) blockerTxns(txn TxnID, target Mode, ahead int) []TxnID {
	sc := getBlockScratch()
	buf := e.appendBlockers(sc.out[:0], sc.seen, txn, target, ahead)
	sortTxnIDs(buf)
	var out []TxnID
	if len(buf) > 0 {
		out = append(out, buf...)
	}
	sc.out = buf[:0]
	putBlockScratch(sc)
	return out
}

// sortTxnIDs is an allocation-free insertion sort; blocker sets are small.
func sortTxnIDs(a []TxnID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// queuedBlockers computes the blocker set for a waiter currently enqueued
// on r, so withdrawal and victim errors can report who the dead request was
// waiting behind. Caller holds the shard latch.
func (s *tableShard) queuedBlockers(r Resource, w *waiter) []TxnID {
	e := s.res[r]
	if e == nil {
		return nil
	}
	for i, q := range e.queue {
		if q == w {
			return e.blockerTxns(w.txn, w.mode, i)
		}
	}
	return nil
}

// AcquireOption customizes a single AcquireCtx request.
type AcquireOption func(*acquireConfig)

type acquireConfig struct {
	durable bool
	noWait  bool
	timeout time.Duration
}

// buildAcquireConfig folds the options into a config. Kept out of the
// acquire bodies so that on the common zero-option call &cfg never escapes
// there and the hot path stays allocation-free.
func buildAcquireConfig(opts []AcquireOption) acquireConfig {
	var cfg acquireConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithDurable marks the request as a durable ("long") lock that survives
// Snapshot/Restore (simulated shutdown); requesting a durable lock on a
// resource already held non-durably makes the held lock durable.
func WithDurable() AcquireOption {
	return func(c *acquireConfig) { c.durable = true }
}

// WithNoWait makes the request non-blocking: if it cannot be granted
// immediately, AcquireCtx returns a *LockError wrapping ErrWouldBlock
// instead of queueing.
func WithNoWait() AcquireOption {
	return func(c *acquireConfig) { c.noWait = true }
}

// WithTimeout withdraws the request after d and returns a *LockError
// wrapping ErrTimeout. d <= 0 means no deadline. Useful in
// workstation-server environments where blocking behind a days-long
// check-out lock is not acceptable for interactive transactions.
func WithTimeout(d time.Duration) AcquireOption {
	return func(c *acquireConfig) { c.timeout = d }
}

// AcquireCtx obtains (or converts to) a lock of at least the given mode on r
// for txn. Without options it blocks until the lock is granted, the context
// is done, or the transaction is chosen as a deadlock victim. A canceled or
// expired context withdraws the waiter (no queue entry is leaked) and
// returns a *LockError whose Cause is ctx.Err(), so
// errors.Is(err, context.Canceled) holds. All failures are reported as
// *LockError values wrapping one of the sentinel errors.
func (m *Manager) AcquireCtx(ctx context.Context, txn TxnID, r Resource, mode Mode, opts ...AcquireOption) error {
	if !mode.Valid() || mode == None {
		return fmt.Errorf("lock: invalid mode %v", mode)
	}
	var cfg acquireConfig
	if len(opts) > 0 {
		cfg = buildAcquireConfig(opts)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return lockErr(txn, r, mode, err)
	}
	if err := m.inject(ctx, txn, r, mode); err != nil {
		return err
	}

	tr := m.newTracer()
	s := m.shardFor(r)
	s.mu.Lock()
	s.stats.requests.Add(1)

	e := s.entryFor(r)
	h := e.holder(txn)
	if h != nil {
		if cfg.durable {
			h.durable = true
		}
		if h.mode.Covers(mode) {
			s.stats.regrants.Add(1)
			s.mu.Unlock()
			return nil
		}
	}

	target := mode
	convert := false
	own := None
	hadDurable := false
	if h != nil {
		own = h.mode
		target = Sup(h.mode, mode)
		convert = true
		hadDurable = h.durable
	}

	grantable, fastCheck := e.grantable(txn, own, target, convert)
	if fastCheck {
		s.stats.summaryFast.Add(1)
	}
	if grantable {
		var start time.Time
		if tr != nil {
			start = tr.start
		}
		m.grantLocked(tr, s, e, txn, r, target, cfg.durable || hadDurable, convert, false, start)
		s.mu.Unlock()
		tr.deliver()
		return nil
	}

	if cfg.noWait {
		s.stats.conflicts.Add(1)
		blockers := e.blockerTxns(txn, target, len(e.queue))
		s.maybeDropEntry(r)
		s.mu.Unlock()
		return lockErrBlocked(txn, r, mode, ErrWouldBlock, blockers)
	}

	// Graceful degradation: when the admission gate is saturated in degrade
	// mode, refuse to deepen the wait queues — fail fast with ErrShed (and
	// the blocker set, for restart-wait policies) instead of queueing, as if
	// the caller had passed WithNoWait. Conversions are exempt: the
	// transaction already holds the lock, and refusing an upgrade would only
	// force a full restart that re-acquires everything.
	if !convert && m.degradeSaturated() {
		s.stats.conflicts.Add(1)
		m.sheds.Add(1)
		m.degradedAcq.Add(1)
		blockers := e.blockerTxns(txn, target, len(e.queue))
		s.maybeDropEntry(r)
		if tr != nil {
			tr.add(Event{Kind: "shed", Txn: txn, Resource: r, Mode: target, Shard: s.idx,
				Blockers: blockers}, tr.start)
		}
		s.mu.Unlock()
		tr.deliver()
		return lockErrBlocked(txn, r, mode, ErrShed, blockers)
	}

	if m.opts.Policy == PolicyWaitDie && e.mustDie(txn, target) {
		s.stats.conflicts.Add(1)
		s.stats.deadlocks.Add(1)
		// A wait-die victim never queues, so its victim event (and its
		// error) carries the blocker set directly — there is no prior wait
		// event, and restart-wait retry policies pause until these blockers
		// have drained.
		blockers := e.blockerTxns(txn, target, len(e.queue))
		s.maybeDropEntry(r)
		if tr != nil {
			tr.add(Event{Kind: "victim", Txn: txn, Resource: r, Mode: target, Shard: s.idx,
				Blockers: blockers, WaitDie: true}, tr.start)
		}
		s.mu.Unlock()
		tr.deliver()
		return lockErrBlocked(txn, r, mode, ErrWaitDie, blockers)
	}

	// Enqueue a pooled waiter (entry.enqueue gives conversions the classic
	// conversion priority: after existing conversion waiters, ahead of plain
	// ones).
	w := getWaiter()
	w.txn, w.mode, w.convert, w.durable = txn, target, convert, cfg.durable
	if tr != nil {
		w.enq = tr.start
	}
	pos := e.enqueue(w)
	m.wf.put(txn, waitRecord{res: r, w: w, gen: w.gen})
	s.stats.conflicts.Add(1)
	s.stats.waits.Add(1)
	if tr != nil {
		tr.add(Event{Kind: "wait", Txn: txn, Resource: r, Mode: target, Shard: s.idx,
			Blockers: e.blockerTxns(txn, target, pos)}, time.Time{})
	}
	s.mu.Unlock()
	tr.deliver()

	// Deadlock check: did enqueuing this waiter close a cycle? Runs with NO
	// shard latch held — the detector latches one shard at a time (see
	// deadlock.go). By default detection is deferred: the waiter is armed on
	// the detector's dirty queue and the walk runs only if it is still
	// blocked after DeadlockDefer. Under wait-die no cycle can form (the
	// young-waits-for-old edge was refused above), so detection is skipped;
	// under PolicyNone the cycle is left in place for timeouts and
	// introspection to deal with.
	if m.opts.Policy == PolicyDetect {
		if m.opts.EagerDetection {
			if err, victim := m.resolveDeadlock(txn, r, w, target); victim {
				return err
			}
		} else {
			m.armDetection(txn, w)
		}
	}

	return m.await(ctx, cfg, tr, txn, r, w, mode, target)
}

// await blocks on the waiter's ready channel, the context and the optional
// timeout, withdrawing the waiter on context/timeout expiry.
func (m *Manager) await(ctx context.Context, cfg acquireConfig, tr *tracer, txn TxnID, r Resource, w *waiter, mode, target Mode) error {
	var timerC <-chan time.Time
	if cfg.timeout > 0 {
		timer := time.NewTimer(cfg.timeout)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case err := <-w.ready:
		putWaiter(w)
		return err
	case <-ctx.Done():
		return m.withdraw(tr, txn, r, w, mode, target, ctx.Err(), "cancel")
	case <-timerC:
		return m.withdraw(tr, txn, r, w, mode, target, ErrTimeout, "timeout")
	}
}

// BatchReq is one request of an AcquireBatch call.
type BatchReq struct {
	Resource Resource
	Mode     Mode
}

// AcquireBatch obtains locks for every request in reqs, in order, on behalf
// of txn. It exists for the protocol's root-to-leaf ancestor chains: instead
// of N AcquireCtx round-trips (N shard-latch acquisitions, N tracer
// decisions), the batch latches every involved stripe once — in ascending
// stripe-index order, the one multi-latch pattern the ordering discipline
// permits (see shard.go) — and grants all already-compatible requests under
// that single latch hold with one tracer flush.
//
// Because all involved stripes are latched before the first grant, the whole
// prefix of compatible requests is granted atomically: no concurrent
// transaction can observe (or create) a state between two of the batch's
// grants. Requests are processed in the given order, so grant sequence
// numbers preserve the chain's root-to-leaf order.
//
// On the first request that cannot be granted immediately, the batch
// releases all latches, flushes the tracer, and falls back to the plain
// AcquireCtx wait path for that request and every later one — waiting,
// deadlock handling, timeouts and cancellation behave exactly as if the tail
// had been acquired one call at a time. Requests before the conflict stay
// granted (lock acquisition is not transactional; the caller's 2PL makes
// that safe). Options apply to every request in the batch.
//
// The whole batch is ONE operation for event sampling, like ReleaseAll.
func (m *Manager) AcquireBatch(ctx context.Context, txn TxnID, reqs []BatchReq, opts ...AcquireOption) error {
	if len(reqs) == 0 {
		return nil
	}
	for _, q := range reqs {
		if !q.Mode.Valid() || q.Mode == None {
			return fmt.Errorf("lock: invalid mode %v", q.Mode)
		}
	}
	var cfg acquireConfig
	if len(opts) > 0 {
		cfg = buildAcquireConfig(opts)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return lockErr(txn, reqs[0].Resource, reqs[0].Mode, err)
	}
	if err := m.inject(ctx, txn, reqs[0].Resource, reqs[0].Mode); err != nil {
		return err
	}
	m.batches.Add(1)
	tr := m.newTracer()

	// Collect the distinct stripe indices, ascending (insertion sort into a
	// small stack buffer; ancestor chains are short, so this beats a map).
	var idxBuf [8]uint32
	idxs := idxBuf[:0]
	for _, q := range reqs {
		si := m.shardIndex(q.Resource)
		pos := len(idxs)
		dup := false
		for i, v := range idxs {
			if v == si {
				dup = true
				break
			}
			if v > si {
				pos = i
				break
			}
		}
		if dup {
			continue
		}
		idxs = append(idxs, 0)
		copy(idxs[pos+1:], idxs[pos:])
		idxs[pos] = si
	}
	for _, si := range idxs {
		m.shards[si].mu.Lock()
	}

	// Grant pass. A request that conflicts is NOT counted against the shard
	// stats here — the fallback AcquireCtx call will do its own accounting —
	// so per-request counters stay exactly one-per-request either way.
	fallbackAt := -1
	fast := 0
	for i, q := range reqs {
		s := m.shards[m.shardIndex(q.Resource)]
		e := s.entryFor(q.Resource)
		h := e.holder(txn)
		if h != nil && h.mode.Covers(q.Mode) {
			s.stats.requests.Add(1)
			s.stats.regrants.Add(1)
			if cfg.durable {
				h.durable = true
			}
			fast++
			continue
		}
		target := q.Mode
		convert := false
		own := None
		hadDurable := false
		if h != nil {
			own = h.mode
			target = Sup(h.mode, q.Mode)
			convert = true
			hadDurable = h.durable
		}
		ok, fastCheck := e.grantable(txn, own, target, convert)
		if fastCheck {
			s.stats.summaryFast.Add(1)
		}
		if ok {
			s.stats.requests.Add(1)
			var start time.Time
			if tr != nil {
				start = tr.start
			}
			m.grantLocked(tr, s, e, txn, q.Resource, target,
				cfg.durable || hadDurable, convert, false, start)
			fast++
			continue
		}
		// Conflict: drop the entry if this lookup speculatively created it,
		// and leave this request and the rest of the chain to the wait path.
		s.maybeDropEntry(q.Resource)
		fallbackAt = i
		break
	}
	for i := len(idxs) - 1; i >= 0; i-- {
		m.shards[idxs[i]].mu.Unlock()
	}
	m.batchFast.Add(uint64(fast))
	tr.deliver()
	if fallbackAt < 0 {
		return nil
	}
	m.batchFallbacks.Add(1)
	for _, q := range reqs[fallbackAt:] {
		if err := m.AcquireCtx(ctx, txn, q.Resource, q.Mode, opts...); err != nil {
			return err
		}
	}
	return nil
}

// withdraw removes an expired or canceled waiter from its queue. The grant
// may have raced the wakeup: the ready channel is buffered, so a completed
// grant (or a deadlock abort) is drained here and that outcome returned
// instead.
func (m *Manager) withdraw(tr *tracer, txn TxnID, r Resource, w *waiter, mode, target Mode, cause error, kind string) error {
	s := m.shardFor(r)
	s.mu.Lock()
	select {
	case err := <-w.ready:
		s.mu.Unlock()
		putWaiter(w)
		return err
	default:
	}
	blockers := s.queuedBlockers(r, w)
	s.removeWaiter(r, w)
	m.wf.delete(txn)
	if kind == "timeout" {
		s.stats.timeouts.Add(1)
	} else {
		s.stats.cancels.Add(1)
	}
	tr.add(Event{Kind: kind, Txn: txn, Resource: r, Mode: target, Shard: s.idx,
		Blockers: blockers}, w.enq)
	// The withdrawn waiter may have been the FIFO barrier for later ones.
	m.grantWaitersLocked(tr, s, r)
	s.mu.Unlock()
	tr.deliver()
	putWaiter(w)
	return lockErrBlocked(txn, r, mode, cause, blockers)
}

// grantLocked installs (or converts) txn's lock on r. Caller holds s.mu;
// the trace event (if the operation is traced) is buffered on tr for
// delivery after unlock. ref is the latency reference: the request's start
// for fast-path grants, the waiter's enqueue time for queued ones.
func (m *Manager) grantLocked(tr *tracer, s *tableShard, e *entry, txn TxnID, r Resource, mode Mode, durable, convert, waited bool, ref time.Time) {
	h := e.holder(txn)
	if h == nil {
		h = e.addHolder(txn)
		m.txnShardFor(txn).add(txn, r)
		s.stats.grants.Add(1)
		n := m.size.Add(1)
		for {
			hi := m.high.Load()
			if n <= hi || m.high.CompareAndSwap(hi, n) {
				break
			}
		}
	} else {
		s.stats.conversions.Add(1)
	}
	e.setMode(h, mode)
	h.durable = h.durable || durable
	h.seq = m.seq.Add(1)
	if tr != nil {
		kind := "grant"
		if convert {
			kind = "convert"
		}
		now := time.Now()
		if h.since.IsZero() {
			// First traced grant of this hold: the hold-duration clock
			// starts here (conversions keep the original grant time).
			h.since = now
		}
		tr.addAt(Event{Kind: kind, Txn: txn, Resource: r, Mode: mode, Shard: s.idx, Waited: waited}, now, ref)
	}
}

// grantWaitersLocked scans r's queue front to back, granting every waiter
// that has become compatible. Conversions (kept at the front) may be granted
// even when a later plain waiter cannot; the scan stops at the first
// non-grantable plain waiter so that plain requests stay FIFO. Caller holds
// s.mu. Grant events for woken waiters ride on the waking operation's
// tracer (Dur measured from each waiter's own enqueue time).
func (m *Manager) grantWaitersLocked(tr *tracer, s *tableShard, r Resource) {
	e := s.res[r]
	if e == nil {
		return
	}
	for progress := true; progress; {
		progress = false
		for i, w := range e.queue {
			own := None
			if w.convert { // a plain waiter cannot already hold (it would convert)
				own = e.holderMode(w.txn)
			}
			if e.compatGranted(own, w.mode) {
				e.dequeueAt(i)
				m.wf.delete(w.txn)
				m.grantLocked(tr, s, e, w.txn, r, w.mode, w.durable, w.convert, true, w.enq)
				// After the send the waiter belongs to the woken goroutine
				// (which will recycle it); it must not be touched again.
				w.ready <- nil
				progress = true
				break
			}
			if !w.convert {
				break // FIFO barrier for plain waiters
			}
		}
	}
	s.maybeDropEntry(r)
}

// Downgrade atomically lowers txn's lock on r to a weaker mode (e.g. X→IX
// during de-escalation) and wakes any waiters the weaker mode is compatible
// with. Downgrading to None releases the lock. It is an error if txn holds
// no lock on r or if mode is not weaker than (or equal to) the held mode.
func (m *Manager) Downgrade(txn TxnID, r Resource, mode Mode) error {
	tr := m.newTracer()
	s := m.shardFor(r)
	s.mu.Lock()
	e := s.res[r]
	var h *heldLock
	if e != nil {
		h = e.holder(txn)
	}
	if h == nil {
		s.mu.Unlock()
		return fmt.Errorf("lock: downgrade of unheld %q by txn %d", r, txn)
	}
	if !h.mode.Covers(mode) {
		held := h.mode
		s.mu.Unlock()
		return fmt.Errorf("lock: %v on %q cannot be downgraded to %v", held, r, mode)
	}
	if mode == None {
		m.releaseLocked(tr, s, txn, r)
		s.mu.Unlock()
		tr.deliver()
		m.notifyRelease(txn)
		return nil
	}
	e.setMode(h, mode)
	s.stats.downgrades.Add(1)
	tr.addFast(Event{Kind: "downgrade", Txn: txn, Resource: r, Mode: mode, Shard: s.idx}, time.Time{})
	m.grantWaitersLocked(tr, s, r)
	s.mu.Unlock()
	tr.deliver()
	m.notifyRelease(txn)
	return nil
}

// Release drops txn's lock on r (leaf-to-root early release). Releasing a
// resource that is not held is a no-op.
func (m *Manager) Release(txn TxnID, r Resource) {
	tr := m.newTracer()
	s := m.shardFor(r)
	s.mu.Lock()
	dropped := m.releaseLocked(tr, s, txn, r)
	s.mu.Unlock()
	tr.deliver()
	if dropped {
		m.notifyRelease(txn)
	}
}

// releaseLocked drops txn's granted lock on r and wakes unblocked waiters,
// reporting whether a lock was actually dropped. Caller holds s.mu. The
// release event reports the dropped mode and, when the grant was traced too,
// the hold duration.
func (m *Manager) releaseLocked(tr *tracer, s *tableShard, txn TxnID, r Resource) bool {
	e := s.res[r]
	if e == nil {
		return false
	}
	h, ok := e.removeHolder(txn)
	if !ok {
		return false
	}
	m.txnShardFor(txn).remove(txn, r)
	m.size.Add(-1)
	s.stats.releases.Add(1)
	tr.addFast(Event{Kind: "release", Txn: txn, Resource: r, Mode: h.mode, Shard: s.idx}, h.since)
	m.grantWaitersLocked(tr, s, r)
	return true
}

// ReleaseAll drops every lock held by txn (end of transaction). Any granted
// waiters are woken. The transaction's locks are found through the
// sharded-by-txn held index, so release cost is proportional to the locks
// held, not to the table size. The whole call is ONE operation for event
// sampling — a single tracer covers every released lock, so a 64-lock EOT
// pays one sampling decision, not 64 — and events are delivered after all
// shard latches have been dropped. When the sweep released anything and the
// operation is traced, the per-lock release events are followed by one
// "release-all" summary event whose Resources lists every released lock —
// the record of what a dying deadlock victim gave up.
func (m *Manager) ReleaseAll(txn TxnID) {
	tr := m.newTracer()
	var released []Resource
	any := false
	for _, r := range m.txnShardFor(txn).snapshot(txn) {
		s := m.shardFor(r)
		s.mu.Lock()
		dropped := m.releaseLocked(tr, s, txn, r)
		s.mu.Unlock()
		if dropped {
			any = true
			if tr != nil {
				released = append(released, r)
			}
		}
	}
	if len(released) > 0 {
		tr.add(Event{Kind: "release-all", Txn: txn, Resources: released}, tr.start)
	}
	tr.deliver()
	if any {
		m.notifyRelease(txn)
	}
}

// HeldMode returns the mode txn currently holds on r (None if unheld).
func (m *Manager) HeldMode(txn TxnID, r Resource) Mode {
	s := m.shardFor(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.res[r]; e != nil {
		return e.holderMode(txn)
	}
	return None
}

// HeldLocks returns all locks currently held by txn, in acquisition order.
func (m *Manager) HeldLocks(txn TxnID) []Held {
	rs := m.txnShardFor(txn).snapshot(txn)
	out := make([]Held, 0, len(rs))
	for _, r := range rs {
		s := m.shardFor(r)
		s.mu.Lock()
		if e := s.res[r]; e != nil {
			if h := e.holder(txn); h != nil {
				out = append(out, Held{Resource: r, Mode: h.mode, Durable: h.durable, Seq: h.seq})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// LockCount returns the number of granted lock-table entries (across all
// transactions and shards). It reads an atomic counter and takes no latch.
func (m *Manager) LockCount() int {
	return int(m.size.Load())
}

// Holders returns the transactions holding a lock on r and their modes.
func (m *Manager) Holders(r Resource) map[TxnID]Mode {
	s := m.shardFor(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[TxnID]Mode)
	if e := s.res[r]; e != nil {
		e.forEachHolder(func(t TxnID, h *heldLock) bool {
			out[t] = h.mode
			return true
		})
	}
	return out
}

// Stats returns the manager's counters, aggregated lock-free across the
// shards' atomic stripes.
func (m *Manager) Stats() Stats {
	var st Stats
	for _, s := range m.shards {
		s.stats.addTo(&st)
	}
	st.Batches = m.batches.Load()
	st.BatchFastGrants = m.batchFast.Load()
	st.BatchFallbacks = m.batchFallbacks.Load()
	st.Sheds = m.sheds.Load()
	st.AdmitDelays = m.admitDelays.Load()
	st.DegradedAcquires = m.degradedAcq.Load()
	st.InjectedFaults = m.injected.Load()
	st.DeferredDetections = m.deferredDet.Load()
	st.DetectorRuns = m.detectorRuns.Load()
	st.MaxTableSize = int(m.high.Load())
	return st
}

// Close stops the background deadlock-detector goroutine, if one was ever
// started (it starts lazily with the first deferred-detection arming). The
// lock table itself needs no teardown and the manager remains usable after
// Close — waiters arming detection then run the waits-for walk inline. Safe
// to call more than once. Managers that never block under PolicyDetect never
// start the goroutine, so Close is optional for them.
func (m *Manager) Close() {
	m.stopOnce.Do(func() { close(m.stopCh) })
}

// ResetStats zeroes the counters (the lock table is untouched; the
// high-water mark restarts from the current table size), then cascades to
// every OnResetStats registration and every attached sink with a ResetStats
// method — so protocol rule counters and obs collectors reset in the same
// call and benchmark phases never report stale counts.
func (m *Manager) ResetStats() {
	for _, s := range m.shards {
		s.stats.reset()
	}
	m.batches.Store(0)
	m.batchFast.Store(0)
	m.batchFallbacks.Store(0)
	m.sheds.Store(0)
	m.admitDelays.Store(0)
	m.degradedAcq.Store(0)
	m.injected.Store(0)
	m.deferredDet.Store(0)
	m.detectorRuns.Store(0)
	m.high.Store(m.size.Load())
	m.resetMu.Lock()
	fns := append([]func(){}, m.resetFns...)
	m.resetMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}
