package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestShardCount(t *testing.T) {
	if n := NewManager(Options{}).NumShards(); n < 16 || n&(n-1) != 0 {
		t.Errorf("default shard count %d: want a power of two >= 16", n)
	}
	if n := NewManager(Options{Shards: 1}).NumShards(); n != 1 {
		t.Errorf("Shards:1 gave %d shards", n)
	}
	if n := NewManager(Options{Shards: 5}).NumShards(); n != 8 {
		t.Errorf("Shards:5 gave %d shards, want 8 (next power of two)", n)
	}
}

// twoResourcesInDifferentShards returns resources guaranteed to hash to
// distinct shards, so tests exercise genuinely cross-shard paths.
func twoResourcesInDifferentShards(t *testing.T, m *Manager) (Resource, Resource) {
	t.Helper()
	if m.NumShards() < 2 {
		t.Fatal("need at least 2 shards")
	}
	a := Resource("a")
	for i := 0; i < 10000; i++ {
		b := Resource(fmt.Sprintf("b%d", i))
		if m.shardIndex(b) != m.shardIndex(a) {
			return a, b
		}
	}
	t.Fatal("no resource pair in different shards found")
	return "", ""
}

// TestCrossShardDeadlock proves the detector finds cycles whose edges span
// different shards: the classic AB-BA deadlock with A and B hashed to
// distinct stripes.
func TestCrossShardDeadlock(t *testing.T) {
	m := NewManager(Options{})
	a, b := twoResourcesInDifferentShards(t, m)

	if err := m.AcquireCtx(context.Background(), 1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, b, X); err != nil {
		t.Fatal(err)
	}
	r1 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, b, X) }()
	time.Sleep(20 * time.Millisecond)

	err2 := m.AcquireCtx(context.Background(), 2, a, X) // closes the cross-shard cycle
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("txn 2: want ErrDeadlock, got %v", err2)
	}
	var le *LockError
	if !errors.As(err2, &le) {
		t.Fatalf("deadlock error is not a *LockError: %v", err2)
	}
	if le.Txn != 2 || le.Resource != a {
		t.Errorf("LockError names txn %d on %q, want txn 2 on %q", le.Txn, le.Resource, a)
	}
	m.ReleaseAll(2)
	if err := <-r1; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	m.ReleaseAll(1)
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}

// TestCrossShardDeadlockRing drives three transactions into a cycle over
// three resources in (very likely) different shards.
func TestCrossShardDeadlockRing(t *testing.T) {
	m := NewManager(Options{})
	rs := []Resource{"ring/a", "ring/b", "ring/c"}
	for i, r := range rs {
		if err := m.AcquireCtx(context.Background(), TxnID(i+1), r, X); err != nil {
			t.Fatal(err)
		}
	}
	r1 := make(chan error, 1)
	r2 := make(chan error, 1)
	go func() { r1 <- m.AcquireCtx(context.Background(), 1, rs[1], X) }()
	time.Sleep(20 * time.Millisecond)
	go func() { r2 <- m.AcquireCtx(context.Background(), 2, rs[2], X) }()
	time.Sleep(20 * time.Millisecond)

	err3 := m.AcquireCtx(context.Background(), 3, rs[0], X) // youngest closes the ring
	if !errors.Is(err3, ErrDeadlock) {
		t.Fatalf("txn 3: want ErrDeadlock, got %v", err3)
	}
	m.ReleaseAll(3)
	if err := <-r2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-r1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}

func TestAcquireCtxCancelWithdraws(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(ctx, 2, "a", S) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var le *LockError
	if !errors.As(err, &le) || le.Txn != 2 || le.Resource != "a" || le.Mode != S {
		t.Errorf("LockError = %+v", le)
	}
	if m.Stats().Cancels != 1 {
		t.Errorf("Cancels = %d, want 1", m.Stats().Cancels)
	}
	// The withdrawn waiter left no queue entry behind: txn 3's X is granted
	// as soon as txn 1 releases, and the table drains to empty.
	m.ReleaseAll(1)
	if err := m.AcquireCtx(context.Background(), 3, "a", X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}

func TestAcquireCtxAlreadyCanceled(t *testing.T) {
	m := NewManager(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.AcquireCtx(ctx, 1, "a", X)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if m.HeldMode(1, "a") != None {
		t.Error("canceled context still acquired a lock")
	}
	if m.LockCount() != 0 {
		t.Error("table not empty")
	}
}

func TestAcquireCtxDeadline(t *testing.T) {
	m := NewManager(Options{})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := m.AcquireCtx(ctx, 2, "a", S)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	m.ReleaseAll(1)
	if m.LockCount() != 0 {
		t.Error("locks leaked")
	}
}

// TestAcquireCtxCancelRace hammers cancellation against concurrent grants:
// every outcome must be either a held lock or a clean cancel error, with no
// stuck waiters or leaked entries.
func TestAcquireCtxCancelRace(t *testing.T) {
	m := NewManager(Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(k%3)*time.Millisecond)
				err := m.AcquireCtx(ctx, id, "hot", X)
				cancel()
				if err == nil {
					m.ReleaseAll(id)
				} else if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadlock) {
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(TxnID(i + 1))
	}
	wg.Wait()
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}

func TestAcquireCtxOptions(t *testing.T) {
	m := NewManager(Options{})
	// WithNoWait reports ErrWouldBlock as a structured error.
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	err := m.AcquireCtx(context.Background(), 2, "a", S, WithNoWait())
	if !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want ErrWouldBlock, got %v", err)
	}
	var le *LockError
	if !errors.As(err, &le) || le.Resource != "a" || le.Txn != 2 {
		t.Errorf("LockError = %+v", le)
	}
	// WithTimeout reports ErrTimeout.
	err = m.AcquireCtx(context.Background(), 2, "a", S, WithTimeout(20*time.Millisecond))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// WithDurable marks the lock for Snapshot.
	if err := m.AcquireCtx(context.Background(), 3, "b", X, WithDurable()); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].Resource != "b" || snap[0].Txn != 3 {
		t.Errorf("snapshot = %v, want txn 3's durable lock on b", snap)
	}
}

// TestEventHookMayReenter verifies the redesigned OnEvent contract: events
// are delivered outside all shard latches, so the hook may call back into
// the manager (the old contract forbade this on pain of self-deadlock).
func TestEventHookMayReenter(t *testing.T) {
	var m *Manager
	var events []Event
	var counts []int
	m = NewManager(Options{OnEvent: func(e Event) {
		events = append(events, e)
		counts = append(counts, m.LockCount()) // re-enters the manager
	}})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if len(events) != 3 || events[0].Kind != "grant" || events[1].Kind != "release" || events[2].Kind != "release-all" {
		t.Fatalf("events = %v", events)
	}
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 0 {
		t.Errorf("LockCount seen by hook = %v, want [1 0 0]", counts)
	}
}

// TestShardedStress hammers the manager from 24 goroutines over a mix of
// per-goroutine disjoint resources (spread across shards) and a small hot
// overlapping set, checking grant-group compatibility and full drain. Run
// with -race this exercises the latch-ordering discipline end to end.
func TestShardedStress(t *testing.T) {
	m := NewManager(Options{})
	hot := []Resource{"hot/0", "hot/1", "hot/2"}
	const workers = 24
	var wg sync.WaitGroup
	var violations sync.Map
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			disjoint := make([]Resource, 8)
			for k := range disjoint {
				disjoint[k] = Resource(fmt.Sprintf("g%d/r%d", id, k))
			}
			for k := 0; k < 40; k++ {
				// Disjoint working set: must never conflict.
				okAll := true
				for _, r := range disjoint {
					if err := m.AcquireCtx(context.Background(), id, r, X); err != nil {
						okAll = false
						break
					}
				}
				if !okAll {
					m.ReleaseAll(id)
					continue
				}
				// One hot overlapping resource with mixed modes.
				r := hot[int(id)%len(hot)]
				mode := S
				if k%3 == 0 {
					mode = X
				}
				if err := m.AcquireCtx(context.Background(), id, r, mode); err == nil {
					hs := m.Holders(r)
					for t1, m1 := range hs {
						for t2, m2 := range hs {
							if t1 != t2 && !m1.Compatible(m2) {
								violations.Store(r, [2]Mode{m1, m2})
							}
						}
					}
				}
				m.ReleaseAll(id)
			}
		}(TxnID(i + 1))
	}
	wg.Wait()
	violations.Range(func(k, v any) bool {
		t.Errorf("incompatible grant on %v: %v", k, v)
		return true
	})
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
	st := m.Stats()
	if st.Requests == 0 || st.Grants == 0 {
		t.Errorf("stats not aggregated: %+v", st)
	}
}

// TestCrossShardDeadlockStress runs opposing lock orders over resources in
// different shards; detection must resolve every cycle (no stuck goroutine).
func TestCrossShardDeadlockStress(t *testing.T) {
	m := NewManager(Options{})
	a, b := twoResourcesInDifferentShards(t, m)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id TxnID) {
			defer wg.Done()
			first, second := a, b
			if id%2 == 0 {
				first, second = second, first
			}
			for k := 0; k < 30; k++ {
				if err := m.AcquireCtx(context.Background(), id, first, X); err != nil {
					m.ReleaseAll(id)
					continue
				}
				if err := m.AcquireCtx(context.Background(), id, second, X); err != nil {
					m.ReleaseAll(id)
					continue
				}
				m.ReleaseAll(id)
			}
		}(TxnID(i + 1))
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cross-shard deadlock stress did not terminate")
	}
	if m.LockCount() != 0 {
		t.Errorf("locks leaked: %d", m.LockCount())
	}
}

// TestSingleShardDegenerate runs the core flows on a Shards:1 manager (the
// benchmark baseline topology) to keep it correct too.
func TestSingleShardDegenerate(t *testing.T) {
	m := NewManager(Options{Shards: 1})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "b", X); err != nil {
		t.Fatal(err)
	}
	if got := m.LockCount(); got != 2 {
		t.Errorf("LockCount = %d, want 2", got)
	}
	held := m.HeldLocks(1)
	if len(held) != 1 || held[0].Resource != "a" {
		t.Errorf("HeldLocks = %v", held)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if m.LockCount() != 0 {
		t.Error("table not empty")
	}
}
