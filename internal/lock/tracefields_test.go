package lock

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Wait events carry the blocker set computed under the shard latch at
// enqueue time: incompatible holders plus incompatible earlier waiters,
// sorted by transaction ID.
func TestWaitEventBlockers(t *testing.T) {
	sink := &recordingSink{}
	m := NewManager(Options{Policy: PolicyNone, Sinks: []EventSink{sink}})
	if err := m.AcquireCtx(context.Background(), 1, "a", S); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, "a", S); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.AcquireCtx(context.Background(), 3, "a", X) }()
	for i := 0; m.WaitingTxns() == 0; i++ {
		if i > 2000 {
			t.Fatal("txn 3 never queued")
		}
		time.Sleep(time.Millisecond)
	}

	sink.mu.Lock()
	var wait *Event
	for i := range sink.events {
		if sink.events[i].Kind == "wait" {
			wait = &sink.events[i]
		}
	}
	if wait == nil {
		t.Fatalf("no wait event in %v", sink.kinds())
	}
	if len(wait.Blockers) != 2 || wait.Blockers[0] != 1 || wait.Blockers[1] != 2 {
		t.Errorf("wait blockers = %v, want [1 2]", wait.Blockers)
	}
	sink.mu.Unlock()

	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

// A wait-die victim never queues, so its victim event must carry the
// blocker set directly.
func TestWaitDieVictimBlockers(t *testing.T) {
	sink := &recordingSink{}
	m := NewManager(Options{Policy: PolicyWaitDie, Sinks: []EventSink{sink}})
	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	err := m.AcquireCtx(context.Background(), 2, "a", X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("young requester got %v, want ErrDeadlock", err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	var victim *Event
	for i := range sink.events {
		if sink.events[i].Kind == "victim" {
			victim = &sink.events[i]
		}
	}
	if victim == nil {
		t.Fatalf("no victim event in %v", sink.kinds())
	}
	if len(victim.Blockers) != 1 || victim.Blockers[0] != 1 {
		t.Errorf("victim blockers = %v, want [1]", victim.Blockers)
	}
}

// distinctShardResources returns n resources that land on pairwise distinct
// lock-table stripes of m.
func distinctShardResources(t *testing.T, m *Manager, n int) []Resource {
	t.Helper()
	var out []Resource
	used := make(map[int]bool)
	for i := 0; len(out) < n && i < 10000; i++ {
		r := Resource(fmt.Sprintf("res%d", i))
		if s := m.ShardOf(r); !used[s] {
			used[s] = true
			out = append(out, r)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d resources on distinct shards", n)
	}
	return out
}

// WaitsForDOT with a three-transaction cycle whose resources span three
// different lock-table shards: every member is marked on-cycle, the
// youngest is the victim, and its outgoing cycle edge is labeled.
func TestWaitsForDOTThreeTxnCycleAcrossShards(t *testing.T) {
	m := NewManager(Options{Policy: PolicyNone})
	rs := distinctShardResources(t, m, 3)
	a, b, c := rs[0], rs[1], rs[2]

	if err := m.AcquireCtx(context.Background(), 1, a, X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 2, b, X); err != nil {
		t.Fatal(err)
	}
	if err := m.AcquireCtx(context.Background(), 3, c, X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	go func() { errs <- m.AcquireCtx(context.Background(), 1, b, X) }()
	go func() { errs <- m.AcquireCtx(context.Background(), 2, c, X) }()
	go func() { errs <- m.AcquireCtx(context.Background(), 3, a, X) }()
	for i := 0; m.WaitingTxns() < 3; i++ {
		if i > 2000 {
			t.Fatal("three-way deadlock never formed")
		}
		time.Sleep(time.Millisecond)
	}

	edges := m.WaitsForEdges()
	if len(edges) != 3 {
		t.Fatalf("waits-for edges = %+v, want 3", edges)
	}
	wantEdges := map[[2]TxnID]Resource{
		{1, 2}: b, {2, 3}: c, {3, 1}: a,
	}
	shards := make(map[int]bool)
	for _, e := range edges {
		if wantEdges[[2]TxnID{e.From, e.To}] != e.Resource {
			t.Errorf("unexpected edge %+v", e)
		}
		shards[m.ShardOf(e.Resource)] = true
	}
	if len(shards) != 3 {
		t.Errorf("cycle spans %d shards, want 3", len(shards))
	}

	dot := m.WaitsForDOT()
	for _, want := range []string{
		`t1 [label="txn 1", color=red];`,
		`t2 [label="txn 2", color=red];`,
		`t3 [label="txn 3 (victim)", color=red, style=bold];`,
		"(victim edge)",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// The victim edge is txn 3's outgoing cycle edge (t3 → t1).
	if !strings.Contains(dot, "t3 -> t1 [label=\"X "+string(a)+" (victim edge)\", color=red, style=bold];") {
		t.Errorf("DOT missing victim edge t3 -> t1:\n%s", dot)
	}

	// Hand-resolve: drop the victim's held locks, then unwind the chain
	// (txn 2 gets c, txn 1 gets b, and finally txn 3's still-queued request
	// for a is granted once txn 1 finishes).
	m.ReleaseAll(3)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// resettableSink counts ResetStats cascades.
type resettableSink struct {
	recordingSink
	resets int
}

func (rs *resettableSink) ResetStats() {
	rs.mu.Lock()
	rs.resets++
	rs.mu.Unlock()
}

// ResetStats cascades to OnResetStats registrations and to attached sinks
// exposing a ResetStats method — whether attached at construction or later.
func TestResetStatsCascade(t *testing.T) {
	early := &resettableSink{}
	m := NewManager(Options{Sinks: []EventSink{early}})
	late := &resettableSink{}
	m.AttachSink(late)
	hooks := 0
	m.OnResetStats(func() { hooks++ })

	if err := m.AcquireCtx(context.Background(), 1, "a", X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	m.ResetStats()

	if hooks != 1 {
		t.Errorf("OnResetStats hook ran %d times, want 1", hooks)
	}
	for name, s := range map[string]*resettableSink{"early": early, "late": late} {
		s.mu.Lock()
		if s.resets != 1 {
			t.Errorf("%s sink ResetStats ran %d times, want 1", name, s.resets)
		}
		s.mu.Unlock()
	}
	if st := m.Stats(); st.Requests != 0 || st.Grants != 0 {
		t.Errorf("stats after reset = %+v, want zero", st)
	}
}
