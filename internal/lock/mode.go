// Package lock implements a multi-granularity lock manager in the style of
// System R (Gray, Lorie, Putzolu, Traiger: "Granularity of Locks and Degrees
// of Consistency in a Shared Data Base", 1976).
//
// It provides the five classic lock modes (IS, IX, S, SIX, X) with their
// compatibility matrix and supremum lattice, a sharded lock table (striped
// by resource hash, one latch per shard — see shard.go for the ordering
// discipline) with FIFO wait queues and in-place lock conversion, cross-
// shard waits-for deadlock detection with youngest-victim abort, a
// context-aware AcquireCtx entry point with cancellation, and durable
// ("long") locks that survive a simulated system shutdown — the substrate
// required by the complex-object lock protocol of Herrmann et al.
// (EDBT 1990) implemented in package core.
package lock

import "fmt"

// Mode is a transaction-oriented lock mode.
//
// The numeric order of the constants is NOT the restrictiveness order; use
// Covers and Sup for lattice queries. The lattice is
//
//	None < IS < IX < SIX < X
//	       IS < S  < SIX
//
// with IX and S incomparable (their supremum is SIX).
type Mode uint8

const (
	// None is the absence of a lock. It is compatible with everything and
	// covered by every mode.
	None Mode = iota
	// IS (intention share) announces the intent to request S locks on
	// descendant nodes.
	IS
	// IX (intention exclusive) announces the intent to request X or S locks
	// on descendant nodes.
	IX
	// S (share) gives shared read access to the node and, implicitly, to its
	// descendants.
	S
	// SIX (share + intention exclusive) gives shared access to the whole
	// subtree plus the right to X-lock descendants. The EDBT-1990 protocol
	// itself only issues IS/IX/S/X; SIX is provided for lattice completeness
	// and for the System R baseline.
	SIX
	// X (exclusive) gives exclusive access to the node and its descendants.
	X

	numModes = 6
)

// String returns the conventional name of the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "-"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case X:
		return "X"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Valid reports whether m is one of the defined modes.
func (m Mode) Valid() bool { return m < numModes }

// compat[a][b] == true iff a lock in mode a held by one transaction is
// compatible with a lock in mode b held by another transaction.
var compat = [numModes][numModes]bool{
	None: {None: true, IS: true, IX: true, S: true, SIX: true, X: true},
	IS:   {None: true, IS: true, IX: true, S: true, SIX: true, X: false},
	IX:   {None: true, IS: true, IX: true, S: false, SIX: false, X: false},
	S:    {None: true, IS: true, IX: false, S: true, SIX: false, X: false},
	SIX:  {None: true, IS: true, IX: false, S: false, SIX: false, X: false},
	X:    {None: true, IS: false, IX: false, S: false, SIX: false, X: false},
}

// Compatible reports whether a lock in mode m held by one transaction can
// coexist with a lock in mode o held by a different transaction on the same
// resource.
func (m Mode) Compatible(o Mode) bool { return compat[m][o] }

// covers[a][b] == true iff mode a is at least as restrictive as mode b,
// i.e. a is above b (or equal) in the lattice. A transaction holding a needs
// no further action to obtain b.
var covers = [numModes][numModes]bool{
	None: {None: true},
	IS:   {None: true, IS: true},
	IX:   {None: true, IS: true, IX: true},
	S:    {None: true, IS: true, S: true},
	SIX:  {None: true, IS: true, IX: true, S: true, SIX: true},
	X:    {None: true, IS: true, IX: true, S: true, SIX: true, X: true},
}

// Covers reports whether m is at least as restrictive as o: a transaction
// holding m implicitly holds o.
func (m Mode) Covers(o Mode) bool { return covers[m][o] }

// Sup returns the least upper bound (supremum) of a and b in the lock-mode
// lattice: the weakest single mode that covers both. It is the mode a lock
// is converted to when a holder of a requests b.
func Sup(a, b Mode) Mode {
	switch {
	case a.Covers(b):
		return a
	case b.Covers(a):
		return b
	default:
		// The only incomparable pairs are {IX,S} (and the pairs involving
		// them transitively, which Covers already resolved). Their join is
		// SIX.
		return SIX
	}
}

// IsIntention reports whether m is a pure intention mode (IS or IX).
func (m Mode) IsIntention() bool { return m == IS || m == IX }

// IntentionFor returns the intention mode a parent node must carry before a
// child may be locked in mode m, per the System R protocol: IS for IS/S,
// IX for IX/SIX/X, None for None.
func (m Mode) IntentionFor() Mode {
	switch m {
	case None:
		return None
	case IS, S:
		return IS
	default:
		return IX
	}
}

// Stronger reports whether m is strictly more restrictive than o.
func (m Mode) Stronger(o Mode) bool { return m != o && m.Covers(o) }
