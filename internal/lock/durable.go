package lock

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"
)

// Durable ("long") locks. The paper (§3.1): "Complex objects which are
// checked-out by a user on a workstation get a long lock. In contrast to
// traditional short locks, long locks must survive system shutdowns and
// system crashes."
//
// A Snapshot captures every durable lock; Restore reinstalls them into a
// fresh manager after a simulated crash. Non-durable locks belong to short
// transactions and die with the system, exactly as a conventional lock
// table would.

// DurableLock is one persisted long lock.
type DurableLock struct {
	Txn      TxnID
	Resource Resource
	Mode     Mode
}

// Snapshot returns all durable locks, sorted by (Txn, Resource) for
// deterministic encoding. The shards are visited one at a time (latch
// ordering rule 3), so the snapshot is per-shard consistent; durable locks
// belong to long check-out transactions whose grants are stable, which is
// what makes the stitched view coherent in practice.
func (m *Manager) Snapshot() []DurableLock {
	var out []DurableLock
	for _, s := range m.shards {
		s.mu.Lock()
		for r, e := range s.res {
			e.forEachHolder(func(t TxnID, h *heldLock) bool {
				if h.durable {
					out = append(out, DurableLock{Txn: t, Resource: r, Mode: h.mode})
				}
				return true
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Txn != out[j].Txn {
			return out[i].Txn < out[j].Txn
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}

// EncodeSnapshot serializes a snapshot (e.g. to survive a simulated crash in
// package sim).
func EncodeSnapshot(locks []DurableLock) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(locks); err != nil {
		return nil, fmt.Errorf("lock: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot is the inverse of EncodeSnapshot.
func DecodeSnapshot(data []byte) ([]DurableLock, error) {
	var locks []DurableLock
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&locks); err != nil {
		return nil, fmt.Errorf("lock: decode snapshot: %w", err)
	}
	return locks, nil
}

// Restore reinstalls durable locks into the manager. It must be called on a
// quiescent (typically fresh) manager; an incompatibility among the restored
// locks — which cannot occur for a snapshot taken from a consistent table —
// is reported as an error.
func (m *Manager) Restore(locks []DurableLock) error {
	for _, dl := range locks {
		tr := m.newTracer()
		s := m.shardFor(dl.Resource)
		s.mu.Lock()
		e := s.entryFor(dl.Resource)
		own := e.holderMode(dl.Txn)
		if !e.compatGranted(own, dl.Mode) {
			s.maybeDropEntry(dl.Resource)
			s.mu.Unlock()
			return fmt.Errorf("lock: restore conflict on %q for txn %d (%v)", dl.Resource, dl.Txn, dl.Mode)
		}
		if h := e.holder(dl.Txn); h != nil {
			e.setMode(h, Sup(h.mode, dl.Mode))
			h.durable = true
			s.mu.Unlock()
			continue
		}
		var start time.Time
		if tr != nil {
			start = tr.start
		}
		m.grantLocked(tr, s, e, dl.Txn, dl.Resource, dl.Mode, true, false, false, start)
		s.mu.Unlock()
		tr.deliver()
	}
	return nil
}
